package cqbound

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"cqbound/internal/datagen"
	"cqbound/internal/relation"
)

// spillTestQuery and spillTestDB build a workload big enough that a small
// budget forces eviction: a two-join path over 300-edge relations.
func spillTestWorkload() (*Query, *Database) {
	q := MustParse("Q(A,D) <- R(A,B), S(B,C), T(C,D).")
	db := datagen.EdgeDB(rand.New(rand.NewSource(9)), []string{"R", "S", "T"}, 300, 50)
	return q, db
}

func TestEngineMemoryBudgetSpillsAndAgrees(t *testing.T) {
	q, db := spillTestWorkload()
	plain := NewEngine()
	budgeted := NewEngine(WithSharding(0, 8), WithMemoryBudget(1024), WithSpillDir(t.TempDir()))
	defer budgeted.Close()
	ctx := context.Background()
	want, _, err := plain.Evaluate(ctx, q, db)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := budgeted.Evaluate(ctx, q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(want, got) {
		t.Fatalf("budgeted output %d tuples, plain %d", got.Size(), want.Size())
	}
	st := budgeted.SpillStats()
	if st.Evictions == 0 || st.ReloadedShards == 0 {
		t.Fatalf("1KB budget never spilled: %+v", st)
	}
	if st.PeakResidentBytes == 0 {
		t.Fatalf("peak resident gauge missing: %+v", st)
	}
	// A second evaluation re-reads memoized (now parked) partitions.
	before := budgeted.SpillStats().ReloadedShards
	if _, _, err := budgeted.Evaluate(ctx, q, db); err != nil {
		t.Fatal(err)
	}
	if budgeted.SpillStats().ReloadedShards <= before {
		t.Fatal("re-evaluation never reloaded a parked shard")
	}
}

// TestEngineIgnoresStaleSpillFiles is the crash-safety check: a fresh
// Engine pointed at a spill directory holding another process's leftovers
// must neither read nor disturb them — its own files live in a fresh
// uniquely-named subdirectory.
func TestEngineIgnoresStaleSpillFiles(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, "cqspill-stale")
	if err := os.MkdirAll(stale, 0o700); err != nil {
		t.Fatal(err)
	}
	// Garbage with plausible segment names, as a crashed run would leave.
	for _, name := range []string{"seg-1.seg", "seg-2.seg", "dict.park"} {
		if err := os.WriteFile(filepath.Join(stale, name), []byte("not a segment"), 0o600); err != nil {
			t.Fatal(err)
		}
	}
	q, db := spillTestWorkload()
	plain := NewEngine()
	eng := NewEngine(WithSharding(0, 8), WithMemoryBudget(1024), WithSpillDir(dir))
	defer eng.Close()
	ctx := context.Background()
	want, _, err := plain.Evaluate(ctx, q, db)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := eng.Evaluate(ctx, q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(want, got) {
		t.Fatalf("engine over a dirty spill dir: %d tuples, want %d", got.Size(), want.Size())
	}
	if eng.SpillStats().Evictions == 0 {
		t.Fatal("budget never forced a spill — the stale-file check proved nothing")
	}
	for _, name := range []string{"seg-1.seg", "seg-2.seg", "dict.park"} {
		raw, err := os.ReadFile(filepath.Join(stale, name))
		if err != nil || string(raw) != "not a segment" {
			t.Fatalf("stale file %s was touched (err %v)", name, err)
		}
	}
}

func TestEngineCloseRemovesSpillFilesKeepsData(t *testing.T) {
	dir := t.TempDir()
	q, db := spillTestWorkload()
	eng := NewEngine(WithSharding(0, 8), WithMemoryBudget(1024), WithSpillDir(dir))
	want, _, err := eng.Evaluate(context.Background(), q, db)
	if err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "cqspill-*", "*.seg"))
	if len(segs) == 0 {
		t.Fatal("no segments on disk before Close")
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if left, _ := filepath.Glob(filepath.Join(dir, "cqspill-*")); len(left) != 0 {
		t.Fatalf("Close left spill state behind: %v", left)
	}
	// The database (and its memoized, formerly-governed partitions) must
	// remain fully usable after Close.
	got, _, err := NewEngine().Evaluate(context.Background(), q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(want, got) {
		t.Fatal("data unusable after Close")
	}
}

func TestEngineResetStats(t *testing.T) {
	q, db := spillTestWorkload()
	eng := NewEngine(WithSharding(0, 4), WithMemoryBudget(1024), WithSpillDir(t.TempDir()))
	defer eng.Close()
	ctx := context.Background()
	if _, _, err := eng.Evaluate(ctx, q, db); err != nil {
		t.Fatal(err)
	}
	if h, m := eng.CacheStats(); h+m == 0 {
		t.Fatal("no cache traffic before reset")
	}
	if eng.ShardStats().ShardedOps == 0 {
		t.Fatal("no sharded ops before reset")
	}
	eng.ResetStats()
	if h, m := eng.CacheStats(); h != 0 || m != 0 {
		t.Fatalf("cache stats survive reset: %d/%d", h, m)
	}
	if st := eng.ShardStats(); st != (ShardStats{}) {
		t.Fatalf("shard stats survive reset: %+v", st)
	}
	sp := eng.SpillStats()
	if sp.Evictions != 0 || sp.ReloadedShards != 0 || sp.PinWaits != 0 {
		t.Fatalf("spill counters survive reset: %+v", sp)
	}
	// Gauges describe present state and must survive.
	if sp.BytesOnDisk == 0 && sp.ResidentBytes == 0 {
		t.Fatalf("spill gauges were zeroed by reset: %+v", sp)
	}
	// Counters accumulate again after the reset — the per-query window.
	if _, _, err := eng.Evaluate(ctx, q, db); err != nil {
		t.Fatal(err)
	}
	if h, m := eng.CacheStats(); h == 0 && m == 0 {
		t.Fatal("no cache traffic after reset")
	}
}

// TestEngineResetStatsNoSpillNoSharding pins nil-safety: ResetStats and
// SpillStats on a plain engine are no-ops, not panics.
func TestEngineResetStatsNoSpillNoSharding(t *testing.T) {
	eng := NewEngine()
	eng.ResetStats()
	if st := eng.SpillStats(); st != (SpillStats{}) {
		t.Fatalf("plain engine reports spill stats: %+v", st)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("plain Close: %v", err)
	}
}

// TestEngineDictSpill exercises the last-resort victim: with every shard
// pinned implicitly tiny and the budget microscopic, the governor parks
// the dictionary's string table, and parsing/printing afterwards still
// works because the table reloads lazily.
func TestEngineDictSpill(t *testing.T) {
	q, db := spillTestWorkload()
	eng := NewEngine(WithSharding(0, 4), WithMemoryBudget(1), WithSpillDir(t.TempDir()), WithDictSpill())
	defer eng.Close()
	out, _, err := eng.Evaluate(context.Background(), q, db)
	if err != nil {
		t.Fatal(err)
	}
	if eng.SpillStats().AuxReleases == 0 {
		t.Skip("aux victim did not fire on this run (all buffers evictable); mechanism covered in internal/spill")
	}
	// The dictionary reloads transparently: rendering output tuples needs
	// the parked strings back.
	if out.Size() > 0 {
		s := out.Row(0).Strings()
		if len(s) == 0 || s[0] == "" {
			t.Fatal("dict strings lost after park")
		}
	}
	if v := relation.V("fresh-after-park"); v == 0 {
		t.Fatal("interning after dict park broken")
	}
	if out.String() == "" {
		t.Fatal("rendering after dict park broken")
	}
}

// TestEngineSpillScopeReleasesIntermediates pins the per-evaluation
// lifecycle: a long-lived engine's governor must plateau — registered
// buffers, resident bytes, disk — at the memoized base partitions instead
// of accumulating every query's intermediate shards forever.
func TestEngineSpillScopeReleasesIntermediates(t *testing.T) {
	q, db := spillTestWorkload()
	eng := NewEngine(WithSharding(0, 8), WithMemoryBudget(1<<20), WithSpillDir(t.TempDir()))
	defer eng.Close()
	ctx := context.Background()
	if _, _, err := eng.Evaluate(ctx, q, db); err != nil {
		t.Fatal(err)
	}
	after1 := eng.SpillStats()
	for i := 0; i < 5; i++ {
		if _, _, err := eng.Evaluate(ctx, q, db); err != nil {
			t.Fatal(err)
		}
	}
	after6 := eng.SpillStats()
	if after6.RegisteredBuffers > after1.RegisteredBuffers {
		t.Fatalf("governor accumulates buffers per query: %d after 1 eval, %d after 6",
			after1.RegisteredBuffers, after6.RegisteredBuffers)
	}
	if after6.ResidentBytes > after1.ResidentBytes {
		t.Fatalf("resident bytes grow per query: %d -> %d", after1.ResidentBytes, after6.ResidentBytes)
	}
	if after6.BytesOnDisk > after1.BytesOnDisk {
		t.Fatalf("segment files accumulate per query: %d -> %d bytes", after1.BytesOnDisk, after6.BytesOnDisk)
	}
}
