package cqbound_test

import (
	"fmt"

	"cqbound"
)

// ExampleAnalyze reproduces Example 3.3: the triangle query has color
// number 3/2, so its output is at most rmax^{3/2} — the AGM bound.
func ExampleAnalyze() {
	q := cqbound.MustParse("S(X,Y,Z) <- R(X,Y), R(X,Z), R(Y,Z).")
	a, err := cqbound.Analyze(q)
	if err != nil {
		panic(err)
	}
	fmt.Println("C(chase(Q)) =", a.ColorNumber.RatString())
	fmt.Println("size increase possible:", a.SizeIncreasePossible)
	fmt.Println("treewidth:", a.Treewidth)
	// Output:
	// C(chase(Q)) = 3/2
	// size increase possible: true
	// treewidth: preserved
}

// ExampleChase reproduces Example 2.2: the key R1[1] plus the atom
// R1(W,W,W) force W, X and Y to coincide.
func ExampleChase() {
	q := cqbound.MustParse("R0(W,X,Y,Z) <- R1(W,X,Y), R1(W,W,W), R2(Y,Z).\nkey R1[1].")
	fmt.Println(cqbound.Chase(q).Head)
	// Output:
	// R0(W,W,W,Z)
}

// ExampleEvaluate runs a small composition query.
func ExampleEvaluate() {
	q := cqbound.MustParse("Q(X,Z) <- R(X,Y), S(Y,Z).")
	db := cqbound.NewDatabase()
	r := cqbound.NewRelation("R", "a", "b")
	r.Add("ann", "bob")
	r.Add("cid", "bob")
	s := cqbound.NewRelation("S", "a", "b")
	s.Add("bob", "dan")
	db.MustAdd(r)
	db.MustAdd(s)
	out, err := cqbound.Evaluate(q, db)
	if err != nil {
		panic(err)
	}
	fmt.Println(out.Size(), "tuples")
	// Output:
	// 2 tuples
}

// ExampleTwoColoringExists shows the Proposition 5.9 characterization: the
// sibling view admits a 2-coloring with color number 2, so it cannot
// preserve bounded treewidth.
func ExampleTwoColoringExists() {
	q := cqbound.MustParse("V(Y,Z) <- Edge(X,Y), Edge(X,Z).")
	_, unboundedTW := cqbound.TwoColoringExists(q)
	fmt.Println("treewidth can blow up:", unboundedTW)

	keyed := cqbound.MustParse("V(X,Z) <- Edge(X,Y), Edge(Y,Z).\nkey Edge[1].")
	_, unboundedTW = cqbound.TwoColoringExists(keyed)
	fmt.Println("with keys:", unboundedTW)
	// Output:
	// treewidth can blow up: true
	// with keys: false
}

// ExampleSizeIncreasePossible shows the polynomial Theorem 7.2 decision.
func ExampleSizeIncreasePossible() {
	grow := cqbound.MustParse("Q(X,Z) <- R(X,Y), S(Y,Z).")
	flat := cqbound.MustParse("Q(X,Z) <- R(X,Y), S(Y,Z).\nkey S[1].")
	fmt.Println(cqbound.SizeIncreasePossible(grow), cqbound.SizeIncreasePossible(flat))
	// Output:
	// true false
}
