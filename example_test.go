package cqbound_test

import (
	"context"
	"fmt"
	"os"
	"strings"

	"cqbound"
)

// ExampleAnalyze reproduces Example 3.3: the triangle query has color
// number 3/2, so its output is at most rmax^{3/2} — the AGM bound.
func ExampleAnalyze() {
	q := cqbound.MustParse("S(X,Y,Z) <- R(X,Y), R(X,Z), R(Y,Z).")
	a, err := cqbound.Analyze(q)
	if err != nil {
		panic(err)
	}
	fmt.Println("C(chase(Q)) =", a.ColorNumber.RatString())
	fmt.Println("size increase possible:", a.SizeIncreasePossible)
	fmt.Println("treewidth:", a.Treewidth)
	// Output:
	// C(chase(Q)) = 3/2
	// size increase possible: true
	// treewidth: preserved
}

// ExampleChase reproduces Example 2.2: the key R1[1] plus the atom
// R1(W,W,W) force W, X and Y to coincide.
func ExampleChase() {
	q := cqbound.MustParse("R0(W,X,Y,Z) <- R1(W,X,Y), R1(W,W,W), R2(Y,Z).\nkey R1[1].")
	fmt.Println(cqbound.Chase(q).Head)
	// Output:
	// R0(W,W,W,Z)
}

// ExampleEvaluate runs a small composition query.
func ExampleEvaluate() {
	q := cqbound.MustParse("Q(X,Z) <- R(X,Y), S(Y,Z).")
	db := cqbound.NewDatabase()
	r := cqbound.NewRelation("R", "a", "b")
	r.Add("ann", "bob")
	r.Add("cid", "bob")
	s := cqbound.NewRelation("S", "a", "b")
	s.Add("bob", "dan")
	db.MustAdd(r)
	db.MustAdd(s)
	out, err := cqbound.Evaluate(q, db)
	if err != nil {
		panic(err)
	}
	fmt.Println(out.Size(), "tuples")
	// Output:
	// 2 tuples
}

// ExampleTwoColoringExists shows the Proposition 5.9 characterization: the
// sibling view admits a 2-coloring with color number 2, so it cannot
// preserve bounded treewidth.
func ExampleTwoColoringExists() {
	q := cqbound.MustParse("V(Y,Z) <- Edge(X,Y), Edge(X,Z).")
	_, unboundedTW := cqbound.TwoColoringExists(q)
	fmt.Println("treewidth can blow up:", unboundedTW)

	keyed := cqbound.MustParse("V(X,Z) <- Edge(X,Y), Edge(Y,Z).\nkey Edge[1].")
	_, unboundedTW = cqbound.TwoColoringExists(keyed)
	fmt.Println("with keys:", unboundedTW)
	// Output:
	// treewidth can blow up: true
	// with keys: false
}

// ExampleSizeIncreasePossible shows the polynomial Theorem 7.2 decision.
func ExampleSizeIncreasePossible() {
	grow := cqbound.MustParse("Q(X,Z) <- R(X,Y), S(Y,Z).")
	flat := cqbound.MustParse("Q(X,Z) <- R(X,Y), S(Y,Z).\nkey S[1].")
	fmt.Println(cqbound.SizeIncreasePossible(grow), cqbound.SizeIncreasePossible(flat))
	// Output:
	// true false
}

// ExampleWithSharding builds a sharding engine: joins, semijoins and
// projections over relations with at least `threshold` rows run
// partition-parallel at the given shard count, with intermediate results
// staying partitioned between steps (the exchange repartitions or
// broadcasts when a join needs a different key). Outputs are identical to
// an unsharded engine's.
func ExampleWithSharding() {
	q := cqbound.MustParse("Q(X,Z) <- R(X,Y), S(Y,Z).")
	db := cqbound.NewDatabase()
	r := cqbound.NewRelation("R", "a", "b")
	s := cqbound.NewRelation("S", "a", "b")
	for i := 0; i < 100; i++ {
		r.Add(fmt.Sprintf("x%d", i%10), fmt.Sprintf("y%d", i%7))
		s.Add(fmt.Sprintf("y%d", i%7), fmt.Sprintf("z%d", i%5))
	}
	db.MustAdd(r)
	db.MustAdd(s)

	sharded := cqbound.NewEngine(cqbound.WithSharding(0, 4)) // threshold 0: shard everything, P=4
	plain := cqbound.NewEngine()
	ctx := context.Background()
	a, _, err := sharded.Evaluate(ctx, q, db)
	if err != nil {
		panic(err)
	}
	b, _, err := plain.Evaluate(ctx, q, db)
	if err != nil {
		panic(err)
	}
	fmt.Println("sharded:", a.Size(), "tuples; identical:", cqbound.RelationsEqual(a, b))
	// Output:
	// sharded: 50 tuples; identical: true
}

// ExampleWithSkewSplitting tunes the hot-shard trigger: here every row of
// R carries the same join value, so hash partitioning would serialize the
// whole join into one shard — the skew handler splits that shard into row
// blocks instead, and ShardStats records it.
func ExampleWithSkewSplitting() {
	q := cqbound.MustParse("Q(X,Z) <- R(X,Y), S(Y,Z).")
	db := cqbound.NewDatabase()
	r := cqbound.NewRelation("R", "a", "b")
	s := cqbound.NewRelation("S", "a", "b")
	for i := 0; i < 200; i++ {
		r.Add(fmt.Sprintf("x%d", i), "hub") // one dominant join value
	}
	s.Add("hub", "z")
	db.MustAdd(r)
	db.MustAdd(s)

	eng := cqbound.NewEngine(cqbound.WithSharding(0, 4), cqbound.WithSkewSplitting(0.2))
	out, _, err := eng.Evaluate(context.Background(), q, db)
	if err != nil {
		panic(err)
	}
	st := eng.ShardStats()
	fmt.Println(out.Size(), "tuples; hot shards split:", st.SkewSplits > 0)
	// Output:
	// 200 tuples; hot shards split: true
}

// ExampleEngine_CacheStats shows the serving-trace counters of the
// analysis and plan LRU caches: the first evaluation of a query text
// misses, repeats hit.
func ExampleEngine_CacheStats() {
	eng := cqbound.NewEngine()
	q := cqbound.MustParse("Q(X,Z) <- R(X,Y), S(Y,Z).")
	db := cqbound.NewDatabase()
	r := cqbound.NewRelation("R", "a", "b")
	r.Add("x", "y")
	s := cqbound.NewRelation("S", "a", "b")
	s.Add("y", "z")
	db.MustAdd(r)
	db.MustAdd(s)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, _, err := eng.Evaluate(ctx, q, db); err != nil {
			panic(err)
		}
	}
	hits, misses := eng.CacheStats()
	fmt.Println("hits:", hits, "misses:", misses)
	// Output:
	// hits: 2 misses: 1
}

// ExampleEngine_ShardStats reads the exchange-routing counters: how many
// operators ran partition-parallel vs fell back, and how many rows were
// reused in place vs physically repartitioned.
func ExampleEngine_ShardStats() {
	q := cqbound.MustParse("Q(A,D) <- R(A,B), S(B,C), T(C,D).")
	db := cqbound.NewDatabase()
	for _, name := range []string{"R", "S", "T"} {
		rel := cqbound.NewRelation(name, "a", "b")
		for i := 0; i < 60; i++ {
			rel.Add(fmt.Sprintf("u%d", i%12), fmt.Sprintf("u%d", (i+1)%12))
		}
		db.MustAdd(rel)
	}
	eng := cqbound.NewEngine(cqbound.WithSharding(0, 4))
	if _, _, err := eng.Evaluate(context.Background(), q, db); err != nil {
		panic(err)
	}
	st := eng.ShardStats()
	fmt.Println("ran sharded:", st.ShardedOps > 0 && st.FallbackOps == 0)
	fmt.Println("rows reused without repartitioning:", st.ReusedRows > 0)
	// Output:
	// ran sharded: true
	// rows reused without repartitioning: true
}

// ExampleWithMemoryBudget builds an engine whose resident shard bytes are
// capped: when partition shards and partitioned intermediates exceed the
// budget, the coldest unpinned shards are parked in file-backed segments
// under the spill directory and reloaded transparently on next use.
// Outputs are identical to an unbudgeted engine's; SpillStats shows the
// governor at work, and Close releases the segment files.
func ExampleWithMemoryBudget() {
	q := cqbound.MustParse("Q(A,D) <- R(A,B), S(B,C), T(C,D).")
	db := cqbound.NewDatabase()
	for _, name := range []string{"R", "S", "T"} {
		rel := cqbound.NewRelation(name, "a", "b")
		for i := 0; i < 300; i++ {
			rel.Add(fmt.Sprintf("u%d", (i*7)%50), fmt.Sprintf("u%d", (i*13)%50))
		}
		db.MustAdd(rel)
	}

	budgeted := cqbound.NewEngine(
		cqbound.WithSharding(0, 8),         // spilling's unit is the shard
		cqbound.WithMemoryBudget(1<<10),    // 1 KiB: far below the working set
		cqbound.WithSpillDir(os.TempDir()), // default; private subdir per engine
	)
	defer budgeted.Close()
	plain := cqbound.NewEngine()
	ctx := context.Background()
	a, _, err := budgeted.Evaluate(ctx, q, db)
	if err != nil {
		panic(err)
	}
	b, _, err := plain.Evaluate(ctx, q, db)
	if err != nil {
		panic(err)
	}
	st := budgeted.SpillStats()
	fmt.Println("identical:", cqbound.RelationsEqual(a, b))
	fmt.Println("spilled:", st.Evictions > 0, "reloaded:", st.ReloadedShards > 0)
	// Output:
	// identical: true
	// spilled: true reloaded: true
}

// ExampleEngine_ResetStats scopes the engine's counters to a window: reset
// before a query, snapshot after it — the pattern cqbench uses to report
// per-query routing and spill numbers instead of run-long sums.
func ExampleEngine_ResetStats() {
	q := cqbound.MustParse("Q(X,Z) <- R(X,Y), S(Y,Z).")
	db := cqbound.NewDatabase()
	r := cqbound.NewRelation("R", "a", "b")
	s := cqbound.NewRelation("S", "a", "b")
	for i := 0; i < 80; i++ {
		r.Add(fmt.Sprintf("x%d", i%20), fmt.Sprintf("y%d", i%9))
		s.Add(fmt.Sprintf("y%d", i%9), fmt.Sprintf("z%d", i%6))
	}
	db.MustAdd(r)
	db.MustAdd(s)
	eng := cqbound.NewEngine(cqbound.WithSharding(0, 4))
	ctx := context.Background()
	if _, _, err := eng.Evaluate(ctx, q, db); err != nil {
		panic(err)
	}
	eng.ResetStats() // drop warm-up traffic
	if _, _, err := eng.Evaluate(ctx, q, db); err != nil {
		panic(err)
	}
	hits, misses := eng.CacheStats()
	st := eng.ShardStats()
	fmt.Println("window cache hits:", hits, "misses:", misses)
	fmt.Println("window sharded ops:", st.ShardedOps > 0)
	// Output:
	// window cache hits: 1 misses: 0
	// window sharded ops: true
}

// ExampleWithBatchSize tunes the streamed executors' batch granularity
// and reads StreamStats: evaluation is streamed by default — per-shard
// pull pipelines move fixed-size column batches from scan through probes
// and projection, materializing only the output — and the batch size
// trades per-batch overhead against the residency bound. Outputs are
// identical at every size (and under WithMaterializedExec).
func ExampleWithBatchSize() {
	q := cqbound.MustParse("Q(A,D) <- R(A,B), S(B,C), T(C,D).")
	db := cqbound.NewDatabase()
	for _, name := range []string{"R", "S", "T"} {
		rel := cqbound.NewRelation(name, "a", "b")
		for i := 0; i < 200; i++ {
			rel.Add(fmt.Sprintf("u%d", (i*7)%40), fmt.Sprintf("u%d", (i*13)%40))
		}
		db.MustAdd(rel)
	}
	small := cqbound.NewEngine(cqbound.WithSharding(0, 4), cqbound.WithBatchSize(8))
	deflt := cqbound.NewEngine(cqbound.WithSharding(0, 4)) // batch size 1024
	ctx := context.Background()
	a, _, err := small.Evaluate(ctx, q, db)
	if err != nil {
		panic(err)
	}
	b, _, err := deflt.Evaluate(ctx, q, db)
	if err != nil {
		panic(err)
	}
	st := small.StreamStats()
	fmt.Println("identical:", cqbound.RelationsEqual(a, b))
	fmt.Println("streamed batches:", st.BatchesProduced > 0)
	fmt.Println("bytes never materialized:", st.BytesNeverMaterialized > 0)
	// Output:
	// identical: true
	// streamed batches: true
	// bytes never materialized: true
}

// ExampleEngine_Begin ingests through a transaction, evaluates against a
// pinned snapshot, and shows the snapshot surviving a later commit: the
// reader's epoch is frozen until it closes.
func ExampleEngine_Begin() {
	eng := cqbound.NewEngine()
	txn := eng.Begin()
	txn.Create("Parent", "parent", "child")
	txn.Add("Parent", "alice", "bob")
	txn.Add("Parent", "bob", "carol")
	epoch, err := txn.Commit()
	if err != nil {
		panic(err)
	}
	fmt.Println("published epoch:", epoch)

	snap := eng.Snapshot() // pin the epoch the batch just published
	defer snap.Close()
	q := cqbound.MustParse("Q(X,Z) <- Parent(X,Y), Parent(Y,Z).")
	out, _, err := eng.Evaluate(context.Background(), q, snap.DB())
	if err != nil {
		panic(err)
	}
	out.Each(func(t cqbound.Tuple) bool {
		fmt.Println("grandparent:", t.StringsIn(eng.Dict()))
		return true
	})

	// A writer commits meanwhile; the pinned snapshot is unaffected.
	txn = eng.Begin()
	txn.Add("Parent", "carol", "dave")
	txn.Commit()
	fmt.Println("snapshot still sees:", snap.DB().Relation("Parent").Size(), "rows")
	fmt.Println("live epoch sees:", eng.Snapshot().DB().Relation("Parent").Size(), "rows")
	// Output:
	// published epoch: 2
	// grandparent: [alice carol]
	// snapshot still sees: 2 rows
	// live epoch sees: 3 rows
}

// ExampleEngine_ExplainAnalyze renders the annotated plan for the
// triangle query: the paper's worst-case bound and the per-operator
// System-R estimates next to the actual row counts each operator
// produced. Only the strategy line is deterministic — row counts and
// wall times vary — so the example checks the annotations' presence.
func ExampleEngine_ExplainAnalyze() {
	eng := cqbound.NewEngine()
	q := cqbound.MustParse("Q(X,Y,Z) <- E(X,Y), E(Y,Z), E(X,Z).")
	db := cqbound.NewDatabase()
	e := cqbound.NewRelation("E", "a", "b")
	for i := 0; i < 30; i++ {
		for j := 1; j <= 5; j++ {
			e.Add(fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", (i+j)%30))
		}
	}
	db.MustAdd(e)
	out, err := eng.ExplainAnalyze(context.Background(), q, db)
	if err != nil {
		panic(err)
	}
	fmt.Println(strings.SplitN(out, "\n", 2)[0])
	fmt.Println("paper bound on root:", strings.Contains(out, "rmax^C"))
	fmt.Println("per-operator estimates:", strings.Contains(out, "est="))
	fmt.Println("stats deltas:", strings.Contains(out, "deltas"))
	// Output:
	// strategy: project-early
	// paper bound on root: true
	// per-operator estimates: true
	// stats deltas: true
}
