// Command twcalc computes treewidth bounds for a graph given as an edge
// list (one "u v" pair per line, arbitrary string labels; lines starting
// with '#' are ignored). Small graphs are solved exactly; larger ones get a
// [lower, upper] interval from the contraction lower bound and the best of
// the min-degree/min-fill elimination heuristics.
//
// Usage:
//
//	twcalc [file]
package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"cqbound/internal/graph"
	"cqbound/internal/treewidth"
)

func main() {
	var r io.Reader = os.Stdin
	if len(os.Args) == 2 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	} else if len(os.Args) > 2 {
		fmt.Fprintln(os.Stderr, "usage: twcalc [file]")
		os.Exit(2)
	}
	g := graph.New()
	scanner := bufio.NewScanner(r)
	line := 0
	for scanner.Scan() {
		line++
		text := strings.TrimSpace(scanner.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			fatal(fmt.Errorf("line %d: want two labels, got %q", line, text))
		}
		g.AddEdgeLabels(fields[0], fields[1])
	}
	if err := scanner.Err(); err != nil {
		fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.N(), g.M())
	lo, hi, exact, err := treewidth.Treewidth(g)
	if err != nil {
		fatal(err)
	}
	if exact {
		fmt.Printf("treewidth: %d (exact)\n", hi)
	} else {
		fmt.Printf("treewidth: in [%d, %d] (lower: contraction bound; upper: elimination heuristics)\n", lo, hi)
	}
	if g.N() > 0 && g.N() <= treewidth.MaxExactVertices {
		_, order, err := treewidth.Exact(g)
		if err != nil {
			fatal(err)
		}
		labels := make([]string, len(order))
		for i, v := range order {
			labels[i] = g.Label(v)
		}
		fmt.Printf("optimal elimination order: %s\n", strings.Join(labels, " "))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "twcalc:", err)
	os.Exit(1)
}
