// Command cqbound analyzes a conjunctive query: it prints the chase, the
// color number C(chase(Q)), the worst-case size bound rmax^C, the entropy
// upper bound s(Q), the size-increase decision, fractional edge covers, and
// the treewidth-preservation verdict.
//
// With -explain it additionally prints the evaluation plan the bound-driven
// planner would pick for the query, with its rationale.
//
// Usage:
//
//	cqbound [-chase] [-coloring] [-explain] [-rmax N] [file]
//
// The query is read from the file argument or standard input, in the form
//
//	Q(X,Y,Z) <- R(X,Y), R(X,Z), S(Y,Z).
//	key R[1].
//	fd S[1],S[2] -> S[2].
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"cqbound/internal/core"
	"cqbound/internal/cq"
	"cqbound/internal/plan"
)

func main() {
	chaseFlag := flag.Bool("chase", false, "print chase(Q)")
	coloringFlag := flag.Bool("coloring", false, "print the optimal coloring")
	explainFlag := flag.Bool("explain", false, "print the planner's evaluation strategy and rationale")
	rmaxFlag := flag.Int("rmax", 0, "print the size bound for this input relation size")
	flag.Parse()

	var src []byte
	var err error
	switch flag.NArg() {
	case 0:
		src, err = io.ReadAll(os.Stdin)
	case 1:
		src, err = os.ReadFile(flag.Arg(0))
	default:
		fmt.Fprintln(os.Stderr, "usage: cqbound [-chase] [-coloring] [-explain] [-rmax N] [file]")
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}
	q, err := cq.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	a, err := core.Analyze(q)
	if err != nil {
		fatal(err)
	}
	fmt.Print(a.Summary())
	if *chaseFlag {
		fmt.Printf("chase(Q):\n%s\n", a.Chased)
	}
	if *coloringFlag && a.Coloring != nil {
		fmt.Println("optimal coloring of chase(Q):")
		vars := make([]string, 0, len(a.Coloring))
		for v := range a.Coloring {
			vars = append(vars, string(v))
		}
		sort.Strings(vars)
		for _, v := range vars {
			fmt.Printf("  L(%s) = %v\n", v, a.Coloring[cq.Variable(v)].Sorted())
		}
	}
	if *rmaxFlag > 0 {
		bound, err := a.SizeBound(*rmaxFlag)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("size bound for rmax=%d: |Q(D)| <= %.1f\n", *rmaxFlag, bound)
	}
	if *explainFlag {
		p, err := plan.Choose(q)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("evaluation plan:\n%s\n", p)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cqbound:", err)
	os.Exit(1)
}
