// Command cqload replays a mixed query workload against the cqserve HTTP
// front-end at configurable concurrency and records the serving
// trajectory: throughput, P50/P99 tail latency, admission rejects, and
// peak RSS per concurrency level. The recorded document lives in
// BENCH_serve.json — the baseline every later serving PR moves.
//
// The mix models a read-heavy graph service: key-anchored point lookups
// (40%), star and path joins (30%), the cyclic triangle whose AGM bound
// makes it the admission controller's main customer (10%), a Zipf-skewed
// two-hop join (10%), and concurrent ingest batches that advance the
// epoch and invalidate the result cache (10%).
//
// By default cqload starts an in-process server on a loopback port so
// peak RSS covers client and server together and -race smokes the whole
// stack (CI runs exactly that); -addr points it at an external cqserve
// instead, where RSS then covers only the client side.
//
// -obsbench additionally measures observability overhead: a second
// in-process server over the same engine with the layer disabled, driven
// through alternating rounds, medians compared (the obs_overhead row in
// BENCH_serve.json). -obsgate fails the run when the overhead fraction
// exceeds it — the CI regression gate.
//
// Usage:
//
//	cqload [-requests N] [-concurrency 1,8,64] [-edges N] [-universe N]
//	       [-shards N] [-membudget BYTES] [-admission BYTES] [-queue N]
//	       [-cache N] [-seed N] [-addr host:port] [-json]
//	       [-obsbench] [-obsgate FRAC]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"

	cqbound "cqbound"
)

// LoadLevelResult is one concurrency level's measurement.
type LoadLevelResult struct {
	Concurrency int `json:"concurrency"`
	// Requests were issued; Succeeded returned 200, Rejected 429 (admission
	// shedding), Errors anything else.
	Requests  int `json:"requests"`
	Succeeded int `json:"succeeded"`
	Rejected  int `json:"rejected"`
	Errors    int `json:"errors"`
	// WallNs is the level's wall clock; Throughput counts succeeded
	// requests per second against it.
	WallNs     int64   `json:"wall_ns"`
	Throughput float64 `json:"throughput_rps"`
	// P50Ns / P99Ns are client-side latency quantiles over succeeded
	// requests (exact, from the sorted sample).
	P50Ns int64 `json:"p50_ns"`
	P99Ns int64 `json:"p99_ns"`
	// PeakRSSBytes is the process high-water mark after the level —
	// monotone across levels, so each reading is "peak so far". Always
	// bytes: sourced from VmHWM (kibibytes, shifted) on Linux and from
	// getrusage ru_maxrss elsewhere, whose native unit differs per OS
	// (KiB on Linux, bytes on Darwin) and is normalized before recording.
	PeakRSSBytes int64 `json:"peak_rss_bytes"`
	// CacheHits counts responses served from the (query, epoch) result
	// cache; Commits counts ingest requests that advanced the epoch.
	CacheHits int            `json:"cache_hits"`
	Commits   int            `json:"commits"`
	ByKind    map[string]int `json:"by_kind"`
}

// ObsOverheadResult compares the serving path with and without the
// observability layer (correlation middleware, rolling windows,
// calibration recording): alternating measurement rounds against two
// servers sharing one engine, medians compared. Overhead is the fraction
// of throughput the observed server gives up ((off − on) / off; negative
// means noise favored the observed side).
type ObsOverheadResult struct {
	Concurrency   int     `json:"concurrency"`
	Requests      int     `json:"requests_per_round"`
	Rounds        int     `json:"rounds"`
	OnThroughput  float64 `json:"obs_on_rps"`
	OffThroughput float64 `json:"obs_off_rps"`
	Overhead      float64 `json:"overhead_frac"`
}

// LoadReport is the top-level JSON document (BENCH_serve.json).
type LoadReport struct {
	Addr        string             `json:"addr"`
	GOMAXPROCS  int                `json:"gomaxprocs"`
	Shards      int                `json:"shards"`
	BudgetBytes int64              `json:"budget_bytes"`
	Admission   int64              `json:"admission_bytes"`
	Edges       int                `json:"edges"`
	Universe    int                `json:"universe"`
	Levels      []LoadLevelResult  `json:"levels"`
	ObsOverhead *ObsOverheadResult `json:"obs_overhead,omitempty"`
}

func main() {
	requests := flag.Int("requests", 1000, "requests per concurrency level")
	concurrency := flag.String("concurrency", "1,8,64", "comma-separated concurrency levels")
	edges := flag.Int("edges", 2000, "edges per base relation")
	universe := flag.Int("universe", 200, "node universe size")
	shards := flag.Int("shards", 0, "partition count for the in-process engine (0 = GOMAXPROCS)")
	membudget := flag.Int64("membudget", 64<<20, "in-process engine memory budget in bytes")
	admission := flag.Int64("admission", 8<<20, "admission budget in bytes")
	queue := flag.Int("queue", 16, "admission queue depth")
	cache := flag.Int("cache", 256, "result cache entries (0 disables)")
	seed := flag.Int64("seed", 20260807, "workload RNG seed")
	addr := flag.String("addr", "", "target an external cqserve at host:port instead of in-process")
	asJSON := flag.Bool("json", false, "emit the report as JSON (the BENCH_serve.json document)")
	obsBench := flag.Bool("obsbench", false, "measure observability overhead (obs-on vs obs-off servers over one engine)")
	obsGate := flag.Float64("obsgate", 0, "fail (exit 1) when observability overhead exceeds this fraction (0 disables)")
	flag.Parse()

	levels, err := parseLevels(*concurrency)
	if err != nil {
		fatal(err)
	}
	if *obsBench && *addr != "" {
		fatal(fmt.Errorf("-obsbench needs the in-process server pair; drop -addr"))
	}

	base := *addr
	var offBase string
	if base == "" {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		eng := cqbound.NewEngine(
			cqbound.WithSharding(1024, *shards),
			cqbound.WithMemoryBudget(*membudget),
		)
		defer eng.Close()
		srv := cqbound.NewServer(eng,
			cqbound.WithAdmissionBudget(*admission),
			cqbound.WithAdmissionQueue(*queue),
			cqbound.WithResultCache(*cache),
		)
		defer srv.Close()
		hs := &http.Server{Handler: srv}
		go hs.Serve(ln)
		defer hs.Close()
		base = ln.Addr().String()

		if *obsBench {
			// A second front-end over the same engine, observability off:
			// same data, same plans, same admission config — the only
			// difference is the layer under measurement.
			offLn, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				fatal(err)
			}
			offSrv := cqbound.NewServer(eng,
				cqbound.WithAdmissionBudget(*admission),
				cqbound.WithAdmissionQueue(*queue),
				cqbound.WithResultCache(*cache),
				cqbound.WithoutObservability(),
			)
			defer offSrv.Close()
			offHs := &http.Server{Handler: offSrv}
			go offHs.Serve(offLn)
			defer offHs.Close()
			offBase = offLn.Addr().String()
		}
	}

	report := &LoadReport{
		Addr:        base,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Shards:      *shards,
		BudgetBytes: *membudget,
		Admission:   *admission,
		Edges:       *edges,
		Universe:    *universe,
	}
	h := newHarness("http://"+base, *seed, *edges, *universe)
	if err := h.load(); err != nil {
		fatal(err)
	}
	for _, c := range levels {
		res, err := h.run(c, *requests)
		if err != nil {
			fatal(err)
		}
		report.Levels = append(report.Levels, *res)
	}

	if *obsBench {
		// The off-side harness shares the engine (and thus the dataset the
		// on-side already loaded) but drives its own front-end.
		offH := newHarness("http://"+offBase, *seed+1, *edges, *universe)
		ob, err := runObsBench(h, offH, levels[len(levels)-1], *requests)
		if err != nil {
			fatal(err)
		}
		report.ObsOverhead = ob
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fatal(err)
		}
	} else {
		fmt.Printf("addr=%s gomaxprocs=%d budget=%d admission=%d edges=%d\n",
			report.Addr, report.GOMAXPROCS, report.BudgetBytes, report.Admission, report.Edges)
		for _, l := range report.Levels {
			fmt.Printf("  c=%-3d %6.0f req/s  p50=%-10s p99=%-10s ok=%d rejected=%d errors=%d hits=%d commits=%d rss=%dMiB\n",
				l.Concurrency, l.Throughput, fmtNs(l.P50Ns), fmtNs(l.P99Ns),
				l.Succeeded, l.Rejected, l.Errors, l.CacheHits, l.Commits, l.PeakRSSBytes>>20)
		}
		if ob := report.ObsOverhead; ob != nil {
			fmt.Printf("  obs overhead c=%-3d on=%.0f req/s off=%.0f req/s overhead=%+.1f%%\n",
				ob.Concurrency, ob.OnThroughput, ob.OffThroughput, 100*ob.Overhead)
		}
	}

	if ob := report.ObsOverhead; ob != nil && *obsGate > 0 && ob.Overhead > *obsGate {
		fmt.Fprintf(os.Stderr, "cqload: observability overhead %.1f%% exceeds gate %.1f%%\n",
			100*ob.Overhead, 100**obsGate)
		os.Exit(1)
	}
}

// runObsBench interleaves measurement rounds against the observed and
// unobserved front-ends (one warmup round each, then `rounds` measured
// pairs) and compares median throughputs. Interleaving keeps slow drift
// (cache warmth, epoch advancement from the mix's ingest share, GC
// pressure) from landing on one side only.
func runObsBench(on, off *harness, concurrency, requests int) (*ObsOverheadResult, error) {
	const rounds = 3
	if _, err := on.run(concurrency, requests); err != nil {
		return nil, err
	}
	if _, err := off.run(concurrency, requests); err != nil {
		return nil, err
	}
	var onT, offT []float64
	for i := 0; i < rounds; i++ {
		r, err := on.run(concurrency, requests)
		if err != nil {
			return nil, err
		}
		onT = append(onT, r.Throughput)
		if r, err = off.run(concurrency, requests); err != nil {
			return nil, err
		}
		offT = append(offT, r.Throughput)
	}
	res := &ObsOverheadResult{
		Concurrency:   concurrency,
		Requests:      requests,
		Rounds:        rounds,
		OnThroughput:  median(onT),
		OffThroughput: median(offT),
	}
	if res.OffThroughput > 0 {
		res.Overhead = (res.OffThroughput - res.OnThroughput) / res.OffThroughput
	}
	return res, nil
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

func parseLevels(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("cqload: bad concurrency level %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func fmtNs(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	default:
		return fmt.Sprintf("%.0fµs", float64(ns)/1e3)
	}
}

// peakRSS reads the process high-water mark: /proc/self/status (VmHWM,
// kibibytes) where procfs exists, getrusage(2) ru_maxrss elsewhere
// (kibibytes on Linux, bytes on Darwin — rusageRSS normalizes both to
// bytes); 0 where neither source is available.
func peakRSS() int64 {
	if rss := procRSS(); rss > 0 {
		return rss
	}
	return rusageRSS()
}

// procRSS parses VmHWM out of /proc/self/status; 0 without procfs.
func procRSS() int64 {
	b, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(b), "\n") {
		if rest, ok := strings.CutPrefix(line, "VmHWM:"); ok {
			fields := strings.Fields(rest)
			if len(fields) >= 1 {
				if kb, err := strconv.ParseInt(fields[0], 10, 64); err == nil {
					return kb << 10
				}
			}
		}
	}
	return 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cqload:", err)
	os.Exit(1)
}
