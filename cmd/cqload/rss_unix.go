//go:build unix

package main

import (
	"runtime"
	"syscall"
)

// rusageRSS reads the process high-water mark from getrusage(2) — the
// fallback where /proc/self/status (VmHWM) is unavailable, i.e. every
// unix that is not Linux. ru_maxrss is kibibytes on Linux but bytes on
// Darwin; normalize to bytes so PeakRSSBytes means the same thing
// everywhere.
func rusageRSS() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	rss := int64(ru.Maxrss)
	if runtime.GOOS != "darwin" {
		rss <<= 10
	}
	return rss
}
