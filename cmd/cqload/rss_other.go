//go:build !unix

package main

// rusageRSS has no portable source on non-unix platforms; peak RSS
// reports 0 there.
func rusageRSS() int64 { return 0 }
