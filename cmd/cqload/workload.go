package main

// The replay harness: the dataset, the weighted request mix, and the
// concurrent client driver. All traffic goes over real HTTP — the same
// endpoints, JSON shapes and error contracts a production client sees.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cqbound/internal/datagen"
	"cqbound/internal/relation"
)

// The request mix: cumulative weights out of 100, drawn per request.
type requestKind struct {
	name   string
	weight int
}

var mix = []requestKind{
	{"point", 40},    // key-anchored acyclic lookup
	{"star3", 15},    // 3-arm star join
	{"path3", 15},    // 3-hop path join
	{"triangle", 10}, // cyclic; AGM-bounded, admission's main customer
	{"zipf", 10},     // two-hop join over Zipf-skewed edges
	{"ingest", 10},   // delta commit: advances the epoch, invalidates cache
}

// queries maps each read kind to its query text over the loaded schema.
var queries = map[string]string{
	"point":    "Q(X,Y) <- K(X), E(X,Y).",
	"star3":    "Q(X,A,B,C) <- E(X,A), F(X,B), G(X,C).",
	"path3":    "Q(A,D) <- E(A,B), F(B,C), G(C,D).",
	"triangle": "Q(X,Y,Z) <- E(X,Y), F(Y,Z), G(Z,X).",
	"zipf":     "Q(X,Z) <- Z1(X,Y), Z2(Y,Z).",
}

// harness drives one server (in-process or external) through the mix.
type harness struct {
	base     string
	client   *http.Client
	rng      *rand.Rand
	edges    int
	universe int
	// ingestSeq names fresh nodes so delta commits always add new edges.
	ingestSeq atomic.Int64
}

func newHarness(base string, seed int64, edges, universe int) *harness {
	return &harness{
		base: base,
		client: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 256,
		}},
		rng:      rand.New(rand.NewSource(seed)),
		edges:    edges,
		universe: universe,
	}
}

type commitOp struct {
	Op    string     `json:"op"`
	Rel   string     `json:"rel"`
	Attrs []string   `json:"attrs,omitempty"`
	Rows  [][]string `json:"rows,omitempty"`
}

// load creates the schema and base data through POST /commit: three plain
// edge relations (E, F, G), two Zipf-skewed ones (Z1, Z2), and the small
// key relation K anchoring the point lookups.
func (h *harness) load() error {
	db := datagen.EdgeDB(h.rng, []string{"E", "F", "G"}, h.edges, h.universe)
	zdb := datagen.ZipfEdgeDB(h.rng, []string{"Z1", "Z2"}, h.edges, h.universe, 1.5)
	ops := []commitOp{}
	stage := func(db interface {
		Names() []string
		Relation(string) *relation.Relation
	}) {
		for _, name := range db.Names() {
			r := db.Relation(name)
			rows := make([][]string, 0, r.Size())
			r.Each(func(tp relation.Tuple) bool {
				rows = append(rows, tp.Strings())
				return true
			})
			ops = append(ops, commitOp{Op: "create", Rel: name, Attrs: r.Attrs},
				commitOp{Op: "append", Rel: name, Rows: rows})
		}
	}
	stage(db)
	stage(zdb)
	keys := make([][]string, 0, 8)
	for i := 0; i < 8; i++ {
		keys = append(keys, []string{fmt.Sprintf("u%d", h.rng.Intn(h.universe))})
	}
	ops = append(ops, commitOp{Op: "create", Rel: "K", Attrs: []string{"k"}},
		commitOp{Op: "append", Rel: "K", Rows: keys})
	return h.commit(ops)
}

func (h *harness) commit(ops []commitOp) error {
	body, err := json.Marshal(map[string]any{"ops": ops})
	if err != nil {
		return err
	}
	resp, err := h.client.Post(h.base+"/commit", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("POST /commit: status %d: %s", resp.StatusCode, b)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// outcome is one request's measurement.
type outcome struct {
	kind    string
	status  int
	cached  bool
	latency time.Duration
}

// run replays `requests` mixed requests at the given concurrency and
// aggregates the level's result.
func (h *harness) run(concurrency, requests int) (*LoadLevelResult, error) {
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		outcomes = make([]outcome, 0, requests)
		firstErr error
	)
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*7919 + 1))
			local := make([]outcome, 0, requests/concurrency+1)
			for int(next.Add(1)) <= requests {
				o, err := h.one(rng)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				local = append(local, o)
			}
			mu.Lock()
			outcomes = append(outcomes, local...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	if firstErr != nil {
		return nil, firstErr
	}

	res := &LoadLevelResult{
		Concurrency: concurrency,
		Requests:    len(outcomes),
		WallNs:      wall.Nanoseconds(),
		ByKind:      map[string]int{},
	}
	var lat []time.Duration
	for _, o := range outcomes {
		res.ByKind[o.kind]++
		switch {
		case o.status == http.StatusOK:
			res.Succeeded++
			if o.cached {
				res.CacheHits++
			}
			if o.kind == "ingest" {
				res.Commits++
			}
			lat = append(lat, o.latency)
		case o.status == http.StatusTooManyRequests:
			res.Rejected++
		default:
			res.Errors++
		}
	}
	if wall > 0 {
		res.Throughput = float64(res.Succeeded) / wall.Seconds()
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	if n := len(lat); n > 0 {
		res.P50Ns = lat[n/2].Nanoseconds()
		res.P99Ns = lat[n*99/100].Nanoseconds()
	}
	res.PeakRSSBytes = peakRSS()
	return res, nil
}

// one issues a single request drawn from the mix.
func (h *harness) one(rng *rand.Rand) (outcome, error) {
	draw, kind := rng.Intn(100), ""
	for _, k := range mix {
		if draw < k.weight {
			kind = k.name
			break
		}
		draw -= k.weight
	}
	start := time.Now()
	if kind == "ingest" {
		rows := make([][]string, 0, 4)
		for i := 0; i < 4; i++ {
			rows = append(rows, []string{
				fmt.Sprintf("n%d", h.ingestSeq.Add(1)),
				fmt.Sprintf("u%d", rng.Intn(h.universe)),
			})
		}
		err := h.commit([]commitOp{{Op: "append", Rel: "E", Rows: rows}})
		status := http.StatusOK
		if err != nil {
			return outcome{}, err
		}
		return outcome{kind: kind, status: status, latency: time.Since(start)}, nil
	}
	v := url.Values{"q": {queries[kind]}}
	resp, err := h.client.Get(h.base + "/query?" + v.Encode())
	if err != nil {
		return outcome{}, err
	}
	o := outcome{kind: kind, status: resp.StatusCode}
	if resp.StatusCode == http.StatusOK {
		var body struct {
			Cached bool `json:"cached"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			resp.Body.Close()
			return outcome{}, err
		}
		o.cached = body.Cached
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	o.latency = time.Since(start)
	return o, nil
}
