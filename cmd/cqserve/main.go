// Command cqserve runs the cqbound query service: one Engine behind the
// HTTP front-end of the root package's Server — /query, /commit,
// /explain, /metrics and /snapshot — with per-request deadlines,
// bound-based admission control over the spill governor's budget, and an
// epoch-keyed result cache.
//
// The server starts empty; clients create relations and load data through
// POST /commit and evaluate with GET /query?q=... (add &trace=1 for the
// full execution trace, pin epochs via POST /snapshot for multi-query
// consistency). Admission rejects with 429 once the queue is full;
// watch /metrics (the serve_admission_* family) to see it work.
//
// The serving path is observable out of the box (ARCHITECTURE §12):
// responses carry X-Request-ID, /metrics?format=prom serves Prometheus
// text, /healthz and /readyz answer probes, /debug/pprof profiles the
// process, /debug/requests lists in-flight queries, and /calibration
// reports how the paper's admission bounds track actual cardinalities.
// -access streams the sampled JSON access log to stderr; -no-obs turns
// the whole layer off.
//
// Usage:
//
//	cqserve [-addr :8080] [-shards N] [-shard-threshold N]
//	        [-membudget BYTES] [-spilldir DIR]
//	        [-admission BYTES] [-queue N] [-cache N]
//	        [-timeout D] [-slow D] [-trace]
//	        [-access] [-access-sample N] [-no-obs]
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"time"

	cqbound "cqbound"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.Int("shards", 0, "partition count for sharded execution (0 = GOMAXPROCS)")
	shardThreshold := flag.Int("shard-threshold", 1024, "row threshold below which operators stay single-shard")
	membudget := flag.Int64("membudget", 0, "spill governor budget in bytes (0 = unlimited)")
	spilldir := flag.String("spilldir", "", "spill directory (default: system temp)")
	admission := flag.Int64("admission", 0, "admission budget in bytes (0 = inherit membudget, or 64MiB)")
	queue := flag.Int("queue", 16, "admission queue depth before 429s")
	cache := flag.Int("cache", 256, "result cache entries (0 disables)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline")
	slow := flag.Duration("slow", 0, "slow-query log threshold on stderr (0 disables)")
	traceAll := flag.Bool("trace", false, "trace every evaluation (feeds histograms and the slow-query log)")
	access := flag.Bool("access", false, "write the sampled JSON access log to stderr")
	accessSample := flag.Int("access-sample", 10, "log one in N successful requests (non-200s always log)")
	noObs := flag.Bool("no-obs", false, "disable serving-path observability (correlation, windows, /debug, /calibration)")
	flag.Parse()

	var opts []cqbound.Option
	opts = append(opts, cqbound.WithSharding(*shardThreshold, *shards))
	if *membudget > 0 {
		opts = append(opts, cqbound.WithMemoryBudget(*membudget))
	}
	if *spilldir != "" {
		opts = append(opts, cqbound.WithSpillDir(*spilldir))
	}
	if *slow > 0 {
		opts = append(opts, cqbound.WithTracing(), cqbound.WithSlowQueryThreshold(*slow))
	} else if *traceAll {
		opts = append(opts, cqbound.WithTracing())
	}
	eng := cqbound.NewEngine(opts...)
	defer eng.Close()

	srvOpts := []cqbound.ServerOption{
		cqbound.WithRequestTimeout(*timeout),
		cqbound.WithAdmissionQueue(*queue),
		cqbound.WithResultCache(*cache),
	}
	if *admission > 0 {
		srvOpts = append(srvOpts, cqbound.WithAdmissionBudget(*admission))
	}
	if *noObs {
		srvOpts = append(srvOpts, cqbound.WithoutObservability())
	} else if *access {
		srvOpts = append(srvOpts, cqbound.WithAccessLog(os.Stderr, *accessSample))
	}
	srv := cqbound.NewServer(eng, srvOpts...)
	defer srv.Close()

	hs := &http.Server{Addr: *addr, Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "cqserve: listening on %s\n", *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "cqserve: %v\n", err)
		os.Exit(1)
	case <-sig:
		fmt.Fprintln(os.Stderr, "cqserve: shutting down")
		hs.Close()
	}
}
