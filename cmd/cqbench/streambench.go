package main

// The stream benchmark compares the two executors the engine can run: the
// materialize-per-operator path (WithMaterializedExec) against the
// default streamed column-batch pipelines, at several batch sizes, on the
// scaled workloads. Both sides run under the same huge-budget governor so
// PeakResidentBytes records what each executor actually kept registered —
// the materialized side's intermediates versus the streamed side's base
// partitions and sinks — and a -membudget override runs both sides at one
// shared forcing budget instead. The recorded document lives in
// BENCH_stream.json; the interesting columns are peak_vs_materialized
// (the residency the pipelines avoid) and wall_vs_materialized (the price
// paid for it, expected ~1.0).

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	cqbound "cqbound"
	"cqbound/internal/eval"
)

// streamBenchBatchSizes are the batch sizes the streamed side sweeps:
// small enough that per-batch overhead would show, the default, and large
// enough that batches approach small-relation sizes.
var streamBenchBatchSizes = []int{64, 1024, 8192}

// StreamRun is one (workload, executor, batch size) measurement.
type StreamRun struct {
	// Mode is "materialized" or "streamed".
	Mode string `json:"mode"`
	// BatchSize is the streamed pipeline batch size; 0 on the
	// materialized row.
	BatchSize    int   `json:"batch_size"`
	NsPerOp      int64 `json:"ns_per_op"`
	OutputTuples int   `json:"output_tuples"`
	// PeakResidentBytes is the governor's high-water mark over one
	// instrumented evaluation: every byte the executor registered, on the
	// materialized side including each operator's full output.
	PeakResidentBytes int64 `json:"peak_resident_bytes"`
	// WallVsMaterialized and PeakVsMaterialized are this run's ns/op and
	// peak residency relative to the workload's materialized row.
	WallVsMaterialized float64 `json:"wall_vs_materialized"`
	PeakVsMaterialized float64 `json:"peak_vs_materialized"`

	// Streamed-pipeline counters for the instrumented evaluation; zero on
	// the materialized row.
	BatchesProduced        int64 `json:"batches_produced"`
	RowsStreamed           int64 `json:"rows_streamed"`
	BytesNeverMaterialized int64 `json:"bytes_never_materialized"`
}

// StreamWorkloadResult groups one workload's executor sweep.
type StreamWorkloadResult struct {
	Name  string      `json:"name"`
	Query string      `json:"query"`
	Runs  []StreamRun `json:"runs"`
}

// StreamBenchReport is the top-level JSON document of -streambench.
type StreamBenchReport struct {
	Shards     int `json:"shards"`
	GOMAXPROCS int `json:"gomaxprocs"`
	// BudgetBytes is the governor budget both sides ran under: the huge
	// accounting-only anchor by default, or the -membudget override.
	BudgetBytes int64                  `json:"budget_bytes"`
	Workloads   []StreamWorkloadResult `json:"workloads"`
}

// runStreamBench sweeps executors over the scaled workloads. A nonzero
// membudget (the -membudget flag) replaces the accounting-only anchor
// budget with a shared forcing budget on both sides.
func runStreamBench(shards int, membudget int64) *StreamBenchReport {
	budget := unlimitedBudget
	if membudget > 0 {
		budget = membudget
	}
	report := &StreamBenchReport{Shards: shards, GOMAXPROCS: runtime.GOMAXPROCS(0), BudgetBytes: budget}
	if membudget <= 0 {
		report.BudgetBytes = 0 // the anchor denotes "unlimited", as in BENCH_spill.json
	}
	for _, w := range scaledWorkloads() {
		res := StreamWorkloadResult{Name: w.name, Query: w.text}
		anchor := streamRun(w, shards, budget, 0)
		res.Runs = append(res.Runs, anchor)
		for _, bs := range streamBenchBatchSizes {
			run := streamRun(w, shards, budget, bs)
			if run.OutputTuples != anchor.OutputTuples {
				fmt.Fprintf(os.Stderr, "cqbench: %s batch %d: streamed output %d tuples, materialized %d — correctness bug\n",
					w.name, bs, run.OutputTuples, anchor.OutputTuples)
				os.Exit(1)
			}
			if anchor.NsPerOp > 0 {
				run.WallVsMaterialized = float64(run.NsPerOp) / float64(anchor.NsPerOp)
			}
			if anchor.PeakResidentBytes > 0 {
				run.PeakVsMaterialized = float64(run.PeakResidentBytes) / float64(anchor.PeakResidentBytes)
			}
			res.Runs = append(res.Runs, run)
		}
		report.Workloads = append(report.Workloads, res)
	}
	return report
}

// streamRun measures one workload under one executor on a fresh database
// and a fresh engine (fresh relations, so partition shards register with
// this run's governor; fresh engine, so counters belong to this run).
// batchSize 0 selects the materialized executor.
func streamRun(w workload, shards int, budget int64, batchSize int) StreamRun {
	ctx := context.Background()
	db := w.db()
	q := cqbound.MustParse(w.text)
	opts := []cqbound.Option{
		cqbound.WithSharding(benchShardThreshold, shards),
		cqbound.WithMemoryBudget(budget),
	}
	mode := "streamed"
	if batchSize == 0 {
		mode = "materialized"
		opts = append(opts, cqbound.WithMaterializedExec())
	} else {
		opts = append(opts, cqbound.WithBatchSize(batchSize))
	}
	eng := cqbound.NewEngine(opts...)
	defer func() {
		if err := eng.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "cqbench: closing stream engine: %v\n", err)
		}
	}()
	run := func() (int, eval.Stats, error) {
		out, _, err := eng.Evaluate(ctx, q, db)
		if err != nil {
			return 0, eval.Stats{}, err
		}
		return out.Size(), eval.Stats{}, nil
	}
	ns, outSize, _, err := timeStrategy(run)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cqbench: %s (%s, batch %d): %v\n", w.name, mode, batchSize, err)
		os.Exit(1)
	}
	// One instrumented evaluation with counters scoped to it alone.
	eng.ResetStats()
	if _, _, err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "cqbench: %s (%s, batch %d) instrumented: %v\n", w.name, mode, batchSize, err)
		os.Exit(1)
	}
	st := eng.StreamStats()
	return StreamRun{
		Mode:                   mode,
		BatchSize:              batchSize,
		NsPerOp:                ns,
		OutputTuples:           outSize,
		PeakResidentBytes:      eng.SpillStats().PeakResidentBytes,
		WallVsMaterialized:     1,
		PeakVsMaterialized:     1,
		BatchesProduced:        st.BatchesProduced,
		RowsStreamed:           st.RowsStreamed,
		BytesNeverMaterialized: st.BytesNeverMaterialized,
	}
}

func printStreamBench(rep *StreamBenchReport, asJSON bool) {
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "cqbench:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("shards=%d gomaxprocs=%d budget=%d\n", rep.Shards, rep.GOMAXPROCS, rep.BudgetBytes)
	for _, w := range rep.Workloads {
		fmt.Printf("  %s\n", w.Name)
		for _, r := range w.Runs {
			fmt.Printf("    %-12s batch=%-5d %10dns/op out=%-7d wall=%.2fx peak=%dB (%.2fx) batches=%d rows=%d saved=%dB\n",
				r.Mode, r.BatchSize, r.NsPerOp, r.OutputTuples, r.WallVsMaterialized,
				r.PeakResidentBytes, r.PeakVsMaterialized,
				r.BatchesProduced, r.RowsStreamed, r.BytesNeverMaterialized)
		}
	}
}
