package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"cqbound/internal/coloring"
	"cqbound/internal/construct"
	"cqbound/internal/cq"
	"cqbound/internal/database"
	"cqbound/internal/datagen"
	"cqbound/internal/eval"
	"cqbound/internal/plan"
	"cqbound/internal/relation"
	"cqbound/internal/shard"
)

// The plan benchmark compares the bound-driven planner against each fixed
// strategy on canonical workloads, emitting one JSON document so future
// changes have a machine-readable perf baseline to diff against.

// StrategyRun is one (workload, strategy) measurement.
type StrategyRun struct {
	Strategy        string  `json:"strategy"`
	NsPerOp         int64   `json:"ns_per_op"`
	OutputTuples    int     `json:"output_tuples"`
	MaxIntermediate int     `json:"max_intermediate"`
	Joins           int     `json:"joins"`
	SpeedupVsNaive  float64 `json:"speedup_vs_naive"`
}

// WorkloadResult groups the runs of one query/database pair.
type WorkloadResult struct {
	Name      string        `json:"name"`
	Query     string        `json:"query"`
	Planned   string        `json:"planned_strategy"`
	Rationale string        `json:"rationale"`
	Runs      []StrategyRun `json:"runs"`
}

// PlanBenchReport is the top-level JSON document.
type PlanBenchReport struct {
	Workloads []WorkloadResult `json:"workloads"`
}

type workload struct {
	name string
	text string
	db   func() *database.Database
	// skipNaive omits the quadratic-blowup naive strategy: the scaled
	// workloads exist to exercise the sharded operators, and naive's
	// intermediates on them are orders of magnitude larger than every
	// other strategy's total work.
	skipNaive bool
}

// graphDB builds a seeded random edge database via datagen.EdgeDB.
func graphDB(names []string, edges, universe int, seed int64) *database.Database {
	return datagen.EdgeDB(rand.New(rand.NewSource(seed)), names, edges, universe)
}

func planBenchWorkloads() []workload {
	return []workload{
		{
			name: "triangle",
			text: "Q(X,Y,Z) <- E(X,Y), E(Y,Z), E(X,Z).",
			db:   func() *database.Database { return graphDB([]string{"E"}, 400, 60, 1) },
		},
		{
			name: "star-3",
			text: "Q(X,Y,Z,W) <- E(X,Y), E(X,Z), E(X,W).",
			db:   func() *database.Database { return graphDB([]string{"E"}, 200, 40, 2) },
		},
		{
			name: "path-4",
			text: "Q(A,E) <- R(A,B), S(B,C), T(C,D), U(D,E).",
			db:   func() *database.Database { return graphDB([]string{"R", "S", "T", "U"}, 300, 50, 3) },
		},
		{
			name: "4-cycle",
			text: "Q(A,B,C,D) <- E(A,B), E(B,C), E(C,D), E(D,A).",
			db:   func() *database.Database { return graphDB([]string{"E"}, 250, 40, 4) },
		},
		{
			// The Proposition 4.5 worst-case instance of the triangle query:
			// the AGM-tight database where |Q(D)| meets rmax^ρ*.
			name: "agm-worstcase-triangle",
			text: "Q(X,Y,Z) <- R1(X,Y), R2(X,Z), R3(Y,Z).",
			db: func() *database.Database {
				q := cq.MustParse("Q(X,Y,Z) <- R1(X,Y), R2(X,Z), R3(Y,Z).")
				_, col, err := coloring.NumberNoFDs(q)
				if err != nil {
					panic(err)
				}
				db, err := construct.ProductWitness(q, col, 14)
				if err != nil {
					panic(err)
				}
				return db
			},
		},
	}
}

// scaledWorkloads are the 10–50x row-count variants that exercise the
// sharded operators: relations large enough that hash maps and dedup
// tables stop fitting in cache, which is exactly where partitioning pays
// even before parallel fan-out.
func scaledWorkloads() []workload {
	return []workload{
		{
			name:      "triangle-50x",
			text:      "Q(X,Y,Z) <- E(X,Y), E(Y,Z), E(X,Z).",
			db:        func() *database.Database { return graphDB([]string{"E"}, 20000, 1000, 11) },
			skipNaive: true,
		},
		{
			name:      "star-3-10x",
			text:      "Q(X,Y,Z,W) <- E(X,Y), E(X,Z), E(X,W).",
			db:        func() *database.Database { return graphDB([]string{"E"}, 2000, 130, 12) },
			skipNaive: true,
		},
		{
			name:      "path-4-20x",
			text:      "Q(A,E) <- R(A,B), S(B,C), T(C,D), U(D,E).",
			db:        func() *database.Database { return graphDB([]string{"R", "S", "T", "U"}, 6000, 1200, 13) },
			skipNaive: true,
		},
		{
			// Zipf-skewed path: hub nodes absorb a large share of each join
			// column, hashing most matching rows into one shard — the
			// workload the exchange's hot-shard splitting exists for.
			name: "path-4-zipf",
			text: "Q(A,E) <- R(A,B), S(B,C), T(C,D), U(D,E).",
			db: func() *database.Database {
				return datagen.ZipfEdgeDB(rand.New(rand.NewSource(14)), []string{"R", "S", "T", "U"}, 3000, 600, 1.4)
			},
			skipNaive: true,
		},
	}
}

// benchShardThreshold is the MinRows threshold the planned-sharded runs
// use: the original small workloads stay below it (demonstrating the
// zero-overhead fallback), the scaled workloads clear it.
const benchShardThreshold = 1024

func runPlanBench(asJSON bool, shards int) *PlanBenchReport {
	ctx := context.Background()
	report := PlanBenchReport{}
	shardOpts := &shard.Options{MinRows: benchShardThreshold, Shards: shards}
	for _, w := range append(planBenchWorkloads(), scaledWorkloads()...) {
		q := cq.MustParse(w.text)
		db := w.db()
		p, err := plan.ChooseForDB(q, db)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cqbench:", err)
			os.Exit(1)
		}
		res := WorkloadResult{Name: w.name, Query: w.text, Planned: p.Strategy.String(), Rationale: p.Rationale}

		type strat struct {
			name string
			run  func() (int, eval.Stats, error)
		}
		var strategies []strat
		if !w.skipNaive {
			strategies = append(strategies, strat{"naive", func() (int, eval.Stats, error) {
				return sized(eval.NaiveCtx(ctx, q, db))
			}})
		}
		strategies = append(strategies,
			strat{"project-early", func() (int, eval.Stats, error) {
				return sized(eval.JoinProjectOrdered(ctx, q, db, plan.OrderAtoms(q, db)))
			}},
			strat{"generic-join", func() (int, eval.Stats, error) {
				return sized(eval.GenericJoinCtx(ctx, q, db))
			}},
		)
		if p.Acyclic {
			strategies = append(strategies, strat{"yannakakis", func() (int, eval.Stats, error) {
				return sized(eval.YannakakisCtx(ctx, q, db))
			}})
		}
		strategies = append(strategies,
			strat{"planned", func() (int, eval.Stats, error) {
				return sized(plan.Execute(ctx, p, q, db))
			}},
			strat{"planned-sharded", func() (int, eval.Stats, error) {
				return sized(plan.ExecuteOpts(ctx, p, q, db, shardOpts))
			}},
		)

		var naiveNs int64
		for _, s := range strategies {
			ns, outSize, st, err := timeStrategy(s.run)
			if err != nil {
				fmt.Fprintf(os.Stderr, "cqbench: %s/%s: %v\n", w.name, s.name, err)
				os.Exit(1)
			}
			run := StrategyRun{
				Strategy:        s.name,
				NsPerOp:         ns,
				OutputTuples:    outSize,
				MaxIntermediate: st.MaxIntermediate,
				Joins:           st.Joins,
			}
			if s.name == "naive" {
				naiveNs = ns
			}
			if naiveNs > 0 && ns > 0 {
				run.SpeedupVsNaive = float64(naiveNs) / float64(ns)
			}
			res.Runs = append(res.Runs, run)
		}
		report.Workloads = append(report.Workloads, res)
	}

	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "cqbench:", err)
			os.Exit(1)
		}
		return &report
	}
	for _, w := range report.Workloads {
		fmt.Printf("%s  (planned: %s)\n", w.Name, w.Planned)
		for _, r := range w.Runs {
			fmt.Printf("  %-14s %10d ns/op  out=%-6d maxint=%-6d joins=%-4d speedup=%.2fx\n",
				r.Strategy, r.NsPerOp, r.OutputTuples, r.MaxIntermediate, r.Joins, r.SpeedupVsNaive)
		}
	}
	return &report
}

// checkBaseline compares a fresh planbench report against a recorded one:
// every (workload, strategy) pair present in both must not be slower than
// threshold × its baseline ns/op. Output sizes must match exactly — a
// changed result is a correctness regression, not a perf one.
func checkBaseline(cur *PlanBenchReport, path string, threshold float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base PlanBenchReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %v", path, err)
	}
	baseRuns := make(map[string]StrategyRun)
	for _, w := range base.Workloads {
		for _, r := range w.Runs {
			baseRuns[w.Name+"/"+r.Strategy] = r
		}
	}
	var regressions []string
	for _, w := range cur.Workloads {
		for _, r := range w.Runs {
			b, ok := baseRuns[w.Name+"/"+r.Strategy]
			if !ok {
				continue // new workload or strategy: nothing to compare
			}
			if b.OutputTuples != r.OutputTuples {
				regressions = append(regressions, fmt.Sprintf(
					"%s/%s: output %d tuples, baseline %d (correctness)", w.Name, r.Strategy, r.OutputTuples, b.OutputTuples))
				continue
			}
			if b.NsPerOp > 0 && float64(r.NsPerOp) > threshold*float64(b.NsPerOp) {
				regressions = append(regressions, fmt.Sprintf(
					"%s/%s: %d ns/op vs baseline %d ns/op (%.1fx > %.1fx)",
					w.Name, r.Strategy, r.NsPerOp, b.NsPerOp,
					float64(r.NsPerOp)/float64(b.NsPerOp), threshold))
			}
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("benchmark regression against %s:\n  %s", path, strings.Join(regressions, "\n  "))
	}
	return nil
}

// sized adapts an evaluator result to (output size, stats, error).
func sized(out *relation.Relation, st eval.Stats, err error) (int, eval.Stats, error) {
	if err != nil {
		return 0, st, err
	}
	return out.Size(), st, nil
}

// timeStrategy runs fn repeatedly until it has accumulated enough wall time
// for a stable per-op figure (at least 3 runs or 50ms, whichever is later).
func timeStrategy(fn func() (int, eval.Stats, error)) (nsPerOp int64, outSize int, st eval.Stats, err error) {
	const (
		minRuns = 3
		minWall = 50 * time.Millisecond
	)
	var total time.Duration
	runs := 0
	for runs < minRuns || total < minWall {
		start := time.Now()
		outSize, st, err = fn()
		total += time.Since(start)
		if err != nil {
			return 0, 0, st, err
		}
		runs++
		if runs >= 1000 {
			break
		}
	}
	return total.Nanoseconds() / int64(runs), outSize, st, nil
}
