package main

// The trace benchmark prices the observability layer: each scaled
// workload runs on two engines sharing one database — plain, and with
// WithTracing, where every evaluation builds the full span tree, private
// stats deltas and sink emission — and the report records the wall-clock
// ratio. Tracing is meant to be cheap enough to leave on (the span count
// per query is tens, not thousands), so the interesting column is
// overhead, targeted at ≤3% at the default batch size. The recorded
// document lives in BENCH_trace.json; -tracegate F turns the report into
// a regression gate failing when a star or path workload exceeds F.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	cqbound "cqbound"
)

// traceBenchPairs is how many alternating untraced/traced evaluation
// pairs each workload gets. The reported per-mode times are the minimum
// single-run wall times; the overhead is the median of the per-pair
// traced/untraced ratios. Back-to-back pairing cancels slow drift (heap
// growth, neighboring load) that hits both modes alike, and the median
// discards pairs where a burst hit only one of the two runs — either
// alone (a plain mean, or a ratio of means) lets scheduler noise dwarf a
// few-percent overhead on a small machine.
const traceBenchPairs = 11

// TraceRun is one workload's traced-vs-untraced measurement.
type TraceRun struct {
	Name  string `json:"name"`
	Query string `json:"query"`
	// UntracedNsPerOp / TracedNsPerOp are the best (minimum) per-op wall
	// times over the alternating rounds.
	UntracedNsPerOp int64 `json:"untraced_ns_per_op"`
	TracedNsPerOp   int64 `json:"traced_ns_per_op"`
	// Overhead is the median per-pair traced/untraced ratio minus one;
	// negative means noise, not speedup.
	Overhead     float64 `json:"overhead"`
	Spans        int     `json:"spans"`
	OutputTuples int     `json:"output_tuples"`
}

// TraceBenchReport is the top-level JSON document of -tracebench.
type TraceBenchReport struct {
	Shards     int        `json:"shards"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	BatchSize  int        `json:"batch_size"`
	Workloads  []TraceRun `json:"workloads"`
}

// runTraceBench measures tracing overhead on the scaled workloads at the
// default batch size.
func runTraceBench(shards int) *TraceBenchReport {
	report := &TraceBenchReport{Shards: shards, GOMAXPROCS: runtime.GOMAXPROCS(0), BatchSize: 1024}
	for _, w := range scaledWorkloads() {
		report.Workloads = append(report.Workloads, traceRun(w, shards))
	}
	return report
}

// traceRun times one workload untraced and traced on one shared database
// (shared, so both engines probe the same memoized partitions and
// indexes) in alternating rounds, keeping the minimum of each mode.
func traceRun(w workload, shards int) TraceRun {
	ctx := context.Background()
	db := w.db()
	q := cqbound.MustParse(w.text)
	plain := cqbound.NewEngine(cqbound.WithSharding(benchShardThreshold, shards))
	traced := cqbound.NewEngine(cqbound.WithSharding(benchShardThreshold, shards), cqbound.WithTracing())
	fail := func(mode string, err error) {
		fmt.Fprintf(os.Stderr, "cqbench: %s (%s): %v\n", w.name, mode, err)
		os.Exit(1)
	}
	timeOne := func(eng *cqbound.Engine, mode string) int64 {
		start := time.Now()
		if _, _, err := eng.Evaluate(ctx, q, db); err != nil {
			fail(mode, err)
		}
		return time.Since(start).Nanoseconds()
	}
	// Warm both engines (plan cache, partitions, memoized indexes) so the
	// timed rounds compare steady-state evaluation.
	outU, _, err := plain.Evaluate(ctx, q, db)
	if err != nil {
		fail("untraced warmup", err)
	}
	outT, _, tc, err := traced.EvaluateTraced(ctx, q, db)
	if err != nil {
		fail("traced warmup", err)
	}
	if !cqbound.RelationsEqual(outU, outT) {
		fail("compare", fmt.Errorf("traced output %d tuples, untraced %d — correctness bug", outT.Size(), outU.Size()))
	}
	run := TraceRun{Name: w.name, Query: w.text, Spans: tc.SpanCount(), OutputTuples: outU.Size()}
	ratios := make([]float64, 0, traceBenchPairs)
	for pair := 0; pair < traceBenchPairs; pair++ {
		nsU := timeOne(plain, "untraced")
		nsT := timeOne(traced, "traced")
		if run.UntracedNsPerOp == 0 || nsU < run.UntracedNsPerOp {
			run.UntracedNsPerOp = nsU
		}
		if run.TracedNsPerOp == 0 || nsT < run.TracedNsPerOp {
			run.TracedNsPerOp = nsT
		}
		if nsU > 0 {
			ratios = append(ratios, float64(nsT)/float64(nsU))
		}
	}
	if len(ratios) > 0 {
		sort.Float64s(ratios)
		run.Overhead = ratios[len(ratios)/2] - 1
	}
	return run
}

// checkTraceGate fails when a star or path workload's tracing overhead
// exceeds limit (a fraction: 0.10 = 10%) — the CI regression gate. Other
// workloads report but don't gate: the star and path shapes are the
// streamed multi-stage pipelines where per-span cost would compound.
func checkTraceGate(rep *TraceBenchReport, limit float64) error {
	for _, r := range rep.Workloads {
		if !strings.HasPrefix(r.Name, "star") && !strings.HasPrefix(r.Name, "path") {
			continue
		}
		if r.Overhead > limit {
			return fmt.Errorf("%s: tracing overhead %.1f%% exceeds the %.0f%% gate (untraced %dns, traced %dns)",
				r.Name, r.Overhead*100, limit*100, r.UntracedNsPerOp, r.TracedNsPerOp)
		}
	}
	return nil
}

func printTraceBench(rep *TraceBenchReport, asJSON bool) {
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "cqbench:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("shards=%d gomaxprocs=%d batch=%d\n", rep.Shards, rep.GOMAXPROCS, rep.BatchSize)
	for _, r := range rep.Workloads {
		fmt.Printf("  %-14s untraced=%-10dns traced=%-10dns overhead=%+.1f%% spans=%d out=%d\n",
			r.Name, r.UntracedNsPerOp, r.TracedNsPerOp, r.Overhead*100, r.Spans, r.OutputTuples)
	}
}
