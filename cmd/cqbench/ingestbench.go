package main

// The ingest benchmark measures the transactional write path on the scaled
// workloads: half of each database lands as one initial commit, the rest
// streams in as delta batches through the epoch-based Txn API while a
// concurrent reader keeps pinning snapshots and evaluating — the serving
// pattern the epoch store exists for. Two figures matter:
//
//   - batch-apply throughput (rows/sec across the delta commits, memo
//     maintenance included): what a writer pays to publish, and
//   - incremental-vs-rebuild memo refresh: the first post-ingest
//     evaluation on the incremental engine (indexes, statistics and shard
//     partitions extended per batch at commit) against the same evaluation
//     on a fresh engine that ingested everything at once and builds its
//     memos from scratch.
//
// The recorded document lives in BENCH_ingest.json. Run under -race (CI
// does) the concurrent reader turns the sweep into a smoke test of the
// commit/pin/sweep paths against real evaluation traffic.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	cqbound "cqbound"
	"cqbound/internal/relation"
)

// ingestBenchBatches is the number of delta commits per workload.
const ingestBenchBatches = 16

// IngestWorkloadResult is one workload's measurement.
type IngestWorkloadResult struct {
	Name  string `json:"name"`
	Query string `json:"query"`
	// TotalRows is the full database size; InitialRows of it land in the
	// first commit and DeltaRows stream in across Batches delta commits.
	TotalRows   int `json:"total_rows"`
	InitialRows int `json:"initial_rows"`
	DeltaRows   int `json:"delta_rows"`
	Batches     int `json:"batches"`
	// CommitNsPerBatch and IngestRowsPerSec cover the delta commits only:
	// dedup, version extension, and incremental memo maintenance, measured
	// while the concurrent reader runs.
	CommitNsPerBatch int64   `json:"commit_ns_per_batch"`
	IngestRowsPerSec float64 `json:"ingest_rows_per_sec"`
	// WarmEvalNs is the first evaluation after the last delta commit on
	// the incremental engine; ColdEvalNs is the same evaluation on a
	// rebuilt engine with cold memos. RefreshVsRebuild is their ratio.
	WarmEvalNs       int64   `json:"warm_eval_ns"`
	ColdEvalNs       int64   `json:"cold_eval_ns"`
	RefreshVsRebuild float64 `json:"refresh_vs_rebuild"`
	OutputTuples     int     `json:"output_tuples"`
	// Epoch-lifecycle counters of the incremental engine after the sweep:
	// memos derived incrementally instead of rebuilt, governed buffers the
	// retirement sweep reclaimed, and reader snapshots the bench pinned.
	IncrementalMemos int64 `json:"incremental_memos"`
	SweptBuffers     int64 `json:"swept_buffers"`
	ReaderSnapshots  int64 `json:"reader_snapshots"`
}

// IngestBenchReport is the top-level JSON document of -ingestbench.
type IngestBenchReport struct {
	Shards      int                    `json:"shards"`
	GOMAXPROCS  int                    `json:"gomaxprocs"`
	BudgetBytes int64                  `json:"budget_bytes"`
	Workloads   []IngestWorkloadResult `json:"workloads"`
}

// ingestRow is one staged tuple at the string boundary (the source
// databases intern in the default dictionary, the engines in their own).
type ingestRow struct {
	rel  string
	vals []string
}

func runIngestBench(shards int, membudget int64) *IngestBenchReport {
	report := &IngestBenchReport{Shards: shards, GOMAXPROCS: runtime.GOMAXPROCS(0), BudgetBytes: membudget}
	for _, w := range scaledWorkloads() {
		report.Workloads = append(report.Workloads, ingestRun(w, shards, membudget))
	}
	return report
}

func ingestRun(w workload, shards int, membudget int64) IngestWorkloadResult {
	ctx := context.Background()
	db := w.db()
	q := cqbound.MustParse(w.text)
	res := IngestWorkloadResult{Name: w.name, Query: w.text, Batches: ingestBenchBatches}

	// Stage every relation's rows: alternate rows into the initial commit
	// and the delta batches so each batch touches every relation (and, at
	// scale, most shards).
	type schema struct {
		name  string
		attrs []string
	}
	var schemas []schema
	var initial []ingestRow
	batches := make([][]ingestRow, ingestBenchBatches)
	for _, name := range db.Names() {
		r := db.Relation(name)
		schemas = append(schemas, schema{name: name, attrs: r.Attrs})
		res.TotalRows += r.Size()
		i := 0
		r.Each(func(tp relation.Tuple) bool {
			row := ingestRow{rel: name, vals: tp.Strings()}
			if i%2 == 0 {
				initial = append(initial, row)
			} else {
				batches[(i/2)%ingestBenchBatches] = append(batches[(i/2)%ingestBenchBatches], row)
			}
			i++
			return true
		})
	}
	res.InitialRows = len(initial)
	res.DeltaRows = res.TotalRows - res.InitialRows

	newEngine := func() *cqbound.Engine {
		opts := []cqbound.Option{cqbound.WithSharding(benchShardThreshold, shards)}
		if membudget > 0 {
			opts = append(opts, cqbound.WithMemoryBudget(membudget))
		}
		return cqbound.NewEngine(opts...)
	}
	load := func(eng *cqbound.Engine, rows []ingestRow, create bool) {
		txn := eng.Begin()
		if create {
			for _, s := range schemas {
				if err := txn.Create(s.name, s.attrs...); err != nil {
					ingestFatal(w, err)
				}
			}
		}
		for _, row := range rows {
			if err := txn.Add(row.rel, row.vals...); err != nil {
				ingestFatal(w, err)
			}
		}
		if _, err := txn.Commit(); err != nil {
			ingestFatal(w, err)
		}
	}

	// Incremental engine: initial load, one evaluation to warm the memos
	// the delta commits will extend, then the timed delta stream with a
	// concurrent reader pinning snapshots throughout.
	inc := newEngine()
	defer inc.Close()
	load(inc, initial, true)
	if _, _, err := inc.Evaluate(ctx, q, liveDB(inc)); err != nil {
		ingestFatal(w, err)
	}
	done := make(chan struct{})
	readerSnaps := make(chan int64, 1)
	go func() {
		snaps := int64(0)
		for {
			select {
			case <-done:
				readerSnaps <- snaps
				return
			default:
			}
			snap := inc.Snapshot()
			if _, _, err := inc.Evaluate(ctx, q, snap.DB()); err != nil {
				snap.Close()
				ingestFatal(w, err)
			}
			snap.Close()
			snaps++
		}
	}()
	var commitWall time.Duration
	for _, batch := range batches {
		start := time.Now()
		load(inc, batch, false)
		commitWall += time.Since(start)
	}
	close(done)
	res.ReaderSnapshots = <-readerSnaps
	res.CommitNsPerBatch = commitWall.Nanoseconds() / ingestBenchBatches
	if commitWall > 0 {
		res.IngestRowsPerSec = float64(res.DeltaRows) / commitWall.Seconds()
	}

	// Memo refresh, incremental side: the commits already extended the
	// indexes, statistics and partitions, so this evaluation finds them
	// warm for the final versions.
	start := time.Now()
	out, _, err := inc.Evaluate(ctx, q, liveDB(inc))
	if err != nil {
		ingestFatal(w, err)
	}
	res.WarmEvalNs = time.Since(start).Nanoseconds()
	res.OutputTuples = out.Size()

	// Rebuild side: same final state ingested in one commit on a fresh
	// engine; the first evaluation builds every memo from scratch.
	cold := newEngine()
	defer cold.Close()
	load(cold, append(append([]ingestRow(nil), initial...), flatten(batches)...), true)
	start = time.Now()
	coldOut, _, err := cold.Evaluate(ctx, q, liveDB(cold))
	if err != nil {
		ingestFatal(w, err)
	}
	res.ColdEvalNs = time.Since(start).Nanoseconds()
	if coldOut.Size() != out.Size() {
		fmt.Fprintf(os.Stderr, "cqbench: %s: incremental engine answered %d tuples, rebuilt engine %d — correctness bug\n",
			w.name, out.Size(), coldOut.Size())
		os.Exit(1)
	}
	if res.ColdEvalNs > 0 {
		res.RefreshVsRebuild = float64(res.WarmEvalNs) / float64(res.ColdEvalNs)
	}

	st := inc.EpochStats()
	res.IncrementalMemos = st.IncrementalMemos
	res.SweptBuffers = st.SweptBuffers
	return res
}

// liveDB pins nothing: Evaluate pins the epoch itself for the duration.
func liveDB(eng *cqbound.Engine) *cqbound.Database {
	snap := eng.Snapshot()
	defer snap.Close()
	return snap.DB()
}

func flatten(batches [][]ingestRow) []ingestRow {
	var out []ingestRow
	for _, b := range batches {
		out = append(out, b...)
	}
	return out
}

func ingestFatal(w workload, err error) {
	fmt.Fprintf(os.Stderr, "cqbench: %s: %v\n", w.name, err)
	os.Exit(1)
}

func printIngestBench(rep *IngestBenchReport, asJSON bool) {
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "cqbench:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("shards=%d gomaxprocs=%d budget=%d\n", rep.Shards, rep.GOMAXPROCS, rep.BudgetBytes)
	for _, w := range rep.Workloads {
		fmt.Printf("  %-14s rows=%d (+%d in %d batches) commit=%dns/batch ingest=%.0f rows/s\n",
			w.Name, w.TotalRows, w.DeltaRows, w.Batches, w.CommitNsPerBatch, w.IngestRowsPerSec)
		fmt.Printf("    refresh: warm=%dns cold=%dns (%.2fx) out=%d incmemos=%d swept=%d readers=%d\n",
			w.WarmEvalNs, w.ColdEvalNs, w.RefreshVsRebuild, w.OutputTuples,
			w.IncrementalMemos, w.SweptBuffers, w.ReaderSnapshots)
	}
}
