package main

// The shard benchmark isolates what partitioning buys: each scaled
// workload runs the SAME strategy twice — once single-shard (the plain
// relation operators) and once partition-parallel at the requested shard
// count — and reports the ratio. Cyclic workloads force the project-early
// plan (the planner's generic join extends one variable at a time and has
// no binary join to partition); acyclic ones run Yannakakis, whose
// semijoin passes and final joins co-partition on the tree's join columns.
//
// Alongside the timings, each run records what the exchange router
// actually did — sharded vs fallback operators, rows reused in place vs
// physically repartitioned, broadcasts, skew splits — so a workload that
// quietly collapses to single-shard execution (the pre-exchange triangle
// regression) is visible in the report instead of only in the ratio. The
// recorded document lives in BENCH_sharded.json.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"cqbound/internal/cq"
	"cqbound/internal/eval"
	"cqbound/internal/plan"
	"cqbound/internal/shard"
	"cqbound/internal/spill"
)

// ShardRun is one workload's single-shard vs sharded measurement, plus the
// exchange-routing counters of one instrumented sharded evaluation.
type ShardRun struct {
	Name          string  `json:"name"`
	Query         string  `json:"query"`
	Strategy      string  `json:"strategy"`
	OutputTuples  int     `json:"output_tuples"`
	SingleShardNs int64   `json:"single_shard_ns_per_op"`
	ShardedNs     int64   `json:"sharded_ns_per_op"`
	Speedup       float64 `json:"speedup"`

	// ShardedOps / FallbackOps: operators that ran partition-parallel vs
	// fell back to single-shard for one evaluation. A high fallback count
	// explains a ratio near 1.0 — the sharded run barely sharded.
	ShardedOps  int64 `json:"sharded_ops"`
	FallbackOps int64 `json:"fallback_ops"`
	// PreExchangeRows is the total rows arriving at exchanges (reused +
	// repartitioned); PostExchangeRows is the subset that physically moved
	// to a new key. The difference is what end-to-end sharding saved.
	PreExchangeRows  int64 `json:"pre_exchange_rows"`
	PostExchangeRows int64 `json:"post_exchange_rows"`
	BroadcastOps     int64 `json:"broadcast_ops"`
	SkewSplits       int64 `json:"skew_splits"`

	// Spill counters of the instrumented run; all zero without -membudget.
	SpillEvictions int64 `json:"spill_evictions,omitempty"`
	SpillReloads   int64 `json:"spill_reloads,omitempty"`
}

// ShardBenchReport is the top-level JSON document of -shardbench.
type ShardBenchReport struct {
	// Shards is the partition count of the sharded runs.
	Shards int `json:"shards"`
	// SkewFraction is the hot-shard split trigger of the sharded runs.
	SkewFraction float64 `json:"skew_fraction"`
	// MemBudget is the -membudget resident-set cap applied to the sharded
	// runs (0 = unlimited, no governor).
	MemBudget int64 `json:"mem_budget_bytes,omitempty"`
	// GOMAXPROCS records how many workers the pool could actually use:
	// speedups above it come from cache locality (P small hash maps
	// instead of one big one), speedups up to GOMAXPROCS× on top of that
	// from parallel fan-out.
	GOMAXPROCS int        `json:"gomaxprocs"`
	Runs       []ShardRun `json:"runs"`
}

func runShardBench(shards int, skew float64, membudget int64) *ShardBenchReport {
	ctx := context.Background()
	report := &ShardBenchReport{Shards: shards, SkewFraction: skew, MemBudget: membudget, GOMAXPROCS: runtime.GOMAXPROCS(0)}
	for _, w := range scaledWorkloads() {
		q := cq.MustParse(w.text)
		db := w.db()
		// One governor per workload when a budget is forced: its fresh
		// database's partition shards register here, and the counters
		// reported below are this workload's own.
		var gov *spill.Governor
		if membudget > 0 {
			gov = spill.NewGovernor(membudget, "")
		}
		// The strategy that exposes binary joins to the sharded operators:
		// Yannakakis when acyclic, the ordered project-early plan otherwise.
		strategy := plan.StrategyProjectEarly
		if eval.IsAcyclic(q) {
			strategy = plan.StrategyYannakakis
		}
		run := func(base *shard.Options) (int, eval.Stats, error) {
			opts := base
			if base != nil && base.Spill != nil {
				// One spill scope per evaluation, as Engine.Evaluate does:
				// without it every timing iteration's intermediate shards
				// would stay registered (and their segments on disk) until
				// the governor closes.
				o := *base
				scope := spill.NewScope()
				defer scope.Close()
				o.Scope = scope
				opts = &o
			}
			p := &plan.Plan{Strategy: strategy}
			if strategy == plan.StrategyProjectEarly {
				p.AtomOrder = plan.OrderAtoms(q, db)
			}
			return sized(plan.ExecuteOpts(ctx, p, q, db, opts))
		}
		singleNs, singleOut, _, err := timeStrategy(func() (int, eval.Stats, error) { return run(nil) })
		if err != nil {
			fmt.Fprintf(os.Stderr, "cqbench: %s single-shard: %v\n", w.name, err)
			os.Exit(1)
		}
		opts := &shard.Options{MinRows: benchShardThreshold, Shards: shards, SkewFraction: skew, Spill: gov}
		shardedNs, shardedOut, _, err := timeStrategy(func() (int, eval.Stats, error) { return run(opts) })
		if err != nil {
			fmt.Fprintf(os.Stderr, "cqbench: %s sharded: %v\n", w.name, err)
			os.Exit(1)
		}
		if singleOut != shardedOut {
			fmt.Fprintf(os.Stderr, "cqbench: %s: sharded output %d tuples, single-shard %d — correctness bug\n",
				w.name, shardedOut, singleOut)
			os.Exit(1)
		}
		// One instrumented evaluation with fresh counters: per-evaluation
		// routing numbers, not sums over however many timing iterations ran.
		m := &shard.Metrics{}
		gov.ResetCounters()
		instr := &shard.Options{MinRows: benchShardThreshold, Shards: shards, SkewFraction: skew, Metrics: m, Spill: gov}
		if _, _, err := run(instr); err != nil {
			fmt.Fprintf(os.Stderr, "cqbench: %s instrumented: %v\n", w.name, err)
			os.Exit(1)
		}
		snap := m.Snapshot()
		spillSnap := gov.Snapshot()
		sr := ShardRun{
			Name:             w.name,
			Query:            w.text,
			Strategy:         strategy.String(),
			OutputTuples:     singleOut,
			SingleShardNs:    singleNs,
			ShardedNs:        shardedNs,
			ShardedOps:       snap.ShardedOps,
			FallbackOps:      snap.FallbackOps,
			PreExchangeRows:  snap.ReusedRows + snap.ExchangedRows,
			PostExchangeRows: snap.ExchangedRows,
			BroadcastOps:     snap.BroadcastOps,
			SkewSplits:       snap.SkewSplits,
			SpillEvictions:   spillSnap.Evictions,
			SpillReloads:     spillSnap.ReloadedShards,
		}
		if shardedNs > 0 {
			sr.Speedup = float64(singleNs) / float64(shardedNs)
		}
		report.Runs = append(report.Runs, sr)
		if err := gov.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "cqbench: closing governor: %v\n", err)
		}
	}
	return report
}

func printShardBench(rep *ShardBenchReport, asJSON bool) {
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "cqbench:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("shards=%d skew=%.2f membudget=%d gomaxprocs=%d\n", rep.Shards, rep.SkewFraction, rep.MemBudget, rep.GOMAXPROCS)
	for _, r := range rep.Runs {
		fmt.Printf("  %-14s %-14s out=%-7d single=%10dns sharded=%10dns speedup=%.2fx\n",
			r.Name, r.Strategy, r.OutputTuples, r.SingleShardNs, r.ShardedNs, r.Speedup)
		fmt.Printf("    routing: sharded=%d fallback=%d exchange_rows=%d/%d (reused+moved/moved) broadcast=%d skew_splits=%d\n",
			r.ShardedOps, r.FallbackOps, r.PreExchangeRows, r.PostExchangeRows, r.BroadcastOps, r.SkewSplits)
		if rep.MemBudget > 0 {
			fmt.Printf("    spill:   evictions=%d reloads=%d\n", r.SpillEvictions, r.SpillReloads)
		}
	}
}
