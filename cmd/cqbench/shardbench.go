package main

// The shard benchmark isolates what partitioning buys: each scaled
// workload runs the SAME strategy twice — once single-shard (the plain
// relation operators) and once partition-parallel at the requested shard
// count — and reports the ratio. Cyclic workloads force the project-early
// plan (the planner's generic join extends one variable at a time and has
// no binary join to partition); acyclic ones run Yannakakis, whose
// semijoin passes and final joins co-partition on the tree's join columns.
// The recorded document lives in BENCH_sharded.json.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"cqbound/internal/cq"
	"cqbound/internal/eval"
	"cqbound/internal/plan"
	"cqbound/internal/shard"
)

// ShardRun is one workload's single-shard vs sharded measurement.
type ShardRun struct {
	Name          string  `json:"name"`
	Query         string  `json:"query"`
	Strategy      string  `json:"strategy"`
	OutputTuples  int     `json:"output_tuples"`
	SingleShardNs int64   `json:"single_shard_ns_per_op"`
	ShardedNs     int64   `json:"sharded_ns_per_op"`
	Speedup       float64 `json:"speedup"`
}

// ShardBenchReport is the top-level JSON document of -shardbench.
type ShardBenchReport struct {
	// Shards is the partition count of the sharded runs.
	Shards int `json:"shards"`
	// GOMAXPROCS records how many workers the pool could actually use:
	// speedups above it come from cache locality (P small hash maps
	// instead of one big one), speedups up to GOMAXPROCS× on top of that
	// from parallel fan-out.
	GOMAXPROCS int        `json:"gomaxprocs"`
	Runs       []ShardRun `json:"runs"`
}

func runShardBench(shards int) *ShardBenchReport {
	ctx := context.Background()
	report := &ShardBenchReport{Shards: shards, GOMAXPROCS: runtime.GOMAXPROCS(0)}
	for _, w := range scaledWorkloads() {
		q := cq.MustParse(w.text)
		db := w.db()
		// The strategy that exposes binary joins to the sharded operators:
		// Yannakakis when acyclic, the ordered project-early plan otherwise.
		strategy := plan.StrategyProjectEarly
		if eval.IsAcyclic(q) {
			strategy = plan.StrategyYannakakis
		}
		run := func(opts *shard.Options) (int, eval.Stats, error) {
			p := &plan.Plan{Strategy: strategy}
			if strategy == plan.StrategyProjectEarly {
				p.AtomOrder = plan.OrderAtoms(q, db)
			}
			return sized(plan.ExecuteOpts(ctx, p, q, db, opts))
		}
		singleNs, singleOut, _, err := timeStrategy(func() (int, eval.Stats, error) { return run(nil) })
		if err != nil {
			fmt.Fprintf(os.Stderr, "cqbench: %s single-shard: %v\n", w.name, err)
			os.Exit(1)
		}
		opts := &shard.Options{MinRows: benchShardThreshold, Shards: shards}
		shardedNs, shardedOut, _, err := timeStrategy(func() (int, eval.Stats, error) { return run(opts) })
		if err != nil {
			fmt.Fprintf(os.Stderr, "cqbench: %s sharded: %v\n", w.name, err)
			os.Exit(1)
		}
		if singleOut != shardedOut {
			fmt.Fprintf(os.Stderr, "cqbench: %s: sharded output %d tuples, single-shard %d — correctness bug\n",
				w.name, shardedOut, singleOut)
			os.Exit(1)
		}
		sr := ShardRun{
			Name:          w.name,
			Query:         w.text,
			Strategy:      strategy.String(),
			OutputTuples:  singleOut,
			SingleShardNs: singleNs,
			ShardedNs:     shardedNs,
		}
		if shardedNs > 0 {
			sr.Speedup = float64(singleNs) / float64(shardedNs)
		}
		report.Runs = append(report.Runs, sr)
	}
	return report
}

func printShardBench(rep *ShardBenchReport, asJSON bool) {
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "cqbench:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("shards=%d gomaxprocs=%d\n", rep.Shards, rep.GOMAXPROCS)
	for _, r := range rep.Runs {
		fmt.Printf("  %-14s %-14s out=%-7d single=%10dns sharded=%10dns speedup=%.2fx\n",
			r.Name, r.Strategy, r.OutputTuples, r.SingleShardNs, r.ShardedNs, r.Speedup)
	}
}
