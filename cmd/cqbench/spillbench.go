package main

// The spill benchmark measures what a resident-set budget costs: each
// scaled workload runs the planner's strategy through a sharding engine
// three times — unlimited budget, then budgets of 1/2 and 1/4 of the
// unlimited run's peak resident shard bytes — on a fresh database per run
// (memoized partitions must re-register with each run's governor). The
// recorded document lives in BENCH_spill.json: the unlimited row is the
// no-regression anchor (same engine configuration as planned-sharded in
// BENCH_baseline.json), the budgeted rows show the eviction/reload traffic
// and the wall-clock price of staying under the cap. Engine.ResetStats
// scopes every counter to its own run.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	cqbound "cqbound"
	"cqbound/internal/cq"
	"cqbound/internal/eval"
)

// unlimitedBudget is the "no eviction, full accounting" budget of the
// sweep's anchor run: large enough that nothing ever spills, nonzero so
// the governor still tracks peak residency.
const unlimitedBudget = int64(1) << 62

// SpillRun is one (workload, budget) measurement.
type SpillRun struct {
	// Budget is the resident-set cap in bytes; 0 denotes the unlimited
	// anchor run.
	Budget int64 `json:"budget_bytes"`
	// BudgetLabel says where the budget came from: "unlimited", "1/2
	// peak", "1/4 peak", or "flag" for a -membudget override.
	BudgetLabel  string `json:"budget_label"`
	NsPerOp      int64  `json:"ns_per_op"`
	OutputTuples int    `json:"output_tuples"`
	// Slowdown is NsPerOp relative to the workload's unlimited run.
	Slowdown float64 `json:"slowdown_vs_unlimited"`

	// Governor counters for one instrumented evaluation (ResetStats-scoped).
	Evictions         int64 `json:"evictions"`
	ReloadedShards    int64 `json:"reloaded_shards"`
	PinWaits          int64 `json:"pin_waits"`
	BytesOnDisk       int64 `json:"bytes_on_disk"`
	PeakResidentBytes int64 `json:"peak_resident_bytes"`
}

// SpillWorkloadResult groups one workload's budget sweep.
type SpillWorkloadResult struct {
	Name  string     `json:"name"`
	Query string     `json:"query"`
	Runs  []SpillRun `json:"runs"`
}

// SpillBenchReport is the top-level JSON document of -spillbench.
type SpillBenchReport struct {
	Shards     int                   `json:"shards"`
	GOMAXPROCS int                   `json:"gomaxprocs"`
	Workloads  []SpillWorkloadResult `json:"workloads"`
}

// runSpillBench sweeps budgets over the scaled workloads. A nonzero
// membudget (the -membudget flag) replaces the derived 1/2- and 1/4-peak
// budgets with that single forced value.
func runSpillBench(shards int, membudget int64) *SpillBenchReport {
	report := &SpillBenchReport{Shards: shards, GOMAXPROCS: runtime.GOMAXPROCS(0)}
	for _, w := range scaledWorkloads() {
		q := cq.MustParse(w.text)
		res := SpillWorkloadResult{Name: w.name, Query: w.text}
		anchor := spillRun(q, w, shards, unlimitedBudget, "unlimited")
		anchor.Budget = 0
		res.Runs = append(res.Runs, anchor)
		budgets := []struct {
			bytes int64
			label string
		}{
			{anchor.PeakResidentBytes / 2, "1/2 peak"},
			{anchor.PeakResidentBytes / 4, "1/4 peak"},
		}
		if membudget > 0 {
			budgets = budgets[:0]
			budgets = append(budgets, struct {
				bytes int64
				label string
			}{membudget, "flag"})
		}
		for _, b := range budgets {
			if b.bytes <= 0 {
				continue // workload too small to derive a forcing budget
			}
			run := spillRun(q, w, shards, b.bytes, b.label)
			if anchor.NsPerOp > 0 {
				run.Slowdown = float64(run.NsPerOp) / float64(anchor.NsPerOp)
			}
			if run.OutputTuples != anchor.OutputTuples {
				fmt.Fprintf(os.Stderr, "cqbench: %s budget %d: output %d tuples, unlimited %d — correctness bug\n",
					w.name, b.bytes, run.OutputTuples, anchor.OutputTuples)
				os.Exit(1)
			}
			res.Runs = append(res.Runs, run)
		}
		report.Workloads = append(report.Workloads, res)
	}
	return report
}

// spillRun measures one workload under one budget on a fresh database and
// a fresh engine (fresh relations, so partition shards register with this
// run's governor; fresh engine, so counters belong to this run).
func spillRun(q *cqbound.Query, w workload, shards int, budget int64, label string) SpillRun {
	ctx := context.Background()
	db := w.db()
	eng := cqbound.NewEngine(cqbound.WithSharding(benchShardThreshold, shards), cqbound.WithMemoryBudget(budget))
	defer func() {
		if err := eng.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "cqbench: closing spill engine: %v\n", err)
		}
	}()
	run := func() (int, eval.Stats, error) {
		out, _, err := eng.Evaluate(ctx, q, db)
		if err != nil {
			return 0, eval.Stats{}, err
		}
		return out.Size(), eval.Stats{}, nil
	}
	ns, outSize, _, err := timeStrategy(func() (int, eval.Stats, error) { return run() })
	if err != nil {
		fmt.Fprintf(os.Stderr, "cqbench: %s (budget %d): %v\n", w.name, budget, err)
		os.Exit(1)
	}
	// One instrumented evaluation with counters scoped to it alone.
	eng.ResetStats()
	if _, _, err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "cqbench: %s (budget %d) instrumented: %v\n", w.name, budget, err)
		os.Exit(1)
	}
	st := eng.SpillStats()
	return SpillRun{
		Budget:            budget,
		BudgetLabel:       label,
		NsPerOp:           ns,
		OutputTuples:      outSize,
		Slowdown:          1,
		Evictions:         st.Evictions,
		ReloadedShards:    st.ReloadedShards,
		PinWaits:          st.PinWaits,
		BytesOnDisk:       st.BytesOnDisk,
		PeakResidentBytes: st.PeakResidentBytes,
	}
}

func printSpillBench(rep *SpillBenchReport, asJSON bool) {
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "cqbench:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("shards=%d gomaxprocs=%d\n", rep.Shards, rep.GOMAXPROCS)
	for _, w := range rep.Workloads {
		fmt.Printf("  %s\n", w.Name)
		for _, r := range w.Runs {
			fmt.Printf("    %-10s budget=%-12d %10dns/op out=%-7d slowdown=%.2fx evict=%d reload=%d disk=%dB peak=%dB\n",
				r.BudgetLabel, r.Budget, r.NsPerOp, r.OutputTuples, r.Slowdown,
				r.Evictions, r.ReloadedShards, r.BytesOnDisk, r.PeakResidentBytes)
		}
	}
}
