// Command cqbench runs the experiment harness that regenerates every
// figure, worked example, and quantitative theorem of the paper (see the
// index in DESIGN.md §3).
//
// With -planbench it instead benchmarks the bound-driven query planner
// against each fixed evaluation strategy on canonical workloads, printing a
// table or (with -json) a machine-readable baseline for future perf work.
//
// With -baseline FILE the -planbench run additionally compares itself
// against a checked-in JSON baseline and exits non-zero when any workload
// regresses by more than the threshold (default 3x) — the CI guard against
// pathological performance regressions, generous enough not to flake on
// shared runners.
//
// With -shardbench it compares partition-parallel (internal/shard) against
// single-shard execution of the same strategy on the scaled workloads —
// the sweep behind BENCH_sharded.json — and reports, per query, how the
// exchange router behaved: operators sharded vs fallen back, rows reused
// in place vs repartitioned, broadcasts and skew splits. -shards N sets
// the partition count for both -shardbench and the planned-sharded rows of
// -planbench; -skew F sets the hot-shard split fraction; -membudget N
// runs the sharded side under an N-byte resident-set budget (forced
// spilling) and reports the governor's eviction/reload counters.
//
// With -spillbench it sweeps memory budgets over the scaled workloads —
// unlimited, then 1/2 and 1/4 of the unlimited run's peak resident shard
// bytes (or a single -membudget override) — and reports the wall-clock
// price and eviction/reload traffic of each cap. The recorded document
// lives in BENCH_spill.json.
//
// With -streambench it compares the materialize-per-operator executors
// against the streamed column-batch pipelines at batch sizes 64, 1024 and
// 8192 on the scaled workloads, recording wall-clock and the governor's
// peak-resident-bytes high-water mark for each (with -membudget, both
// sides run at that shared forcing budget). The recorded document lives
// in BENCH_stream.json.
//
// With -tracebench it prices the observability layer on the scaled
// workloads: each runs on a plain engine and on one with WithTracing
// (full span tree, per-query stats deltas, sink emission per Evaluate)
// and the report records the wall-clock overhead, targeted at <=3% at the
// default batch size. -tracegate F fails the run when a star or path
// workload exceeds the fraction F. The recorded document lives in
// BENCH_trace.json.
//
// With -ingestbench it measures the transactional write path on the
// scaled workloads: delta batches committed through the epoch-based Txn
// API while a concurrent reader pins snapshots — batch-apply throughput
// (memo maintenance included) and the incremental-vs-rebuild cost of the
// first post-ingest evaluation. The recorded document lives in
// BENCH_ingest.json.
//
// Usage:
//
//	cqbench -list
//	cqbench -experiment E7
//	cqbench -all [-markdown]
//	cqbench -planbench [-json] [-shards N] [-baseline BENCH_baseline.json [-threshold 3]]
//	cqbench -shardbench [-json] [-shards N] [-skew F] [-membudget N]
//	cqbench -spillbench [-json] [-shards N] [-membudget N]
//	cqbench -streambench [-json] [-shards N] [-membudget N]
//	cqbench -tracebench [-json] [-shards N] [-tracegate F]
//	cqbench -ingestbench [-json] [-shards N] [-membudget N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cqbound/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids")
	exp := flag.String("experiment", "", "run a single experiment (E1..E19)")
	all := flag.Bool("all", false, "run every experiment")
	markdown := flag.Bool("markdown", false, "emit results as Markdown tables")
	planbench := flag.Bool("planbench", false, "benchmark planned vs fixed evaluation strategies")
	shardbench := flag.Bool("shardbench", false, "benchmark sharded vs single-shard execution on scaled workloads")
	spillbench := flag.Bool("spillbench", false, "sweep memory budgets (unlimited vs 1/2 vs 1/4 of peak resident bytes) over the scaled workloads")
	streambench := flag.Bool("streambench", false, "compare materialized vs streamed executors at batch sizes 64/1024/8192 on the scaled workloads")
	tracebench := flag.Bool("tracebench", false, "measure tracing overhead (WithTracing vs plain) on the scaled workloads")
	tracegate := flag.Float64("tracegate", 0, "with -tracebench, fail when a star/path workload's tracing overhead exceeds this fraction (0 disables)")
	ingestbench := flag.Bool("ingestbench", false, "measure transactional batch-apply throughput and incremental-vs-rebuild memo refresh on the scaled workloads")
	shards := flag.Int("shards", 0, "partition count for sharded runs (0 = default 16)")
	skew := flag.Float64("skew", 0, "hot-shard split fraction for sharded runs (0 = default 0.25, negative disables)")
	membudget := flag.Int64("membudget", 0, "resident-set budget in bytes for sharded/spill runs (0 = unlimited; with -spillbench, overrides the derived sweep)")
	jsonOut := flag.Bool("json", false, "emit -planbench/-shardbench results as JSON")
	baseline := flag.String("baseline", "", "compare -planbench against this JSON baseline and fail on regression")
	threshold := flag.Float64("threshold", 3.0, "regression factor tolerated against -baseline")
	flag.Parse()

	// The default partition count is fixed (not GOMAXPROCS) so recorded
	// baselines compare like with like across machines; -shards overrides
	// for manual sweeps.
	if *shards <= 0 {
		*shards = 16
	}

	switch {
	case *ingestbench:
		printIngestBench(runIngestBench(*shards, *membudget), *jsonOut)
	case *tracebench:
		rep := runTraceBench(*shards)
		printTraceBench(rep, *jsonOut)
		if *tracegate > 0 {
			if err := checkTraceGate(rep, *tracegate); err != nil {
				fmt.Fprintln(os.Stderr, "cqbench:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "cqbench: tracing overhead within the %.0f%% gate\n", *tracegate*100)
		}
	case *streambench:
		printStreamBench(runStreamBench(*shards, *membudget), *jsonOut)
	case *spillbench:
		printSpillBench(runSpillBench(*shards, *membudget), *jsonOut)
	case *shardbench:
		printShardBench(runShardBench(*shards, *skew, *membudget), *jsonOut)
	case *planbench:
		report := runPlanBench(*jsonOut, *shards)
		if *baseline != "" {
			if err := checkBaseline(report, *baseline, *threshold); err != nil {
				fmt.Fprintln(os.Stderr, "cqbench:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "cqbench: within %.1fx of baseline %s\n", *threshold, *baseline)
		}
	case *list:
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
	case *exp != "":
		run(*exp, *markdown)
	case *all:
		failures := 0
		for _, id := range experiments.IDs() {
			failures += run(id, *markdown)
		}
		if failures > 0 {
			fmt.Fprintf(os.Stderr, "cqbench: %d rows diverged from the paper\n", failures)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func run(id string, markdown bool) int {
	rep, err := experiments.Run(id)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cqbench:", err)
		os.Exit(1)
	}
	if markdown {
		printMarkdown(rep)
	} else {
		fmt.Println(rep)
	}
	return len(rep.Failed())
}

func printMarkdown(rep *experiments.Report) {
	fmt.Printf("### %s — %s (%s)\n\n", rep.ID, rep.Title, rep.Artifact)
	fmt.Println("| workload | paper | measured | ok |")
	fmt.Println("|---|---|---|---|")
	for _, row := range rep.Rows {
		ok := "yes"
		if !row.OK {
			ok = "**NO**"
		}
		fmt.Printf("| %s | %s | %s | %s |\n",
			escape(row.Name), escape(row.Paper), escape(row.Measured), ok)
	}
	fmt.Println()
}

func escape(s string) string {
	return strings.ReplaceAll(s, "|", "\\|")
}
