package cqbound

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// triangleDB builds an E relation dense enough to exercise multi-batch
// pipelines on the triangle query.
func triangleDB(n, deg int) *Database {
	db := NewDatabase()
	e := NewRelation("E", "1", "2")
	for i := 0; i < n; i++ {
		for j := 1; j <= deg; j++ {
			e.Add(fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", (i+j)%n))
		}
	}
	db.MustAdd(e)
	return db
}

func pathDB(n int) *Database {
	db := NewDatabase()
	for _, name := range []string{"R", "S", "T"} {
		r := NewRelation(name, "1", "2")
		for i := 0; i < n; i++ {
			r.Add(fmt.Sprintf("v%d", i), fmt.Sprintf("v%d", (i+1)%n))
		}
		db.MustAdd(r)
	}
	return db
}

func TestEvaluateTracedMatchesUntraced(t *testing.T) {
	for _, text := range []string{
		"Q(X,Y,Z) <- E(X,Y), E(Y,Z), E(X,Z).", // cyclic: project-early
		"Q(A,D) <- R(A,B), S(B,C), T(C,D).",   // acyclic: yannakakis
	} {
		q := MustParse(text)
		db := triangleDB(40, 6)
		if q.Body[0].Relation == "R" {
			db = pathDB(50)
		}
		eng := NewEngine()
		plain, _, err := eng.Evaluate(context.Background(), q, db)
		if err != nil {
			t.Fatal(err)
		}
		traced, _, tr, err := eng.EvaluateTraced(context.Background(), q, db)
		if err != nil {
			t.Fatal(err)
		}
		if !RelationsEqual(plain, traced) {
			t.Fatalf("%s: traced output differs from untraced", text)
		}
		if tr == nil || tr.SpanCount() < 4 {
			t.Fatalf("%s: span count = %d, want a real tree", text, tr.SpanCount())
		}
		if tr.Root.RowsOut() != int64(plain.Size()) {
			t.Fatalf("%s: root rows out = %d, want %d", text, tr.Root.RowsOut(), plain.Size())
		}
		if _, ok := tr.Root.Est(); !ok {
			t.Fatalf("%s: root span missing the paper bound estimate", text)
		}
	}
}

// TestExplainAnalyzeTriangle is the acceptance check: the rendered plan
// for the triangle query must carry per-operator actual row counts next
// to size estimates, the paper's worst-case bound, and the stats deltas.
func TestExplainAnalyzeTriangle(t *testing.T) {
	eng := NewEngine()
	q := MustParse("Q(X,Y,Z) <- E(X,Y), E(Y,Z), E(X,Z).")
	out, err := eng.ExplainAnalyze(context.Background(), q, triangleDB(30, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "strategy: project-early\n") {
		t.Fatalf("first line not deterministic:\n%s", out)
	}
	for _, want := range []string{
		"rmax^C",    // the paper bound annotated on the root
		"est=",      // per-operator estimates
		"rows",      // actual row counts
		"[join]",    // operator spans
		"deltas",    // stats families
		"rationale", // the planner's reasoning
		"plan cache",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("ExplainAnalyze missing %q:\n%s", want, out)
		}
	}
}

// TestResetStatsZeroesAllCounterFamilies walks the unified Stats struct
// by reflection: after activity in every family and a ResetStats, every
// counter field must read zero — only the documented present-state
// gauges may survive.
func TestResetStatsZeroesAllCounterFamilies(t *testing.T) {
	eng := NewEngine(WithSharding(1, 4), WithMemoryBudget(512))
	defer eng.Close()
	ctx := context.Background()
	q := MustParse("Q(X,Y,Z) <- E(X,Y), E(Y,Z), E(X,Z).")
	db := triangleDB(40, 6)
	for i := 0; i < 3; i++ {
		if _, _, _, err := eng.EvaluateTraced(ctx, q, db); err != nil {
			t.Fatal(err)
		}
	}
	// Exercise the epoch lifecycle counters too.
	tx := eng.Begin()
	if err := tx.Create("W", "1"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Add("W", "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if eng.Stats().Epoch.Commits == 0 {
		t.Fatal("setup failed to bump the epoch counters")
	}
	if eng.Stats().Stream.RowsStreamed == 0 || eng.Stats().CacheHits+eng.Stats().CacheMisses == 0 {
		t.Fatal("setup failed to bump the stream/cache counters")
	}

	eng.ResetStats()
	s := eng.Stats()

	// Present-state gauges that survive ResetStats by design.
	gauges := map[string]bool{
		"CacheSize":               true,
		"Shard":                   false, // all counters
		"Spill.SpilledShards":     true,
		"Spill.RegisteredBuffers": true,
		"Spill.BytesOnDisk":       true,
		"Spill.ResidentBytes":     true,
		"Spill.PeakResidentBytes": true,
		"Epoch.LiveEpoch":         true,
		"Epoch.ActiveEpochs":      true,
		"Epoch.PinnedReaders":     true,
		"Epoch.DictLen":           true,
	}
	var walk func(prefix string, v reflect.Value)
	walk = func(prefix string, v reflect.Value) {
		tp := v.Type()
		for i := 0; i < tp.NumField(); i++ {
			name := tp.Field(i).Name
			if prefix != "" {
				name = prefix + "." + name
			}
			f := v.Field(i)
			if f.Kind() == reflect.Struct {
				walk(name, f)
				continue
			}
			if gauges[name] {
				continue
			}
			var n int64
			switch f.Kind() {
			case reflect.Int, reflect.Int64:
				n = f.Int()
			case reflect.Uint64:
				n = int64(f.Uint())
			default:
				t.Fatalf("unexpected field kind %v at %s", f.Kind(), name)
			}
			if n != 0 {
				t.Errorf("counter %s = %d after ResetStats, want 0", name, n)
			}
		}
	}
	walk("", reflect.ValueOf(s))
}

// TestTracedDeltaIsolation runs two traced evaluations concurrently and
// checks each trace's deltas match a solo baseline: the private-counter
// snapshot/diff must keep concurrent queries from contaminating each
// other.
func TestTracedDeltaIsolation(t *testing.T) {
	q := MustParse("Q(X,Y,Z) <- E(X,Y), E(Y,Z), E(X,Z).")
	db := triangleDB(40, 6)
	ctx := context.Background()

	// Baseline: one traced evaluation alone on a warmed engine.
	eng := NewEngine()
	if _, _, _, err := eng.EvaluateTraced(ctx, q, db); err != nil {
		t.Fatal(err)
	}
	_, _, base, err := eng.EvaluateTraced(ctx, q, db)
	if err != nil {
		t.Fatal(err)
	}
	baseRows, ok := base.Delta("stream", "rows_streamed")
	if !ok || baseRows == 0 {
		t.Fatalf("baseline rows_streamed = %d/%v", baseRows, ok)
	}

	// Concurrent: both run the warmed query; each must see exactly the
	// solo delta, not a share of the sum.
	const workers = 4
	traces := make([]*Trace, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, tr, err := eng.EvaluateTraced(ctx, q, db)
			if err != nil {
				t.Error(err)
				return
			}
			traces[i] = tr
		}(i)
	}
	wg.Wait()
	for i, tr := range traces {
		if tr == nil {
			t.Fatalf("trace %d missing", i)
		}
		rows, _ := tr.Delta("stream", "rows_streamed")
		if rows != baseRows {
			t.Errorf("trace %d rows_streamed = %d, want the solo %d", i, rows, baseRows)
		}
		batches, _ := tr.Delta("stream", "batches")
		if batches == 0 {
			t.Errorf("trace %d streamed no batches", i)
		}
		hits, _ := tr.Delta("cache", "hits")
		misses, _ := tr.Delta("cache", "misses")
		if hits != 1 || misses != 0 {
			t.Errorf("trace %d cache delta = %d/%d, want exactly one hit", i, hits, misses)
		}
	}
	// The engine-wide totals still account for every evaluation.
	if got := eng.Stats().Stream.RowsStreamed; got != baseRows*(workers+2) {
		t.Errorf("engine rows_streamed = %d, want %d", got, baseRows*(workers+2))
	}
}

func TestWithTracingFeedsSinks(t *testing.T) {
	var mu sync.Mutex
	var got []*Trace
	var buf bytes.Buffer
	eng := NewEngine(
		WithTracing(),
		WithTraceSink(TraceSinkFunc(func(tr *Trace) {
			mu.Lock()
			got = append(got, tr)
			mu.Unlock()
		})),
		WithTraceSink(NewSlowQueryLog(&buf, 0)),
	)
	q := MustParse("Q(A,D) <- R(A,B), S(B,C), T(C,D).")
	if _, _, err := eng.Evaluate(context.Background(), q, pathDB(30)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Strategy != "yannakakis" {
		t.Fatalf("sink saw %d traces", len(got))
	}
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("slow-query line: %v (%q)", err, buf.String())
	}
	if rec["strategy"] != "yannakakis" {
		t.Fatalf("record = %v", rec)
	}
}

func TestEngineStatsUnified(t *testing.T) {
	eng := NewEngine()
	q := MustParse("Q(X,Z) <- R(X,Y), S(Y,Z).")
	db := NewDatabase()
	r := NewRelation("R", "a", "b")
	r.Add("x", "y")
	s := NewRelation("S", "a", "b")
	s.Add("y", "z")
	db.MustAdd(r)
	db.MustAdd(s)
	if _, _, err := eng.Evaluate(context.Background(), q, db); err != nil {
		t.Fatal(err)
	}
	u := eng.Stats()
	h, m := eng.CacheStats()
	if u.CacheHits != h || u.CacheMisses != m || u.CacheSize != eng.CacheSize() {
		t.Fatalf("cache fields diverge: %+v vs %d/%d/%d", u, h, m, eng.CacheSize())
	}
	if u.Stream != eng.StreamStats() || u.Shard != eng.ShardStats() ||
		u.Spill != eng.SpillStats() || u.Epoch != eng.EpochStats() {
		t.Fatal("unified families diverge from per-family accessors")
	}
}

func TestMetricsRegistryAndHistograms(t *testing.T) {
	eng := NewEngine()
	reg := eng.Metrics()
	if reg != eng.Metrics() {
		t.Fatal("Metrics must return one registry")
	}
	q := MustParse("Q(X,Y,Z) <- E(X,Y), E(Y,Z), E(X,Z).")
	if _, _, _, err := eng.EvaluateTraced(context.Background(), q, triangleDB(30, 5)); err != nil {
		t.Fatal(err)
	}
	snap := eng.MetricsSnapshot()
	lat, ok := snap["query_latency_ns"].(HistogramSnapshot)
	if !ok || lat.Count != 1 || lat.Max <= 0 {
		t.Fatalf("query_latency_ns = %+v", snap["query_latency_ns"])
	}
	peak, _ := snap["query_peak_rows"].(HistogramSnapshot)
	if peak.Count != 1 || peak.Max == 0 {
		t.Fatalf("query_peak_rows = %+v", peak)
	}
	if snap["stream_rows"].(int64) == 0 {
		t.Fatal("stream_rows gauge must reflect the engine counters")
	}
	if snap["cache_misses"].(int64) == 0 {
		t.Fatal("cache_misses gauge must reflect the plan cache")
	}
	rec := httptest.NewRecorder()
	reg.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
	var m map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatalf("HTTP body: %v", err)
	}
	if _, ok := m["query_latency_ns"]; !ok {
		t.Fatal("HTTP snapshot missing histogram")
	}
}

func TestWithSlowQueryThresholdOption(t *testing.T) {
	// The stderr-bound option must register a sink; behavior is covered by
	// the writer-parameterized NewSlowQueryLog tests — here only that a
	// high threshold drops fast queries (nothing observable fails).
	eng := NewEngine(WithTracing(), WithSlowQueryThreshold(time.Hour))
	q := MustParse("Q(X,Z) <- R(X,Y), S(Y,Z).")
	db := pathDB(10)
	if _, _, err := eng.Evaluate(context.Background(), q, db); err != nil {
		t.Fatal(err)
	}
	if len(eng.sinks) != 1 {
		t.Fatalf("sinks = %d, want 1", len(eng.sinks))
	}
}
