#!/bin/sh
# checkdocs.sh — fail when any package lacks a doc comment.
#
# The equivalent of revive's package-comments rule without a dependency:
# every package directory must contain at least one .go file opening with a
# "// Package <name> ..." comment (or "// Command <name> ..." for mains).
# This keeps the doc.go files of the execution stack — shard, eval, plan,
# relation, spill (the pin/unpin and eviction contracts), batch (the
# pull-based iterator and batch-validity contracts), trace (the nil-span
# inertness contract), metrics (the wait-free observation contract) —
# enforced rather than aspirational. New packages are picked up
# automatically via go list.
set -e
fail=0
# The execution-stack packages must keep a dedicated doc.go: their package
# comments carry API contracts (batch validity windows, spill pin rules),
# not just one-liners, and a dedicated file keeps them findable.
for doc in internal/batch/doc.go internal/shard/doc.go internal/eval/doc.go internal/spill/doc.go internal/trace/doc.go internal/metrics/doc.go internal/serve/doc.go internal/obs/doc.go; do
    if [ ! -f "$doc" ]; then
        echo "checkdocs: missing $doc (execution-stack contract doc)" >&2
        fail=1
    fi
done
for dir in $(go list -f '{{.Dir}}' ./...); do
    if ! grep -q -E '^// (Package|Command) ' "$dir"/*.go 2>/dev/null; then
        echo "checkdocs: missing package comment in $dir" >&2
        fail=1
    fi
done
if [ "$fail" -ne 0 ]; then
    echo "checkdocs: add a '// Package <name> ...' doc comment (see doc.go files for examples)" >&2
    exit 1
fi
echo "checkdocs: every package has a doc comment"
