// Package cqbound is a Go implementation of Gottlob, Lee, Valiant and
// Valiant, "Size and Treewidth Bounds for Conjunctive Queries" (PODS 2009 /
// JACM). It computes, for a conjunctive query with functional dependencies:
//
//   - the chase (Definition 2.3) and the color number C(chase(Q))
//     (Definitions 3.1–3.2), by the method matching the dependency class:
//     the Proposition 3.6 LP, the Theorem 4.4 dependency elimination, or the
//     Proposition 6.10 entropy LP;
//   - tight worst-case size bounds |Q(D)| ≤ rmax(D)^C(chase(Q))
//     (Proposition 4.1, Theorem 4.4) with executable witness databases
//     (Proposition 4.5) and the Shannon-inequality upper bound s(Q)
//     (Proposition 6.9);
//   - the polynomial size-increase decision (Theorems 6.1 and 7.2);
//   - treewidth machinery: decompositions, exact/heuristic treewidth, the
//     constructive keyed-join bound j(ω+1)−1 (Theorem 5.5), and the
//     preservation characterizations (Proposition 5.9, Theorem 5.10);
//   - the information-theoretic toolkit of Section 6 (I-measure atoms,
//     empirical entropies, knitted complexity).
//
// The root package re-exports the library's public API; subsystems live in
// internal packages. Start with Parse and Analyze:
//
//	q, _ := cqbound.Parse("Q(X,Y,Z) <- R(X,Y), R(X,Z), R(Y,Z).")
//	a, _ := cqbound.Analyze(q)
//	fmt.Println(a.Summary()) // C = 3/2, size bound rmax^{3/2}, ...
//
// For evaluation, use an Engine: it selects a strategy from the query's
// structure (Yannakakis when α-acyclic, project-early when C(chase(Q)) is
// small, worst-case optimal generic join otherwise), orders joins by
// cardinality, caches per-query analysis, and honors context cancellation:
//
//	eng := cqbound.NewEngine()
//	p, _ := eng.Explain(q)                    // strategy + paper-derived rationale
//	out, stats, _ := eng.Evaluate(ctx, q, db) // planned execution
//
// The fixed-strategy helpers (Evaluate, EvaluateGenericJoin,
// EvaluateYannakakis) remain for callers that want a specific algorithm.
package cqbound

import (
	"math/big"

	"cqbound/internal/chase"
	"cqbound/internal/coloring"
	"cqbound/internal/construct"
	"cqbound/internal/core"
	"cqbound/internal/cover"
	"cqbound/internal/cq"
	"cqbound/internal/database"
	"cqbound/internal/entropy"
	"cqbound/internal/eval"
	"cqbound/internal/graph"
	"cqbound/internal/hornsat"
	"cqbound/internal/relation"
	"cqbound/internal/sat"
	"cqbound/internal/treewidth"
)

// Query model (internal/cq).
type (
	// Query is a conjunctive query in datalog-rule form with functional
	// dependencies.
	Query = cq.Query
	// Atom is a relational atom R(X,Y,...).
	Atom = cq.Atom
	// Variable is a query variable.
	Variable = cq.Variable
	// FD is a positional functional dependency.
	FD = cq.FD
)

// Parse reads a query from its textual form ("Q(X,Y) <- R(X,Z), S(Z,Y). key
// S[1].").
func Parse(text string) (*Query, error) { return cq.Parse(text) }

// MustParse is Parse but panics on error.
func MustParse(text string) *Query { return cq.MustParse(text) }

// Chase computes chase(Q) per Definition 2.3 (Fact 2.4: the result computes
// the same answers on every database).
func Chase(q *Query) *Query { return chase.Chase(q).Query }

// Analysis and the full pipeline (internal/core).
type (
	// Analysis is the complete per-query report.
	Analysis = core.Analysis
	// FDClass classifies the effective dependencies of chase(Q).
	FDClass = core.FDClass
	// TreewidthVerdict is the treewidth-preservation outcome.
	TreewidthVerdict = core.TreewidthVerdict
)

// Re-exported enum values.
const (
	NoFDs       = core.NoFDs
	SimpleFDs   = core.SimpleFDs
	CompoundFDs = core.CompoundFDs

	TWPreserved = core.TWPreserved
	TWUnbounded = core.TWUnbounded
	TWOpen      = core.TWOpen
)

// Analyze runs the whole paper on one query: chase, color number, size
// bounds, size-increase decision, covers, and the treewidth verdict.
func Analyze(q *Query) (*Analysis, error) { return core.Analyze(q) }

// Colorings (internal/coloring).
type (
	// Coloring labels query variables with color sets (Definition 3.1).
	Coloring = coloring.Coloring
	// ColorSet is a set of colors.
	ColorSet = coloring.ColorSet
)

// ValidateColoring checks Definition 3.1 for q.
func ValidateColoring(q *Query, l Coloring) error { return coloring.Validate(q, l) }

// ColorNumberOf returns the color number of a specific coloring
// (Definition 3.2).
func ColorNumberOf(q *Query, l Coloring) (*big.Rat, error) { return coloring.Number(q, l) }

// ColorNumber computes C(chase(Q)) and a witness coloring of chase(Q),
// choosing the algorithm by dependency class (see Analyze for the full
// report).
func ColorNumber(q *Query) (*big.Rat, Coloring, error) {
	a, err := core.Analyze(q)
	if err != nil {
		return nil, nil, err
	}
	return a.ColorNumber, a.Coloring, nil
}

// FractionalEdgeCover returns ρ*(Q) of Definition 3.5.
func FractionalEdgeCover(q *Query) (*big.Rat, error) {
	r, err := cover.FractionalEdgeCover(q)
	if err != nil {
		return nil, err
	}
	return r.Rho, nil
}

// SizeBoundExponent returns s(Q), the Proposition 6.9 Shannon-LP upper
// bound on the worst-case size-increase exponent.
func SizeBoundExponent(q *Query) (*big.Rat, error) { return entropy.SizeBoundExponent(q) }

// SizeIncreasePossible decides in polynomial time whether some database
// makes |Q(D)| > rmax(D) (Theorems 6.1 and 7.2).
func SizeIncreasePossible(q *Query) bool { return hornsat.DecideSizeIncrease(q).Increase }

// Databases and evaluation (internal/relation, internal/database,
// internal/eval).
type (
	// Relation is an in-memory relation with set semantics.
	Relation = relation.Relation
	// Tuple is a database tuple.
	Tuple = relation.Tuple
	// Value is a field value: an ID interned in the value dictionary. Build
	// one with V; recover the text with Value.String.
	Value = relation.Value
	// Dict is the bidirectional string ↔ Value dictionary.
	Dict = relation.Dict
	// Database is a named collection of relations.
	Database = database.Database
	// EvalStats reports evaluation statistics.
	EvalStats = eval.Stats
)

// V interns a string as a Value in the process-wide default dictionary —
// a convenience for single-engine use. Relations also intern directly from
// strings via Relation.Add (through their own dictionary), and an Engine's
// transactions intern in the engine's private dictionary (Engine.Dict).
func V(s string) Value { return relation.V(s) }

// ValueDict returns the process-wide default dictionary: the one V,
// Value.String, and every free-standing relation intern in. Engines own
// private dictionaries (Engine.Dict); values from different dictionaries
// are not comparable.
func ValueDict() *Dict { return relation.DefaultDict() }

// NewDict returns a fresh, empty dictionary for callers that build
// relation sets isolated from the process-wide default.
func NewDict() *Dict { return relation.NewDict() }

// NewRelation creates an empty relation with the given attribute names,
// interning in the default dictionary.
func NewRelation(name string, attrs ...string) *Relation { return relation.New(name, attrs...) }

// NewRelationIn is NewRelation with an explicit dictionary: Add interns
// there, and String resolves through it.
func NewRelationIn(name string, d *Dict, attrs ...string) *Relation {
	return relation.NewIn(name, d, attrs...)
}

// RelationsEqual reports whether two relations hold the same set of tuples
// (attribute names are ignored; arity must match).
func RelationsEqual(r, s *Relation) bool { return relation.Equal(r, s) }

// NewDatabase creates an empty database.
func NewDatabase() *Database { return database.New() }

// NewDatabaseIn creates an empty database whose relations intern in the
// given dictionary.
func NewDatabaseIn(d *Dict) *Database { return database.NewIn(d) }

// Evaluate computes Q(D) with the project-early plan of Corollary 4.8.
func Evaluate(q *Query, db *Database) (*Relation, error) {
	out, _, err := eval.JoinProject(q, db)
	return out, err
}

// EvaluateGenericJoin computes Q(D) with the worst-case optimal
// variable-at-a-time join.
func EvaluateGenericJoin(q *Query, db *Database) (*Relation, EvalStats, error) {
	return eval.GenericJoin(q, db)
}

// IsAcyclic reports whether the query's body hypergraph is α-acyclic
// (GYO reduction).
func IsAcyclic(q *Query) bool { return eval.IsAcyclic(q) }

// EvaluateYannakakis computes Q(D) for α-acyclic queries with Yannakakis'
// algorithm: semijoin reduction keeps intermediates at O(input + output).
func EvaluateYannakakis(q *Query, db *Database) (*Relation, EvalStats, error) {
	return eval.Yannakakis(q, db)
}

// WitnessDatabase builds the Proposition 4.5 worst-case database for a
// (chased) query and a valid coloring: |Q(D)| = M^|colors(head)|.
func WitnessDatabase(q *Query, l Coloring, m int) (*Database, error) {
	return construct.ProductWitness(q, l, m)
}

// Treewidth machinery (internal/graph, internal/treewidth).
type (
	// Graph is an undirected labeled graph.
	Graph = graph.Graph
	// Decomposition is a tree decomposition.
	Decomposition = treewidth.Decomposition
)

// NewGraph returns an empty graph.
func NewGraph() *Graph { return graph.New() }

// GaifmanGraph returns G(D) per Section 2.
func GaifmanGraph(db *Database) *Graph { return db.GaifmanGraph() }

// Treewidth computes the exact treewidth when feasible, or a
// [lower, upper] interval (see internal/treewidth.Treewidth).
func Treewidth(g *Graph) (lower, upper int, exact bool, err error) {
	return treewidth.Treewidth(g)
}

// ValidateDecomposition checks the three conditions of a tree
// decomposition.
func ValidateDecomposition(g *Graph, d *Decomposition) error { return treewidth.Validate(g, d) }

// TwoColoringExists decides whether chase(Q) has a valid 2-coloring with
// color number 2 — the exact condition for unbounded treewidth growth
// (Proposition 5.9, Theorem 5.10; NP-complete with compound dependencies,
// Proposition 7.3).
func TwoColoringExists(q *Query) (Coloring, bool) {
	dec := sat.DecideTwoColoring(q)
	return dec.Witness, dec.Exists
}
