package cqbound

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// ingestChain commits a fresh relation R(A,B) holding the chain rows
// (n_i, n_{i+1}) for i in [0, n) and returns the published epoch.
func ingestChain(t *testing.T, eng *Engine, n int) uint64 {
	t.Helper()
	txn := eng.Begin()
	if err := txn.Create("R", "A", "B"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := txn.Add("R", fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1)); err != nil {
			t.Fatal(err)
		}
	}
	epoch, err := txn.Commit()
	if err != nil {
		t.Fatal(err)
	}
	return epoch
}

func evalSize(t *testing.T, eng *Engine, q *Query, db *Database) int {
	t.Helper()
	out, _, err := eng.Evaluate(context.Background(), q, db)
	if err != nil {
		t.Fatal(err)
	}
	return out.Size()
}

func TestTxnCommitPublishesEpochs(t *testing.T) {
	eng := NewEngine()
	if got := eng.LiveEpoch(); got != 1 {
		t.Fatalf("fresh engine lives at epoch %d, want 1", got)
	}
	if epoch := ingestChain(t, eng, 3); epoch != 2 {
		t.Fatalf("first commit published epoch %d, want 2", epoch)
	}
	q := MustParse("Q(X,Z) <- R(X,Y), R(Y,Z).")
	snap := eng.Snapshot()
	defer snap.Close()
	if got := evalSize(t, eng, q, snap.DB()); got != 2 {
		t.Fatalf("chain of 3 edges has %d length-2 paths, want 2", got)
	}

	// Appends land as the next epoch; duplicates drop (set semantics).
	txn := eng.Begin()
	txn.Add("R", "n3", "n4")
	txn.Add("R", "n0", "n1") // duplicate of a stored row
	txn.Add("R", "n3", "n4") // duplicate within the batch
	epoch, err := txn.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 3 {
		t.Fatalf("second commit published epoch %d, want 3", epoch)
	}
	snap2 := eng.Snapshot()
	defer snap2.Close()
	if r := snap2.DB().Relation("R"); r.Size() != 4 {
		t.Fatalf("R holds %d rows after dedup, want 4", r.Size())
	}
	if got := evalSize(t, eng, q, snap2.DB()); got != 3 {
		t.Fatalf("chain of 4 edges has %d length-2 paths, want 3", got)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	eng := NewEngine()
	ingestChain(t, eng, 3)
	q := MustParse("Q(X,Y) <- R(X,Y).")

	old := eng.Snapshot()
	defer old.Close()
	if old.Epoch() != 2 {
		t.Fatalf("snapshot pinned epoch %d, want 2", old.Epoch())
	}

	// A commit after the pin must be invisible to the pinned reader.
	txn := eng.Begin()
	txn.Add("R", "n9", "n10")
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := evalSize(t, eng, q, old.DB()); got != 3 {
		t.Fatalf("pinned reader sees %d rows, want the frozen 3", got)
	}
	live := eng.Snapshot()
	defer live.Close()
	if got := evalSize(t, eng, q, live.DB()); got != 4 {
		t.Fatalf("live reader sees %d rows, want 4", got)
	}

	// The retired-but-pinned epoch counts as active until its pin drains.
	if st := eng.EpochStats(); st.ActiveEpochs != 2 || st.PinnedReaders != 2 {
		t.Fatalf("stats = %d active / %d pinned, want 2/2", st.ActiveEpochs, st.PinnedReaders)
	}
	old.Close()
	if st := eng.EpochStats(); st.ActiveEpochs != 1 {
		t.Fatalf("%d epochs active after the old pin drained, want 1", st.ActiveEpochs)
	}
}

func TestTxnRetract(t *testing.T) {
	eng := NewEngine()
	ingestChain(t, eng, 3)

	// Retract one row; retract-then-append of the same row keeps it.
	txn := eng.Begin()
	txn.Remove("R", "n0", "n1")
	txn.Remove("R", "n1", "n2")
	txn.Add("R", "n1", "n2")
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	snap := eng.Snapshot()
	defer snap.Close()
	r := snap.DB().Relation("R")
	if r.Size() != 2 {
		t.Fatalf("R holds %d rows, want 2", r.Size())
	}
	d := eng.Dict()
	has := func(a, b string) bool {
		va, oka := d.Lookup(a)
		vb, okb := d.Lookup(b)
		return oka && okb && r.Has(Tuple{va, vb})
	}
	if has("n0", "n1") || !has("n1", "n2") || !has("n2", "n3") {
		t.Fatalf("wrong surviving rows: %s", r.String())
	}
	if st := eng.EpochStats(); st.RebuiltRelations != 1 {
		t.Fatalf("retraction rebuilt %d relations, want 1", st.RebuiltRelations)
	}

	// Retracting an absent tuple (and a never-interned string) is a no-op
	// that publishes nothing.
	before := eng.LiveEpoch()
	txn = eng.Begin()
	txn.Remove("R", "never-interned-xyzzy", "n1")
	txn.Remove("R", "n0", "n1") // already gone
	epoch, err := txn.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if epoch != before {
		t.Fatalf("no-op commit published epoch %d, want to stay at %d", epoch, before)
	}
}

func TestTxnValidationIsAtomic(t *testing.T) {
	eng := NewEngine()
	ingestChain(t, eng, 2)
	before := eng.LiveEpoch()

	// A batch touching an unknown relation fails whole: the valid append
	// staged alongside it must not land.
	txn := eng.Begin()
	txn.Add("R", "n7", "n8")
	txn.Add("Nope", "x")
	if _, err := txn.Commit(); err == nil {
		t.Fatal("commit touching an unknown relation succeeded")
	}
	if eng.LiveEpoch() != before {
		t.Fatal("failed commit published an epoch")
	}
	snap := eng.Snapshot()
	defer snap.Close()
	if r := snap.DB().Relation("R"); r.Size() != 2 {
		t.Fatalf("failed commit leaked rows into R (%d rows)", r.Size())
	}
	if _, err := txn.Commit(); err == nil {
		t.Fatal("second commit of a dead txn succeeded")
	}

	// Arity mismatches and duplicate creations also fail validation.
	txn = eng.Begin()
	txn.Add("R", "only-one")
	if _, err := txn.Commit(); err == nil {
		t.Fatal("arity-mismatched append committed")
	}
	txn = eng.Begin()
	txn.Create("R", "A")
	if _, err := txn.Commit(); err == nil {
		t.Fatal("re-creating an existing relation committed")
	}
	if eng.LiveEpoch() != before {
		t.Fatal("failed validation published an epoch")
	}
}

// TestEpochSweepReclaimsGovernorBuffers is the regression test for the
// memo-shard leak: governed partition memos orphaned by a new version used
// to stay registered with the spill governor (and parked on disk) forever.
// With epochs, the retirement sweep must return the governor to the live
// snapshot's footprint after every mutation, and to zero once the data is
// retracted.
func TestEpochSweepReclaimsGovernorBuffers(t *testing.T) {
	eng := NewEngine(
		WithMemoryBudget(256), // force parking so on-disk bytes are exercised
		WithSpillDir(t.TempDir()),
		WithSharding(1, 4),
	)
	defer eng.Close()
	ingestChain(t, eng, 64)
	q := MustParse("Q(X,Z) <- R(X,Y), R(Y,Z).")

	// Build the governed partition memos for the live epoch.
	snap := eng.Snapshot()
	if got := evalSize(t, eng, q, snap.DB()); got != 63 {
		t.Fatalf("chain of 64 edges has %d length-2 paths, want 63", got)
	}
	snap.Close()
	st1 := eng.SpillStats()
	if st1.RegisteredBuffers == 0 {
		t.Fatal("no governed partition memos after a sharded evaluation")
	}
	if st1.BytesOnDisk == 0 {
		t.Fatal("a 256-byte budget parked nothing — the disk path is untested")
	}

	// An appending commit replaces the touched shards; the sweep must
	// discard the replaced ones so the registry returns to baseline
	// instead of accumulating one orphaned set per batch.
	for round := 0; round < 3; round++ {
		txn := eng.Begin()
		for i := 64 + 16*round; i < 64+16*(round+1); i++ {
			txn.Add("R", fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1))
		}
		if _, err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
		snap := eng.Snapshot()
		evalSize(t, eng, q, snap.DB())
		snap.Close()
	}
	st2 := eng.SpillStats()
	if st2.RegisteredBuffers != st1.RegisteredBuffers {
		t.Fatalf("registry grew across commits: %d buffers, baseline %d — orphaned memo shards leaked",
			st2.RegisteredBuffers, st1.RegisteredBuffers)
	}
	es := eng.EpochStats()
	if es.SweptBuffers == 0 {
		t.Fatal("sweep discarded nothing despite replaced shards")
	}
	if es.IncrementalMemos == 0 {
		t.Fatal("appends derived no memos incrementally")
	}

	// Retract everything: after the old epochs retire, the governor must
	// hold nothing and the spill directory must be empty.
	snap = eng.Snapshot()
	r := snap.DB().Relation("R")
	txn := eng.Begin()
	r.Each(func(tp Tuple) bool {
		txn.Retract("R", tp)
		return true
	})
	snap.Close()
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	snap = eng.Snapshot()
	if got := evalSize(t, eng, q, snap.DB()); got != 0 {
		t.Fatalf("retract-all left %d result rows", got)
	}
	snap.Close()
	st3 := eng.SpillStats()
	if st3.RegisteredBuffers != 0 {
		t.Fatalf("%d buffers still registered after retract-all", st3.RegisteredBuffers)
	}
	if st3.BytesOnDisk != 0 {
		t.Fatalf("%d bytes still on disk after retract-all", st3.BytesOnDisk)
	}
}

// TestPlanCacheKeyedOnEpoch is the regression test for stale plans: the
// data-dependent plan is cached per (query, epoch), so an ingest that
// inverts the size skew flips the join order under the new epoch's key
// while the pinned old epoch keeps its old (still-correct) plan.
func TestPlanCacheKeyedOnEpoch(t *testing.T) {
	eng := NewEngine()
	q := MustParse("Q(X,Y,Z) <- R1(X,Y), R2(X,Z), R3(Y,Z).")
	txn := eng.Begin()
	txn.Create("R1", "A", "B")
	txn.Create("R2", "A", "B")
	txn.Create("R3", "A", "B")
	for i := 0; i < 4; i++ {
		txn.Add("R1", fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i))
	}
	for i := 0; i < 50; i++ {
		txn.Add("R2", fmt.Sprintf("a%d", i), fmt.Sprintf("c%d", i))
		txn.Add("R3", fmt.Sprintf("b%d", i), fmt.Sprintf("c%d", i))
	}
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}

	oldSnap := eng.Snapshot()
	defer oldSnap.Close()
	p1, err := eng.ExplainDB(q, oldSnap.DB())
	if err != nil {
		t.Fatal(err)
	}
	if p1.Strategy != StrategyProjectEarly || len(p1.AtomOrder) != 3 {
		t.Fatalf("triangle planned as %v with order %v", p1.Strategy, p1.AtomOrder)
	}
	if p1.AtomOrder[0] != 0 {
		t.Fatalf("planner leads with atom %d, want the 4-row R1 (atom 0)", p1.AtomOrder[0])
	}

	// Invert the skew: R1 becomes the largest relation by far.
	txn = eng.Begin()
	for i := 0; i < 400; i++ {
		txn.Add("R1", fmt.Sprintf("xa%d", i), fmt.Sprintf("xb%d", i))
	}
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	liveSnap := eng.Snapshot()
	defer liveSnap.Close()
	p2, err := eng.ExplainDB(q, liveSnap.DB())
	if err != nil {
		t.Fatal(err)
	}
	if p2.AtomOrder[0] == 0 {
		t.Fatal("stale plan: the new epoch still leads with the formerly-small R1")
	}

	// The pinned old epoch keeps its plan — same answer, same cached value.
	p1again, err := eng.ExplainDB(q, oldSnap.DB())
	if err != nil {
		t.Fatal(err)
	}
	if p1again != p1 {
		t.Fatal("old epoch's plan was re-derived instead of served from cache")
	}
	if p1again.AtomOrder[0] != 0 {
		t.Fatal("old epoch's plan changed under a pinned reader")
	}
}

// TestEnginesHavePrivateDicts is the regression test for dictionary
// cross-contamination: two engines ingesting concurrently intern in their
// own dictionaries, never in each other's and never in the process-wide
// default. Run under -race this also exercises the commit/pin paths.
func TestEnginesHavePrivateDicts(t *testing.T) {
	defaultBefore := ValueDict().Len()
	engines := []*Engine{NewEngine(), NewEngine()}
	q := MustParse("Q(X,Y) <- R(X,Y).")

	var wg sync.WaitGroup
	for id, eng := range engines {
		wg.Add(1)
		go func(id int, eng *Engine) {
			defer wg.Done()
			txn := eng.Begin()
			txn.Create("R", "A", "B")
			if _, err := txn.Commit(); err != nil {
				t.Error(err)
				return
			}
			var inner sync.WaitGroup
			for w := 0; w < 2; w++ {
				inner.Add(1)
				go func(w int) {
					defer inner.Done()
					for i := 0; i < 50; i++ {
						txn := eng.Begin()
						txn.Add("R", fmt.Sprintf("e%d-a%d-%d", id, w, i), fmt.Sprintf("e%d-b%d-%d", id, w, i))
						if _, err := txn.Commit(); err != nil {
							t.Error(err)
							return
						}
						snap := eng.Snapshot()
						if _, _, err := eng.Evaluate(context.Background(), q, snap.DB()); err != nil {
							t.Error(err)
						}
						snap.Close()
					}
				}(w)
			}
			inner.Wait()
		}(id, eng)
	}
	wg.Wait()

	for id, eng := range engines {
		snap := eng.Snapshot()
		if r := snap.DB().Relation("R"); r.Size() != 100 {
			t.Fatalf("engine %d holds %d rows, want 100", id, r.Size())
		}
		snap.Close()
		if got := eng.Dict().Len(); got != 200 {
			t.Fatalf("engine %d dict holds %d strings, want 200", id, got)
		}
	}
	if _, ok := engines[1].Dict().Lookup("e0-a0-0"); ok {
		t.Fatal("engine 0's string leaked into engine 1's dictionary")
	}
	if _, ok := engines[0].Dict().Lookup("e1-a0-0"); ok {
		t.Fatal("engine 1's string leaked into engine 0's dictionary")
	}
	if got := ValueDict().Len(); got != defaultBefore {
		t.Fatalf("transactional ingest grew the process-wide dictionary by %d", got-defaultBefore)
	}
}

func TestCompactShrinksDict(t *testing.T) {
	eng := NewEngine()
	txn := eng.Begin()
	txn.Create("R", "A")
	txn.Add("R", "keep")
	for i := 0; i < 100; i++ {
		txn.Add("R", fmt.Sprintf("junk%d", i))
	}
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	oldSnap := eng.Snapshot() // pins the pre-compaction dictionary's epoch
	defer oldSnap.Close()

	txn = eng.Begin()
	for i := 0; i < 100; i++ {
		txn.Remove("R", fmt.Sprintf("junk%d", i))
	}
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := eng.EpochStats().DictLen; got != 101 {
		t.Fatalf("dict holds %d strings before compaction, want 101", got)
	}

	if _, err := eng.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := eng.EpochStats().DictLen; got != 1 {
		t.Fatalf("dict holds %d strings after compaction, want 1", got)
	}

	// The compacted live epoch answers queries with the surviving string.
	q := MustParse("Q(X) <- R(X).")
	snap := eng.Snapshot()
	defer snap.Close()
	out, _, err := eng.Evaluate(context.Background(), q, snap.DB())
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 1 {
		t.Fatalf("compacted R evaluates to %d rows, want 1", out.Size())
	}
	var got []string
	out.Each(func(tp Tuple) bool {
		got = tp.StringsIn(eng.Dict())
		return false
	})
	if len(got) != 1 || got[0] != "keep" {
		t.Fatalf("compacted row resolves to %v, want [keep]", got)
	}

	// The pinned pre-compaction snapshot still resolves its strings
	// through the old dictionary.
	oldR := oldSnap.DB().Relation("R")
	if oldR.Size() != 101 {
		t.Fatalf("pinned snapshot shrank to %d rows", oldR.Size())
	}
	sawJunk := false
	oldD := oldR.Dict()
	oldR.Each(func(tp Tuple) bool {
		if tp.StringsIn(oldD)[0] == "junk5" {
			sawJunk = true
		}
		return true
	})
	if !sawJunk {
		t.Fatal("pinned snapshot no longer resolves a pre-compaction string")
	}

	// Post-compaction ingest lands in the fresh dictionary.
	txn = eng.Begin()
	txn.Add("R", "later")
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := eng.EpochStats().DictLen; got != 2 {
		t.Fatalf("dict holds %d strings after post-compaction ingest, want 2", got)
	}
}

func TestEpochRetentionKeepsUnpinnedEpochs(t *testing.T) {
	eng := NewEngine(WithEpochRetention(3))
	for i := 0; i < 5; i++ {
		txn := eng.Begin()
		if i == 0 {
			txn.Create("R", "A")
		}
		txn.Add("R", fmt.Sprintf("v%d", i))
		if _, err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.EpochStats()
	if st.ActiveEpochs != 3 {
		t.Fatalf("%d epochs active under retention 3, want 3", st.ActiveEpochs)
	}
	if st.LiveEpoch != 6 {
		t.Fatalf("live epoch %d, want 6", st.LiveEpoch)
	}
}
