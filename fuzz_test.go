package cqbound

import (
	"context"
	"math"
	"math/big"
	"strings"
	"testing"

	"cqbound/internal/cover"
	"cqbound/internal/cq"
)

// FuzzParseEvaluate fuzzes the query parser and evaluates survivors against
// a small deterministic database, asserting that the parse → validate →
// plan → evaluate pipeline never panics, that planned evaluation agrees
// with the naive reference in size, and that the output respects the AGM
// bound rmax^ρ*(Q) — the paper's Corollary 4.8 family made executable. The
// corpus is seeded with the five example queries shipped in examples/.
func FuzzParseEvaluate(f *testing.F) {
	// One seed per example program (quickstart, treewidth, optimizer,
	// dataexchange, secretshare).
	seeds := []string{
		"Q(X,Z) <- Follows(X,Y), Follows(Y,Z).",
		"Q(X,Y,Z) <- R(X,Y), R(Y,Z), R(X,Z).\nkey R[1].",
		"Q(A,D) <- R(A,B), S(B,C), T(C,D).",
		"Q(X,Y) <- Src(X,U), Map(U,V), Dst(V,Y).\nfd Map[1] -> Map[2].",
		"R0(X1_1,X2_1) <- R1(X1_1,X2_1), T1(X1_1), T2(X2_1).",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	eng := NewEngine()
	f.Fuzz(func(t *testing.T, src string) {
		q, err := cq.Parse(src)
		if err != nil {
			return // rejected input: the parser's job, not a bug
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("Parse accepted a query Validate rejects: %v\nquery: %s", err, q)
		}
		// Keep evaluation tractable: fuzzing explores the parser's full
		// grammar, but evaluation cost is exponential in query size.
		if len(q.Body) > 4 || len(q.Variables()) > 6 {
			return
		}
		for _, a := range q.Body {
			if a.Arity() > 3 {
				return
			}
		}
		db := fuzzDatabase(q)
		out, _, err := eng.Evaluate(context.Background(), q, db)
		if err != nil {
			t.Fatalf("planned evaluation failed on a valid query: %v\nquery: %s", err, q)
		}
		naive, err := Evaluate(q, db)
		if err != nil {
			t.Fatalf("reference evaluation failed: %v\nquery: %s", err, q)
		}
		if out.Size() != naive.Size() {
			t.Fatalf("planned (%d tuples) and reference (%d tuples) disagree\nquery: %s",
				out.Size(), naive.Size(), q)
		}
		// Bound compliance: |Q(D)| ≤ rmax^ρ*(Q) (AGM, Definition 3.5 /
		// Theorem 15 lineage). ρ* covers every variable, so the full join —
		// and any projection of it — obeys the bound.
		res, err := cover.FractionalEdgeCover(q)
		if err != nil || res.Rho == nil {
			return
		}
		rmax, err := db.RMax(q)
		if err != nil || rmax < 2 {
			return
		}
		rho, _ := new(big.Float).SetRat(res.Rho).Float64()
		bound := math.Pow(float64(rmax), rho)
		if float64(out.Size()) > bound*(1+1e-9) {
			t.Fatalf("AGM bound violated: |Q(D)| = %d > rmax^ρ* = %d^%.3f = %.1f\nquery: %s",
				out.Size(), rmax, rho, bound, q)
		}
	})
}

// fuzzDatabase builds a small deterministic instance for q's body schema:
// every relation gets the same dense tuple set over a three-value universe,
// so any parsed query can be evaluated without coordination with the
// fuzzer.
func fuzzDatabase(q *cq.Query) *Database {
	db := NewDatabase()
	universe := []string{"a", "b", "c"}
	for rel, arity := range q.RelationArities() {
		r := NewRelation(rel, attrNamesFor(arity)...)
		row := make([]string, arity)
		var fill func(p int)
		fill = func(p int) {
			if p == arity {
				r.Add(row...)
				return
			}
			for _, u := range universe {
				row[p] = u
				fill(p + 1)
			}
		}
		fill(0)
		db.MustAdd(r)
	}
	return db
}

func attrNamesFor(arity int) []string {
	out := make([]string, arity)
	for i := range out {
		out[i] = "a" + strings.Repeat("i", i+1)
	}
	return out
}
