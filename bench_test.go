package cqbound

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"cqbound/internal/coloring"
	"cqbound/internal/construct"
	"cqbound/internal/cq"
	"cqbound/internal/database"
	"cqbound/internal/datagen"
	"cqbound/internal/entropy"
	"cqbound/internal/eval"
	"cqbound/internal/experiments"
	"cqbound/internal/graph"
	"cqbound/internal/hornsat"
	"cqbound/internal/relation"
	"cqbound/internal/treewidth"
)

// One benchmark per experiment of the harness; each regenerates the
// corresponding paper artifact end to end (see DESIGN.md §3 for the
// experiment index and EXPERIMENTS.md for recorded results).

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		if failed := rep.Failed(); len(failed) > 0 {
			b.Fatalf("%s: %d rows diverge from the paper:\n%s", id, len(failed), rep)
		}
	}
}

func BenchmarkE01_Example2_1(b *testing.B)          { benchExperiment(b, "E1") }
func BenchmarkE02_ChaseExample(b *testing.B)        { benchExperiment(b, "E2") }
func BenchmarkE03_Triangle(b *testing.B)            { benchExperiment(b, "E3") }
func BenchmarkE04_SizeBoundNoFDs(b *testing.B)      { benchExperiment(b, "E4") }
func BenchmarkE05_SizeBoundSimpleFDs(b *testing.B)  { benchExperiment(b, "E5") }
func BenchmarkE06_JoinProjectPlan(b *testing.B)     { benchExperiment(b, "E6") }
func BenchmarkE07_GridBlowup(b *testing.B)          { benchExperiment(b, "E7") }
func BenchmarkE08_KeyedJoinTW(b *testing.B)         { benchExperiment(b, "E8") }
func BenchmarkE09_KeyedJoinChain(b *testing.B)      { benchExperiment(b, "E9") }
func BenchmarkE10_TWPreservationNoFDs(b *testing.B) { benchExperiment(b, "E10") }
func BenchmarkE11_TWPreservationFDs(b *testing.B)   { benchExperiment(b, "E11") }
func BenchmarkE12_SizePreservation(b *testing.B)    { benchExperiment(b, "E12") }
func BenchmarkE13_InformationDiagram(b *testing.B)  { benchExperiment(b, "E13") }
func BenchmarkE14_ShamirGap(b *testing.B)           { benchExperiment(b, "E14") }
func BenchmarkE15_EntropyLP(b *testing.B)           { benchExperiment(b, "E15") }
func BenchmarkE16_HornSATDecision(b *testing.B)     { benchExperiment(b, "E16") }
func BenchmarkE17_NPHardnessReduction(b *testing.B) { benchExperiment(b, "E17") }
func BenchmarkE18_PolyTimeColorNumber(b *testing.B) { benchExperiment(b, "E18") }
func BenchmarkE19_KnittedComplexity(b *testing.B)   { benchExperiment(b, "E19") }
func BenchmarkE20_ZhangYeung(b *testing.B)          { benchExperiment(b, "E20") }

// Ablations for the design choices DESIGN.md calls out.

// BenchmarkAblationLPBackend compares the exact rational simplex with the
// float64 simplex on the Proposition 6.9 entropy program of the triangle
// query.
func BenchmarkAblationLPBackend(b *testing.B) {
	q := cq.MustParse("S(X,Y,Z) <- R(X,Y), R(X,Z), R(Y,Z).")
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := entropy.SizeBoundExponent(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("float", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := entropy.SizeBoundExponentFloat(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationJoinStrategy compares the three evaluation strategies on
// the AGM-tight triangle witness.
func BenchmarkAblationJoinStrategy(b *testing.B) {
	q := cq.MustParse("S(X,Y,Z) <- R1(X,Y), R2(X,Z), R3(Y,Z).")
	_, col, err := coloring.NumberNoFDs(q)
	if err != nil {
		b.Fatal(err)
	}
	db, err := construct.ProductWitness(q, col, 12)
	if err != nil {
		b.Fatal(err)
	}
	run := func(name string, f func(*cq.Query, *database.Database) (int, error)) {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := f(q, db); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	run("naive", func(q *cq.Query, db *database.Database) (int, error) {
		out, _, err := eval.Naive(q, db)
		if err != nil {
			return 0, err
		}
		return out.Size(), nil
	})
	run("joinproject", func(q *cq.Query, db *database.Database) (int, error) {
		out, _, err := eval.JoinProject(q, db)
		if err != nil {
			return 0, err
		}
		return out.Size(), nil
	})
	run("genericjoin", func(q *cq.Query, db *database.Database) (int, error) {
		out, _, err := eval.GenericJoin(q, db)
		if err != nil {
			return 0, err
		}
		return out.Size(), nil
	})
}

// BenchmarkAblationAcyclicStrategy compares Yannakakis with the binary
// plans on a chain query full of dangling tuples — the workload where the
// semijoin passes pay off.
func BenchmarkAblationAcyclicStrategy(b *testing.B) {
	q := cq.MustParse("Q(X,W) <- R(X,Y), S(Y,Z), T(Z,W).")
	r := relation.New("R", "a", "b")
	s := relation.New("S", "a", "b")
	tt := relation.New("T", "a", "b")
	for i := 0; i < 400; i++ {
		r.Add(fmt.Sprintf("x%d", i), fmt.Sprintf("y%d", i%20))
		s.Add(fmt.Sprintf("y%d", i%40), fmt.Sprintf("z%d", i%40))
		tt.Add(fmt.Sprintf("zdangle%d", i), fmt.Sprintf("w%d", i))
	}
	tt.Add("z0", "w0")
	db := database.New()
	db.MustAdd(r)
	db.MustAdd(s)
	db.MustAdd(tt)
	b.Run("yannakakis", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := eval.Yannakakis(q, db); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("joinproject", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := eval.JoinProject(q, db); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := eval.Naive(q, db); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationJoinAlgorithm compares the hash equi-join with the
// sort-merge equi-join on a skewed instance.
func BenchmarkAblationJoinAlgorithm(b *testing.B) {
	r := relation.New("R", "a", "b")
	s := relation.New("S", "c", "d")
	for i := 0; i < 3000; i++ {
		r.Add(fmt.Sprintf("r%d", i), fmt.Sprintf("k%d", i%100))
		s.Add(fmt.Sprintf("k%d", i%500), fmt.Sprintf("s%d", i))
	}
	pairs := [][2]int{{1, 0}}
	b.Run("hash", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := relation.EquiJoin(r, s, pairs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sortmerge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := relation.EquiJoinSortMerge(r, s, pairs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationTreewidthHeuristic compares min-degree and min-fill
// elimination orderings on grids (true treewidth 6).
func BenchmarkAblationTreewidthHeuristic(b *testing.B) {
	g := graph.Grid(6, 10)
	b.Run("mindegree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			order := treewidth.MinDegreeOrder(g)
			d, err := treewidth.FromEliminationOrder(g, order)
			if err != nil {
				b.Fatal(err)
			}
			_ = d.Width()
		}
	})
	b.Run("minfill", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			order := treewidth.MinFillOrder(g)
			d, err := treewidth.FromEliminationOrder(g, order)
			if err != nil {
				b.Fatal(err)
			}
			_ = d.Width()
		}
	})
}

// Micro-benchmarks of the core algorithms.

func BenchmarkColorNumberPipeline(b *testing.B) {
	q := cq.MustParse("R0(X1) <- R1(X1,X2,X3), R2(X1,X4), R3(X5,X1).\nkey R1[1].\nkey R2[1].\nkey R3[1].")
	for i := 0; i < b.N; i++ {
		if _, _, _, err := coloring.NumberWithSimpleFDs(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHornSATDecision(b *testing.B) {
	q, _, err := construct.Shamir(4, 5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hornsat.DecideSizeIncrease(q)
	}
}

func BenchmarkExactTreewidthGrid4x4(b *testing.B) {
	g := graph.Grid(4, 4)
	for i := 0; i < b.N; i++ {
		if _, _, err := treewidth.Exact(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyze(b *testing.B) {
	for _, src := range []string{
		"S(X,Y,Z) <- R(X,Y), R(X,Z), R(Y,Z).",
		"Q(X,Z) <- R(X,Y), S(Y,Z).\nkey S[1].",
	} {
		q := cq.MustParse(src)
		b.Run(fmt.Sprintf("vars=%d", len(q.Variables())), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Analyze(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Benchmarks of the interned columnar substrate (PR 2): canonical join
// shapes end to end through the Engine, plus the parallel batch API. The
// recorded before/after planbench figures live in BENCH_pre_interning.json
// and BENCH_baseline.json.

func benchDB(relNames []string, edges, universe int) *Database {
	db := NewDatabase()
	for _, name := range relNames {
		r := NewRelation(name, "a", "b")
		for i := 0; i < edges; i++ {
			r.Add(fmt.Sprintf("u%d", (i*7)%universe), fmt.Sprintf("u%d", (i*13+1)%universe))
		}
		db.MustAdd(r)
	}
	return db
}

func benchEngineQuery(b *testing.B, text string, db *Database) {
	b.Helper()
	eng := NewEngine()
	q := MustParse(text)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.Evaluate(ctx, q, db); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineTriangle(b *testing.B) {
	benchEngineQuery(b, "Q(X,Y,Z) <- E(X,Y), E(Y,Z), E(X,Z).", benchDB([]string{"E"}, 400, 60))
}

func BenchmarkEngineStar(b *testing.B) {
	benchEngineQuery(b, "Q(X,Y,Z,W) <- E(X,Y), E(X,Z), E(X,W).", benchDB([]string{"E"}, 200, 40))
}

func BenchmarkEngineChain(b *testing.B) {
	benchEngineQuery(b, "Q(A,E) <- R(A,B), S(B,C), T(C,D), U(D,E).",
		benchDB([]string{"R", "S", "T", "U"}, 300, 50))
}

// BenchmarkEngineWorstCase evaluates the triangle query on its
// Proposition 4.5 AGM-tight witness database.
func BenchmarkEngineWorstCase(b *testing.B) {
	q := cq.MustParse("Q(X,Y,Z) <- R1(X,Y), R2(X,Z), R3(Y,Z).")
	_, col, err := coloring.NumberNoFDs(q)
	if err != nil {
		b.Fatal(err)
	}
	db, err := construct.ProductWitness(q, col, 14)
	if err != nil {
		b.Fatal(err)
	}
	benchEngineQuery(b, "Q(X,Y,Z) <- R1(X,Y), R2(X,Z), R3(Y,Z).", db)
}

// BenchmarkEngineEvaluateBatch measures the bounded-pool batch API against
// a mixed workload over one database.
func BenchmarkEngineEvaluateBatch(b *testing.B) {
	db := benchDB([]string{"R", "S", "T", "E"}, 300, 50)
	texts := []string{
		"Q(X,Z) <- R(X,Y), S(Y,Z).",
		"Q(X,Y,Z) <- E(X,Y), E(Y,Z), E(X,Z).",
		"Q(A,D) <- R(A,B), S(B,C), T(C,D).",
		"Q(X) <- R(X,X).",
	}
	var queries []*Query
	for i := 0; i < 32; i++ {
		queries = append(queries, MustParse(texts[i%len(texts)]))
	}
	eng := NewEngine()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, res := range eng.EvaluateBatch(ctx, queries, db) {
			if res.Err != nil {
				b.Fatal(res.Err)
			}
		}
	}
}

// BenchmarkRelationInsert measures the interned columnar insert path.
func BenchmarkRelationInsert(b *testing.B) {
	vals := make([]relation.Value, 2048)
	for i := range vals {
		vals[i] = relation.V(fmt.Sprintf("v%d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := relation.New("R", "a", "b", "c")
		for j := 0; j < 1024; j++ {
			r.MustInsert(vals[j%2048], vals[(j*31)%2048], vals[(j*17)%2048])
		}
	}
}

// BenchmarkSemijoinIndexed measures the index-backed semijoin on the
// dangling-tuple workload Yannakakis cares about.
func BenchmarkSemijoinIndexed(b *testing.B) {
	r := relation.New("R", "a", "b")
	s := relation.New("S", "b", "c")
	for i := 0; i < 5000; i++ {
		r.Add(fmt.Sprintf("x%d", i), fmt.Sprintf("y%d", i%50))
		s.Add(fmt.Sprintf("y%d", i%200), fmt.Sprintf("z%d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := relation.Semijoin(r, s); err != nil {
			b.Fatal(err)
		}
	}
}

// Benchmarks of the sharded execution layer (PR 3): the same scaled
// workloads through a plain Engine and a WithSharding Engine. On a
// single-core runner the sharded gain is cache locality (P small hash and
// dedup maps instead of one large one); with more cores the per-shard work
// additionally fans out over the pool. BENCH_sharded.json records the
// cqbench -shardbench sweep of the same comparison.

func benchScaledStarDB() *Database {
	return datagen.EdgeDB(rand.New(rand.NewSource(12)), []string{"E"}, 2000, 130)
}

func benchScaledChainDB() *Database {
	return datagen.EdgeDB(rand.New(rand.NewSource(13)), []string{"R", "S", "T", "U"}, 6000, 1200)
}

func benchEngineWith(b *testing.B, eng *Engine, text string, db *Database) {
	b.Helper()
	q := MustParse(text)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.Evaluate(ctx, q, db); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineStarScaled(b *testing.B) {
	benchEngineWith(b, NewEngine(), "Q(X,Y,Z,W) <- E(X,Y), E(X,Z), E(X,W).", benchScaledStarDB())
}

func BenchmarkEngineStarScaledSharded(b *testing.B) {
	benchEngineWith(b, NewEngine(WithSharding(1024, 16)),
		"Q(X,Y,Z,W) <- E(X,Y), E(X,Z), E(X,W).", benchScaledStarDB())
}

func BenchmarkEngineChainScaled(b *testing.B) {
	benchEngineWith(b, NewEngine(), "Q(A,E) <- R(A,B), S(B,C), T(C,D), U(D,E).", benchScaledChainDB())
}

func BenchmarkEngineChainScaledSharded(b *testing.B) {
	benchEngineWith(b, NewEngine(WithSharding(1024, 16)),
		"Q(A,E) <- R(A,B), S(B,C), T(C,D), U(D,E).", benchScaledChainDB())
}

// Benchmarks of the streamed execution layer (PR 6). Streaming is the
// Engine default, so the sharded benchmarks above already measure the
// column-batch pipelines; these mirror them with the materialized
// executors (WithMaterializedExec) so the pair isolates what streaming
// costs or saves on wall-clock, and sweep the batch size on the chain.
// BENCH_stream.json records the cqbench -streambench sweep of the same
// comparison with peak-resident-bytes accounting.

func BenchmarkEngineStarScaledShardedMaterialized(b *testing.B) {
	benchEngineWith(b, NewEngine(WithSharding(1024, 16), WithMaterializedExec()),
		"Q(X,Y,Z,W) <- E(X,Y), E(X,Z), E(X,W).", benchScaledStarDB())
}

func BenchmarkEngineChainScaledShardedMaterialized(b *testing.B) {
	benchEngineWith(b, NewEngine(WithSharding(1024, 16), WithMaterializedExec()),
		"Q(A,E) <- R(A,B), S(B,C), T(C,D), U(D,E).", benchScaledChainDB())
}

func BenchmarkEngineChainScaledStreamedBatchSize(b *testing.B) {
	db := benchScaledChainDB()
	for _, bs := range []int{64, 1024, 8192} {
		b.Run(fmt.Sprintf("batch=%d", bs), func(b *testing.B) {
			benchEngineWith(b, NewEngine(WithSharding(1024, 16), WithBatchSize(bs)),
				"Q(A,E) <- R(A,B), S(B,C), T(C,D), U(D,E).", db)
		})
	}
}
