package cqbound

import (
	"math/big"
	"testing"
)

func TestPublicAPIQuickstart(t *testing.T) {
	q, err := Parse("S(X,Y,Z) <- R(X,Y), R(X,Z), R(Y,Z).")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if a.ColorNumber.Cmp(big.NewRat(3, 2)) != 0 {
		t.Fatalf("C = %v", a.ColorNumber)
	}
	c, col, err := ColorNumber(q)
	if err != nil {
		t.Fatal(err)
	}
	if c.Cmp(a.ColorNumber) != 0 {
		t.Fatalf("ColorNumber = %v", c)
	}
	if err := ValidateColoring(q, col); err != nil {
		t.Fatal(err)
	}
	n, err := ColorNumberOf(q, col)
	if err != nil || n.Cmp(c) != 0 {
		t.Fatalf("ColorNumberOf = %v (%v)", n, err)
	}
	rho, err := FractionalEdgeCover(q)
	if err != nil || rho.Cmp(big.NewRat(3, 2)) != 0 {
		t.Fatalf("rho* = %v (%v)", rho, err)
	}
	s, err := SizeBoundExponent(q)
	if err != nil || s.Cmp(big.NewRat(3, 2)) != 0 {
		t.Fatalf("s(Q) = %v (%v)", s, err)
	}
	if !SizeIncreasePossible(q) {
		t.Fatal("triangle grows")
	}
}

func TestPublicAPIEvaluation(t *testing.T) {
	q := MustParse("Q(X,Z) <- R(X,Y), S(Y,Z).")
	db := NewDatabase()
	r := NewRelation("R", "a", "b")
	r.Add("x", "y")
	s := NewRelation("S", "a", "b")
	s.Add("y", "z")
	db.MustAdd(r)
	db.MustAdd(s)
	out, err := Evaluate(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 1 {
		t.Fatalf("|Q(D)| = %d", out.Size())
	}
	gj, _, err := EvaluateGenericJoin(q, db)
	if err != nil || gj.Size() != 1 {
		t.Fatalf("generic join: %v %v", gj, err)
	}
}

func TestPublicAPIWitnessAndChase(t *testing.T) {
	q := MustParse("Q(X,Z) <- R(X,Y), S(Y,Z).\nkey S[1].")
	ch := Chase(q)
	if len(ch.Body) != 2 {
		t.Fatalf("chase body = %v", ch.Body)
	}
	_, col, err := ColorNumber(q)
	if err != nil {
		t.Fatal(err)
	}
	db, err := WitnessDatabase(ch, col, 3)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Evaluate(q, db)
	if err != nil {
		t.Fatal(err)
	}
	rmax, err := db.RMax(q)
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() > rmax {
		t.Fatalf("keyed chain must not grow: %d > %d", out.Size(), rmax)
	}
}

func TestPublicAPITreewidth(t *testing.T) {
	q := MustParse("R2(X,Y,Z) <- R(X,Y), R(X,Z).")
	col, ok := TwoColoringExists(q)
	if !ok || col == nil {
		t.Fatal("expected blowup coloring")
	}
	a, err := Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if a.Treewidth != TWUnbounded {
		t.Fatalf("verdict = %v", a.Treewidth)
	}
	db := NewDatabase()
	r := NewRelation("R", "a", "b")
	r.Add("1", "2")
	r.Add("2", "3")
	db.MustAdd(r)
	g := GaifmanGraph(db)
	lo, hi, exact, err := Treewidth(g)
	if err != nil {
		t.Fatal(err)
	}
	if !exact || lo != 1 || hi != 1 {
		t.Fatalf("treewidth = [%d,%d] exact=%v", lo, hi, exact)
	}
}
