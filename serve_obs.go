package cqbound

// Serving-path observability (ARCHITECTURE §12): request correlation,
// rolling-window SLO metrics, Prometheus text exposition, runtime
// introspection endpoints, and bound-calibration telemetry. Everything
// here hangs off Server.obs; a server built WithoutObservability leaves
// it nil and every call below degrades to a nil check.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"cqbound/internal/obs"
)

// serverObs is the Server's observability state: the injectable clock,
// the rolling windows, the in-flight registry, the calibration recorder,
// and the optional sampled access log.
type serverObs struct {
	clock    obs.Clock
	windows  *obs.Windows
	inflight *obs.Inflight
	calib    *obs.Calibration
	access   *obs.AccessLog
}

// newServerObs builds the obs state over the given clock (nil = wall
// clock).
func newServerObs(clock obs.Clock, accessW io.Writer, accessEvery int) *serverObs {
	if clock == nil {
		clock = time.Now
	}
	return &serverObs{
		clock:    clock,
		windows:  obs.NewWindows(clock),
		inflight: obs.NewInflight(),
		calib:    obs.NewCalibration(),
		access:   obs.NewAccessLog(accessW, accessEvery),
	}
}

// WithAccessLog enables the sampled JSON access log: every non-200 and
// every clamped request is always logged, plain successes one-in-every.
func WithAccessLog(w io.Writer, every int) ServerOption {
	return func(c *serverConfig) {
		c.accessW, c.accessEvery = w, every
	}
}

// WithoutObservability disables the serving-path observability layer:
// no correlation IDs, windows, calibration, access log or /debug
// endpoints. /metrics (JSON and Prometheus) still serves the engine
// registry. Exists for overhead measurement (cqload -obsbench) and for
// embedders that bring their own middleware.
func WithoutObservability() ServerOption {
	return func(c *serverConfig) { c.noObs = true }
}

// withObsClock injects a fake clock for window tests.
func withObsClock(clock obs.Clock) ServerOption {
	return func(c *serverConfig) { c.obsClock = clock }
}

// statusRecorder captures the response status and body size for the
// windows and the access log.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusRecorder) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusRecorder) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// serveObserved is the correlation middleware: resolve or mint the
// request ID, echo it on the response, register the request in the
// in-flight table, attach its state to the context, and on the way out
// feed the windows and the access log.
func (s *Server) serveObserved(w http.ResponseWriter, r *http.Request) {
	o := s.obs
	start := o.clock()
	id := obs.IDFromHeaders(r.Header)
	if id == "" {
		id = obs.NewID()
	}
	rs := obs.NewRequestState(id, r.Method, r.URL.Path, start)
	h := o.inflight.Register(rs)
	defer o.inflight.Done(h)
	w.Header().Set(obs.HeaderRequestID, id)
	rec := &statusRecorder{ResponseWriter: w}
	o.windows.Requests.Add(1)
	s.mux.ServeHTTP(rec, r.WithContext(obs.WithRequest(r.Context(), rs)))
	if rec.status == 0 {
		rec.status = http.StatusOK
	}
	latency := o.clock().Sub(start)
	o.windows.Latency.Observe(latency.Nanoseconds())
	if rec.status == http.StatusTooManyRequests {
		o.windows.Shed.Add(1)
	}
	if rs.Clamped() {
		o.windows.Clamped.Add(1)
	}
	o.access.Log(rs.AccessRecord(rec.status, rec.bytes, latency))
}

// retryAfterSeconds derives the Retry-After hint for a 429: the time the
// current admission queue needs to drain at the windowed grant rate. The
// +1 counts the rejected request itself. Falls back to 1s when
// observability is off (no drain-rate window to consult).
func (s *Server) retryAfterSeconds() int {
	if s.obs == nil {
		return 1
	}
	return obs.RetryAfterSeconds(
		s.admit.Stats().Waiting+1,
		s.obs.windows.Grants.Rate(time.Minute),
	)
}

// shapeOf coarsely classifies a query for calibration cells: body atom
// count and distinct variable count. Fine enough to separate chains from
// triangles from stars in the benchmark mixes, coarse enough that cells
// accumulate meaningful counts.
func shapeOf(q *Query) string {
	vars := make(map[string]struct{})
	for _, a := range q.Body {
		for _, v := range a.Vars {
			vars[string(v)] = struct{}{}
		}
	}
	return fmt.Sprintf("atoms=%d/vars=%d", len(q.Body), len(vars))
}

// recordCalibration feeds one evaluation's predicted-versus-actual rows
// into the calibration telemetry.
func (s *Server) recordCalibration(strategy, shape string, bound, estimate float64, actualRows int) {
	if s.obs == nil {
		return
	}
	s.obs.calib.Record(strategy, shape, bound, estimate, float64(actualRows))
}

// ObsStats is the serving-path observability counter family, reset by
// Server.ResetStats. InflightNow is a gauge (current depth, not a
// counter) — the reset test exempts it.
type ObsStats struct {
	Requests           int64 // requests through the middleware
	Shed               int64 // 429 responses
	Clamped            int64 // admission charges clamped to capacity
	Grants             int64 // admission grants (drain-rate numerator)
	CacheHits          int64 // result-cache hits
	CacheMisses        int64 // result-cache misses
	LatencySamples     int64 // latency observations
	QueueWaitSamples   int64 // queue-wait observations
	CalibrationRecords int64 // calibration evaluations recorded
	AccessLogged       int64 // access-log lines written
	AccessDropped      int64 // access-log lines sampled away
	InflightNow        int64 // requests in flight right now (gauge)
}

// ObsStats snapshots the observability counters (zeroes when the server
// was built WithoutObservability).
func (s *Server) ObsStats() ObsStats {
	o := s.obs
	if o == nil {
		return ObsStats{}
	}
	return ObsStats{
		Requests:           o.windows.Requests.Total(),
		Shed:               o.windows.Shed.Total(),
		Clamped:            o.windows.Clamped.Total(),
		Grants:             o.windows.Grants.Total(),
		CacheHits:          o.windows.CacheHits.Total(),
		CacheMisses:        o.windows.CacheMisses.Total(),
		LatencySamples:     o.windows.Latency.TotalCount(),
		QueueWaitSamples:   o.windows.QueueWait.TotalCount(),
		CalibrationRecords: o.calib.Records(),
		AccessLogged:       o.access.Logged(),
		AccessDropped:      o.access.Dropped(),
		InflightNow:        int64(o.inflight.Len()),
	}
}

// ResetStats zeroes the serving-path observability counters: the rolling
// windows, the calibration cells, and the access-log counters. The
// engine's own families reset through Engine.ResetStats; the two compose
// for a clean measurement interval.
func (s *Server) ResetStats() {
	o := s.obs
	if o == nil {
		return
	}
	o.windows.Reset()
	o.calib.Reset()
	o.access.Reset()
}

// registerObsRoutes adds the introspection endpoints. /healthz and
// /readyz are registered unconditionally (they answer off server state,
// not obs state); the /debug and /calibration endpoints need s.obs.
func (s *Server) registerObsRoutes(mux *http.ServeMux) {
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	if s.obs == nil {
		return
	}
	mux.HandleFunc("/debug/requests", s.handleDebugRequests)
	mux.HandleFunc("/calibration", s.handleCalibration)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// handleHealthz reports liveness: the process is up and serving.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte("ok\n"))
}

// handleReadyz reports readiness: 503 once Close has run (snapshot
// sessions drained, no new pins accepted), 200 otherwise.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	s.snapMu.Lock()
	closed := s.closed
	s.snapMu.Unlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if closed {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("closing\n"))
		return
	}
	w.Write([]byte("ready\n"))
}

// handleDebugRequests lists the requests in flight right now: request ID,
// lifecycle state, elapsed time, pinned epoch, bound charge, queue
// position.
func (s *Server) handleDebugRequests(w http.ResponseWriter, _ *http.Request) {
	views := s.obs.inflight.Snapshot(s.obs.clock())
	if views == nil {
		views = []obs.RequestView{}
	}
	s.reply(w, http.StatusOK, map[string]any{
		"inflight": len(views),
		"requests": views,
	})
}

// handleCalibration serves the bound-calibration telemetry: per
// (strategy, shape), the log₂-ratio error distributions of the paper's
// worst-case bound and the System-R estimate against actual output rows.
func (s *Server) handleCalibration(w http.ResponseWriter, _ *http.Request) {
	cells := s.obs.calib.Snapshot()
	if cells == nil {
		cells = []obs.CellSnapshot{}
	}
	s.reply(w, http.StatusOK, map[string]any{
		"records": s.obs.calib.Records(),
		"cells":   cells,
	})
}

// handleMetrics serves the metric registry: expvar-shaped JSON by
// default, Prometheus text exposition with ?format=prom.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.FormValue("format") != "prom" {
		s.e.Metrics().ServeHTTP(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.WriteProm(w, s.promFamilies())
}

// counterSuffixes classifies registry names for the Prometheus TYPE
// line: cumulative families (never decreasing between resets) render as
// counters, point-in-time values as gauges. The registry itself does not
// distinguish — everything is a sampled callback — so classification is
// by the naming convention the engine families follow.
var counterSuffixes = []string{
	"_hits", "_misses", "_admitted", "_rejected", "_queued", "_timeouts",
	"_invalidations", "_evictions", "_reloads", "_requests", "_errors",
	"_splits", "_spills", "_commits", "_aborts", "_retired", "_total",
}

func promTypeFor(name string) obs.MetricType {
	for _, suf := range counterSuffixes {
		if strings.HasSuffix(name, suf) {
			return obs.TypeCounter
		}
	}
	return obs.TypeGauge
}

// promWindows is the pair of rolling windows the exposition renders.
var promWindows = []time.Duration{time.Minute, 5 * time.Minute}

// promFamilies assembles the full Prometheus exposition: every registry
// gauge and histogram, the rolling-window serve families (labeled by
// window), the in-flight gauge, and the calibration histograms (labeled
// by strategy and query shape).
func (s *Server) promFamilies() []obs.Family {
	reg := s.e.Metrics()
	var fams []obs.Family
	for _, name := range reg.Names() {
		if v, ok := reg.GaugeValue(name); ok {
			fams = append(fams, obs.Family{
				Name: obs.SanitizeName(name),
				Help: "engine registry metric " + name,
				Type: promTypeFor(name),
				Samples: []obs.Sample{
					{Value: float64(v)},
				},
			})
			continue
		}
		if h := reg.Histogram(name); h != nil {
			buckets, sum, count := h.Buckets()
			fams = append(fams, obs.Family{
				Name:    obs.SanitizeName(name),
				Help:    "engine registry histogram " + name,
				Type:    obs.TypeHistogram,
				Samples: []obs.Sample{{Hist: obs.Pow2Hist(buckets, sum, count)}},
			})
		}
	}
	if s.obs == nil {
		return fams
	}
	snaps := make([]obs.WindowSnapshot, len(promWindows))
	for i, d := range promWindows {
		snaps[i] = s.obs.windows.Snapshot(d)
	}
	gauge := func(name, help string, pick func(obs.WindowSnapshot) float64) obs.Family {
		f := obs.Family{Name: name, Help: help, Type: obs.TypeGauge}
		for _, sn := range snaps {
			f.Samples = append(f.Samples, obs.Sample{
				Labels: []obs.Label{{Name: "window", Value: sn.Window}},
				Value:  pick(sn),
			})
		}
		return f
	}
	fams = append(fams,
		gauge("serve_window_request_rate", "requests per second over the rolling window",
			func(sn obs.WindowSnapshot) float64 { return sn.RequestRate }),
		gauge("serve_window_shed_rate", "429 sheds per second over the rolling window",
			func(sn obs.WindowSnapshot) float64 { return sn.ShedRate }),
		gauge("serve_window_cache_hit_ratio", "result-cache hit ratio over the rolling window",
			func(sn obs.WindowSnapshot) float64 { return sn.CacheHitRatio }),
	)
	summary := func(name, help string, sampler *obs.Sampler) obs.Family {
		f := obs.Family{Name: name, Help: help, Type: obs.TypeSummary}
		for i, d := range promWindows {
			dist := sampler.Window(d)
			f.Samples = append(f.Samples, obs.Sample{
				Labels: []obs.Label{{Name: "window", Value: snaps[i].Window}},
				Quantiles: []obs.Quantile{
					{Q: 0.5, Value: float64(dist.P50)},
					{Q: 0.99, Value: float64(dist.P99)},
				},
				Sum:   float64(dist.Sum),
				Count: dist.Count,
			})
		}
		return f
	}
	fams = append(fams,
		summary("serve_window_latency_ns", "request latency over the rolling window", s.obs.windows.Latency),
		summary("serve_window_queue_wait_ns", "admission queue wait over the rolling window", s.obs.windows.QueueWait),
		obs.Family{
			Name: "serve_inflight", Help: "requests in flight right now", Type: obs.TypeGauge,
			Samples: []obs.Sample{{Value: float64(s.obs.inflight.Len())}},
		},
	)
	return append(fams, s.obs.calib.PromFamilies()...)
}

// registerObsMetrics adds the observability families to the engine's
// registry so the JSON /metrics view and MetricsSnapshot carry them too.
func (s *Server) registerObsMetrics() {
	o := s.obs
	if o == nil {
		return
	}
	reg := s.e.Metrics()
	reg.Gauge("serve_inflight", func() int64 { return int64(o.inflight.Len()) })
	reg.Gauge("serve_shed", o.windows.Shed.Total)
	reg.Gauge("serve_clamped", o.windows.Clamped.Total)
	reg.Gauge("serve_grants", o.windows.Grants.Total)
	reg.Gauge("serve_requests_1m", func() int64 { return o.windows.Requests.Sum(time.Minute) })
	reg.Gauge("serve_shed_1m", func() int64 { return o.windows.Shed.Sum(time.Minute) })
	reg.Gauge("serve_latency_p99_ns_1m", func() int64 { return o.windows.Latency.Window(time.Minute).P99 })
	reg.Gauge("serve_queue_wait_p99_ns_1m", func() int64 { return o.windows.QueueWait.Window(time.Minute).P99 })
	reg.Gauge("serve_access_logged", o.access.Logged)
	reg.Gauge("serve_access_dropped", o.access.Dropped)
	reg.Gauge("calibration_records", o.calib.Records)
	reg.Gauge("calibration_cells", func() int64 { return int64(o.calib.Cells()) })
}

// WindowSnapshots returns the rolling 1m and 5m serving-path snapshots —
// the programmatic form of the serve_window_* exposition (zeroes when
// observability is off).
func (s *Server) WindowSnapshots() []obs.WindowSnapshot {
	if s.obs == nil {
		return nil
	}
	out := make([]obs.WindowSnapshot, len(promWindows))
	for i, d := range promWindows {
		out[i] = s.obs.windows.Snapshot(d)
	}
	return out
}

// CalibrationJSON renders the /calibration payload (tests and embedders).
func (s *Server) CalibrationJSON() ([]byte, error) {
	if s.obs == nil {
		return []byte("{}"), nil
	}
	return json.Marshal(map[string]any{
		"records": s.obs.calib.Records(),
		"cells":   s.obs.calib.Snapshot(),
	})
}
