// Command quickstart parses a conjunctive query, computes every bound the
// paper provides, lets the engine plan and evaluate it on a small database,
// and checks the size bound against the measured output.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"cqbound"
)

func main() {
	ctx := context.Background()
	eng := cqbound.NewEngine()

	// The triangle query of Example 3.3.
	q, err := cqbound.Parse(`
		# all triangles
		T(X,Y,Z) <- E(X,Y), E(Y,Z), E(X,Z).
	`)
	if err != nil {
		log.Fatal(err)
	}

	a, err := eng.Analyze(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== analysis ===")
	fmt.Print(a.Summary())

	p, err := eng.Explain(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== plan ===")
	fmt.Println(p)

	// Evaluate on a small edge relation (K4 oriented by name order).
	db := cqbound.NewDatabase()
	e := cqbound.NewRelation("E", "src", "dst")
	for _, ed := range [][2]string{
		{"a", "b"}, {"b", "c"}, {"a", "c"},
		{"b", "d"}, {"a", "d"}, {"c", "d"},
	} {
		e.Add(ed[0], ed[1])
	}
	db.MustAdd(e)

	out, _, err := eng.Evaluate(ctx, q, db)
	if err != nil {
		log.Fatal(err)
	}
	rmax, err := db.RMax(q)
	if err != nil {
		log.Fatal(err)
	}
	bound, err := a.SizeBound(rmax)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== evaluation ===")
	fmt.Printf("database: |E| = %d, rmax = %d\n", e.Size(), rmax)
	fmt.Printf("|Q(D)| = %d  (bound rmax^C = %.1f)\n", out.Size(), bound)
	if float64(out.Size()) > bound+1e-9 {
		log.Fatal("bound violated — this would be a bug")
	}

	// The AGM worst case is achievable: build the Proposition 4.5 witness.
	_, col, err := cqbound.ColorNumber(q)
	if err != nil {
		log.Fatal(err)
	}
	witness, err := cqbound.WitnessDatabase(cqbound.Chase(q), col, 4)
	if err != nil {
		log.Fatal(err)
	}
	wOut, _, err := eng.Evaluate(ctx, q, witness)
	if err != nil {
		log.Fatal(err)
	}
	wMax, err := witness.RMax(q)
	if err != nil {
		log.Fatal(err)
	}
	// Proposition 4.1 states the tightness with a rep(Q) slack on rmax:
	// |Q(D)| = N^C with rmax <= rep(Q)·N. Measure the exponent against N.
	n := wMax / q.Rep()
	exponent := math.Log(float64(wOut.Size())) / math.Log(float64(n))
	fmt.Println("=== worst-case witness (Prop 4.5) ===")
	fmt.Printf("rmax = %d = rep(Q)·%d, |Q(D)| = %d = %d^%.3f  (C = %s)\n",
		wMax, n, wOut.Size(), n, exponent, a.ColorNumber.RatString())
}
