// Command secretshare runs the Proposition 6.11 construction end to end:
// a query whose color number
// stays below 2 while its true worst-case size increase is rmax^(k/2) —
// the super-constant gap between the coloring lower bound and reality,
// built from Shamir secret sharing over GF(N). The example also prints the
// Figure 3 information diagram measured from the actual database.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"cqbound"
	"cqbound/internal/construct"
	"cqbound/internal/entropy"
)

func main() {
	const k = 4
	const n = 5
	q, db, err := construct.Shamir(k, n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Proposition 6.11 instance: k = %d, N = %d\n", k, n)
	fmt.Printf("query: %d variables, %d atoms, %d functional dependencies\n",
		len(q.Variables()), len(q.Body), len(q.FDs))

	if err := db.CheckFDs(q); err != nil {
		log.Fatal(err)
	}
	fmt.Println("database satisfies every declared dependency")

	rmax, err := db.RMax(q)
	if err != nil {
		log.Fatal(err)
	}
	eng := cqbound.NewEngine()
	out, _, err := eng.Evaluate(context.Background(), q, db)
	if err != nil {
		log.Fatal(err)
	}
	exponent := math.Log(float64(out.Size())) / math.Log(float64(rmax))
	fmt.Printf("rmax = %d, |Q(D)| = %d = rmax^%.2f (paper: exponent k/2 = %d)\n",
		rmax, out.Size(), exponent, k/2)

	c, _, err := cqbound.ColorNumber(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("C(chase(Q)) = %s — the coloring bound cannot see past 2 (it is\n", c.RatString())
	fmt.Println("exactly 2k/(k+2) here), so the gap to the true exponent grows with k.")

	// Figure 3: the measured information diagram of one share group.
	v, err := entropy.Empirical(db.Relation("R1"))
	if err != nil {
		log.Fatal(err)
	}
	logN := math.Log2(float64(n))
	atoms := v.Atoms()
	fmt.Println("\nFigure 3 — I-measure of X1..X4 (units of log N):")
	for s := entropy.Set(1); s <= v.Full(); s++ {
		val := atoms[s] / logN
		if math.Abs(val) < 1e-9 {
			continue
		}
		fmt.Printf("  atom %v: %+.0f\n", s.Members(), val)
	}
	fmt.Println("any two variables carry all the entropy; the 4-way interaction is -2.")
}
