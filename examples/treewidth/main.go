// Command treewidth demonstrates treewidth-preserving views (Section 5):
// many NP-hard analyses run in
// linear time on bounded-treewidth data (Courcelle's theorem), but the
// analysis is often issued against a *view* defined by a conjunctive query.
// This example decides which views keep a tree-shaped database
// tree-like, and materializes the paper's blowup witness for one that does
// not.
package main

import (
	"context"
	"fmt"
	"log"

	"cqbound"
)

func main() {
	eng := cqbound.NewEngine()
	views := []struct {
		name string
		text string
	}{
		{"parent-child pairs", "V(X,Y) <- Edge(X,Y)."},
		{"grandparents", "V(X,Z) <- Edge(X,Y), Edge(Y,Z)."},
		{"grandparents, keyed edges", "V(X,Z) <- Edge(X,Y), Edge(Y,Z).\nkey Edge[1]."},
		{"siblings", "V(Y,Z) <- Edge(X,Y), Edge(X,Z)."},
	}
	for _, v := range views {
		q := cqbound.MustParse(v.text)
		a, err := eng.Analyze(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s treewidth of view: %s\n", v.name, a.Treewidth)
	}

	// The sibling view destroys treewidth: a star (treewidth 1) maps to a
	// clique. Build the Proposition 5.9 witness and measure both sides.
	fmt.Println("\nblowup witness for the sibling view:")
	q := cqbound.MustParse("V(Y,Z) <- Edge(X,Y), Edge(X,Z).")
	col, ok := cqbound.TwoColoringExists(q)
	if !ok {
		log.Fatal("expected a 2-coloring with color number 2")
	}
	const m = 8
	db, err := cqbound.WitnessDatabase(q, col, m)
	if err != nil {
		log.Fatal(err)
	}
	gin := cqbound.GaifmanGraph(db)
	lo, hi, _, err := cqbound.Treewidth(gin)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("input:  %d vertices, treewidth in [%d, %d]\n", gin.N(), lo, hi)

	out, _, err := eng.Evaluate(context.Background(), q, db)
	if err != nil {
		log.Fatal(err)
	}
	outDB := cqbound.NewDatabase()
	outDB.MustAdd(out)
	gout := cqbound.GaifmanGraph(outDB)
	lo2, hi2, _, err := cqbound.Treewidth(gout)
	if err != nil {
		log.Fatal(err)
	}
	// Edge appears twice in the body, so the witness relation holds both
	// color classes and the view output is a clique on all 2M values.
	fmt.Printf("output: %d vertices, treewidth in [%d, %d] (K_%d appears)\n",
		gout.N(), lo2, hi2, 2*m)
	fmt.Println("\nconclusion: run Courcelle-style algorithms on the base data or a keyed view,")
	fmt.Println("never on the sibling view.")
}
