// Command dataexchange demonstrates data exchange (the Section 1
// motivation): schema mappings are specified as
// conjunctive queries from a source schema to a target schema, and the size
// bounds of Theorem 4.4 estimate how much data must be materialized at the
// target before any data is copied. Mappings whose color number exceeds 1
// can blow up; key constraints on the source often tame them.
package main

import (
	"context"
	"fmt"
	"log"

	"cqbound"
)

// mapping is one target relation defined by a conjunctive query over the
// source schema.
type mapping struct {
	name string
	text string
}

func main() {
	// Source schema: Emp(emp, dept), Dept(dept, mgr), Proj(proj, dept).
	// The dept column is a key of Dept.
	mappings := []mapping{
		{
			"TargetEmpMgr: join employees with their managers (keyed)",
			"EmpMgr(E,M) <- Emp(E,D), Dept(D,M).\nkey Dept[1].",
		},
		{
			"TargetEmpProj: all employee-project pairs in a department",
			"EmpProj(E,P) <- Emp(E,D), Proj(P,D).",
		},
		{
			"TargetTriangle: employees whose depts share a manager (no keys)",
			"Pairs(E1,E2,M) <- Emp(E1,D1), Emp(E2,D2), Dept(D1,M), Dept(D2,M).",
		},
	}

	eng := cqbound.NewEngine()
	const sourceSize = 10_000 // tuples per source relation
	fmt.Printf("materialization estimates for source relations of %d tuples:\n\n", sourceSize)
	for _, m := range mappings {
		q, err := cqbound.Parse(m.text)
		if err != nil {
			log.Fatalf("%s: %v", m.name, err)
		}
		a, err := eng.Analyze(q)
		if err != nil {
			log.Fatalf("%s: %v", m.name, err)
		}
		bound, err := a.SizeBound(sourceSize)
		if err != nil {
			log.Fatalf("%s: %v", m.name, err)
		}
		verdict := "safe to materialize eagerly"
		if a.SizeIncreasePossible {
			verdict = "may exceed the source size — budget accordingly"
		}
		fmt.Printf("%s\n", m.name)
		fmt.Printf("  C(chase(Q)) = %s  =>  |target| <= %.3g tuples\n",
			a.ColorNumber.RatString(), bound)
		fmt.Printf("  size increase possible: %v (%s)\n\n", a.SizeIncreasePossible, verdict)
	}

	// Demonstrate on real data that the keyed mapping stays flat while the
	// unkeyed one grows: the Proposition 4.5 witness for the unkeyed pair
	// mapping.
	q := cqbound.MustParse(mappings[2].text)
	_, col, err := cqbound.ColorNumber(q)
	if err != nil {
		log.Fatal(err)
	}
	db, err := cqbound.WitnessDatabase(cqbound.Chase(q), col, 20)
	if err != nil {
		log.Fatal(err)
	}
	out, _, err := eng.Evaluate(context.Background(), q, db)
	if err != nil {
		log.Fatal(err)
	}
	rmax, err := db.RMax(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("worst-case check for the last mapping: source rmax = %d, target = %d tuples\n",
		rmax, out.Size())
}
