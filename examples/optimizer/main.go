// Command optimizer demonstrates query admission control (the Section 1
// motivation): a multi-user DBMS wants
// to reject queries whose worst-case output could be disruptive before
// running them. Selectivity estimates set to 1 give the trivial r^k bound;
// the color number gives the exact worst-case exponent, letting far more
// queries through. The example also compares evaluation strategies on an
// admitted query.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"cqbound"
)

func main() {
	ctx := context.Background()
	eng := cqbound.NewEngine()
	const (
		relationSize = 1_000_000
		budget       = 1e12 // tuples the system tolerates
	)
	queries := []struct {
		name string
		text string
	}{
		{"lookup join (keyed)", "Q(O,C,N) <- Orders(O,C), Customer(C,N).\nkey Customer[1]."},
		{"triangle listing", "Q(X,Y,Z) <- F(X,Y), F(Y,Z), F(X,Z)."},
		{"4-cycle listing", "Q(A,B,C,D) <- F(A,B), F(B,C), F(C,D), F(D,A)."},
		{"unconstrained star", "Q(X,Y,Z,W) <- F(X,Y), F(X,Z), F(X,W)."},
	}
	fmt.Printf("admission control at |R| = %.0e, budget %.0e output tuples\n\n",
		float64(relationSize), budget)
	for _, e := range queries {
		q := cqbound.MustParse(e.text)
		a, err := eng.Analyze(q)
		if err != nil {
			log.Fatal(err)
		}
		// Trivial bound: r^k with k the output arity.
		trivial := math.Pow(relationSize, float64(len(q.Head.Vars)))
		tight, err := a.SizeBound(relationSize)
		if err != nil {
			log.Fatal(err)
		}
		decision := "ADMIT"
		if tight > budget {
			decision = "REJECT"
		}
		fmt.Printf("%-22s C=%-4s trivial r^k = %8.1e   tight r^C = %8.1e   -> %s\n",
			e.name, a.ColorNumber.RatString(), trivial, tight, decision)
	}

	// For an admitted query, let the engine pick the plan and explain it.
	fmt.Println("\nplanned evaluation on an adversarial triangle instance:")
	q := cqbound.MustParse("Q(X,Y,Z) <- F1(X,Y), F2(Y,Z), F3(X,Z).")
	p, err := eng.Explain(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(p)
	_, col, err := cqbound.ColorNumber(q)
	if err != nil {
		log.Fatal(err)
	}
	db, err := cqbound.WitnessDatabase(q, col, 10)
	if err != nil {
		log.Fatal(err)
	}
	out, stats, err := eng.Evaluate(ctx, q, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planned (%s): output %d tuples, max intermediate %d, %d join steps\n",
		p.Strategy, out.Size(), stats.MaxIntermediate, stats.Joins)

	// Compare against the worst-case optimal baseline explicitly.
	gout, gstats, err := eng.EvaluateStrategy(ctx, cqbound.StrategyGenericJoin, q, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generic join: output %d tuples, max intermediate %d, %d extension steps\n",
		gout.Size(), gstats.MaxIntermediate, gstats.Joins)
}
