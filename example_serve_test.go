package cqbound_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"

	"cqbound"
)

// ExampleNewServer serves an Engine over HTTP: data arrives through
// POST /commit, queries evaluate through GET /query (behind bound-based
// admission control), and a repeated query on an unchanged epoch comes
// back from the result cache.
func ExampleNewServer() {
	eng := cqbound.NewEngine()
	defer eng.Close()
	srv := cqbound.NewServer(eng)
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Load a small graph in one transaction; the response carries the
	// epoch the commit published.
	body := `{"ops":[
		{"op":"create","rel":"E","attrs":["x","y"]},
		{"op":"append","rel":"E","rows":[["a","b"],["b","c"],["c","d"]]}]}`
	resp, err := http.Post(ts.URL+"/commit", "application/json", strings.NewReader(body))
	if err != nil {
		panic(err)
	}
	resp.Body.Close()

	// Evaluate a two-hop path twice: the second answer for the same
	// (query, epoch) is a cache hit.
	q := url.QueryEscape("Q(X,Z) <- E(X,Y), E(Y,Z).")
	for i := 0; i < 2; i++ {
		resp, err := http.Get(ts.URL + "/query?q=" + q)
		if err != nil {
			panic(err)
		}
		var out struct {
			Epoch  uint64     `json:"epoch"`
			Tuples [][]string `json:"tuples"`
			Cached bool       `json:"cached"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			panic(err)
		}
		resp.Body.Close()
		fmt.Printf("epoch %d: %d tuples (cached=%v)\n", out.Epoch, len(out.Tuples), out.Cached)
	}
	// Output:
	// epoch 2: 2 tuples (cached=false)
	// epoch 2: 2 tuples (cached=true)
}
