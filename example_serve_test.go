package cqbound_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"

	"cqbound"
)

// ExampleNewServer serves an Engine over HTTP: data arrives through
// POST /commit, queries evaluate through GET /query (behind bound-based
// admission control), and a repeated query on an unchanged epoch comes
// back from the result cache.
func ExampleNewServer() {
	eng := cqbound.NewEngine()
	defer eng.Close()
	srv := cqbound.NewServer(eng)
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Load a small graph in one transaction; the response carries the
	// epoch the commit published.
	body := `{"ops":[
		{"op":"create","rel":"E","attrs":["x","y"]},
		{"op":"append","rel":"E","rows":[["a","b"],["b","c"],["c","d"]]}]}`
	resp, err := http.Post(ts.URL+"/commit", "application/json", strings.NewReader(body))
	if err != nil {
		panic(err)
	}
	resp.Body.Close()

	// Evaluate a two-hop path twice: the second answer for the same
	// (query, epoch) is a cache hit.
	q := url.QueryEscape("Q(X,Z) <- E(X,Y), E(Y,Z).")
	for i := 0; i < 2; i++ {
		resp, err := http.Get(ts.URL + "/query?q=" + q)
		if err != nil {
			panic(err)
		}
		var out struct {
			Epoch  uint64     `json:"epoch"`
			Tuples [][]string `json:"tuples"`
			Cached bool       `json:"cached"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			panic(err)
		}
		resp.Body.Close()
		fmt.Printf("epoch %d: %d tuples (cached=%v)\n", out.Epoch, len(out.Tuples), out.Cached)
	}
	// Output:
	// epoch 2: 2 tuples (cached=false)
	// epoch 2: 2 tuples (cached=true)
}

// ExampleNewServer_metrics shows the serving-path observability layer:
// requests carry correlation IDs end to end, ObsStats counts what the
// middleware saw, and /metrics?format=prom renders the same families as
// Prometheus text exposition.
func ExampleNewServer_metrics() {
	eng := cqbound.NewEngine()
	defer eng.Close()
	srv := cqbound.NewServer(eng)
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body := `{"ops":[
		{"op":"create","rel":"E","attrs":["x","y"]},
		{"op":"append","rel":"E","rows":[["a","b"],["b","c"],["c","d"]]}]}`
	resp, err := http.Post(ts.URL+"/commit", "application/json", strings.NewReader(body))
	if err != nil {
		panic(err)
	}
	resp.Body.Close()

	// A client-supplied X-Request-ID is echoed back and stamped on the
	// access log, the slow-query record and the rendered trace, so any
	// response is joinable to its server-side story.
	q := url.QueryEscape("Q(X,Z) <- E(X,Y), E(Y,Z).")
	for i := 0; i < 2; i++ {
		req, err := http.NewRequest("GET", ts.URL+"/query?q="+q, nil)
		if err != nil {
			panic(err)
		}
		req.Header.Set("X-Request-ID", "doc-1")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			panic(err)
		}
		resp.Body.Close()
		if i == 0 {
			fmt.Println("request id:", resp.Header.Get("X-Request-ID"))
		}
	}

	// ObsStats snapshots the middleware counters: the commit plus both
	// queries passed through, the repeat query hit the result cache, and
	// the evaluated one recorded a bound-calibration sample.
	st := srv.ObsStats()
	fmt.Printf("requests=%d cache_hits=%d calibration_records=%d\n",
		st.Requests, st.CacheHits, st.CalibrationRecords)

	// The same families render as Prometheus text exposition.
	resp, err = http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		panic(err)
	}
	var prom strings.Builder
	if _, err := io.Copy(&prom, resp.Body); err != nil {
		panic(err)
	}
	resp.Body.Close()
	fmt.Println("prom exposes serve_window_request_rate:",
		strings.Contains(prom.String(), "# TYPE serve_window_request_rate gauge"))
	// Output:
	// request id: doc-1
	// requests=3 cache_hits=1 calibration_records=1
	// prom exposes serve_window_request_rate: true
}
