package cqbound

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"cqbound/internal/datagen"
	"cqbound/internal/relation"
)

// TestEngineExplainMatchesStructuralClass is the acceptance check: the
// planned strategy must match the query's structural class on the canonical
// triangle, star, path, and cyclic-FD queries.
func TestEngineExplainMatchesStructuralClass(t *testing.T) {
	eng := NewEngine()
	cases := []struct {
		name string
		text string
		want Strategy
	}{
		{"star", "Q(X,Y,Z,W) <- F(X,Y), F(X,Z), F(X,W).", StrategyYannakakis},
		{"path", "Q(A,D) <- R(A,B), S(B,C), T(C,D).", StrategyYannakakis},
		{"triangle", "Q(X,Y,Z) <- E(X,Y), E(Y,Z), E(X,Z).", StrategyProjectEarly},
		{"cyclic with FDs", "Q(X,Y,Z) <- R(X,Y,U), S(Y,Z,U), T(Z,X,U).\nfd R[1],R[2] -> R[3].", StrategyGenericJoin},
	}
	for _, c := range cases {
		p, err := eng.Explain(MustParse(c.text))
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if p.Strategy != c.want {
			t.Errorf("%s: strategy = %v, want %v", c.name, p.Strategy, c.want)
		}
		if p.Rationale == "" {
			t.Errorf("%s: plan has no rationale", c.name)
		}
	}
	if eng.CacheSize() != len(cases) {
		t.Errorf("cache size = %d, want %d", eng.CacheSize(), len(cases))
	}
}

func TestEngineEvaluateAgreesAcrossStrategies(t *testing.T) {
	eng := NewEngine()
	ctx := context.Background()
	rng := rand.New(rand.NewSource(11))
	qp := datagen.QueryParams{
		MaxVars:            5,
		MaxAtoms:           4,
		MaxArity:           3,
		HeadFraction:       0.7,
		RepeatRelationProb: 0.3,
		SimpleFDProb:       0.15,
	}
	for i := 0; i < 40; i++ {
		q := datagen.RandomQuery(rng, qp)
		db := datagen.RandomDatabase(rng, q, datagen.DBParams{Tuples: 10, Universe: 5})
		planned, _, err := eng.Evaluate(ctx, q, db)
		if err != nil {
			t.Fatalf("query %d (%s): %v", i, q, err)
		}
		jp, _, err := eng.EvaluateStrategy(ctx, StrategyProjectEarly, q, db)
		if err != nil {
			t.Fatalf("query %d: project-early: %v", i, err)
		}
		gj, _, err := eng.EvaluateStrategy(ctx, StrategyGenericJoin, q, db)
		if err != nil {
			t.Fatalf("query %d: generic join: %v", i, err)
		}
		if !relation.Equal(planned, jp) || !relation.Equal(planned, gj) {
			t.Errorf("query %d (%s): strategies disagree: planned %d, jp %d, gj %d",
				i, q, planned.Size(), jp.Size(), gj.Size())
		}
		if IsAcyclic(q) {
			ya, _, err := eng.EvaluateStrategy(ctx, StrategyYannakakis, q, db)
			if err != nil {
				t.Fatalf("query %d: yannakakis: %v", i, err)
			}
			if !relation.Equal(planned, ya) {
				t.Errorf("query %d (%s): yannakakis disagrees", i, q)
			}
		}
	}
}

func TestEngineAnalyzeCaches(t *testing.T) {
	eng := NewEngine()
	q1 := MustParse("S(X,Y,Z) <- R(X,Y), R(X,Z), R(Y,Z).")
	q2 := MustParse("S(X,Y,Z) <- R(X,Y), R(X,Z), R(Y,Z).") // same canonical text
	a1, err := eng.Analyze(q1)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := eng.Analyze(q2)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Error("identical queries did not share one cached analysis")
	}
	if a1.ColorNumber.RatString() != "3/2" {
		t.Errorf("C = %s, want 3/2", a1.ColorNumber.RatString())
	}
}

func TestEngineConcurrentUse(t *testing.T) {
	eng := NewEngine()
	queries := []string{
		"Q(X,Z) <- R(X,Y), S(Y,Z).",
		"Q(X,Y,Z) <- E(X,Y), E(Y,Z), E(X,Z).",
		"Q(A,D) <- R(A,B), S(B,C), T(C,D).",
	}
	db := NewDatabase()
	for _, name := range []string{"R", "S", "T", "E"} {
		r := NewRelation(name, "a", "b")
		r.Add("1", "2")
		r.Add("2", "3")
		r.Add("1", "3")
		db.MustAdd(r)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				q := MustParse(queries[(g+i)%len(queries)])
				if _, err := eng.Explain(q); err != nil {
					t.Errorf("explain: %v", err)
					return
				}
				if _, _, err := eng.Evaluate(context.Background(), q, db); err != nil {
					t.Errorf("evaluate: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if eng.CacheSize() != len(queries) {
		t.Errorf("cache size = %d, want %d", eng.CacheSize(), len(queries))
	}
}

func TestEngineEvaluateHonorsCancellation(t *testing.T) {
	eng := NewEngine()
	q := MustParse("Q(X,Z) <- R(X,Y), S(Y,Z).")
	db := NewDatabase()
	for _, name := range []string{"R", "S"} {
		r := NewRelation(name, "a", "b")
		r.Add("1", "2")
		r.Add("2", "3")
		db.MustAdd(r)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := eng.EvaluateStrategy(ctx, StrategyGenericJoin, q, db); err == nil {
		t.Error("cancelled evaluation returned no error")
	}
}

func TestEngineEvaluateBatch(t *testing.T) {
	eng := NewEngine()
	db := NewDatabase()
	for _, name := range []string{"R", "S", "T", "E"} {
		r := NewRelation(name, "a", "b")
		for i := 0; i < 30; i++ {
			r.Add(itoa(i%10), itoa((i+1)%10))
		}
		db.MustAdd(r)
	}
	texts := []string{
		"Q(X,Z) <- R(X,Y), S(Y,Z).",
		"Q(X,Y,Z) <- E(X,Y), E(Y,Z), E(X,Z).",
		"Q(A,D) <- R(A,B), S(B,C), T(C,D).",
		"Q(X) <- R(X,X).",
	}
	var queries []*Query
	for i := 0; i < 40; i++ {
		queries = append(queries, MustParse(texts[i%len(texts)]))
	}
	results := eng.EvaluateBatch(context.Background(), queries, db)
	if len(results) != len(queries) {
		t.Fatalf("got %d results for %d queries", len(results), len(queries))
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("query %d (%s): %v", i, queries[i], res.Err)
		}
		// Batch results must agree with sequential evaluation.
		seq, _, err := eng.Evaluate(context.Background(), queries[i], db)
		if err != nil {
			t.Fatalf("query %d sequential: %v", i, err)
		}
		if !relation.Equal(res.Output, seq) {
			t.Errorf("query %d (%s): batch %d tuples, sequential %d",
				i, queries[i], res.Output.Size(), seq.Size())
		}
	}
}

func TestEngineEvaluateBatchPerQueryErrors(t *testing.T) {
	eng := NewEngine()
	db := NewDatabase()
	r := NewRelation("R", "a", "b")
	r.Add("1", "2")
	db.MustAdd(r)
	queries := []*Query{
		MustParse("Q(X,Y) <- R(X,Y)."),
		MustParse("Q(X,Y) <- Missing(X,Y)."), // reads an absent relation
	}
	results := eng.EvaluateBatch(context.Background(), queries, db)
	if results[0].Err != nil {
		t.Fatalf("healthy query failed: %v", results[0].Err)
	}
	if results[0].Output.Size() != 1 {
		t.Fatalf("healthy query output = %d tuples", results[0].Output.Size())
	}
	if results[1].Err == nil {
		t.Fatal("query over a missing relation reported no error")
	}
}

func TestEngineEvaluateBatchCancellation(t *testing.T) {
	eng := NewEngine()
	db := NewDatabase()
	r := NewRelation("R", "a", "b")
	r.Add("1", "2")
	db.MustAdd(r)
	var queries []*Query
	for i := 0; i < 64; i++ {
		queries = append(queries, MustParse("Q(X,Y) <- R(X,Y)."))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i, res := range eng.EvaluateBatch(ctx, queries, db) {
		if res.Err == nil && res.Output == nil {
			t.Fatalf("query %d: canceled batch left a result with neither output nor error", i)
		}
	}
}

func itoa(i int) string { return fmt.Sprintf("%d", i) }

// TestEngineWithSharding: a sharded engine must produce exactly the
// unsharded engine's output on workloads large enough to clear the row
// threshold, for both acyclic (Yannakakis) and cyclic (project-early via
// EvaluateStrategy) shapes.
func TestEngineWithSharding(t *testing.T) {
	ctx := context.Background()
	db := NewDatabase()
	for _, name := range []string{"R", "S", "T", "E"} {
		r := NewRelation(name, "a", "b")
		for i := 0; i < 600; i++ {
			r.Add(fmt.Sprintf("u%d", (i*7+len(name))%80), fmt.Sprintf("u%d", (i*13+1)%80))
		}
		db.MustAdd(r)
	}
	plain := NewEngine()
	sharded := NewEngine(WithSharding(100, 4))
	queries := []string{
		"Q(A,D) <- R(A,B), S(B,C), T(C,D).",   // acyclic: Yannakakis
		"Q(X,Y,Z) <- E(X,Y), E(Y,Z), E(X,Z).", // cyclic triangle
		"Q(X,Z) <- R(X,Y), S(Y,Z).",           // two-atom join
		"Q(X) <- R(X,X).",                     // repeated variable
	}
	for _, text := range queries {
		q := MustParse(text)
		want, _, err := plain.Evaluate(ctx, q, db)
		if err != nil {
			t.Fatalf("%s: unsharded: %v", text, err)
		}
		got, _, err := sharded.Evaluate(ctx, q, db)
		if err != nil {
			t.Fatalf("%s: sharded: %v", text, err)
		}
		if !relation.Equal(want, got) {
			t.Fatalf("%s: sharded engine returned %d tuples, unsharded %d", text, got.Size(), want.Size())
		}
	}
	// Forced project-early under sharding must agree too.
	q := MustParse("Q(X,Y,Z) <- E(X,Y), E(Y,Z), E(X,Z).")
	want, _, err := plain.EvaluateStrategy(ctx, StrategyProjectEarly, q, db)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := sharded.EvaluateStrategy(ctx, StrategyProjectEarly, q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(want, got) {
		t.Fatalf("forced project-early: sharded %d tuples, unsharded %d", got.Size(), want.Size())
	}
}

// TestEngineCacheStats pins the LRU hit/miss accounting: the first
// Explain/Analyze of a query misses, repeats hit.
func TestEngineCacheStats(t *testing.T) {
	eng := NewEngine()
	q := MustParse("Q(X,Z) <- R(X,Y), S(Y,Z).")
	if h, m := eng.CacheStats(); h != 0 || m != 0 {
		t.Fatalf("fresh engine stats = %d/%d, want 0/0", h, m)
	}
	if _, err := eng.Explain(q); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Explain(q); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Explain(q); err != nil {
		t.Fatal(err)
	}
	h, m := eng.CacheStats()
	if m != 1 {
		t.Fatalf("misses = %d, want 1 (only the first Explain)", m)
	}
	if h != 2 {
		t.Fatalf("hits = %d, want 2", h)
	}
	if _, err := eng.Analyze(q); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Analyze(q); err != nil {
		t.Fatal(err)
	}
	h, m = eng.CacheStats()
	if h != 3 || m != 2 {
		t.Fatalf("stats after Analyze pair = %d/%d, want 3/2", h, m)
	}
}
