package cqbound

// The cqserve HTTP front-end: a Server exposing one Engine to concurrent
// network clients with per-request deadlines, bound-based admission
// control (internal/serve), an epoch-keyed result cache, and the PR 8
// observability surface (/metrics, ?trace=1, slow-query sinks). The
// engine-agnostic pieces live in internal/serve; this file is the glue
// that needs the Engine's unexported state (governor, epoch store).

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cqbound/internal/obs"
	"cqbound/internal/serve"
)

// Server default knobs; all overridable through server options.
const (
	// defaultRequestTimeout bounds each request's context.
	defaultRequestTimeout = 30 * time.Second
	// defaultAdmissionBudget applies when the engine has no memory budget
	// to inherit (<= 0 governor budget means unlimited).
	defaultAdmissionBudget = 64 << 20
	// defaultAdmissionQueue is the FIFO depth beyond which Admit rejects.
	defaultAdmissionQueue = 16
	// defaultResultCacheSize is the (query, epoch) result cache capacity.
	defaultResultCacheSize = 256
	// estBytesPerValue is the resident cost charged per output value when
	// converting a planner row bound to an admission reservation: one
	// interned uint32 column cell plus index/dedup overhead.
	estBytesPerValue = 8
)

// Server is the cqserve HTTP front-end over one Engine. Endpoints:
//
//	GET/POST /query?q=Q[&epoch=N][&trace=1]  evaluate Q (JSON tuples)
//	POST     /commit                         apply a transaction (JSON ops)
//	GET      /explain?q=Q                    plan, rationale and row bound
//	GET      /metrics                        engine + serve metric registry
//	POST     /snapshot                       pin the live epoch; returns it
//	DELETE   /snapshot?epoch=N               release a pinned epoch
//
// Each request runs under a deadline; each query passes admission before
// evaluation, reserving its paper-derived worst-case size out of the
// governor budget (429 when the queue is full). Server implements
// http.Handler and is safe for concurrent use.
type Server struct {
	e        *Engine
	admit    *serve.Admission
	cache    *serve.Cache[*cachedResult]
	mux      *http.ServeMux
	timeout  time.Duration
	cacheOn  bool
	requests atomic.Int64
	errors   atomic.Int64

	// obs is the serving-path observability state (serve_obs.go); nil
	// when the server was built WithoutObservability.
	obs *serverObs

	snapMu sync.Mutex
	snaps  map[uint64]*snapSession
	closed bool
}

// snapSession is one HTTP-pinned epoch: the underlying Snapshot, a count
// of POST /snapshot pins outstanding (clients pinning the same epoch
// share the session; it dies with its last DELETE), and a refcount of
// in-flight requests reading it, so a DELETE during a long evaluation
// defers the release instead of racing the retirement sweep.
type snapSession struct {
	snap     *Snapshot
	pins     int
	refs     int
	released bool
}

// ServerOption configures NewServer.
type ServerOption func(*serverConfig)

type serverConfig struct {
	timeout     time.Duration
	budget      int64
	queue       int
	cacheSize   int
	noObs       bool
	obsClock    obs.Clock
	accessW     io.Writer
	accessEvery int
}

// WithRequestTimeout bounds every request's context; handlers return 503
// when it expires. d <= 0 keeps the default (30s).
func WithRequestTimeout(d time.Duration) ServerOption {
	return func(c *serverConfig) {
		if d > 0 {
			c.timeout = d
		}
	}
}

// WithAdmissionBudget sets the byte budget the admission controller
// rations, overriding the default of the engine's own memory budget (or
// 64 MiB when the engine has none).
func WithAdmissionBudget(bytes int64) ServerOption {
	return func(c *serverConfig) {
		if bytes > 0 {
			c.budget = bytes
		}
	}
}

// WithAdmissionQueue sets how many requests may wait for budget before
// Admit rejects with 429. Zero queues nothing — contention rejects
// immediately.
func WithAdmissionQueue(n int) ServerOption {
	return func(c *serverConfig) {
		if n >= 0 {
			c.queue = n
		}
	}
}

// WithResultCache sets the (query, epoch) result cache capacity in
// entries. Zero disables the cache — every request re-evaluates, which
// the saturation tests rely on.
func WithResultCache(entries int) ServerOption {
	return func(c *serverConfig) {
		c.cacheSize = entries
	}
}

// NewServer wraps e in the cqserve HTTP front-end and registers the serve
// stats family (admission and cache counters) on e.Metrics(). The server
// holds no goroutines of its own; Close releases any epochs still pinned
// by snapshot sessions.
func NewServer(e *Engine, opts ...ServerOption) *Server {
	cfg := serverConfig{
		timeout:   defaultRequestTimeout,
		budget:    e.spill.Budget(),
		queue:     defaultAdmissionQueue,
		cacheSize: defaultResultCacheSize,
	}
	if cfg.budget <= 0 {
		cfg.budget = defaultAdmissionBudget
	}
	for _, o := range opts {
		o(&cfg)
	}
	s := &Server{
		e:       e,
		admit:   serve.NewAdmission(cfg.budget, cfg.queue, e.spill),
		timeout: cfg.timeout,
		cacheOn: cfg.cacheSize > 0,
		snaps:   make(map[uint64]*snapSession),
	}
	if s.cacheOn {
		s.cache = serve.NewCache[*cachedResult](cfg.cacheSize)
	} else {
		s.cache = serve.NewCache[*cachedResult](1)
	}
	if !cfg.noObs {
		s.obs = newServerObs(cfg.obsClock, cfg.accessW, cfg.accessEvery)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/commit", s.handleCommit)
	mux.HandleFunc("/explain", s.handleExplain)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/snapshot", s.handleSnapshot)
	s.registerObsRoutes(mux)
	s.mux = mux
	s.registerMetrics()
	s.registerObsMetrics()
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if s.obs != nil {
		s.serveObserved(w, r)
		return
	}
	s.mux.ServeHTTP(w, r)
}

// now reads the server's clock: the injectable obs clock when
// observability is on, the wall clock otherwise.
func (s *Server) now() time.Time {
	if s.obs != nil {
		return s.obs.clock()
	}
	return time.Now()
}

// Close releases every epoch still pinned by a snapshot session. In-flight
// requests on those sessions finish against their pinned state; new
// epoch-pinned requests get 404.
func (s *Server) Close() {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	s.closed = true
	for epoch, sess := range s.snaps {
		if !sess.released {
			sess.released = true
			if sess.refs == 0 {
				sess.snap.Close()
			}
		}
		if sess.refs == 0 {
			delete(s.snaps, epoch)
		}
	}
}

// AdmissionStats snapshots the admission controller (also on /metrics as
// the serve_admission_* gauges).
func (s *Server) AdmissionStats() serve.AdmissionStats { return s.admit.Stats() }

// ResultCacheStats snapshots the result cache (also on /metrics as the
// serve_cache_* gauges).
func (s *Server) ResultCacheStats() serve.CacheStats { return s.cache.Stats() }

// registerMetrics adds the serve stats family to the engine's registry.
func (s *Server) registerMetrics() {
	reg := s.e.Metrics()
	ag := func(name string, f func(serve.AdmissionStats) int64) {
		reg.Gauge(name, func() int64 { return f(s.admit.Stats()) })
	}
	ag("serve_admission_admitted", func(st serve.AdmissionStats) int64 { return int64(st.Admitted) })
	ag("serve_admission_rejected", func(st serve.AdmissionStats) int64 { return int64(st.Rejected) })
	ag("serve_admission_queued", func(st serve.AdmissionStats) int64 { return int64(st.Queued) })
	ag("serve_admission_queue_timeouts", func(st serve.AdmissionStats) int64 { return int64(st.QueueTimeouts) })
	ag("serve_admission_waiting", func(st serve.AdmissionStats) int64 { return int64(st.Waiting) })
	ag("serve_admission_committed_bytes", func(st serve.AdmissionStats) int64 { return st.CommittedBytes })
	ag("serve_admission_capacity_bytes", func(st serve.AdmissionStats) int64 { return st.Capacity })
	cg := func(name string, f func(serve.CacheStats) int64) {
		reg.Gauge(name, func() int64 { return f(s.cache.Stats()) })
	}
	cg("serve_cache_hits", func(st serve.CacheStats) int64 { return int64(st.Hits) })
	cg("serve_cache_misses", func(st serve.CacheStats) int64 { return int64(st.Misses) })
	cg("serve_cache_invalidations", func(st serve.CacheStats) int64 { return int64(st.Invalidations) })
	cg("serve_cache_entries", func(st serve.CacheStats) int64 { return int64(st.Entries) })
	reg.Gauge("serve_requests", s.requests.Load)
	reg.Gauge("serve_errors", s.errors.Load)
}

// cachedResult is one materialized query answer: everything a response
// needs except the per-request trace.
type cachedResult struct {
	Attrs  []string
	Tuples [][]string
}

// queryResponse is the /query JSON body.
type queryResponse struct {
	Query  string     `json:"query"`
	Epoch  uint64     `json:"epoch"`
	Rows   int        `json:"rows"`
	Attrs  []string   `json:"attrs"`
	Tuples [][]string `json:"tuples"`
	Cached bool       `json:"cached"`
	Trace  string     `json:"trace,omitempty"`
}

// handleQuery is the request lifecycle of ARCHITECTURE §11: resolve and
// pin the epoch, consult the result cache, pass admission with the plan's
// worst-case byte estimate, evaluate under the request deadline, release
// everything (deferred even on error paths).
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
	defer cancel()
	rs := obs.RequestFrom(ctx)
	qtext := r.FormValue("q")
	q, err := Parse(qtext)
	if err != nil {
		s.fail(w, r, http.StatusBadRequest, "parse: %v", err)
		return
	}
	rs.SetQuery(qtext)
	traced := r.FormValue("trace") == "1"

	// Pin the epoch the request reads: a held snapshot session when
	// ?epoch=N names one, the live epoch otherwise.
	var (
		db      *Database
		epoch   uint64
		release func()
	)
	if es := r.FormValue("epoch"); es != "" {
		n, err := strconv.ParseUint(es, 10, 64)
		if err != nil {
			s.fail(w, r, http.StatusBadRequest, "epoch: %v", err)
			return
		}
		sess := s.acquireSession(n)
		if sess == nil {
			s.fail(w, r, http.StatusNotFound, "epoch %d is not pinned by a snapshot session", n)
			return
		}
		db, epoch, release = sess.snap.DB(), n, func() { s.releaseSession(n) }
	} else {
		snap := s.e.Snapshot()
		db, epoch, release = snap.DB(), snap.Epoch(), snap.Close
	}
	defer release()
	rs.SetEpoch(epoch)

	// Cache hits skip admission: a materialized answer costs no evaluation
	// memory. Traced requests bypass the cache so their trace is real.
	if s.cacheOn && !traced {
		res, ok := s.cache.Get(qtext, epoch)
		if o := s.obs; o != nil {
			if ok {
				o.windows.CacheHits.Add(1)
			} else {
				o.windows.CacheMisses.Add(1)
			}
		}
		if ok {
			rs.MarkCached()
			rs.SetOutcome("cached")
			s.reply(w, http.StatusOK, &queryResponse{
				Query: qtext, Epoch: epoch, Rows: len(res.Tuples),
				Attrs: res.Attrs, Tuples: res.Tuples, Cached: true,
			})
			return
		}
	}

	// Admission: reserve the paper's worst-case output size. With
	// observability on, one PlanInfo call against the cached plan also
	// yields the strategy name and the System-R output estimate the
	// calibration telemetry compares against actual rows.
	var (
		strategy string
		bound    float64
		estimate float64
	)
	if s.obs != nil {
		strategy, bound, estimate, err = s.e.PlanInfo(q, db)
	} else {
		bound, err = s.e.BoundRows(q, db)
	}
	if err != nil {
		s.fail(w, r, http.StatusBadRequest, "plan: %v", err)
		return
	}
	charge := estBytes(bound, q)
	rs.SetAdmission(bound, charge, charge > s.admit.Stats().Capacity)
	rs.SetState("queued", s.admit.Stats().Waiting)
	queuedAt := s.now()
	ticket, err := s.admit.Admit(ctx, charge)
	if o := s.obs; o != nil {
		o.windows.QueueWait.Observe(s.now().Sub(queuedAt).Nanoseconds())
	}
	rs.SetQueueWait(s.now().Sub(queuedAt).Nanoseconds())
	if err != nil {
		switch {
		case errors.Is(err, serve.ErrOverloaded):
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
			s.fail(w, r, http.StatusTooManyRequests, "%v", err)
		default:
			s.fail(w, r, http.StatusServiceUnavailable, "admission wait: %v", err)
		}
		return
	}
	defer ticket.Release()
	if o := s.obs; o != nil {
		o.windows.Grants.Add(1)
	}
	rs.SetState("evaluating", 0)

	var (
		out *Relation
		tr  *Trace
	)
	if traced {
		out, _, tr, err = s.e.EvaluateTraced(ctx, q, db)
	} else {
		out, _, err = s.e.Evaluate(ctx, q, db)
	}
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			s.fail(w, r, http.StatusServiceUnavailable, "evaluate: %v", err)
		case errors.Is(err, context.Canceled):
			// The client is gone; the status is for the access log only.
			s.fail(w, r, 499, "evaluate: %v", err)
		default:
			s.fail(w, r, http.StatusUnprocessableEntity, "evaluate: %v", err)
		}
		return
	}
	res := materialize(out, db.Dict())
	s.recordCalibration(strategy, shapeOf(q), bound, estimate, len(res.Tuples))
	if s.cacheOn && !traced {
		s.cache.Put(qtext, epoch, res)
	}
	rs.SetState("done", 0)
	rs.SetOutcome("ok")
	resp := &queryResponse{
		Query: qtext, Epoch: epoch, Rows: len(res.Tuples),
		Attrs: res.Attrs, Tuples: res.Tuples,
	}
	if tr != nil {
		resp.Trace = tr.Render()
	}
	s.reply(w, http.StatusOK, resp)
}

// estBytes converts a planner row bound to an admission reservation: one
// estBytesPerValue charge per output value. Infinite or overflowing
// estimates saturate (Admit clamps to capacity anyway).
func estBytes(rows float64, q *Query) int64 {
	width := len(q.Head.Vars)
	if width < 1 {
		width = 1
	}
	b := rows * float64(width) * estBytesPerValue
	if b >= float64(1<<62) {
		return 1 << 62
	}
	return int64(b)
}

// materialize renders a result relation into the strings a response and
// the cache carry, resolving values through the evaluated snapshot's
// dictionary (the output relation does not adopt one); the relation itself
// is not retained.
func materialize(out *Relation, d *Dict) *cachedResult {
	res := &cachedResult{Attrs: append([]string(nil), out.Attrs...), Tuples: [][]string{}}
	out.Each(func(t Tuple) bool {
		res.Tuples = append(res.Tuples, t.StringsIn(d))
		return true
	})
	return res
}

// commitRequest is the /commit JSON body: a transaction as an ordered op
// list. Ops are applied in order inside one Txn; any failure aborts the
// whole batch.
type commitRequest struct {
	Ops []commitOp `json:"ops"`
}

type commitOp struct {
	// Op is one of "create", "append", "retract", "drop"... create needs
	// Attrs; append and retract need Rows.
	Op    string     `json:"op"`
	Rel   string     `json:"rel"`
	Attrs []string   `json:"attrs,omitempty"`
	Rows  [][]string `json:"rows,omitempty"`
}

// handleCommit applies one transaction and publishes the next epoch. The
// response carries the committed epoch; the result cache is swept for
// epochs no longer readable.
func (s *Server) handleCommit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, r, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req commitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, r, http.StatusBadRequest, "decode: %v", err)
		return
	}
	tx := s.e.Begin()
	defer tx.Abort() // no-op after Commit
	for i, op := range req.Ops {
		var err error
		switch op.Op {
		case "create":
			err = tx.Create(op.Rel, op.Attrs...)
		case "append":
			for _, row := range op.Rows {
				if err = tx.Add(op.Rel, row...); err != nil {
					break
				}
			}
		case "retract":
			for _, row := range op.Rows {
				if err = tx.Remove(op.Rel, row...); err != nil {
					break
				}
			}
		default:
			err = fmt.Errorf("unknown op %q", op.Op)
		}
		if err != nil {
			s.fail(w, r, http.StatusBadRequest, "op %d (%s %s): %v", i, op.Op, op.Rel, err)
			return
		}
	}
	epoch, err := tx.Commit()
	if err != nil {
		s.fail(w, r, http.StatusUnprocessableEntity, "commit: %v", err)
		return
	}
	s.sweepCache()
	s.reply(w, http.StatusOK, map[string]uint64{"epoch": epoch})
}

// handleExplain returns the plan for q over the live epoch as text: the
// strategy, atom order and rationale, plus the worst-case row bound the
// admission controller would charge.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	q, err := Parse(r.FormValue("q"))
	if err != nil {
		s.fail(w, r, http.StatusBadRequest, "parse: %v", err)
		return
	}
	snap := s.e.Snapshot()
	defer snap.Close()
	p, err := s.e.ExplainDB(q, snap.DB())
	if err != nil {
		s.fail(w, r, http.StatusUnprocessableEntity, "plan: %v", err)
		return
	}
	rows, err := s.e.BoundRows(q, snap.DB())
	if err != nil {
		s.fail(w, r, http.StatusUnprocessableEntity, "bound: %v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "epoch: %d\n%s\nworst-case rows: %g (admission charge %d bytes)\n",
		snap.Epoch(), p, rows, estBytes(rows, q))
}

// handleSnapshot pins (POST) or releases (DELETE) an epoch for the
// ?epoch=N query form. Pinning the same epoch twice shares one session.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.snapMu.Lock()
		if s.closed {
			s.snapMu.Unlock()
			s.fail(w, r, http.StatusServiceUnavailable, "server closed")
			return
		}
		snap := s.e.Snapshot()
		epoch := snap.Epoch()
		if sess, ok := s.snaps[epoch]; ok {
			sess.pins++
			snap.Close() // session already holds this epoch
		} else {
			s.snaps[epoch] = &snapSession{snap: snap, pins: 1}
		}
		s.snapMu.Unlock()
		s.reply(w, http.StatusOK, map[string]uint64{"epoch": epoch})
	case http.MethodDelete:
		n, err := strconv.ParseUint(r.FormValue("epoch"), 10, 64)
		if err != nil {
			s.fail(w, r, http.StatusBadRequest, "epoch: %v", err)
			return
		}
		s.snapMu.Lock()
		sess, ok := s.snaps[n]
		if ok && sess.released {
			ok = false
		}
		if ok {
			sess.pins--
			if sess.pins <= 0 {
				sess.released = true
				if sess.refs == 0 {
					sess.snap.Close()
					delete(s.snaps, n)
				}
			}
		}
		s.snapMu.Unlock()
		if !ok {
			s.fail(w, r, http.StatusNotFound, "epoch %d is not pinned", n)
			return
		}
		s.sweepCache()
		s.reply(w, http.StatusOK, map[string]uint64{"epoch": n})
	default:
		s.fail(w, r, http.StatusMethodNotAllowed, "POST or DELETE required")
	}
}

// acquireSession refcounts the session pinning epoch n, or returns nil.
func (s *Server) acquireSession(n uint64) *snapSession {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	sess, ok := s.snaps[n]
	if !ok || sess.released {
		return nil
	}
	sess.refs++
	return sess
}

// releaseSession undoes acquireSession, completing a deferred DELETE when
// the last in-flight reader leaves.
func (s *Server) releaseSession(n uint64) {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	sess, ok := s.snaps[n]
	if !ok {
		return
	}
	sess.refs--
	if sess.released && sess.refs == 0 {
		sess.snap.Close()
		delete(s.snaps, n)
	}
}

// sweepCache drops result-cache entries for epochs that are neither live
// nor pinned by a snapshot session.
func (s *Server) sweepCache() {
	if !s.cacheOn {
		return
	}
	live := s.e.LiveEpoch()
	s.snapMu.Lock()
	pinned := make(map[uint64]bool, len(s.snaps))
	for e, sess := range s.snaps {
		if !sess.released {
			pinned[e] = true
		}
	}
	s.snapMu.Unlock()
	s.cache.Sweep(func(e uint64) bool { return e == live || pinned[e] })
}

// reply writes v as a JSON response.
func (s *Server) reply(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.errors.Add(1)
	}
}

// fail writes a JSON error body and counts it. The body carries the
// request's correlation ID when one is attached, so a client holding a
// 429 or 503 can quote the same ID the access log and traces recorded;
// the request's access-log outcome is derived from the status.
func (s *Server) fail(w http.ResponseWriter, r *http.Request, status int, format string, args ...any) {
	s.errors.Add(1)
	body := map[string]string{"error": fmt.Sprintf(format, args...)}
	rs := obs.RequestFrom(r.Context())
	if id := rs.ID(); id != "" {
		body["request_id"] = id
	}
	rs.SetOutcome(outcomeForStatus(status))
	s.reply(w, status, body)
}

// outcomeForStatus maps an error status onto the access-log outcome
// vocabulary.
func outcomeForStatus(status int) string {
	switch status {
	case http.StatusTooManyRequests:
		return "shed"
	case http.StatusServiceUnavailable:
		return "timeout"
	case 499:
		return "canceled"
	default:
		return "error"
	}
}
