package cqbound

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"

	"cqbound/internal/batch"
	"cqbound/internal/core"
	"cqbound/internal/database"
	"cqbound/internal/eval"
	"cqbound/internal/lru"
	"cqbound/internal/plan"
	"cqbound/internal/pool"
	"cqbound/internal/relation"
	"cqbound/internal/shard"
	"cqbound/internal/spill"
	"cqbound/internal/trace"
)

// Planner types (internal/plan).
type (
	// Plan records the strategy chosen for a query, the structural facts
	// that justified it, and the join order when one was computed.
	Plan = plan.Plan
	// Strategy identifies an evaluation algorithm.
	Strategy = plan.Strategy
)

// Re-exported strategies.
const (
	// StrategyYannakakis evaluates α-acyclic queries by semijoin reduction
	// in O(input + output).
	StrategyYannakakis = plan.StrategyYannakakis
	// StrategyProjectEarly is the Corollary 4.8 join-project plan along a
	// planner-chosen atom order.
	StrategyProjectEarly = plan.StrategyProjectEarly
	// StrategyGenericJoin is the worst-case optimal variable-at-a-time join
	// backed by the AGM bound.
	StrategyGenericJoin = plan.StrategyGenericJoin
)

// Engine plans and evaluates conjunctive queries, caching per-query
// analysis so repeated evaluation of the same query — the hot path of any
// serving system — pays for the chase, colorings, and LPs only once.
//
// The zero-cost way to use the library for evaluation:
//
//	eng := cqbound.NewEngine()
//	p, _ := eng.Explain(q)                    // why this strategy, per the paper
//	out, stats, _ := eng.Evaluate(ctx, q, db) // planned execution
//
// An Engine is safe for concurrent use by multiple goroutines.
type Engine struct {
	mu       sync.Mutex
	analyses *lru.Cache[*analysisEntry]
	plans    *lru.Cache[*planEntry]
	sharding *shard.Options
	spill    *spill.Governor

	stream *batch.Metrics

	// Transactional store (txn.go). txMu serializes commits and compactions;
	// epochMu guards the epoch list, the live pointer, the byDB lookup and
	// reader pin transitions. dict is the engine's private dictionary —
	// swapped only by Compact, hence the atomic pointer (the spill governor's
	// aux hook reads it without a lock). dedup holds the writer-owned
	// tuple→row maps per relation chain, touched only under txMu.
	txMu      sync.Mutex
	epochMu   sync.Mutex
	dict      atomic.Pointer[relation.Dict]
	dedup     map[string]relation.Dedup
	live      *epochState
	epochs    []*epochState
	byDB      map[*database.Database]*epochState
	retention int

	// Epoch lifecycle counters (EpochStats).
	commits     atomic.Int64
	retiredEps  atomic.Int64
	sweptBufs   atomic.Int64
	sweptBytes  atomic.Int64
	incMemos    atomic.Int64
	rebuiltRels atomic.Int64
	compactions atomic.Int64

	// Observability (observe.go): engine-wide tracing switch, trace
	// sinks, and the lazily-built metric registry.
	tracingOn bool
	sinks     []trace.Sink
	metrics   atomic.Pointer[metricsState]

	// Staged by options, merged into sharding by NewEngine.
	shardingOn   bool
	shardMinRows int
	shardCount   int
	skewFraction float64
	memBudget    int64
	spillDir     string
	dictSpill    bool
	batchSize    int
	materialized bool
}

// Option configures an Engine at construction.
type Option func(*Engine)

// WithSharding routes evaluation through the exchange-routed
// partition-parallel operators of internal/shard: any join, semijoin, or
// duplicate-eliminating projection whose larger input has at least
// threshold rows is hash-partitioned into the given number of shards
// (shards <= 0 means GOMAXPROCS) and executed shard by shard on the worker
// pool. Intermediate results stay partitioned between steps: a join whose
// key matches the partitioning the previous step left reuses it outright,
// and a mismatched key is handled by the exchange (repartition the stream
// shard-to-shard, or broadcast a small side against the partitioned big
// side). Steps below the threshold — and joins with no shared column to
// partition on — run single-shard exactly as without the option. Outputs
// are identical either way; only wall-clock and memory locality change.
// ShardStats reports what the routing actually did.
func WithSharding(threshold, shards int) Option {
	return func(e *Engine) {
		e.shardingOn = true
		e.shardMinRows = threshold
		e.shardCount = shards
	}
}

// WithSkewSplitting tunes the hot-shard trigger of the sharded operators:
// when one shard of an operator's probe side holds more than the given
// fraction of that side's rows — one dominant key value hashes all its
// rows into a single shard — the shard is split into row blocks that each
// join against the (read-only, pointer-replicated) co-shard, keeping
// per-worker cost balanced even under Zipf-distributed keys. The default
// without this option is 0.25; a negative fraction disables splitting.
// The option only takes effect alongside WithSharding.
func WithSkewSplitting(fraction float64) Option {
	return func(e *Engine) {
		e.skewFraction = fraction
	}
}

// WithMemoryBudget caps the resident bytes of shard storage built during
// evaluation: every partition shard and partitioned intermediate registers
// with a memory governor (internal/spill), and when the total exceeds
// `bytes` the coldest unpinned shards are parked in file-backed segments
// under the spill directory (WithSpillDir, or the OS temp dir) and loaded
// back transparently on next use. Hot shards, hash indexes, and shards an
// operator is scanning stay resident — the budget is a target the governor
// evicts toward, never a hard cap that could wedge a query against its own
// working set — and outputs are identical with or without a budget.
// bytes <= 0 means unlimited. Spilling's unit is the shard: under the
// default streamed execution the governor sees base-relation partitions
// and pipeline sinks even on a single-shard engine, and WithSharding
// raises the granularity (more, smaller victims) — pair the two when the
// budget must track intermediates closely. SpillStats reports what the
// governor did, and Close releases the spill files.
func WithMemoryBudget(bytes int64) Option {
	return func(e *Engine) {
		e.memBudget = bytes
	}
}

// WithSpillDir sets the directory under which a WithMemoryBudget engine
// creates its private spill directory (default: the OS temp dir). Each
// engine's directory is fresh and uniquely named, so stale files left
// behind by a crashed process are never read — and never deleted: clean a
// shared spill dir out-of-band if crashes accumulate.
func WithSpillDir(dir string) Option {
	return func(e *Engine) {
		e.spillDir = dir
	}
}

// WithBatchSize sets the row count of the column batches streamed
// execution moves between pipeline stages (default 1024). Evaluation is
// streamed by default: the join-project and Yannakakis executors build
// pull-based per-shard pipelines (scan → semijoin → join probe →
// projection) that hold one batch per stage instead of materializing every
// operator output, so peak residency tracks the output and the probe-side
// bindings rather than the largest intermediate. Larger batches amortize
// per-batch overhead; smaller ones tighten the residency bound. Outputs
// are identical at every size. StreamStats reports what the pipelines did;
// WithMaterializedExec restores the materialize-per-operator executors.
func WithBatchSize(rows int) Option {
	return func(e *Engine) {
		e.batchSize = rows
	}
}

// WithMaterializedExec disables streamed execution: every operator
// materializes its full output before the next starts, as before streaming
// existed. The switch exists so the two executors can be compared honestly
// (cqbench -streambench does) and as an escape hatch for one release;
// outputs are identical either way.
func WithMaterializedExec() Option {
	return func(e *Engine) {
		e.materialized = true
	}
}

// WithDictSpill additionally lets the governor park the process-wide
// dictionary's string table (needed only at the parse/print boundary; it
// reloads lazily on the next parse or print) as the last-resort victim
// when evicting every unpinned shard still leaves the engine over budget.
// Off by default because the dictionary is process-wide state shared by
// every engine. Only meaningful together with WithMemoryBudget.
func WithDictSpill() Option {
	return func(e *Engine) {
		e.dictSpill = true
	}
}

// SpillStats is a point-in-time copy of the engine's memory-governor
// counters: shards currently parked on disk and cumulative reloads,
// eviction counts, bytes in spill files, pins that had to wait for a
// segment load, and the resident-bytes gauge with its high-water mark.
// All zeros when the engine was built without WithMemoryBudget.
type SpillStats = spill.Stats

// SpillStats reports what the engine's memory governor has done across all
// evaluations since the engine was built (counters) and the current
// resident/on-disk state (gauges).
func (e *Engine) SpillStats() SpillStats {
	return e.spill.Snapshot()
}

// Close releases the engine's spill state: parked shards — and, under
// WithDictSpill, a parked dictionary — are loaded back into memory
// (relations stay fully usable afterwards) and the engine's spill
// directory is removed. A nil spill configuration makes Close a no-op.
// The engine itself remains usable, but a long-lived budgeted engine
// should be Closed when retired so no segment files leak.
func (e *Engine) Close() error {
	// The governor quiesces and restores its aux victim (the parked
	// dictionary, under WithDictSpill) itself before removing the
	// directory.
	return e.spill.Close()
}

// ShardStats is a point-in-time copy of the engine's sharded-execution
// counters: how many operators ran partition-parallel vs fell back, how
// many rows arrived at exchanges already partitioned on the needed key vs
// had to be repartitioned, and how often broadcasts and skew splits fired.
// All zeros when the engine was built without WithSharding.
type ShardStats = shard.Stats

// ShardStats reports the engine's sharded-execution routing counters,
// accumulated across all evaluations since the engine was built.
func (e *Engine) ShardStats() ShardStats {
	if e.sharding == nil {
		return ShardStats{}
	}
	return e.sharding.Metrics.Snapshot()
}

// StreamStats is a point-in-time copy of the engine's streamed-execution
// counters: batches and rows emitted by pipeline stages, pipelines that
// fell back to a buffered relation, and the column bytes that flowed
// through stages without ever being materialized — the allocation the
// materialized executors would have paid. All zeros under
// WithMaterializedExec.
type StreamStats = batch.Stats

// StreamStats reports what the engine's streamed pipelines did across all
// evaluations since the engine was built (or since ResetStats).
func (e *Engine) StreamStats() StreamStats {
	return e.stream.Snapshot()
}

// maxCacheEntries bounds each engine cache so long-lived servers seeing
// unbounded ad-hoc query text (user constants, generated variable names)
// cannot grow memory monotonically. At the cap the least recently used
// entry is evicted; re-analysis after eviction is always correct, just
// slower once.
const maxCacheEntries = 4096

type analysisEntry struct {
	a   *Analysis
	err error
}

type planEntry struct {
	p   *plan.Plan
	err error
}

// NewEngine returns an engine with empty caches, configured by opts.
func NewEngine(opts ...Option) *Engine {
	e := &Engine{
		analyses: lru.New[*analysisEntry](maxCacheEntries),
		plans:    lru.New[*planEntry](maxCacheEntries),
		dedup:    make(map[string]relation.Dedup),
	}
	for _, opt := range opts {
		opt(e)
	}
	// Every engine owns a private dictionary and an initial empty epoch:
	// values ingested through transactions intern here, never in the
	// process-wide default, so concurrent engines cannot cross-contaminate
	// IDs (and one engine parking its dictionary cannot race another's
	// lookups). Free-standing databases handed to Evaluate keep resolving
	// through the default dictionary as before.
	e.dict.Store(relation.NewDict())
	if e.retention < 1 {
		e.retention = 1
	}
	live := &epochState{epoch: 1, db: database.NewIn(e.dict.Load()).Next(1, nil)}
	e.live = live
	e.epochs = []*epochState{live}
	e.byDB = map[*database.Database]*epochState{live.db: live}
	if e.memBudget > 0 {
		e.spill = spill.NewGovernor(e.memBudget, e.spillDir)
		if e.dictSpill {
			gov := e.spill
			gov.SetAux(func() int64 {
				path, err := gov.SpillPath("dict.park")
				if err != nil {
					return 0
				}
				freed, err := e.parkableDict().Park(path)
				if err != nil {
					return 0
				}
				return freed
			}, func() {
				// Unpark both candidates: the parkable choice may have
				// changed between eviction and restore (ingest filled the
				// engine dictionary). Unpark is a no-op when resident.
				e.dict.Load().Unpark()
				relation.DefaultDict().Unpark()
			})
		}
	}
	if e.shardingOn {
		e.sharding = &shard.Options{
			MinRows:      e.shardMinRows,
			Shards:       e.shardCount,
			SkewFraction: e.skewFraction,
			Metrics:      &shard.Metrics{},
			Spill:        e.spill,
		}
	}
	if !e.materialized {
		// Streamed execution is the default. It rides on shard.Options (the
		// pipelines are per-shard), so an engine without WithSharding gets a
		// single-shard options block: Count()==1 keeps every materialized
		// operator in its fallback path while the executors stream.
		if e.batchSize <= 0 {
			e.batchSize = batch.DefaultSize
		}
		e.stream = &batch.Metrics{}
		if e.sharding == nil {
			e.sharding = &shard.Options{Shards: 1, Spill: e.spill}
		}
		e.sharding.BatchSize = e.batchSize
		e.sharding.Batch = e.stream
	}
	return e
}

// ResetStats zeroes the engine's cumulative counters — the analysis/plan
// cache hit/miss counts (CacheStats), the exchange-routing counters
// (ShardStats), the streamed-pipeline counters (StreamStats), the spill
// governor's eviction/reload/pin-wait counters (SpillStats), and the
// epoch lifecycle counters (EpochStats: commits, retired epochs, swept
// buffers and bytes, incremental memos, rebuilt relations, compactions)
// — so callers can attribute counts to a window, e.g. one query in a
// benchmark sweep, instead of the engine's lifetime. Gauges that
// describe present state survive: cached entries, resident and on-disk
// bytes, currently parked shards, and the EpochStats gauges LiveEpoch,
// ActiveEpochs, PinnedReaders and DictLen. The peak-resident high-water
// mark restarts from current residency.
func (e *Engine) ResetStats() {
	e.mu.Lock()
	e.analyses.ResetStats()
	e.plans.ResetStats()
	e.mu.Unlock()
	if e.sharding != nil {
		e.sharding.Metrics.Reset()
	}
	e.stream.Reset()
	e.spill.ResetCounters()
	e.commits.Store(0)
	e.retiredEps.Store(0)
	e.sweptBufs.Store(0)
	e.sweptBytes.Store(0)
	e.incMemos.Store(0)
	e.rebuiltRels.Store(0)
	e.compactions.Store(0)
}

// EngineStats is one point-in-time copy of every engine stats family:
// the cache hit/miss counters plus the four execution families. The
// embedded structs are the same values the per-family accessors return.
type EngineStats struct {
	// CacheHits / CacheMisses are the analysis- and plan-cache lookup
	// counters of CacheStats; CacheSize is the current entry count.
	CacheHits   uint64
	CacheMisses uint64
	CacheSize   int
	Shard       ShardStats
	Stream      StreamStats
	Spill       SpillStats
	Epoch       EpochStats
}

// Stats returns every stats family in one snapshot — the one-call
// counterpart of CacheStats + ShardStats + StreamStats + SpillStats +
// EpochStats. Families the engine was not configured for read all zeros.
func (e *Engine) Stats() EngineStats {
	s := EngineStats{
		Shard:  e.ShardStats(),
		Stream: e.StreamStats(),
		Spill:  e.SpillStats(),
		Epoch:  e.EpochStats(),
	}
	s.CacheHits, s.CacheMisses = e.CacheStats()
	s.CacheSize = e.CacheSize()
	return s
}

// CacheSize reports how many distinct queries the engine currently holds an
// analysis or plan for.
func (e *Engine) CacheSize() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := e.plans.Len()
	for _, k := range e.analyses.Keys() {
		if _, dup := e.plans.Peek(k); !dup {
			n++
		}
	}
	return n
}

// CacheStats reports how many cache lookups hit and missed across the
// analysis and plan caches since the engine was built — the serving-trace
// counters that justify (or refute) the LRU policy.
func (e *Engine) CacheStats() (hits, misses uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	ah, am := e.analyses.Stats()
	ph, pm := e.plans.Stats()
	return ah + ph, am + pm
}

// Analyze returns the full paper analysis of q, cached by the query's
// canonical text (so structurally identical Query values share one entry).
// The returned analysis is shared across callers; it must not be modified.
func (e *Engine) Analyze(q *Query) (*Analysis, error) {
	key := q.String()
	e.mu.Lock()
	ent, ok := e.analyses.Get(key)
	e.mu.Unlock()
	if ok {
		return ent.a, ent.err
	}
	// Computed outside the lock: analyses can be LP-heavy and must not
	// serialize unrelated queries. Two goroutines racing on the same fresh
	// query both compute; the second store wins harmlessly.
	a, err := core.Analyze(q)
	e.mu.Lock()
	e.analyses.Put(key, &analysisEntry{a: a, err: err})
	e.mu.Unlock()
	return a, err
}

// Explain returns the evaluation plan for q: the strategy the bound-driven
// planner selects plus the paper-derived rationale (acyclicity, color
// number, ρ*). The plan is structural — independent of any database — and
// cached like Analyze. The returned plan is shared; callers must not
// modify it.
func (e *Engine) Explain(q *Query) (*Plan, error) {
	key := q.String()
	e.mu.Lock()
	ent, ok := e.plans.Get(key)
	e.mu.Unlock()
	if ok {
		return ent.p, ent.err
	}
	p, err := plan.Choose(q)
	e.mu.Lock()
	e.plans.Put(key, &planEntry{p: p, err: err})
	e.mu.Unlock()
	return p, err
}

// Evaluate computes Q(D) under the planned strategy. For the project-early
// strategy over a free-standing database the atom order is re-derived from
// db's cardinality statistics on every call (the structural plan stays
// cached; the order is data-dependent and cheap); for an epoch snapshot the
// full data-dependent plan is cached per (query, epoch) — a snapshot's
// statistics never change, and a committed batch that inverts a skew gets a
// fresh plan under the new epoch's key instead of a stale one. When db is
// an epoch snapshot of this engine, the epoch is pinned for the duration:
// the retirement sweep will not reclaim its buffers mid-evaluation. When
// the engine was built WithSharding, joins and projections over relations
// above the row threshold run partition-parallel. Cancellation of ctx
// aborts evaluation mid-join.
func (e *Engine) Evaluate(ctx context.Context, q *Query, db *Database) (*Relation, EvalStats, error) {
	if e.tracingOn {
		out, st, _, err := e.EvaluateTraced(ctx, q, db)
		return out, st, err
	}
	if st := e.pinEpoch(db); st != nil {
		defer e.unpinEpoch(st)
	}
	p, err := e.planFor(q, db)
	if err != nil {
		return nil, EvalStats{}, err
	}
	opts, scope := e.evalOptions()
	defer scope.Close()
	return plan.ExecuteOpts(ctx, p, q, db, opts)
}

// planFor returns the evaluation plan for q over db. Epoch snapshots cache
// the complete cardinality-aware plan under (query text, epoch) — the
// snapshot is immutable, so the data-dependent atom order is as cacheable
// as the structural facts, and retiring the epoch prunes its entries.
// Free-standing databases keep the pre-epoch behavior: structural plan from
// the text-keyed cache, atom order re-derived per call.
func (e *Engine) planFor(q *Query, db *Database) (*plan.Plan, error) {
	p, _, err := e.planForHit(q, db)
	return p, err
}

// planForHit is planFor, also reporting whether the plan-cache lookup hit
// — the exact per-query cache delta a traced evaluation records (the
// Evaluate path makes exactly one plan-cache lookup and none against the
// analysis cache).
func (e *Engine) planForHit(q *Query, db *Database) (*plan.Plan, bool, error) {
	if db == nil || db.Epoch() == 0 {
		key := q.String()
		e.mu.Lock()
		ent, hit := e.plans.Get(key)
		e.mu.Unlock()
		var p *plan.Plan
		var err error
		if hit {
			p, err = ent.p, ent.err
		} else {
			p, err = plan.Choose(q)
			e.mu.Lock()
			e.plans.Put(key, &planEntry{p: p, err: err})
			e.mu.Unlock()
		}
		if err != nil {
			return nil, hit, err
		}
		if p.Strategy == StrategyProjectEarly {
			ordered := *p
			ordered.AtomOrder = plan.OrderAtoms(q, db)
			p = &ordered
		}
		return p, hit, nil
	}
	key := q.String() + epochKeySuffix(db.Epoch())
	e.mu.Lock()
	ent, ok := e.plans.Get(key)
	e.mu.Unlock()
	if ok {
		return ent.p, true, ent.err
	}
	p, err := plan.ChooseForDB(q, db)
	e.mu.Lock()
	e.plans.Put(key, &planEntry{p: p, err: err})
	e.mu.Unlock()
	return p, false, err
}

// ExplainDB returns the plan Evaluate would use for q over db, including
// the cardinality-dependent atom order — for an epoch snapshot, the cached
// per-(query, epoch) plan. The returned plan is shared; do not modify it.
func (e *Engine) ExplainDB(q *Query, db *Database) (*Plan, error) {
	return e.planFor(q, db)
}

// BoundRows returns the paper's pre-execution worst-case row bound for
// evaluating q over db under the planned strategy — Σ|Rᵢ| for Yannakakis
// (intermediates ≤ input + output), rmax^C of Thm 4.4 for project-early,
// the AGM bound rmax^ρ* for the generic join. The bound is known before
// the query runs, which is what lets a serving front-end's admission
// controller reserve memory (or queue or reject) instead of discovering an
// oversized query by thrashing. When a bound's inputs are unavailable (an
// unpriced exponent, a relation absent from db) it falls back to the total
// input rows; planning errors propagate.
func (e *Engine) BoundRows(q *Query, db *Database) (float64, error) {
	p, err := e.planFor(q, db)
	if err != nil {
		return 0, err
	}
	if rows, _, ok := plan.BoundRows(p, q, db); ok {
		return rows, nil
	}
	in := 0
	for _, a := range q.Body {
		if r := db.Relation(a.Relation); r != nil {
			in += r.Size()
		}
	}
	return float64(in), nil
}

// PlanInfo returns, in one call against the cached plan, what the serving
// path wants to know before (and record after) an evaluation: the chosen
// strategy's name, the paper's worst-case row bound (as BoundRows, with
// the same Σ|Rᵢ| fallback), and the System-R independence estimate of the
// output size. Bound versus estimate versus actual rows is the
// bound-calibration telemetry the server aggregates per strategy and
// query shape.
func (e *Engine) PlanInfo(q *Query, db *Database) (strategy string, bound, estimate float64, err error) {
	p, err := e.planFor(q, db)
	if err != nil {
		return "", 0, 0, err
	}
	if rows, _, ok := plan.BoundRows(p, q, db); ok {
		bound = rows
	} else {
		in := 0
		for _, a := range q.Body {
			if r := db.Relation(a.Relation); r != nil {
				in += r.Size()
			}
		}
		bound = float64(in)
	}
	return p.Strategy.String(), bound, eval.EstimateOutput(q, db), nil
}

// epochKeySuffix is appended to a query's text to form its per-epoch plan
// cache key. NUL cannot appear in canonical query text, so suffixed keys
// never collide with the structural (text-only) entries of Explain.
func epochKeySuffix(epoch uint64) string {
	return "\x00@" + strconv.FormatUint(epoch, 10)
}

// evalOptions returns the sharding options for one evaluation. Under a
// memory budget each evaluation gets its own spill scope: the governor
// buffers of intermediate shards — garbage once the evaluation's output
// is materialized — are discarded when the scope closes, so a long-lived
// engine's resident bytes, registry and segment files plateau at the
// memoized base partitions instead of growing per query. Both returns are
// nil-safe for their consumers.
func (e *Engine) evalOptions() (*shard.Options, *spill.Scope) {
	if e.sharding == nil || e.spill == nil {
		return e.sharding, nil
	}
	scope := spill.NewScope()
	o := *e.sharding
	o.Scope = scope
	return &o, scope
}

// BatchResult is one query's outcome from EvaluateBatch.
type BatchResult struct {
	// Output is Q(D); nil when Err is set.
	Output *Relation
	// Stats reports what the chosen strategy did.
	Stats EvalStats
	// Err is the query's own failure (planning or evaluation); one query
	// failing does not fail its siblings.
	Err error
}

// EvaluateBatch plans and evaluates the queries against db concurrently on
// a bounded worker pool (one worker per CPU), the serving loop of a system
// answering many queries over one database. Per-query failures land in the
// corresponding BatchResult; canceling ctx stops unstarted queries, whose
// results report the context error. Cached analyses and plans — and the
// statistics, hash indexes, tries and shard partitions memoized on db's
// relations — are shared across the batch.
func (e *Engine) EvaluateBatch(ctx context.Context, queries []*Query, db *Database) []BatchResult {
	out := make([]BatchResult, len(queries))
	started := make([]bool, len(queries))
	_ = pool.Run(ctx, 0, len(queries), func(i int) error {
		started[i] = true
		r, st, err := e.Evaluate(ctx, queries[i], db)
		out[i] = BatchResult{Output: r, Stats: st, Err: err}
		return nil
	})
	if err := ctx.Err(); err != nil {
		for i := range out {
			if !started[i] {
				out[i].Err = err
			}
		}
	}
	return out
}

// EvaluateStrategy forces a specific strategy, bypassing plan selection —
// the benchmarking and cross-checking hook. StrategyYannakakis fails on
// cyclic queries. The engine's sharding configuration applies as in
// Evaluate.
func (e *Engine) EvaluateStrategy(ctx context.Context, s Strategy, q *Query, db *Database) (*Relation, EvalStats, error) {
	if st := e.pinEpoch(db); st != nil {
		defer e.unpinEpoch(st)
	}
	forced := &plan.Plan{Strategy: s}
	if s == StrategyProjectEarly {
		forced.AtomOrder = plan.OrderAtoms(q, db)
	}
	opts, scope := e.evalOptions()
	defer scope.Close()
	return plan.ExecuteOpts(ctx, forced, q, db, opts)
}

// ChoosePlan exposes the planner directly for callers that manage their own
// execution: the structural plan plus, when db is non-nil, a
// cardinality-aware atom order.
func ChoosePlan(q *Query, db *Database) (*Plan, error) {
	if db == nil {
		return plan.Choose(q)
	}
	return plan.ChooseForDB(q, db)
}

// ExecutePlan runs a previously chosen plan.
func ExecutePlan(ctx context.Context, p *Plan, q *Query, db *Database) (*Relation, EvalStats, error) {
	return plan.Execute(ctx, p, q, db)
}
