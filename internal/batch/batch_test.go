package batch_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"cqbound/internal/batch"
	"cqbound/internal/relation"
	"cqbound/internal/shard"
)

// testSizes covers the degenerate one-row batch, a small odd size that
// forces partial-batch holds inside operators, and the default.
var testSizes = []int{1, 7, 1024}

func randomRel(rng *rand.Rand, name string, attrs []string, n, universe int) *relation.Relation {
	r := relation.New(name, attrs...)
	for i := 0; i < n; i++ {
		vals := make([]string, len(attrs))
		for j := range vals {
			vals[j] = fmt.Sprintf("u%d", rng.Intn(universe))
		}
		r.Add(vals...)
	}
	return r
}

func mustMaterialize(t *testing.T, it batch.Iterator, name string) *relation.Relation {
	t.Helper()
	out, err := batch.Materialize(context.Background(), it, name, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestScanRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := randomRel(rng, "R", []string{"a", "b", "c"}, 2500, 60)
	for _, size := range testSizes {
		got := mustMaterialize(t, batch.Scan(r, size, nil), "out")
		if !relation.Equal(got, r) {
			t.Fatalf("size %d: scan round trip lost rows: %d vs %d", size, got.Size(), r.Size())
		}
	}
	if got := mustMaterialize(t, batch.Scan(relation.New("E", "a"), 8, nil), "out"); got.Size() != 0 {
		t.Fatalf("empty scan produced %d rows", got.Size())
	}
}

func TestJoinProbeMatchesNaturalJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := randomRel(rng, "L", []string{"a", "b"}, 400, 30)
	r := randomRel(rng, "R", []string{"b", "c"}, 300, 30)
	want, err := relation.NaturalJoin(l, r)
	if err != nil {
		t.Fatal(err)
	}
	lCols, rCols := relation.SharedColsNames(l.Attrs, r.Attrs)
	pairs := make([][2]int, len(lCols))
	for i := range lCols {
		pairs[i] = [2]int{lCols[i], rCols[i]}
	}
	attrs, keep := relation.NaturalJoinSchema(l.Attrs, r.Attrs, rCols)
	for _, size := range testSizes {
		it := batch.Keep(batch.JoinProbe(batch.Scan(l, size, nil), r, pairs, size, nil), keep, attrs)
		got := mustMaterialize(t, it, "out")
		if !relation.Equal(got, want) {
			t.Fatalf("size %d: streamed join %d rows, natural join %d", size, got.Size(), want.Size())
		}
	}
}

func TestJoinProbeCrossProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := randomRel(rng, "L", []string{"a"}, 40, 50)
	r := randomRel(rng, "R", []string{"b"}, 30, 50)
	for _, size := range testSizes {
		got := mustMaterialize(t, batch.JoinProbe(batch.Scan(l, size, nil), r, nil, size, nil), "out")
		if got.Size() != l.Size()*r.Size() {
			t.Fatalf("size %d: cross product %d rows, want %d", size, got.Size(), l.Size()*r.Size())
		}
	}
}

func TestJoinProbeEmptyRightNeverPullsLeft(t *testing.T) {
	poison := &countingIter{src: batch.Scan(randomRel(rand.New(rand.NewSource(4)), "L", []string{"a"}, 10, 5), 4, nil)}
	it := batch.JoinProbe(poison, relation.New("E", "e"), [][2]int{{0, 0}}, 4, nil)
	if got := mustMaterialize(t, it, "out"); got.Size() != 0 {
		t.Fatalf("join with empty right produced %d rows", got.Size())
	}
	if poison.calls.Load() != 0 {
		t.Fatalf("empty right still pulled the left %d times", poison.calls.Load())
	}
}

func TestSemijoinMatchesSemijoinOn(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := randomRel(rng, "L", []string{"a", "b"}, 500, 25)
	r := randomRel(rng, "R", []string{"b", "c"}, 200, 25)
	lCols, rCols := relation.SharedColsNames(l.Attrs, r.Attrs)
	want, err := relation.SemijoinOn(l, r, lCols, rCols)
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range testSizes {
		got := mustMaterialize(t, batch.Semijoin(batch.Scan(l, size, nil), r, lCols, rCols, nil), "out")
		if !relation.Equal(got, want) {
			t.Fatalf("size %d: streamed semijoin %d rows, SemijoinOn %d", size, got.Size(), want.Size())
		}
	}
}

func TestProjectDeduplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	r := randomRel(rng, "R", []string{"a", "b", "c"}, 800, 8)
	want := relation.New("want", "c", "a")
	for i := 0; i < r.Size(); i++ {
		row := r.Row(i)
		want.Add(row.Strings()[2], row.Strings()[0])
	}
	for _, size := range testSizes {
		it := batch.Project(batch.Scan(r, size, nil), []int{2, 0}, []string{"c", "a"}, size, nil)
		got := mustMaterialize(t, it, "out")
		if !relation.Equal(got, want) {
			t.Fatalf("size %d: projection %d rows, want %d", size, got.Size(), want.Size())
		}
	}
}

func TestBufferedTeeAndReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := randomRel(rng, "R", []string{"a", "b"}, 3000, 500)
	for _, size := range testSizes {
		var governed atomic.Int64
		buf := batch.NewBuffered(batch.Scan(r, size, nil), "buf", size,
			func(*relation.Relation) { governed.Add(1) }, nil)
		// The tee passes the stream through unchanged...
		through := mustMaterialize(t, buf, "through")
		if !relation.Equal(through, r) {
			t.Fatalf("size %d: tee altered the stream", size)
		}
		// ...registering chunks with the governor as they seal, not in one
		// final lump.
		if governed.Load() < 2 {
			t.Fatalf("size %d: %d rows sealed into %d governed chunks, want incremental chunks", size, r.Size(), governed.Load())
		}
		// Replays are independent and may run concurrently.
		var wg sync.WaitGroup
		for i := 0; i < 3; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				replay, err := batch.Materialize(context.Background(), buf.Rewind(), "replay", nil, nil)
				if err != nil || !relation.Equal(replay, r) {
					t.Errorf("size %d: replay diverged (err %v)", size, err)
				}
			}()
		}
		wg.Wait()
		// Rel hands the recorded rows back as one relation.
		flat, err := buf.Rel(context.Background())
		if err != nil || !relation.Equal(flat, r) {
			t.Fatalf("size %d: Rel diverged (err %v)", size, err)
		}
	}
}

// TestBufferedReplayWaitsForDrain pins the blocking contract: a replay
// started before the tee finishes must deliver the full stream, not a
// prefix.
func TestBufferedReplayWaitsForDrain(t *testing.T) {
	r := randomRel(rand.New(rand.NewSource(8)), "R", []string{"a"}, 2048, 10_000)
	buf := batch.NewBuffered(batch.Scan(r, 64, nil), "buf", 64, nil, nil)
	done := make(chan *relation.Relation, 1)
	go func() {
		replay, err := batch.Materialize(context.Background(), buf.Rewind(), "replay", nil, nil)
		if err != nil {
			t.Error(err)
		}
		done <- replay
	}()
	if err := buf.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if replay := <-done; !relation.Equal(replay, r) {
		t.Fatalf("early replay saw %d rows, want %d", replay.Size(), r.Size())
	}
}

func TestExchangeRepartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	r := randomRel(rng, "R", []string{"a", "b"}, 4000, 300)
	for _, p := range []int{2, 5} {
		for _, size := range []int{7, 256} {
			// Feed the exchange from 3 arbitrary slices of the input.
			srcs := make([]batch.Iterator, 0, 3)
			parts := shard.Partition(r, 1, 3)
			for k := 0; k < parts.P(); k++ {
				srcs = append(srcs, batch.Scan(parts.Shard(k), size, nil))
			}
			var governed, routedRows atomic.Int64
			ex := batch.NewExchange(srcs, r.Attrs, 0, p, size, 0,
				func(*relation.Relation) { governed.Add(1) },
				func(n int) { routedRows.Add(int64(n)) }, nil)
			outs := make([]*relation.Relation, p)
			var wg sync.WaitGroup
			for k := 0; k < p; k++ {
				k := k
				wg.Add(1)
				go func() {
					defer wg.Done()
					out, err := batch.Materialize(context.Background(), ex.Part(k), "part", nil, nil)
					if err != nil {
						t.Error(err)
						return
					}
					outs[k] = out
				}()
			}
			wg.Wait()
			union := relation.New("U", "a", "b")
			total := 0
			for k, out := range outs {
				total += out.Size()
				for i := 0; i < out.Size(); i++ {
					if got := shard.ShardOf(out.At(i, 0), p); got != k {
						t.Fatalf("p=%d size=%d: row routed to part %d, ShardOf says %d", p, size, k, got)
					}
					union.Insert(out.Row(i))
				}
			}
			if total != r.Size() || !relation.Equal(union, r) {
				t.Fatalf("p=%d size=%d: exchange emitted %d rows, want %d", p, size, total, r.Size())
			}
			if routedRows.Load() != int64(r.Size()) {
				t.Fatalf("p=%d size=%d: onRows saw %d rows, want %d", p, size, routedRows.Load(), r.Size())
			}
			// 4000 rows over p parts with 1024-row chunks: at least one part
			// sealed a chunk into the governor before its consumer finished.
			if p == 2 && governed.Load() == 0 {
				t.Fatalf("p=%d size=%d: no chunk ever registered with the governor", p, size)
			}
		}
	}
}

func TestExchangeFlagsHotPart(t *testing.T) {
	r := relation.New("R", "a", "b")
	for i := 0; i < 5000; i++ {
		r.Add("hub", fmt.Sprintf("x%d", i)) // every row routes to one part
	}
	ex := batch.NewExchange([]batch.Iterator{batch.Scan(r, 256, nil)}, r.Attrs, 0, 4, 256, 0.2, nil, nil, nil)
	hot := shard.ShardOf(r.At(0, 0), 4)
	total := 0
	for k := 0; k < 4; k++ {
		out := mustMaterialize(t, ex.Part(k), "part")
		total += out.Size()
		if k != hot && out.Size() != 0 {
			t.Fatalf("part %d received %d rows, all keys hash to %d", k, out.Size(), hot)
		}
	}
	if total != r.Size() {
		t.Fatalf("exchange emitted %d rows, want %d", total, r.Size())
	}
	if !ex.Hot(hot) {
		t.Fatal("part holding 100% of the rows was never flagged hot")
	}
	for k := 0; k < 4; k++ {
		if k != hot && ex.Hot(k) {
			t.Fatalf("empty part %d flagged hot", k)
		}
	}
}

// countingIter counts pulls; safeIter serves a relation batch-by-batch
// under a mutex so replicated Grow chains can share it.
type countingIter struct {
	src   batch.Iterator
	calls atomic.Int64
}

func (c *countingIter) Attrs() []string { return c.src.Attrs() }
func (c *countingIter) Next(ctx context.Context) (*batch.Batch, error) {
	c.calls.Add(1)
	return c.src.Next(ctx)
}

type safeIter struct {
	mu  sync.Mutex
	src batch.Iterator
}

func (s *safeIter) Attrs() []string { return s.src.Attrs() }
func (s *safeIter) Next(ctx context.Context) (*batch.Batch, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, err := s.src.Next(ctx)
	if b != nil {
		// Callers on other goroutines outlive our next Next; hand out a copy.
		cp := relation.NewFromColumns("cp", s.src.Attrs(), func() [][]relation.Value {
			cols := make([][]relation.Value, len(b.Cols))
			for i := range cols {
				cols[i] = append([]relation.Value(nil), b.Cols[i][:b.N]...)
			}
			return cols
		}())
		return &batch.Batch{Cols: func() [][]relation.Value {
			cols := make([][]relation.Value, cp.Arity())
			for i := range cols {
				cols[i] = cp.Column(i)
			}
			return cols
		}(), N: cp.Size()}, nil
	}
	return b, err
}

func TestGrowSplitsWhenHot(t *testing.T) {
	r := randomRel(rand.New(rand.NewSource(10)), "R", []string{"a"}, 600, 10_000)
	shared := &safeIter{src: batch.Scan(r, 16, nil)}
	var chains, splits atomic.Int64
	mk := func() batch.Iterator {
		chains.Add(1)
		return shared
	}
	it := batch.Grow(mk, r.Attrs, func() bool { return true }, func() { splits.Add(1) })
	got := mustMaterialize(t, it, "out")
	if !relation.Equal(got, r) {
		t.Fatalf("grown chains lost rows: %d vs %d", got.Size(), r.Size())
	}
	if chains.Load() != 2 || splits.Load() != 1 {
		t.Fatalf("hot source grew %d chains (%d splits), want 2 (1)", chains.Load(), splits.Load())
	}
}

func TestGrowStaysSingleWhenCold(t *testing.T) {
	r := randomRel(rand.New(rand.NewSource(11)), "R", []string{"a"}, 200, 10_000)
	var chains atomic.Int64
	mk := func() batch.Iterator {
		chains.Add(1)
		return batch.Scan(r, 32, nil)
	}
	it := batch.Grow(mk, r.Attrs, func() bool { return false }, nil)
	got := mustMaterialize(t, it, "out")
	if !relation.Equal(got, r) || chains.Load() != 1 {
		t.Fatalf("cold source: %d rows from %d chains, want %d from 1", got.Size(), chains.Load(), r.Size())
	}
}

func TestFanMergesChains(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	halves := []*relation.Relation{
		randomRel(rng, "A", []string{"a", "b"}, 700, 10_000),
		randomRel(rng, "B", []string{"a", "b"}, 900, 10_000),
		randomRel(rng, "C", []string{"a", "b"}, 1, 10_000),
	}
	mks := make([]func() batch.Iterator, len(halves))
	for i, h := range halves {
		h := h
		mks[i] = func() batch.Iterator { return batch.Scan(h, 64, nil) }
	}
	got := mustMaterialize(t, batch.Fan(mks, halves[0].Attrs), "out")
	want := relation.New("want", "a", "b")
	for _, h := range halves {
		for i := 0; i < h.Size(); i++ {
			want.Insert(h.Row(i))
		}
	}
	if !relation.Equal(got, want) {
		t.Fatalf("fan merged %d rows, want %d", got.Size(), want.Size())
	}
}

func TestMetricsSnapshot(t *testing.T) {
	m := &batch.Metrics{}
	r := randomRel(rand.New(rand.NewSource(13)), "R", []string{"a", "b"}, 100, 50)
	if _, err := batch.Materialize(context.Background(), batch.Scan(r, 16, m), "out", nil, m); err != nil {
		t.Fatal(err)
	}
	st := m.Snapshot()
	if st.BatchesProduced == 0 || st.RowsStreamed != int64(r.Size()) {
		t.Fatalf("stats after a scan+materialize: %+v", st)
	}
	m.Reset()
	if st := m.Snapshot(); st != (batch.Stats{}) {
		t.Fatalf("reset left counters: %+v", st)
	}
}
