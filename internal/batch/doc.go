// Package batch implements pull-based vectorized execution: pipelines of
// composable iterators moving fixed-size column batches of interned
// relation.Values, so an operator chain holds one batch per stage instead
// of one materialized relation per operator.
//
// # Iterator contract
//
// An Iterator produces batches via Next(ctx): (*Batch, nil) for data,
// (nil, nil) for end of stream, (nil, err) on failure, after which the
// iterator is dead. The batch and its column slices are OWNED BY THE
// ITERATOR and valid only until the following Next call on that iterator —
// stages reuse their output buffers, and scans alias relation storage. A
// consumer that retains rows across pulls must copy them out (Batch columns
// are plain slices, so an append-based copy is one line; clone exists for
// the goroutine-handoff case). Holding a partially consumed input batch
// between an operator's own Next calls is legal — the input is only pulled
// again once the hold is spent — which is how Project and JoinProbe resume
// mid-batch when their output fills.
//
// Batches are views: columns may alias a relation's storage (Scan, replay)
// or an upstream batch (Keep, Semijoin pass-through). N may be short; only
// Cols[c][:N] is meaningful. Iterators are single-consumer unless
// documented otherwise — Exchange parts are the concurrent-safe exception,
// which is what Grow replicates a chain over.
//
// # Rewind semantics
//
// Some inputs must be iterated more than once (probe sides, semijoin
// filters, down-pass parents). Buffered tees a pipeline into chunk
// relations as it is pulled; once the source is drained — and only then —
// Rewind replays the recorded rows and Rel flattens them into one relation
// (counted as a buffered fallback in Metrics). Rewind before end of stream
// panics rather than silently replaying a prefix.
//
// # Governor registration
//
// Streamed execution still creates relations at three points: sealed chunks
// of a Buffered tee, sealed chunks of an Exchange's output shards, and
// Materialize sinks. Each is handed to a govern callback as it is created,
// so residency registers with the spill.Governor incrementally — chunk by
// chunk while the stream flows — and the governor can evict cold chunks
// while the pipeline is still running. Replays Pin each chunk only for the
// duration of a single batch cut, so a parked chunk is reloaded at most
// once per pass and never held resident whole.
package batch
