package batch

// Column batches, the iterator contract, and the single-input pipeline
// stages (scan, join probe, semijoin, projection, materialize, buffered
// replay). The multi-input exchange and the skew-growing merge live in
// exchange.go; package documentation in doc.go.

import (
	"context"
	"sync/atomic"

	"cqbound/internal/relation"
)

// DefaultSize is the batch row count used when a caller leaves the size
// unset: large enough that per-batch overhead (interface calls, context
// checks) amortizes to nothing, small enough that one batch per pipeline
// stage stays cache-resident.
const DefaultSize = 1024

// Batch is a fixed-capacity slice of rows in columnar layout: Cols[c][i] is
// row i's value in column c, every column holding exactly N values. Columns
// may alias the storage of a relation or of an upstream batch — batches are
// views, not owners — and N may be smaller than the pipeline's batch size
// (operators emit short batches at chunk and stream boundaries rather than
// stalling to fill).
type Batch struct {
	Cols [][]relation.Value
	N    int
}

// Iterator is the pull contract of a pipeline stage: Next returns the next
// batch, or (nil, nil) at end of stream. The returned batch and its columns
// are owned by the iterator and valid only until the following Next call —
// operators reuse their output buffers — so a consumer that retains values
// across pulls must copy them out. Attrs names the columns of every batch
// the iterator produces. Iterators are single-consumer unless documented
// otherwise (Exchange parts are the concurrent-safe exception).
type Iterator interface {
	Attrs() []string
	Next(ctx context.Context) (*Batch, error)
}

// Metrics counts what streamed execution did. All counters are atomic: one
// Metrics may be shared across concurrent evaluations (the Engine does).
// Methods on a nil *Metrics are no-ops, so operators count unconditionally.
type Metrics struct {
	// Batches counts batches emitted by pipeline stages.
	Batches atomic.Int64
	// Rows counts rows flowing out of pipeline stages (a row passing
	// through k stages counts k times — the streamed analogue of the rows
	// the materialized operators would have copied k times).
	Rows atomic.Int64
	// BufferedFallbacks counts pipelines that had to be buffered into a
	// relation after all — probe sides of joins and semijoins, inputs
	// that are re-iterated.
	BufferedFallbacks atomic.Int64
	// BytesStreamed is the column bytes emitted by pipeline stages.
	BytesStreamed atomic.Int64
	// BytesMaterialized is the column bytes pipelines wrote into relations
	// (exchange chunks, buffered fallbacks, final sinks).
	BytesMaterialized atomic.Int64
}

// Stats is a point-in-time copy of Metrics.
type Stats struct {
	// BatchesProduced is the number of batches pipeline stages emitted.
	BatchesProduced int64
	// RowsStreamed is the number of rows that flowed out of pipeline
	// stages, counted once per stage passed.
	RowsStreamed int64
	// BufferedFallbacks counts pipelines forced into a materialized
	// relation (probe sides, re-iterated inputs).
	BufferedFallbacks int64
	// BytesNeverMaterialized is the column bytes that flowed through
	// stages minus the bytes some stage wrote into a relation — the
	// allocation the materialized executor would have paid and the
	// streamed one never did.
	BytesNeverMaterialized int64
}

// Snapshot copies the counters (nil-safe: a nil receiver reads all zeros).
func (m *Metrics) Snapshot() Stats {
	if m == nil {
		return Stats{}
	}
	saved := m.BytesStreamed.Load() - m.BytesMaterialized.Load()
	if saved < 0 {
		saved = 0
	}
	return Stats{
		BatchesProduced:        m.Batches.Load(),
		RowsStreamed:           m.Rows.Load(),
		BufferedFallbacks:      m.BufferedFallbacks.Load(),
		BytesNeverMaterialized: saved,
	}
}

// AddTo merges this Metrics' counts into dst (both nil-safe). The Engine
// runs traced evaluations against a private Metrics so the per-query
// delta is exact, then folds it into the shared engine-wide counters.
func (m *Metrics) AddTo(dst *Metrics) {
	if m == nil || dst == nil {
		return
	}
	dst.Batches.Add(m.Batches.Load())
	dst.Rows.Add(m.Rows.Load())
	dst.BufferedFallbacks.Add(m.BufferedFallbacks.Load())
	dst.BytesStreamed.Add(m.BytesStreamed.Load())
	dst.BytesMaterialized.Add(m.BytesMaterialized.Load())
}

// Reset zeroes every counter (nil-safe).
func (m *Metrics) Reset() {
	if m == nil {
		return
	}
	m.Batches.Store(0)
	m.Rows.Store(0)
	m.BufferedFallbacks.Store(0)
	m.BytesStreamed.Store(0)
	m.BytesMaterialized.Store(0)
}

// emitted records one batch of rows×cols values leaving a stage.
func (m *Metrics) emitted(rows, cols int) {
	if m == nil || rows == 0 {
		return
	}
	m.Batches.Add(1)
	m.Rows.Add(int64(rows))
	m.BytesStreamed.Add(int64(rows) * int64(cols) * 4)
}

// materialized records rows×cols values written into a relation.
func (m *Metrics) materialized(rows, cols int) {
	if m == nil || rows == 0 {
		return
	}
	m.BytesMaterialized.Add(int64(rows) * int64(cols) * 4)
}

// fallback records one pipeline buffered into a relation.
func (m *Metrics) fallback() {
	if m != nil {
		m.BufferedFallbacks.Add(1)
	}
}

// sizeOr returns size, or DefaultSize when size is unset.
func sizeOr(size int) int {
	if size <= 0 {
		return DefaultSize
	}
	return size
}

// Scan streams a relation as batches of up to size rows. Batches alias the
// relation's column storage (zero copy); under a spill governor the source
// is pinned only across each individual Next, so a parked relation streams
// out without being held resident whole.
func Scan(r *relation.Relation, size int, m *Metrics) Iterator {
	return &scanIter{r: r, size: sizeOr(size), m: m}
}

type scanIter struct {
	r    *relation.Relation
	size int
	pos  int
	m    *Metrics
	out  Batch
}

func (s *scanIter) Attrs() []string { return s.r.Attrs }

func (s *scanIter) Next(ctx context.Context) (*Batch, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n := s.r.Size() - s.pos
	if n <= 0 {
		return nil, nil
	}
	if n > s.size {
		n = s.size
	}
	// Pin across the column reads so a governed relation reloads at most
	// once per batch; the returned snapshots stay valid after Unpin.
	s.r.Pin()
	arity := s.r.Arity()
	if s.out.Cols == nil {
		s.out.Cols = make([][]relation.Value, arity)
	}
	for c := 0; c < arity; c++ {
		s.out.Cols[c] = s.r.Column(c)[s.pos : s.pos+n]
	}
	s.r.Unpin()
	s.out.N = n
	s.pos += n
	s.m.emitted(n, arity)
	return &s.out, nil
}

// JoinProbe streams the hash join of a left pipeline against a relation:
// each left batch probes right's memoized index on the given column pairs
// (left position, right position) and matching row pairs are emitted in the
// raw all-left-columns-then-all-right-columns layout — the caller projects
// with Keep. Empty pairs means a cross product. The right side is the
// buffered operand: it must be a relation because every left row may match
// anywhere in it.
func JoinProbe(left Iterator, right *relation.Relation, pairs [][2]int, size int, m *Metrics) Iterator {
	attrs := make([]string, 0, len(left.Attrs())+right.Arity())
	attrs = append(attrs, left.Attrs()...)
	attrs = append(attrs, right.Attrs...)
	return &joinIter{left: left, right: right, pairs: pairs, attrs: attrs, size: sizeOr(size), m: m}
}

type joinIter struct {
	left  Iterator
	right *relation.Relation
	pairs [][2]int
	attrs []string
	size  int
	m     *Metrics

	started bool
	done    bool
	ix      *relation.Index // nil for cross products
	rcols   [][]relation.Value

	cur     *Batch  // current left batch
	row     int     // next left row to probe
	matches []int32 // right rows matching cur[row-1] not yet emitted
	mpos    int

	out  Batch
	keys []byte
}

func (j *joinIter) Attrs() []string { return j.attrs }

// start builds the probe state on first pull: the memoized index over the
// right side's join columns and a column snapshot to copy matches from.
func (j *joinIter) start() {
	j.started = true
	if j.right.Size() == 0 {
		j.done = true // join with an empty side is empty; never pull left
		return
	}
	if len(j.pairs) > 0 {
		cols := make([]int, len(j.pairs))
		for i, p := range j.pairs {
			cols[i] = p[1]
		}
		j.ix = j.right.Index(cols...)
	}
	j.right.Pin()
	j.rcols = make([][]relation.Value, j.right.Arity())
	for c := range j.rcols {
		j.rcols[c] = j.right.Column(c)
	}
	j.right.Unpin()
	j.out.Cols = make([][]relation.Value, len(j.attrs))
	for c := range j.out.Cols {
		j.out.Cols[c] = make([]relation.Value, 0, j.size)
	}
}

func (j *joinIter) Next(ctx context.Context) (*Batch, error) {
	if !j.started {
		j.start()
	}
	if j.done {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	lar := len(j.attrs) - len(j.rcols)
	for c := range j.out.Cols {
		j.out.Cols[c] = j.out.Cols[c][:0]
	}
	n := 0
	for n < j.size {
		// Drain pending matches of the current left row.
		for j.mpos < len(j.matches) && n < j.size {
			ri := int(j.matches[j.mpos])
			j.mpos++
			lrow := j.row - 1
			for c := 0; c < lar; c++ {
				j.out.Cols[c] = append(j.out.Cols[c], j.cur.Cols[c][lrow])
			}
			for c, col := range j.rcols {
				j.out.Cols[lar+c] = append(j.out.Cols[lar+c], col[ri])
			}
			n++
		}
		if n == j.size {
			break
		}
		// Advance to the next left row, pulling a fresh batch when the
		// current one is exhausted.
		if j.cur == nil || j.row >= j.cur.N {
			b, err := j.left.Next(ctx)
			if err != nil {
				return nil, err
			}
			if b == nil {
				j.done = true
				break
			}
			j.cur, j.row = b, 0
		}
		if j.ix == nil {
			// Cross product: every right row matches.
			j.matches = allRows(j.right.Size())
			j.mpos = 0
			j.row++
			continue
		}
		j.keys = j.keys[:0]
		for _, p := range j.pairs {
			j.keys = appendValue(j.keys, j.cur.Cols[p[0]][j.row])
		}
		j.matches = j.ix.Rows(j.keys)
		j.mpos = 0
		j.row++
	}
	if n == 0 {
		return nil, nil
	}
	j.out.N = n
	j.m.emitted(n, len(j.attrs))
	return &j.out, nil
}

// allRows returns [0..n) as probe-match indices (cross products).
func allRows(n int) []int32 {
	rows := make([]int32, n)
	for i := range rows {
		rows[i] = int32(i)
	}
	return rows
}

// appendValue packs v like relation.KeyFor does, so probe keys match the
// index's fixed-width packing.
func appendValue(buf []byte, v relation.Value) []byte {
	u := uint32(v)
	return append(buf, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
}

// Semijoin streams left ⋉ right: left rows with at least one match in
// right on the given column pairs (left position, right position) pass
// through; the rest are dropped. With no pairs the stage degrades like
// relation.Semijoin: everything passes unless right is empty, in which
// case the left pipeline is never pulled. Right is the buffered operand
// (a surviving row may match anywhere in it).
func Semijoin(left Iterator, right *relation.Relation, lCols, rCols []int, m *Metrics) Iterator {
	return &semiIter{left: left, right: right, lCols: lCols, rCols: rCols, m: m}
}

type semiIter struct {
	left         Iterator
	right        *relation.Relation
	lCols, rCols []int
	m            *Metrics

	started bool
	done    bool
	ix      *relation.Index

	out  Batch
	keys []byte
}

func (s *semiIter) Attrs() []string { return s.left.Attrs() }

func (s *semiIter) Next(ctx context.Context) (*Batch, error) {
	if !s.started {
		s.started = true
		if len(s.lCols) > 0 {
			if s.right.Size() == 0 {
				s.done = true // nothing can match; never pull left
			} else {
				s.ix = s.right.Index(s.rCols...)
			}
		} else if s.right.Size() == 0 {
			s.done = true
		}
	}
	if s.done {
		return nil, nil
	}
	for {
		b, err := s.left.Next(ctx)
		if err != nil {
			return nil, err
		}
		if b == nil {
			s.done = true
			return nil, nil
		}
		if s.ix == nil {
			// No shared columns and right nonempty: pass through.
			s.m.emitted(b.N, len(b.Cols))
			return b, nil
		}
		if s.out.Cols == nil {
			s.out.Cols = make([][]relation.Value, len(b.Cols))
		}
		for c := range s.out.Cols {
			s.out.Cols[c] = s.out.Cols[c][:0]
		}
		n := 0
		for i := 0; i < b.N; i++ {
			s.keys = s.keys[:0]
			for _, c := range s.lCols {
				s.keys = appendValue(s.keys, b.Cols[c][i])
			}
			if !s.ix.Has(s.keys) {
				continue
			}
			for c := range b.Cols {
				s.out.Cols[c] = append(s.out.Cols[c], b.Cols[c][i])
			}
			n++
		}
		if n == 0 {
			continue // whole batch filtered; pull the next one
		}
		s.out.N = n
		s.m.emitted(n, len(b.Cols))
		return &s.out, nil
	}
}

// Keep is the stateless column projection: each output batch reslices the
// input batch's columns at the kept positions (repeats allowed), renamed to
// attrs. Zero copy and duplicate-preserving — the natural-join schema step
// after a raw JoinProbe, not a relational projection (Project dedups).
func Keep(in Iterator, keep []int, attrs []string) Iterator {
	return &keepIter{in: in, keep: keep, attrs: attrs}
}

type keepIter struct {
	in    Iterator
	keep  []int
	attrs []string
	out   Batch
}

func (k *keepIter) Attrs() []string { return k.attrs }

func (k *keepIter) Next(ctx context.Context) (*Batch, error) {
	b, err := k.in.Next(ctx)
	if err != nil || b == nil {
		return nil, err
	}
	if k.out.Cols == nil {
		k.out.Cols = make([][]relation.Value, len(k.keep))
	}
	for i, c := range k.keep {
		k.out.Cols[i] = b.Cols[c][:b.N]
	}
	k.out.N = b.N
	return &k.out, nil
}

// Project is the streaming duplicate-eliminating projection onto idx
// (repeats allowed): the first occurrence of each projected row passes,
// later duplicates are dropped. The dedup set grows with the number of
// distinct output rows — the one stateful stage of a pipeline, which is why
// the routing layer partitions before projecting; within one shard it is
// exactly the state relation.ProjectIdx would build.
func Project(in Iterator, idx []int, attrs []string, size int, m *Metrics) Iterator {
	return &projIter{in: in, idx: idx, attrs: attrs, size: sizeOr(size), seen: make(map[string]struct{}), m: m}
}

type projIter struct {
	in    Iterator
	idx   []int
	attrs []string
	size  int
	seen  map[string]struct{}
	m     *Metrics
	done  bool
	cur   *Batch // partially consumed input batch
	row   int
	out   Batch
	keys  []byte
}

func (p *projIter) Attrs() []string { return p.attrs }

func (p *projIter) Next(ctx context.Context) (*Batch, error) {
	if p.done && p.cur == nil {
		return nil, nil
	}
	if p.out.Cols == nil {
		p.out.Cols = make([][]relation.Value, len(p.idx))
		for c := range p.out.Cols {
			p.out.Cols[c] = make([]relation.Value, 0, p.size)
		}
	}
	for c := range p.out.Cols {
		p.out.Cols[c] = p.out.Cols[c][:0]
	}
	n := 0
	for n < p.size {
		// Refill from the input when the held batch is exhausted. Holding a
		// partially consumed batch across Next calls is within the iterator
		// contract: the input is pulled again only after the hold is spent.
		if p.cur == nil || p.row >= p.cur.N {
			p.cur = nil
			if p.done {
				break
			}
			b, err := p.in.Next(ctx)
			if err != nil {
				return nil, err
			}
			if b == nil {
				p.done = true
				break
			}
			p.cur, p.row = b, 0
		}
		for ; p.row < p.cur.N && n < p.size; p.row++ {
			p.keys = p.keys[:0]
			for _, c := range p.idx {
				p.keys = appendValue(p.keys, p.cur.Cols[c][p.row])
			}
			if _, dup := p.seen[string(p.keys)]; dup {
				continue
			}
			p.seen[string(p.keys)] = struct{}{}
			for j, c := range p.idx {
				p.out.Cols[j] = append(p.out.Cols[j], p.cur.Cols[c][p.row])
			}
			n++
		}
	}
	if n == 0 {
		return nil, nil
	}
	p.out.N = n
	p.m.emitted(n, len(p.idx))
	return &p.out, nil
}

// Empty returns an iterator over the given schema producing no batches.
func Empty(attrs []string) Iterator { return emptyIter{attrs: attrs} }

type emptyIter struct{ attrs []string }

func (e emptyIter) Attrs() []string                      { return e.attrs }
func (e emptyIter) Next(context.Context) (*Batch, error) { return nil, nil }

// Materialize drains a pipeline into a relation named name. The source must
// produce globally distinct rows (every stage in this package preserves set
// semantics), so the sink appends columns without a dedup pass. govern, when
// non-nil, is applied to the built relation before it is returned —
// registration with a spill governor and evaluation scope.
func Materialize(ctx context.Context, it Iterator, name string, govern func(*relation.Relation), m *Metrics) (*relation.Relation, error) {
	attrs := it.Attrs()
	cols := make([][]relation.Value, len(attrs))
	rows := 0
	for {
		b, err := it.Next(ctx)
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		for c := range cols {
			cols[c] = append(cols[c], b.Cols[c][:b.N]...)
		}
		rows += b.N
	}
	if rows == 0 {
		return relation.New(name, attrs...), nil
	}
	out := relation.NewFromColumns(name, attrs, cols)
	m.materialized(rows, len(attrs))
	if govern != nil {
		govern(out)
	}
	return out, nil
}

// Buffered tees a pipeline into governed chunk relations as it is pulled:
// batches pass through unchanged while their rows are copied into chunks of
// chunkRows rows, each sealed chunk registering with the spill governor (via
// the govern callback) as it fills — a rewindable input pays its residency
// incrementally instead of on first replay. After the source is exhausted,
// Rewind replays the recorded rows and Rel returns them as one relation.
type Buffered struct {
	src    Iterator
	name   string
	size   int
	chunk  int
	govern func(*relation.Relation)
	m      *Metrics

	chunks  []*relation.Relation
	open    [][]relation.Value
	openN   int
	done    bool
	drained chan struct{}
}

// bufferedChunkRows returns the rows per sealed chunk for a batch size:
// at least one batch, at least 1024 rows, so tiny batch sizes don't pay a
// governor registration per handful of rows.
func bufferedChunkRows(size int) int {
	if size < 1024 {
		return 1024
	}
	return size
}

// NewBuffered wraps src. govern (nil ok) is applied to every sealed chunk.
func NewBuffered(src Iterator, name string, size int, govern func(*relation.Relation), m *Metrics) *Buffered {
	size = sizeOr(size)
	return &Buffered{src: src, name: name, size: size, chunk: bufferedChunkRows(size), govern: govern, m: m, drained: make(chan struct{})}
}

// Attrs returns the source's schema.
func (b *Buffered) Attrs() []string { return b.src.Attrs() }

// Next pulls from the source, records the batch, and passes it through.
func (b *Buffered) Next(ctx context.Context) (*Batch, error) {
	bt, err := b.src.Next(ctx)
	if err != nil {
		return nil, err
	}
	if bt == nil {
		b.finish()
		return nil, nil
	}
	if b.open == nil {
		b.open = make([][]relation.Value, len(bt.Cols))
	}
	for c := range b.open {
		b.open[c] = append(b.open[c], bt.Cols[c][:bt.N]...)
	}
	b.openN += bt.N
	if b.openN >= b.chunk {
		b.seal()
	}
	return bt, nil
}

// seal converts the open columns into a governed chunk relation.
func (b *Buffered) seal() {
	if b.openN == 0 {
		return
	}
	r := relation.NewFromColumns(b.name, b.src.Attrs(), b.open)
	b.m.materialized(b.openN, len(b.open))
	if b.govern != nil {
		b.govern(r)
	}
	b.chunks = append(b.chunks, r)
	b.open, b.openN = nil, 0
}

// finish seals the trailing partial chunk at end of stream and releases
// any replay iterators waiting on the drain.
func (b *Buffered) finish() {
	if !b.done {
		b.done = true
		b.seal()
		close(b.drained)
	}
}

// Drain pulls the source to end of stream, recording everything.
func (b *Buffered) Drain(ctx context.Context) error {
	for !b.done {
		if _, err := b.Next(ctx); err != nil {
			return err
		}
	}
	return nil
}

// Rewind returns an iterator replaying the recorded rows from the governed
// chunks. The replay's first Next blocks until the source has been drained
// to end of stream (Drain, or Next until nil) — a partial replay would
// silently drop the source's tail — so replay iterators may be handed to
// concurrent consumers while another goroutine is still pulling the tee,
// as long as that goroutine is guaranteed to finish. Each call returns an
// independent replay; replays of one Buffered may run concurrently.
func (b *Buffered) Rewind() Iterator {
	return &replayIter{b: b, size: b.size}
}

// Rel drains any remainder of the source and returns the recorded rows as
// one relation (governed via the same callback as the chunks), counting a
// buffered fallback: the pipeline had to become a relation after all.
func (b *Buffered) Rel(ctx context.Context) (*relation.Relation, error) {
	if err := b.Drain(ctx); err != nil {
		return nil, err
	}
	b.m.fallback()
	switch len(b.chunks) {
	case 0:
		return relation.New(b.name, b.src.Attrs()...), nil
	case 1:
		return b.chunks[0], nil
	}
	flat, err := relation.Concat(b.name, b.src.Attrs(), b.chunks...)
	if err != nil {
		return nil, err
	}
	b.m.materialized(flat.Size(), flat.Arity())
	if b.govern != nil {
		b.govern(flat)
	}
	return flat, nil
}

type replayIter struct {
	b     *Buffered
	size  int
	chunk int
	pos   int
	out   Batch
}

func (r *replayIter) Attrs() []string { return r.b.src.Attrs() }

func (r *replayIter) Next(ctx context.Context) (*Batch, error) {
	select {
	case <-r.b.drained:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	for r.chunk < len(r.b.chunks) {
		c := r.b.chunks[r.chunk]
		n := c.Size() - r.pos
		if n <= 0 {
			r.chunk++
			r.pos = 0
			continue
		}
		if n > r.size {
			n = r.size
		}
		if r.out.Cols == nil {
			r.out.Cols = make([][]relation.Value, c.Arity())
		}
		c.Pin()
		for i := range r.out.Cols {
			r.out.Cols[i] = c.Column(i)[r.pos : r.pos+n]
		}
		c.Unpin()
		r.out.N = n
		r.pos += n
		r.b.m.emitted(n, c.Arity())
		return &r.out, nil
	}
	return nil, nil
}

// clone deep-copies a batch — the escape hatch for consumers that must hand
// a batch across a goroutine boundary while the producer keeps pulling.
func (b *Batch) clone() *Batch {
	out := &Batch{Cols: make([][]relation.Value, len(b.Cols)), N: b.N}
	for c := range b.Cols {
		out.Cols[c] = append([]relation.Value(nil), b.Cols[c][:b.N]...)
	}
	return out
}
