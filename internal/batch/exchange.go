package batch

// The streaming exchange: repartitioning a set of source pipelines onto a
// new key without materializing either side whole, plus the skew-growing
// merge that splits a hot output shard into parallel pulls while the
// exchange is still scattering.

import (
	"context"
	"sync"

	"cqbound/internal/relation"
)

// hotMinRows is the scattered-row floor below which hot detection stays
// off: a shard cannot be declared hot until the exchange has seen enough
// rows for the fractions to mean anything.
const hotMinRows = 4096

// Exchange repartitions source pipelines onto column key at partition
// count p. Output shard k (Part(k)) receives exactly the rows whose key
// value hashes to k, in batches of up to size rows.
//
// The exchange is pull-driven and cooperative: whichever output shard is
// pulled next claims an idle source, drains one batch from it outside the
// exchange lock — so upstream stages of different sources still run in
// parallel — and scatters the rows into per-shard pending chunks under the
// lock. Chunks reaching chunk size are sealed into relations and handed to
// the govern callback, which registers them with the spill governor and the
// evaluation's scope: a repartitioned stream becomes governed residency
// incrementally, as it flows, never as one whole relation.
//
// Part iterators are safe for concurrent use by the downstream per-shard
// pipelines. Hot(k) reports whether shard k has received more than frac of
// all scattered rows (sticky once set) — the signal Grow uses to split a
// hot shard's downstream work while the exchange is still running. onRows,
// when non-nil, observes every scattered batch's row count (the routing
// layer's exchanged-rows counter).
type Exchange struct {
	attrs  []string
	key    int
	p      int
	size   int
	chunk  int
	frac   float64
	govern func(*relation.Relation)
	onRows func(int)
	m      *Metrics

	mu      sync.Mutex
	cond    *sync.Cond
	src     []Iterator
	busy    []bool
	srcDone int
	pend    []*pendQueue
	total   int
	done    bool
	err     error
}

// pendQueue is one output shard's FIFO of scattered rows: sealed governed
// chunk relations awaiting read, then an open chunk still being appended.
type pendQueue struct {
	sealed    []*relation.Relation
	read      int // consumed rows of sealed[0]
	open      [][]relation.Value
	openN     int
	scattered int // rows ever routed here, consumed or not (hot accounting)
	hot       bool
}

// avail returns the rows queued and not yet consumed.
func (q *pendQueue) avail() int {
	n := q.openN
	for i, c := range q.sealed {
		n += c.Size()
		if i == 0 {
			n -= q.read
		}
	}
	return n
}

// NewExchange builds an exchange over the given sources (all sharing
// attrs). frac <= 0 disables hot detection; govern and onRows may be nil.
func NewExchange(srcs []Iterator, attrs []string, key, p, size int, frac float64, govern func(*relation.Relation), onRows func(int), m *Metrics) *Exchange {
	e := &Exchange{
		attrs:  attrs,
		key:    key,
		p:      p,
		size:   sizeOr(size),
		chunk:  bufferedChunkRows(sizeOr(size)),
		frac:   frac,
		govern: govern,
		onRows: onRows,
		m:      m,
		src:    srcs,
		busy:   make([]bool, len(srcs)),
		pend:   make([]*pendQueue, p),
	}
	for k := range e.pend {
		e.pend[k] = &pendQueue{}
	}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// Part returns output shard k's iterator (concurrent-safe).
func (e *Exchange) Part(k int) Iterator { return &partIter{e: e, k: k} }

// Hot reports whether shard k was flagged hot (sticky).
func (e *Exchange) Hot(k int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.pend[k].hot
}

type partIter struct {
	e   *Exchange
	k   int
	out Batch
}

func (p *partIter) Attrs() []string { return p.e.attrs }

func (p *partIter) Next(ctx context.Context) (*Batch, error) {
	e := p.e
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		q := e.pend[p.k]
		if q.avail() >= e.size || (e.done && q.avail() > 0) {
			return e.cut(q, &p.out), nil
		}
		if e.done {
			return nil, e.err
		}
		if err := ctx.Err(); err != nil {
			// Record the cancellation so waiters on other shards wake too.
			e.done, e.err = true, err
			e.cond.Broadcast()
			return nil, err
		}
		i := e.claim()
		if i < 0 {
			// Every live source is being drained by another shard's pull;
			// its scatter will broadcast.
			e.cond.Wait()
			continue
		}
		e.mu.Unlock()
		b, err := e.src[i].Next(ctx)
		e.mu.Lock()
		e.busy[i] = false
		switch {
		case err != nil:
			e.done, e.err = true, err
		case b == nil:
			e.src[i] = nil
			e.srcDone++
			if e.srcDone == len(e.src) {
				e.done = true
			}
		default:
			e.scatter(b)
		}
		e.cond.Broadcast()
	}
}

// claim marks an idle, unfinished source busy and returns its index, or -1.
func (e *Exchange) claim() int {
	for i, s := range e.src {
		if s != nil && !e.busy[i] {
			e.busy[i] = true
			return i
		}
	}
	return -1
}

// scatter routes one source batch's rows into the per-shard queues,
// sealing chunks that reach chunk size, and updates hot flags. Called with
// the lock held; the rows are copied, so the source may reuse the batch.
func (e *Exchange) scatter(b *Batch) {
	keyCol := b.Cols[e.key]
	for i := 0; i < b.N; i++ {
		k := shardOf(keyCol[i], e.p)
		q := e.pend[k]
		if q.open == nil {
			q.open = make([][]relation.Value, len(e.attrs))
		}
		for c := range e.attrs {
			q.open[c] = append(q.open[c], b.Cols[c][i])
		}
		q.openN++
		q.scattered++
		if q.openN >= e.chunk {
			e.seal(q)
		}
	}
	e.total += b.N
	if e.onRows != nil {
		e.onRows(b.N)
	}
	if e.frac > 0 && e.total >= hotMinRows {
		for _, q := range e.pend {
			if !q.hot && float64(q.scattered) > e.frac*float64(e.total) {
				q.hot = true
			}
		}
	}
}

// seal converts q's open columns into a governed chunk relation.
func (e *Exchange) seal(q *pendQueue) {
	if q.openN == 0 {
		return
	}
	r := relation.NewFromColumns("exchange", e.attrs, q.open)
	e.m.materialized(q.openN, len(e.attrs))
	if e.govern != nil {
		e.govern(r)
	}
	q.sealed = append(q.sealed, r)
	q.open, q.openN = nil, 0
}

// cut emits up to size rows from the head of q into out. Called with the
// lock held. Reading a sealed chunk reslices its column snapshots (zero
// copy); reading the open tail reslices the live append arrays, which is
// safe because appends never write into already-emitted prefixes.
func (e *Exchange) cut(q *pendQueue, out *Batch) *Batch {
	if out.Cols == nil {
		out.Cols = make([][]relation.Value, len(e.attrs))
	}
	if len(q.sealed) > 0 {
		c := q.sealed[0]
		n := c.Size() - q.read
		if n > e.size {
			n = e.size
		}
		c.Pin()
		for i := range out.Cols {
			out.Cols[i] = c.Column(i)[q.read : q.read+n]
		}
		c.Unpin()
		q.read += n
		if q.read == c.Size() {
			q.sealed = q.sealed[1:]
			q.read = 0
		}
		out.N = n
		e.m.emitted(n, len(e.attrs))
		return out
	}
	n := q.openN
	if n > e.size {
		n = e.size
	}
	for i := range out.Cols {
		out.Cols[i] = q.open[i][:n]
	}
	// Copy the unconsumed tail into fresh arrays: the emitted batch keeps
	// the old backing, so later appends cannot overwrite what the consumer
	// is still reading.
	for c := range q.open {
		q.open[c] = append([]relation.Value(nil), q.open[c][n:]...)
	}
	q.openN -= n
	out.N = n
	e.m.emitted(n, len(e.attrs))
	return out
}

// shardOf mirrors shard.ShardOf: the assignment must match the hash the
// materialized partitioner uses so streamed and materialized shards of the
// same value land together. Kept local to avoid an import cycle (the shard
// package composes batch pipelines).
func shardOf(v relation.Value, p int) int {
	h := uint64(uint32(v)) * 0x9E3779B1
	return int((h >> 16) % uint64(p))
}

// Grow merges the output of one or two replicated pipeline chains over a
// shared concurrent-safe source (an Exchange part): mk builds a chain each
// time it is called, the first at the first pull, a second — counted via
// onSplit — as soon as hot() reports the source's shard has gone hot. Both
// chains drain into a small channel, so a skewed shard's probe work splits
// across two workers while the exchange is still scattering, instead of
// materializing the hot shard whole and slicing it afterwards. Batches are
// deep-copied across the goroutine boundary; row order across a split is
// unspecified (downstream stages are order-insensitive).
//
// The context of the first Next call drives the producer goroutines;
// streamed plans pull a pipeline under one context for its lifetime.
func Grow(mk func() Iterator, attrs []string, hot func() bool, onSplit func()) Iterator {
	return &growIter{mks: []func() Iterator{mk}, mk: mk, attrs: attrs, hot: hot, onSplit: onSplit}
}

// Fan merges several independently produced chains into one iterator: every
// maker's chain runs in its own goroutine from the first pull, batches are
// deep-copied into a shared channel, and the merged stream ends when all
// chains do. Row order across chains is unspecified. Used to split a hot
// probe relation into row blocks, each probed by its own chain over a
// replayable copy of the shared input.
func Fan(mks []func() Iterator, attrs []string) Iterator {
	return &growIter{mks: mks, attrs: attrs}
}

type growIter struct {
	mks     []func() Iterator // chains started at the first pull
	mk      func() Iterator   // extra chain built when hot fires (nil: fixed)
	attrs   []string
	hot     func() bool
	onSplit func()

	once  sync.Once
	ch    chan *Batch
	wg    sync.WaitGroup
	split bool
	mu    sync.Mutex
	err   error
}

func (g *growIter) Attrs() []string { return g.attrs }

func (g *growIter) start(ctx context.Context) {
	g.ch = make(chan *Batch, 2)
	g.wg.Add(len(g.mks))
	for _, mk := range g.mks {
		mk := mk
		go func() { g.run(ctx, mk()) }()
	}
	go func() {
		g.wg.Wait()
		close(g.ch)
	}()
}

func (g *growIter) run(ctx context.Context, it Iterator) {
	defer g.wg.Done()
	for {
		b, err := it.Next(ctx)
		if err != nil {
			g.mu.Lock()
			if g.err == nil {
				g.err = err
			}
			g.mu.Unlock()
			return
		}
		if b == nil {
			return
		}
		select {
		case g.ch <- b.clone():
		case <-ctx.Done():
			g.mu.Lock()
			if g.err == nil {
				g.err = ctx.Err()
			}
			g.mu.Unlock()
			return
		}
		g.mu.Lock()
		grow := !g.split && g.hot != nil && g.hot()
		if grow {
			g.split = true
		}
		g.mu.Unlock()
		if grow {
			if g.onSplit != nil {
				g.onSplit()
			}
			g.wg.Add(1)
			go g.run(ctx, g.mk())
		}
	}
}

func (g *growIter) Next(ctx context.Context) (*Batch, error) {
	g.once.Do(func() { g.start(ctx) })
	b, ok := <-g.ch
	if ok {
		return b, nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return nil, g.err
}
