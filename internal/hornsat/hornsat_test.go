package hornsat

import (
	"math/big"
	"math/rand"
	"testing"

	"cqbound/internal/construct"
	"cqbound/internal/cq"
	"cqbound/internal/datagen"
	"cqbound/internal/entropy"
)

func TestSolveBasics(t *testing.T) {
	// (x0) ∧ (¬x0 ∨ x1): maximal model all-true.
	ok, a := Solve(2, []Clause{{Pos: []int{0}, Neg: -1}, {Pos: []int{1}, Neg: 0}})
	if !ok || !a[0] || !a[1] {
		t.Fatalf("got %v %v", ok, a)
	}
	// ¬x0 ∧ (x0): unsatisfiable.
	ok, _ = Solve(1, []Clause{{Neg: 0}, {Pos: []int{0}, Neg: -1}})
	if ok {
		t.Fatal("accepted unsatisfiable formula")
	}
	// ¬x0 ∧ (x0 ∨ ¬x1) forces x1 false; (x2) stays true.
	ok, a = Solve(3, []Clause{{Neg: 0}, {Pos: []int{0}, Neg: 1}, {Pos: []int{2}, Neg: -1}})
	if !ok || a[0] || a[1] || !a[2] {
		t.Fatalf("propagation wrong: %v %v", ok, a)
	}
	// Empty clause: unsatisfiable.
	ok, _ = Solve(1, []Clause{{Neg: -1}})
	if ok {
		t.Fatal("accepted empty clause")
	}
}

func TestSolvePropagationChain(t *testing.T) {
	// ¬x0, (x0 ∨ ¬x1), (x1 ∨ ¬x2), ..., chain of forced falses.
	n := 50
	clauses := []Clause{{Neg: 0}}
	for i := 1; i < n; i++ {
		clauses = append(clauses, Clause{Pos: []int{i - 1}, Neg: i})
	}
	ok, a := Solve(n, clauses)
	if !ok {
		t.Fatal("chain should be satisfiable")
	}
	for i := 0; i < n; i++ {
		if a[i] {
			t.Fatalf("x%d should be forced false", i)
		}
	}
}

func TestDecideSizeIncreaseKnownQueries(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"Q(X,Y) <- R(X,Y).", false},
		{"S(X,Y,Z) <- R(X,Y), R(X,Z), R(Y,Z).", true},
		{"Q(X,Z) <- R(X,Y), S(Y,Z).", true},
		{"Q(X,Z) <- R(X,Y), S(Y,Z).\nkey S[1].", false},
		{"R0(W,X,Y,Z) <- R1(W,X,Y), R1(W,W,W), R2(Y,Z).\nkey R1[1].", false},
		{"R2(X,Y,Z) <- R(X,Y), R(X,Z).", true},
		// Compound dependency: X,Y -> Z kills the blowup of the product
		// query only if it constrains the head... here it does not.
		{"Q(X,Y,Z) <- R(X,Z), S(Y,Z).", true},
	}
	for _, c := range cases {
		got := DecideSizeIncrease(cq.MustParse(c.src))
		if got.Increase != c.want {
			t.Errorf("%q: increase = %v, want %v", c.src, got.Increase, c.want)
		}
		if !got.Increase && got.BlockingAtom < 0 {
			t.Errorf("%q: missing blocking atom", c.src)
		}
	}
}

func TestDecideSizeIncreaseShamir(t *testing.T) {
	q, _, err := construct.Shamir(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := DecideSizeIncrease(q); !got.Increase {
		t.Fatal("Shamir query must allow a size increase (C = 4/3 > 1)")
	}
}

// TestAgreementWithEntropyLP cross-checks Theorem 7.2 against
// Proposition 6.10: C(chase(Q)) > 1 iff the dual-Horn decision says so.
func TestAgreementWithEntropyLP(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	one := big.NewRat(1, 1)
	for trial := 0; trial < 50; trial++ {
		q := datagen.RandomQuery(rng, datagen.QueryParams{
			MaxVars: 5, MaxAtoms: 4, MaxArity: 3, HeadFraction: 0.5,
			SimpleFDProb: 0.25, CompoundFDProb: 0.3, RepeatRelationProb: 0.3,
		})
		c, _, _, err := entropy.ColorNumber(q)
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, q, err)
		}
		dec := DecideSizeIncrease(q)
		if dec.Increase != (c.Cmp(one) > 0) {
			t.Fatalf("trial %d: hornsat says %v but C = %v for %s", trial, dec.Increase, c, q)
		}
		// Theorem 6.1: increase possible implies C >= m/(m-1).
		if dec.Increase {
			m := int64(len(dec.Chased.Body))
			if m >= 2 {
				bound := big.NewRat(m, m-1)
				if c.Cmp(bound) < 0 {
					t.Fatalf("trial %d: C = %v below m/(m-1) = %v for %s", trial, c, bound, q)
				}
			}
		}
	}
}
