// Package hornsat solves dual-Horn propositional formulas — conjunctions of
// clauses with at most one negative literal each — in linear time by
// counter-based false-propagation (the dual of Dowling–Gallier unit
// propagation), and uses them to decide in polynomial time whether a
// conjunctive query with arbitrary functional dependencies can produce more
// tuples than its inputs, i.e. whether C(chase(Q)) > 1 (Theorem 7.2).
package hornsat

import (
	"fmt"

	"cqbound/internal/chase"
	"cqbound/internal/cq"
)

// Clause is a dual-Horn clause: a disjunction of the positive literals Pos
// and at most one negative literal Neg (-1 when absent). Variables are
// 0-based.
type Clause struct {
	Pos []int
	Neg int
}

// Solve decides satisfiability of the conjunction of dual-Horn clauses over
// nvars variables. When satisfiable it returns the maximal model: the
// assignment setting as many variables true as possible (unique for
// dual-Horn formulas).
func Solve(nvars int, clauses []Clause) (bool, []bool) {
	assignment := make([]bool, nvars)
	for i := range assignment {
		assignment[i] = true
	}
	// remaining[c]: count of positive literals not yet falsified.
	remaining := make([]int, len(clauses))
	watch := make([][]int, nvars) // variable -> clauses where it occurs positively
	var queue []int               // variables to make false
	enqueued := make([]bool, nvars)
	force := func(v int) {
		if !enqueued[v] {
			enqueued[v] = true
			queue = append(queue, v)
		}
	}
	for ci, c := range clauses {
		if c.Neg < -1 || c.Neg >= nvars {
			panic(fmt.Sprintf("hornsat: bad negative literal %d", c.Neg))
		}
		remaining[ci] = len(c.Pos)
		for _, v := range c.Pos {
			if v < 0 || v >= nvars {
				panic(fmt.Sprintf("hornsat: bad variable %d", v))
			}
			watch[v] = append(watch[v], ci)
		}
		if len(c.Pos) == 0 {
			if c.Neg == -1 {
				return false, nil // empty clause
			}
			force(c.Neg)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if !assignment[v] {
			continue
		}
		assignment[v] = false
		for _, ci := range watch[v] {
			remaining[ci]--
			if remaining[ci] == 0 {
				if clauses[ci].Neg == -1 {
					return false, nil // all-positive clause falsified
				}
				force(clauses[ci].Neg)
			}
		}
	}
	return true, assignment
}

// SizeIncreaseDecision is the result of DecideSizeIncrease.
type SizeIncreaseDecision struct {
	// Increase reports whether some database D compatible with the query
	// and its dependencies has |Q(D)| > rmax(D); equivalently,
	// C(chase(Q)) > 1 (Theorem 6.1).
	Increase bool
	// BlockingAtom, when Increase is false, is the index of a body atom of
	// chase(Q) whose SAT instance is unsatisfiable: every color appearing
	// in the head must appear in this atom.
	BlockingAtom int
	// Chased is chase(Q).
	Chased *cq.Query
}

// DecideSizeIncrease implements Theorem 7.2: after chasing, one dual-Horn
// instance per body atom u_i asks for a single-color valid coloring that
// colors some head variable but no variable of u_i. All instances
// satisfiable ⇔ C(chase(Q)) > 1 (and then C ≥ m/(m−1)); any unsatisfiable
// instance ⇔ C(chase(Q)) = 1.
//
// Arbitrary (compound) dependencies are supported directly: a dependency
// X1...Xl -> Y becomes the dual-Horn clause (x1 ∨ ... ∨ xl ∨ ¬y), so the
// Fact 6.12 left-hand-side reduction is not needed for the decision.
func DecideSizeIncrease(q *cq.Query) SizeIncreaseDecision {
	ch := chase.Chase(q).Query
	vars := ch.Variables()
	index := make(map[cq.Variable]int, len(vars))
	for i, v := range vars {
		index[v] = i
	}
	var fdClauses []Clause
	for _, fd := range ch.VarFDs() {
		c := Clause{Neg: index[fd.To]}
		for _, v := range fd.From {
			c.Pos = append(c.Pos, index[v])
		}
		fdClauses = append(fdClauses, c)
	}
	headClause := Clause{Neg: -1}
	for _, v := range ch.HeadVars() {
		headClause.Pos = append(headClause.Pos, index[v])
	}
	for i, atom := range ch.Body {
		clauses := make([]Clause, 0, len(fdClauses)+len(atom.Vars)+1)
		clauses = append(clauses, fdClauses...)
		clauses = append(clauses, headClause)
		for _, v := range atom.DistinctVars() {
			clauses = append(clauses, Clause{Neg: index[v]}) // ¬x_v
		}
		if ok, _ := Solve(len(vars), clauses); !ok {
			return SizeIncreaseDecision{Increase: false, BlockingAtom: i, Chased: ch}
		}
	}
	return SizeIncreaseDecision{Increase: true, BlockingAtom: -1, Chased: ch}
}
