package lp

import (
	"math"
)

// floatEps is the feasibility/optimality tolerance of the float backend.
const floatEps = 1e-9

// SolveFloat solves the problem in float64 arithmetic. It mirrors SolveExact
// (two phases, slack/artificial columns) but uses Dantzig pricing for speed,
// falling back to Bland's rule after a stall to guarantee termination. It is
// intended for the exponentially large entropy programs of Section 6 where
// exact arithmetic is too slow; results carry the usual floating-point
// caveats.
func (p *Problem) SolveFloat() *FloatSolution {
	st := newFloatTableau(p)
	if len(st.artificials) > 0 {
		phase1 := make([]float64, st.ncols())
		for _, a := range st.artificials {
			phase1[a] = -1
		}
		st.objective = phase1
		st.run()
		if st.objectiveValue() < -1e-7 {
			return &FloatSolution{Status: Infeasible}
		}
		st.evictArtificials()
	}
	st.objective = st.structuralObjective
	st.banArtificials()
	if unbounded := st.run(); unbounded {
		return &FloatSolution{Status: Unbounded}
	}
	return st.extract(p)
}

type floatTableau struct {
	a     [][]float64
	b     []float64
	basis []int

	objective           []float64
	structuralObjective []float64

	artificials []int
	banned      []bool
	plus, minus []int
}

func (t *floatTableau) ncols() int { return len(t.a[0]) }
func (t *floatTableau) nrows() int { return len(t.a) }

func newFloatTableau(p *Problem) *floatTableau {
	m := len(p.cons)
	t := &floatTableau{
		plus:  make([]int, len(p.vars)),
		minus: make([]int, len(p.vars)),
	}
	ncols := 0
	for i, v := range p.vars {
		t.plus[i] = ncols
		ncols++
		if v.kind == Free {
			t.minus[i] = ncols
			ncols++
		} else {
			t.minus[i] = -1
		}
	}
	type rowPlan struct {
		slack      int
		slackSign  float64
		artificial int
	}
	plans := make([]rowPlan, m)
	for i := range plans {
		plans[i] = rowPlan{slack: -1, artificial: -1}
	}
	for i, c := range p.cons {
		rel := c.rel
		if c.rhs.Sign() < 0 {
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		switch rel {
		case LE:
			plans[i].slack = ncols
			plans[i].slackSign = 1
			ncols++
		case GE:
			plans[i].slack = ncols
			plans[i].slackSign = -1
			ncols++
			plans[i].artificial = ncols
			ncols++
		case EQ:
			plans[i].artificial = ncols
			ncols++
		}
	}
	t.a = make([][]float64, m)
	t.b = make([]float64, m)
	t.basis = make([]int, m)
	for i := range t.a {
		t.a[i] = make([]float64, ncols)
	}
	for i, c := range p.cons {
		sign := 1.0
		if c.rhs.Sign() < 0 {
			sign = -1
		}
		for v, coef := range c.coeffs {
			cf, _ := coef.Float64()
			t.a[i][t.plus[v]] += sign * cf
			if t.minus[v] >= 0 {
				t.a[i][t.minus[v]] -= sign * cf
			}
		}
		rhs, _ := c.rhs.Float64()
		t.b[i] = sign * rhs
		if plans[i].slack >= 0 {
			t.a[i][plans[i].slack] = plans[i].slackSign
		}
		if plans[i].artificial >= 0 {
			t.a[i][plans[i].artificial] = 1
			t.artificials = append(t.artificials, plans[i].artificial)
			t.basis[i] = plans[i].artificial
		} else {
			t.basis[i] = plans[i].slack
		}
	}
	t.structuralObjective = make([]float64, ncols)
	flip := 1.0
	if p.sense == Minimize {
		flip = -1
	}
	for v, coef := range p.obj {
		cf, _ := coef.Float64()
		t.structuralObjective[t.plus[v]] += flip * cf
		if t.minus[v] >= 0 {
			t.structuralObjective[t.minus[v]] -= flip * cf
		}
	}
	t.banned = make([]bool, ncols)
	return t
}

func (t *floatTableau) run() bool {
	// Dantzig pricing with a Bland fallback after a generous iteration
	// budget, so degenerate cycling cannot hang the solver.
	maxDantzig := 50 * (t.nrows() + t.ncols())
	for iter := 0; ; iter++ {
		bland := iter > maxDantzig
		col := t.enteringColumn(bland)
		if col < 0 {
			return false
		}
		row := t.leavingRow(col, bland)
		if row < 0 {
			return true
		}
		t.pivot(row, col)
	}
}

func (t *floatTableau) reducedCosts() []float64 {
	cb := make([]float64, t.nrows())
	for i, bi := range t.basis {
		cb[i] = t.objective[bi]
	}
	r := make([]float64, t.ncols())
	copy(r, t.objective)
	for i := range t.a {
		if cb[i] == 0 {
			continue
		}
		row := t.a[i]
		c := cb[i]
		for j := range row {
			if row[j] != 0 {
				r[j] -= c * row[j]
			}
		}
	}
	return r
}

func (t *floatTableau) enteringColumn(bland bool) int {
	r := t.reducedCosts()
	if bland {
		for j := range r {
			if !t.banned[j] && r[j] > floatEps {
				return j
			}
		}
		return -1
	}
	best, bestVal := -1, floatEps
	for j := range r {
		if !t.banned[j] && r[j] > bestVal {
			best, bestVal = j, r[j]
		}
	}
	return best
}

func (t *floatTableau) leavingRow(col int, bland bool) int {
	best := -1
	bestRatio := math.Inf(1)
	for i := range t.a {
		if t.a[i][col] <= floatEps {
			continue
		}
		ratio := t.b[i] / t.a[i][col]
		if ratio < bestRatio-floatEps {
			best, bestRatio = i, ratio
		} else if bland && ratio < bestRatio+floatEps && best >= 0 && t.basis[i] < t.basis[best] {
			best = i
		}
	}
	return best
}

func (t *floatTableau) pivot(row, col int) {
	pv := t.a[row][col]
	r := t.a[row]
	for j := range r {
		r[j] /= pv
	}
	t.b[row] /= pv
	for i := range t.a {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		ri := t.a[i]
		for j := range ri {
			ri[j] -= f * r[j]
		}
		ri[col] = 0
		t.b[i] -= f * t.b[row]
	}
	t.basis[row] = col
}

func (t *floatTableau) objectiveValue() float64 {
	v := 0.0
	for i, bi := range t.basis {
		v += t.objective[bi] * t.b[i]
	}
	return v
}

func (t *floatTableau) evictArtificials() {
	isArtificial := make(map[int]bool, len(t.artificials))
	for _, a := range t.artificials {
		isArtificial[a] = true
	}
	for i := range t.basis {
		if !isArtificial[t.basis[i]] {
			continue
		}
		for j := 0; j < t.ncols(); j++ {
			if isArtificial[j] {
				continue
			}
			if math.Abs(t.a[i][j]) > 1e-7 {
				t.pivot(i, j)
				break
			}
		}
	}
}

func (t *floatTableau) banArtificials() {
	for _, a := range t.artificials {
		t.banned[a] = true
	}
}

func (t *floatTableau) extract(p *Problem) *FloatSolution {
	xcols := make([]float64, t.ncols())
	for i, bi := range t.basis {
		xcols[bi] = t.b[i]
	}
	x := make([]float64, len(p.vars))
	for v := range p.vars {
		val := xcols[t.plus[v]]
		if t.minus[v] >= 0 {
			val -= xcols[t.minus[v]]
		}
		x[v] = val
	}
	value := 0.0
	for v, coef := range p.obj {
		cf, _ := coef.Float64()
		value += cf * x[v]
	}
	return &FloatSolution{Status: Optimal, Value: value, X: x}
}
