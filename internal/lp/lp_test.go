package lp

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

func TestSimpleMax(t *testing.T) {
	// max x+y s.t. x+2y <= 4, x <= 2  ->  x=2, y=1, value 3.
	p := NewProblem(Maximize)
	x := p.AddVariable("x", NonNegative)
	y := p.AddVariable("y", NonNegative)
	p.SetObjective(x, RI(1))
	p.SetObjective(y, RI(1))
	p.AddConstraint(map[int]*big.Rat{x: RI(1), y: RI(2)}, LE, RI(4))
	p.AddConstraint(map[int]*big.Rat{x: RI(1)}, LE, RI(2))
	s := p.SolveExact()
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if s.Value.Cmp(RI(3)) != 0 {
		t.Fatalf("value = %v, want 3", s.Value)
	}
	if s.X[x].Cmp(RI(2)) != 0 || s.X[y].Cmp(RI(1)) != 0 {
		t.Fatalf("x = %v", s.X)
	}
}

func TestSimpleMin(t *testing.T) {
	// min x+y s.t. x+y >= 2  ->  2.
	p := NewProblem(Minimize)
	x := p.AddVariable("x", NonNegative)
	y := p.AddVariable("y", NonNegative)
	p.SetObjective(x, RI(1))
	p.SetObjective(y, RI(1))
	p.AddConstraint(map[int]*big.Rat{x: RI(1), y: RI(1)}, GE, RI(2))
	s := p.SolveExact()
	if s.Status != Optimal || s.Value.Cmp(RI(2)) != 0 {
		t.Fatalf("got %v %v, want optimal 2", s.Status, s.Value)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVariable("x", NonNegative)
	p.SetObjective(x, RI(1))
	p.AddConstraint(map[int]*big.Rat{x: RI(1)}, GE, RI(2))
	p.AddConstraint(map[int]*big.Rat{x: RI(1)}, LE, RI(1))
	if s := p.SolveExact(); s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVariable("x", NonNegative)
	p.SetObjective(x, RI(1))
	p.AddConstraint(map[int]*big.Rat{x: RI(1)}, GE, RI(1))
	if s := p.SolveExact(); s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestFreeVariable(t *testing.T) {
	// min x s.t. x >= -5, x free  ->  -5.
	p := NewProblem(Minimize)
	x := p.AddVariable("x", Free)
	p.SetObjective(x, RI(1))
	p.AddConstraint(map[int]*big.Rat{x: RI(1)}, GE, RI(-5))
	s := p.SolveExact()
	if s.Status != Optimal || s.Value.Cmp(RI(-5)) != 0 {
		t.Fatalf("got %v %v, want optimal -5", s.Status, s.Value)
	}
	if s.X[x].Cmp(RI(-5)) != 0 {
		t.Fatalf("x = %v, want -5", s.X[x])
	}
}

func TestEquality(t *testing.T) {
	// max x + y s.t. x + y = 3, x <= 2 -> 3.
	p := NewProblem(Maximize)
	x := p.AddVariable("x", NonNegative)
	y := p.AddVariable("y", NonNegative)
	p.SetObjective(x, RI(1))
	p.SetObjective(y, RI(1))
	p.AddConstraint(map[int]*big.Rat{x: RI(1), y: RI(1)}, EQ, RI(3))
	p.AddConstraint(map[int]*big.Rat{x: RI(1)}, LE, RI(2))
	s := p.SolveExact()
	if s.Status != Optimal || s.Value.Cmp(RI(3)) != 0 {
		t.Fatalf("got %v %v, want optimal 3", s.Status, s.Value)
	}
}

func TestNegativeRHS(t *testing.T) {
	// max -x s.t. -x <= -2 (i.e. x >= 2) -> -2.
	p := NewProblem(Maximize)
	x := p.AddVariable("x", NonNegative)
	p.SetObjective(x, RI(-1))
	p.AddConstraint(map[int]*big.Rat{x: RI(-1)}, LE, RI(-2))
	s := p.SolveExact()
	if s.Status != Optimal || s.Value.Cmp(RI(-2)) != 0 {
		t.Fatalf("got %v %v, want optimal -2", s.Status, s.Value)
	}
}

func TestBealeCyclingExample(t *testing.T) {
	// Beale's classic cycling instance; Bland's rule must terminate.
	// max 3/4 x1 - 150 x2 + 1/50 x3 - 6 x4
	// s.t. 1/4 x1 - 60 x2 - 1/25 x3 + 9 x4 <= 0
	//      1/2 x1 - 90 x2 - 1/50 x3 + 3 x4 <= 0
	//      x3 <= 1
	// optimum 1/20.
	p := NewProblem(Maximize)
	x1 := p.AddVariable("x1", NonNegative)
	x2 := p.AddVariable("x2", NonNegative)
	x3 := p.AddVariable("x3", NonNegative)
	x4 := p.AddVariable("x4", NonNegative)
	p.SetObjective(x1, R(3, 4))
	p.SetObjective(x2, RI(-150))
	p.SetObjective(x3, R(1, 50))
	p.SetObjective(x4, RI(-6))
	p.AddConstraint(map[int]*big.Rat{x1: R(1, 4), x2: RI(-60), x3: R(-1, 25), x4: RI(9)}, LE, RI(0))
	p.AddConstraint(map[int]*big.Rat{x1: R(1, 2), x2: RI(-90), x3: R(-1, 50), x4: RI(3)}, LE, RI(0))
	p.AddConstraint(map[int]*big.Rat{x3: RI(1)}, LE, RI(1))
	s := p.SolveExact()
	if s.Status != Optimal || s.Value.Cmp(R(1, 20)) != 0 {
		t.Fatalf("got %v %v, want optimal 1/20", s.Status, s.Value)
	}
}

func TestTriangleCoverExact(t *testing.T) {
	// Fractional edge cover of the triangle: min y1+y2+y3,
	// each vertex covered by its two incident edges  ->  3/2.
	p := NewProblem(Minimize)
	ys := []int{
		p.AddVariable("y12", NonNegative),
		p.AddVariable("y23", NonNegative),
		p.AddVariable("y13", NonNegative),
	}
	for _, y := range ys {
		p.SetObjective(y, RI(1))
	}
	p.AddConstraint(map[int]*big.Rat{ys[0]: RI(1), ys[2]: RI(1)}, GE, RI(1)) // vertex 1
	p.AddConstraint(map[int]*big.Rat{ys[0]: RI(1), ys[1]: RI(1)}, GE, RI(1)) // vertex 2
	p.AddConstraint(map[int]*big.Rat{ys[1]: RI(1), ys[2]: RI(1)}, GE, RI(1)) // vertex 3
	s := p.SolveExact()
	if s.Status != Optimal || s.Value.Cmp(R(3, 2)) != 0 {
		t.Fatalf("got %v %v, want optimal 3/2", s.Status, s.Value)
	}
}

func TestFloatMatchesExactSimple(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVariable("x", NonNegative)
	y := p.AddVariable("y", NonNegative)
	p.SetObjective(x, RI(1))
	p.SetObjective(y, RI(1))
	p.AddConstraint(map[int]*big.Rat{x: RI(1), y: RI(2)}, LE, RI(4))
	p.AddConstraint(map[int]*big.Rat{x: RI(1)}, LE, RI(2))
	fs := p.SolveFloat()
	if fs.Status != Optimal || math.Abs(fs.Value-3) > 1e-9 {
		t.Fatalf("float got %v %v, want optimal 3", fs.Status, fs.Value)
	}
}

// randomBoundedLP builds a random LP with box constraints so that it is
// always feasible (origin) and bounded.
func randomBoundedLP(rng *rand.Rand) *Problem {
	n := 1 + rng.Intn(4)
	m := 1 + rng.Intn(5)
	p := NewProblem(Maximize)
	vars := make([]int, n)
	for i := range vars {
		vars[i] = p.AddVariable("x", NonNegative)
		p.SetObjective(vars[i], RI(int64(rng.Intn(7)-3)))
		p.AddConstraint(map[int]*big.Rat{vars[i]: RI(1)}, LE, RI(int64(1+rng.Intn(10))))
	}
	for j := 0; j < m; j++ {
		coeffs := map[int]*big.Rat{}
		for i := range vars {
			if rng.Intn(2) == 0 {
				coeffs[vars[i]] = RI(int64(rng.Intn(5) - 1))
			}
		}
		if len(coeffs) == 0 {
			continue
		}
		p.AddConstraint(coeffs, LE, RI(int64(rng.Intn(20))))
	}
	return p
}

func TestExactVsFloatRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		p := randomBoundedLP(rng)
		es := p.SolveExact()
		fs := p.SolveFloat()
		if es.Status != Optimal {
			t.Fatalf("trial %d: exact status %v on feasible bounded LP", trial, es.Status)
		}
		if fs.Status != Optimal {
			t.Fatalf("trial %d: float status %v on feasible bounded LP", trial, fs.Status)
		}
		ev, _ := es.Value.Float64()
		if math.Abs(ev-fs.Value) > 1e-6*(1+math.Abs(ev)) {
			t.Fatalf("trial %d: exact %v vs float %v", trial, ev, fs.Value)
		}
	}
}

// TestCoverDualityRandom checks strong duality on random covering problems:
// primal min 1·y s.t. Aᵀy >= 1 equals dual max 1·x s.t. Ax <= 1, both
// solved independently by the exact solver.
func TestCoverDualityRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		nVerts := 2 + rng.Intn(4)
		nEdges := 1 + rng.Intn(5)
		// Random incidence matrix; ensure every vertex is in some edge so the
		// primal is feasible.
		inc := make([][]bool, nEdges)
		for e := range inc {
			inc[e] = make([]bool, nVerts)
			for v := range inc[e] {
				inc[e][v] = rng.Intn(2) == 0
			}
		}
		for v := 0; v < nVerts; v++ {
			covered := false
			for e := range inc {
				if inc[e][v] {
					covered = true
				}
			}
			if !covered {
				inc[rng.Intn(nEdges)][v] = true
			}
		}
		// Primal: min Σ y_e  s.t.  Σ_{e∋v} y_e >= 1.
		primal := NewProblem(Minimize)
		ys := make([]int, nEdges)
		for e := range ys {
			ys[e] = primal.AddVariable("y", NonNegative)
			primal.SetObjective(ys[e], RI(1))
		}
		for v := 0; v < nVerts; v++ {
			coeffs := map[int]*big.Rat{}
			for e := range inc {
				if inc[e][v] {
					coeffs[ys[e]] = RI(1)
				}
			}
			primal.AddConstraint(coeffs, GE, RI(1))
		}
		// Dual: max Σ x_v  s.t.  Σ_{v∈e} x_v <= 1.
		dual := NewProblem(Maximize)
		xs := make([]int, nVerts)
		for v := range xs {
			xs[v] = dual.AddVariable("x", NonNegative)
			dual.SetObjective(xs[v], RI(1))
		}
		for e := range inc {
			coeffs := map[int]*big.Rat{}
			for v := 0; v < nVerts; v++ {
				if inc[e][v] {
					coeffs[xs[v]] = RI(1)
				}
			}
			if len(coeffs) == 0 {
				continue
			}
			dual.AddConstraint(coeffs, LE, RI(1))
		}
		ps := primal.SolveExact()
		ds := dual.SolveExact()
		if ps.Status != Optimal || ds.Status != Optimal {
			t.Fatalf("trial %d: statuses %v / %v", trial, ps.Status, ds.Status)
		}
		if ps.Value.Cmp(ds.Value) != 0 {
			t.Fatalf("trial %d: duality gap: primal %v, dual %v", trial, ps.Value, ds.Value)
		}
	}
}

func TestSolutionSatisfiesConstraintsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		p := randomBoundedLP(rng)
		s := p.SolveExact()
		if s.Status != Optimal {
			t.Fatalf("trial %d: %v", trial, s.Status)
		}
		for ci, c := range p.cons {
			lhs := new(big.Rat)
			tmp := new(big.Rat)
			for v, coef := range c.coeffs {
				tmp.Mul(coef, s.X[v])
				lhs.Add(lhs, tmp)
			}
			ok := false
			switch c.rel {
			case LE:
				ok = lhs.Cmp(c.rhs) <= 0
			case GE:
				ok = lhs.Cmp(c.rhs) >= 0
			case EQ:
				ok = lhs.Cmp(c.rhs) == 0
			}
			if !ok {
				t.Fatalf("trial %d: constraint %d violated: %v %v %v", trial, ci, lhs, c.rel, c.rhs)
			}
		}
		for v, x := range s.X {
			if p.vars[v].kind == NonNegative && x.Sign() < 0 {
				t.Fatalf("trial %d: variable %d negative: %v", trial, v, x)
			}
		}
	}
}

func TestVariableName(t *testing.T) {
	p := NewProblem(Maximize)
	v := p.AddVariable("alpha", NonNegative)
	if p.VariableName(v) != "alpha" {
		t.Fatalf("VariableName = %q", p.VariableName(v))
	}
}
