package lp

import (
	"math/big"
)

// SolveExact solves the problem with the exact rational simplex. It never
// returns a wrong answer: the arithmetic is exact and Bland's rule guarantees
// termination.
func (p *Problem) SolveExact() *Solution {
	st := newRatTableau(p)
	// Phase 1: maximize -Σ artificials.
	if len(st.artificials) > 0 {
		phase1 := make([]*big.Rat, st.ncols())
		for j := range phase1 {
			phase1[j] = new(big.Rat)
		}
		for _, a := range st.artificials {
			phase1[a] = big.NewRat(-1, 1)
		}
		st.objective = phase1
		st.run()
		if st.objectiveValue().Sign() != 0 {
			return &Solution{Status: Infeasible}
		}
		st.evictArtificials()
	}
	// Phase 2: the real objective over structural columns.
	st.objective = st.structuralObjective
	st.banArtificials()
	if unbounded := st.run(); unbounded {
		return &Solution{Status: Unbounded}
	}
	return st.extract(p)
}

// ratTableau is a dense simplex tableau over big.Rat.
//
// Standard form: maximize objective·x subject to A x = b, x ≥ 0, b ≥ 0.
// Free original variables are split x = x⁺ − x⁻.
type ratTableau struct {
	a     [][]*big.Rat // m × n
	b     []*big.Rat   // m
	basis []int        // m, column basic in each row

	objective           []*big.Rat // current phase objective, length n
	structuralObjective []*big.Rat // phase-2 objective, length n

	artificials []int // artificial column indices
	banned      []bool
	// plus/minus give, per original variable, the standard-form column(s).
	plus, minus []int
}

func (t *ratTableau) ncols() int { return len(t.a[0]) }
func (t *ratTableau) nrows() int { return len(t.a) }

func newRatTableau(p *Problem) *ratTableau {
	m := len(p.cons)
	t := &ratTableau{
		plus:  make([]int, len(p.vars)),
		minus: make([]int, len(p.vars)),
	}
	ncols := 0
	for i, v := range p.vars {
		t.plus[i] = ncols
		ncols++
		if v.kind == Free {
			t.minus[i] = ncols
			ncols++
		} else {
			t.minus[i] = -1
		}
	}
	nStructural := ncols
	// One slack/surplus per inequality, one artificial per EQ/GE row (and
	// per LE row whose rhs is negative, after normalization).
	type rowPlan struct {
		slack      int // -1 if none; +1 coefficient sign handled below
		slackSign  int
		artificial int
	}
	plans := make([]rowPlan, m)
	for i := range p.cons {
		plans[i] = rowPlan{slack: -1, artificial: -1}
	}
	for i, c := range p.cons {
		rel := c.rel
		neg := c.rhs.Sign() < 0
		if neg {
			// Row will be negated; relation flips.
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		switch rel {
		case LE:
			plans[i].slack = ncols
			plans[i].slackSign = 1
			ncols++
		case GE:
			plans[i].slack = ncols
			plans[i].slackSign = -1
			ncols++
			plans[i].artificial = ncols
			ncols++
		case EQ:
			plans[i].artificial = ncols
			ncols++
		}
	}
	t.a = make([][]*big.Rat, m)
	t.b = make([]*big.Rat, m)
	t.basis = make([]int, m)
	for i := range t.a {
		row := make([]*big.Rat, ncols)
		for j := range row {
			row[j] = new(big.Rat)
		}
		t.a[i] = row
	}
	for i, c := range p.cons {
		sign := int64(1)
		if c.rhs.Sign() < 0 {
			sign = -1
		}
		s := big.NewRat(sign, 1)
		for v, coef := range c.coeffs {
			val := new(big.Rat).Mul(coef, s)
			t.a[i][t.plus[v]].Add(t.a[i][t.plus[v]], val)
			if t.minus[v] >= 0 {
				t.a[i][t.minus[v]].Sub(t.a[i][t.minus[v]], val)
			}
		}
		t.b[i] = new(big.Rat).Mul(c.rhs, s)
		if plans[i].slack >= 0 {
			t.a[i][plans[i].slack] = big.NewRat(int64(plans[i].slackSign), 1)
		}
		if plans[i].artificial >= 0 {
			t.a[i][plans[i].artificial] = big.NewRat(1, 1)
			t.artificials = append(t.artificials, plans[i].artificial)
			t.basis[i] = plans[i].artificial
		} else {
			t.basis[i] = plans[i].slack // LE rows: slack starts basic
		}
	}
	// Phase-2 objective on structural columns, internally maximizing.
	t.structuralObjective = make([]*big.Rat, ncols)
	for j := range t.structuralObjective {
		t.structuralObjective[j] = new(big.Rat)
	}
	flip := p.sense == Minimize
	for v, coef := range p.obj {
		val := new(big.Rat).Set(coef)
		if flip {
			val.Neg(val)
		}
		t.structuralObjective[t.plus[v]].Add(t.structuralObjective[t.plus[v]], val)
		if t.minus[v] >= 0 {
			t.structuralObjective[t.minus[v]].Sub(t.structuralObjective[t.minus[v]], val)
		}
	}
	_ = nStructural
	t.banned = make([]bool, ncols)
	return t
}

// run performs simplex iterations with Bland's rule until optimality or
// unboundedness. It reports whether the problem is unbounded.
func (t *ratTableau) run() bool {
	for {
		col := t.enteringColumn()
		if col < 0 {
			return false // optimal
		}
		row := t.leavingRow(col)
		if row < 0 {
			return true // unbounded
		}
		t.pivot(row, col)
	}
}

// reducedCost returns c_j - z_j for column j.
func (t *ratTableau) reducedCost(j int, cb []*big.Rat) *big.Rat {
	r := new(big.Rat).Set(t.objective[j])
	tmp := new(big.Rat)
	for i := range t.a {
		if cb[i].Sign() == 0 {
			continue
		}
		tmp.Mul(cb[i], t.a[i][j])
		r.Sub(r, tmp)
	}
	return r
}

func (t *ratTableau) basicCosts() []*big.Rat {
	cb := make([]*big.Rat, t.nrows())
	for i, bi := range t.basis {
		cb[i] = t.objective[bi]
	}
	return cb
}

// enteringColumn returns the smallest-index non-banned column with positive
// reduced cost, or -1 when optimal (Bland's rule).
func (t *ratTableau) enteringColumn() int {
	cb := t.basicCosts()
	for j := 0; j < t.ncols(); j++ {
		if t.banned[j] {
			continue
		}
		if t.reducedCost(j, cb).Sign() > 0 {
			return j
		}
	}
	return -1
}

// leavingRow performs the ratio test for column col. Ties are broken by the
// smallest basic variable index (Bland). Returns -1 when no entry is
// positive (unbounded direction).
func (t *ratTableau) leavingRow(col int) int {
	best := -1
	var bestRatio *big.Rat
	for i := range t.a {
		if t.a[i][col].Sign() <= 0 {
			continue
		}
		ratio := new(big.Rat).Quo(t.b[i], t.a[i][col])
		switch {
		case best < 0, ratio.Cmp(bestRatio) < 0:
			best, bestRatio = i, ratio
		case ratio.Cmp(bestRatio) == 0 && t.basis[i] < t.basis[best]:
			best = i
		}
	}
	return best
}

func (t *ratTableau) pivot(row, col int) {
	pv := new(big.Rat).Set(t.a[row][col])
	inv := new(big.Rat).Inv(pv)
	for j := range t.a[row] {
		if t.a[row][j].Sign() != 0 {
			t.a[row][j].Mul(t.a[row][j], inv)
		}
	}
	t.b[row].Mul(t.b[row], inv)
	tmp := new(big.Rat)
	for i := range t.a {
		if i == row || t.a[i][col].Sign() == 0 {
			continue
		}
		factor := new(big.Rat).Set(t.a[i][col])
		for j := range t.a[i] {
			if t.a[row][j].Sign() == 0 {
				continue
			}
			tmp.Mul(factor, t.a[row][j])
			t.a[i][j].Sub(t.a[i][j], tmp)
		}
		tmp.Mul(factor, t.b[row])
		t.b[i].Sub(t.b[i], tmp)
	}
	t.basis[row] = col
}

func (t *ratTableau) objectiveValue() *big.Rat {
	v := new(big.Rat)
	tmp := new(big.Rat)
	for i, bi := range t.basis {
		if t.objective[bi].Sign() == 0 {
			continue
		}
		tmp.Mul(t.objective[bi], t.b[i])
		v.Add(v, tmp)
	}
	return v
}

// evictArtificials pivots basic artificial variables out of the basis after
// a feasible phase 1. Rows where no structural pivot exists are redundant and
// are left in place with a zero artificial (harmless once banned).
func (t *ratTableau) evictArtificials() {
	isArtificial := make(map[int]bool, len(t.artificials))
	for _, a := range t.artificials {
		isArtificial[a] = true
	}
	for i := range t.basis {
		if !isArtificial[t.basis[i]] {
			continue
		}
		for j := 0; j < t.ncols(); j++ {
			if isArtificial[j] {
				continue
			}
			if t.a[i][j].Sign() != 0 {
				t.pivot(i, j)
				break
			}
		}
	}
}

// banArtificials excludes artificial columns from future entering choices.
func (t *ratTableau) banArtificials() {
	for _, a := range t.artificials {
		t.banned[a] = true
	}
}

func (t *ratTableau) extract(p *Problem) *Solution {
	xcols := make([]*big.Rat, t.ncols())
	for j := range xcols {
		xcols[j] = new(big.Rat)
	}
	for i, bi := range t.basis {
		xcols[bi] = new(big.Rat).Set(t.b[i])
	}
	x := make([]*big.Rat, len(p.vars))
	for v := range p.vars {
		val := new(big.Rat).Set(xcols[t.plus[v]])
		if t.minus[v] >= 0 {
			val.Sub(val, xcols[t.minus[v]])
		}
		x[v] = val
	}
	value := new(big.Rat)
	tmp := new(big.Rat)
	for v, coef := range p.obj {
		tmp.Mul(coef, x[v])
		value.Add(value, tmp)
	}
	return &Solution{Status: Optimal, Value: value, X: x}
}
