// Package lp provides linear programming with two interchangeable backends:
// an exact two-phase primal simplex over arbitrary-precision rationals
// (math/big.Rat) with Bland's anti-cycling rule, and a float64 simplex for
// large instances. The paper's bounds (Proposition 3.6, Definition 3.5,
// Propositions 6.9 and 6.10) are all linear programs whose optima are
// rational with bit-length polynomial in the query, so the exact backend
// returns them without rounding; the float backend is used for the
// exponentially large entropy programs.
package lp

import (
	"fmt"
	"math/big"
)

// Sense is the optimization direction.
type Sense int

// Optimization senses.
const (
	Maximize Sense = iota
	Minimize
)

// Rel is a constraint relation.
type Rel int

// Constraint relations.
const (
	LE Rel = iota // ≤
	GE            // ≥
	EQ            // =
)

func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	default:
		return "="
	}
}

// VarKind describes the sign restriction of a variable.
type VarKind int

// Variable kinds.
const (
	NonNegative VarKind = iota
	Free
)

// Status is the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	default:
		return "unbounded"
	}
}

type varDef struct {
	name string
	kind VarKind
}

type constraint struct {
	coeffs map[int]*big.Rat
	rel    Rel
	rhs    *big.Rat
}

// Problem is a linear program under construction. The zero Problem is not
// usable; create one with NewProblem.
type Problem struct {
	sense Sense
	vars  []varDef
	obj   map[int]*big.Rat
	cons  []constraint
}

// NewProblem returns an empty linear program with the given sense.
func NewProblem(sense Sense) *Problem {
	return &Problem{sense: sense, obj: make(map[int]*big.Rat)}
}

// AddVariable adds a variable and returns its index.
func (p *Problem) AddVariable(name string, kind VarKind) int {
	p.vars = append(p.vars, varDef{name: name, kind: kind})
	return len(p.vars) - 1
}

// NumVariables returns the number of variables added so far.
func (p *Problem) NumVariables() int { return len(p.vars) }

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// VariableName returns the name given to variable v.
func (p *Problem) VariableName(v int) string { return p.vars[v].name }

// SetObjective sets the objective coefficient of variable v (default 0).
func (p *Problem) SetObjective(v int, c *big.Rat) {
	if v < 0 || v >= len(p.vars) {
		panic(fmt.Sprintf("lp: objective on unknown variable %d", v))
	}
	p.obj[v] = new(big.Rat).Set(c)
}

// AddConstraint adds the constraint Σ coeffs[v]·x_v  rel  rhs. The coeffs map
// is copied.
func (p *Problem) AddConstraint(coeffs map[int]*big.Rat, rel Rel, rhs *big.Rat) {
	cp := make(map[int]*big.Rat, len(coeffs))
	for v, c := range coeffs {
		if v < 0 || v >= len(p.vars) {
			panic(fmt.Sprintf("lp: constraint on unknown variable %d", v))
		}
		if c.Sign() != 0 {
			cp[v] = new(big.Rat).Set(c)
		}
	}
	p.cons = append(p.cons, constraint{coeffs: cp, rel: rel, rhs: new(big.Rat).Set(rhs)})
}

// Solution is the result of an exact solve.
type Solution struct {
	Status Status
	// Value is the objective value in the problem's original sense. It is
	// nil unless Status == Optimal.
	Value *big.Rat
	// X holds the value of each original variable. It is nil unless
	// Status == Optimal.
	X []*big.Rat
}

// FloatSolution is the result of a float64 solve.
type FloatSolution struct {
	Status Status
	Value  float64
	X      []float64
}

// Convenience rational constructors.

// R returns the rational n/d.
func R(n, d int64) *big.Rat { return big.NewRat(n, d) }

// RI returns the rational n/1.
func RI(n int64) *big.Rat { return big.NewRat(n, 1) }
