// Property-based cross-strategy harness: random conjunctive queries
// (varying arity, repeated variables, projections, cyclicity, functional
// dependencies) meet random databases, and every evaluation strategy —
// Naive, JoinProject, GenericJoin, Yannakakis when acyclic, and the
// Engine's planned execution — must produce the same Q(D). A failing case
// is shrunk testing/quick-style (atoms, dependencies, then tuples are
// removed while the disagreement persists) and reported as a minimal query
// in cq syntax together with the database instance.
//
// The external test package lets the harness drive the public Engine, whose
// package depends on eval.
package eval_test

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	cqbound "cqbound"
	"cqbound/internal/cq"
	"cqbound/internal/database"
	"cqbound/internal/datagen"
	"cqbound/internal/eval"
	"cqbound/internal/relation"
	"cqbound/internal/shard"
)

// propertyIterations is the number of random query/database pairs checked
// (the CI acceptance floor is 200).
const propertyIterations = 220

const propertyBaseSeed = 20260729

func TestPropertyStrategiesAgree(t *testing.T) {
	iters := propertyIterations
	if testing.Short() {
		iters = 60
	}
	// Cycle through generation profiles so the harness covers acyclic
	// chains, dense cyclic bodies, repeated variables and FDs.
	profiles := []datagen.QueryParams{
		{MaxVars: 5, MaxAtoms: 4, MaxArity: 3, HeadFraction: 0.7, RepeatRelationProb: 0.3, SimpleFDProb: 0.15},
		{MaxVars: 3, MaxAtoms: 5, MaxArity: 2, HeadFraction: 0.5, RepeatRelationProb: 0.6},
		{MaxVars: 6, MaxAtoms: 3, MaxArity: 4, HeadFraction: 0.9, RepeatRelationProb: 0.2, CompoundFDProb: 0.3},
		{MaxVars: 2, MaxAtoms: 3, MaxArity: 3, HeadFraction: 0.6, RepeatRelationProb: 0.5, SimpleFDProb: 0.3},
	}
	dbProfiles := []datagen.DBParams{
		{Tuples: 12, Universe: 6},
		{Tuples: 25, Universe: 4},
		{Tuples: 6, Universe: 12},
	}
	eng := cqbound.NewEngine()
	for i := 0; i < iters; i++ {
		rng := rand.New(rand.NewSource(propertyBaseSeed + int64(i)))
		q := datagen.RandomQuery(rng, profiles[i%len(profiles)])
		db := datagen.RandomDatabase(rng, q, dbProfiles[i%len(dbProfiles)])
		if msg := disagreement(eng, q, db); msg != "" {
			check := func(q *cq.Query, db *database.Database) string { return disagreement(eng, q, db) }
			q, db, msg = shrink(check, q, db, msg)
			t.Fatalf("iteration %d (seed %d): strategies disagree after shrinking: %s\n"+
				"minimal query:\n%s\nminimal database:\n%s",
				i, propertyBaseSeed+int64(i), msg, q, dumpDB(db))
		}
	}
}

// shardCounts are the partition counts the sharded property harness cycles
// through: P=1 (the degenerate single-shard view), tiny P, P larger than
// many of the random databases' distinct values (forcing empty shards).
var shardCounts = []int{1, 2, 3, 5, 16}

// TestPropertyShardedAgrees re-runs the harness's random query/database
// pairs comparing exchange-routed sharded execution — project-early and
// (when acyclic) Yannakakis through internal/shard, plus a WithSharding
// Engine — against unsharded Naive. The threshold is zero so every join,
// semijoin and projection takes the partitioned path regardless of size,
// covering empty shards, P=1, and partition reuse/repartition/broadcast
// routing as the random data produces them; the skew fraction is forced
// low (0.2) so hot-shard splitting fires on the Zipf-skewed database
// profiles instead of only on pathological inputs.
func TestPropertyShardedAgrees(t *testing.T) {
	iters := propertyIterations
	if testing.Short() {
		iters = 60
	}
	profiles := []datagen.QueryParams{
		{MaxVars: 5, MaxAtoms: 4, MaxArity: 3, HeadFraction: 0.7, RepeatRelationProb: 0.3, SimpleFDProb: 0.15},
		{MaxVars: 3, MaxAtoms: 5, MaxArity: 2, HeadFraction: 0.5, RepeatRelationProb: 0.6},
		{MaxVars: 6, MaxAtoms: 3, MaxArity: 4, HeadFraction: 0.9, RepeatRelationProb: 0.2, CompoundFDProb: 0.3},
		{MaxVars: 2, MaxAtoms: 3, MaxArity: 3, HeadFraction: 0.6, RepeatRelationProb: 0.5, SimpleFDProb: 0.3},
	}
	dbProfiles := []datagen.DBParams{
		{Tuples: 12, Universe: 6},
		{Tuples: 25, Universe: 4},
		{Tuples: 6, Universe: 12},
		// Zipf-skewed: one value dominates every column, hashing most rows
		// into one shard — the skew splitter's beat.
		{Tuples: 30, Universe: 8, ZipfS: 1.7},
		{Tuples: 20, Universe: 15, ZipfS: 2.5},
	}
	engines := make([]*cqbound.Engine, len(shardCounts))
	for i, p := range shardCounts {
		engines[i] = cqbound.NewEngine(cqbound.WithSharding(0, p), cqbound.WithSkewSplitting(propertySkewFraction))
	}
	for i := 0; i < iters; i++ {
		rng := rand.New(rand.NewSource(propertyBaseSeed + int64(i)))
		q := datagen.RandomQuery(rng, profiles[i%len(profiles)])
		db := datagen.RandomDatabase(rng, q, dbProfiles[i%len(dbProfiles)])
		p := shardCounts[i%len(shardCounts)]
		eng := engines[i%len(shardCounts)]
		if msg := shardedDisagreement(eng, p, q, db); msg != "" {
			check := func(q *cq.Query, db *database.Database) string { return shardedDisagreement(eng, p, q, db) }
			q, db, msg = shrink(check, q, db, msg)
			t.Fatalf("iteration %d (seed %d, shards %d): sharded execution disagrees after shrinking: %s\n"+
				"minimal query:\n%s\nminimal database:\n%s",
				i, propertyBaseSeed+int64(i), p, msg, q, dumpDB(db))
		}
	}
}

// propertySkewFraction forces hot-shard splitting on the harness's tiny
// relations: any shard holding over a fifth of its side's rows splits.
const propertySkewFraction = 0.2

// shardedDisagreement compares sharded execution at partition count p
// against unsharded Naive, returning a description of the first
// inconsistency ("" when all agree).
func shardedDisagreement(eng *cqbound.Engine, p int, q *cq.Query, db *database.Database) string {
	ctx := context.Background()
	opts := &shard.Options{MinRows: 0, Shards: p, SkewFraction: propertySkewFraction}
	ref, _, err := eval.NaiveCtx(ctx, q, db)
	if err != nil {
		return fmt.Sprintf("naive: %v", err)
	}
	check := func(name string, out *relation.Relation, err error) string {
		if err != nil {
			return fmt.Sprintf("%s: %v", name, err)
		}
		if !relation.Equal(ref, out) {
			return fmt.Sprintf("%s: %d tuples, naive has %d", name, out.Size(), ref.Size())
		}
		return ""
	}
	out, _, err := eval.JoinProjectExec(ctx, q, db, nil, opts)
	if msg := check("sharded join-project", out, err); msg != "" {
		return msg
	}
	if eval.IsAcyclic(q) {
		out, _, err = eval.YannakakisExec(ctx, q, db, opts)
		if msg := check("sharded yannakakis", out, err); msg != "" {
			return msg
		}
	}
	out, _, err = eng.Evaluate(ctx, q, db)
	if msg := check("sharded engine", out, err); msg != "" {
		return msg
	}
	return ""
}

// disagreement evaluates q under every strategy and returns a description
// of the first inconsistency ("" when all agree). Naive is the reference.
func disagreement(eng *cqbound.Engine, q *cq.Query, db *database.Database) string {
	ctx := context.Background()
	ref, _, err := eval.NaiveCtx(ctx, q, db)
	if err != nil {
		return fmt.Sprintf("naive: %v", err)
	}
	if ref.Arity() != len(q.Head.Vars) {
		return fmt.Sprintf("naive: output arity %d, head has %d positions", ref.Arity(), len(q.Head.Vars))
	}
	check := func(name string, out *relation.Relation, err error) string {
		if err != nil {
			return fmt.Sprintf("%s: %v", name, err)
		}
		if !relation.Equal(ref, out) {
			return fmt.Sprintf("%s: %d tuples, naive has %d", name, out.Size(), ref.Size())
		}
		return ""
	}
	out, _, err := eval.JoinProject(q, db)
	if msg := check("join-project", out, err); msg != "" {
		return msg
	}
	out, _, err = eval.GenericJoin(q, db)
	if msg := check("generic-join", out, err); msg != "" {
		return msg
	}
	if eval.IsAcyclic(q) {
		out, _, err = eval.Yannakakis(q, db)
		if msg := check("yannakakis", out, err); msg != "" {
			return msg
		}
	}
	out, _, err = eng.Evaluate(ctx, q, db)
	if msg := check("engine", out, err); msg != "" {
		return msg
	}
	return ""
}

// shrink greedily minimizes a failing (query, database) pair under the
// given check: it repeatedly tries dropping one body atom, one functional
// dependency, or one tuple, keeping any variant that still disagrees, until
// no single removal does (or the attempt budget runs out). It returns the
// smallest failing pair and its disagreement.
func shrink(check func(*cq.Query, *database.Database) string, q *cq.Query, db *database.Database, msg string) (*cq.Query, *database.Database, string) {
	budget := 3000
	for budget > 0 {
		improved := false
		// Drop a body atom (re-anchoring the head to surviving variables).
		for i := 0; i < len(q.Body) && budget > 0; i++ {
			cand := dropAtom(q, i)
			if cand == nil {
				continue
			}
			budget--
			if m := check(cand, db); m != "" {
				q, msg, improved = cand, m, true
				break
			}
		}
		if improved {
			continue
		}
		// Drop a functional dependency.
		for i := 0; i < len(q.FDs) && budget > 0; i++ {
			cand := q.Clone()
			cand.FDs = append(cand.FDs[:i], cand.FDs[i+1:]...)
			budget--
			if m := check(cand, db); m != "" {
				q, msg, improved = cand, m, true
				break
			}
		}
		if improved {
			continue
		}
		// Drop a tuple.
		for _, name := range db.Names() {
			r := db.Relation(name)
			for row := 0; row < r.Size() && budget > 0; row++ {
				cand := dropTuple(db, name, row)
				budget--
				if m := check(q, cand); m != "" {
					db, msg, improved = cand, m, true
					break
				}
			}
			if improved {
				break
			}
		}
		if !improved {
			break
		}
	}
	return q, db, msg
}

// dropAtom removes body atom i, restricting the head to variables that
// still occur (keeping at least one); nil when the variant is invalid or
// would be empty.
func dropAtom(q *cq.Query, i int) *cq.Query {
	if len(q.Body) <= 1 {
		return nil
	}
	cand := q.Clone()
	removed := cand.Body[i].Relation
	cand.Body = append(cand.Body[:i], cand.Body[i+1:]...)
	stillUsed := false
	for _, a := range cand.Body {
		if a.Relation == removed {
			stillUsed = true
			break
		}
	}
	if !stillUsed {
		var fds []cq.FD
		for _, f := range cand.FDs {
			if f.Relation != removed {
				fds = append(fds, f)
			}
		}
		cand.FDs = fds
	}
	bodyVars := make(map[cq.Variable]bool)
	for _, a := range cand.Body {
		for _, v := range a.Vars {
			bodyVars[v] = true
		}
	}
	var head []cq.Variable
	for _, v := range cand.Head.Vars {
		if bodyVars[v] {
			head = append(head, v)
		}
	}
	if len(head) == 0 {
		head = append(head, cand.Body[0].Vars[0])
	}
	cand.Head.Vars = head
	if cand.Validate() != nil {
		return nil
	}
	return cand
}

// dropTuple rebuilds db without row `row` of relation `name`.
func dropTuple(db *database.Database, name string, row int) *database.Database {
	out := database.New()
	for _, n := range db.Names() {
		src := db.Relation(n)
		if n != name {
			out.MustAdd(src.Clone(""))
			continue
		}
		dst := relation.New(src.Name, src.Attrs...)
		for i := 0; i < src.Size(); i++ {
			if i == row {
				continue
			}
			if _, err := dst.Insert(src.Row(i)); err != nil {
				panic(err)
			}
		}
		out.MustAdd(dst)
	}
	return out
}

func dumpDB(db *database.Database) string {
	var b strings.Builder
	for _, name := range db.Names() {
		fmt.Fprintf(&b, "%s\n", db.Relation(name))
	}
	return b.String()
}

// TestPropertyShrinkerProducesValidVariants pins the shrinker's own moves:
// every atom-drop variant it proposes must be a valid query, so a reported
// minimal counterexample is always runnable.
func TestPropertyShrinkerProducesValidVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		q := datagen.RandomQuery(rng, datagen.QueryParams{
			MaxVars: 5, MaxAtoms: 4, MaxArity: 3,
			HeadFraction: 0.6, RepeatRelationProb: 0.4, SimpleFDProb: 0.2,
		})
		for i := 0; i < len(q.Body); i++ {
			cand := dropAtom(q, i)
			if cand == nil {
				continue
			}
			if err := cand.Validate(); err != nil {
				t.Fatalf("dropAtom(%s, %d) produced invalid query %s: %v", q, i, cand, err)
			}
		}
	}
}
