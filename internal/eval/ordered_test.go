package eval

import (
	"context"
	"testing"

	"cqbound/internal/cq"
	"cqbound/internal/database"
	"cqbound/internal/relation"
)

func chainDB(t *testing.T) *database.Database {
	t.Helper()
	db := database.New()
	r := relation.New("R", "a", "b")
	s := relation.New("S", "a", "b")
	for _, p := range [][2]string{{"1", "2"}, {"2", "3"}, {"3", "4"}} {
		r.Add(p[0], p[1])
		s.Add(p[1], p[0])
	}
	db.MustAdd(r)
	db.MustAdd(s)
	return db
}

func TestJoinProjectOrderedPermutation(t *testing.T) {
	q := cq.MustParse("Q(X,Z) <- R(X,Y), S(Y,Z).")
	db := chainDB(t)
	base, _, err := JoinProject(q, db)
	if err != nil {
		t.Fatal(err)
	}
	swapped, _, err := JoinProjectOrdered(context.Background(), q, db, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(base, swapped) {
		t.Errorf("reordered evaluation differs: %v vs %v", base, swapped)
	}
	// Bad orders must be rejected.
	if _, _, err := JoinProjectOrdered(context.Background(), q, db, []int{0, 0}); err == nil {
		t.Error("duplicate order accepted")
	}
	if _, _, err := JoinProjectOrdered(context.Background(), q, db, []int{0}); err == nil {
		t.Error("short order accepted")
	}
}

func TestEmptyIntermediateEarlyExit(t *testing.T) {
	q := cq.MustParse("Q(X,Z) <- R(X,Y), S(Y,Z).")
	db := database.New()
	db.MustAdd(relation.New("R", "a", "b")) // empty
	s := relation.New("S", "a", "b")
	s.Add("y", "z")
	db.MustAdd(s)

	out, st, err := JoinProjectOrdered(context.Background(), q, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 0 || !st.EarlyExit {
		t.Errorf("join-project: size=%d earlyExit=%v", out.Size(), st.EarlyExit)
	}
	out, st, err = YannakakisCtx(context.Background(), q, db)
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 0 || !st.EarlyExit {
		t.Errorf("yannakakis: size=%d earlyExit=%v", out.Size(), st.EarlyExit)
	}
	out, st, err = GenericJoinCtx(context.Background(), q, db)
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 0 || !st.EarlyExit {
		t.Errorf("generic join: size=%d earlyExit=%v", out.Size(), st.EarlyExit)
	}
}

// TestEarlyExitDoesNotMaskSchemaErrors: an empty first relation must not
// hide that a later atom's relation is missing — every strategy validates
// the whole body before evaluating.
func TestEarlyExitDoesNotMaskSchemaErrors(t *testing.T) {
	q := cq.MustParse("Q(X,Z) <- R(X,Y), S(Y,Z).")
	db := database.New()
	db.MustAdd(relation.New("R", "a", "b")) // empty; S absent entirely
	ctx := context.Background()
	if _, _, err := NaiveCtx(ctx, q, db); err == nil {
		t.Error("naive: missing relation masked by empty intermediate")
	}
	if _, _, err := JoinProjectOrdered(ctx, q, db, nil); err == nil {
		t.Error("join-project: missing relation masked by empty intermediate")
	}
	if _, _, err := GenericJoinCtx(ctx, q, db); err == nil {
		t.Error("generic join: missing relation masked by empty intermediate")
	}
	if _, _, err := YannakakisCtx(ctx, q, db); err == nil {
		t.Error("yannakakis: missing relation masked by empty intermediate")
	}
}

func TestCancellation(t *testing.T) {
	q := cq.MustParse("Q(X,Z) <- R(X,Y), S(Y,Z).")
	db := chainDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := JoinProjectOrdered(ctx, q, db, nil); err == nil {
		t.Error("join-project ignored cancellation")
	}
	if _, _, err := GenericJoinCtx(ctx, q, db); err == nil {
		t.Error("generic join ignored cancellation")
	}
	if _, _, err := YannakakisCtx(ctx, q, db); err == nil {
		t.Error("yannakakis ignored cancellation")
	}
	if _, _, err := NaiveCtx(ctx, q, db); err == nil {
		t.Error("naive ignored cancellation")
	}
}
