// Property-based streaming harness: the same random query/database pairs
// as the sharded harness, evaluated through the column-batch pipeline
// executors at every partition count AND every batch size — including
// batch size 1, where each stage hands over single-row batches and any
// off-by-one in pipeline handoff, exchange scatter, buffered replay or
// skew splitting surfaces immediately. Each pair runs twice: unlimited,
// and under the forced-spill 256-byte budget so governed shards are
// parked and reloaded while the pipelines are still pulling. Outputs must
// be identical to unsharded Naive in all configurations.
package eval_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	cqbound "cqbound"
	"cqbound/internal/cq"
	"cqbound/internal/database"
	"cqbound/internal/datagen"
	"cqbound/internal/eval"
	"cqbound/internal/relation"
	"cqbound/internal/shard"
	"cqbound/internal/spill"
)

// streamBatchSizes are the batch sizes the streaming harness cycles
// through: 1 (every stage boundary exercised per row), a small prime that
// never divides the harness relations evenly (partial final batches
// everywhere), and the production default.
var streamBatchSizes = []int{1, 7, 1024}

// TestPropertyStreamedAgrees re-runs the harness's random pairs through
// the streamed executors — join-project and (when acyclic) Yannakakis
// pipelines, plus default-streaming Engines — across the full cross of
// shard counts and batch sizes, with and without a forced-spill budget.
// After the sweep the shared tiny governor must have evicted and
// reloaded, and the streamed Engines must actually have streamed batches,
// or the harness was not exercising the paths it exists for.
func TestPropertyStreamedAgrees(t *testing.T) {
	iters := propertyIterations
	if testing.Short() {
		iters = 60
	}
	profiles := []datagen.QueryParams{
		{MaxVars: 5, MaxAtoms: 4, MaxArity: 3, HeadFraction: 0.7, RepeatRelationProb: 0.3, SimpleFDProb: 0.15},
		{MaxVars: 3, MaxAtoms: 5, MaxArity: 2, HeadFraction: 0.5, RepeatRelationProb: 0.6},
		{MaxVars: 6, MaxAtoms: 3, MaxArity: 4, HeadFraction: 0.9, RepeatRelationProb: 0.2, CompoundFDProb: 0.3},
		{MaxVars: 2, MaxAtoms: 3, MaxArity: 3, HeadFraction: 0.6, RepeatRelationProb: 0.5, SimpleFDProb: 0.3},
	}
	dbProfiles := []datagen.DBParams{
		{Tuples: 12, Universe: 6},
		{Tuples: 25, Universe: 4},
		{Tuples: 6, Universe: 12},
		{Tuples: 30, Universe: 8, ZipfS: 1.7},
		{Tuples: 20, Universe: 15, ZipfS: 2.5},
	}
	gov := spill.NewGovernor(spillBudgetBytes, t.TempDir())
	defer gov.Close()
	// Engines are built lazily per (shards, batch size) combination —
	// shard count and batch size cycle with coprime periods, so every
	// combination occurs. The streamed path is the Engine default; only
	// the batch size varies.
	unlimited := map[[2]int]*cqbound.Engine{}
	budgeted := map[[2]int]*cqbound.Engine{}
	engineFor := func(m map[[2]int]*cqbound.Engine, p, bs int, extra ...cqbound.Option) *cqbound.Engine {
		key := [2]int{p, bs}
		if eng, ok := m[key]; ok {
			return eng
		}
		opts := append([]cqbound.Option{
			cqbound.WithSharding(0, p),
			cqbound.WithSkewSplitting(propertySkewFraction),
			cqbound.WithBatchSize(bs),
		}, extra...)
		eng := cqbound.NewEngine(opts...)
		t.Cleanup(func() { eng.Close() })
		m[key] = eng
		return eng
	}
	for i := 0; i < iters; i++ {
		rng := rand.New(rand.NewSource(propertyBaseSeed + int64(i)))
		q := datagen.RandomQuery(rng, profiles[i%len(profiles)])
		db := datagen.RandomDatabase(rng, q, dbProfiles[i%len(dbProfiles)])
		p := shardCounts[i%len(shardCounts)]
		bs := streamBatchSizes[i%len(streamBatchSizes)]
		engU := engineFor(unlimited, p, bs)
		engB := engineFor(budgeted, p, bs,
			cqbound.WithMemoryBudget(spillBudgetBytes), cqbound.WithSpillDir(t.TempDir()))
		if msg := streamedDisagreement(engU, engB, gov, p, bs, q, db); msg != "" {
			check := func(q *cq.Query, db *database.Database) string {
				return streamedDisagreement(engU, engB, gov, p, bs, q, db)
			}
			q, db, msg = shrink(check, q, db, msg)
			t.Fatalf("iteration %d (seed %d, shards %d, batch %d): streamed execution disagrees after shrinking: %s\n"+
				"minimal query:\n%s\nminimal database:\n%s",
				i, propertyBaseSeed+int64(i), p, bs, msg, q, dumpDB(db))
		}
	}
	if st := gov.Snapshot(); st.Evictions == 0 || st.ReloadedShards == 0 {
		t.Fatalf("the forced-spill budget never spilled under streaming (evictions=%d reloads=%d)",
			st.Evictions, st.ReloadedShards)
	}
	for _, eng := range unlimited {
		if st := eng.StreamStats(); st.BatchesProduced == 0 || st.RowsStreamed == 0 {
			t.Fatalf("a streamed engine never streamed (batches=%d rows=%d): the harness ran materialized",
				st.BatchesProduced, st.RowsStreamed)
		}
	}
}

// streamedDisagreement compares streamed execution at partition count p
// and batch size bs against unsharded Naive — bare executors unlimited
// and under the shared tiny governor, then the two Engines — returning a
// description of the first inconsistency ("" when all agree).
func streamedDisagreement(engU, engB *cqbound.Engine, gov *spill.Governor, p, bs int, q *cq.Query, db *database.Database) string {
	ctx := context.Background()
	ref, _, err := eval.NaiveCtx(ctx, q, db)
	if err != nil {
		return fmt.Sprintf("naive: %v", err)
	}
	check := func(name string, out *relation.Relation, err error) string {
		if err != nil {
			return fmt.Sprintf("%s: %v", name, err)
		}
		if !relation.Equal(ref, out) {
			return fmt.Sprintf("%s: %d tuples, naive has %d", name, out.Size(), ref.Size())
		}
		return ""
	}
	run := func(tag string, opts *shard.Options) string {
		out, _, err := eval.JoinProjectExec(ctx, q, db, nil, opts)
		if msg := check(tag+" join-project", out, err); msg != "" {
			return msg
		}
		if eval.IsAcyclic(q) {
			out, _, err = eval.YannakakisExec(ctx, q, db, opts)
			if msg := check(tag+" yannakakis", out, err); msg != "" {
				return msg
			}
		}
		return ""
	}
	if msg := run("streamed", &shard.Options{
		MinRows: 0, Shards: p, SkewFraction: propertySkewFraction, BatchSize: bs,
	}); msg != "" {
		return msg
	}
	// One scope per pair, like Engine.Evaluate, so the 220 pairs'
	// intermediate shards don't accumulate in the shared governor.
	scope := spill.NewScope()
	defer scope.Close()
	if msg := run("streamed+spill", &shard.Options{
		MinRows: 0, Shards: p, SkewFraction: propertySkewFraction, BatchSize: bs,
		Spill: gov, Scope: scope,
	}); msg != "" {
		return msg
	}
	out, _, err := engU.Evaluate(ctx, q, db)
	if msg := check("streamed engine", out, err); msg != "" {
		return msg
	}
	out, _, err = engB.Evaluate(ctx, q, db)
	if msg := check("streamed budgeted engine", out, err); msg != "" {
		return msg
	}
	return ""
}

// TestStreamedBatchSizeOneMatchesDefault pins the extreme directly on one
// deterministic acyclic case: a path query evaluated at batch size 1 and
// at the default must produce identical output, so any stage that
// accidentally depends on batch granularity (dedup, replay, scatter)
// fails loudly without waiting for the random sweep.
func TestStreamedBatchSizeOneMatchesDefault(t *testing.T) {
	q := cq.MustParse("Q(A,D) <- R(A,B), S(B,C), T(C,D).")
	db := datagen.EdgeDB(rand.New(rand.NewSource(9)), []string{"R", "S", "T"}, 200, 30)
	ref, _, err := eval.NaiveCtx(context.Background(), q, db)
	if err != nil {
		t.Fatal(err)
	}
	for _, bs := range []int{1, 1024} {
		opts := &shard.Options{MinRows: 0, Shards: 4, BatchSize: bs}
		out, _, err := eval.YannakakisExec(context.Background(), q, db, opts)
		if err != nil {
			t.Fatalf("batch %d: %v", bs, err)
		}
		if !relation.Equal(ref, out) {
			t.Fatalf("batch %d: %d tuples, naive has %d", bs, out.Size(), ref.Size())
		}
	}
}
