package eval

// Strategy implementations; package documentation lives in doc.go.

import (
	"context"
	"fmt"
	"slices"
	"sort"
	"strings"

	"cqbound/internal/cq"
	"cqbound/internal/database"
	"cqbound/internal/relation"
	"cqbound/internal/shard"
	"cqbound/internal/trace"
)

// Stats records what a strategy did.
type Stats struct {
	// MaxIntermediate is the largest intermediate binding relation built.
	MaxIntermediate int
	// Joins is the number of binary joins (or extension steps) performed.
	Joins int
	// EarlyExit reports that evaluation stopped because an intermediate
	// result was empty, skipping the remaining atoms.
	EarlyExit bool
}

// Naive evaluates q by folding natural joins left to right and projecting at
// the end.
func Naive(q *cq.Query, db *database.Database) (*relation.Relation, Stats, error) {
	return NaiveCtx(context.Background(), q, db)
}

// NaiveCtx is Naive with cancellation and empty-intermediate early exit.
func NaiveCtx(ctx context.Context, q *cq.Query, db *database.Database) (*relation.Relation, Stats, error) {
	var st Stats
	if err := validateAtoms(q, db); err != nil {
		return nil, st, err
	}
	cur, err := bindingRelation(q.Body[0], db)
	if err != nil {
		return nil, st, err
	}
	st.MaxIntermediate = cur.Size()
	for _, a := range q.Body[1:] {
		if err := ctx.Err(); err != nil {
			return nil, st, err
		}
		if cur.Size() == 0 {
			st.EarlyExit = true
			return emptyOutput(q), st, nil
		}
		next, err := bindingRelation(a, db)
		if err != nil {
			return nil, st, err
		}
		cur, err = relation.NaturalJoin(cur, next)
		if err != nil {
			return nil, st, err
		}
		st.Joins++
		if cur.Size() > st.MaxIntermediate {
			st.MaxIntermediate = cur.Size()
		}
	}
	out, err := headProjection(q, cur)
	return out, st, err
}

// JoinProject evaluates q like Naive but projects each intermediate onto the
// variables still needed: head variables plus variables of later atoms.
func JoinProject(q *cq.Query, db *database.Database) (*relation.Relation, Stats, error) {
	return JoinProjectOrdered(context.Background(), q, db, nil)
}

// JoinProjectOrdered is the project-early plan evaluated along a chosen atom
// order: order is a permutation of body-atom indices (nil keeps the body's
// own order). Joining the most selective atoms first keeps intermediates
// small; an empty intermediate ends evaluation immediately.
func JoinProjectOrdered(ctx context.Context, q *cq.Query, db *database.Database, order []int) (*relation.Relation, Stats, error) {
	return JoinProjectExec(ctx, q, db, order, nil)
}

// JoinProjectExec is JoinProjectOrdered with exchange-routed sharded
// execution: when opts enables sharding, every join, interleaved
// projection, and the head projection run partition-parallel over
// internal/shard, and the intermediate result flows between steps as a
// shard.Stream that stays partitioned — each join reuses the partitioning
// the previous operator left when it aligns with a join column, and the
// exchange repartitions (or broadcasts against) it otherwise, so a
// multi-join plan never collapses to one shard after its first join.
// Steps whose inputs are below opts.MinRows — and joins with no shared
// column to partition on — fall back to single-shard operators per step.
// Options carrying a BatchSize run the streamed form instead: the same
// plan over pull-based column-batch pipelines (internal/batch) that never
// materialize an intermediate. nil opts is exactly JoinProjectOrdered.
func JoinProjectExec(ctx context.Context, q *cq.Query, db *database.Database, order []int, opts *shard.Options) (*relation.Relation, Stats, error) {
	if opts.Streaming() {
		return joinProjectStreamed(ctx, q, db, order, opts)
	}
	var st Stats
	if err := validateAtoms(q, db); err != nil {
		return nil, st, err
	}
	body, err := orderedBody(q, order)
	if err != nil {
		return nil, st, err
	}
	needLater := make([]map[cq.Variable]bool, len(body)+1)
	needLater[len(body)] = map[cq.Variable]bool{}
	for i := len(body) - 1; i >= 0; i-- {
		m := make(map[cq.Variable]bool)
		for v := range needLater[i+1] {
			m[v] = true
		}
		for _, v := range body[i].Vars {
			m[v] = true
		}
		needLater[i] = m
	}
	head := q.HeadVarSet()

	project := func(cur shard.Stream, after int) (shard.Stream, error) {
		attrs := cur.Attrs()
		var keep []string
		for _, attr := range attrs {
			v := cq.Variable(attr)
			if head[v] || needLater[after+1][v] {
				keep = append(keep, attr)
			}
		}
		if len(keep) == len(attrs) {
			return cur, nil
		}
		return projectNames(ctx, opts, cur, keep)
	}

	tr := opts.Tracer()
	fold := stageSpan(opts, trace.KindStage, "join-project fold")
	defer fold.End()
	first, err := bindingRelation(body[0], db)
	if err != nil {
		return nil, st, err
	}
	if tr != nil {
		scanSpan(opts, first.Name, first.Size())
	}
	cur := shard.StreamOf(first)
	if cur, err = project(cur, 0); err != nil {
		return nil, st, err
	}
	st.MaxIntermediate = cur.Size()
	for i, a := range body[1:] {
		if err := ctx.Err(); err != nil {
			return nil, st, err
		}
		if cur.Size() == 0 {
			st.EarlyExit = true
			return emptyOutput(q), st, nil
		}
		next, err := bindingRelation(a, db)
		if err != nil {
			return nil, st, err
		}
		var jsp *trace.Span
		if tr != nil {
			jsp = tr.Op(trace.KindJoin, "⋈ "+next.Name)
			jsp.AddIn(cur.Size() + next.Size())
			jsp.SetEst(estimateJoin(cur, shard.StreamOf(next)))
		}
		mk := markSpill(opts, tr != nil)
		// No pin on cur here: pinning happens below the exchange (the
		// join pins the aligned views it fans out over, the relation
		// operators pin the shards they scan), so a parked intermediate
		// can still be repartitioned one shard at a time instead of being
		// forced whole into memory up front.
		cur, err = shard.NaturalJoinStream(ctx, opts, cur, shard.StreamOf(next))
		if err != nil {
			return nil, st, err
		}
		setStreamOut(jsp, cur)
		mk.annotate(jsp)
		jsp.End()
		st.Joins++
		if cur.Size() > st.MaxIntermediate {
			st.MaxIntermediate = cur.Size()
		}
		if cur, err = project(cur, i+1); err != nil {
			return nil, st, err
		}
	}
	fold.End()
	out, err := headProjectionExec(ctx, opts, q, cur)
	return out, st, err
}

// projectNames is Relation.Project routed through the exchange-routed
// projection: name resolution happens here once, then shard.ProjectStream
// decides whether to project shard-by-shard (the stream's partition key is
// kept), exchange onto a kept column first, or fall back single-shard.
func projectNames(ctx context.Context, opts *shard.Options, cur shard.Stream, attrs []string) (shard.Stream, error) {
	idx := make([]int, len(attrs))
	for i, a := range attrs {
		j := slices.Index(cur.Attrs(), a)
		if j < 0 {
			return shard.Stream{}, fmt.Errorf("eval: unknown attribute %q in projection", a)
		}
		idx[i] = j
	}
	var psp *trace.Span
	if tr := opts.Tracer(); tr != nil {
		psp = tr.Op(trace.KindProject, "π "+strings.Join(attrs, ","))
		psp.AddIn(cur.Size())
		psp.SetEst(estimateProject(cur, attrs))
	}
	out, err := shard.ProjectStream(ctx, opts, cur, idx)
	if err != nil {
		psp.End()
		return out, err
	}
	setStreamOut(psp, out)
	psp.End()
	return out, nil
}

// orderedBody returns the body atoms along the given permutation of indices
// (nil means identity).
func orderedBody(q *cq.Query, order []int) ([]cq.Atom, error) {
	if order == nil {
		return q.Body, nil
	}
	if len(order) != len(q.Body) {
		return nil, fmt.Errorf("eval: atom order has %d entries for %d atoms", len(order), len(q.Body))
	}
	body := make([]cq.Atom, len(order))
	seen := make([]bool, len(q.Body))
	for i, j := range order {
		if j < 0 || j >= len(q.Body) || seen[j] {
			return nil, fmt.Errorf("eval: atom order %v is not a permutation of the body", order)
		}
		seen[j] = true
		body[i] = q.Body[j]
	}
	return body, nil
}

// validateAtoms checks that every body atom has a database relation of the
// right arity. The strategies call it before evaluating so that the
// empty-intermediate early exit cannot mask a missing relation or an arity
// mismatch behind a later atom.
func validateAtoms(q *cq.Query, db *database.Database) error {
	for _, a := range q.Body {
		r := db.Relation(a.Relation)
		if r == nil {
			return fmt.Errorf("eval: missing relation %s", a.Relation)
		}
		if r.Arity() != a.Arity() {
			return fmt.Errorf("eval: relation %s arity %d, atom wants %d", a.Relation, r.Arity(), a.Arity())
		}
	}
	return nil
}

// headAttrs names the output attributes p1..pk for the head's positions.
func headAttrs(q *cq.Query) []string {
	attrs := make([]string, len(q.Head.Vars))
	for i := range attrs {
		attrs[i] = fmt.Sprintf("p%d", i+1)
	}
	return attrs
}

// emptyOutput builds an empty Q(D) with the head's schema.
func emptyOutput(q *cq.Query) *relation.Relation {
	return relation.New(q.Head.Relation, headAttrs(q)...)
}

// bindingRelation converts atom a over its database relation into a relation
// whose attributes are the atom's distinct variables (named by the
// variables) and whose tuples are the substitutions θ with θ(a) ∈ R.
// Repeated variables inside the atom act as a selection.
//
// When the atom has no repeated variables — the common case — the binding
// relation is the base relation with renamed columns, which the interned
// columnar store provides as an O(arity) copy-on-write view: no tuples are
// copied, and statistics, hash indexes and tries memoized on the base
// relation keep serving the view.
func bindingRelation(a cq.Atom, db *database.Database) (*relation.Relation, error) {
	r := db.Relation(a.Relation)
	if r == nil {
		return nil, fmt.Errorf("eval: missing relation %s", a.Relation)
	}
	if r.Arity() != a.Arity() {
		return nil, fmt.Errorf("eval: relation %s arity %d, atom wants %d", a.Relation, r.Arity(), a.Arity())
	}
	vars := a.DistinctVars()
	if len(vars) == len(a.Vars) {
		attrs := make([]string, len(vars))
		for i, v := range vars {
			attrs[i] = string(v)
		}
		return r.Rename("bind_"+a.Relation, attrs...)
	}
	// Repeated variables: filter rows whose repeated positions disagree,
	// projecting onto the first occurrence of each variable. The filtered
	// relation depends only on the repetition PATTERN — which positions
	// repeat which earlier position — not on the variable names, so it is
	// built once per (relation, pattern) in the relation's memo table
	// (shared across renames, invalidated by inserts) and renamed to this
	// atom's variables per call.
	attrs := make([]string, len(vars))
	for i, v := range vars {
		attrs[i] = string(v)
	}
	cached := r.Memo(bindingPatternKey(a), func() any {
		return buildRepeatedBinding(a, r)
	}).(*relation.Relation)
	return cached.Rename("bind_"+a.Relation, attrs...)
}

// bindingPatternKey is the memo key of an atom's repeated-variable binding:
// for each position, the position of the variable's first occurrence.
// Atoms with the same pattern over the same relation share the filtered
// build regardless of how their variables are named.
func bindingPatternKey(a cq.Atom) string {
	first := make(map[cq.Variable]int, len(a.Vars))
	key := make([]byte, 0, 8+len(a.Vars))
	key = append(key, "bindpat:"...)
	for i, v := range a.Vars {
		j, seen := first[v]
		if !seen {
			first[v] = i
			j = i
		}
		key = append(key, byte(j))
	}
	return string(key)
}

// buildRepeatedBinding materializes the repeated-variable selection with
// positional attribute names (the memo entry is name-agnostic; callers
// rename). Insert cannot fail here — the tuple arity matches the schema by
// construction — so the build is infallible, as Memo requires.
func buildRepeatedBinding(a cq.Atom, r *relation.Relation) *relation.Relation {
	vars := a.DistinctVars()
	attrs := make([]string, len(vars))
	pos := make(map[cq.Variable]int, len(vars))
	for i, v := range vars {
		attrs[i] = fmt.Sprintf("b%d", i)
		pos[v] = i
	}
	out := relation.New("bindpat", attrs...)
	bound := make(relation.Tuple, len(vars))
	set := make([]bool, len(vars))
	r.Each(func(t relation.Tuple) bool {
		for j := range set {
			set[j] = false
		}
		for i, v := range a.Vars {
			j := pos[v]
			if set[j] && bound[j] != t[i] {
				return true
			}
			bound[j] = t[i]
			set[j] = true
		}
		out.Insert(bound)
		return true
	})
	return out
}

// headProjection builds Q(D) from a binding relation containing (at least)
// every head variable as an attribute. Head positions may repeat variables;
// output attributes are named p1..pk and the relation carries the head name.
func headProjection(q *cq.Query, bind *relation.Relation) (*relation.Relation, error) {
	return headProjectionExec(context.Background(), nil, q, shard.StreamOf(bind))
}

// headProjectionExec is headProjection through the exchange-routed
// projection: the final dedup over Q(D) — often the largest map an
// evaluation builds — is split across partitions of a head column when
// opts enables sharding, reusing the partitioning the last join left
// behind whenever its key is a head variable.
func headProjectionExec(ctx context.Context, opts *shard.Options, q *cq.Query, bind shard.Stream) (*relation.Relation, error) {
	idx := make([]int, len(q.Head.Vars))
	for i, v := range q.Head.Vars {
		j := slices.Index(bind.Attrs(), string(v))
		if j < 0 {
			return nil, fmt.Errorf("eval: head variable %s missing from bindings", v)
		}
		idx[i] = j
	}
	hs := stageSpan(opts, trace.KindStage, "head projection")
	hs.AddIn(bind.Size())
	mk := markSpill(opts, hs != nil)
	proj, err := shard.ProjectStream(ctx, opts, bind, idx)
	if err != nil {
		hs.End()
		return nil, err
	}
	setStreamOut(hs, proj)
	mk.annotate(hs)
	hs.End()
	return proj.Rel().Rename(q.Head.Relation, headAttrs(q)...)
}

// GenericJoin evaluates q with a worst-case optimal variable-at-a-time
// backtracking join.
func GenericJoin(q *cq.Query, db *database.Database) (*relation.Relation, Stats, error) {
	return GenericJoinCtx(context.Background(), q, db)
}

// GenericJoinCtx evaluates q with a worst-case optimal variable-at-a-time
// backtracking join: variables are ordered by descending atom frequency, a
// per-atom trie indexes each binding relation along that order, and each
// variable is extended by intersecting the candidate sets of all atoms
// containing it, iterating over the smallest. Cancellation is checked at
// every extension step.
func GenericJoinCtx(ctx context.Context, q *cq.Query, db *database.Database) (*relation.Relation, Stats, error) {
	return GenericJoinExec(ctx, q, db, nil)
}

// GenericJoinExec is GenericJoinCtx taking the evaluation options. The
// search tree is single-shard by design (ROADMAP keeps sharding it as an
// open item), so the options carry only the tracer: under tracing each
// atom's trie build becomes a scan span and each variable of the global
// order an extension span counting the partial assignments that survived
// that level — the worst-case-optimal analogue of per-join intermediate
// sizes.
func GenericJoinExec(ctx context.Context, q *cq.Query, db *database.Database, opts *shard.Options) (*relation.Relation, Stats, error) {
	var st Stats
	if err := validateAtoms(q, db); err != nil {
		return nil, st, err
	}
	tr := opts.Tracer()
	stage := stageSpan(opts, trace.KindStage, "generic join")
	defer stage.End()
	vars := q.Variables()
	freq := make(map[cq.Variable]int)
	for _, a := range q.Body {
		for _, v := range a.DistinctVars() {
			freq[v]++
		}
	}
	order := append([]cq.Variable(nil), vars...)
	sort.SliceStable(order, func(i, j int) bool { return freq[order[i]] > freq[order[j]] })
	rank := make(map[cq.Variable]int, len(order))
	for i, v := range order {
		rank[v] = i
	}

	// Build a trie per atom over the atom's variables sorted by global rank.
	// Tries are memoized on the binding relation — which for atoms without
	// repeated variables is a view of the base relation, so repeated
	// evaluations (and concurrent batch evaluations) share one trie per
	// (relation, column order) until the relation grows.
	type atomIndex struct {
		vars []cq.Variable // sorted by rank
		root *trieNode
	}
	atoms := make([]*atomIndex, len(q.Body))
	for i, a := range q.Body {
		bind, err := bindingRelation(a, db)
		if err != nil {
			return nil, st, err
		}
		if bind.Size() == 0 {
			st.EarlyExit = true
			return emptyOutput(q), st, nil
		}
		av := a.DistinctVars()
		sort.Slice(av, func(x, y int) bool { return rank[av[x]] < rank[av[y]] })
		cols := make([]int, len(av))
		for j, v := range av {
			cols[j] = bind.AttrIndex(string(v))
		}
		var tsp *trace.Span
		if tr != nil {
			tsp = tr.Op(trace.KindScan, "trie "+bind.Name)
			tsp.AddIn(bind.Size())
		}
		atoms[i] = &atomIndex{vars: av, root: trieFor(bind, cols)}
		tsp.End()
	}

	// cursors[i] tracks atom i's current trie node; depth advances when the
	// global order reaches one of the atom's variables.
	assignment := make(map[cq.Variable]relation.Value, len(order))
	out := emptyOutput(q)

	// levelCounts[k] counts partial assignments surviving variable k —
	// the per-level intermediate sizes of the search tree. Counted only
	// under tracing (one branch per extension otherwise skipped).
	var levelCounts []int64
	if tr != nil {
		levelCounts = make([]int64, len(order))
	}

	cursors := make([]*trieNode, len(atoms))
	for i := range atoms {
		cursors[i] = atoms[i].root
	}

	var extend func(level int) error
	extend = func(level int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if level == len(order) {
			t := make(relation.Tuple, len(q.Head.Vars))
			for i, v := range q.Head.Vars {
				t[i] = assignment[v]
			}
			_, err := out.Insert(t)
			return err
		}
		v := order[level]
		// Atoms whose next variable is v.
		var active []int
		smallest := -1
		for i, ai := range atoms {
			d := cursors[i].depth
			if d < len(ai.vars) && ai.vars[d] == v {
				active = append(active, i)
				if smallest < 0 || len(cursors[i].children) < len(cursors[smallest].children) {
					smallest = i
				}
			}
		}
		if len(active) == 0 {
			// Cannot happen for connected use: every variable occurs in some
			// atom, and trie depth tracks the global order.
			return fmt.Errorf("eval: variable %s has no active atom", v)
		}
		st.Joins++
		for val, next := range cursors[smallest].children {
			ok := true
			saved := make([]*trieNode, 0, len(active))
			for _, i := range active {
				saved = append(saved, cursors[i])
			}
			for _, i := range active {
				if i == smallest {
					cursors[i] = next
					continue
				}
				child, exists := cursors[i].children[val]
				if !exists {
					ok = false
					break
				}
				cursors[i] = child
			}
			if ok {
				if levelCounts != nil {
					levelCounts[level]++
				}
				assignment[v] = val
				if err := extend(level + 1); err != nil {
					return err
				}
			}
			for k, i := range active {
				cursors[i] = saved[k]
			}
		}
		return nil
	}
	if err := extend(0); err != nil {
		return nil, st, err
	}
	if tr != nil {
		for level, v := range order {
			sp := tr.Op(trace.KindJoin, "extend "+string(v))
			sp.AddOut(int(levelCounts[level]))
			sp.End()
		}
		stage.AddOut(out.Size())
	}
	st.MaxIntermediate = out.Size()
	return out, st, nil
}

type trieNode struct {
	depth    int
	children map[relation.Value]*trieNode
}

func newTrieNode() *trieNode {
	return &trieNode{children: make(map[relation.Value]*trieNode)}
}

func (n *trieNode) child(v relation.Value) *trieNode {
	c, ok := n.children[v]
	if !ok {
		c = &trieNode{depth: n.depth + 1, children: make(map[relation.Value]*trieNode)}
		n.children[v] = c
	}
	return c
}

// trieFor builds (or fetches) the trie over r's rows along the given column
// order. The trie is cached in r's size-keyed memo table next to its
// statistics and hash indexes, and is read-only once built, so concurrent
// evaluations can share it.
func trieFor(r *relation.Relation, cols []int) *trieNode {
	key := make([]byte, 0, 5+4*len(cols))
	key = append(key, "trie:"...)
	for _, c := range cols {
		key = append(key, byte(c), byte(c>>8), byte(c>>16), byte(c>>24))
	}
	return r.Memo(string(key), func() any {
		root := newTrieNode()
		for i := 0; i < r.Size(); i++ {
			node := root
			for _, c := range cols {
				node = node.child(r.At(i, c))
			}
		}
		return root
	}).(*trieNode)
}
