// Property-based spill harness: the same random query/database pairs as
// the sharded harness, evaluated under a memory budget small enough that
// the governor must park shards mid-plan, with outputs required identical
// to unsharded Naive. The budget-forced path exercises eviction of
// memoized base partitions between iterations, reloads inside joins and
// semijoins, the streaming repartition of governed views, and the final
// materialization reading parked output shards back.
package eval_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	cqbound "cqbound"
	"cqbound/internal/cq"
	"cqbound/internal/database"
	"cqbound/internal/datagen"
	"cqbound/internal/eval"
	"cqbound/internal/relation"
	"cqbound/internal/shard"
	"cqbound/internal/spill"
)

// spillBudgetBytes is deliberately tiny against the harness databases
// (tens of tuples × up to 4 columns × 4 bytes each): most iterations hold
// at most one or two shards resident, so eviction fires inside plans, not
// just between them.
const spillBudgetBytes = 256

// TestPropertySpilledAgrees re-runs the harness's random pairs under
// exchange-routed sharded execution WITH a forced-spill memory budget —
// both through bare eval strategies carrying a shard.Options{Spill: ...}
// and through a WithMemoryBudget Engine — and requires outputs identical
// to unsharded Naive. After the sweep the governor must actually have
// spilled: nonzero evictions AND nonzero reloads, or the budget was not
// exercising the code path this test exists for.
func TestPropertySpilledAgrees(t *testing.T) {
	iters := propertyIterations
	if testing.Short() {
		iters = 60
	}
	profiles := []datagen.QueryParams{
		{MaxVars: 5, MaxAtoms: 4, MaxArity: 3, HeadFraction: 0.7, RepeatRelationProb: 0.3, SimpleFDProb: 0.15},
		{MaxVars: 3, MaxAtoms: 5, MaxArity: 2, HeadFraction: 0.5, RepeatRelationProb: 0.6},
		{MaxVars: 6, MaxAtoms: 3, MaxArity: 4, HeadFraction: 0.9, RepeatRelationProb: 0.2, CompoundFDProb: 0.3},
		{MaxVars: 2, MaxAtoms: 3, MaxArity: 3, HeadFraction: 0.6, RepeatRelationProb: 0.5, SimpleFDProb: 0.3},
	}
	dbProfiles := []datagen.DBParams{
		{Tuples: 12, Universe: 6},
		{Tuples: 25, Universe: 4},
		{Tuples: 6, Universe: 12},
		{Tuples: 30, Universe: 8, ZipfS: 1.7},
		{Tuples: 20, Universe: 15, ZipfS: 2.5},
	}
	gov := spill.NewGovernor(spillBudgetBytes, t.TempDir())
	defer gov.Close()
	engines := make([]*cqbound.Engine, len(shardCounts))
	for i, p := range shardCounts {
		engines[i] = cqbound.NewEngine(
			cqbound.WithSharding(0, p),
			cqbound.WithSkewSplitting(propertySkewFraction),
			cqbound.WithMemoryBudget(spillBudgetBytes),
			cqbound.WithSpillDir(t.TempDir()),
		)
		defer engines[i].Close()
	}
	for i := 0; i < iters; i++ {
		rng := rand.New(rand.NewSource(propertyBaseSeed + int64(i)))
		q := datagen.RandomQuery(rng, profiles[i%len(profiles)])
		db := datagen.RandomDatabase(rng, q, dbProfiles[i%len(dbProfiles)])
		p := shardCounts[i%len(shardCounts)]
		eng := engines[i%len(shardCounts)]
		if msg := spilledDisagreement(eng, gov, p, q, db); msg != "" {
			check := func(q *cq.Query, db *database.Database) string { return spilledDisagreement(eng, gov, p, q, db) }
			q, db, msg = shrink(check, q, db, msg)
			t.Fatalf("iteration %d (seed %d, shards %d, budget %d): spilled execution disagrees after shrinking: %s\n"+
				"minimal query:\n%s\nminimal database:\n%s",
				i, propertyBaseSeed+int64(i), p, spillBudgetBytes, msg, q, dumpDB(db))
		}
	}
	st := gov.Snapshot()
	if st.Evictions == 0 || st.ReloadedShards == 0 {
		t.Fatalf("the forced-spill budget never spilled (evictions=%d reloads=%d): the harness is not testing eviction",
			st.Evictions, st.ReloadedShards)
	}
	for _, eng := range engines {
		est := eng.SpillStats()
		if est.Evictions > 0 && est.ReloadedShards > 0 {
			return
		}
	}
	t.Fatal("no WithMemoryBudget engine reported nonzero spilled/reloaded shards")
}

// spilledDisagreement compares budgeted sharded execution at partition
// count p against unsharded Naive: the bare strategies share one tiny
// governor (gov), the Engine carries its own via WithMemoryBudget.
func spilledDisagreement(eng *cqbound.Engine, gov *spill.Governor, p int, q *cq.Query, db *database.Database) string {
	ctx := context.Background()
	// One scope per pair, like Engine.Evaluate: the 220 pairs' intermediate
	// shards must not accumulate in the shared governor across iterations.
	scope := spill.NewScope()
	defer scope.Close()
	opts := &shard.Options{MinRows: 0, Shards: p, SkewFraction: propertySkewFraction, Spill: gov, Scope: scope}
	ref, _, err := eval.NaiveCtx(ctx, q, db)
	if err != nil {
		return fmt.Sprintf("naive: %v", err)
	}
	check := func(name string, out *relation.Relation, err error) string {
		if err != nil {
			return fmt.Sprintf("%s: %v", name, err)
		}
		if !relation.Equal(ref, out) {
			return fmt.Sprintf("%s: %d tuples, naive has %d", name, out.Size(), ref.Size())
		}
		return ""
	}
	out, _, err := eval.JoinProjectExec(ctx, q, db, nil, opts)
	if msg := check("spilled join-project", out, err); msg != "" {
		return msg
	}
	if eval.IsAcyclic(q) {
		out, _, err = eval.YannakakisExec(ctx, q, db, opts)
		if msg := check("spilled yannakakis", out, err); msg != "" {
			return msg
		}
	}
	out, _, err = eng.Evaluate(ctx, q, db)
	if msg := check("spilled engine", out, err); msg != "" {
		return msg
	}
	return ""
}

// TestSpillMidPlanEviction pins the mechanism on one deterministic case: a
// three-join path over relations big enough for several shards, a budget
// far below one relation, and a check that the governor evicted while the
// plan was still running (reloads can only happen mid-plan — after the
// plan, nothing reads).
func TestSpillMidPlanEviction(t *testing.T) {
	gov := spill.NewGovernor(512, t.TempDir())
	defer gov.Close()
	q := cq.MustParse("Q(A,D) <- R(A,B), S(B,C), T(C,D).")
	db := datagen.EdgeDB(rand.New(rand.NewSource(5)), []string{"R", "S", "T"}, 400, 60)
	ref, _, err := eval.NaiveCtx(context.Background(), q, db)
	if err != nil {
		t.Fatal(err)
	}
	opts := &shard.Options{MinRows: 0, Shards: 8, Spill: gov}
	out, _, err := eval.JoinProjectExec(context.Background(), q, db, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(ref, out) {
		t.Fatalf("spilled output has %d tuples, naive %d", out.Size(), ref.Size())
	}
	st := gov.Snapshot()
	if st.Evictions == 0 {
		t.Fatalf("512-byte budget over ~400-row relations never evicted: %+v", st)
	}
	if st.ReloadedShards == 0 {
		t.Fatalf("no shard was reloaded mid-plan: %+v", st)
	}
}
