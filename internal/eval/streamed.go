package eval

// The streamed (column-batch pipeline) forms of the two exchange-routed
// executors. Both mirror their materialized counterparts' routing
// decisions; the difference is residency: the running intermediate flows as
// a shard.Piped — per-shard pull pipelines holding one batch per stage —
// and relations are built only where an operand must be indexed whole
// (probe sides, semijoin reducers, subtree results) or at the final output.
// Joins' right operands are always base bindings or forced subtree results,
// so pipelines flow on the left throughout, which is exactly the shape
// shard's Piped operators implement.

import (
	"context"
	"fmt"
	"slices"
	"strings"
	"sync"

	"cqbound/internal/cq"
	"cqbound/internal/database"
	"cqbound/internal/pool"
	"cqbound/internal/relation"
	"cqbound/internal/shard"
	"cqbound/internal/trace"
)

// joinProjectStreamed is JoinProjectExec under Options.Streaming: the
// join-project fold never materializes an intermediate — scan, probe and
// projection stages chain within each shard, exchanges scatter batches
// between keys, and rows first become a relation again at the head
// projection's sink. Bindings are resolved (and checked for emptiness) up
// front, since an empty binding empties the output regardless of position.
func joinProjectStreamed(ctx context.Context, q *cq.Query, db *database.Database, order []int, opts *shard.Options) (*relation.Relation, Stats, error) {
	var st Stats
	if err := validateAtoms(q, db); err != nil {
		return nil, st, err
	}
	body, err := orderedBody(q, order)
	if err != nil {
		return nil, st, err
	}
	tr := opts.Tracer()
	bs := stageSpan(opts, trace.KindStage, "bindings")
	binds := make([]*relation.Relation, len(body))
	for i, a := range body {
		if binds[i], err = bindingRelation(a, db); err != nil {
			bs.End()
			return nil, st, err
		}
		if binds[i].Size() == 0 {
			bs.End()
			st.EarlyExit = true
			return emptyOutput(q), st, nil
		}
		if tr != nil {
			scanSpan(opts, binds[i].Name, binds[i].Size())
		}
	}
	bs.End()
	needLater := make([]map[cq.Variable]bool, len(body)+1)
	needLater[len(body)] = map[cq.Variable]bool{}
	for i := len(body) - 1; i >= 0; i-- {
		m := make(map[cq.Variable]bool)
		for v := range needLater[i+1] {
			m[v] = true
		}
		for _, v := range body[i].Vars {
			m[v] = true
		}
		needLater[i] = m
	}
	head := q.HeadVarSet()

	var est *estimator
	project := func(pd *shard.Piped, after int) (*shard.Piped, error) {
		var keep []string
		for _, attr := range pd.Attrs() {
			v := cq.Variable(attr)
			if head[v] || needLater[after+1][v] {
				keep = append(keep, attr)
			}
		}
		if len(keep) == len(pd.Attrs()) {
			return pd, nil
		}
		est.projectTo(keep)
		return projectPipedNames(ctx, opts, pd, keep)
	}

	// The pipeline stage covers construction only; the armed operator
	// spans under it close as the sink drains their parts.
	ps := stageSpan(opts, trace.KindStage, "pipeline")
	if tr != nil {
		est = estimatorOf(shard.StreamOf(binds[0]))
	}
	pd := shard.PipedOf(shard.StreamOf(binds[0]), opts)
	if pd, err = project(pd, 0); err != nil {
		ps.End()
		return nil, st, err
	}
	for i := range body[1:] {
		var jsp *trace.Span
		if tr != nil {
			jsp = tr.Op(trace.KindJoin, "⋈ "+binds[i+1].Name)
			jsp.SetEst(est.joinWith(shard.StreamOf(binds[i+1])))
		}
		if pd, err = shard.JoinPipedStream(ctx, opts, pd, binds[i+1], false); err != nil {
			jsp.End()
			ps.End()
			return nil, st, err
		}
		shard.TracePiped(pd, jsp)
		st.Joins++
		if pd, err = project(pd, i+1); err != nil {
			ps.End()
			return nil, st, err
		}
	}
	ps.End()
	out, err := headProjectionPiped(ctx, opts, q, pd)
	if err != nil {
		return nil, st, err
	}
	// Streamed intermediates never materialize; the largest relation the
	// plan built is the output itself.
	st.MaxIntermediate = out.Size()
	return out, st, nil
}

// projectPipedNames is projectNames for pipelines. Under tracing the
// projection span is armed on the returned pipeline (rows and batches
// count as the sink drains); no estimate — a pipeline input has no
// statistics before it runs.
func projectPipedNames(ctx context.Context, opts *shard.Options, pd *shard.Piped, attrs []string) (*shard.Piped, error) {
	idx := make([]int, len(attrs))
	for i, a := range attrs {
		j := slices.Index(pd.Attrs(), a)
		if j < 0 {
			return nil, fmt.Errorf("eval: unknown attribute %q in projection", a)
		}
		idx[i] = j
	}
	var psp *trace.Span
	if tr := opts.Tracer(); tr != nil {
		psp = tr.Op(trace.KindProject, "π "+strings.Join(attrs, ","))
	}
	out, err := shard.ProjectPiped(ctx, opts, pd, idx)
	if err != nil {
		psp.End()
		return nil, err
	}
	return shard.TracePiped(out, psp), nil
}

// headProjectionPiped is headProjectionExec for pipelines: the head
// projection extends the pipeline, and its sink is the first — and only —
// full materialization of the plan. The output is Q(D): it outlives the
// evaluation, so it is never registered with the spill governor.
func headProjectionPiped(ctx context.Context, opts *shard.Options, q *cq.Query, pd *shard.Piped) (*relation.Relation, error) {
	idx := make([]int, len(q.Head.Vars))
	for i, v := range q.Head.Vars {
		j := slices.Index(pd.Attrs(), string(v))
		if j < 0 {
			return nil, fmt.Errorf("eval: head variable %s missing from bindings", v)
		}
		idx[i] = j
	}
	hs := stageSpan(opts, trace.KindStage, "head projection + sink")
	mk := markSpill(opts, hs != nil)
	proj, err := shard.ProjectPiped(ctx, opts, pd, idx)
	if err != nil {
		hs.End()
		return nil, err
	}
	var ssp *trace.Span
	if tr := opts.Tracer(); tr != nil {
		ssp = tr.Op(trace.KindSink, "materialize "+q.Head.Relation)
	}
	// MaterializePiped is the drain: all upstream pipeline work happens
	// inside this call, so the stage's wall time is the plan's execution.
	sunk, err := shard.MaterializePiped(ctx, opts, proj, q.Head.Relation, false)
	if err != nil {
		ssp.End()
		hs.End()
		return nil, err
	}
	setStreamOut(ssp, sunk)
	ssp.End()
	setStreamOut(hs, sunk)
	mk.annotate(hs)
	hs.End()
	return sunk.Rel().Rename(q.Head.Relation, headAttrs(q)...)
}

// yannakakisStreamed is YannakakisExec under Options.Streaming. The
// semijoin passes still produce relations per node — a reducer is probed
// via its index, so it must exist whole — but each reduction itself runs
// as a pipeline (scan → semijoin stages → sink), and every materialized
// reduction is a subset of a base binding. The join pass builds one
// pipeline per node (scan of the reduced binding → probes of the forced
// child subtree results → projection); only the projected subtree results
// — bounded by input + output after full reduction, the Yannakakis
// guarantee — are forced, and the root's join, the plan's largest
// intermediate, streams straight into the head projection.
func yannakakisStreamed(ctx context.Context, q *cq.Query, db *database.Database, opts *shard.Options) (*relation.Relation, Stats, error) {
	var st Stats
	if err := validateAtoms(q, db); err != nil {
		return nil, st, err
	}
	tree, ok := JoinTree(q)
	if !ok {
		return nil, st, fmt.Errorf("eval: query is not acyclic; use JoinProject or GenericJoin")
	}
	// Each atom's reduction flows between passes as a Stream: a pass that
	// exchanged the binding leaves it partitioned, and the next pass's
	// pipeline picks the partitioning up instead of re-exchanging.
	tr := opts.Tracer()
	bs := stageSpan(opts, trace.KindStage, "bindings")
	reduced := make([]shard.Stream, len(q.Body))
	for i, a := range q.Body {
		b, err := bindingRelation(a, db)
		if err != nil {
			bs.End()
			return nil, st, err
		}
		if b.Size() == 0 {
			bs.End()
			st.EarlyExit = true
			return emptyOutput(q), st, nil
		}
		if tr != nil {
			scanSpan(opts, b.Name, b.Size())
		}
		reduced[i] = shard.StreamOf(b)
	}
	bs.End()
	var stMu sync.Mutex
	countJoin := func(size int) {
		stMu.Lock()
		st.Joins++
		if size > st.MaxIntermediate {
			st.MaxIntermediate = size
		}
		stMu.Unlock()
	}
	// filter pipelines binding i through semijoins against the given
	// reducer atoms and forces the (strictly smaller) result back into a
	// relation, transient under the spill governor. A reducer that has been
	// through a filter of its own is itself transient — its partitionings
	// must die with the evaluation — while an unreduced base binding's
	// partitions persist for reuse.
	filtered := make([]bool, len(q.Body))
	filter := func(i int, reducers []int) error {
		pd := shard.PipedOf(reduced[i], opts)
		for _, ri := range reducers {
			ssp := semijoinSpan(opts, tr, reduced[i], reduced[ri], q.Body[i].Relation, q.Body[ri].Relation)
			var err error
			if pd, err = shard.SemijoinPipedStream(ctx, opts, pd, reduced[ri].Rel(), filtered[ri]); err != nil {
				ssp.End()
				return err
			}
			shard.TracePiped(pd, ssp)
			countJoin(0)
		}
		sunk, err := shard.MaterializePiped(ctx, opts, pd, q.Body[i].Relation+"_sj", true)
		if err != nil {
			return err
		}
		reduced[i] = sunk
		filtered[i] = true
		return nil
	}
	// Bottom-up semijoin: parent ⋉ every child, one pipeline per node.
	var up func(n *JoinTreeNode) error
	up = func(n *JoinTreeNode) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := pool.Run(ctx, 0, len(n.Children), func(i int) error {
			return up(n.Children[i])
		}); err != nil {
			return err
		}
		if len(n.Children) == 0 {
			return nil
		}
		reducers := make([]int, len(n.Children))
		for i, c := range n.Children {
			reducers[i] = c.AtomIndex
		}
		return filter(n.AtomIndex, reducers)
	}
	su := stageSpan(opts, trace.KindStage, "semijoin up")
	mkUp := markSpill(opts, tr != nil)
	if err := up(tree); err != nil {
		su.End()
		return nil, st, err
	}
	mkUp.annotate(su)
	su.End()
	// Top-down semijoin: child ⋉ parent.
	var down func(n *JoinTreeNode) error
	down = func(n *JoinTreeNode) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		return pool.Run(ctx, 0, len(n.Children), func(i int) error {
			c := n.Children[i]
			if err := filter(c.AtomIndex, []int{n.AtomIndex}); err != nil {
				return err
			}
			return down(c)
		})
	}
	sd := stageSpan(opts, trace.KindStage, "semijoin down")
	mkDown := markSpill(opts, tr != nil)
	if err := down(tree); err != nil {
		sd.End()
		return nil, st, err
	}
	mkDown.annotate(sd)
	sd.End()
	// Bottom-up join: each node's pipeline probes its children's forced
	// subtree results; only the root's pipeline escapes unforced, into the
	// head projection.
	head := q.HeadVarSet()
	var join func(n *JoinTreeNode) (*shard.Piped, error)
	join = func(n *JoinTreeNode) (*shard.Piped, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		subs := make([]*relation.Relation, len(n.Children))
		if err := pool.Run(ctx, 0, len(n.Children), func(i int) error {
			pd, err := join(n.Children[i])
			if err != nil {
				return err
			}
			sunk, err := shard.MaterializePiped(ctx, opts, pd, "sub", true)
			if err != nil {
				return err
			}
			subs[i] = sunk.Rel()
			stMu.Lock()
			if subs[i].Size() > st.MaxIntermediate {
				st.MaxIntermediate = subs[i].Size()
			}
			stMu.Unlock()
			return nil
		}); err != nil {
			return nil, err
		}
		cur := shard.PipedOf(reduced[n.AtomIndex], opts)
		for _, sub := range subs {
			var jsp *trace.Span
			if tr != nil {
				jsp = tr.Op(trace.KindJoin, "⋈ under "+q.Body[n.AtomIndex].Relation)
				jsp.SetEst(estimateJoin(reduced[n.AtomIndex], shard.StreamOf(sub)))
			}
			var err error
			if cur, err = shard.JoinPipedStream(ctx, opts, cur, sub, true); err != nil {
				jsp.End()
				return nil, err
			}
			shard.TracePiped(cur, jsp)
			countJoin(0)
		}
		ownAttrs := reduced[n.AtomIndex].Attrs()
		var keep []string
		for _, attr := range cur.Attrs() {
			if head[cq.Variable(attr)] || slices.Contains(ownAttrs, attr) {
				keep = append(keep, attr)
			}
		}
		if len(keep) == 0 {
			return nil, fmt.Errorf("eval: internal: empty projection in Yannakakis")
		}
		if len(keep) == len(cur.Attrs()) {
			return cur, nil
		}
		return projectPipedNames(ctx, opts, cur, keep)
	}
	sj := stageSpan(opts, trace.KindStage, "join pass")
	full, err := join(tree)
	if err != nil {
		sj.End()
		return nil, st, err
	}
	sj.End()
	out, err := headProjectionPiped(ctx, opts, q, full)
	if err != nil {
		return nil, st, err
	}
	if out.Size() > st.MaxIntermediate {
		st.MaxIntermediate = out.Size()
	}
	return out, st, nil
}
