package eval

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"

	"cqbound/internal/chase"
	"cqbound/internal/coloring"
	"cqbound/internal/cq"
	"cqbound/internal/database"
	"cqbound/internal/datagen"
	"cqbound/internal/relation"
)

// starDB builds Example 2.1's database: R = {<1,1>,...,<1,n>}.
func starDB(n int) *database.Database {
	r := relation.New("R", "A", "B")
	for i := 1; i <= n; i++ {
		r.Add("e1", fmt.Sprintf("e%d", i))
	}
	db := database.New()
	db.MustAdd(r)
	return db
}

type strategy struct {
	name string
	run  func(*cq.Query, *database.Database) (*relation.Relation, Stats, error)
}

var strategies = []strategy{
	{"naive", Naive},
	{"joinproject", JoinProject},
	{"genericjoin", GenericJoin},
}

func TestExample21AllStrategies(t *testing.T) {
	// R'(X,Y,Z) <- R(X,Y), R(X,Z) on the star has n² tuples.
	q := cq.MustParse("R2(X,Y,Z) <- R(X,Y), R(X,Z).")
	const n = 7
	db := starDB(n)
	for _, s := range strategies {
		out, _, err := s.run(q, db)
		if err != nil {
			t.Fatalf("%s: %v", s.name, err)
		}
		if out.Size() != n*n {
			t.Errorf("%s: |Q(D)| = %d, want %d", s.name, out.Size(), n*n)
		}
	}
}

func TestTriangleQuery(t *testing.T) {
	q := cq.MustParse("T(X,Y,Z) <- R(X,Y), R(Y,Z), R(X,Z).")
	r := relation.New("R", "A", "B")
	// Two triangles sharing an edge: (a,b,c) and (a,b,d).
	for _, e := range [][2]string{{"a", "b"}, {"b", "c"}, {"a", "c"}, {"b", "d"}, {"a", "d"}} {
		r.Add(e[0], e[1])
	}
	db := database.New()
	db.MustAdd(r)
	for _, s := range strategies {
		out, _, err := s.run(q, db)
		if err != nil {
			t.Fatalf("%s: %v", s.name, err)
		}
		if out.Size() != 2 {
			t.Errorf("%s: triangles = %d, want 2", s.name, out.Size())
		}
		want := relation.Tuple{relation.V("a"), relation.V("b"), relation.V("c")}
		if !out.Has(want) {
			t.Errorf("%s: missing triangle (a,b,c)", s.name)
		}
	}
}

func TestRepeatedVariableInAtom(t *testing.T) {
	// Q(X) <- R(X,X): selects the diagonal.
	q := cq.MustParse("Q(X) <- R(X,X).")
	r := relation.New("R", "A", "B")
	r.Add("a", "a")
	r.Add("a", "b")
	r.Add("c", "c")
	db := database.New()
	db.MustAdd(r)
	for _, s := range strategies {
		out, _, err := s.run(q, db)
		if err != nil {
			t.Fatalf("%s: %v", s.name, err)
		}
		if out.Size() != 2 {
			t.Errorf("%s: size = %d, want 2", s.name, out.Size())
		}
	}
}

func TestRepeatedHeadVariable(t *testing.T) {
	q := cq.MustParse("Q(X,X,Y) <- R(X,Y).")
	r := relation.New("R", "A", "B")
	r.Add("1", "2")
	db := database.New()
	db.MustAdd(r)
	for _, s := range strategies {
		out, _, err := s.run(q, db)
		if err != nil {
			t.Fatalf("%s: %v", s.name, err)
		}
		if out.Size() != 1 || out.Arity() != 3 {
			t.Fatalf("%s: out = %v", s.name, out)
		}
		if !out.Has(relation.Tuple{relation.V("1"), relation.V("1"), relation.V("2")}) {
			t.Errorf("%s: wrong tuple", s.name)
		}
	}
}

func TestProjectionQuery(t *testing.T) {
	// Q(X,Z) <- R(X,Y), S(Y,Z): classic composition.
	q := cq.MustParse("Q(X,Z) <- R(X,Y), S(Y,Z).")
	r := relation.New("R", "A", "B")
	r.Add("x1", "y1")
	r.Add("x2", "y1")
	s := relation.New("S", "A", "B")
	s.Add("y1", "z1")
	s.Add("y2", "z2")
	db := database.New()
	db.MustAdd(r)
	db.MustAdd(s)
	for _, st := range strategies {
		out, _, err := st.run(q, db)
		if err != nil {
			t.Fatalf("%s: %v", st.name, err)
		}
		if out.Size() != 2 {
			t.Errorf("%s: size = %d, want 2", st.name, out.Size())
		}
	}
}

func TestEmptyRelationGivesEmptyResult(t *testing.T) {
	q := cq.MustParse("Q(X) <- R(X,Y), S(Y).")
	r := relation.New("R", "A", "B")
	r.Add("1", "2")
	s := relation.New("S", "A")
	db := database.New()
	db.MustAdd(r)
	db.MustAdd(s)
	for _, st := range strategies {
		out, _, err := st.run(q, db)
		if err != nil {
			t.Fatalf("%s: %v", st.name, err)
		}
		if out.Size() != 0 {
			t.Errorf("%s: size = %d, want 0", st.name, out.Size())
		}
	}
}

func TestMissingRelationError(t *testing.T) {
	q := cq.MustParse("Q(X) <- Nope(X).")
	db := database.New()
	for _, s := range strategies {
		if _, _, err := s.run(q, db); err == nil {
			t.Errorf("%s: accepted missing relation", s.name)
		}
	}
}

func TestStrategiesAgreeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 80; trial++ {
		q := datagen.RandomQuery(rng, datagen.QueryParams{
			MaxVars: 5, MaxAtoms: 4, MaxArity: 3,
			HeadFraction: 0.5, RepeatRelationProb: 0.3,
		})
		db := datagen.RandomDatabase(rng, q, datagen.DBParams{Tuples: 12, Universe: 4})
		base, _, err := Naive(q, db)
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, q, err)
		}
		for _, s := range strategies[1:] {
			out, _, err := s.run(q, db)
			if err != nil {
				t.Fatalf("trial %d (%s) %s: %v", trial, q, s.name, err)
			}
			if !relation.Equal(base, out) {
				t.Fatalf("trial %d: %s disagrees with naive on %s:\nnaive: %s\n%s: %s",
					trial, s.name, q, base, s.name, out)
			}
		}
	}
}

// TestChaseInvariance verifies Fact 2.4: Q(D) = chase(Q)(D) on databases
// satisfying the declared dependencies.
func TestChaseInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 60; trial++ {
		q := datagen.RandomQuery(rng, datagen.QueryParams{
			MaxVars: 5, MaxAtoms: 4, MaxArity: 3,
			HeadFraction: 0.5, RepeatRelationProb: 0.5, SimpleFDProb: 0.3,
		})
		db := datagen.RandomDatabase(rng, q, datagen.DBParams{Tuples: 10, Universe: 3})
		ch := chase.Chase(q).Query
		a, _, err := JoinProject(q, db)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		b, _, err := JoinProject(ch, db)
		if err != nil {
			t.Fatalf("trial %d (chased %s): %v", trial, ch, err)
		}
		if !relation.Equal(a, b) {
			t.Fatalf("trial %d: chase changed result for %s\noriginal: %s\nchased (%s): %s",
				trial, q, a, ch, b)
		}
	}
}

// TestSizeBoundNoFDsRandom verifies Proposition 4.1's upper bound
// |Q(D)| ≤ rmax(D)^C(Q) on random FD-free instances.
func TestSizeBoundNoFDsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		q := datagen.RandomQuery(rng, datagen.QueryParams{
			MaxVars: 5, MaxAtoms: 4, MaxArity: 3,
			HeadFraction: 0.6, RepeatRelationProb: 0.3,
		})
		db := datagen.RandomDatabase(rng, q, datagen.DBParams{Tuples: 15, Universe: 4})
		out, _, err := JoinProject(q, db)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		c, _, err := coloring.NumberNoFDs(q)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rmax, err := db.RMax(q)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !boundHolds(out.Size(), rmax, c) {
			t.Fatalf("trial %d: |Q(D)| = %d > rmax^C = %d^%v for %s",
				trial, out.Size(), rmax, c, q)
		}
	}
}

// TestSizeBoundSimpleFDsRandom verifies Theorem 4.4's upper bound
// |Q(D)| ≤ rmax(D)^C(chase(Q)) on random keyed instances.
func TestSizeBoundSimpleFDsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	trials := 0
	for trials < 50 {
		q := datagen.RandomQuery(rng, datagen.QueryParams{
			MaxVars: 5, MaxAtoms: 4, MaxArity: 3,
			HeadFraction: 0.6, RepeatRelationProb: 0.4, SimpleFDProb: 0.35,
		})
		if !chase.Chase(q).Query.AllVarFDsSimple() {
			continue
		}
		trials++
		db := datagen.RandomDatabase(rng, q, datagen.DBParams{Tuples: 15, Universe: 4})
		out, _, err := JoinProject(q, db)
		if err != nil {
			t.Fatalf("trial %d: %v", trials, err)
		}
		c, _, _, err := coloring.NumberWithSimpleFDs(q)
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trials, q, err)
		}
		rmax, err := db.RMax(q)
		if err != nil {
			t.Fatalf("trial %d: %v", trials, err)
		}
		if !boundHolds(out.Size(), rmax, c) {
			t.Fatalf("trial %d: |Q(D)| = %d > rmax^C = %d^%v for %s",
				trials, out.Size(), rmax, c, q)
		}
	}
}

// boundHolds reports whether size ≤ rmax^c for rational c, checked exactly
// as size^denom ≤ rmax^num.
func boundHolds(size, rmax int, c *big.Rat) bool {
	if size <= 1 {
		return true
	}
	if rmax == 0 {
		return false
	}
	lhs := new(big.Int).Exp(big.NewInt(int64(size)), c.Denom(), nil)
	rhs := new(big.Int).Exp(big.NewInt(int64(rmax)), c.Num(), nil)
	return lhs.Cmp(rhs) <= 0
}

func TestStatsRecorded(t *testing.T) {
	q := cq.MustParse("Q(X,Z) <- R(X,Y), S(Y,Z).")
	r := relation.New("R", "A", "B")
	r.Add("1", "2")
	s := relation.New("S", "A", "B")
	s.Add("2", "3")
	db := database.New()
	db.MustAdd(r)
	db.MustAdd(s)
	_, st, err := Naive(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if st.Joins != 1 || st.MaxIntermediate < 1 {
		t.Fatalf("Stats = %+v", st)
	}
}
