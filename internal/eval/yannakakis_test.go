package eval

import (
	"math/rand"
	"testing"

	"cqbound/internal/cq"
	"cqbound/internal/database"
	"cqbound/internal/datagen"
	"cqbound/internal/relation"
)

func TestIsAcyclicKnownQueries(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"Q(X,Z) <- R(X,Y), S(Y,Z).", true},
		{"Q(X,Y,Z) <- R(X,Y), S(Y,Z), T(Z,W).", true},
		{"S(X,Y,Z) <- R(X,Y), R(Y,Z), R(X,Z).", false},           // triangle
		{"Q(A,B,C,D) <- R(A,B), R(B,C), R(C,D), R(D,A).", false}, // 4-cycle
		{"Q(X) <- R(X).", true},
		{"Q(X,Y) <- R(X), S(Y).", true},                 // disconnected
		{"Q(X,Y,Z) <- R(X,Y,Z), S(X,Y), T(Y,Z).", true}, // ears into big atom
		{"Q(X,Y,Z,W) <- R(X,Y), S(Y,Z), T(Z,W), U(W,X).", false},
	}
	for _, c := range cases {
		q := cq.MustParse(c.src)
		if got := IsAcyclic(q); got != c.want {
			t.Errorf("IsAcyclic(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestJoinTreeCoversAllAtoms(t *testing.T) {
	q := cq.MustParse("Q(X,Y,Z) <- R(X,Y), S(Y,Z), T(Z,W).")
	tree, ok := JoinTree(q)
	if !ok {
		t.Fatal("chain should be acyclic")
	}
	seen := map[int]bool{}
	var walk func(n *JoinTreeNode)
	walk = func(n *JoinTreeNode) {
		if seen[n.AtomIndex] {
			t.Fatalf("atom %d appears twice", n.AtomIndex)
		}
		seen[n.AtomIndex] = true
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(tree)
	if len(seen) != len(q.Body) {
		t.Fatalf("join tree covers %d of %d atoms", len(seen), len(q.Body))
	}
}

func TestYannakakisRejectsCyclic(t *testing.T) {
	q := cq.MustParse("S(X,Y,Z) <- R(X,Y), R(Y,Z), R(X,Z).")
	r := relation.New("R", "a", "b")
	db := dbWith(r)
	if _, _, err := Yannakakis(q, db); err == nil {
		t.Fatal("Yannakakis accepted a cyclic query")
	}
}

func TestYannakakisMatchesJoinProjectRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	acyclic := 0
	for trial := 0; acyclic < 60 && trial < 500; trial++ {
		q := datagen.RandomQuery(rng, datagen.QueryParams{
			MaxVars: 5, MaxAtoms: 4, MaxArity: 3,
			HeadFraction: 0.5, RepeatRelationProb: 0.3,
		})
		if !IsAcyclic(q) {
			continue
		}
		acyclic++
		db := datagen.RandomDatabase(rng, q, datagen.DBParams{Tuples: 12, Universe: 4})
		want, _, err := JoinProject(q, db)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := Yannakakis(q, db)
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, q, err)
		}
		if !relation.Equal(want, got) {
			t.Fatalf("trial %d: Yannakakis disagrees on %s:\nwant %s\ngot %s", trial, q, want, got)
		}
	}
	if acyclic < 60 {
		t.Fatalf("only %d acyclic queries generated", acyclic)
	}
}

func TestYannakakisDanglingTuplesRemoved(t *testing.T) {
	// Chain with dangling tuples on both ends: the semijoin passes must
	// keep intermediates at O(input + output), not the cross product.
	q := cq.MustParse("Q(X,W) <- R(X,Y), S(Y,Z), T(Z,W).")
	r := relation.New("R", "a", "b")
	s := relation.New("S", "a", "b")
	tt := relation.New("T", "a", "b")
	// Only one chain survives end-to-end; everything else dangles.
	r.Add("x0", "y0")
	s.Add("y0", "z0")
	tt.Add("z0", "w0")
	for i := 0; i < 50; i++ {
		r.Add("x"+itoa(i), "ydangle")
		tt.Add("zdangle", "w"+itoa(i))
	}
	db := dbWith(r, s, tt)
	out, st, err := Yannakakis(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 1 {
		t.Fatalf("|Q(D)| = %d, want 1", out.Size())
	}
	if st.MaxIntermediate > 2 {
		t.Fatalf("max intermediate = %d; semijoin reduction failed", st.MaxIntermediate)
	}
	// The naive plan materializes the dangling joins.
	_, stNaive, err := Naive(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if stNaive.MaxIntermediate <= st.MaxIntermediate {
		t.Fatalf("expected naive (%d) to exceed Yannakakis (%d)", stNaive.MaxIntermediate, st.MaxIntermediate)
	}
}

func TestYannakakisDisconnectedQuery(t *testing.T) {
	q := cq.MustParse("Q(X,Y) <- R(X), S(Y).")
	r := relation.New("R", "a")
	r.Add("1")
	r.Add("2")
	s := relation.New("S", "a")
	s.Add("u")
	db := dbWith(r, s)
	out, _, err := Yannakakis(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 2 {
		t.Fatalf("|Q(D)| = %d, want 2", out.Size())
	}
}

func dbWith(rels ...*relation.Relation) *database.Database {
	db := database.New()
	for _, r := range rels {
		db.MustAdd(r)
	}
	return db
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	out := ""
	for i > 0 {
		out = string(rune('0'+i%10)) + out
		i /= 10
	}
	return out
}
