// Package eval evaluates conjunctive queries over databases. Four
// strategies are provided:
//
//   - Naive: left-deep natural joins over the body atoms followed by a final
//     head projection — the textbook plan whose intermediates can explode.
//   - JoinProject: the project-early plan in the spirit of Corollary 4.8 and
//     Theorem 15 of Atserias–Grohe–Marx: after each join, variables that are
//     neither head variables nor needed by later atoms are projected away.
//     JoinProjectOrdered additionally accepts a planner-chosen atom order.
//   - GenericJoin: a variable-at-a-time worst-case optimal join (the modern
//     algorithm family the AGM bound gave rise to).
//   - Yannakakis (yannakakis.go): the linear-time algorithm for α-acyclic
//     queries.
//
// All strategies return exactly Q(D) and are cross-checked in tests. Each
// has a context-aware form (NaiveCtx, JoinProjectOrdered, GenericJoinCtx,
// YannakakisCtx) that honors cancellation and stops early when an
// intermediate result is empty; the plain forms are conveniences with a
// background context and the body's own atom order.
//
// # Sharded execution
//
// JoinProjectExec and YannakakisExec take a *shard.Options and, when it
// enables sharding, route every binary join, semijoin and
// duplicate-eliminating projection through the exchange-routed operators
// of internal/shard. The intermediate result flows between steps as a
// shard.Stream that stays hash-partitioned: a step whose join key matches
// the partitioning the previous step left reuses it outright, and a
// mismatched key is repartitioned (or a small side broadcast) by the
// exchange, so a multi-join plan — a triangle, a cycle, a Yannakakis
// semijoin chain — keeps every step partition-parallel instead of
// collapsing to one shard after the first join. Per-step fallback rules
// (inputs below Options.MinRows, no shared column) are internal/shard's;
// outputs are identical with or without sharding, which the 220-pair
// property harness proves against Naive at several shard counts including
// Zipf-skewed data.
//
// GenericJoin extends one variable at a time and has no binary join to
// partition, so it ignores the options (see the ROADMAP's sharded generic
// join item).
//
// When Options.Spill carries a memory governor, pinning happens below
// each operator's exchange — the stream operators pin the aligned views
// they fan out over, and the relation operators pin the shards they scan
// — so the governor never parks a shard mid-scan, while a parked
// intermediate entering a join is still repartitioned one shard at a
// time rather than reloaded whole. Between steps, anything cold may
// spill and reloads transparently on its next use. The spilled property
// harness proves outputs identical to Naive under a budget that forces
// eviction mid-plan.
//
// Binding relations (bindingRelation) are the bridge from atoms to
// relations: for atoms without repeated variables they are O(arity)
// copy-on-write renames of the stored relation, so memoized statistics,
// indexes, tries and shard partitions of the base relation serve every
// query that touches it.
package eval
