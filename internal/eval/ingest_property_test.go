// Property-based transactional-ingest harness (fifth harness pass): the
// same random query/database pairs as the sharded and spill harnesses, but
// the database arrives through the epoch-based transaction API — an
// initial commit plus a stream of delta batches published by a concurrent
// writer — while pinned readers evaluate against whatever epoch they
// caught. Snapshot isolation is the property: every reader's planned
// execution must equal Naive evaluated on that reader's own frozen epoch
// copy, regardless of what the writer publishes meanwhile, under the
// forced-spill budget and every harness shard count, and the fully-ingested
// end state must equal the original database tuple-for-tuple (compared at
// the string boundary — the engine interns in its private dictionary).
// Run with -race this doubles as the concurrency check on the commit,
// pin, and sweep paths.
package eval_test

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	cqbound "cqbound"
	"cqbound/internal/datagen"
	"cqbound/internal/eval"
	"cqbound/internal/relation"
)

// ingestWriterBatches is how many delta commits the concurrent writer
// publishes after the initial load.
const ingestWriterBatches = 3

func TestPropertyIngestSnapshotsAgree(t *testing.T) {
	iters := propertyIterations
	if testing.Short() {
		iters = 60
	}
	profiles := []datagen.QueryParams{
		{MaxVars: 5, MaxAtoms: 4, MaxArity: 3, HeadFraction: 0.7, RepeatRelationProb: 0.3, SimpleFDProb: 0.15},
		{MaxVars: 3, MaxAtoms: 5, MaxArity: 2, HeadFraction: 0.5, RepeatRelationProb: 0.6},
		{MaxVars: 6, MaxAtoms: 3, MaxArity: 4, HeadFraction: 0.9, RepeatRelationProb: 0.2, CompoundFDProb: 0.3},
		{MaxVars: 2, MaxAtoms: 3, MaxArity: 3, HeadFraction: 0.6, RepeatRelationProb: 0.5, SimpleFDProb: 0.3},
	}
	dbProfiles := []datagen.DBParams{
		{Tuples: 12, Universe: 6},
		{Tuples: 25, Universe: 4},
		{Tuples: 6, Universe: 12},
		{Tuples: 30, Universe: 8, ZipfS: 1.7},
		{Tuples: 20, Universe: 15, ZipfS: 2.5},
	}
	spillDir := t.TempDir()
	for i := 0; i < iters; i++ {
		rng := rand.New(rand.NewSource(propertyBaseSeed + int64(i)))
		q := datagen.RandomQuery(rng, profiles[i%len(profiles)])
		db := datagen.RandomDatabase(rng, q, dbProfiles[i%len(dbProfiles)])
		p := shardCounts[i%len(shardCounts)]
		if msg := ingestDisagreement(t, rng, p, spillDir, q, db); msg != "" {
			t.Fatalf("iteration %d (seed %d, shards %d, budget %d): %s",
				i, propertyBaseSeed+int64(i), p, spillBudgetBytes, msg)
		}
	}
}

// ingestDisagreement loads db into a fresh budgeted engine as an initial
// commit plus ingestWriterBatches concurrent delta commits, runs pinned
// readers against the moving epoch stream, and returns a description of
// the first violation ("" when every snapshot held).
func ingestDisagreement(t *testing.T, rng *rand.Rand, p int, spillDir string, q *cqbound.Query, db *cqbound.Database) string {
	eng := cqbound.NewEngine(
		cqbound.WithSharding(0, p),
		cqbound.WithSkewSplitting(propertySkewFraction),
		cqbound.WithMemoryBudget(spillBudgetBytes),
		cqbound.WithSpillDir(spillDir),
	)
	defer eng.Close()
	ctx := context.Background()

	// Split every relation's rows into an initial slice plus per-batch
	// deltas. The split is drawn before any goroutine starts so the
	// iteration stays reproducible from its seed.
	type stringRow struct {
		rel  string
		vals []string
	}
	batches := make([][]stringRow, ingestWriterBatches)
	init := eng.Begin()
	for _, name := range db.Names() {
		r := db.Relation(name)
		if err := init.Create(name, r.Attrs...); err != nil {
			return fmt.Sprintf("create %s: %v", name, err)
		}
		r.Each(func(tp relation.Tuple) bool {
			if b := rng.Intn(2 * ingestWriterBatches); b < ingestWriterBatches {
				batches[b] = append(batches[b], stringRow{rel: name, vals: tp.Strings()})
			} else if err := init.Add(name, tp.Strings()...); err != nil {
				t.Error(err)
			}
			return true
		})
	}
	if _, err := init.Commit(); err != nil {
		return fmt.Sprintf("initial commit: %v", err)
	}

	var wg sync.WaitGroup
	errs := make(chan string, 16)
	report := func(format string, args ...any) {
		select {
		case errs <- fmt.Sprintf(format, args...):
		default:
		}
	}

	// The writer publishes the delta batches while the readers run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, batch := range batches {
			txn := eng.Begin()
			for _, row := range batch {
				if err := txn.Add(row.rel, row.vals...); err != nil {
					report("stage delta: %v", err)
					return
				}
			}
			if _, err := txn.Commit(); err != nil {
				report("delta commit: %v", err)
				return
			}
		}
	}()

	// Each reader pins whatever epoch is live when it looks, evaluates
	// through the engine, and checks the result against Naive on the SAME
	// frozen snapshot: the isolation property, oblivious to the writer.
	for reader := 0; reader < 2; reader++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 2; round++ {
				snap := eng.Snapshot()
				ref, _, err := eval.NaiveCtx(ctx, q, snap.DB())
				if err != nil {
					report("naive on epoch %d: %v", snap.Epoch(), err)
					snap.Close()
					return
				}
				out, _, err := eng.Evaluate(ctx, q, snap.DB())
				if err != nil {
					report("engine on epoch %d: %v", snap.Epoch(), err)
					snap.Close()
					return
				}
				if !relation.Equal(ref, out) {
					report("epoch %d: engine produced %d tuples, naive on the same snapshot %d",
						snap.Epoch(), out.Size(), ref.Size())
				}
				snap.Close()
			}
		}()
	}
	wg.Wait()
	select {
	case msg := <-errs:
		return msg
	default:
	}

	// End state: once every batch is in, the live epoch holds exactly the
	// original database (string boundary — the dictionaries differ).
	snap := eng.Snapshot()
	defer snap.Close()
	d := eng.Dict()
	for _, name := range db.Names() {
		want := db.Relation(name)
		got := snap.DB().Relation(name)
		if got == nil || got.Size() != want.Size() {
			gotSize := -1
			if got != nil {
				gotSize = got.Size()
			}
			return fmt.Sprintf("end state: %s has %d rows, want %d", name, gotSize, want.Size())
		}
		rows := make(map[string]bool, got.Size())
		got.Each(func(tp relation.Tuple) bool {
			rows[strings.Join(tp.StringsIn(d), "\x00")] = true
			return true
		})
		missing := ""
		want.Each(func(tp relation.Tuple) bool {
			if !rows[strings.Join(tp.Strings(), "\x00")] {
				missing = strings.Join(tp.Strings(), ",")
				return false
			}
			return true
		})
		if missing != "" {
			return fmt.Sprintf("end state: %s lost tuple (%s) across the batched ingest", name, missing)
		}
	}
	return ""
}
