package eval

// Tracing glue for the executors: span openers that read the tracer out
// of the evaluation's shard.Options, and the spill-delta bookkeeping that
// attributes governor activity to individual plan stages. Everything is
// inert (nil spans, zero-cost marks) when tracing is off.

import (
	"cqbound/internal/shard"
	"cqbound/internal/spill"
	"cqbound/internal/trace"
)

// stageSpan opens a stage span on the evaluation's tracer (nil when
// tracing is off). Stages are sequential within one evaluation.
func stageSpan(opts *shard.Options, kind trace.Kind, name string) *trace.Span {
	return opts.Tracer().Stage(kind, name)
}

// opSpan opens an operator span under the current stage (nil when
// tracing is off).
func opSpan(opts *shard.Options, kind trace.Kind, name string) *trace.Span {
	return opts.Tracer().Op(kind, name)
}

// scanSpan records a base-binding scan as an immediately-closed span.
func scanSpan(opts *shard.Options, name string, rows int) {
	sp := opSpan(opts, trace.KindScan, "scan "+name)
	sp.AddOut(rows)
	sp.End()
}

// setStreamOut annotates a span with a materialized stream's output size
// and partition fan-out (nil-safe).
func setStreamOut(sp *trace.Span, st shard.Stream) {
	if sp == nil {
		return
	}
	sp.AddOut(st.Size())
	if sh := st.Sharded(); sh != nil {
		sp.SetShards(sh.P())
	}
}

// semijoinSpan opens a span for l ⋉ r (nil when tracing is off),
// pre-annotated with input size and the System-R selectivity estimate.
func semijoinSpan(opts *shard.Options, tr *trace.Tracer, l, r shard.Stream, lName, rName string) *trace.Span {
	if tr == nil {
		return nil
	}
	sp := tr.Op(trace.KindSemijoin, lName+" ⋉ "+rName)
	sp.AddIn(l.Size())
	sp.SetEst(estimateSemijoin(l, r))
	return sp
}

// spillMark snapshots the governor's eviction/reload counters so a span
// can be annotated with the delta across a stage. The counters are
// engine-wide: with one traced evaluation running the delta is exact,
// with several it attributes concurrent activity to whichever stage was
// open — the per-query Trace deltas (scope-attributed) stay exact either
// way.
type spillMark struct {
	g      *spill.Governor
	ev, rl int64
}

// markSpill takes the snapshot; inert when tracing or spilling is off.
func markSpill(opts *shard.Options, tracing bool) spillMark {
	if !tracing || opts == nil {
		return spillMark{}
	}
	var m spillMark
	m.g = opts.Spill
	m.ev, m.rl = m.g.EventCounts()
	return m
}

// annotate records the delta since the mark on sp.
func (m spillMark) annotate(sp *trace.Span) {
	if sp == nil || m.g == nil {
		return
	}
	ev, rl := m.g.EventCounts()
	sp.AddSpill(ev-m.ev, rl-m.rl)
}
