package eval

import (
	"context"
	"fmt"
	"slices"
	"sync"

	"cqbound/internal/cq"
	"cqbound/internal/database"
	"cqbound/internal/pool"
	"cqbound/internal/relation"
	"cqbound/internal/shard"
	"cqbound/internal/trace"
)

// This file adds the classical complement to the paper's worst-case bounds:
// α-acyclicity detection via the GYO reduction and Yannakakis' algorithm,
// which evaluates acyclic conjunctive queries with intermediate results
// bounded by input + output. (Acyclic queries are exactly those of
// hypertree-width 1; the treewidth material of Section 5 concerns the same
// structural-sparsity theme on the data side.)

// JoinTreeNode is a node of a join tree: one body atom plus its children.
type JoinTreeNode struct {
	AtomIndex int
	Children  []*JoinTreeNode
}

// JoinTree builds a join tree of the query's body with the GYO (ear
// removal) reduction. It reports ok = false when the query is not
// α-acyclic (e.g. the triangle query).
func JoinTree(q *cq.Query) (*JoinTreeNode, bool) {
	m := len(q.Body)
	alive := make([]bool, m)
	for i := range alive {
		alive[i] = true
	}
	varSets := make([]map[cq.Variable]bool, m)
	for i, a := range q.Body {
		varSets[i] = a.VarSet()
	}
	parent := make([]int, m)
	for i := range parent {
		parent[i] = -1
	}
	removed := make([]int, 0, m)
	countAlive := m
	for countAlive > 1 {
		earFound := false
		for i := 0; i < m && !earFound; i++ {
			if !alive[i] {
				continue
			}
			// i is an ear with witness w if every variable of i that occurs
			// in another alive atom occurs in w.
			for w := 0; w < m; w++ {
				if w == i || !alive[w] {
					continue
				}
				isEar := true
				for v := range varSets[i] {
					if varSets[w][v] {
						continue
					}
					shared := false
					for o := 0; o < m; o++ {
						if o != i && alive[o] && varSets[o][v] {
							shared = true
							break
						}
					}
					if shared {
						isEar = false
						break
					}
				}
				if isEar {
					parent[i] = w
					alive[i] = false
					removed = append(removed, i)
					countAlive--
					earFound = true
					break
				}
			}
		}
		if !earFound {
			return nil, false // GYO stuck: cyclic
		}
	}
	root := -1
	for i := 0; i < m; i++ {
		if alive[i] {
			root = i
			break
		}
	}
	nodes := make([]*JoinTreeNode, m)
	for i := 0; i < m; i++ {
		nodes[i] = &JoinTreeNode{AtomIndex: i}
	}
	for _, i := range removed {
		nodes[parent[i]].Children = append(nodes[parent[i]].Children, nodes[i])
	}
	return nodes[root], true
}

// IsAcyclic reports whether the query's body hypergraph is α-acyclic.
func IsAcyclic(q *cq.Query) bool {
	if len(q.Body) == 0 {
		return true
	}
	_, ok := JoinTree(q)
	return ok
}

// Yannakakis evaluates an α-acyclic query with Yannakakis' algorithm:
// a bottom-up semijoin pass removes dangling tuples, then a top-down pass
// filters against parents, and a final bottom-up join (projecting to head
// plus ancestors' needs) produces the output. Returns an error for cyclic
// queries.
func Yannakakis(q *cq.Query, db *database.Database) (*relation.Relation, Stats, error) {
	return YannakakisCtx(context.Background(), q, db)
}

// YannakakisCtx is Yannakakis with cancellation (checked between semijoin
// and join steps) and an early exit as soon as any binding relation is
// empty: every atom participates in the final join, so the output is empty.
//
// Sibling subtrees of the join tree are independent in every pass, so the
// bottom-up and top-down semijoin sweeps and the final join recurse over a
// node's children in parallel on a bounded worker pool; only the fold into
// the parent is sequential. Semijoins probe the child's memoized hash index
// (relation.Semijoin) instead of rescanning it per pass.
func YannakakisCtx(ctx context.Context, q *cq.Query, db *database.Database) (*relation.Relation, Stats, error) {
	return YannakakisExec(ctx, q, db, nil)
}

// YannakakisExec is YannakakisCtx with exchange-routed sharded execution:
// when opts enables sharding, every semijoin of the bottom-up and top-down
// passes — and every join and projection of the final pass — runs
// partition-parallel, and each atom's binding flows between passes as a
// shard.Stream that keeps whatever partitioning the previous pass built.
// Semijoin outputs are subsets of their left input, so a binding
// partitioned once stays partitioned through every later semijoin against
// it (misaligned passes broadcast the other side instead of
// repartitioning); the final joins then reuse those partitions when they
// align. Inputs below opts.MinRows, and parent/child pairs sharing no
// column, fall back to single-shard operators per step. Options carrying a
// BatchSize run the streamed form instead: semijoin reductions and the
// final join as pull-based column-batch pipelines, with only the reduced
// bindings and projected subtree results ever materialized. nil opts is
// exactly YannakakisCtx.
func YannakakisExec(ctx context.Context, q *cq.Query, db *database.Database, opts *shard.Options) (*relation.Relation, Stats, error) {
	if opts.Streaming() {
		return yannakakisStreamed(ctx, q, db, opts)
	}
	var st Stats
	if err := validateAtoms(q, db); err != nil {
		return nil, st, err
	}
	tree, ok := JoinTree(q)
	if !ok {
		return nil, st, fmt.Errorf("eval: query is not acyclic; use JoinProject or GenericJoin")
	}
	tr := opts.Tracer()
	bs := stageSpan(opts, trace.KindStage, "bindings")
	bindings := make([]shard.Stream, len(q.Body))
	for i, a := range q.Body {
		b, err := bindingRelation(a, db)
		if err != nil {
			bs.End()
			return nil, st, err
		}
		if b.Size() == 0 {
			bs.End()
			st.EarlyExit = true
			return emptyOutput(q), st, nil
		}
		if tr != nil {
			scanSpan(opts, b.Name, b.Size())
		}
		bindings[i] = shard.StreamOf(b)
	}
	bs.End()
	// Stats are updated from worker goroutines; guard them.
	var stMu sync.Mutex
	countJoin := func(size int) {
		stMu.Lock()
		st.Joins++
		if size > st.MaxIntermediate {
			st.MaxIntermediate = size
		}
		stMu.Unlock()
	}
	// Bottom-up semijoin: parent ⋉ child.
	var up func(n *JoinTreeNode) error
	up = func(n *JoinTreeNode) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := pool.Run(ctx, 0, len(n.Children), func(i int) error {
			return up(n.Children[i])
		}); err != nil {
			return err
		}
		for _, c := range n.Children {
			ssp := semijoinSpan(opts, tr, bindings[n.AtomIndex], bindings[c.AtomIndex], q.Body[n.AtomIndex].Relation, q.Body[c.AtomIndex].Relation)
			// Pinning happens inside the semijoin, below its exchange, so
			// a parked binding reloads shard by shard as the pass touches
			// it instead of being forced whole into memory here.
			reduced, err := shard.SemijoinStream(ctx, opts, bindings[n.AtomIndex], bindings[c.AtomIndex])
			if err != nil {
				ssp.End()
				return err
			}
			setStreamOut(ssp, reduced)
			ssp.End()
			bindings[n.AtomIndex] = reduced
			countJoin(0)
		}
		return nil
	}
	su := stageSpan(opts, trace.KindStage, "semijoin up")
	mk := markSpill(opts, tr != nil)
	if err := up(tree); err != nil {
		su.End()
		return nil, st, err
	}
	mk.annotate(su)
	su.End()
	// Top-down semijoin: child ⋉ parent.
	var down func(n *JoinTreeNode) error
	down = func(n *JoinTreeNode) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		return pool.Run(ctx, 0, len(n.Children), func(i int) error {
			c := n.Children[i]
			ssp := semijoinSpan(opts, tr, bindings[c.AtomIndex], bindings[n.AtomIndex], q.Body[c.AtomIndex].Relation, q.Body[n.AtomIndex].Relation)
			reduced, err := shard.SemijoinStream(ctx, opts, bindings[c.AtomIndex], bindings[n.AtomIndex])
			if err != nil {
				ssp.End()
				return err
			}
			setStreamOut(ssp, reduced)
			ssp.End()
			bindings[c.AtomIndex] = reduced
			countJoin(0)
			return down(c)
		})
	}
	sd := stageSpan(opts, trace.KindStage, "semijoin down")
	mk = markSpill(opts, tr != nil)
	if err := down(tree); err != nil {
		sd.End()
		return nil, st, err
	}
	mk.annotate(sd)
	sd.End()
	// Bottom-up join, keeping head variables plus connecting variables.
	// Sibling subtrees join in parallel; the fold into the parent is
	// sequential in child order, keeping results deterministic.
	head := q.HeadVarSet()
	var join func(n *JoinTreeNode) (shard.Stream, error)
	join = func(n *JoinTreeNode) (shard.Stream, error) {
		if err := ctx.Err(); err != nil {
			return shard.Stream{}, err
		}
		subs := make([]shard.Stream, len(n.Children))
		if err := pool.Run(ctx, 0, len(n.Children), func(i int) error {
			sub, err := join(n.Children[i])
			if err == nil {
				subs[i] = sub
			}
			return err
		}); err != nil {
			return shard.Stream{}, err
		}
		cur := bindings[n.AtomIndex]
		for _, sub := range subs {
			var jsp *trace.Span
			if tr != nil {
				jsp = tr.Op(trace.KindJoin, "⋈ under "+q.Body[n.AtomIndex].Relation)
				jsp.AddIn(cur.Size() + sub.Size())
				jsp.SetEst(estimateJoin(cur, sub))
			}
			var err error
			cur, err = shard.NaturalJoinStream(ctx, opts, cur, sub)
			if err != nil {
				jsp.End()
				return shard.Stream{}, err
			}
			setStreamOut(jsp, cur)
			jsp.End()
			countJoin(cur.Size())
		}
		// Project to head variables plus this subtree's connection to its
		// parent (handled by the caller keeping the parent's attributes):
		// keep head vars and any attribute also present in the parent atom.
		attrs := cur.Attrs()
		ownAttrs := bindings[n.AtomIndex].Attrs()
		var keep []string
		for _, attr := range attrs {
			if head[cq.Variable(attr)] {
				keep = append(keep, attr)
				continue
			}
			// Needed by an ancestor? Conservatively keep attributes of this
			// node's own atom (the parent joins only on those).
			if slices.Contains(ownAttrs, attr) {
				keep = append(keep, attr)
			}
		}
		if len(keep) == 0 {
			// Unreachable: cur always retains this node's own atom
			// attributes, and atoms have at least one variable.
			return shard.Stream{}, fmt.Errorf("eval: internal: empty projection in Yannakakis")
		}
		if len(keep) == len(attrs) {
			return cur, nil
		}
		return projectNames(ctx, opts, cur, keep)
	}
	sj := stageSpan(opts, trace.KindStage, "join pass")
	mk = markSpill(opts, tr != nil)
	full, err := join(tree)
	if err != nil {
		sj.End()
		return nil, st, err
	}
	setStreamOut(sj, full)
	mk.annotate(sj)
	sj.End()
	out, err := headProjectionExec(ctx, opts, q, full)
	if err != nil {
		return nil, st, err
	}
	if out.Size() > st.MaxIntermediate {
		st.MaxIntermediate = out.Size()
	}
	return out, st, nil
}
