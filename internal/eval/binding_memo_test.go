package eval

import (
	"testing"

	"cqbound/internal/cq"
	"cqbound/internal/database"
	"cqbound/internal/relation"
)

// TestBindingRelationMemoizesRepeatedPattern pins the repeated-variable
// binding build to the relation memo: the constant-filtered selection for
// R(X,X) is built once per (relation, pattern) and served from cache on
// every later evaluation, regardless of how the query names its variables.
func TestBindingRelationMemoizesRepeatedPattern(t *testing.T) {
	r := relation.New("R", "a", "b")
	r.Add("1", "1")
	r.Add("1", "2")
	r.Add("2", "2")
	db := database.New()
	db.MustAdd(r)

	a := cq.MustParse("Q(X) <- R(X,X).").Body[0]
	b1, err := bindingRelation(a, db)
	if err != nil {
		t.Fatal(err)
	}
	if b1.Size() != 2 || b1.Arity() != 1 {
		t.Fatalf("R(X,X) binding: %d rows × %d cols, want 2 × 1", b1.Size(), b1.Arity())
	}
	// The filtered build is now in the memo: a later lookup under the same
	// pattern key must not invoke the builder again.
	rebuilt := false
	r.Memo(bindingPatternKey(a), func() any {
		rebuilt = true
		return nil
	})
	if rebuilt {
		t.Fatal("binding pattern was rebuilt on second memo access")
	}
	// A differently named query with the same pattern shares the build.
	a2 := cq.MustParse("P(Y) <- R(Y,Y).").Body[0]
	if bindingPatternKey(a2) != bindingPatternKey(a) {
		t.Fatalf("pattern keys differ across variable renamings: %q vs %q",
			bindingPatternKey(a2), bindingPatternKey(a))
	}
	b2, err := bindingRelation(a2, db)
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(b1, b2) {
		t.Fatalf("renamed pattern returned different rows: %d vs %d", b1.Size(), b2.Size())
	}
	if rebuilt {
		t.Fatal("renamed pattern rebuilt the filtered relation")
	}
	// A genuinely different pattern gets its own key.
	a3 := cq.MustParse("S(X,Y) <- R(X,Y).").Body[0]
	if bindingPatternKey(a3) == bindingPatternKey(a) {
		t.Fatal("distinct patterns share a memo key")
	}
}
