// Property-based tracing harness — the sixth pass over the shared random
// query/database pairs: every executor runs twice per pair, untraced and
// with a live tracer in its options, under the forced-spill 256-byte
// budget, at every shard count. Tracing must be purely observational —
// traced output identical to untraced and to unsharded Naive — and every
// traced run must actually produce a span tree, or the instrumentation
// went inert and the harness is vacuous.
package eval_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"cqbound/internal/cq"
	"cqbound/internal/database"
	"cqbound/internal/datagen"
	"cqbound/internal/eval"
	"cqbound/internal/relation"
	"cqbound/internal/shard"
	"cqbound/internal/spill"
	"cqbound/internal/trace"
)

// TestPropertyTracedAgrees re-runs the harness pairs through the
// join-project, Yannakakis (when acyclic) and generic-join executors
// with tracing on, under the shared tiny spill governor, and requires
// byte-identical outputs plus a nonzero span count from every traced
// evaluation.
func TestPropertyTracedAgrees(t *testing.T) {
	iters := propertyIterations
	if testing.Short() {
		iters = 60
	}
	profiles := []datagen.QueryParams{
		{MaxVars: 5, MaxAtoms: 4, MaxArity: 3, HeadFraction: 0.7, RepeatRelationProb: 0.3, SimpleFDProb: 0.15},
		{MaxVars: 3, MaxAtoms: 5, MaxArity: 2, HeadFraction: 0.5, RepeatRelationProb: 0.6},
		{MaxVars: 6, MaxAtoms: 3, MaxArity: 4, HeadFraction: 0.9, RepeatRelationProb: 0.2, CompoundFDProb: 0.3},
		{MaxVars: 2, MaxAtoms: 3, MaxArity: 3, HeadFraction: 0.6, RepeatRelationProb: 0.5, SimpleFDProb: 0.3},
	}
	dbProfiles := []datagen.DBParams{
		{Tuples: 12, Universe: 6},
		{Tuples: 25, Universe: 4},
		{Tuples: 6, Universe: 12},
		{Tuples: 30, Universe: 8, ZipfS: 1.7},
		{Tuples: 20, Universe: 15, ZipfS: 2.5},
	}
	gov := spill.NewGovernor(spillBudgetBytes, t.TempDir())
	defer gov.Close()
	var spans int64
	for i := 0; i < iters; i++ {
		rng := rand.New(rand.NewSource(propertyBaseSeed + int64(i)))
		q := datagen.RandomQuery(rng, profiles[i%len(profiles)])
		db := datagen.RandomDatabase(rng, q, dbProfiles[i%len(dbProfiles)])
		p := shardCounts[i%len(shardCounts)]
		if msg := tracedDisagreement(gov, p, q, db, &spans); msg != "" {
			check := func(q *cq.Query, db *database.Database) string {
				return tracedDisagreement(gov, p, q, db, &spans)
			}
			q, db, msg = shrink(check, q, db, msg)
			t.Fatalf("iteration %d (seed %d, shards %d): traced execution disagrees after shrinking: %s\n"+
				"minimal query:\n%s\nminimal database:\n%s",
				i, propertyBaseSeed+int64(i), p, msg, q, dumpDB(db))
		}
	}
	if spans == 0 {
		t.Fatal("no traced run produced spans: the instrumentation went inert")
	}
	if st := gov.Snapshot(); st.Evictions == 0 || st.ReloadedShards == 0 {
		t.Fatalf("the forced-spill budget never spilled under tracing (evictions=%d reloads=%d)",
			st.Evictions, st.ReloadedShards)
	}
}

// tracedDisagreement runs each executor untraced and traced (both under
// the shared governor at partition count p) and compares all outputs
// against unsharded Naive, returning the first inconsistency ("" when
// all agree). Span counts of the traced runs accumulate into *spans.
func tracedDisagreement(gov *spill.Governor, p int, q *cq.Query, db *database.Database, spans *int64) string {
	ctx := context.Background()
	ref, _, err := eval.NaiveCtx(ctx, q, db)
	if err != nil {
		return fmt.Sprintf("naive: %v", err)
	}
	check := func(name string, out *relation.Relation, err error) string {
		if err != nil {
			return fmt.Sprintf("%s: %v", name, err)
		}
		if !relation.Equal(ref, out) {
			return fmt.Sprintf("%s: %d tuples, naive has %d", name, out.Size(), ref.Size())
		}
		return ""
	}
	type executor struct {
		name string
		run  func(*shard.Options) (*relation.Relation, eval.Stats, error)
	}
	execs := []executor{
		{"join-project", func(o *shard.Options) (*relation.Relation, eval.Stats, error) {
			return eval.JoinProjectExec(ctx, q, db, nil, o)
		}},
		{"generic-join", func(o *shard.Options) (*relation.Relation, eval.Stats, error) {
			return eval.GenericJoinExec(ctx, q, db, o)
		}},
	}
	if eval.IsAcyclic(q) {
		execs = append(execs, executor{"yannakakis", func(o *shard.Options) (*relation.Relation, eval.Stats, error) {
			return eval.YannakakisExec(ctx, q, db, o)
		}})
	}
	for _, ex := range execs {
		mk := func(tr *trace.Tracer, scope *spill.Scope) *shard.Options {
			return &shard.Options{
				MinRows: 0, Shards: p, SkewFraction: propertySkewFraction,
				BatchSize: 7, Spill: gov, Scope: scope, Trace: tr,
			}
		}
		scope := spill.NewScope()
		plain, _, err := ex.run(mk(nil, scope))
		scope.Close()
		if msg := check(ex.name+" untraced", plain, err); msg != "" {
			return msg
		}
		tr := trace.NewTracer(q.String())
		scope = spill.NewScope()
		traced, _, err := ex.run(mk(tr, scope))
		scope.Close()
		tc := tr.Finish()
		if msg := check(ex.name+" traced", traced, err); msg != "" {
			return msg
		}
		if !relation.Equal(plain, traced) {
			return fmt.Sprintf("%s: traced output differs from untraced", ex.name)
		}
		if tc.SpanCount() < 2 {
			return fmt.Sprintf("%s: traced run produced %d spans, want a tree", ex.name, tc.SpanCount())
		}
		*spans += int64(tc.SpanCount())
	}
	return ""
}
