package eval

// Per-operator size estimation for the trace layer: the classical
// System-R independence estimates, computed from the per-column distinct
// counts the relations maintain — memoized exactly for base relations,
// sample-estimated (shard.Stream.DistinctEstimate) for large transient
// intermediates so estimation never rescans what evaluation just built. Traced evaluations
// record these next to the actual row counts each operator produced —
// the paper predicts worst-case intermediate sizes from query structure,
// and these estimates are the per-step refinement a cost-based planner
// would use, so the trace shows how either relates to reality. Nothing
// here feeds back into planning (yet); estimation runs only under
// tracing.

import (
	"math"
	"slices"

	"cqbound/internal/cq"
	"cqbound/internal/database"
	"cqbound/internal/shard"
)

// EstimateOutput is the whole-query System-R independence estimate of
// |Q(D)|: the body atoms joined in order under containment of value sets
// (each shared variable divides by the larger distinct count and keeps the
// smaller), then a duplicate-eliminating projection onto the head
// variables. It is the pre-execution cost-model counterpart of the paper's
// worst-case bounds: BoundRows can never undershoot, this can, and the
// calibration telemetry records how each tracks actual cardinalities.
// Relations absent from db contribute nothing (their estimate is left to
// planning-time errors elsewhere).
func EstimateOutput(q *cq.Query, db *database.Database) float64 {
	est := 1.0
	v := make(map[cq.Variable]float64)
	for _, a := range q.Body {
		r := db.Relation(a.Relation)
		if r == nil {
			continue
		}
		est *= float64(r.Size())
		for i, x := range a.Vars {
			d := math.Max(1, float64(r.DistinctEstimate(i)))
			if dl, ok := v[x]; ok {
				if m := math.Max(dl, d); m >= 1 {
					est /= m
				}
				v[x] = math.Min(dl, d)
			} else {
				v[x] = d
			}
		}
		for x, d := range v {
			if d > est {
				v[x] = math.Max(1, est)
			}
		}
	}
	domain := 1.0
	for _, x := range q.Head.Vars {
		d, ok := v[x]
		if !ok {
			d = 1
		}
		if domain < est {
			domain *= d
		}
	}
	return math.Min(est, domain)
}

// estimateJoin estimates |l ⋈ r| from the sides' sizes and per-column
// distinct counts: |l|·|r| / Π over shared attributes of max(V(l,a),
// V(r,a)) — the containment-of-value-sets assumption. With no shared
// attribute this is the cross-product size.
func estimateJoin(l, r shard.Stream) float64 {
	lAttrs, rAttrs := l.Attrs(), r.Attrs()
	est := float64(l.Size()) * float64(r.Size())
	for i, a := range lAttrs {
		j := slices.Index(rAttrs, a)
		if j < 0 {
			continue
		}
		if m := math.Max(float64(l.DistinctEstimate(i)), float64(r.DistinctEstimate(j))); m >= 1 {
			est /= m
		}
	}
	return est
}

// estimateSemijoin estimates |l ⋉ r|: l's size scaled per shared
// attribute by the fraction of l's values assumed to appear in r,
// min(V(l,a), V(r,a)) / V(l,a).
func estimateSemijoin(l, r shard.Stream) float64 {
	lAttrs, rAttrs := l.Attrs(), r.Attrs()
	est := float64(l.Size())
	for i, a := range lAttrs {
		j := slices.Index(rAttrs, a)
		if j < 0 {
			continue
		}
		dl, dr := float64(l.DistinctEstimate(i)), float64(r.DistinctEstimate(j))
		if dl >= 1 && dr < dl {
			est *= dr / dl
		}
	}
	return est
}

// estimateProject estimates a duplicate-eliminating projection of rows
// input rows onto the kept attributes: the input size capped by the
// product of the kept columns' distinct counts (the size of the kept
// domain).
func estimateProject(in shard.Stream, keep []string) float64 {
	attrs := in.Attrs()
	domain := 1.0
	for _, a := range keep {
		if i := slices.Index(attrs, a); i >= 0 {
			domain *= math.Max(1, float64(in.DistinctEstimate(i)))
		}
		if domain > float64(in.Size()) {
			return float64(in.Size())
		}
	}
	return math.Min(float64(in.Size()), domain)
}

// estimator carries the System-R estimate through a streamed plan, where
// the running intermediate is a pipeline whose actual cardinality is
// unknown until the sink drains: rows is the running size estimate and v
// the per-attribute distinct estimates, both advanced join by join the
// way a cost-based optimizer would before execution.
type estimator struct {
	rows float64
	v    map[string]float64
}

// estimatorOf seeds the chain from a materialized first operand.
func estimatorOf(st shard.Stream) *estimator {
	e := &estimator{rows: float64(st.Size()), v: make(map[string]float64, len(st.Attrs()))}
	for i, a := range st.Attrs() {
		e.v[a] = math.Max(1, float64(st.DistinctEstimate(i)))
	}
	return e
}

// joinWith returns the estimated output size of joining the running
// intermediate with st and advances the estimator to that state (shared
// attributes keep the smaller distinct count, new attributes join the
// map, and every count is capped by the new row estimate).
func (e *estimator) joinWith(st shard.Stream) float64 {
	est := e.rows * float64(st.Size())
	for i, a := range st.Attrs() {
		dr := math.Max(1, float64(st.DistinctEstimate(i)))
		if dl, ok := e.v[a]; ok {
			if m := math.Max(dl, dr); m >= 1 {
				est /= m
			}
			e.v[a] = math.Min(dl, dr)
		} else {
			e.v[a] = dr
		}
	}
	e.rows = est
	for a, d := range e.v {
		if d > est {
			e.v[a] = math.Max(1, est)
		}
	}
	return est
}

// projectTo returns the estimate after a duplicate-eliminating projection
// onto keep and drops the discarded attributes from the state (nil-safe:
// the executors advance a nil estimator when tracing is off).
func (e *estimator) projectTo(keep []string) float64 {
	if e == nil {
		return 0
	}
	domain := 1.0
	kept := make(map[string]float64, len(keep))
	for _, a := range keep {
		d, ok := e.v[a]
		if !ok {
			d = 1
		}
		kept[a] = d
		if domain < e.rows {
			domain *= d
		}
	}
	e.v = kept
	e.rows = math.Min(e.rows, domain)
	return e.rows
}
