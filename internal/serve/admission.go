package serve

import (
	"context"
	"errors"
	"sync"

	"cqbound/internal/spill"
)

// ErrOverloaded is returned by Admit when the budget is fully committed and
// the wait queue is at capacity. HTTP handlers map it to 429.
var ErrOverloaded = errors.New("serve: overloaded, admission queue full")

// Admission rations a byte budget across concurrent queries. Each query
// asks for its planner-derived worst-case size before running; Admit grants
// immediately while total grants fit the capacity, parks the caller in a
// bounded FIFO queue while they do not, and fails fast with ErrOverloaded
// once the queue is full. Grants are released through the returned Ticket.
//
// Admission is bookkeeping over estimates, not enforcement: an admitted
// query that outgrows its reservation spills under the governor rather than
// being killed. The controller's job is to keep the sum of worst cases
// bounded so the governor evicts occasionally instead of thrashing.
type Admission struct {
	capacity int64
	maxQueue int
	gov      *spill.Governor // may be nil; mirrors reservations for /metrics

	mu        sync.Mutex
	committed int64
	queue     []*waiter // FIFO; head is next to be granted

	admitted      uint64
	rejected      uint64
	queued        uint64
	queueTimeouts uint64
}

type waiter struct {
	bytes   int64
	ready   chan struct{}
	granted bool // guarded by Admission.mu
}

// AdmissionStats is a point-in-time snapshot of the controller's counters
// and gauges, exported as the "serve" stats family on /metrics.
type AdmissionStats struct {
	// Admitted counts grants, immediate or after queueing.
	Admitted uint64
	// Rejected counts ErrOverloaded fast-failures (HTTP 429s).
	Rejected uint64
	// Queued counts requests that had to wait before being granted or
	// timing out.
	Queued uint64
	// QueueTimeouts counts queued requests whose context expired before a
	// grant.
	QueueTimeouts uint64
	// Waiting is the current queue length (a gauge).
	Waiting int
	// CommittedBytes is the budget currently granted to admitted queries
	// (a gauge).
	CommittedBytes int64
	// Capacity is the configured budget.
	Capacity int64
}

// NewAdmission returns a controller over a capacity-byte budget with at
// most maxQueue waiting requests. capacity must be positive; maxQueue may
// be zero (queue nothing, reject on contention). gov, when non-nil,
// receives Reserve/Unreserve mirroring every grant so spill.Stats shows
// committed bytes next to resident bytes.
func NewAdmission(capacity int64, maxQueue int, gov *spill.Governor) *Admission {
	if capacity <= 0 {
		panic("serve: admission capacity must be positive")
	}
	if maxQueue < 0 {
		panic("serve: negative admission queue")
	}
	return &Admission{capacity: capacity, maxQueue: maxQueue, gov: gov}
}

// Admit blocks until bytes of budget are granted, the queue overflows
// (ErrOverloaded), or ctx expires (its error). Estimates above the whole
// capacity are clamped to it — the query runs, alone. On success the caller
// owns a Ticket and must Release it when the query finishes, successfully
// or not.
func (a *Admission) Admit(ctx context.Context, bytes int64) (*Ticket, error) {
	if bytes < 0 {
		bytes = 0
	}
	if bytes > a.capacity {
		bytes = a.capacity
	}
	a.mu.Lock()
	if a.committed+bytes <= a.capacity && len(a.queue) == 0 {
		a.grantLocked(bytes)
		a.mu.Unlock()
		return &Ticket{a: a, bytes: bytes}, nil
	}
	if len(a.queue) >= a.maxQueue {
		a.rejected++
		a.mu.Unlock()
		return nil, ErrOverloaded
	}
	w := &waiter{bytes: bytes, ready: make(chan struct{})}
	a.queue = append(a.queue, w)
	a.queued++
	a.mu.Unlock()

	select {
	case <-w.ready:
		return &Ticket{a: a, bytes: bytes}, nil
	case <-ctx.Done():
		a.mu.Lock()
		if w.granted {
			// The grant raced the cancellation; hand it back and let the
			// next waiter have it.
			a.mu.Unlock()
			t := &Ticket{a: a, bytes: bytes}
			t.Release()
			return nil, ctx.Err()
		}
		for i, q := range a.queue {
			if q == w {
				a.queue = append(a.queue[:i], a.queue[i+1:]...)
				break
			}
		}
		a.queueTimeouts++
		a.mu.Unlock()
		return nil, ctx.Err()
	}
}

// grantLocked commits bytes and mirrors the reservation. Callers hold a.mu.
func (a *Admission) grantLocked(bytes int64) {
	a.committed += bytes
	a.admitted++
	a.gov.Reserve(bytes)
}

// release returns a grant and wakes every queued waiter that now fits, in
// FIFO order; the first waiter that does not fit blocks the rest so arrival
// order is preserved (no starvation of large requests by a stream of small
// ones).
func (a *Admission) release(bytes int64) {
	a.mu.Lock()
	a.committed -= bytes
	a.gov.Unreserve(bytes)
	for len(a.queue) > 0 {
		w := a.queue[0]
		if a.committed+w.bytes > a.capacity {
			break
		}
		a.queue = a.queue[1:]
		w.granted = true
		a.grantLocked(w.bytes)
		close(w.ready)
	}
	a.mu.Unlock()
}

// Stats snapshots the counters and gauges.
func (a *Admission) Stats() AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return AdmissionStats{
		Admitted:       a.admitted,
		Rejected:       a.rejected,
		Queued:         a.queued,
		QueueTimeouts:  a.queueTimeouts,
		Waiting:        len(a.queue),
		CommittedBytes: a.committed,
		Capacity:       a.capacity,
	}
}

// Ticket is an admission grant. Release returns the budget; it is
// idempotent and safe to defer alongside error paths.
type Ticket struct {
	a     *Admission
	bytes int64
	once  sync.Once
}

// Release hands the ticket's budget back and wakes queued waiters that now
// fit. Calling Release more than once is a no-op.
func (t *Ticket) Release() {
	if t == nil {
		return
	}
	t.once.Do(func() { t.a.release(t.bytes) })
}
