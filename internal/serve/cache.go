package serve

import (
	"strconv"
	"strings"
	"sync"

	"cqbound/internal/lru"
)

// Cache is a concurrency-safe result cache keyed on (query text, database
// epoch). Results are immutable for a fixed epoch, so entries never go
// stale in place: a Commit that advances the live epoch simply makes new
// requests miss under the new key, while a reader pinned to an old Snapshot
// keeps hitting its own epoch's entries. Sweep reclaims entries for epochs
// nothing can read anymore.
type Cache[V any] struct {
	mu            sync.Mutex
	lru           *lru.Cache[V]
	invalidations uint64
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	// Hits and Misses count Get outcomes.
	Hits, Misses uint64
	// Invalidations counts entries dropped by Sweep because their epoch
	// became unreadable (distinct from LRU capacity evictions).
	Invalidations uint64
	// Entries is the current size (a gauge).
	Entries int
}

// NewCache returns an empty cache holding at most capacity entries across
// all epochs. capacity must be positive.
func NewCache[V any](capacity int) *Cache[V] {
	return &Cache[V]{lru: lru.New[V](capacity)}
}

// cacheKey mirrors the engine's per-epoch plan-cache scheme: the query text
// plus a suffix no parsable query can contain ("\x00" is not in the
// grammar), so distinct epochs never collide with each other or with a
// query that happens to end in digits.
func cacheKey(query string, epoch uint64) string {
	return query + "\x00@" + strconv.FormatUint(epoch, 10)
}

// Get returns the cached result for the query at the given epoch.
func (c *Cache[V]) Get(query string, epoch uint64) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Get(cacheKey(query, epoch))
}

// Put stores the result for the query at the given epoch.
func (c *Cache[V]) Put(query string, epoch uint64, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.Put(cacheKey(query, epoch), v)
}

// Sweep drops every entry whose epoch fails the readable predicate —
// typically "is the live epoch or pinned by a held snapshot". It returns
// the number of entries dropped. The server runs it after each Commit and
// snapshot release; missing one sweep costs memory, never correctness,
// because unreadable epochs cannot be requested.
func (c *Cache[V]) Sweep(readable func(epoch uint64) bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var stale []string
	c.lru.Backward(func(key string, _ V) bool {
		if i := strings.LastIndex(key, "\x00@"); i >= 0 {
			if e, err := strconv.ParseUint(key[i+2:], 10, 64); err == nil && !readable(e) {
				stale = append(stale, key)
			}
		}
		return true
	})
	for _, key := range stale {
		c.lru.Remove(key)
	}
	c.invalidations += uint64(len(stale))
	return len(stale)
}

// Stats snapshots hit/miss/invalidation counts and the current size.
func (c *Cache[V]) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, m := c.lru.Stats()
	return CacheStats{Hits: h, Misses: m, Invalidations: c.invalidations, Entries: c.lru.Len()}
}
