// TestMain for the serve test binary: a goleak-style goroutine check.
// Every test in this package spins up HTTP servers, clients, and
// evaluations that are cancelled mid-flight; none of that may leave a
// goroutine behind (internal/pool runs no persistent workers, httptest
// servers are closed per test, clients close idle connections). The
// baseline is captured before any test runs; after the last test the
// count must settle back, with a few seconds' grace for connection
// readLoops to drain.
package serve_test

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"
)

func TestMain(m *testing.M) {
	base := runtime.NumGoroutine()
	code := m.Run()
	if code == 0 {
		deadline := time.Now().Add(10 * time.Second)
		for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
			time.Sleep(50 * time.Millisecond)
		}
		if n := runtime.NumGoroutine(); n > base {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			fmt.Fprintf(os.Stderr, "goroutine leak: %d goroutines after tests, baseline %d\n%s\n",
				n, base, buf)
			code = 1
		}
	}
	os.Exit(code)
}
