// End-to-end tests of the serving-path observability layer
// (ARCHITECTURE §12) over real HTTP: request-ID correlation across the
// access log, slow-query log, rendered trace and error bodies; the
// introspection endpoints; the Prometheus exposition; the windowed
// Retry-After hint on 429s; and the ObsStats reset contract.
package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	cqbound "cqbound"
	"cqbound/internal/datagen"
	"cqbound/internal/obs"
)

// syncBuf is a mutex-guarded buffer: the access log and slow-query log
// write from request goroutines while the test reads.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// waitContains polls buf for substr — the access-log line lands just
// after the response reaches the client, so the first read can race it.
func waitContains(t *testing.T, buf *syncBuf, substr, what string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !strings.Contains(buf.String(), substr) {
		if time.Now().After(deadline) {
			t.Fatalf("%s never mentioned %q; contents:\n%s", what, substr, buf.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// loadTriangle commits the three-edge cycle used across these tests.
func loadTriangle(t *testing.T, s *testSrv) {
	t.Helper()
	s.commit(t, []op{
		{Op: "create", Rel: "E", Attrs: []string{"x", "y"}},
		{Op: "append", Rel: "E", Rows: [][]string{{"a", "b"}, {"b", "c"}, {"c", "a"}}},
		{Op: "create", Rel: "F", Attrs: []string{"x", "y"}},
		{Op: "append", Rel: "F", Rows: [][]string{{"a", "b"}, {"b", "c"}, {"c", "a"}}},
		{Op: "create", Rel: "G", Attrs: []string{"x", "y"}},
		{Op: "append", Rel: "G", Rows: [][]string{{"a", "b"}, {"b", "c"}, {"c", "a"}}},
	})
}

// TestRequestIDCorrelation drives one query carrying a client-supplied
// X-Request-ID end to end and checks the same ID surfaces everywhere the
// layer promises: the echoed response header, the rendered trace, the
// slow-query record, the sampled access log, and error bodies.
func TestRequestIDCorrelation(t *testing.T) {
	const id = "corr-7f3a"
	var accessLog, slowLog syncBuf
	s := newTestSrv(t,
		[]cqbound.Option{
			cqbound.WithTracing(),
			cqbound.WithTraceSink(cqbound.NewSlowQueryLog(&slowLog, 0)),
		},
		[]cqbound.ServerOption{cqbound.WithAccessLog(&accessLog, 1)},
	)
	loadTriangle(t, s)

	v := url.Values{"q": {"Q(X,Y,Z) <- E(X,Y), F(Y,Z), G(Z,X)."}, "trace": {"1"}}
	req, err := http.NewRequest(http.MethodGet, s.ts.URL+"/query?"+v.Encode(), nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.HeaderRequestID, id)
	resp, err := s.c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(obs.HeaderRequestID); got != id {
		t.Fatalf("response %s = %q, want %q", obs.HeaderRequestID, got, id)
	}
	var qr queryResp
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(qr.Trace, "request: "+id) {
		t.Fatalf("rendered trace does not carry the request ID:\n%s", qr.Trace)
	}
	waitContains(t, &slowLog, `"request_id":"`+id+`"`, "slow-query log")
	waitContains(t, &accessLog, `"request_id":"`+id+`"`, "access log")

	// Error bodies carry the ID too: a parse failure is a deterministic 400.
	req, err = http.NewRequest(http.MethodGet, s.ts.URL+"/query?q=not+a+query", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.HeaderRequestID, id+"-bad")
	resp, err = s.c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("parse error status %d", resp.StatusCode)
	}
	var errBody struct {
		RequestID string `json:"request_id"`
	}
	if err := json.Unmarshal(body, &errBody); err != nil {
		t.Fatalf("error body not JSON: %v (%s)", err, body)
	}
	if errBody.RequestID != id+"-bad" {
		t.Fatalf("error body request_id = %q, want %q", errBody.RequestID, id+"-bad")
	}

	// Without a client ID the server mints one.
	resp, err = s.c.Get(s.ts.URL + "/query?" + url.Values{"q": {"Q(X,Y) <- E(X,Y)."}}.Encode())
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.Header.Get(obs.HeaderRequestID) == "" {
		t.Fatal("server did not mint a request ID")
	}
}

// TestObsEndpointsSmoke is the CI smoke contract: the probe, profiling,
// introspection and exposition endpoints all answer 200 in-process, and
// the Prometheus body passes the shared validity checker.
func TestObsEndpointsSmoke(t *testing.T) {
	s := newTestSrv(t, nil, nil)
	loadTriangle(t, s)
	if _, code := s.query(t, "Q(X,Y,Z) <- E(X,Y), F(Y,Z), G(Z,X).", "", false); code != http.StatusOK {
		t.Fatalf("warmup query status %d", code)
	}

	for _, path := range []string{
		"/healthz",
		"/readyz",
		"/debug/requests",
		"/calibration",
		"/debug/pprof/profile?seconds=1",
		"/metrics",
		"/metrics?format=prom",
	} {
		resp, err := s.c.Get(s.ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
		}
		switch path {
		case "/metrics?format=prom":
			if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
				t.Fatalf("prom Content-Type = %q", ct)
			}
			obs.CheckPromText(t, string(body))
			for _, want := range []string{
				"serve_window_request_rate", "serve_window_latency_ns",
				"serve_inflight", "calibration_bound_log2_error",
			} {
				if !strings.Contains(string(body), want) {
					t.Errorf("prom exposition missing family %s", want)
				}
			}
		case "/metrics":
			var m map[string]any
			if err := json.Unmarshal(body, &m); err != nil {
				t.Fatalf("/metrics JSON: %v", err)
			}
			if _, ok := m["calibration_records"]; !ok {
				t.Error("/metrics JSON missing calibration_records")
			}
		case "/calibration":
			var c struct {
				Records int64            `json:"records"`
				Cells   []map[string]any `json:"cells"`
			}
			if err := json.Unmarshal(body, &c); err != nil {
				t.Fatalf("/calibration JSON: %v", err)
			}
			if c.Records == 0 || len(c.Cells) == 0 {
				t.Fatalf("calibration empty after a query: %s", body)
			}
		}
	}
}

// TestWithoutObservability checks the off switch: no correlation header,
// no /debug or /calibration routes, but probes and /metrics still work.
func TestWithoutObservability(t *testing.T) {
	s := newTestSrv(t, nil, []cqbound.ServerOption{cqbound.WithoutObservability()})
	loadTriangle(t, s)

	resp, err := s.c.Get(s.ts.URL + "/query?" + url.Values{"q": {"Q(X,Y) <- E(X,Y)."}}.Encode())
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.HeaderRequestID); got != "" {
		t.Fatalf("obs-off server set %s = %q", obs.HeaderRequestID, got)
	}
	for path, want := range map[string]int{
		"/healthz":        http.StatusOK,
		"/readyz":         http.StatusOK,
		"/metrics":        http.StatusOK,
		"/debug/requests": http.StatusNotFound,
		"/calibration":    http.StatusNotFound,
		"/debug/pprof/":   http.StatusNotFound,
	} {
		resp, err := s.c.Get(s.ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("GET %s: status %d, want %d", path, resp.StatusCode, want)
		}
	}
	if st := s.srv.ObsStats(); st != (cqbound.ObsStats{}) {
		t.Fatalf("obs-off ObsStats not zero: %+v", st)
	}
}

// TestRetryAfterWindowed floods a tiny admission budget and checks every
// 429 carries the windowed Retry-After hint in [1, 30] seconds and a
// correlated JSON body.
func TestRetryAfterWindowed(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	s := newTestSrv(t,
		[]cqbound.Option{cqbound.WithSharding(0, 2)},
		[]cqbound.ServerOption{
			cqbound.WithResultCache(0),
			cqbound.WithAdmissionBudget(64 << 10),
			cqbound.WithAdmissionQueue(2),
		},
	)
	db := datagen.EdgeDB(rng, []string{"E", "F", "G"}, 300, 30)
	ops := []op{}
	for _, name := range db.Names() {
		r := db.Relation(name)
		rows := make([][]string, 0, r.Size())
		r.Each(func(tp cqbound.Tuple) bool {
			rows = append(rows, tp.Strings())
			return true
		})
		ops = append(ops, op{Op: "create", Rel: name, Attrs: r.Attrs},
			op{Op: "append", Rel: name, Rows: rows})
	}
	s.commit(t, ops)

	tri := url.Values{"q": {"Q(X,Y,Z) <- E(X,Y), F(Y,Z), G(Z,X)."}}.Encode()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		rejected int
		bad      []string
	)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 3; r++ {
				resp, err := s.c.Get(s.ts.URL + "/query?" + tri)
				if err != nil {
					mu.Lock()
					bad = append(bad, err.Error())
					mu.Unlock()
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusTooManyRequests {
					continue
				}
				mu.Lock()
				rejected++
				ra := resp.Header.Get("Retry-After")
				if n, err := strconv.Atoi(ra); err != nil || n < 1 || n > 30 {
					bad = append(bad, fmt.Sprintf("Retry-After = %q", ra))
				}
				if !bytes.Contains(body, []byte(`"request_id"`)) {
					bad = append(bad, fmt.Sprintf("429 body without request_id: %s", body))
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(bad) > 0 {
		t.Fatalf("bad 429 responses: %v", bad)
	}
	if rejected == 0 {
		t.Skip("flood produced no 429s on this machine; hint contract unexercised")
	}
	if st := s.srv.ObsStats(); st.Shed == 0 {
		t.Fatalf("ObsStats.Shed = 0 after %d rejections", rejected)
	}
}

// TestObsStatsReset is the reset contract: after traffic every counter
// family is live, and ResetStats zeroes them all. The walk is by
// reflection so a counter added to ObsStats later is covered without
// editing this test; InflightNow is the documented gauge exemption.
func TestObsStatsReset(t *testing.T) {
	var accessLog syncBuf
	s := newTestSrv(t, nil, []cqbound.ServerOption{cqbound.WithAccessLog(&accessLog, 2)})
	loadTriangle(t, s)

	queries := []string{
		"Q(X,Y,Z) <- E(X,Y), F(Y,Z), G(Z,X).",
		"Q(X,Y) <- E(X,Y).",
		"Q(X,Z) <- E(X,Y), F(Y,Z).",
		"Q(X,Y) <- E(X,Y).", // repeat: cache hit
	}
	for _, q := range queries {
		if _, code := s.query(t, q, "", false); code != http.StatusOK {
			t.Fatalf("query %q status %d", q, code)
		}
	}
	st := s.srv.ObsStats()
	if st.Requests == 0 || st.Grants == 0 || st.CacheHits == 0 || st.CacheMisses == 0 ||
		st.LatencySamples == 0 || st.CalibrationRecords == 0 || st.AccessLogged == 0 {
		t.Fatalf("counters flat after traffic: %+v", st)
	}

	s.srv.ResetStats()
	st = s.srv.ObsStats()
	rv := reflect.ValueOf(st)
	rt := rv.Type()
	if rt.NumField() < 12 {
		t.Fatalf("ObsStats shrank to %d fields", rt.NumField())
	}
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		if f.Name == "InflightNow" {
			continue // gauge: current depth, not a resettable counter
		}
		if f.Type.Kind() != reflect.Int64 {
			t.Errorf("ObsStats.%s is %s; the reset walk expects int64 counters", f.Name, f.Type)
			continue
		}
		if v := rv.Field(i).Int(); v != 0 {
			t.Errorf("ObsStats.%s = %d after ResetStats, want 0", f.Name, v)
		}
	}

	// Windows and calibration really drained, not just the struct view.
	for _, sn := range s.srv.WindowSnapshots() {
		if sn.Requests != 0 || sn.LatencyP99Ns != 0 {
			t.Fatalf("window %s not drained after reset: %+v", sn.Window, sn)
		}
	}
	cj, err := s.srv.CalibrationJSON()
	if err != nil {
		t.Fatal(err)
	}
	var c struct {
		Records int64 `json:"records"`
	}
	if err := json.Unmarshal(cj, &c); err != nil {
		t.Fatal(err)
	}
	if c.Records != 0 {
		t.Fatalf("calibration not drained after reset: %s", cj)
	}
}
