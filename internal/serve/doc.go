// Package serve holds the engine-agnostic building blocks of the cqserve
// HTTP front-end: an admission controller that rations the spill governor's
// memory budget across concurrent queries, and an epoch-keyed result cache.
// The HTTP server itself (root package, serve.go) composes these with the
// Engine; this package stays below the root so the server's tests can drive
// it through the public API.
//
// # Admission
//
// The paper's size bounds make admission control principled rather than
// reactive: a query's worst-case output (Σ|Rᵢ| for Yannakakis, rmax^C of
// Thm 4.4 for project-early, the AGM bound rmax^ρ* for the generic join)
// is known from the plan alone, before a single tuple is joined. The
// controller converts that bound to a byte reservation and admits the query
// only while total reservations fit the budget; otherwise the request waits
// in a bounded FIFO queue or is rejected (HTTP 429) when the queue is full.
// Work is therefore shed at the door instead of discovered mid-flight by a
// thrashing governor. Reservations are mirrored into the governor's
// Reserve/Unreserve accounting so /metrics shows committed next to actual
// resident bytes. An estimate larger than the whole budget is clamped to
// it: such a query is not unservable (the governor spills), it just runs
// alone.
//
// # The result cache
//
// Query results are immutable for a fixed database version, so the cache
// key is (query text, epoch) — the same suffix scheme as the engine's
// per-epoch plan cache. A Commit that advances the live epoch invalidates
// nothing explicitly; new requests simply miss under the new epoch, and a
// periodic sweep drops entries whose epoch is no longer live or pinned by a
// held snapshot. A reader holding an old Snapshot keeps hitting its own
// epoch's entries, which is exactly the isolation Commit promises.
package serve
