// End-to-end tests of the cqserve HTTP front-end (root package Server)
// driven through real HTTP connections: endpoint contracts, the
// (query, epoch) result cache lifecycle, resource release on client
// disconnect, and admission-control saturation. The engine-agnostic
// admission/cache units are tested separately in this package's internal
// tests; here everything goes over the wire.
package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	cqbound "cqbound"
	"cqbound/internal/datagen"
)

// testSrv bundles one engine behind one live HTTP server. Cleanup closes
// client, server, and engine in dependency order so the TestMain leak
// check sees no stragglers.
type testSrv struct {
	eng *cqbound.Engine
	srv *cqbound.Server
	ts  *httptest.Server
	c   *http.Client
}

func newTestSrv(t testing.TB, engOpts []cqbound.Option, srvOpts []cqbound.ServerOption) *testSrv {
	t.Helper()
	eng := cqbound.NewEngine(engOpts...)
	srv := cqbound.NewServer(eng, srvOpts...)
	ts := httptest.NewServer(srv)
	c := ts.Client()
	t.Cleanup(func() {
		c.CloseIdleConnections()
		ts.Close()
		srv.Close()
		eng.Close()
	})
	return &testSrv{eng: eng, srv: srv, ts: ts, c: c}
}

// op mirrors the /commit JSON op shape.
type op struct {
	Op    string     `json:"op"`
	Rel   string     `json:"rel"`
	Attrs []string   `json:"attrs,omitempty"`
	Rows  [][]string `json:"rows,omitempty"`
}

// commit applies ops over HTTP and returns the published epoch.
func (s *testSrv) commit(t testing.TB, ops []op) uint64 {
	t.Helper()
	body, err := json.Marshal(map[string]any{"ops": ops})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := s.c.Post(s.ts.URL+"/commit", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /commit: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /commit: status %d: %s", resp.StatusCode, b)
	}
	var out map[string]uint64
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out["epoch"]
}

// queryResp mirrors the /query JSON response.
type queryResp struct {
	Query  string     `json:"query"`
	Epoch  uint64     `json:"epoch"`
	Rows   int        `json:"rows"`
	Attrs  []string   `json:"attrs"`
	Tuples [][]string `json:"tuples"`
	Cached bool       `json:"cached"`
	Trace  string     `json:"trace,omitempty"`
}

// query evaluates q over HTTP; epoch "" reads the live epoch. Non-200
// statuses return a nil response.
func (s *testSrv) query(t testing.TB, q, epoch string, trace bool) (*queryResp, int) {
	t.Helper()
	v := url.Values{"q": {q}}
	if epoch != "" {
		v.Set("epoch", epoch)
	}
	if trace {
		v.Set("trace", "1")
	}
	resp, err := s.c.Get(s.ts.URL + "/query?" + v.Encode())
	if err != nil {
		t.Fatalf("GET /query: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, resp.StatusCode
	}
	var out queryResp
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out, resp.StatusCode
}

// snapshot pins the live epoch via POST /snapshot.
func (s *testSrv) snapshot(t testing.TB) uint64 {
	t.Helper()
	resp, err := s.c.Post(s.ts.URL+"/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]uint64
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out["epoch"]
}

// releaseSnapshot releases a pinned epoch via DELETE /snapshot.
func (s *testSrv) releaseSnapshot(t testing.TB, epoch uint64) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete,
		s.ts.URL+"/snapshot?epoch="+strconv.FormatUint(epoch, 10), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := s.c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE /snapshot?epoch=%d: status %d", epoch, resp.StatusCode)
	}
}

// tupleSet canonicalizes response tuples for set comparison.
func tupleSet(tuples [][]string) map[string]bool {
	set := make(map[string]bool, len(tuples))
	for _, tp := range tuples {
		set[strings.Join(tp, "\x00")] = true
	}
	return set
}

func sameTuples(a, b [][]string) bool {
	if len(a) != len(b) {
		return false
	}
	sa := tupleSet(a)
	for _, tp := range b {
		if !sa[strings.Join(tp, "\x00")] {
			return false
		}
	}
	return true
}

func TestServeEndpoints(t *testing.T) {
	s := newTestSrv(t, nil, nil)
	s.commit(t, []op{
		{Op: "create", Rel: "E", Attrs: []string{"x", "y"}},
		{Op: "append", Rel: "E", Rows: [][]string{{"a", "b"}, {"b", "c"}, {"c", "d"}}},
	})

	path := "Q(X,Z) <- E(X,Y), E(Y,Z)."
	res, code := s.query(t, path, "", false)
	if code != http.StatusOK {
		t.Fatalf("query status %d", code)
	}
	want := [][]string{{"a", "c"}, {"b", "d"}}
	if !sameTuples(res.Tuples, want) || res.Rows != 2 {
		t.Fatalf("query answer = %v (rows %d), want %v", res.Tuples, res.Rows, want)
	}
	if res.Cached {
		t.Fatal("first evaluation claims a cache hit")
	}
	if len(res.Attrs) != 2 {
		t.Fatalf("attrs = %v", res.Attrs)
	}

	// Traced request: same answer plus a rendered trace.
	tr, code := s.query(t, path, "", true)
	if code != http.StatusOK || !strings.HasPrefix(tr.Trace, "strategy:") {
		t.Fatalf("traced query: status %d, trace %q", code, tr.Trace)
	}
	if !sameTuples(tr.Tuples, want) {
		t.Fatalf("traced answer diverged: %v", tr.Tuples)
	}

	// Explain: plan text with the admission charge.
	resp, err := s.c.Get(s.ts.URL + "/explain?" + url.Values{"q": {path}}.Encode())
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(b), "strategy:") ||
		!strings.Contains(string(b), "admission charge") {
		t.Fatalf("explain: status %d body %q", resp.StatusCode, b)
	}

	// Metrics: the serve family rides on the engine registry.
	resp, err = s.c.Get(s.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, name := range []string{"serve_admission_admitted", "serve_cache_misses", "serve_requests", "query_latency_ns"} {
		if _, ok := metrics[name]; !ok {
			t.Fatalf("/metrics missing %s (have %d keys)", name, len(metrics))
		}
	}

	// Error contracts: bad query 400, unknown pinned epoch 404.
	if _, code := s.query(t, "not a query", "", false); code != http.StatusBadRequest {
		t.Fatalf("parse error status = %d, want 400", code)
	}
	if _, code := s.query(t, path, "99", false); code != http.StatusNotFound {
		t.Fatalf("unknown epoch status = %d, want 404", code)
	}
}

// TestResultCacheLifecycle is the satellite-3 contract: repeats on one
// (query, epoch) hit, a Commit moves the live epoch so the next live read
// misses and recomputes, and a reader holding a pinned snapshot keeps
// getting the stale epoch's answer — from the cache, whose pinned entries
// survive the post-commit sweep — never the new one.
func TestResultCacheLifecycle(t *testing.T) {
	s := newTestSrv(t, nil, nil)
	s.commit(t, []op{
		{Op: "create", Rel: "E", Attrs: []string{"x", "y"}},
		{Op: "append", Rel: "E", Rows: [][]string{{"a", "b"}, {"b", "c"}}},
	})
	path := "Q(X,Z) <- E(X,Y), E(Y,Z)."

	first, _ := s.query(t, path, "", false)
	if first.Cached {
		t.Fatal("cold read claims a cache hit")
	}
	again, _ := s.query(t, path, "", false)
	if !again.Cached || !sameTuples(again.Tuples, first.Tuples) {
		t.Fatalf("repeat read: cached=%v tuples=%v, want hit with %v",
			again.Cached, again.Tuples, first.Tuples)
	}
	if st := s.srv.ResultCacheStats(); st.Hits < 1 {
		t.Fatalf("cache stats after repeat: %+v", st)
	}

	// Pin the current epoch, then advance it.
	pinned := s.snapshot(t)
	if pinned != first.Epoch {
		t.Fatalf("snapshot pinned epoch %d, queries read %d", pinned, first.Epoch)
	}
	s.commit(t, []op{{Op: "append", Rel: "E", Rows: [][]string{{"c", "d"}}}})

	// Live read: new epoch, cache miss, new answer.
	live, _ := s.query(t, path, "", false)
	if live.Epoch == pinned || live.Cached {
		t.Fatalf("post-commit live read: epoch %d cached=%v", live.Epoch, live.Cached)
	}
	if sameTuples(live.Tuples, first.Tuples) {
		t.Fatal("live answer did not change after commit")
	}

	// Pinned read: stale epoch's answer, still served (and still cached —
	// the sweep must not have dropped a pinned epoch's entries).
	stale, code := s.query(t, path, strconv.FormatUint(pinned, 10), false)
	if code != http.StatusOK {
		t.Fatalf("pinned read status %d", code)
	}
	if stale.Epoch != pinned || !sameTuples(stale.Tuples, first.Tuples) {
		t.Fatalf("pinned read: epoch %d tuples %v, want epoch %d tuples %v",
			stale.Epoch, stale.Tuples, pinned, first.Tuples)
	}
	if !stale.Cached {
		t.Fatal("pinned epoch's cache entries were swept while the snapshot was held")
	}

	// Releasing the pin makes the old epoch unreadable; the sweep drops it.
	inv := s.srv.ResultCacheStats().Invalidations
	s.releaseSnapshot(t, pinned)
	if st := s.srv.ResultCacheStats(); st.Invalidations <= inv {
		t.Fatalf("no invalidations after releasing epoch %d: %+v", pinned, st)
	}
	if _, code := s.query(t, path, strconv.FormatUint(pinned, 10), false); code != http.StatusNotFound {
		t.Fatalf("released epoch still served: status %d", code)
	}
}

// TestCancelReleasesResources is the satellite-2 contract: client
// disconnects and deadline expiries mid-evaluation must unwind completely
// — the evaluation's spill scope discarded (RegisteredBuffers and
// BytesOnDisk back to baseline), every epoch pin released, goroutines
// gone (the package TestMain enforces that part).
func TestCancelReleasesResources(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := newTestSrv(t,
		[]cqbound.Option{
			cqbound.WithSharding(0, 3),
			cqbound.WithMemoryBudget(256),
			cqbound.WithSpillDir(t.TempDir()),
		},
		[]cqbound.ServerOption{cqbound.WithResultCache(0)},
	)
	db := datagen.EdgeDB(rng, []string{"E", "F", "G"}, 600, 40)
	ops := []op{}
	for _, name := range db.Names() {
		r := db.Relation(name)
		rows := [][]string{}
		r.Each(func(tp cqbound.Tuple) bool {
			rows = append(rows, tp.Strings())
			return true
		})
		ops = append(ops, op{Op: "create", Rel: name, Attrs: r.Attrs},
			op{Op: "append", Rel: name, Rows: rows})
	}
	s.commit(t, ops)
	tri := "Q(X,Y,Z) <- E(X,Y), F(Y,Z), G(Z,X)."

	// Baseline: one evaluation run to completion settles the base
	// partitions' registrations and segments.
	if _, code := s.query(t, tri, "", false); code != http.StatusOK {
		t.Fatalf("warmup status %d", code)
	}
	base := s.eng.SpillStats()

	// Now the same query with deadlines that expire mid-evaluation. The
	// client walking away cancels the request context; the handler's
	// evaluation aborts wherever it is. Some may still finish — what
	// matters is that none of them leaks.
	for i := 0; i < 8; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Duration(1+i%5)*time.Millisecond)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			s.ts.URL+"/query?"+url.Values{"q": {tri}}.Encode(), nil)
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		resp, err := s.c.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		cancel()
	}

	// Everything must drain back to the baseline: in-flight handlers
	// finish unwinding, scopes discard their intermediates, pins release.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := s.eng.SpillStats()
		ep := s.eng.EpochStats()
		if st.RegisteredBuffers == base.RegisteredBuffers &&
			st.BytesOnDisk == base.BytesOnDisk && ep.PinnedReaders == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("resources not released after cancellations: buffers %d (baseline %d), on-disk %d (baseline %d), pinned readers %d",
				st.RegisteredBuffers, base.RegisteredBuffers, st.BytesOnDisk, base.BytesOnDisk, ep.PinnedReaders)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st := s.srv.AdmissionStats(); st.CommittedBytes != 0 {
		t.Fatalf("admission budget not returned: %+v", st)
	}
}

// TestAdmissionSaturation is the satellite-4 contract: flooding the
// server with bound-heavy queries at a tiny budget must shed load at the
// door (429s and queueing), keep the governor's resident peak at or under
// the budget, and still answer every admitted query correctly.
func TestAdmissionSaturation(t *testing.T) {
	const capBytes = 64 << 10
	rng := rand.New(rand.NewSource(11))
	s := newTestSrv(t,
		[]cqbound.Option{
			cqbound.WithSharding(0, 2),
			cqbound.WithMemoryBudget(capBytes),
			cqbound.WithSpillDir(t.TempDir()),
		},
		[]cqbound.ServerOption{
			cqbound.WithResultCache(0), // every request must face admission
			cqbound.WithAdmissionQueue(4),
		},
	)
	db := datagen.EdgeDB(rng, []string{"E", "F", "G"}, 300, 30)
	ops := []op{}
	for _, name := range db.Names() {
		r := db.Relation(name)
		rows := [][]string{}
		r.Each(func(tp cqbound.Tuple) bool {
			rows = append(rows, tp.Strings())
			return true
		})
		ops = append(ops, op{Op: "create", Rel: name, Attrs: r.Attrs},
			op{Op: "append", Rel: name, Rows: rows})
	}
	s.commit(t, ops)

	// The triangle's AGM bound (rmax^{3/2} rows, 3 values each) exceeds
	// the whole 64 KiB budget, so Admit clamps it to capacity: admitted
	// queries serialize, everything else queues (depth 4) or is rejected.
	tri := "Q(X,Y,Z) <- E(X,Y), F(Y,Z), G(Z,X)."
	want, _ := s.query(t, tri, "", false)
	if want == nil {
		t.Fatal("reference evaluation failed")
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		ok200    int
		rejected int
		other    []string
	)
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 2; r++ {
				res, code := s.query(t, tri, "", false)
				mu.Lock()
				switch code {
				case http.StatusOK:
					ok200++
					if !sameTuples(res.Tuples, want.Tuples) {
						other = append(other, fmt.Sprintf("admitted query returned %d tuples, want %d",
							len(res.Tuples), len(want.Tuples)))
					}
				case http.StatusTooManyRequests:
					rejected++
				default:
					other = append(other, fmt.Sprintf("status %d", code))
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	if len(other) > 0 {
		t.Fatalf("unexpected outcomes under saturation: %v", other)
	}
	if ok200 == 0 {
		t.Fatal("no queries admitted under saturation")
	}
	if rejected == 0 {
		t.Fatal("flood produced no 429s: admission did not saturate")
	}
	st := s.srv.AdmissionStats()
	if st.Rejected == 0 || st.Queued == 0 {
		t.Fatalf("admission stats show no shedding: %+v", st)
	}
	if st.CommittedBytes != 0 || st.Waiting != 0 {
		t.Fatalf("admission did not drain: %+v", st)
	}
	if peak := s.eng.SpillStats().PeakResidentBytes; peak > capBytes {
		t.Fatalf("governor peak %d exceeded the %d budget: admission failed to prevent thrash", peak, capBytes)
	}
}
