package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"cqbound/internal/spill"
)

func TestAdmitImmediate(t *testing.T) {
	a := NewAdmission(1000, 4, nil)
	t1, err := a.Admit(context.Background(), 600)
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	t2, err := a.Admit(context.Background(), 400)
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	st := a.Stats()
	if st.Admitted != 2 || st.CommittedBytes != 1000 || st.Queued != 0 {
		t.Fatalf("stats = %+v", st)
	}
	t1.Release()
	t2.Release()
	t2.Release() // idempotent
	if got := a.Stats().CommittedBytes; got != 0 {
		t.Fatalf("CommittedBytes after release = %d", got)
	}
}

func TestAdmitClampsOversized(t *testing.T) {
	a := NewAdmission(100, 0, nil)
	tk, err := a.Admit(context.Background(), 1<<40)
	if err != nil {
		t.Fatalf("oversized estimate should clamp and admit, got %v", err)
	}
	if got := a.Stats().CommittedBytes; got != 100 {
		t.Fatalf("CommittedBytes = %d, want clamp to capacity 100", got)
	}
	tk.Release()
}

func TestAdmitQueuesThenGrantsFIFO(t *testing.T) {
	a := NewAdmission(100, 8, nil)
	first, err := a.Admit(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	order := make(chan int, 2)
	var wg sync.WaitGroup
	for i := 1; i <= 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tk, err := a.Admit(context.Background(), 100)
			if err != nil {
				t.Errorf("queued Admit %d: %v", i, err)
				return
			}
			order <- i
			tk.Release()
		}(i)
		// Serialize arrival so FIFO order is observable.
		for a.Stats().Waiting < i {
			time.Sleep(time.Millisecond)
		}
	}
	first.Release()
	wg.Wait()
	if a, b := <-order, <-order; a != 1 || b != 2 {
		t.Fatalf("grant order = %d,%d; want FIFO 1,2", a, b)
	}
	st := a.Stats()
	if st.Queued != 2 || st.Admitted != 3 || st.CommittedBytes != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAdmitRejectsWhenQueueFull(t *testing.T) {
	a := NewAdmission(100, 0, nil)
	tk, err := a.Admit(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Admit(context.Background(), 1); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	if got := a.Stats().Rejected; got != 1 {
		t.Fatalf("Rejected = %d", got)
	}
	tk.Release()
}

func TestAdmitQueueTimeout(t *testing.T) {
	a := NewAdmission(100, 4, nil)
	tk, err := a.Admit(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := a.Admit(ctx, 50); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	st := a.Stats()
	if st.QueueTimeouts != 1 || st.Waiting != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// The timed-out waiter must not wedge the queue: budget still grants.
	tk.Release()
	tk2, err := a.Admit(context.Background(), 100)
	if err != nil {
		t.Fatalf("Admit after timeout: %v", err)
	}
	tk2.Release()
}

func TestAdmitMirrorsGovernorReservations(t *testing.T) {
	g := spill.NewGovernor(1<<20, t.TempDir())
	defer g.Close()
	a := NewAdmission(1000, 4, g)
	tk, err := a.Admit(context.Background(), 700)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Snapshot().ReservedBytes; got != 700 {
		t.Fatalf("governor ReservedBytes = %d, want 700", got)
	}
	tk.Release()
	if got := g.Snapshot().ReservedBytes; got != 0 {
		t.Fatalf("governor ReservedBytes after release = %d", got)
	}
}

func TestAdmitConcurrentNeverExceedsCapacity(t *testing.T) {
	const cap = 1000
	a := NewAdmission(cap, 64, nil)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				tk, err := a.Admit(context.Background(), 300)
				if err != nil {
					continue
				}
				if got := a.Stats().CommittedBytes; got > cap {
					t.Errorf("CommittedBytes %d exceeds capacity", got)
				}
				tk.Release()
			}
		}()
	}
	wg.Wait()
	if got := a.Stats().CommittedBytes; got != 0 {
		t.Fatalf("CommittedBytes drained to %d", got)
	}
}
