// Property-based serving harness (seventh harness pass): the same random
// query/database pairs as the eval-package harnesses, but every
// interaction goes through a live HTTP server — the database arrives via
// POST /commit (an initial load plus delta batches published by a
// concurrent writer), and concurrent HTTP clients evaluate via GET /query
// (mixed traced and untraced, some against the live epoch, some against
// epochs they pin via POST /snapshot). The property is end-to-end
// snapshot isolation: every response must equal Naive evaluated on
// exactly the epoch the response reports, regardless of commits racing
// the request, under the 256-byte forcing budget and every harness shard
// count. Run with -race this is the concurrency check on the whole
// request lifecycle (admit → pin epoch → evaluate → release).
package serve_test

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"testing"
	"time"

	cqbound "cqbound"
	"cqbound/internal/datagen"
	"cqbound/internal/eval"
	"cqbound/internal/relation"
)

// The harness constants mirror internal/eval's property passes: same
// seed, same iteration count, same shard ladder, same forcing budget.
const (
	servePropertyIterations = 220
	servePropertyBaseSeed   = 20260729
	serveSpillBudgetBytes   = 256
	serveSkewFraction       = 0.2
	// serveWriterBatches is how many delta commits race the readers.
	serveWriterBatches = 2
)

var serveShardCounts = []int{1, 2, 3, 5, 16}

// stringRow is one tuple at the string boundary, tagged with its relation.
type stringRow struct {
	rel  string
	vals []string
}

func TestPropertyServeSnapshotsAgree(t *testing.T) {
	iters := servePropertyIterations
	if testing.Short() {
		iters = 60
	}
	profiles := []datagen.QueryParams{
		{MaxVars: 5, MaxAtoms: 4, MaxArity: 3, HeadFraction: 0.7, RepeatRelationProb: 0.3, SimpleFDProb: 0.15},
		{MaxVars: 3, MaxAtoms: 5, MaxArity: 2, HeadFraction: 0.5, RepeatRelationProb: 0.6},
		{MaxVars: 6, MaxAtoms: 3, MaxArity: 4, HeadFraction: 0.9, RepeatRelationProb: 0.2, CompoundFDProb: 0.3},
		{MaxVars: 2, MaxAtoms: 3, MaxArity: 3, HeadFraction: 0.6, RepeatRelationProb: 0.5, SimpleFDProb: 0.3},
	}
	dbProfiles := []datagen.DBParams{
		{Tuples: 12, Universe: 6},
		{Tuples: 25, Universe: 4},
		{Tuples: 6, Universe: 12},
		{Tuples: 30, Universe: 8, ZipfS: 1.7},
		{Tuples: 20, Universe: 15, ZipfS: 2.5},
	}
	spillDir := t.TempDir()
	for i := 0; i < iters; i++ {
		rng := rand.New(rand.NewSource(servePropertyBaseSeed + int64(i)))
		q := datagen.RandomQuery(rng, profiles[i%len(profiles)])
		db := datagen.RandomDatabase(rng, q, dbProfiles[i%len(dbProfiles)])
		p := serveShardCounts[i%len(serveShardCounts)]
		if msg := serveDisagreement(t, rng, p, spillDir, q, db); msg != "" {
			t.Fatalf("iteration %d (seed %d, shards %d, budget %d): %s",
				i, servePropertyBaseSeed+int64(i), p, serveSpillBudgetBytes, msg)
		}
	}
}

// serveDisagreement runs one iteration: load db into a served engine as an
// initial HTTP commit plus concurrent delta commits, fan HTTP readers out
// against the moving epoch stream, and return a description of the first
// violation ("" when every response matched Naive on its reported epoch).
func serveDisagreement(t *testing.T, rng *rand.Rand, p int, spillDir string, q *cqbound.Query, db *cqbound.Database) string {
	s := newTestSrv(t,
		[]cqbound.Option{
			cqbound.WithSharding(0, p),
			cqbound.WithSkewSplitting(serveSkewFraction),
			cqbound.WithMemoryBudget(serveSpillBudgetBytes),
			cqbound.WithSpillDir(spillDir),
		}, nil)
	qtext := q.String()
	names := db.Names()
	attrs := make(map[string][]string, len(names))

	// Split every relation's rows into an initial load plus per-batch
	// deltas, drawn before any goroutine starts so the iteration stays
	// reproducible from its seed.
	var initRows []stringRow
	batches := make([][]stringRow, serveWriterBatches)
	for _, name := range names {
		r := db.Relation(name)
		attrs[name] = r.Attrs
		r.Each(func(tp relation.Tuple) bool {
			row := stringRow{rel: name, vals: tp.Strings()}
			if b := rng.Intn(2 * serveWriterBatches); b < serveWriterBatches {
				batches[b] = append(batches[b], row)
			} else {
				initRows = append(initRows, row)
			}
			return true
		})
	}
	initOps := make([]op, 0, 2*len(names))
	for _, name := range names {
		initOps = append(initOps, op{Op: "create", Rel: name, Attrs: attrs[name]})
	}
	initOps = append(initOps, appendOps(initRows)...)
	initEpoch := s.commit(t, initOps)

	// epochRows maps every published epoch to its cumulative row set; the
	// writer extends it as commits return. Readers block briefly on
	// rowsAt until the epoch they observed is recorded (a commit
	// publishes before the writer can note the mapping).
	var (
		epochMu   sync.Mutex
		epochRows = map[uint64][]stringRow{initEpoch: initRows}
	)
	rowsAt := func(epoch uint64) ([]stringRow, bool) {
		deadline := time.Now().Add(5 * time.Second)
		for {
			epochMu.Lock()
			rows, ok := epochRows[epoch]
			epochMu.Unlock()
			if ok || time.Now().After(deadline) {
				return rows, ok
			}
			time.Sleep(time.Millisecond)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan string, 16)
	report := func(format string, args ...any) {
		select {
		case errs <- fmt.Sprintf(format, args...):
		default:
		}
	}

	// The writer publishes the delta batches over HTTP while readers run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		have := initRows
		for _, batch := range batches {
			if len(batch) == 0 {
				continue
			}
			epoch := s.commit(t, appendOps(batch))
			have = append(have[:len(have):len(have)], batch...)
			epochMu.Lock()
			epochRows[epoch] = have
			epochMu.Unlock()
		}
	}()

	// Concurrent HTTP clients: half read the live epoch, half pin one via
	// a snapshot session first; tracing alternates per request. Whatever
	// epoch a response reports, its tuples must equal Naive on that
	// epoch's frozen row set.
	for reader := 0; reader < 4; reader++ {
		wg.Add(1)
		go func(reader int) {
			defer wg.Done()
			for round := 0; round < 2; round++ {
				traced := (reader+round)%2 == 0
				pin := reader%2 == 1
				var epochArg string
				var pinned uint64
				if pin {
					pinned = s.snapshot(t)
					epochArg = strconv.FormatUint(pinned, 10)
				}
				res, code := s.query(t, qtext, epochArg, traced)
				if code != 200 {
					report("reader %d round %d: status %d", reader, round, code)
					return
				}
				if pin {
					if res.Epoch != pinned {
						report("pinned reader got epoch %d, pinned %d", res.Epoch, pinned)
					}
					s.releaseSnapshot(t, pinned)
				}
				rows, ok := rowsAt(res.Epoch)
				if !ok {
					report("response reports epoch %d, never published", res.Epoch)
					return
				}
				ref, _, err := eval.NaiveCtx(context.Background(), q, buildDB(names, attrs, rows))
				if err != nil {
					report("naive on epoch %d: %v", res.Epoch, err)
					return
				}
				var refTuples [][]string
				ref.Each(func(tp relation.Tuple) bool {
					refTuples = append(refTuples, tp.Strings())
					return true
				})
				if !sameTuples(res.Tuples, refTuples) {
					report("epoch %d (traced=%v pin=%v): server returned %d tuples, naive %d",
						res.Epoch, traced, pin, len(res.Tuples), len(refTuples))
				}
			}
		}(reader)
	}
	wg.Wait()
	select {
	case msg := <-errs:
		return msg
	default:
	}

	// End state: with every batch in, the live answer equals Naive on the
	// full original database.
	res, code := s.query(t, qtext, "", false)
	if code != 200 {
		return fmt.Sprintf("end state: status %d", code)
	}
	ref, _, err := eval.NaiveCtx(context.Background(), q, db)
	if err != nil {
		return fmt.Sprintf("end state naive: %v", err)
	}
	var refTuples [][]string
	ref.Each(func(tp relation.Tuple) bool {
		refTuples = append(refTuples, tp.Strings())
		return true
	})
	if !sameTuples(res.Tuples, refTuples) {
		return fmt.Sprintf("end state: server returned %d tuples, naive %d", len(res.Tuples), len(refTuples))
	}
	return ""
}

// appendOps groups rows into one append op per relation, preserving order.
func appendOps(rows []stringRow) []op {
	byRel := map[string]int{}
	var ops []op
	for _, row := range rows {
		i, ok := byRel[row.rel]
		if !ok {
			i = len(ops)
			byRel[row.rel] = i
			ops = append(ops, op{Op: "append", Rel: row.rel})
		}
		ops[i].Rows = append(ops[i].Rows, row.vals)
	}
	return ops
}

// buildDB materializes a frozen epoch's reference database in the
// process-wide dictionary (the string boundary — the served engine
// interns privately).
func buildDB(names []string, attrs map[string][]string, rows []stringRow) *cqbound.Database {
	db := cqbound.NewDatabase()
	rels := make(map[string]*cqbound.Relation, len(names))
	for _, name := range names {
		r := cqbound.NewRelation(name, attrs[name]...)
		rels[name] = r
		db.MustAdd(r)
	}
	for _, row := range rows {
		vals := make(relation.Tuple, len(row.vals))
		for i, v := range row.vals {
			vals[i] = cqbound.V(v)
		}
		if _, err := rels[row.rel].Insert(vals); err != nil {
			panic(err)
		}
	}
	return db
}
