package serve

import "testing"

func TestCacheHitPerEpoch(t *testing.T) {
	c := NewCache[string](8)
	if _, ok := c.Get("q", 1); ok {
		t.Fatal("unexpected hit on empty cache")
	}
	c.Put("q", 1, "one")
	c.Put("q", 2, "two")
	if v, ok := c.Get("q", 1); !ok || v != "one" {
		t.Fatalf("Get(q,1) = %q,%v", v, ok)
	}
	if v, ok := c.Get("q", 2); !ok || v != "two" {
		t.Fatalf("Get(q,2) = %q,%v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheSweepDropsUnreadableEpochs(t *testing.T) {
	c := NewCache[int](8)
	c.Put("a", 1, 10)
	c.Put("b", 1, 11)
	c.Put("a", 2, 20)
	dropped := c.Sweep(func(e uint64) bool { return e == 2 })
	if dropped != 2 {
		t.Fatalf("Sweep dropped %d, want 2", dropped)
	}
	if _, ok := c.Get("a", 1); ok {
		t.Fatal("epoch-1 entry survived sweep")
	}
	if v, ok := c.Get("a", 2); !ok || v != 20 {
		t.Fatal("live-epoch entry swept")
	}
	if st := c.Stats(); st.Invalidations != 2 {
		t.Fatalf("Invalidations = %d", st.Invalidations)
	}
}

func TestCacheKeyNoCollisions(t *testing.T) {
	c := NewCache[int](8)
	// A query ending in digits must not collide with another epoch.
	c.Put("q1", 2, 100)
	if _, ok := c.Get("q", 12); ok {
		t.Fatal("key collision between (q1,2) and (q,12)")
	}
}
