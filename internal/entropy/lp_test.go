package entropy

import (
	"math"
	"math/big"
	"math/rand"
	"testing"

	"cqbound/internal/coloring"
	"cqbound/internal/construct"
	"cqbound/internal/cq"
	"cqbound/internal/datagen"
)

func TestSizeBoundTriangle(t *testing.T) {
	// FD-free triangle: s(Q) = ρ* = C = 3/2 (Shearer is exactly the AGM
	// bound here).
	q := cq.MustParse("S(X,Y,Z) <- R(X,Y), R(X,Z), R(Y,Z).")
	s, err := SizeBoundExponent(q)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cmp(big.NewRat(3, 2)) != 0 {
		t.Fatalf("s(Q) = %v, want 3/2", s)
	}
}

func TestSizeBoundChainProjection(t *testing.T) {
	q := cq.MustParse("Q(X,Z) <- R(X,Y), S(Y,Z).")
	s, err := SizeBoundExponent(q)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cmp(big.NewRat(2, 1)) != 0 {
		t.Fatalf("s(Q) = %v, want 2", s)
	}
}

func TestSizeBoundWithKeyDropsToOne(t *testing.T) {
	// Y -> Z key: the chain's output collapses: s = 1? The chase leaves the
	// query intact but the FD h(Z|Y) = 0 forces h(XZ) ≤ h(XY) ≤ 1.
	q := cq.MustParse("Q(X,Z) <- R(X,Y), S(Y,Z).\nkey S[1].")
	s, err := SizeBoundExponent(q)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cmp(big.NewRat(1, 1)) != 0 {
		t.Fatalf("s(Q) = %v, want 1", s)
	}
}

func TestEntropyColorNumberMatchesNoFDsLP(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		q := datagen.RandomQuery(rng, datagen.QueryParams{
			MaxVars: 5, MaxAtoms: 4, MaxArity: 3, HeadFraction: 0.6,
		})
		want, _, err := coloring.NumberNoFDs(q)
		if err != nil {
			t.Fatal(err)
		}
		got, col, ch, err := ColorNumber(q)
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, q, err)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("trial %d: entropy LP C = %v, Prop 3.6 LP C = %v for %s", trial, got, want, q)
		}
		if err := coloring.Validate(ch, col); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestEntropyColorNumberMatchesSimpleFDPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	trials := 0
	for trials < 30 {
		q := datagen.RandomQuery(rng, datagen.QueryParams{
			MaxVars: 5, MaxAtoms: 3, MaxArity: 3, HeadFraction: 0.6,
			SimpleFDProb: 0.3, RepeatRelationProb: 0.3,
		})
		want, _, _, err := coloring.NumberWithSimpleFDs(q)
		if err != nil {
			continue // compound lifted FDs: Theorem 4.4 pipeline not applicable
		}
		trials++
		got, _, _, err := ColorNumber(q)
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trials, q, err)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("trial %d: entropy LP C = %v, Theorem 4.4 pipeline C = %v for %s",
				trials, got, want, q)
		}
	}
}

func TestColorNumberAtMostSizeBound(t *testing.T) {
	// Proposition 6.9 vs 6.10: the 6.10 feasible region is contained in
	// 6.9's, so C(chase(Q)) ≤ s(Q).
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		q := datagen.RandomQuery(rng, datagen.QueryParams{
			MaxVars: 4, MaxAtoms: 3, MaxArity: 3, HeadFraction: 0.6,
			SimpleFDProb: 0.25, CompoundFDProb: 0.3,
		})
		c, _, _, err := ColorNumber(q)
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, q, err)
		}
		s, err := SizeBoundExponent(q)
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, q, err)
		}
		if c.Cmp(s) > 0 {
			t.Fatalf("trial %d: C = %v > s = %v for %s", trial, c, s, q)
		}
	}
}

func TestShamirColorNumberBounded(t *testing.T) {
	// Proposition 6.11's proof shows C(chase(Q)) ≤ 2 for the Shamir query
	// (the paper states "= 2") while the true size-increase exponent is
	// k/2. The exact value is even smaller: every color must occur in at
	// least k/2 + 1 variables of its group (the variable itself plus the
	// k/2 others the proof counts), which tightens the argument to
	// C ≤ 2k/(k+2) — 4/3 for k = 4 — and the LP optimum attains it.
	q, _, err := construct.Shamir(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	c, col, ch, err := ColorNumber(q)
	if err != nil {
		t.Fatal(err)
	}
	if c.Cmp(big.NewRat(2, 1)) > 0 {
		t.Fatalf("C(chase(Q)) = %v, violates the paper's bound of 2", c)
	}
	if c.Cmp(big.NewRat(4, 3)) != 0 {
		t.Fatalf("C(chase(Q)) = %v, want the tightened value 4/3", c)
	}
	if err := coloring.Validate(ch, col); err != nil {
		t.Fatal(err)
	}
	// The gap to the true exponent k/2 = 2 is therefore already visible at
	// k = 4 and grows without bound in k.
}

func TestFloatBackendsAgree(t *testing.T) {
	q := cq.MustParse("S(X,Y,Z) <- R(X,Y), R(X,Z), R(Y,Z).")
	s, err := SizeBoundExponentFloat(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-1.5) > 1e-6 {
		t.Fatalf("float s(Q) = %v, want 1.5", s)
	}
	c, err := ColorNumberFloat(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-1.5) > 1e-6 {
		t.Fatalf("float C = %v, want 1.5", c)
	}
}

func TestLPVarCapEnforced(t *testing.T) {
	// Build a query with more variables than the exact cap.
	src := "Q(A,B,C,D,E,F,G,H,I,J) <- R1(A,B), R2(B,C), R3(C,D), R4(D,E), R5(E,F), R6(F,G), R7(G,H), R8(H,I), R9(I,J)."
	q := cq.MustParse(src)
	if _, err := SizeBoundExponent(q); err == nil {
		t.Fatal("exact LP accepted 10 variables above cap")
	}
}

func TestRewriteLHS2(t *testing.T) {
	q := cq.MustParse("Q(A,B,C,D) <- R(A,B,C,D).\nfd R[1],R[2],R[3] -> R[4].")
	rw, err := RewriteLHS2(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rw.FDs {
		if len(f.From) > 2 {
			t.Fatalf("rewrite left wide dependency %s", f)
		}
	}
	// Fact 6.12: the color number is preserved.
	before, _, _, err := ColorNumber(q)
	if err != nil {
		t.Fatal(err)
	}
	after, _, _, err := ColorNumber(rw)
	if err != nil {
		t.Fatal(err)
	}
	if before.Cmp(after) != 0 {
		t.Fatalf("C changed: %v -> %v", before, after)
	}
}

func TestRewriteLHS2NoWideFDsIsStable(t *testing.T) {
	q := cq.MustParse("Q(X,Y) <- R(X,Y).\nfd R[1] -> R[2].")
	rw, err := RewriteLHS2(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rw.Body) != 1 || len(rw.FDs) != 1 {
		t.Fatalf("rewrite changed narrow query: %s", rw)
	}
}
