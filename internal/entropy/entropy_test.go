package entropy

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"cqbound/internal/relation"
)

const eps = 1e-9

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSetOps(t *testing.T) {
	s := Set(0).With(0).With(3)
	if !s.Has(0) || s.Has(1) || !s.Has(3) {
		t.Fatal("Has wrong")
	}
	if s.Size() != 2 {
		t.Fatalf("Size = %d", s.Size())
	}
	m := s.Members()
	if len(m) != 2 || m[0] != 0 || m[1] != 3 {
		t.Fatalf("Members = %v", m)
	}
}

func TestEmpiricalIndependent(t *testing.T) {
	// All 16 pairs over a 4-value domain: independent uniform variables.
	r := relation.New("R", "x", "y")
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			r.Add(fmt.Sprint(i), fmt.Sprint(j))
		}
	}
	v, err := Empirical(r)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(v.H[1], 2) || !almostEq(v.H[2], 2) || !almostEq(v.H[3], 4) {
		t.Fatalf("H = %v", v.H)
	}
	atoms := v.Atoms()
	if !almostEq(atoms[3], 0) { // I(X;Y) = 0
		t.Fatalf("I(X;Y) = %v, want 0", atoms[3])
	}
}

func TestEmpiricalCorrelated(t *testing.T) {
	// Diagonal pairs: X determines Y and vice versa.
	r := relation.New("R", "x", "y")
	for i := 0; i < 8; i++ {
		r.Add(fmt.Sprint(i), fmt.Sprint(i))
	}
	v, err := Empirical(r)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(v.H[1], 3) || !almostEq(v.H[3], 3) {
		t.Fatalf("H = %v", v.H)
	}
	atoms := v.Atoms()
	if !almostEq(atoms[3], 3) || !almostEq(atoms[1], 0) || !almostEq(atoms[2], 0) {
		t.Fatalf("atoms = %v", atoms)
	}
}

func TestEmpiricalErrors(t *testing.T) {
	if _, err := Empirical(relation.New("E", "a")); err == nil {
		t.Fatal("accepted empty relation")
	}
}

func TestMoebiusRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		k := 1 + rng.Intn(5)
		v, err := NewVector(k)
		if err != nil {
			t.Fatal(err)
		}
		for s := Set(1); s <= v.Full(); s++ {
			v.H[s] = rng.Float64() * 10
		}
		atoms := v.Atoms()
		back, err := FromAtoms(k, atoms)
		if err != nil {
			t.Fatal(err)
		}
		for s := Set(0); s <= v.Full(); s++ {
			if !almostEq(v.H[s], back.H[s]) {
				t.Fatalf("trial %d: H[%d] = %v, reconstructed %v", trial, s, v.H[s], back.H[s])
			}
		}
	}
}

// TestFigure2Identities checks the information-diagram identities the paper
// reads off Figure 2: I(X;Y) = I(X;Y;Z) + I(X;Y|Z) and
// H(Z) = I(X;Y;Z) + I(X;Z|Y) + I(Y;Z|X) + H(Z|X,Y), on random empirical
// distributions.
func TestFigure2Identities(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		r := relation.New("R", "x", "y", "z")
		for i := 0; i < 30; i++ {
			r.MustInsert(
				relation.V(fmt.Sprint(rng.Intn(3))),
				relation.V(fmt.Sprint(rng.Intn(3))),
				relation.V(fmt.Sprint(rng.Intn(3))),
			)
		}
		v, err := Empirical(r)
		if err != nil {
			t.Fatal(err)
		}
		x, y, z := Set(1), Set(2), Set(4)
		ixy := v.MutualPair(x, y)
		if !almostEq(ixy, v.Mutual(x|y, 0)) {
			t.Fatalf("trial %d: I(X;Y) mismatch: %v vs %v", trial, ixy, v.Mutual(x|y, 0))
		}
		if !almostEq(ixy, v.Mutual(x|y|z, 0)+v.Mutual(x|y, z)) {
			t.Fatalf("trial %d: I(X;Y) != I(X;Y;Z) + I(X;Y|Z)", trial)
		}
		hz := v.H[z]
		sum := v.Mutual(x|y|z, 0) + v.Mutual(x|z, y) + v.Mutual(y|z, x) + v.Cond(z, x|y)
		if !almostEq(hz, sum) {
			t.Fatalf("trial %d: H(Z) = %v but diagram sum = %v", trial, hz, sum)
		}
	}
}

func TestKnittedComplexity(t *testing.T) {
	// Independent variables: all atoms non-negative, ratio 1.
	r := relation.New("R", "x", "y")
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			r.Add(fmt.Sprint(i), fmt.Sprint(j))
		}
	}
	v, err := Empirical(r)
	if err != nil {
		t.Fatal(err)
	}
	kc, err := v.KnittedComplexity()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(kc, 1) {
		t.Fatalf("knitted complexity = %v, want 1", kc)
	}
}

func TestKnittedComplexityZeroEntropy(t *testing.T) {
	r := relation.New("R", "x")
	r.Add("only")
	v, err := Empirical(r)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.KnittedComplexity(); err == nil {
		t.Fatal("accepted zero-entropy vector")
	}
}

func TestCondAndMutualPair(t *testing.T) {
	r := relation.New("R", "x", "y")
	for i := 0; i < 4; i++ {
		r.Add(fmt.Sprint(i), fmt.Sprint(i%2))
	}
	v, err := Empirical(r)
	if err != nil {
		t.Fatal(err)
	}
	// H(Y|X) = 0 (X determines Y), H(X|Y) = 1.
	if !almostEq(v.Cond(2, 1), 0) {
		t.Fatalf("H(Y|X) = %v", v.Cond(2, 1))
	}
	if !almostEq(v.Cond(1, 2), 1) {
		t.Fatalf("H(X|Y) = %v", v.Cond(1, 2))
	}
	if !almostEq(v.MutualPair(1, 2), 1) {
		t.Fatalf("I(X;Y) = %v", v.MutualPair(1, 2))
	}
}

var _ = eps
