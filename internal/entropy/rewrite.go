package entropy

import (
	"fmt"

	"cqbound/internal/cq"
)

// RewriteLHS2 applies the Fact 6.12 reduction: every functional dependency
// with three or more positions on its left-hand side is replaced, using
// fresh pairing relations and variables, by dependencies with at most two
// left-hand-side positions. For a dependency X1...Xk -> Y on an atom, a
// fresh atom G(X1, X2, Z) with dependencies X1X2 -> Z, Z -> X1, Z -> X2 and
// a fresh atom G'(Z, X3, ..., Xk, Y) with dependency ZX3...Xk -> Y are
// added; the step repeats until every left-hand side has at most two
// positions. The transformation preserves the color number and the
// worst-case size increase.
//
// The rewrite operates per atom occurrence, so it first gives every body
// atom its own relation name (which leaves all lifted variable dependencies
// and the color number unchanged).
func RewriteLHS2(q *cq.Query) (*cq.Query, error) {
	work := q.Clone()
	// Distinct relation names per atom so positional dependencies map 1:1
	// to variable dependencies.
	type occ struct{ rel string }
	renames := make(map[string][]string)
	for i := range work.Body {
		old := work.Body[i].Relation
		name := fmt.Sprintf("%s__%d", old, i+1)
		renames[old] = append(renames[old], name)
		work.Body[i].Relation = name
	}
	var fds []cq.FD
	for _, f := range work.FDs {
		for _, name := range renames[f.Relation] {
			nf := f.Clone()
			nf.Relation = name
			fds = append(fds, nf)
		}
	}
	work.FDs = fds

	fresh := 0
	freshVar := func() cq.Variable {
		fresh++
		return cq.Variable(fmt.Sprintf("Zpair%d", fresh))
	}
	for {
		// Find a dependency with LHS of size >= 3.
		idx := -1
		for i, f := range work.FDs {
			if len(f.From) >= 3 {
				idx = i
				break
			}
		}
		if idx < 0 {
			break
		}
		f := work.FDs[idx]
		// The atom carrying this dependency (relations are unique now).
		var atom *cq.Atom
		for i := range work.Body {
			if work.Body[i].Relation == f.Relation {
				atom = &work.Body[i]
				break
			}
		}
		if atom == nil {
			return nil, fmt.Errorf("entropy: dependency %s on relation not in body", f)
		}
		x1 := atom.Vars[f.From[0]-1]
		x2 := atom.Vars[f.From[1]-1]
		z := freshVar()
		// G(X1, X2, Z) with X1X2 -> Z, Z -> X1, Z -> X2.
		g := cq.Atom{Relation: fmt.Sprintf("Gpair%d", fresh), Vars: []cq.Variable{x1, x2, z}}
		work.Body = append(work.Body, g)
		work.FDs = append(work.FDs,
			cq.FD{Relation: g.Relation, From: []int{1, 2}, To: 3},
			cq.FD{Relation: g.Relation, From: []int{3}, To: 1},
			cq.FD{Relation: g.Relation, From: []int{3}, To: 2},
		)
		// G'(Z, X3, ..., Xk, Y) with Z X3...Xk -> Y.
		gp := cq.Atom{Relation: fmt.Sprintf("Gred%d", fresh), Vars: []cq.Variable{z}}
		for _, p := range f.From[2:] {
			gp.Vars = append(gp.Vars, atom.Vars[p-1])
		}
		gp.Vars = append(gp.Vars, atom.Vars[f.To-1])
		work.Body = append(work.Body, gp)
		from := make([]int, len(gp.Vars)-1)
		for i := range from {
			from[i] = i + 1
		}
		work.FDs = append(work.FDs, cq.FD{Relation: gp.Relation, From: from, To: len(gp.Vars)})
		// Remove the original dependency.
		work.FDs = append(work.FDs[:idx], work.FDs[idx+1:]...)
	}
	if err := work.Validate(); err != nil {
		return nil, fmt.Errorf("entropy: internal: rewrite produced invalid query: %v", err)
	}
	return work, nil
}
