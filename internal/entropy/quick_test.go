package entropy

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"cqbound/internal/relation"
)

func randomEmpirical(rng *rand.Rand, k int) (*Vector, error) {
	attrs := make([]string, k)
	for i := range attrs {
		attrs[i] = fmt.Sprintf("c%d", i)
	}
	r := relation.New("R", attrs...)
	for i := 0; i < 5+rng.Intn(25); i++ {
		row := make(relation.Tuple, k)
		for j := range row {
			row[j] = relation.V(fmt.Sprint(rng.Intn(3)))
		}
		r.MustInsert(row...)
	}
	return Empirical(r)
}

// TestQuickEmpiricalShannon: empirical entropy vectors satisfy the
// elemental Shannon inequalities — singleton conditional entropies and all
// conditional pairwise mutual informations are non-negative.
func TestQuickEmpiricalShannon(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(3)
		v, err := randomEmpirical(rng, k)
		if err != nil {
			return false
		}
		full := v.Full()
		for i := 0; i < k; i++ {
			if v.Cond(Set(0).With(i), full&^Set(0).With(i)) < -1e-9 {
				return false
			}
		}
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				pair := Set(0).With(i).With(j)
				rest := full &^ pair
				kset := rest
				for {
					// I(x_i; x_j | K) in entropies.
					a := Set(0).With(i) | kset
					b := Set(0).With(j) | kset
					val := v.H[a] + v.H[b] - v.H[kset] - v.H[a|b]
					if val < -1e-9 {
						return false
					}
					if kset == 0 {
						break
					}
					kset = (kset - 1) & rest
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEmpiricalMonotoneSubmodular: H is monotone and submodular on
// empirical vectors.
func TestQuickEmpiricalMonotoneSubmodular(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(3)
		v, err := randomEmpirical(rng, k)
		if err != nil {
			return false
		}
		full := v.Full()
		for a := Set(0); a <= full; a++ {
			for b := Set(0); b <= full; b++ {
				if a&b == a && v.H[a] > v.H[b]+1e-9 { // a ⊆ b ⇒ H(a) ≤ H(b)
					return false
				}
				if v.H[a]+v.H[b] < v.H[a|b]+v.H[a&b]-1e-9 {
					return false // submodularity
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAtomsSumToTotalEntropy: Σ_S a_S = H(all variables).
func TestQuickAtomsSumToTotalEntropy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(4)
		v, err := randomEmpirical(rng, k)
		if err != nil {
			return false
		}
		atoms := v.Atoms()
		sum := 0.0
		for s := Set(1); s <= v.Full(); s++ {
			sum += atoms[s]
		}
		diff := sum - v.H[v.Full()]
		return diff < 1e-6 && diff > -1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
