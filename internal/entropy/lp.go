package entropy

import (
	"fmt"
	"math/big"

	"cqbound/internal/chase"
	"cqbound/internal/coloring"
	"cqbound/internal/cq"
	"cqbound/internal/lp"
)

// MaxExactLPVars caps the variable count of the exact Proposition 6.10
// program (2^k − 1 atom variables, but only ~m + |FDs| rows).
const MaxExactLPVars = 9

// MaxFloatLPVars caps the float backend of the Proposition 6.10 program.
const MaxFloatLPVars = 13

// MaxExactShannonVars caps the exact Proposition 6.9 program, whose
// elemental-inequality row count k + C(k,2)·2^(k−2) grows much faster than
// the variable count (k = 7 already needs 679 rows of exact arithmetic).
const MaxExactShannonVars = 6

// MaxFloatShannonVars caps the float backend of the Proposition 6.9
// program.
const MaxFloatShannonVars = 8

// lpSpec assembles the common part of the Section 6 programs in I-measure
// (atom) coordinates: one LP variable a_S per non-empty S ⊆ [k]. In these
// coordinates H(T) = Σ_{S∩T≠∅} a_S, so
//
//	h(u_i) ≤ 1        becomes  Σ_{S ∩ vars(u_i) ≠ ∅} a_S ≤ 1,
//	h(Y|X₁..Xₗ) = 0   becomes  Σ_{S ∋ Y, S∩{X₁..Xₗ}=∅} a_S = 0,
//	maximize h(u_0)   becomes  Σ_{S ∩ u0 ≠ ∅} a_S.
//
// Proposition 6.10 additionally demands every atom non-negative (a_S ≥ 0,
// handled as variable bounds); Proposition 6.9 instead imposes only the
// Shannon elemental inequalities.
type lpSpec struct {
	q      *cq.Query // chased
	vars   []cq.Variable
	index  map[cq.Variable]int
	prob   *lp.Problem
	atomID []int // LP variable per Set (index 0 unused)
}

func buildSpec(q *cq.Query, kind lp.VarKind, maxVars int) (*lpSpec, error) {
	ch := chase.Chase(q).Query
	vars := ch.Variables()
	k := len(vars)
	if k > maxVars {
		return nil, fmt.Errorf("entropy: %d variables exceeds LP cap %d", k, maxVars)
	}
	s := &lpSpec{q: ch, vars: vars, index: make(map[cq.Variable]int, k)}
	for i, v := range vars {
		s.index[v] = i
	}
	s.prob = lp.NewProblem(lp.Maximize)
	s.atomID = make([]int, 1<<uint(k))
	for set := Set(1); set < Set(1<<uint(k)); set++ {
		s.atomID[set] = s.prob.AddVariable(fmt.Sprintf("a%d", set), kind)
	}

	varSet := func(vs []cq.Variable) Set {
		var out Set
		for _, v := range vs {
			out = out.With(s.index[v])
		}
		return out
	}
	full := Set(1<<uint(k)) - 1

	// Objective: h(u0).
	head := varSet(ch.Head.Vars)
	for set := Set(1); set <= full; set++ {
		if set&head != 0 {
			s.prob.SetObjective(s.atomID[set], lp.RI(1))
		}
	}
	// h(u_i) ≤ 1 per body atom.
	for _, a := range ch.Body {
		av := varSet(a.Vars)
		coeffs := make(map[int]*big.Rat)
		for set := Set(1); set <= full; set++ {
			if set&av != 0 {
				coeffs[s.atomID[set]] = lp.RI(1)
			}
		}
		s.prob.AddConstraint(coeffs, lp.LE, lp.RI(1))
	}
	// Functional dependencies (lifted to variables): h(To | From) = 0.
	for _, fd := range ch.VarFDs() {
		from := varSet(fd.From)
		to := s.index[fd.To]
		coeffs := make(map[int]*big.Rat)
		for set := Set(1); set <= full; set++ {
			if set.Has(to) && set&from == 0 {
				coeffs[s.atomID[set]] = lp.RI(1)
			}
		}
		if len(coeffs) > 0 {
			s.prob.AddConstraint(coeffs, lp.EQ, lp.RI(0))
		}
	}
	return s, nil
}

// addShannonRows imposes the elemental Shannon inequalities of
// Definition 6.8 in atom coordinates: H(x_i | rest) = a_{{i}} ≥ 0 and, for
// every pair i < j and every K ⊆ [k]∖{i,j},
// I(x_i; x_j | K) = Σ_{S ⊇ {i,j}, S∩K=∅} a_S ≥ 0.
func (s *lpSpec) addShannonRows() {
	k := len(s.vars)
	full := Set(1<<uint(k)) - 1
	for i := 0; i < k; i++ {
		coeffs := map[int]*big.Rat{s.atomID[Set(0).With(i)]: lp.RI(1)}
		s.prob.AddConstraint(coeffs, lp.GE, lp.RI(0))
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			pair := Set(0).With(i).With(j)
			rest := full &^ pair
			// Enumerate K ⊆ rest.
			kset := rest
			for {
				coeffs := make(map[int]*big.Rat)
				for set := pair; set <= full; set++ {
					if set&pair == pair && set&kset == 0 {
						coeffs[s.atomID[set]] = lp.RI(1)
					}
				}
				s.prob.AddConstraint(coeffs, lp.GE, lp.RI(0))
				if kset == 0 {
					break
				}
				kset = (kset - 1) & rest
			}
		}
	}
}

// SizeBoundExponent solves the Proposition 6.9 linear program exactly: the
// maximum of h(u0) over entropy-like vectors satisfying the Shannon
// inequalities, the functional dependencies, and h(u_i) ≤ 1 per body atom.
// The value s(Q) upper-bounds the exponent of the worst-case size increase:
// |Q(D)| ≤ rmax(D)^s(Q). The query is chased internally.
func SizeBoundExponent(q *cq.Query) (*big.Rat, error) {
	spec, err := buildSpec(q, lp.Free, MaxExactShannonVars)
	if err != nil {
		return nil, err
	}
	spec.addShannonRows()
	sol := spec.prob.SolveExact()
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("entropy: size-bound LP is %v", sol.Status)
	}
	return sol.Value, nil
}

// SizeBoundExponentFloat is SizeBoundExponent with the float64 backend,
// usable for somewhat larger variable counts.
func SizeBoundExponentFloat(q *cq.Query) (float64, error) {
	spec, err := buildSpec(q, lp.Free, MaxFloatShannonVars)
	if err != nil {
		return 0, err
	}
	spec.addShannonRows()
	sol := spec.prob.SolveFloat()
	if sol.Status != lp.Optimal {
		return 0, fmt.Errorf("entropy: size-bound LP is %v", sol.Status)
	}
	return sol.Value, nil
}

// ColorNumber solves the Proposition 6.10 program exactly: the same LP but
// with every I-measure atom forced non-negative. Its value is exactly
// C(chase(Q)) for arbitrary functional dependencies, and the rational
// optimum converts to an explicit valid coloring of chase(Q), which is
// returned alongside the chased query.
func ColorNumber(q *cq.Query) (*big.Rat, coloring.Coloring, *cq.Query, error) {
	spec, err := buildSpec(q, lp.NonNegative, MaxExactLPVars)
	if err != nil {
		return nil, nil, nil, err
	}
	sol := spec.prob.SolveExact()
	if sol.Status != lp.Optimal {
		return nil, nil, nil, fmt.Errorf("entropy: color-number LP is %v", sol.Status)
	}
	col := spec.extractColoring(sol.X)
	if err := coloring.Validate(spec.q, col); err != nil {
		return nil, nil, nil, fmt.Errorf("entropy: internal: extracted coloring invalid: %v", err)
	}
	n, err := coloring.Number(spec.q, col)
	if err != nil {
		return nil, nil, nil, err
	}
	if n.Cmp(sol.Value) != 0 {
		return nil, nil, nil, fmt.Errorf("entropy: internal: coloring number %v != LP value %v", n, sol.Value)
	}
	return sol.Value, col, spec.q, nil
}

// ColorNumberFloat solves the Proposition 6.10 program with the float
// backend (no coloring extraction).
func ColorNumberFloat(q *cq.Query) (float64, error) {
	spec, err := buildSpec(q, lp.NonNegative, MaxFloatLPVars)
	if err != nil {
		return 0, err
	}
	sol := spec.prob.SolveFloat()
	if sol.Status != lp.Optimal {
		return 0, fmt.Errorf("entropy: color-number LP is %v", sol.Status)
	}
	return sol.Value, nil
}

// extractColoring converts a rational feasible point of the Proposition 6.10
// program into a coloring: with q the common denominator, q·a_S fresh colors
// are added to the labels of every variable in S.
func (s *lpSpec) extractColoring(x []*big.Rat) coloring.Coloring {
	lcd := big.NewInt(1)
	for set := Set(1); set < Set(len(s.atomID)); set++ {
		d := x[s.atomID[set]].Denom()
		g := new(big.Int).GCD(nil, nil, lcd, d)
		lcd.Div(new(big.Int).Mul(lcd, d), g)
	}
	col := make(coloring.Coloring)
	next := 1
	for set := Set(1); set < Set(len(s.atomID)); set++ {
		val := x[s.atomID[set]]
		if val.Sign() <= 0 {
			continue
		}
		count := new(big.Int).Mul(val.Num(), new(big.Int).Div(lcd, val.Denom()))
		n := int(count.Int64())
		colors := make([]int, n)
		for i := range colors {
			colors[i] = next
			next++
		}
		for _, vi := range set.Members() {
			v := s.vars[vi]
			label := col.Label(v)
			for _, c := range colors {
				label[c] = true
			}
			col[v] = label
		}
	}
	return col
}
