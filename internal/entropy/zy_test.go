package entropy

import (
	"fmt"
	"math/rand"
	"testing"

	"cqbound/internal/coloring"
	"cqbound/internal/datagen"
	"cqbound/internal/relation"
)

// TestZYHoldsOnEmpiricalVectors: true entropy vectors must satisfy the
// Zhang–Yeung inequality; random empirical distributions over 4 and 5
// columns exercise every instantiation.
func TestZYHoldsOnEmpiricalVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 25; trial++ {
		arity := 4 + rng.Intn(2)
		attrs := make([]string, arity)
		for i := range attrs {
			attrs[i] = fmt.Sprintf("c%d", i)
		}
		r := relation.New("R", attrs...)
		for i := 0; i < 12+rng.Intn(20); i++ {
			row := make(relation.Tuple, arity)
			for j := range row {
				row[j] = relation.V(fmt.Sprint(rng.Intn(3)))
			}
			r.MustInsert(row...)
		}
		v, err := Empirical(r)
		if err != nil {
			t.Fatal(err)
		}
		if ok, why := ZYHolds(v, 1e-9); !ok {
			t.Fatalf("trial %d: Zhang–Yeung violated on a real distribution: %s", trial, why)
		}
	}
}

// TestZYHoldsOnShamir: the Shamir group relation is exactly the kind of
// high-interaction distribution non-Shannon inequalities constrain; it must
// still satisfy Zhang–Yeung.
func TestZYHoldsOnShamir(t *testing.T) {
	// Reconstruct the group relation locally (avoid the construct import
	// cycle: construct imports entropy's sibling packages only, but keep
	// the test self-contained regardless).
	r := relation.New("R1", "a1", "a2", "a3", "a4")
	const n = 5
	for c0 := 0; c0 < n; c0++ {
		for c1 := 0; c1 < n; c1++ {
			row := make(relation.Tuple, 4)
			for x := 0; x < 4; x++ {
				row[x] = relation.V(fmt.Sprint((c0 + c1*x) % n))
			}
			r.MustInsert(row...)
		}
	}
	v, err := Empirical(r)
	if err != nil {
		t.Fatal(err)
	}
	if ok, why := ZYHolds(v, 1e-9); !ok {
		t.Fatalf("Zhang–Yeung violated on Shamir shares: %s", why)
	}
}

// TestZYBoundSandwiched checks C ≤ s_ZY ≤ s on random queries with
// dependencies, and s_ZY = s = C on FD-free ones (where Shannon is already
// tight).
func TestZYBoundSandwiched(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	for trial := 0; trial < 15; trial++ {
		q := datagen.RandomQuery(rng, datagen.QueryParams{
			MaxVars: 5, MaxAtoms: 3, MaxArity: 3, HeadFraction: 0.6,
			SimpleFDProb: 0.2, CompoundFDProb: 0.25,
		})
		s, err := SizeBoundExponent(q)
		if err != nil {
			t.Fatal(err)
		}
		szy, err := SizeBoundExponentZY(q)
		if err != nil {
			t.Fatal(err)
		}
		c, _, _, err := ColorNumber(q)
		if err != nil {
			t.Fatal(err)
		}
		if szy.Cmp(s) > 0 {
			t.Fatalf("trial %d: s_ZY = %v > s = %v for %s", trial, szy, s, q)
		}
		if c.Cmp(szy) > 0 {
			t.Fatalf("trial %d: C = %v > s_ZY = %v for %s", trial, c, szy, q)
		}
	}
	// FD-free: everything collapses to the fractional cover value.
	for trial := 0; trial < 10; trial++ {
		q := datagen.RandomQuery(rng, datagen.QueryParams{
			MaxVars: 5, MaxAtoms: 3, MaxArity: 3, HeadFraction: 0.6,
		})
		s, err := SizeBoundExponent(q)
		if err != nil {
			t.Fatal(err)
		}
		szy, err := SizeBoundExponentZY(q)
		if err != nil {
			t.Fatal(err)
		}
		c, _, err := coloring.NumberNoFDs(q)
		if err != nil {
			t.Fatal(err)
		}
		if szy.Cmp(s) != 0 || s.Cmp(c) != 0 {
			t.Fatalf("trial %d: FD-free mismatch: C=%v s_ZY=%v s=%v for %s", trial, c, szy, s, q)
		}
	}
}

func TestZYTermsSelfConsistent(t *testing.T) {
	// The coefficient multiset must sum to zero over h(∅)-style constant
	// shifts: substituting the all-equal vector h(T) = const·1{T≠∅}... more
	// simply, the uniform independent vector h(T) = |T| must satisfy the
	// inequality with slack: A,B,C,D independent ⇒ LHS−RHS =
	// I(A;B)+I(A;CD)+3I(C;D|A)+I(C;D|B)−2I(C;D) = 0.
	v, err := NewVector(4)
	if err != nil {
		t.Fatal(err)
	}
	for s := Set(1); s <= v.Full(); s++ {
		v.H[s] = float64(s.Size())
	}
	total := 0.0
	for set, coeff := range zyTerms(1, 2, 4, 8) {
		total += float64(coeff) * v.H[set]
	}
	if total != 0 {
		t.Fatalf("independent vector gives %v, want 0", total)
	}
}
