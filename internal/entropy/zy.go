package entropy

import (
	"fmt"
	"math/big"

	"cqbound/internal/cq"
	"cqbound/internal/lp"
)

// This file implements the direction Section 6.4 points at: the
// Proposition 6.9 bound is not tight because entropy vectors satisfy
// inequalities beyond Shannon's. The first of these is the Zhang–Yeung
// inequality (1998): for any four random variables A, B, C, D,
//
//	2·I(C;D) ≤ I(A;B) + I(A;C,D) + 3·I(C;D|A) + I(C;D|B).
//
// Adding all instantiations of it to the linear program can only lower the
// optimum, giving a (still generally non-tight — Matúš 2007 shows
// infinitely many independent inequalities exist) sharper upper bound on
// the worst-case size increase.

// zyTerms expresses the Zhang–Yeung inequality's left-minus-right side as
// entropy coefficients: Σ coeff·h(T) ≥ 0 where the terms are
//
//	I(A;B)      = h(A)+h(B)−h(AB)
//	I(A;CD)     = h(A)+h(CD)−h(ACD)
//	3I(C;D|A)   = 3h(AC)+3h(AD)−3h(A)−3h(ACD)
//	I(C;D|B)    = h(BC)+h(BD)−h(B)−h(BCD)
//	−2I(C;D)    = −2h(C)−2h(D)+2h(CD)
func zyTerms(a, b, c, d Set) map[Set]int64 {
	t := make(map[Set]int64)
	add := func(set Set, coeff int64) {
		t[set] += coeff
		if t[set] == 0 {
			delete(t, set)
		}
	}
	// I(A;B)
	add(a, 1)
	add(b, 1)
	add(a|b, -1)
	// I(A;CD)
	add(a, 1)
	add(c|d, 1)
	add(a|c|d, -1)
	// 3 I(C;D|A)
	add(a|c, 3)
	add(a|d, 3)
	add(a, -3)
	add(a|c|d, -3)
	// I(C;D|B)
	add(b|c, 1)
	add(b|d, 1)
	add(b, -1)
	add(b|c|d, -1)
	// −2 I(C;D)
	add(c, -2)
	add(d, -2)
	add(c|d, 2)
	return t
}

// ZYHolds checks every instantiation of the Zhang–Yeung inequality on an
// entropy vector (useful on empirical vectors, which must satisfy it).
// It returns the first violated instantiation, if any.
func ZYHolds(v *Vector, tol float64) (bool, string) {
	k := v.K
	if k < 4 {
		return true, ""
	}
	for ai := 0; ai < k; ai++ {
		for bi := 0; bi < k; bi++ {
			if bi == ai {
				continue
			}
			for ci := 0; ci < k; ci++ {
				if ci == ai || ci == bi {
					continue
				}
				for di := ci + 1; di < k; di++ {
					if di == ai || di == bi {
						continue
					}
					total := 0.0
					for set, coeff := range zyTerms(Set(0).With(ai), Set(0).With(bi), Set(0).With(ci), Set(0).With(di)) {
						total += float64(coeff) * v.H[set]
					}
					if total < -tol {
						return false, fmt.Sprintf("A=%d B=%d C=%d D=%d: %g < 0", ai, bi, ci, di, total)
					}
				}
			}
		}
	}
	return true, ""
}

// addZYRows appends every instantiation of the Zhang–Yeung inequality over
// the spec's variables (in atom coordinates) as ≥ 0 rows.
func (s *lpSpec) addZYRows() {
	k := len(s.vars)
	if k < 4 {
		return
	}
	full := Set(1<<uint(k)) - 1
	for ai := 0; ai < k; ai++ {
		for bi := 0; bi < k; bi++ {
			if bi == ai {
				continue
			}
			for ci := 0; ci < k; ci++ {
				if ci == ai || ci == bi {
					continue
				}
				for di := ci + 1; di < k; di++ {
					if di == ai || di == bi {
						continue
					}
					terms := zyTerms(Set(0).With(ai), Set(0).With(bi), Set(0).With(ci), Set(0).With(di))
					coeffs := make(map[int]*big.Rat)
					// h(T) = Σ_{S∩T≠∅} a_S.
					for set := Set(1); set <= full; set++ {
						var total int64
						for t, coeff := range terms {
							if set&t != 0 {
								total += coeff
							}
						}
						if total != 0 {
							coeffs[s.atomID[set]] = lp.RI(total)
						}
					}
					if len(coeffs) > 0 {
						s.prob.AddConstraint(coeffs, lp.GE, lp.RI(0))
					}
				}
			}
		}
	}
}

// SizeBoundExponentZY solves the Proposition 6.9 program augmented with all
// Zhang–Yeung inequality instantiations. The result lies between the true
// worst-case exponent and s(Q):
//
//	C(chase(Q)) ≤ worst-case exponent ≤ s_ZY(Q) ≤ s(Q).
func SizeBoundExponentZY(q *cq.Query) (*big.Rat, error) {
	spec, err := buildSpec(q, lp.Free, MaxExactShannonVars)
	if err != nil {
		return nil, err
	}
	spec.addShannonRows()
	spec.addZYRows()
	sol := spec.prob.SolveExact()
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("entropy: ZY size-bound LP is %v", sol.Status)
	}
	return sol.Value, nil
}
