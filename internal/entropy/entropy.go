// Package entropy provides the information-theoretic machinery of Section 6:
// entropy vectors over small variable sets, the I-measure (atoms of the
// information diagram, Figures 2 and 3), empirical entropies of database
// relations under the uniform tuple distribution, the Shannon-inequality
// linear program bounding the worst-case size increase (Proposition 6.9),
// the entropy-LP characterization of the color number (Proposition 6.10),
// the left-hand-side reduction of Fact 6.12, and the knitted complexity of
// Definition 8.1.
package entropy

import (
	"fmt"
	"math"

	"cqbound/internal/relation"
)

// MaxVars bounds the number of jointly analyzed variables (vectors store
// 2^k entries).
const MaxVars = 20

// Set is a subset of up to MaxVars variables, as a bitmask.
type Set uint32

// Has reports whether variable i (0-based) is in the set.
func (s Set) Has(i int) bool { return s&(1<<uint(i)) != 0 }

// With returns s ∪ {i}.
func (s Set) With(i int) Set { return s | (1 << uint(i)) }

// Size returns |s|.
func (s Set) Size() int {
	n := 0
	for x := s; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// Members lists the elements of s in increasing order.
func (s Set) Members() []int {
	var out []int
	for i := 0; i < MaxVars; i++ {
		if s.Has(i) {
			out = append(out, i)
		}
	}
	return out
}

// Vector is an entropy vector over k variables: H(S) for every S ⊆ [k], in
// bits. H(∅) = 0 always.
type Vector struct {
	K int
	H []float64 // indexed by Set, length 2^K
}

// NewVector returns a zero entropy vector over k variables.
func NewVector(k int) (*Vector, error) {
	if k < 1 || k > MaxVars {
		return nil, fmt.Errorf("entropy: k = %d out of range [1, %d]", k, MaxVars)
	}
	return &Vector{K: k, H: make([]float64, 1<<uint(k))}, nil
}

// Full returns the set of all K variables.
func (v *Vector) Full() Set { return Set(1<<uint(v.K)) - 1 }

// Empirical computes the entropy vector of the uniform distribution over the
// tuples of r, one random variable per column.
func Empirical(r *relation.Relation) (*Vector, error) {
	k := r.Arity()
	v, err := NewVector(k)
	if err != nil {
		return nil, err
	}
	n := r.Size()
	if n == 0 {
		return nil, fmt.Errorf("entropy: empty relation %s", r.Name)
	}
	tuples := r.Tuples()
	for s := Set(1); s <= v.Full(); s++ {
		counts := make(map[string]int)
		cols := s.Members()
		sub := make(relation.Tuple, len(cols))
		for _, t := range tuples {
			for i, c := range cols {
				sub[i] = t[c]
			}
			counts[sub.Key()]++
		}
		h := 0.0
		for _, c := range counts {
			p := float64(c) / float64(n)
			h -= p * math.Log2(p)
		}
		v.H[s] = h
	}
	return v, nil
}

// Atoms returns the I-measure of the vector: for every non-empty S,
// a_S = I(S | [k]∖S), the signed measure of the information-diagram region
// belonging to exactly the variables of S. They satisfy
// H(T) = Σ_{S∩T≠∅} a_S (Fact 6.7) and are computed by Möbius inversion:
//
//	a_S = −Σ_{T ⊆ S} (−1)^{|T|} · H(T ∪ ([k]∖S)).
//
// The returned slice is indexed by Set; entry 0 is unused (zero).
func (v *Vector) Atoms() []float64 {
	full := v.Full()
	atoms := make([]float64, len(v.H))
	for s := Set(1); s <= full; s++ {
		comp := full &^ s
		a := 0.0
		// Enumerate T ⊆ S.
		t := s
		for {
			sign := 1.0
			if t.Size()%2 == 1 {
				sign = -1.0
			}
			a -= sign * v.H[t|comp]
			if t == 0 {
				break
			}
			t = (t - 1) & s
		}
		atoms[s] = a
	}
	return atoms
}

// FromAtoms reconstructs an entropy vector from I-measure atoms (the inverse
// of Atoms): H(T) = Σ_{S∩T≠∅} a_S.
func FromAtoms(k int, atoms []float64) (*Vector, error) {
	v, err := NewVector(k)
	if err != nil {
		return nil, err
	}
	if len(atoms) != len(v.H) {
		return nil, fmt.Errorf("entropy: %d atoms for k=%d", len(atoms), k)
	}
	for t := Set(1); t <= v.Full(); t++ {
		h := 0.0
		for s := Set(1); s <= v.Full(); s++ {
			if s&t != 0 {
				h += atoms[s]
			}
		}
		v.H[t] = h
	}
	return v, nil
}

// Cond returns H(A | B) = H(A∪B) − H(B).
func (v *Vector) Cond(a, b Set) float64 { return v.H[a|b] - v.H[b] }

// MutualPair returns I(A;B) = H(A) + H(B) − H(A∪B) for disjoint A, B
// treated as grouped variables.
func (v *Vector) MutualPair(a, b Set) float64 { return v.H[a] + v.H[b] - v.H[a|b] }

// Mutual returns the multi-way conditional mutual information
// I(S | given) = Σ_{T: T⊇S, T∩given=∅} a_T restricted to the information
// diagram; for given = [k]∖S this is exactly the atom a_S.
func (v *Vector) Mutual(s, given Set) float64 {
	atoms := v.Atoms()
	total := 0.0
	for t := Set(1); t <= v.Full(); t++ {
		if t&s == s && t&given == 0 {
			total += atoms[t]
		}
	}
	return total
}

// KnittedComplexity computes Definition 8.1: the ratio of the sum of
// absolute values of all mutual informations (atoms) to their signed sum
// (which equals H of all variables). An error is returned when the signed
// sum is (numerically) zero.
func (v *Vector) KnittedComplexity() (float64, error) {
	atoms := v.Atoms()
	num, den := 0.0, 0.0
	for s := Set(1); s <= v.Full(); s++ {
		num += math.Abs(atoms[s])
		den += atoms[s]
	}
	if math.Abs(den) < 1e-12 {
		return 0, fmt.Errorf("entropy: zero total entropy")
	}
	return num / den, nil
}
