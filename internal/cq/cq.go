// Package cq models conjunctive queries in datalog-rule form together with
// functional dependencies, following Section 2 of Gottlob, Lee, Valiant and
// Valiant, "Size and Treewidth Bounds for Conjunctive Queries" (PODS 2009).
//
// A query has the shape
//
//	R0(u0) <- Ri1(u1) ∧ ... ∧ Rim(um)
//
// where each uj is a list of (not necessarily distinct) variables. A single
// relation may appear several times in the body. Functional dependencies are
// stated on relation positions (1-based); the package also lifts them to
// dependencies between query variables, which is the form the coloring
// machinery of the paper consumes.
package cq

import (
	"fmt"
	"sort"
	"strings"
)

// Variable is a query variable. Variables are compared by name.
type Variable string

// Atom is a relational atom R(X1,...,Xk). The same variable may occur in
// several positions.
type Atom struct {
	Relation string
	Vars     []Variable
}

// NewAtom builds an atom from a relation name and variable names.
func NewAtom(relation string, vars ...string) Atom {
	vs := make([]Variable, len(vars))
	for i, v := range vars {
		vs[i] = Variable(v)
	}
	return Atom{Relation: relation, Vars: vs}
}

// Arity returns the number of argument positions of the atom.
func (a Atom) Arity() int { return len(a.Vars) }

// Clone returns a deep copy of the atom.
func (a Atom) Clone() Atom {
	vs := make([]Variable, len(a.Vars))
	copy(vs, a.Vars)
	return Atom{Relation: a.Relation, Vars: vs}
}

// Equal reports whether two atoms have the same relation and variable list.
func (a Atom) Equal(b Atom) bool {
	if a.Relation != b.Relation || len(a.Vars) != len(b.Vars) {
		return false
	}
	for i := range a.Vars {
		if a.Vars[i] != b.Vars[i] {
			return false
		}
	}
	return true
}

// VarSet returns the set of variables occurring in the atom.
func (a Atom) VarSet() map[Variable]bool {
	s := make(map[Variable]bool, len(a.Vars))
	for _, v := range a.Vars {
		s[v] = true
	}
	return s
}

// DistinctVars returns the variables of the atom in first-occurrence order
// with duplicates removed.
func (a Atom) DistinctVars() []Variable {
	seen := make(map[Variable]bool, len(a.Vars))
	var out []Variable
	for _, v := range a.Vars {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// String renders the atom as R(X,Y,Z).
func (a Atom) String() string {
	parts := make([]string, len(a.Vars))
	for i, v := range a.Vars {
		parts[i] = string(v)
	}
	return a.Relation + "(" + strings.Join(parts, ",") + ")"
}

// FD is a functional dependency R[i1],...,ik -> R[t] on the positions of a
// relation. Positions are 1-based. A dependency with a single position on the
// left-hand side is called simple (Section 2).
type FD struct {
	Relation string
	From     []int
	To       int
}

// Simple reports whether the dependency has a single left-hand-side position.
func (f FD) Simple() bool { return len(f.From) == 1 }

// Clone returns a deep copy of the dependency.
func (f FD) Clone() FD {
	from := make([]int, len(f.From))
	copy(from, f.From)
	return FD{Relation: f.Relation, From: from, To: f.To}
}

// Equal reports whether two dependencies are syntactically identical.
func (f FD) Equal(g FD) bool {
	if f.Relation != g.Relation || f.To != g.To || len(f.From) != len(g.From) {
		return false
	}
	for i := range f.From {
		if f.From[i] != g.From[i] {
			return false
		}
	}
	return true
}

// String renders the dependency as R[1],R[2] -> R[3].
func (f FD) String() string {
	parts := make([]string, len(f.From))
	for i, p := range f.From {
		parts[i] = fmt.Sprintf("%s[%d]", f.Relation, p)
	}
	return fmt.Sprintf("%s -> %s[%d]", strings.Join(parts, ","), f.Relation, f.To)
}

// VarFD is a functional dependency lifted to query variables, as in the
// "slight abuse of notation" of Section 2: for an FD R[i]->R[j] and a body
// atom R(u) with X and Y in positions i and j, the lifted dependency is X->Y.
type VarFD struct {
	From []Variable
	To   Variable
}

// String renders the lifted dependency as X,Y -> Z.
func (f VarFD) String() string {
	parts := make([]string, len(f.From))
	for i, v := range f.From {
		parts[i] = string(v)
	}
	return strings.Join(parts, ",") + " -> " + string(f.To)
}

// Trivial reports whether the right-hand side already occurs on the left.
func (f VarFD) Trivial() bool {
	for _, v := range f.From {
		if v == f.To {
			return true
		}
	}
	return false
}

// key returns a canonical string for deduplication. Left-hand sides are
// treated as sets.
func (f VarFD) key() string {
	from := make([]string, len(f.From))
	for i, v := range f.From {
		from[i] = string(v)
	}
	sort.Strings(from)
	return strings.Join(from, "\x00") + "\x01" + string(f.To)
}

// NormalizeVarFD sorts and deduplicates the left-hand side of a lifted
// dependency.
func NormalizeVarFD(f VarFD) VarFD {
	seen := make(map[Variable]bool, len(f.From))
	var from []Variable
	for _, v := range f.From {
		if !seen[v] {
			seen[v] = true
			from = append(from, v)
		}
	}
	sort.Slice(from, func(i, j int) bool { return from[i] < from[j] })
	return VarFD{From: from, To: f.To}
}

// Query is a conjunctive query R0(u0) <- body, with functional dependencies.
type Query struct {
	Head Atom
	Body []Atom
	FDs  []FD
}

// Clone returns a deep copy of the query.
func (q *Query) Clone() *Query {
	out := &Query{Head: q.Head.Clone()}
	out.Body = make([]Atom, len(q.Body))
	for i, a := range q.Body {
		out.Body[i] = a.Clone()
	}
	out.FDs = make([]FD, len(q.FDs))
	for i, f := range q.FDs {
		out.FDs[i] = f.Clone()
	}
	return out
}

// Equal reports whether two queries are syntactically identical (same head,
// same body atom order, same dependency order).
func (q *Query) Equal(r *Query) bool {
	if !q.Head.Equal(r.Head) || len(q.Body) != len(r.Body) || len(q.FDs) != len(r.FDs) {
		return false
	}
	for i := range q.Body {
		if !q.Body[i].Equal(r.Body[i]) {
			return false
		}
	}
	for i := range q.FDs {
		if !q.FDs[i].Equal(r.FDs[i]) {
			return false
		}
	}
	return true
}

// Variables returns var(Q): every variable occurring in the query, in
// first-occurrence order scanning the body and then the head.
func (q *Query) Variables() []Variable {
	seen := make(map[Variable]bool)
	var out []Variable
	add := func(vs []Variable) {
		for _, v := range vs {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	for _, a := range q.Body {
		add(a.Vars)
	}
	add(q.Head.Vars)
	return out
}

// HeadVars returns the distinct head variables in first-occurrence order.
func (q *Query) HeadVars() []Variable {
	return q.Head.DistinctVars()
}

// HeadVarSet returns the set of head variables.
func (q *Query) HeadVarSet() map[Variable]bool {
	return q.Head.VarSet()
}

// Rep returns rep(Q), the maximum number of times any single relation name
// appears in the body (Proposition 4.1).
func (q *Query) Rep() int {
	counts := make(map[string]int)
	rep := 0
	for _, a := range q.Body {
		counts[a.Relation]++
		if counts[a.Relation] > rep {
			rep = counts[a.Relation]
		}
	}
	return rep
}

// RelationArities maps each body relation name to its arity.
func (q *Query) RelationArities() map[string]int {
	out := make(map[string]int)
	for _, a := range q.Body {
		out[a.Relation] = a.Arity()
	}
	return out
}

// BodyRelations returns the distinct body relation names in first-occurrence
// order.
func (q *Query) BodyRelations() []string {
	seen := make(map[string]bool)
	var out []string
	for _, a := range q.Body {
		if !seen[a.Relation] {
			seen[a.Relation] = true
			out = append(out, a.Relation)
		}
	}
	return out
}

// Validate checks the structural well-formedness required by Section 2:
// non-empty body, every head variable occurs in the body, consistent arities
// for repeated relation names, and functional dependencies referring to known
// relations and valid positions.
func (q *Query) Validate() error {
	if len(q.Body) == 0 {
		return fmt.Errorf("cq: query %s has an empty body", q.Head.Relation)
	}
	arity := make(map[string]int)
	bodyVars := make(map[Variable]bool)
	for _, a := range q.Body {
		if a.Arity() == 0 {
			return fmt.Errorf("cq: atom %s has arity 0", a.Relation)
		}
		if prev, ok := arity[a.Relation]; ok && prev != a.Arity() {
			return fmt.Errorf("cq: relation %s used with arities %d and %d", a.Relation, prev, a.Arity())
		}
		arity[a.Relation] = a.Arity()
		for _, v := range a.Vars {
			bodyVars[v] = true
		}
	}
	if _, ok := arity[q.Head.Relation]; ok {
		// The output relation reusing a body relation name would make the
		// semantics of FDs on that name ambiguous.
		return fmt.Errorf("cq: head relation %s also appears in the body", q.Head.Relation)
	}
	for _, v := range q.Head.Vars {
		if !bodyVars[v] {
			return fmt.Errorf("cq: head variable %s does not occur in the body", v)
		}
	}
	for _, f := range q.FDs {
		ar, ok := arity[f.Relation]
		if !ok {
			return fmt.Errorf("cq: functional dependency %s refers to unknown relation %s", f, f.Relation)
		}
		if len(f.From) == 0 {
			return fmt.Errorf("cq: functional dependency %s has an empty left-hand side", f)
		}
		seen := make(map[int]bool)
		for _, p := range f.From {
			if p < 1 || p > ar {
				return fmt.Errorf("cq: functional dependency %s: position %d out of range for arity %d", f, p, ar)
			}
			if seen[p] {
				return fmt.Errorf("cq: functional dependency %s repeats position %d", f, p)
			}
			seen[p] = true
		}
		if f.To < 1 || f.To > ar {
			return fmt.Errorf("cq: functional dependency %s: position %d out of range for arity %d", f, f.To, ar)
		}
	}
	return nil
}

// HasFDs reports whether any functional dependencies are declared.
func (q *Query) HasFDs() bool { return len(q.FDs) > 0 }

// AllFDsSimple reports whether every declared dependency is simple.
func (q *Query) AllFDsSimple() bool {
	for _, f := range q.FDs {
		if !f.Simple() {
			return false
		}
	}
	return true
}

// VarFDs lifts the positional functional dependencies to dependencies between
// query variables: one lifted dependency per (FD, body atom with the FD's
// relation) pair. Trivial dependencies (RHS contained in LHS) are dropped and
// the result is deduplicated, with deterministic order.
func (q *Query) VarFDs() []VarFD {
	var out []VarFD
	seen := make(map[string]bool)
	for _, f := range q.FDs {
		for _, a := range q.Body {
			if a.Relation != f.Relation {
				continue
			}
			from := make([]Variable, len(f.From))
			for i, p := range f.From {
				from[i] = a.Vars[p-1]
			}
			vf := NormalizeVarFD(VarFD{From: from, To: a.Vars[f.To-1]})
			if vf.Trivial() {
				continue
			}
			k := vf.key()
			if seen[k] {
				continue
			}
			seen[k] = true
			out = append(out, vf)
		}
	}
	return out
}

// AllVarFDsSimple reports whether every lifted dependency has a single
// variable on its left-hand side. A compound positional FD can still lift to
// a simple variable dependency when an atom repeats a variable.
func (q *Query) AllVarFDsSimple() bool {
	for _, f := range q.VarFDs() {
		if len(f.From) > 1 {
			return false
		}
	}
	return true
}

// String renders the query as a datalog rule followed by one functional
// dependency per line, in a form accepted by Parse.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString(q.Head.String())
	b.WriteString(" <- ")
	parts := make([]string, len(q.Body))
	for i, a := range q.Body {
		parts[i] = a.String()
	}
	b.WriteString(strings.Join(parts, ", "))
	b.WriteString(".")
	for _, f := range q.FDs {
		b.WriteString("\nfd ")
		b.WriteString(f.String())
		b.WriteString(".")
	}
	return b.String()
}

// AddKey declares positions key as a (simple or compound) key of relation:
// it appends the functional dependencies key -> p for every position p of the
// relation outside key. The relation must occur in the body so its arity is
// known.
func (q *Query) AddKey(relation string, key ...int) error {
	ar, ok := q.RelationArities()[relation]
	if !ok {
		return fmt.Errorf("cq: key on unknown relation %s", relation)
	}
	inKey := make(map[int]bool, len(key))
	for _, p := range key {
		if p < 1 || p > ar {
			return fmt.Errorf("cq: key position %d out of range for %s (arity %d)", p, relation, ar)
		}
		inKey[p] = true
	}
	for p := 1; p <= ar; p++ {
		if inKey[p] {
			continue
		}
		from := make([]int, len(key))
		copy(from, key)
		q.FDs = append(q.FDs, FD{Relation: relation, From: from, To: p})
	}
	return nil
}

// Hypergraph is the hypergraph associated with a query: vertices are the
// query variables and each body atom contributes the hyperedge of its
// variables (Definition 3.5).
type Hypergraph struct {
	Vertices []Variable
	Edges    [][]Variable
}

// Hypergraph returns the query's hypergraph. Edges appear in body-atom order;
// each edge lists the atom's distinct variables in first-occurrence order.
func (q *Query) Hypergraph() Hypergraph {
	h := Hypergraph{Vertices: q.Variables()}
	for _, a := range q.Body {
		h.Edges = append(h.Edges, a.DistinctVars())
	}
	return h
}

// HeadRestrictedHypergraph returns the hypergraph of the query Q' obtained by
// removing all variables that do not appear in the head from all atoms
// (Section 3.1). Atoms left with no head variables contribute no edge.
func (q *Query) HeadRestrictedHypergraph() Hypergraph {
	head := q.HeadVarSet()
	h := Hypergraph{Vertices: q.HeadVars()}
	for _, a := range q.Body {
		var edge []Variable
		for _, v := range a.DistinctVars() {
			if head[v] {
				edge = append(edge, v)
			}
		}
		if len(edge) > 0 {
			h.Edges = append(h.Edges, edge)
		}
	}
	return h
}
