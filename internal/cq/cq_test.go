package cq

import (
	"strings"
	"testing"
)

func TestVariablesOrderAndDedup(t *testing.T) {
	q := MustParse("Q(Z,X) <- R(X,Y), S(Y,Z,X).")
	got := q.Variables()
	want := []Variable{"X", "Y", "Z"}
	if len(got) != len(want) {
		t.Fatalf("Variables() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Variables() = %v, want %v", got, want)
		}
	}
}

func TestHeadVarsDedup(t *testing.T) {
	q := MustParse("Q(X,X,Y) <- R(X,Y).")
	got := q.HeadVars()
	if len(got) != 2 || got[0] != "X" || got[1] != "Y" {
		t.Fatalf("HeadVars() = %v, want [X Y]", got)
	}
}

func TestRep(t *testing.T) {
	q := MustParse("Q(X,Y,Z) <- R(X,Y), R(X,Z), S(Y,Z).")
	if got := q.Rep(); got != 2 {
		t.Fatalf("Rep() = %d, want 2", got)
	}
	q2 := MustParse("Q(X) <- R(X).")
	if got := q2.Rep(); got != 1 {
		t.Fatalf("Rep() = %d, want 1", got)
	}
}

func TestValidateRejectsHeadVarNotInBody(t *testing.T) {
	q := &Query{
		Head: NewAtom("Q", "X", "W"),
		Body: []Atom{NewAtom("R", "X", "Y")},
	}
	if err := q.Validate(); err == nil {
		t.Fatal("Validate() accepted head variable missing from body")
	}
}

func TestValidateRejectsInconsistentArity(t *testing.T) {
	q := &Query{
		Head: NewAtom("Q", "X"),
		Body: []Atom{NewAtom("R", "X", "Y"), NewAtom("R", "X")},
	}
	if err := q.Validate(); err == nil {
		t.Fatal("Validate() accepted inconsistent arities for R")
	}
}

func TestValidateRejectsEmptyBody(t *testing.T) {
	q := &Query{Head: NewAtom("Q", "X")}
	if err := q.Validate(); err == nil {
		t.Fatal("Validate() accepted empty body")
	}
}

func TestValidateRejectsHeadNameInBody(t *testing.T) {
	q := &Query{
		Head: NewAtom("R", "X"),
		Body: []Atom{NewAtom("R", "X")},
	}
	if err := q.Validate(); err == nil {
		t.Fatal("Validate() accepted head relation reused in body")
	}
}

func TestValidateRejectsBadFDPositions(t *testing.T) {
	for _, fd := range []FD{
		{Relation: "R", From: []int{3}, To: 1},
		{Relation: "R", From: []int{1}, To: 5},
		{Relation: "T", From: []int{1}, To: 1},
		{Relation: "R", From: nil, To: 1},
		{Relation: "R", From: []int{1, 1}, To: 2},
	} {
		q := &Query{
			Head: NewAtom("Q", "X"),
			Body: []Atom{NewAtom("R", "X", "Y")},
			FDs:  []FD{fd},
		}
		if err := q.Validate(); err == nil {
			t.Fatalf("Validate() accepted bad FD %v", fd)
		}
	}
}

func TestKeyExpansion(t *testing.T) {
	q := MustParse("Q(X) <- R(X,Y,Z).\nkey R[1].")
	if len(q.FDs) != 2 {
		t.Fatalf("key R[1] expanded to %d FDs, want 2: %v", len(q.FDs), q.FDs)
	}
	for _, f := range q.FDs {
		if !f.Simple() || f.From[0] != 1 {
			t.Fatalf("unexpected FD %v", f)
		}
	}
}

func TestCompoundKeyExpansion(t *testing.T) {
	q := MustParse("Q(X) <- R(X,Y,Z,W).\nkey R[1,2].")
	if len(q.FDs) != 2 {
		t.Fatalf("key R[1,2] expanded to %d FDs, want 2", len(q.FDs))
	}
	for _, f := range q.FDs {
		if f.Simple() {
			t.Fatalf("compound key produced simple FD %v", f)
		}
		if f.To != 3 && f.To != 4 {
			t.Fatalf("unexpected FD target %v", f)
		}
	}
}

func TestVarFDsLiftPerAtom(t *testing.T) {
	// R appears twice; the simple FD R[1]->R[2] lifts to X->Y and X->Z.
	q := MustParse("Q(X,Y,Z) <- R(X,Y), R(X,Z).\nfd R[1] -> R[2].")
	fds := q.VarFDs()
	if len(fds) != 2 {
		t.Fatalf("VarFDs() = %v, want 2 lifted dependencies", fds)
	}
	got := map[string]bool{}
	for _, f := range fds {
		got[f.String()] = true
	}
	if !got["X -> Y"] || !got["X -> Z"] {
		t.Fatalf("VarFDs() = %v, want X->Y and X->Z", fds)
	}
}

func TestVarFDsDropTrivialAndDedup(t *testing.T) {
	// The atom R(X,X) lifts R[1]->R[2] to the trivial X->X.
	q := MustParse("Q(X,Y) <- R(X,X), R(X,Y), R(X,Y).\nfd R[1] -> R[2].")
	fds := q.VarFDs()
	if len(fds) != 1 || fds[0].String() != "X -> Y" {
		t.Fatalf("VarFDs() = %v, want exactly X->Y", fds)
	}
}

func TestAllVarFDsSimpleWithRepeatedVariable(t *testing.T) {
	// Compound positional FD lifting to a simple variable dependency.
	q := MustParse("Q(X,Y) <- R(X,X,Y).\nfd R[1],R[2] -> R[3].")
	if !q.AllFDsSimple() == false {
		// positional FD is compound
		t.Fatal("expected compound positional FD")
	}
	if !q.AllVarFDsSimple() {
		t.Fatalf("VarFDs %v should be simple (X,X collapses)", q.VarFDs())
	}
}

func TestStringRoundTrip(t *testing.T) {
	src := "Q(X,Y,Z) <- R(X,Y), R(X,Z), S(Y,Z).\nfd R[1] -> R[2].\nfd S[1],S[2] -> S[2]."
	q := MustParse(src)
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("round-trip parse failed: %v\ntext:\n%s", err, q.String())
	}
	if !q.Equal(q2) {
		t.Fatalf("round trip changed query:\n%s\nvs\n%s", q, q2)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"Q(X)",
		"Q(X) <- ",
		"Q(X) <- R(X)",            // missing period
		"Q(X) <- R(X). key T[1].", // unknown relation
		"Q(X) <- R(X,Y). fd R[1] -> S[2].",
		"Q(X) <- R(X,Y). key R[9].",
		"Q(X) <- R(X,Y). bogus R[1].",
		"Q() <- R(X).",
		"Q(X) <- R(X,Y). fd R[1] R[2].",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseAcceptsCommentsAndColonDash(t *testing.T) {
	q, err := Parse("# triangle\nQ(X,Y,Z) :- R(X,Y), R(Y,Z), R(X,Z). % done\n")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.Body) != 3 {
		t.Fatalf("body = %v", q.Body)
	}
}

func TestHypergraph(t *testing.T) {
	q := MustParse("Q(X,Z) <- R(X,Y), S(Y,Z).")
	h := q.Hypergraph()
	if len(h.Vertices) != 3 || len(h.Edges) != 2 {
		t.Fatalf("Hypergraph = %+v", h)
	}
	hr := q.HeadRestrictedHypergraph()
	if len(hr.Vertices) != 2 {
		t.Fatalf("head-restricted vertices = %v", hr.Vertices)
	}
	// R contributes {X}, S contributes {Z}.
	if len(hr.Edges) != 2 || len(hr.Edges[0]) != 1 || len(hr.Edges[1]) != 1 {
		t.Fatalf("head-restricted edges = %v", hr.Edges)
	}
}

func TestHeadRestrictedHypergraphDropsEmptyEdges(t *testing.T) {
	q := MustParse("Q(X) <- R(X,Y), T(Y,Z).")
	hr := q.HeadRestrictedHypergraph()
	if len(hr.Edges) != 1 {
		t.Fatalf("edges = %v, want only R's restriction", hr.Edges)
	}
}

func TestCloneIsDeep(t *testing.T) {
	q := MustParse("Q(X,Y) <- R(X,Y).\nfd R[1] -> R[2].")
	c := q.Clone()
	c.Body[0].Vars[0] = "Z"
	c.FDs[0].From[0] = 2
	if q.Body[0].Vars[0] != "X" || q.FDs[0].From[0] != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestAtomString(t *testing.T) {
	a := NewAtom("R", "X", "Y")
	if a.String() != "R(X,Y)" {
		t.Fatalf("String() = %q", a.String())
	}
}

func TestFDString(t *testing.T) {
	f := FD{Relation: "S", From: []int{1, 2}, To: 3}
	if got := f.String(); got != "S[1],S[2] -> S[3]" {
		t.Fatalf("String() = %q", got)
	}
}

func TestQueryStringContainsFDs(t *testing.T) {
	q := MustParse("Q(X) <- R(X,Y).\nkey R[1].")
	if !strings.Contains(q.String(), "fd R[1] -> R[2].") {
		t.Fatalf("String() = %q", q.String())
	}
}

func TestBodyRelations(t *testing.T) {
	q := MustParse("Q(X) <- R(X,Y), S(Y,X), R(X,X).")
	rels := q.BodyRelations()
	if len(rels) != 2 || rels[0] != "R" || rels[1] != "S" {
		t.Fatalf("BodyRelations() = %v", rels)
	}
}
