package cq

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse reads a conjunctive query from its textual form. The grammar is
//
//	query      := head ("<-" | ":-") atom ("," atom)* "."
//	atom       := ident "(" ident ("," ident)* ")"
//	keydecl    := "key" ident "[" int ("," int)* "]" "."
//	fddecl     := "fd" pos ("," pos)* "->" pos "."
//	pos        := ident "[" int "]"
//
// The rule must come first; any number of key and fd declarations may follow.
// A key declaration on positions K of R expands to the dependencies K -> p
// for all other positions p of R. Comments run from '#' or '%' to the end of
// the line. Example:
//
//	Q(X,Y,Z) <- R(X,Y), R(X,Z), S(Y,Z).
//	key R[1].
//	fd S[1],S[2] -> S[2].
func Parse(text string) (*Query, error) {
	p := &parser{}
	p.tokenize(text)
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse but panics on error; intended for tests and examples.
func MustParse(text string) *Query {
	q, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return q
}

type token struct {
	kind string // "ident", "int", or a punctuation literal
	text string
	line int
	col  int
}

type parser struct {
	toks []token
	pos  int
	err  error
}

func (p *parser) tokenize(text string) {
	line, col := 1, 1
	i := 0
	for i < len(text) {
		c := rune(text[i])
		switch {
		case c == '\n':
			line++
			col = 1
			i++
		case c == ' ' || c == '\t' || c == '\r':
			col++
			i++
		case c == '#' || c == '%':
			for i < len(text) && text[i] != '\n' {
				i++
			}
		case unicode.IsLetter(c) || c == '_':
			start := i
			for i < len(text) && (isIdentRune(rune(text[i]))) {
				i++
			}
			p.toks = append(p.toks, token{"ident", text[start:i], line, col})
			col += i - start
		case unicode.IsDigit(c):
			start := i
			for i < len(text) && unicode.IsDigit(rune(text[i])) {
				i++
			}
			p.toks = append(p.toks, token{"int", text[start:i], line, col})
			col += i - start
		case strings.HasPrefix(text[i:], "<-") || strings.HasPrefix(text[i:], ":-") || strings.HasPrefix(text[i:], "->"):
			p.toks = append(p.toks, token{text[i : i+2], text[i : i+2], line, col})
			i += 2
			col += 2
		case strings.ContainsRune("(),.[]", c):
			p.toks = append(p.toks, token{string(c), string(c), line, col})
			i++
			col++
		default:
			if p.err == nil {
				p.err = fmt.Errorf("cq: %d:%d: unexpected character %q", line, col, c)
			}
			i++
			col++
		}
	}
}

func isIdentRune(c rune) bool {
	return unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' || c == '\''
}

func (p *parser) peek() (token, bool) {
	if p.pos < len(p.toks) {
		return p.toks[p.pos], true
	}
	return token{}, false
}

func (p *parser) next() (token, bool) {
	t, ok := p.peek()
	if ok {
		p.pos++
	}
	return t, ok
}

func (p *parser) expect(kind string) (token, error) {
	t, ok := p.next()
	if !ok {
		return token{}, fmt.Errorf("cq: unexpected end of input, want %q", kind)
	}
	if t.kind != kind {
		return token{}, fmt.Errorf("cq: %d:%d: got %q, want %q", t.line, t.col, t.text, kind)
	}
	return t, nil
}

func (p *parser) parseQuery() (*Query, error) {
	if p.err != nil {
		return nil, p.err
	}
	q := &Query{}
	head, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	q.Head = head
	t, ok := p.next()
	if !ok || (t.kind != "<-" && t.kind != ":-") {
		return nil, fmt.Errorf("cq: expected <- or :- after head atom")
	}
	for {
		a, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		q.Body = append(q.Body, a)
		t, ok := p.next()
		if !ok {
			return nil, fmt.Errorf("cq: missing '.' at end of rule")
		}
		if t.kind == "." {
			break
		}
		if t.kind != "," {
			return nil, fmt.Errorf("cq: %d:%d: got %q, want ',' or '.'", t.line, t.col, t.text)
		}
	}
	// key and fd declarations.
	type keyDecl struct {
		relation  string
		positions []int
	}
	var keys []keyDecl
	for {
		t, ok := p.peek()
		if !ok {
			break
		}
		if t.kind != "ident" {
			return nil, fmt.Errorf("cq: %d:%d: got %q, want key or fd declaration", t.line, t.col, t.text)
		}
		switch t.text {
		case "key":
			p.next()
			rel, err := p.expect("ident")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect("["); err != nil {
				return nil, err
			}
			var positions []int
			for {
				n, err := p.expect("int")
				if err != nil {
					return nil, err
				}
				v, _ := strconv.Atoi(n.text)
				positions = append(positions, v)
				t, ok := p.next()
				if !ok {
					return nil, fmt.Errorf("cq: unterminated key declaration")
				}
				if t.kind == "]" {
					break
				}
				if t.kind != "," {
					return nil, fmt.Errorf("cq: %d:%d: got %q, want ',' or ']'", t.line, t.col, t.text)
				}
			}
			if _, err := p.expect("."); err != nil {
				return nil, err
			}
			keys = append(keys, keyDecl{rel.text, positions})
		case "fd":
			p.next()
			fd, err := p.parseFD()
			if err != nil {
				return nil, err
			}
			q.FDs = append(q.FDs, fd)
		default:
			return nil, fmt.Errorf("cq: %d:%d: unknown declaration %q", t.line, t.col, t.text)
		}
	}
	for _, k := range keys {
		if err := q.AddKey(k.relation, k.positions...); err != nil {
			return nil, err
		}
	}
	return q, nil
}

func (p *parser) parseAtom() (Atom, error) {
	rel, err := p.expect("ident")
	if err != nil {
		return Atom{}, err
	}
	if _, err := p.expect("("); err != nil {
		return Atom{}, err
	}
	a := Atom{Relation: rel.text}
	for {
		v, err := p.expect("ident")
		if err != nil {
			return Atom{}, err
		}
		a.Vars = append(a.Vars, Variable(v.text))
		t, ok := p.next()
		if !ok {
			return Atom{}, fmt.Errorf("cq: unterminated atom %s", rel.text)
		}
		if t.kind == ")" {
			break
		}
		if t.kind != "," {
			return Atom{}, fmt.Errorf("cq: %d:%d: got %q, want ',' or ')'", t.line, t.col, t.text)
		}
	}
	return a, nil
}

// parsePos parses R[3] and returns the relation name and position.
func (p *parser) parsePos() (string, int, error) {
	rel, err := p.expect("ident")
	if err != nil {
		return "", 0, err
	}
	if _, err := p.expect("["); err != nil {
		return "", 0, err
	}
	n, err := p.expect("int")
	if err != nil {
		return "", 0, err
	}
	if _, err := p.expect("]"); err != nil {
		return "", 0, err
	}
	v, _ := strconv.Atoi(n.text)
	return rel.text, v, nil
}

func (p *parser) parseFD() (FD, error) {
	var fd FD
	for {
		rel, pos, err := p.parsePos()
		if err != nil {
			return FD{}, err
		}
		if fd.Relation == "" {
			fd.Relation = rel
		} else if fd.Relation != rel {
			return FD{}, fmt.Errorf("cq: functional dependency mixes relations %s and %s", fd.Relation, rel)
		}
		fd.From = append(fd.From, pos)
		t, ok := p.next()
		if !ok {
			return FD{}, fmt.Errorf("cq: unterminated fd declaration")
		}
		if t.kind == "->" {
			break
		}
		if t.kind != "," {
			return FD{}, fmt.Errorf("cq: %d:%d: got %q, want ',' or '->'", t.line, t.col, t.text)
		}
	}
	rel, pos, err := p.parsePos()
	if err != nil {
		return FD{}, err
	}
	if rel != fd.Relation {
		return FD{}, fmt.Errorf("cq: functional dependency mixes relations %s and %s", fd.Relation, rel)
	}
	fd.To = pos
	if _, err := p.expect("."); err != nil {
		return FD{}, err
	}
	return fd, nil
}
