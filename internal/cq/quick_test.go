package cq

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomQuery builds a small random query locally (datagen depends on cq,
// so this package rolls its own generator to avoid an import cycle).
func randomQueryLocal(rng *rand.Rand) *Query {
	vars := []Variable{"A", "B", "C", "D", "E"}
	nAtoms := 1 + rng.Intn(4)
	q := &Query{}
	for i := 0; i < nAtoms; i++ {
		a := Atom{Relation: string(rune('R' + rng.Intn(3)))}
		arity := 1 + rng.Intn(3)
		for j := 0; j < arity; j++ {
			a.Vars = append(a.Vars, vars[rng.Intn(len(vars))])
		}
		q.Body = append(q.Body, a)
	}
	// Consistent arities: reuse the first occurrence's arity.
	arities := map[string]int{}
	for i := range q.Body {
		if ar, ok := arities[q.Body[i].Relation]; ok {
			for len(q.Body[i].Vars) < ar {
				q.Body[i].Vars = append(q.Body[i].Vars, q.Body[i].Vars[0])
			}
			q.Body[i].Vars = q.Body[i].Vars[:ar]
		} else {
			arities[q.Body[i].Relation] = q.Body[i].Arity()
		}
	}
	used := q.Variables()
	q.Head = Atom{Relation: "Q", Vars: []Variable{used[rng.Intn(len(used))]}}
	for _, v := range used {
		if rng.Intn(2) == 0 {
			q.Head.Vars = append(q.Head.Vars, v)
		}
	}
	for rel, ar := range arities {
		if ar >= 2 && rng.Intn(2) == 0 {
			q.FDs = append(q.FDs, FD{Relation: rel, From: []int{1}, To: ar})
		}
	}
	return q
}

// TestQuickStringParseRoundTrip: Parse(q.String()) reproduces q exactly.
func TestQuickStringParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomQueryLocal(rng)
		if err := q.Validate(); err != nil {
			return true // generator made something invalid; skip
		}
		back, err := Parse(q.String())
		if err != nil {
			t.Logf("reparse failed for %q: %v", q.String(), err)
			return false
		}
		return q.Equal(back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickVariablesInvariants: Variables() is duplicate-free and covers
// exactly the variables of head and body.
func TestQuickVariablesInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomQueryLocal(rng)
		vars := q.Variables()
		seen := map[Variable]bool{}
		for _, v := range vars {
			if seen[v] {
				return false
			}
			seen[v] = true
		}
		for _, a := range append([]Atom{q.Head}, q.Body...) {
			for _, v := range a.Vars {
				if !seen[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickVarFDsNeverTrivial: lifted dependencies never have their target
// inside the left-hand side.
func TestQuickVarFDsNeverTrivial(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomQueryLocal(rng)
		for _, fd := range q.VarFDs() {
			if fd.Trivial() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
