package treewidth

import (
	"fmt"

	"cqbound/internal/graph"
)

// MinDegreeOrder returns the elimination ordering produced by repeatedly
// eliminating a minimum-degree vertex (ties: smallest index).
func MinDegreeOrder(g *graph.Graph) []int {
	h := g.Clone()
	n := h.N()
	eliminated := make([]bool, n)
	order := make([]int, 0, n)
	for len(order) < n {
		best, bestDeg := -1, 1<<30
		for v := 0; v < n; v++ {
			if eliminated[v] {
				continue
			}
			d := liveDegree(h, v, eliminated)
			if d < bestDeg {
				best, bestDeg = v, d
			}
		}
		eliminateVertex(h, best, eliminated)
		order = append(order, best)
	}
	return order
}

// MinFillOrder returns the elimination ordering produced by repeatedly
// eliminating the vertex whose elimination adds the fewest fill edges.
func MinFillOrder(g *graph.Graph) []int {
	h := g.Clone()
	n := h.N()
	eliminated := make([]bool, n)
	order := make([]int, 0, n)
	for len(order) < n {
		best, bestFill := -1, 1<<30
		for v := 0; v < n; v++ {
			if eliminated[v] {
				continue
			}
			f := fillCount(h, v, eliminated)
			if f < bestFill {
				best, bestFill = v, f
			}
		}
		eliminateVertex(h, best, eliminated)
		order = append(order, best)
	}
	return order
}

func liveDegree(h *graph.Graph, v int, eliminated []bool) int {
	d := 0
	for _, u := range h.Neighbors(v) {
		if !eliminated[u] {
			d++
		}
	}
	return d
}

func fillCount(h *graph.Graph, v int, eliminated []bool) int {
	var nb []int
	for _, u := range h.Neighbors(v) {
		if !eliminated[u] {
			nb = append(nb, u)
		}
	}
	f := 0
	for i := 0; i < len(nb); i++ {
		for j := i + 1; j < len(nb); j++ {
			if !h.HasEdge(nb[i], nb[j]) {
				f++
			}
		}
	}
	return f
}

func eliminateVertex(h *graph.Graph, v int, eliminated []bool) {
	var nb []int
	for _, u := range h.Neighbors(v) {
		if !eliminated[u] {
			nb = append(nb, u)
		}
	}
	for i := 0; i < len(nb); i++ {
		for j := i + 1; j < len(nb); j++ {
			h.AddEdge(nb[i], nb[j])
		}
	}
	eliminated[v] = true
}

// Heuristic returns the better of the min-degree and min-fill decompositions
// together with its (validated-by-construction) width, an upper bound on the
// treewidth.
func Heuristic(g *graph.Graph) (*Decomposition, int, error) {
	if g.N() == 0 {
		return &Decomposition{}, -1, nil
	}
	var best *Decomposition
	bestW := 1 << 30
	for _, order := range [][]int{MinDegreeOrder(g), MinFillOrder(g)} {
		d, err := FromEliminationOrder(g, order)
		if err != nil {
			return nil, 0, err
		}
		if w := d.Width(); w < bestW {
			best, bestW = d, w
		}
	}
	return best, bestW, nil
}

// MaxExactVertices bounds the Exact computation; the dynamic program visits
// all 2^n vertex subsets.
const MaxExactVertices = 17

// Exact computes the exact treewidth and an optimal elimination ordering by
// the Bodlaender–Fomin–Koster–Kratsch–Thilikos dynamic program over vertex
// subsets: OPT(S) = min_{v∈S} max(OPT(S∖{v}), Q(S∖{v}, v)), where Q(S', v)
// counts vertices outside S'∪{v} reachable from v through S'. Limited to
// MaxExactVertices vertices.
func Exact(g *graph.Graph) (int, []int, error) {
	n := g.N()
	if n == 0 {
		return -1, nil, nil
	}
	if n > MaxExactVertices {
		return 0, nil, fmt.Errorf("treewidth: exact computation limited to %d vertices, got %d", MaxExactVertices, n)
	}
	size := 1 << n
	opt := make([]int8, size)
	choice := make([]int8, size)
	opt[0] = -1 // max(-inf, q) = q
	for s := 1; s < size; s++ {
		best := int8(127)
		bestV := int8(-1)
		for v := 0; v < n; v++ {
			if s&(1<<v) == 0 {
				continue
			}
			prev := s &^ (1 << v)
			q := int8(qValue(g, prev, v))
			cand := opt[prev]
			if q > cand {
				cand = q
			}
			if cand < best {
				best, bestV = cand, int8(v)
			}
		}
		opt[s] = best
		choice[s] = bestV
	}
	order := make([]int, n)
	s := size - 1
	for i := n - 1; i >= 0; i-- {
		v := int(choice[s])
		order[i] = v
		s &^= 1 << v
	}
	return int(opt[size-1]), order, nil
}

// qValue counts vertices outside S∪{v} reachable from v via internal
// vertices in S.
func qValue(g *graph.Graph, s int, v int) int {
	n := g.N()
	visited := make([]bool, n)
	visited[v] = true
	stack := []int{v}
	count := 0
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range g.Neighbors(x) {
			if visited[u] {
				continue
			}
			visited[u] = true
			if s&(1<<u) != 0 {
				stack = append(stack, u) // internal vertex, keep walking
			} else {
				count++ // reachable vertex outside S∪{v}
			}
		}
	}
	return count
}

// MMDPlus computes the "maximum minimum degree plus" (contraction
// degeneracy, least-c variant) treewidth lower bound: repeatedly record the
// minimum live degree and contract a minimum-degree vertex into its
// least-degree neighbor.
func MMDPlus(g *graph.Graph) int {
	h := g.Clone()
	alive := make(map[int]bool)
	for v := 0; v < h.N(); v++ {
		alive[v] = true
	}
	adj := make([]map[int]bool, h.N())
	for v := 0; v < h.N(); v++ {
		adj[v] = make(map[int]bool)
		for _, u := range h.Neighbors(v) {
			adj[v][u] = true
		}
	}
	deg := func(v int) int { return len(adj[v]) }
	lb := 0
	for len(alive) > 0 {
		minV, minD := -1, 1<<30
		for v := range alive {
			if d := deg(v); d < minD {
				minV, minD = v, d
			}
		}
		if minD > lb {
			lb = minD
		}
		if minD == 0 {
			delete(alive, minV)
			continue
		}
		// Contract minV into its least-degree neighbor.
		target, targetD := -1, 1<<30
		for u := range adj[minV] {
			if d := deg(u); d < targetD {
				target, targetD = u, d
			}
		}
		for u := range adj[minV] {
			delete(adj[u], minV)
			if u != target {
				adj[target][u] = true
				adj[u][target] = true
			}
		}
		adj[minV] = nil
		delete(alive, minV)
	}
	return lb
}

// LowerBound returns the better of the degeneracy and MMD+ lower bounds.
func LowerBound(g *graph.Graph) int {
	lb := g.Degeneracy()
	if m := MMDPlus(g); m > lb {
		lb = m
	}
	return lb
}

// Treewidth returns the exact treewidth when the graph is small enough, and
// otherwise the interval [LowerBound, heuristic width]. The boolean reports
// whether the value is exact.
func Treewidth(g *graph.Graph) (lower, upper int, exact bool, err error) {
	if g.N() <= MaxExactVertices {
		tw, _, err := Exact(g)
		if err != nil {
			return 0, 0, false, err
		}
		return tw, tw, true, nil
	}
	_, ub, err := Heuristic(g)
	if err != nil {
		return 0, 0, false, err
	}
	lb := LowerBound(g)
	if lb > ub {
		return 0, 0, false, fmt.Errorf("treewidth: internal: lower bound %d exceeds upper bound %d", lb, ub)
	}
	return lb, ub, lb == ub, nil
}
