// Package treewidth implements tree decompositions (Robertson–Seymour, as
// defined in Section 2 of the paper), their validation, width computation,
// construction from elimination orderings, exact treewidth for small graphs,
// the min-degree and min-fill heuristics, contraction-based lower bounds,
// and the constructive keyed-join decomposition transformer from the proof
// of Theorem 5.5.
package treewidth

import (
	"fmt"
	"sort"

	"cqbound/internal/graph"
)

// Decomposition is a tree decomposition: bags of graph vertices connected by
// tree edges. Bag contents are kept sorted.
type Decomposition struct {
	Bags  [][]int
	Edges [][2]int
}

// AddBag appends a bag (copied, sorted, deduplicated) and returns its index.
func (d *Decomposition) AddBag(vertices []int) int {
	seen := make(map[int]bool, len(vertices))
	var bag []int
	for _, v := range vertices {
		if !seen[v] {
			seen[v] = true
			bag = append(bag, v)
		}
	}
	sort.Ints(bag)
	d.Bags = append(d.Bags, bag)
	return len(d.Bags) - 1
}

// AddEdge connects two bags in the tree.
func (d *Decomposition) AddEdge(a, b int) {
	d.Edges = append(d.Edges, [2]int{a, b})
}

// Width returns max |bag| - 1, or -1 for an empty decomposition.
func (d *Decomposition) Width() int {
	w := 0
	if len(d.Bags) == 0 {
		return -1
	}
	for _, b := range d.Bags {
		if len(b) > w {
			w = len(b)
		}
	}
	return w - 1
}

// Clone returns a deep copy.
func (d *Decomposition) Clone() *Decomposition {
	out := &Decomposition{}
	for _, b := range d.Bags {
		out.Bags = append(out.Bags, append([]int(nil), b...))
	}
	out.Edges = append(out.Edges, d.Edges...)
	return out
}

// adjacency returns the decomposition tree as adjacency lists.
func (d *Decomposition) adjacency() [][]int {
	adj := make([][]int, len(d.Bags))
	for _, e := range d.Edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	return adj
}

// Path returns the unique bag path between bags a and b (inclusive).
func (d *Decomposition) Path(a, b int) ([]int, error) {
	if a == b {
		return []int{a}, nil
	}
	adj := d.adjacency()
	parent := make([]int, len(d.Bags))
	for i := range parent {
		parent[i] = -2
	}
	parent[a] = -1
	queue := []int{a}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if v == b {
			break
		}
		for _, u := range adj[v] {
			if parent[u] == -2 {
				parent[u] = v
				queue = append(queue, u)
			}
		}
	}
	if parent[b] == -2 {
		return nil, fmt.Errorf("treewidth: bags %d and %d not connected", a, b)
	}
	var rev []int
	for v := b; v != -1; v = parent[v] {
		rev = append(rev, v)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, nil
}

// Validate checks that d is a valid tree decomposition of g: the bag graph
// is a tree; every vertex appears in a bag; every edge of g is inside a bag;
// and each vertex's bags induce a connected subtree.
func Validate(g *graph.Graph, d *Decomposition) error {
	nb := len(d.Bags)
	if nb == 0 {
		if g.N() == 0 {
			return nil
		}
		return fmt.Errorf("treewidth: no bags for non-empty graph")
	}
	// Tree: connected with nb-1 edges.
	if len(d.Edges) != nb-1 {
		return fmt.Errorf("treewidth: %d bags need %d tree edges, have %d", nb, nb-1, len(d.Edges))
	}
	adj := d.adjacency()
	seen := make([]bool, nb)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range adj[v] {
			if !seen[u] {
				seen[u] = true
				count++
				stack = append(stack, u)
			}
		}
	}
	if count != nb {
		return fmt.Errorf("treewidth: bag graph disconnected (%d of %d reached)", count, nb)
	}
	// Condition (i): vertex coverage.
	inBag := make([][]int, g.N())
	for bi, bag := range d.Bags {
		for _, v := range bag {
			if v < 0 || v >= g.N() {
				return fmt.Errorf("treewidth: bag %d contains unknown vertex %d", bi, v)
			}
			inBag[v] = append(inBag[v], bi)
		}
	}
	for v := 0; v < g.N(); v++ {
		if len(inBag[v]) == 0 {
			return fmt.Errorf("treewidth: vertex %d (%s) in no bag", v, g.Label(v))
		}
	}
	// Condition (ii): edge coverage.
	for _, e := range g.Edges() {
		ok := false
		for _, bi := range inBag[e[0]] {
			if contains(d.Bags[bi], e[1]) {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("treewidth: edge {%d,%d} in no bag", e[0], e[1])
		}
	}
	// Condition (iii): connected subtrees.
	for v := 0; v < g.N(); v++ {
		bags := inBag[v]
		if len(bags) <= 1 {
			continue
		}
		member := make(map[int]bool, len(bags))
		for _, b := range bags {
			member[b] = true
		}
		reached := map[int]bool{bags[0]: true}
		stack := []int{bags[0]}
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, u := range adj[b] {
				if member[u] && !reached[u] {
					reached[u] = true
					stack = append(stack, u)
				}
			}
		}
		if len(reached) != len(bags) {
			return fmt.Errorf("treewidth: bags of vertex %d (%s) not connected", v, g.Label(v))
		}
	}
	return nil
}

func contains(sorted []int, v int) bool {
	i := sort.SearchInts(sorted, v)
	return i < len(sorted) && sorted[i] == v
}

// FromEliminationOrder builds a tree decomposition from an elimination
// ordering: eliminating v creates the bag {v} ∪ N(v) in the current fill
// graph, connected to the bag of v's earliest-eliminated remaining neighbor.
// The resulting width equals the ordering's elimination width minus one.
func FromEliminationOrder(g *graph.Graph, order []int) (*Decomposition, error) {
	n := g.N()
	if len(order) != n {
		return nil, fmt.Errorf("treewidth: order has %d vertices, graph has %d", len(order), n)
	}
	pos := make([]int, n)
	for i := range pos {
		pos[i] = -1
	}
	for i, v := range order {
		if v < 0 || v >= n || pos[v] != -1 {
			return nil, fmt.Errorf("treewidth: order is not a permutation")
		}
		pos[v] = i
	}
	if n == 0 {
		return &Decomposition{}, nil
	}
	// Fill graph simulation.
	h := g.Clone()
	eliminated := make([]bool, n)
	bagOf := make([]int, n)
	d := &Decomposition{}
	type pending struct{ from, toVertex int }
	var edges []pending
	for _, v := range order {
		var nb []int
		for _, u := range h.Neighbors(v) {
			if !eliminated[u] {
				nb = append(nb, u)
			}
		}
		bag := append([]int{v}, nb...)
		bi := d.AddBag(bag)
		bagOf[v] = bi
		if len(nb) > 0 {
			// Connect to the neighbor eliminated soonest.
			best := nb[0]
			for _, u := range nb[1:] {
				if pos[u] < pos[best] {
					best = u
				}
			}
			edges = append(edges, pending{bi, best})
		}
		for i := 0; i < len(nb); i++ {
			for j := i + 1; j < len(nb); j++ {
				h.AddEdge(nb[i], nb[j])
			}
		}
		eliminated[v] = true
	}
	for _, e := range edges {
		d.AddEdge(e.from, bagOf[e.toVertex])
	}
	// Isolated components: bags of vertices with no remaining neighbors are
	// roots; chain extra roots together so the bag graph is a tree.
	if len(d.Edges) < len(d.Bags)-1 {
		adj := d.adjacency()
		comp := make([]int, len(d.Bags))
		for i := range comp {
			comp[i] = -1
		}
		c := 0
		var roots []int
		for i := range d.Bags {
			if comp[i] != -1 {
				continue
			}
			roots = append(roots, i)
			stack := []int{i}
			comp[i] = c
			for len(stack) > 0 {
				v := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, u := range adj[v] {
					if comp[u] == -1 {
						comp[u] = c
						stack = append(stack, u)
					}
				}
			}
			c++
		}
		for i := 1; i < len(roots); i++ {
			d.AddEdge(roots[0], roots[i])
		}
	}
	return d, nil
}
