package treewidth

import (
	"fmt"
	"math/rand"
	"testing"

	"cqbound/internal/database"
	"cqbound/internal/relation"
)

// randomKeyedPair builds relations R(a,b,...) and S(k, d1..d_{j-1}) where
// S's first column is a key, with values drawn so that joins happen.
func randomKeyedPair(rng *rand.Rand, rSize, sArity, universe int) (*relation.Relation, *relation.Relation) {
	r := relation.New("R", "ra", "rb")
	for i := 0; i < rSize; i++ {
		r.MustInsert(
			relation.V(fmt.Sprintf("u%d", rng.Intn(universe))),
			relation.V(fmt.Sprintf("k%d", rng.Intn(universe))),
		)
	}
	attrs := make([]string, sArity)
	for i := range attrs {
		attrs[i] = fmt.Sprintf("s%d", i)
	}
	s := relation.New("S", attrs...)
	for k := 0; k < universe; k++ {
		row := make(relation.Tuple, sArity)
		row[0] = relation.V(fmt.Sprintf("k%d", k))
		for i := 1; i < sArity; i++ {
			row[i] = relation.V(fmt.Sprintf("w%d", rng.Intn(universe)))
		}
		if rng.Intn(3) > 0 { // leave some keys dangling
			s.MustInsert(row...)
		}
	}
	return r, s
}

func TestKeyedJoinDecompositionBound(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		sArity := 2 + rng.Intn(3)
		r, s := randomKeyedPair(rng, 8+rng.Intn(10), sArity, 5)
		if !s.CheckKey([]int{0}) {
			t.Fatal("generator broke the key")
		}
		g := database.GaifmanOf(r, s)
		if g.N() == 0 {
			continue
		}
		d, omega, err := Heuristic(g)
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(g, d); err != nil {
			t.Fatalf("trial %d: input decomposition invalid: %v", trial, err)
		}
		lifted, err := KeyedJoinDecomposition(g, d, r, s, 1, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Theorem 5.5 width bound.
		if w, bound := lifted.Width(), sArity*(omega+1)-1; w > bound {
			t.Fatalf("trial %d: lifted width %d exceeds j(ω+1)-1 = %d", trial, w, bound)
		}
		// The lifted decomposition must be valid for the Gaifman graph of
		// the join result (plus untouched input values).
		joined, err := relation.EquiJoin(r, s, [][2]int{{1, 0}})
		if err != nil {
			t.Fatal(err)
		}
		if joined.Size() == 0 {
			continue
		}
		h := database.GaifmanOf(joined)
		relabeled, err := lifted.RelabelTo(g, h)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := Validate(h, relabeled); err != nil {
			t.Fatalf("trial %d: lifted decomposition invalid for join result: %v", trial, err)
		}
	}
}

func TestKeyedJoinRejectsNonKey(t *testing.T) {
	r := relation.New("R", "a")
	r.Add("x")
	s := relation.New("S", "b", "c")
	s.Add("x", "1")
	s.Add("x", "2") // b not a key
	g := database.GaifmanOf(r, s)
	d, _, err := Heuristic(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := KeyedJoinDecomposition(g, d, r, s, 0, 0); err == nil {
		t.Fatal("accepted non-key join column")
	}
}
