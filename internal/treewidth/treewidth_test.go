package treewidth

import (
	"math/rand"
	"testing"

	"cqbound/internal/graph"
)

func TestExactKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"single", graph.Path(1), 0},
		{"edge", graph.Path(2), 1},
		{"path5", graph.Path(5), 1},
		{"cycle5", graph.Cycle(5), 2},
		{"K4", graph.Complete(4), 3},
		{"K6", graph.Complete(6), 5},
		{"grid3x3", graph.Grid(3, 3), 3},
		{"grid2x5", graph.Grid(2, 5), 2},
		{"grid3x4", graph.Grid(3, 4), 3},
		{"grid4x4", graph.Grid(4, 4), 4},
	}
	for _, c := range cases {
		tw, order, err := Exact(c.g)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if tw != c.want {
			t.Errorf("%s: treewidth = %d, want %d", c.name, tw, c.want)
		}
		// The optimal order must reproduce the width as a decomposition.
		d, err := FromEliminationOrder(c.g, order)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if err := Validate(c.g, d); err != nil {
			t.Fatalf("%s: invalid decomposition: %v", c.name, err)
		}
		if d.Width() != c.want {
			t.Errorf("%s: decomposition width = %d, want %d", c.name, d.Width(), c.want)
		}
	}
}

func TestExactEmptyAndDisconnected(t *testing.T) {
	g := graph.New()
	tw, _, err := Exact(g)
	if err != nil || tw != -1 {
		t.Fatalf("empty graph: tw=%d err=%v", tw, err)
	}
	// Two disjoint edges.
	h := graph.New()
	h.AddEdgeLabels("a", "b")
	h.AddEdgeLabels("c", "d")
	tw, order, err := Exact(h)
	if err != nil || tw != 1 {
		t.Fatalf("disjoint edges: tw=%d err=%v", tw, err)
	}
	d, err := FromEliminationOrder(h, order)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(h, d); err != nil {
		t.Fatalf("disconnected decomposition invalid: %v", err)
	}
}

func TestExactTooLarge(t *testing.T) {
	if _, _, err := Exact(graph.Grid(5, 5)); err == nil {
		t.Fatal("Exact accepted 25 vertices")
	}
}

func TestHeuristicUpperBoundsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		g := randomGraph(rng, 3+rng.Intn(8), 0.35)
		tw, _, err := Exact(g)
		if err != nil {
			t.Fatal(err)
		}
		d, w, err := Heuristic(g)
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(g, d); err != nil {
			t.Fatalf("trial %d: heuristic decomposition invalid: %v", trial, err)
		}
		if w < tw {
			t.Fatalf("trial %d: heuristic width %d below exact %d", trial, w, tw)
		}
	}
}

func TestLowerBoundsBelowExact(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		g := randomGraph(rng, 3+rng.Intn(8), 0.4)
		tw, _, err := Exact(g)
		if err != nil {
			t.Fatal(err)
		}
		if lb := LowerBound(g); lb > tw {
			t.Fatalf("trial %d: lower bound %d above exact %d", trial, lb, tw)
		}
		if m := MMDPlus(g); m > tw {
			t.Fatalf("trial %d: MMD+ %d above exact %d", trial, m, tw)
		}
	}
}

func TestMMDPlusGrid(t *testing.T) {
	// MMD+ on grids reaches at least 2 quickly; on K5 it reaches 4.
	if m := MMDPlus(graph.Complete(5)); m != 4 {
		t.Fatalf("MMD+(K5) = %d, want 4", m)
	}
	if m := MMDPlus(graph.Grid(4, 4)); m < 2 {
		t.Fatalf("MMD+(grid) = %d, want >= 2", m)
	}
}

func TestTreewidthIntervalLargeGraph(t *testing.T) {
	g := graph.Grid(6, 8) // 48 vertices: exact is out of reach
	lo, hi, _, err := Treewidth(g)
	if err != nil {
		t.Fatal(err)
	}
	if lo > hi {
		t.Fatalf("interval inverted: [%d,%d]", lo, hi)
	}
	if hi < 6 {
		t.Fatalf("upper bound %d below true treewidth 6", hi)
	}
	if lo < 2 {
		t.Fatalf("lower bound %d too weak", lo)
	}
}

func TestValidateCatchesBadDecompositions(t *testing.T) {
	g := graph.Path(3) // 0-1-2
	// Missing vertex.
	d := &Decomposition{}
	d.AddBag([]int{0, 1})
	if err := Validate(g, d); err == nil {
		t.Fatal("accepted missing vertex")
	}
	// Missing edge.
	d2 := &Decomposition{}
	b0 := d2.AddBag([]int{0, 1})
	b1 := d2.AddBag([]int{2})
	d2.AddEdge(b0, b1)
	if err := Validate(g, d2); err == nil {
		t.Fatal("accepted missing edge {1,2}")
	}
	// Disconnected occurrences of vertex 0.
	d3 := &Decomposition{}
	c0 := d3.AddBag([]int{0, 1})
	c1 := d3.AddBag([]int{1, 2})
	c2 := d3.AddBag([]int{0})
	d3.AddEdge(c0, c1)
	d3.AddEdge(c1, c2)
	if err := Validate(g, d3); err == nil {
		t.Fatal("accepted disconnected vertex bags")
	}
	// Not a tree (cycle).
	d4 := &Decomposition{}
	e0 := d4.AddBag([]int{0, 1})
	e1 := d4.AddBag([]int{1, 2})
	e2 := d4.AddBag([]int{0, 2})
	d4.AddEdge(e0, e1)
	d4.AddEdge(e1, e2)
	d4.AddEdge(e2, e0)
	if err := Validate(g, d4); err == nil {
		t.Fatal("accepted cyclic bag graph")
	}
}

func TestFromEliminationOrderRejectsBadOrder(t *testing.T) {
	g := graph.Path(3)
	if _, err := FromEliminationOrder(g, []int{0, 1}); err == nil {
		t.Fatal("accepted short order")
	}
	if _, err := FromEliminationOrder(g, []int{0, 0, 1}); err == nil {
		t.Fatal("accepted repeated vertex")
	}
}

func TestPathBetweenBags(t *testing.T) {
	d := &Decomposition{}
	a := d.AddBag([]int{0})
	b := d.AddBag([]int{1})
	c := d.AddBag([]int{2})
	d.AddEdge(a, b)
	d.AddEdge(b, c)
	p, err := d.Path(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 3 || p[0] != a || p[2] != c {
		t.Fatalf("Path = %v", p)
	}
	if _, err := d.Path(a, a); err != nil {
		t.Fatal(err)
	}
}

func TestOrdersAreValidPermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(rng, 2+rng.Intn(10), 0.3)
		for _, order := range [][]int{MinDegreeOrder(g), MinFillOrder(g)} {
			seen := make(map[int]bool)
			for _, v := range order {
				if seen[v] || v < 0 || v >= g.N() {
					t.Fatalf("bad order %v", order)
				}
				seen[v] = true
			}
			if len(order) != g.N() {
				t.Fatalf("order length %d != %d", len(order), g.N())
			}
			d, err := FromEliminationOrder(g, order)
			if err != nil {
				t.Fatal(err)
			}
			if err := Validate(g, d); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
	}
}

func randomGraph(rng *rand.Rand, n int, p float64) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddVertex()
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}
