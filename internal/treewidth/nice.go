package treewidth

import (
	"fmt"
	"sort"

	"cqbound/internal/graph"
)

// Section 1 motivates treewidth preservation with Courcelle's theorem:
// MSO-expressible problems are linear-time on bounded-treewidth structures.
// The standard algorithmic vehicle is a *nice* tree decomposition, and this
// file provides the transformation plus one classic dynamic program
// (counting independent sets) as an executable example of what a
// treewidth-preserving view buys downstream.

// NiceKind labels the node types of a nice tree decomposition.
type NiceKind int

// Nice node kinds.
const (
	// Leaf nodes have an empty bag and no children.
	Leaf NiceKind = iota
	// Introduce nodes add one vertex to their child's bag.
	Introduce
	// Forget nodes remove one vertex from their child's bag.
	Forget
	// Join nodes merge two children with identical bags.
	Join
)

func (k NiceKind) String() string {
	switch k {
	case Leaf:
		return "leaf"
	case Introduce:
		return "introduce"
	case Forget:
		return "forget"
	default:
		return "join"
	}
}

// NiceNode is one node of a nice tree decomposition.
type NiceNode struct {
	Kind     NiceKind
	Vertex   int // the introduced/forgotten vertex, -1 otherwise
	Bag      []int
	Children []int
}

// NiceDecomposition is a rooted tree decomposition in nice form. The root
// bag is empty.
type NiceDecomposition struct {
	Nodes []NiceNode
	Root  int
}

// Width returns max bag size − 1.
func (nd *NiceDecomposition) Width() int {
	w := 0
	for _, n := range nd.Nodes {
		if len(n.Bag) > w {
			w = len(n.Bag)
		}
	}
	return w - 1
}

// MakeNice converts a valid tree decomposition of g into nice form with the
// same width (or width 0 for an edgeless graph). The root bag is empty.
func MakeNice(g *graph.Graph, d *Decomposition) (*NiceDecomposition, error) {
	if err := Validate(g, d); err != nil {
		return nil, fmt.Errorf("treewidth: MakeNice needs a valid decomposition: %v", err)
	}
	nd := &NiceDecomposition{}
	add := func(n NiceNode) int {
		sort.Ints(n.Bag)
		nd.Nodes = append(nd.Nodes, n)
		return len(nd.Nodes) - 1
	}
	// chainUp builds Introduce steps from the bag `fromNode` carries to
	// target (a superset), returning the top node.
	chainUp := func(fromNode int, target []int) int {
		cur := fromNode
		have := make(map[int]bool)
		for _, v := range nd.Nodes[fromNode].Bag {
			have[v] = true
		}
		for _, v := range target {
			if !have[v] {
				bag := append(append([]int(nil), nd.Nodes[cur].Bag...), v)
				cur = add(NiceNode{Kind: Introduce, Vertex: v, Bag: bag, Children: []int{cur}})
				have[v] = true
			}
		}
		return cur
	}
	// chainDown builds Forget steps from fromNode's bag to target (a
	// subset).
	chainDown := func(fromNode int, target []int) int {
		keep := make(map[int]bool, len(target))
		for _, v := range target {
			keep[v] = true
		}
		cur := fromNode
		for _, v := range append([]int(nil), nd.Nodes[fromNode].Bag...) {
			if !keep[v] {
				var bag []int
				for _, w := range nd.Nodes[cur].Bag {
					if w != v {
						bag = append(bag, w)
					}
				}
				cur = add(NiceNode{Kind: Forget, Vertex: v, Bag: bag, Children: []int{cur}})
			}
		}
		return cur
	}

	adj := d.adjacency()
	var build func(u, parent int) int
	build = func(u, parent int) int {
		bag := d.Bags[u]
		// Base copy of this bag: a leaf chain introducing every vertex.
		leaf := add(NiceNode{Kind: Leaf, Vertex: -1})
		pieces := []int{chainUp(leaf, bag)}
		for _, c := range adj[u] {
			if c == parent {
				continue
			}
			sub := build(c, u)
			bridged := chainUp(chainDown(sub, intersect(d.Bags[c], bag)), bag)
			pieces = append(pieces, bridged)
		}
		// Fold the pieces with Join nodes (all carry exactly bag).
		cur := pieces[0]
		for _, p := range pieces[1:] {
			cur = add(NiceNode{
				Kind:     Join,
				Vertex:   -1,
				Bag:      append([]int(nil), nd.Nodes[cur].Bag...),
				Children: []int{cur, p},
			})
		}
		return cur
	}
	if len(d.Bags) == 0 {
		nd.Root = add(NiceNode{Kind: Leaf, Vertex: -1})
		return nd, nil
	}
	top := build(0, -1)
	nd.Root = chainDown(top, nil)
	return nd, nil
}

func intersect(a, b []int) []int {
	inB := make(map[int]bool, len(b))
	for _, v := range b {
		inB[v] = true
	}
	var out []int
	for _, v := range a {
		if inB[v] {
			out = append(out, v)
		}
	}
	return out
}

// ValidateNice checks the structural invariants of a nice decomposition and
// that it is a valid tree decomposition of g.
func ValidateNice(g *graph.Graph, nd *NiceDecomposition) error {
	d := &Decomposition{}
	for i, n := range nd.Nodes {
		d.AddBag(n.Bag)
		switch n.Kind {
		case Leaf:
			if len(n.Children) != 0 || len(n.Bag) != 0 {
				return fmt.Errorf("treewidth: leaf node %d malformed", i)
			}
		case Introduce, Forget:
			if len(n.Children) != 1 {
				return fmt.Errorf("treewidth: %s node %d needs one child", n.Kind, i)
			}
			child := nd.Nodes[n.Children[0]]
			want := len(child.Bag) + 1
			if n.Kind == Forget {
				want = len(child.Bag) - 1
			}
			if len(n.Bag) != want {
				return fmt.Errorf("treewidth: %s node %d bag size %d, child %d", n.Kind, i, len(n.Bag), len(child.Bag))
			}
			inChild := contains(child.Bag, n.Vertex)
			inSelf := contains(n.Bag, n.Vertex)
			if n.Kind == Introduce && (inChild || !inSelf) {
				return fmt.Errorf("treewidth: introduce node %d vertex %d misplaced", i, n.Vertex)
			}
			if n.Kind == Forget && (!inChild || inSelf) {
				return fmt.Errorf("treewidth: forget node %d vertex %d misplaced", i, n.Vertex)
			}
		case Join:
			if len(n.Children) != 2 {
				return fmt.Errorf("treewidth: join node %d needs two children", i)
			}
			for _, c := range n.Children {
				if !equalInts(n.Bag, nd.Nodes[c].Bag) {
					return fmt.Errorf("treewidth: join node %d bag differs from child %d", i, c)
				}
			}
		}
		for _, c := range n.Children {
			d.AddEdge(i, c)
		}
	}
	if len(nd.Nodes[nd.Root].Bag) != 0 {
		return fmt.Errorf("treewidth: root bag not empty")
	}
	return Validate(g, d)
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// IndependentSetCount counts the independent sets of g (including the empty
// set) by dynamic programming over a nice tree decomposition — the
// Courcelle-style computation that motivates treewidth preservation in
// Section 1. Runs in O(2^w · |nodes|) for width w.
func IndependentSetCount(g *graph.Graph, nd *NiceDecomposition) (uint64, error) {
	if err := ValidateNice(g, nd); err != nil {
		return 0, err
	}
	// states[n] maps a bitmask over node n's bag (positions in sorted bag
	// order) to the number of independent sets below n whose intersection
	// with the bag is exactly that subset.
	var solve func(n int) map[uint32]uint64
	solve = func(n int) map[uint32]uint64 {
		node := nd.Nodes[n]
		switch node.Kind {
		case Leaf:
			return map[uint32]uint64{0: 1}
		case Introduce:
			childStates := solve(node.Children[0])
			childBag := nd.Nodes[node.Children[0]].Bag
			vPos := indexOf(node.Bag, node.Vertex)
			out := make(map[uint32]uint64, 2*len(childStates))
			for cs, count := range childStates {
				// Re-index the child mask into this bag's positions.
				base := remask(cs, childBag, node.Bag)
				out[base] += count
				// Add v if independent of the selected bag vertices.
				ok := true
				for i, w := range node.Bag {
					if base&(1<<uint(i)) != 0 && g.HasEdge(node.Vertex, w) {
						ok = false
						break
					}
				}
				if ok {
					out[base|1<<uint(vPos)] += count
				}
			}
			return out
		case Forget:
			childStates := solve(node.Children[0])
			childBag := nd.Nodes[node.Children[0]].Bag
			out := make(map[uint32]uint64, len(childStates))
			for cs, count := range childStates {
				masked := cs &^ (1 << uint(indexOf(childBag, node.Vertex)))
				out[remask(masked, childBag, node.Bag)] += count
			}
			return out
		default: // Join
			left := solve(node.Children[0])
			right := solve(node.Children[1])
			out := make(map[uint32]uint64, len(left))
			for s, lc := range left {
				if rc, ok := right[s]; ok {
					out[s] += lc * rc
				}
			}
			return out
		}
	}
	states := solve(nd.Root)
	return states[0], nil
}

func indexOf(sorted []int, v int) int {
	i := sort.SearchInts(sorted, v)
	if i < len(sorted) && sorted[i] == v {
		return i
	}
	return -1
}

// remask translates a bitmask over fromBag positions into toBag positions
// (vertices present in the mask must exist in toBag).
func remask(mask uint32, fromBag, toBag []int) uint32 {
	var out uint32
	for i, v := range fromBag {
		if mask&(1<<uint(i)) != 0 {
			out |= 1 << uint(indexOf(toBag, v))
		}
	}
	return out
}
