package treewidth

import (
	"math/rand"
	"testing"

	"cqbound/internal/graph"
)

func niceFor(t *testing.T, g *graph.Graph) *NiceDecomposition {
	t.Helper()
	d, _, err := Heuristic(g)
	if err != nil {
		t.Fatal(err)
	}
	nd, err := MakeNice(g, d)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateNice(g, nd); err != nil {
		t.Fatalf("nice decomposition invalid: %v", err)
	}
	return nd
}

func TestMakeNicePreservesWidth(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Path(6), graph.Cycle(7), graph.Complete(5), graph.Grid(3, 4),
	} {
		d, w, err := Heuristic(g)
		if err != nil {
			t.Fatal(err)
		}
		nd, err := MakeNice(g, d)
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidateNice(g, nd); err != nil {
			t.Fatal(err)
		}
		if nd.Width() != w {
			t.Fatalf("nice width %d != decomposition width %d", nd.Width(), w)
		}
	}
}

func TestMakeNiceRejectsInvalid(t *testing.T) {
	g := graph.Path(3)
	bad := &Decomposition{}
	bad.AddBag([]int{0, 1}) // vertex 2 missing
	if _, err := MakeNice(g, bad); err == nil {
		t.Fatal("MakeNice accepted an invalid decomposition")
	}
}

func bruteForceIndependentSets(g *graph.Graph) uint64 {
	n := g.N()
	var count uint64
	for mask := 0; mask < 1<<n; mask++ {
		ok := true
		for u := 0; u < n && ok; u++ {
			if mask&(1<<u) == 0 {
				continue
			}
			for v := u + 1; v < n; v++ {
				if mask&(1<<v) != 0 && g.HasEdge(u, v) {
					ok = false
					break
				}
			}
		}
		if ok {
			count++
		}
	}
	return count
}

func TestIndependentSetCountKnown(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want uint64
	}{
		{"single vertex", graph.Path(1), 2},
		{"edge", graph.Path(2), 3},
		{"path4 (Fibonacci)", graph.Path(4), 8},
		{"path5", graph.Path(5), 13},
		{"triangle", graph.Cycle(3), 4},
		{"C5 (Lucas)", graph.Cycle(5), 11},
		{"K4", graph.Complete(4), 5},
	}
	for _, c := range cases {
		nd := niceFor(t, c.g)
		got, err := IndependentSetCount(c.g, nd)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.want {
			t.Errorf("%s: count = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestIndependentSetCountRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(rng, 2+rng.Intn(9), 0.3)
		nd := niceFor(t, g)
		got, err := IndependentSetCount(g, nd)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForceIndependentSets(g)
		if got != want {
			t.Fatalf("trial %d: DP count %d != brute force %d", trial, got, want)
		}
	}
}

func TestIndependentSetCountGrid(t *testing.T) {
	// 2xN grid independent sets follow a known linear recurrence; check
	// against brute force for a 2x5 grid (10 vertices).
	g := graph.Grid(2, 5)
	nd := niceFor(t, g)
	got, err := IndependentSetCount(g, nd)
	if err != nil {
		t.Fatal(err)
	}
	if want := bruteForceIndependentSets(g); got != want {
		t.Fatalf("grid count = %d, want %d", got, want)
	}
}
