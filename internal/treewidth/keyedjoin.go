package treewidth

import (
	"fmt"

	"cqbound/internal/graph"
	"cqbound/internal/relation"
)

// KeyedJoinDecomposition implements the constructive proof of Theorem 5.5:
// given a tree decomposition d of the Gaifman graph g of ⟨R, S⟩ and a keyed
// join R ⋈_{A=B} S (column sCol must be a key of S), it produces a tree
// decomposition that covers every output tuple of the join. For each joined
// pair (t, u) the values of u except the join value are added to every bag
// on the path between a bag containing t's values and a bag containing u's
// values (Observation 5.6 keeps the result a valid decomposition). If S has
// arity j and d has width ω, the result has width at most j(ω+1) − 1.
//
// The returned decomposition is over g's vertex ids; use RelabelTo to
// validate it against the Gaifman graph of the join result.
func KeyedJoinDecomposition(g *graph.Graph, d *Decomposition, r, s *relation.Relation, rCol, sCol int) (*Decomposition, error) {
	if rCol < 0 || rCol >= r.Arity() || sCol < 0 || sCol >= s.Arity() {
		return nil, fmt.Errorf("treewidth: join columns out of range")
	}
	if !s.CheckKey([]int{sCol}) {
		return nil, fmt.Errorf("treewidth: column %d is not a key of %s", sCol, s.Name)
	}
	// Mutable bag sets.
	bags := make([]map[int]bool, len(d.Bags))
	for i, b := range d.Bags {
		bags[i] = make(map[int]bool, len(b))
		for _, v := range b {
			bags[i][v] = true
		}
	}
	vertexOf := func(val relation.Value) (int, error) {
		v, ok := g.VertexByLabel(val.String())
		if !ok {
			return 0, fmt.Errorf("treewidth: value %q not in Gaifman graph", val)
		}
		return v, nil
	}
	tupleVertices := func(t relation.Tuple) ([]int, error) {
		seen := make(map[int]bool, len(t))
		var out []int
		for _, val := range t {
			v, err := vertexOf(val)
			if err != nil {
				return nil, err
			}
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
		return out, nil
	}
	// homeBag finds a bag containing all listed vertices; tuple values form
	// a clique in g, so one must exist in a valid decomposition.
	homeBag := func(vs []int) (int, error) {
		for i := range bags {
			all := true
			for _, v := range vs {
				if !bags[i][v] {
					all = false
					break
				}
			}
			if all {
				return i, nil
			}
		}
		return 0, fmt.Errorf("treewidth: no bag contains clique %v (decomposition invalid for graph?)", vs)
	}

	// Index S by its key column; B a key means at most one tuple per value.
	sByKey := make(map[relation.Value]relation.Tuple, s.Size())
	sHome := make(map[relation.Value]int, s.Size())
	for _, u := range s.Tuples() {
		sByKey[u[sCol]] = u
		vs, err := tupleVertices(u)
		if err != nil {
			return nil, err
		}
		h, err := homeBag(vs)
		if err != nil {
			return nil, err
		}
		sHome[u[sCol]] = h
	}

	for _, t := range r.Tuples() {
		u, ok := sByKey[t[rCol]]
		if !ok {
			continue
		}
		tvs, err := tupleVertices(t)
		if err != nil {
			return nil, err
		}
		tb, err := homeBag(tvs)
		if err != nil {
			return nil, err
		}
		ub := sHome[u[sCol]]
		path, err := d.Path(tb, ub)
		if err != nil {
			return nil, err
		}
		// W: values of u except the join value.
		var w []int
		for i, val := range u {
			if i == sCol {
				continue
			}
			v, err := vertexOf(val)
			if err != nil {
				return nil, err
			}
			w = append(w, v)
		}
		for _, bi := range path {
			for _, v := range w {
				bags[bi][v] = true
			}
		}
	}

	out := &Decomposition{Edges: append([][2]int(nil), d.Edges...)}
	for _, b := range bags {
		var bag []int
		for v := range b {
			bag = append(bag, v)
		}
		out.AddBag(bag)
	}
	return out, nil
}

// RelabelTo maps a decomposition over graph from onto graph to, matching
// vertices by label. Labels of from absent in to are dropped from bags;
// every vertex of to must carry a label present in from.
func (d *Decomposition) RelabelTo(from, to *graph.Graph) (*Decomposition, error) {
	for v := 0; v < to.N(); v++ {
		if _, ok := from.VertexByLabel(to.Label(v)); !ok {
			return nil, fmt.Errorf("treewidth: target vertex %q unknown in source graph", to.Label(v))
		}
	}
	out := &Decomposition{Edges: append([][2]int(nil), d.Edges...)}
	for _, b := range d.Bags {
		var bag []int
		for _, v := range b {
			if nv, ok := to.VertexByLabel(from.Label(v)); ok {
				bag = append(bag, nv)
			}
		}
		out.AddBag(bag)
	}
	return out, nil
}
