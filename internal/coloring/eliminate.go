package coloring

import (
	"fmt"
	"math/big"

	"cqbound/internal/chase"
	"cqbound/internal/cq"
)

// Elimination is the outcome of the functional-dependency removal procedure
// from the proof of Theorem 4.4. It transforms a chased query with simple
// (variable-level) dependencies into a query Q' with no dependencies at all,
// such that C(chase(Q)) = C(Q') (Lemma 4.7) and the worst-case size increase
// is preserved.
type Elimination struct {
	// Query is Q': every atom renamed to a distinct relation, atoms extended
	// with functionally determined variables, and no functional dependencies.
	Query *cq.Query
	// Log records the dependencies in removal order; PullBack replays it
	// backwards to translate colorings of Q' into colorings of the input.
	Log []cq.VarFD
}

// EliminateSimpleFDs applies the Theorem 4.4 procedure to q, which should
// already be chased and whose lifted dependencies must all be simple
// (single-variable left-hand sides). Rounds follow the first-occurrence
// variable order; within round i, every dependency X_i -> X_j is removed by
//
//   - appending X_j to every atom (head included) that contains X_i but
//     not X_j,
//   - adding X_k -> X_j for every dependency X_k -> X_i currently present,
//   - deleting X_i -> X_j.
//
// Only dependencies with later left-hand sides are ever added, so the
// procedure terminates with an empty dependency set.
func EliminateSimpleFDs(q *cq.Query) (*Elimination, error) {
	work := q.Clone()
	// Q* step: each body atom becomes a distinct relation so that extending
	// one atom's positions cannot clash with another occurrence.
	for i := range work.Body {
		work.Body[i].Relation = fmt.Sprintf("%s__%d", work.Body[i].Relation, i+1)
	}
	fds := q.VarFDs()
	for _, f := range fds {
		if len(f.From) != 1 {
			return nil, fmt.Errorf("coloring: EliminateSimpleFDs requires simple dependencies, got %s", f)
		}
	}
	type sfd struct{ from, to cq.Variable }
	set := make(map[sfd]bool)
	var list []sfd
	addFD := func(f sfd) {
		if f.from == f.to || set[f] {
			return
		}
		set[f] = true
		list = append(list, f)
	}
	for _, f := range fds {
		addFD(sfd{f.From[0], f.To})
	}

	extend := func(a *cq.Atom, x, y cq.Variable) {
		hasX, hasY := false, false
		for _, v := range a.Vars {
			if v == x {
				hasX = true
			}
			if v == y {
				hasY = true
			}
		}
		if hasX && !hasY {
			a.Vars = append(a.Vars, y)
		}
	}

	elim := &Elimination{}
	for _, xi := range q.Variables() {
		for {
			// Find a live dependency with LHS xi.
			var cur sfd
			found := false
			for _, f := range list {
				if set[f] && f.from == xi {
					cur, found = f, true
					break
				}
			}
			if !found {
				break
			}
			extend(&work.Head, cur.from, cur.to)
			for i := range work.Body {
				extend(&work.Body[i], cur.from, cur.to)
			}
			for _, f := range list {
				if set[f] && f.to == xi {
					addFD(sfd{f.from, cur.to})
				}
			}
			delete(set, cur)
			elim.Log = append(elim.Log, cq.VarFD{From: []cq.Variable{cur.from}, To: cur.to})
		}
	}
	for f := range set {
		return nil, fmt.Errorf("coloring: internal: dependency %s -> %s survived elimination", f.from, f.to)
	}
	work.FDs = nil
	elim.Query = work
	return elim, nil
}

// PullBack translates a coloring of the eliminated query Q' into a coloring
// of the original (chased) query by replaying the removal log backwards with
// the Lemma 4.7 rule L1(X) := L2(X) ∪ L2(Y). The result is valid for the
// original dependency set and attains the same color number.
func (e *Elimination) PullBack(l Coloring) Coloring {
	out := l.Clone()
	for i := len(e.Log) - 1; i >= 0; i-- {
		x, y := e.Log[i].From[0], e.Log[i].To
		out[x] = out.Label(x).Union(out.Label(y))
	}
	return out
}

// NumberWithSimpleFDs computes C(chase(Q)) along the Theorem 4.4 pipeline:
// chase, eliminate all (simple) dependencies, solve the Proposition 3.6
// linear program, and pull the optimal coloring back to chase(Q). It returns
// the color number, a valid coloring of chase(Q) attaining it, and chase(Q)
// itself. It fails if some lifted dependency of chase(Q) is compound; use
// the entropy-LP formulation (Proposition 6.10) in that case.
func NumberWithSimpleFDs(q *cq.Query) (*big.Rat, Coloring, *cq.Query, error) {
	ch := chase.Chase(q).Query
	elim, err := EliminateSimpleFDs(ch)
	if err != nil {
		return nil, nil, nil, err
	}
	val, col, err := NumberNoFDs(elim.Query)
	if err != nil {
		return nil, nil, nil, err
	}
	pulled := elim.PullBack(col)
	if err := Validate(ch, pulled); err != nil {
		return nil, nil, nil, fmt.Errorf("coloring: internal: pulled-back coloring invalid: %v", err)
	}
	got, err := Number(ch, pulled)
	if err != nil {
		return nil, nil, nil, err
	}
	if got.Cmp(val) != 0 {
		return nil, nil, nil, fmt.Errorf("coloring: internal: pulled-back color number %v != LP value %v", got, val)
	}
	return val, pulled, ch, nil
}

// NumberSimple computes C(Q) of the query itself — without chasing — for
// queries whose lifted dependencies are all simple, by eliminating the
// dependencies (Lemma 4.7 preserves the color number) and solving the
// Proposition 3.6 program. Note that the paper's size bounds use
// C(chase(Q)), not C(Q); see NumberWithSimpleFDs. Example 3.4 is a query
// where the two differ (C(Q) = 2 but C(chase(Q)) = 1).
func NumberSimple(q *cq.Query) (*big.Rat, Coloring, error) {
	elim, err := EliminateSimpleFDs(q)
	if err != nil {
		return nil, nil, err
	}
	val, col, err := NumberNoFDs(elim.Query)
	if err != nil {
		return nil, nil, err
	}
	pulled := elim.PullBack(col)
	if err := Validate(q, pulled); err != nil {
		return nil, nil, fmt.Errorf("coloring: internal: pulled-back coloring invalid: %v", err)
	}
	got, err := Number(q, pulled)
	if err != nil {
		return nil, nil, err
	}
	if got.Cmp(val) != 0 {
		return nil, nil, fmt.Errorf("coloring: internal: pulled-back color number %v != LP value %v", got, val)
	}
	return val, pulled, nil
}

// TwoColoringNoFDs decides, for a query without functional dependencies,
// whether a valid coloring with 2 colors and color number 2 exists
// (Proposition 5.9). Per the proposition's proof this holds exactly when two
// distinct head variables never occur together in a body atom; the witness
// coloring labels one {1}, the other {2}.
func TwoColoringNoFDs(q *cq.Query) (Coloring, bool) {
	head := q.HeadVars()
	for i := 0; i < len(head); i++ {
		for j := i + 1; j < len(head); j++ {
			if !coOccur(q, head[i], head[j]) {
				return Coloring{
					head[i]: NewColorSet(1),
					head[j]: NewColorSet(2),
				}, true
			}
		}
	}
	return nil, false
}

// TwoColoringSimpleFDs decides, for a query with simple functional
// dependencies, whether chase(Q) admits a valid coloring with 2 colors and
// color number 2 (Theorem 5.10). It runs the chase, eliminates the
// dependencies, applies the Proposition 5.9 pair test to Q', and pulls the
// witness back to chase(Q). The returned coloring, when present, is a valid
// 2-color coloring of chase(Q) with color number 2.
func TwoColoringSimpleFDs(q *cq.Query) (Coloring, *cq.Query, bool, error) {
	ch := chase.Chase(q).Query
	elim, err := EliminateSimpleFDs(ch)
	if err != nil {
		return nil, nil, false, err
	}
	col, ok := TwoColoringNoFDs(elim.Query)
	if !ok {
		return nil, ch, false, nil
	}
	pulled := elim.PullBack(col)
	if err := Validate(ch, pulled); err != nil {
		return nil, nil, false, fmt.Errorf("coloring: internal: pulled-back 2-coloring invalid: %v", err)
	}
	n, err := Number(ch, pulled)
	if err != nil || n.Cmp(big.NewRat(2, 1)) != 0 {
		return nil, nil, false, fmt.Errorf("coloring: internal: pulled-back 2-coloring has number %v (err %v)", n, err)
	}
	return pulled, ch, true, nil
}

func coOccur(q *cq.Query, x, y cq.Variable) bool {
	for _, a := range q.Body {
		hasX, hasY := false, false
		for _, v := range a.Vars {
			if v == x {
				hasX = true
			}
			if v == y {
				hasY = true
			}
		}
		if hasX && hasY {
			return true
		}
	}
	return false
}
