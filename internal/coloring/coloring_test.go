package coloring

import (
	"math/big"
	"testing"

	"cqbound/internal/cq"
)

func ratEq(t *testing.T, got *big.Rat, n, d int64, what string) {
	t.Helper()
	if got.Cmp(big.NewRat(n, d)) != 0 {
		t.Fatalf("%s = %v, want %d/%d", what, got, n, d)
	}
}

func TestExample33Triangle(t *testing.T) {
	// Example 3.3: C(Q) = 3/2, attained with one color per variable.
	q := cq.MustParse("S(X,Y,Z) <- R(X,Y), R(X,Z), R(Y,Z).")
	val, col, err := NumberNoFDs(q)
	if err != nil {
		t.Fatal(err)
	}
	ratEq(t, val, 3, 2, "C(Q)")
	if err := Validate(q, col); err != nil {
		t.Fatalf("extracted coloring invalid: %v", err)
	}
	n, err := Number(q, col)
	if err != nil {
		t.Fatal(err)
	}
	ratEq(t, n, 3, 2, "Number(extracted)")
}

func TestExample34ColorNumbers(t *testing.T) {
	// Example 3.4: C(Q) = 2 with the key FDs; C(chase(Q)) = 1.
	src := "R0(W,X,Y,Z) <- R1(W,X,Y), R1(W,W,W), R2(Y,Z).\nkey R1[1]."
	q := cq.MustParse(src)

	// The paper's hand coloring: L(W)={1}, L(X)=L(Y)=∅, L(Z)={2}.
	hand := Coloring{"W": NewColorSet(1), "Z": NewColorSet(2)}
	if err := Validate(q, hand); err != nil {
		t.Fatalf("paper coloring rejected: %v", err)
	}
	n, err := Number(q, hand)
	if err != nil {
		t.Fatal(err)
	}
	ratEq(t, n, 2, 1, "Number(hand)")

	// C(Q) via elimination without chasing.
	val, col, err := NumberSimple(q)
	if err != nil {
		t.Fatal(err)
	}
	ratEq(t, val, 2, 1, "C(Q)")
	if err := Validate(q, col); err != nil {
		t.Fatalf("C(Q) coloring invalid: %v", err)
	}

	// C(chase(Q)) = 1 via the full Theorem 4.4 pipeline.
	cval, ccol, ch, err := NumberWithSimpleFDs(q)
	if err != nil {
		t.Fatal(err)
	}
	ratEq(t, cval, 1, 1, "C(chase(Q))")
	if err := Validate(ch, ccol); err != nil {
		t.Fatalf("chase coloring invalid: %v", err)
	}
}

func TestValidateRejectsFDViolation(t *testing.T) {
	q := cq.MustParse("Q(X,Y) <- R(X,Y).\nfd R[1] -> R[2].")
	bad := Coloring{"Y": NewColorSet(1)}
	if err := Validate(q, bad); err == nil {
		t.Fatal("Validate accepted coloring violating X -> Y")
	}
	good := Coloring{"X": NewColorSet(1), "Y": NewColorSet(1)}
	if err := Validate(q, good); err != nil {
		t.Fatalf("Validate rejected good coloring: %v", err)
	}
}

func TestValidateRejectsAllEmpty(t *testing.T) {
	q := cq.MustParse("Q(X) <- R(X).")
	if err := Validate(q, Coloring{}); err == nil {
		t.Fatal("Validate accepted the all-empty coloring")
	}
}

func TestValidateRejectsUnknownVariable(t *testing.T) {
	q := cq.MustParse("Q(X) <- R(X).")
	if err := Validate(q, Coloring{"Zed": NewColorSet(1)}); err == nil {
		t.Fatal("Validate accepted label on unknown variable")
	}
}

func TestValidateCompoundFD(t *testing.T) {
	q := cq.MustParse("Q(X,Y,Z) <- R(X,Y,Z).\nfd R[1],R[2] -> R[3].")
	// L(Z) ⊆ L(X) ∪ L(Y): colors split across the LHS are fine.
	good := Coloring{"X": NewColorSet(1), "Y": NewColorSet(2), "Z": NewColorSet(1, 2)}
	if err := Validate(q, good); err != nil {
		t.Fatalf("Validate rejected compound-FD coloring: %v", err)
	}
	bad := Coloring{"X": NewColorSet(1), "Z": NewColorSet(2)}
	if err := Validate(q, bad); err == nil {
		t.Fatal("Validate accepted violating compound-FD coloring")
	}
}

func TestNumberErrorWhenBodyColorless(t *testing.T) {
	q := cq.MustParse("Q(X) <- R(X).")
	// Invalid coloring (no color anywhere) makes the ratio undefined.
	if _, err := Number(q, Coloring{}); err == nil {
		t.Fatal("Number accepted colorless body")
	}
}

func TestNumberNoFDsProjection(t *testing.T) {
	// Chain with projection: Q(X,Z) <- R(X,Y), S(Y,Z). Head vars X and Z
	// occur in different atoms: C = 2.
	q := cq.MustParse("Q(X,Z) <- R(X,Y), S(Y,Z).")
	val, col, err := NumberNoFDs(q)
	if err != nil {
		t.Fatal(err)
	}
	ratEq(t, val, 2, 1, "C(Q)")
	if err := Validate(q, col); err != nil {
		t.Fatal(err)
	}
}

func TestNumberNoFDsSingleAtomHead(t *testing.T) {
	// All head variables inside one atom: C = 1.
	q := cq.MustParse("Q(X,Y) <- R(X,Y), S(Y,Z).")
	val, _, err := NumberNoFDs(q)
	if err != nil {
		t.Fatal(err)
	}
	ratEq(t, val, 1, 1, "C(Q)")
}

func TestExample46Pipeline(t *testing.T) {
	// Example 4.6: chase(Q) = Q* = R0(X1) <- R1(X1,X2,X3), R2(X1,X4),
	// R3(X5,X1), first attribute of each relation a key. The head only
	// holds X1, so C(chase(Q)) = 1.
	q := cq.MustParse("R0(X1) <- R1(X1,X2,X3), R2(X1,X4), R3(X5,X1).\nkey R1[1].\nkey R2[1].\nkey R3[1].")
	val, col, ch, err := NumberWithSimpleFDs(q)
	if err != nil {
		t.Fatal(err)
	}
	ratEq(t, val, 1, 1, "C(chase(Q))")
	if err := Validate(ch, col); err != nil {
		t.Fatal(err)
	}

	// The elimination must reproduce the atom extensions of Example 4.6:
	// after removing X1 -> X2, X3, X4 the R3 atom carries X5,X1 plus the
	// determined variables.
	elim, err := EliminateSimpleFDs(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(elim.Query.FDs) != 0 {
		t.Fatalf("Q' still has FDs: %v", elim.Query.FDs)
	}
	var r3 cq.Atom
	for _, a := range elim.Query.Body {
		if a.Relation == "R3__3" {
			r3 = a
		}
	}
	got := r3.VarSet()
	for _, v := range []cq.Variable{"X5", "X1", "X2", "X3", "X4"} {
		if !got[v] {
			t.Fatalf("R3 extension = %v, missing %s", r3, v)
		}
	}
}

func TestEliminateRejectsCompound(t *testing.T) {
	q := cq.MustParse("Q(X,Y,Z) <- R(X,Y,Z).\nfd R[1],R[2] -> R[3].")
	if _, err := EliminateSimpleFDs(q); err == nil {
		t.Fatal("EliminateSimpleFDs accepted compound dependency")
	}
}

func TestEliminateCompoundPositionalButSimpleLifted(t *testing.T) {
	// R(X,X,Y): positional FD R[1],R[2]->R[3] lifts to the simple X -> Y.
	q := cq.MustParse("Q(X,Y) <- R(X,X,Y).\nfd R[1],R[2] -> R[3].")
	if _, err := EliminateSimpleFDs(q); err != nil {
		t.Fatalf("EliminateSimpleFDs: %v", err)
	}
	val, _, _, err := NumberWithSimpleFDs(q)
	if err != nil {
		t.Fatal(err)
	}
	ratEq(t, val, 1, 1, "C(chase(Q))")
}

func TestTwoColoringNoFDs(t *testing.T) {
	// Example 2.1's query: Y and Z never co-occur, blowup possible.
	q := cq.MustParse("R2(X,Y,Z) <- R(X,Y), R(X,Z).")
	col, ok := TwoColoringNoFDs(q)
	if !ok {
		t.Fatal("expected a 2-coloring with color number 2")
	}
	if err := Validate(q, col); err != nil {
		t.Fatal(err)
	}
	n, err := Number(q, col)
	if err != nil {
		t.Fatal(err)
	}
	ratEq(t, n, 2, 1, "Number(two-coloring)")

	// All head pairs co-occur: treewidth preserved.
	q2 := cq.MustParse("Q(X,Y) <- R(X,Y), S(Y,Z).")
	if _, ok := TwoColoringNoFDs(q2); ok {
		t.Fatal("unexpected 2-coloring for single-atom head")
	}
	// Triangle: all pairs co-occur.
	q3 := cq.MustParse("S(X,Y,Z) <- R(X,Y), R(X,Z), R(Y,Z).")
	if _, ok := TwoColoringNoFDs(q3); ok {
		t.Fatal("unexpected 2-coloring for triangle")
	}
}

func TestTwoColoringSimpleFDsKeyKillsBlowup(t *testing.T) {
	// Without keys the chain query Q(X,Z) <- R(X,Y), S(Y,Z) blows up
	// treewidth; with Y a key of S the join is keyed and Q' gains Z inside
	// R's atom, so every head pair co-occurs.
	noKey := cq.MustParse("Q(X,Z) <- R(X,Y), S(Y,Z).")
	if _, ok := TwoColoringNoFDs(noKey); !ok {
		t.Fatal("chain without keys should admit a 2-coloring")
	}
	keyed := cq.MustParse("Q(X,Z) <- R(X,Y), S(Y,Z).\nkey S[1].")
	_, _, ok, err := TwoColoringSimpleFDs(keyed)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("keyed chain should not admit a 2-coloring with number 2")
	}
}

func TestTwoColoringSimpleFDsStillPossible(t *testing.T) {
	// Key on R's first position does not connect Y and Z:
	// Q(Y,Z) <- R(X,Y), R2(X,Z): blowup still possible with key R[1]? Here
	// X -> Y (key) extends atoms with Y... choose FDs that leave a free pair.
	q := cq.MustParse("Q(Y,Z) <- R(X,Y), S(W,Z).\nkey R[1].")
	col, ch, ok, err := TwoColoringSimpleFDs(q)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("expected 2-coloring: Y and Z are in unrelated atoms")
	}
	if err := Validate(ch, col); err != nil {
		t.Fatal(err)
	}
}

func TestColorSetOps(t *testing.T) {
	s := NewColorSet(1, 3)
	u := s.Union(NewColorSet(2))
	if len(u) != 3 || !u[1] || !u[2] || !u[3] {
		t.Fatalf("Union = %v", u.Sorted())
	}
	if !NewColorSet(1).SubsetOf(s) || NewColorSet(2).SubsetOf(s) {
		t.Fatal("SubsetOf wrong")
	}
	got := s.Sorted()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("Sorted = %v", got)
	}
}

func TestCloneIndependent(t *testing.T) {
	c := Coloring{"X": NewColorSet(1)}
	d := c.Clone()
	d["X"][2] = true
	if c["X"][2] {
		t.Fatal("Clone shares color sets")
	}
}

func TestTotalColors(t *testing.T) {
	c := Coloring{"X": NewColorSet(1, 2), "Y": NewColorSet(2, 3)}
	if c.TotalColors() != 3 {
		t.Fatalf("TotalColors = %d", c.TotalColors())
	}
}
