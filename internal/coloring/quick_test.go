package coloring

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"cqbound/internal/chase"
	"cqbound/internal/datagen"
)

// TestQuickPipelineInvariants: on random simple-FD queries the Theorem 4.4
// pipeline returns a coloring of chase(Q) that is valid, attains the LP
// value, and never exceeds C(Q) ignoring the dependencies (colorings with
// FDs form a subset of the FD-free ones).
func TestQuickPipelineInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := datagen.RandomQuery(rng, datagen.QueryParams{
			MaxVars: 5, MaxAtoms: 4, MaxArity: 3,
			HeadFraction: 0.5, RepeatRelationProb: 0.4, SimpleFDProb: 0.35,
		})
		if !chase.Chase(q).Query.AllVarFDsSimple() {
			return true // skip compound lifts
		}
		withFDs, col, ch, err := NumberWithSimpleFDs(q)
		if err != nil {
			t.Logf("pipeline failed for %s: %v", q, err)
			return false
		}
		if err := Validate(ch, col); err != nil {
			return false
		}
		noFDs := ch.Clone()
		noFDs.FDs = nil
		ignoring, _, err := NumberNoFDs(noFDs)
		if err != nil {
			return false
		}
		// C(chase(Q)) ≤ C of the same query ignoring dependencies.
		return withFDs.Cmp(ignoring) <= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickChaseNeverIncreasesColorNumber: C(chase(Q)) ≤ C(Q)
// (Example 3.4's general principle).
func TestQuickChaseNeverIncreasesColorNumber(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := datagen.RandomQuery(rng, datagen.QueryParams{
			MaxVars: 5, MaxAtoms: 4, MaxArity: 3,
			HeadFraction: 0.5, RepeatRelationProb: 0.5, SimpleFDProb: 0.3,
		})
		if !q.AllVarFDsSimple() || !chase.Chase(q).Query.AllVarFDsSimple() {
			return true
		}
		cq1, _, err := NumberSimple(q)
		if err != nil {
			return false
		}
		cq2, _, _, err := NumberWithSimpleFDs(q)
		if err != nil {
			return false
		}
		return cq2.Cmp(cq1) <= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickColorNumberAtLeastOne: every query admits a coloring of number
// ≥ 1 (color a head variable's full dependency closure), so C ≥ 1 whenever
// the LP applies... more precisely the LP value is always ≥ 1/|body|;
// check the weaker sanity bound C > 0.
func TestQuickColorNumberPositive(t *testing.T) {
	zero := new(big.Rat)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := datagen.RandomQuery(rng, datagen.QueryParams{
			MaxVars: 5, MaxAtoms: 4, MaxArity: 3, HeadFraction: 0.5,
		})
		c, _, err := NumberNoFDs(q)
		if err != nil {
			return false
		}
		return c.Cmp(zero) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
