// Package coloring implements the paper's central tool: colorings of query
// variables (Definition 3.1) and the color number C(Q) (Definition 3.2).
// Intuitively each color is a unit of entropy a variable may carry; the color
// number is the worst-case ratio of output entropy to input entropy, and
// Section 4 shows rmax(D)^C(chase(Q)) is a tight worst-case size bound when
// the functional dependencies are simple.
package coloring

import (
	"fmt"
	"math/big"
	"sort"

	"cqbound/internal/cq"
)

// ColorSet is a set of colors, identified by small integers.
type ColorSet map[int]bool

// NewColorSet builds a set from the listed colors.
func NewColorSet(colors ...int) ColorSet {
	s := make(ColorSet, len(colors))
	for _, c := range colors {
		s[c] = true
	}
	return s
}

// Sorted returns the colors in increasing order.
func (s ColorSet) Sorted() []int {
	out := make([]int, 0, len(s))
	for c := range s {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// Union returns a new set holding s ∪ t.
func (s ColorSet) Union(t ColorSet) ColorSet {
	u := make(ColorSet, len(s)+len(t))
	for c := range s {
		u[c] = true
	}
	for c := range t {
		u[c] = true
	}
	return u
}

// SubsetOf reports whether s ⊆ t.
func (s ColorSet) SubsetOf(t ColorSet) bool {
	for c := range s {
		if !t[c] {
			return false
		}
	}
	return true
}

// Coloring assigns a label L(X) of colors to each query variable. Variables
// absent from the map are treated as having the empty label.
type Coloring map[cq.Variable]ColorSet

// Clone returns a deep copy.
func (l Coloring) Clone() Coloring {
	out := make(Coloring, len(l))
	for v, s := range l {
		cp := make(ColorSet, len(s))
		for c := range s {
			cp[c] = true
		}
		out[v] = cp
	}
	return out
}

// Label returns L(X), never nil.
func (l Coloring) Label(v cq.Variable) ColorSet {
	if s, ok := l[v]; ok {
		return s
	}
	return ColorSet{}
}

// UnionOver returns ∪_{X ∈ vars} L(X).
func (l Coloring) UnionOver(vars []cq.Variable) ColorSet {
	u := make(ColorSet)
	for _, v := range vars {
		for c := range l.Label(v) {
			u[c] = true
		}
	}
	return u
}

// TotalColors returns the number of distinct colors used anywhere.
func (l Coloring) TotalColors() int {
	u := make(ColorSet)
	for _, s := range l {
		for c := range s {
			u[c] = true
		}
	}
	return len(u)
}

// String renders the coloring deterministically, e.g. {X:{1} Y:{} Z:{2}}.
func (l Coloring) String() string {
	vars := make([]string, 0, len(l))
	for v := range l {
		vars = append(vars, string(v))
	}
	sort.Strings(vars)
	out := "{"
	for i, v := range vars {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s:%v", v, l.Label(cq.Variable(v)).Sorted())
	}
	return out + "}"
}

// Validate checks that l is a valid coloring of q per Definition 3.1:
// for every lifted functional dependency X1...Xk -> Y of the query,
// L(Y) ⊆ L(X1) ∪ ... ∪ L(Xk); and at least one variable of the query has a
// non-empty label. Variables outside var(Q) must not be labeled.
func Validate(q *cq.Query, l Coloring) error {
	known := make(map[cq.Variable]bool)
	for _, v := range q.Variables() {
		known[v] = true
	}
	someColored := false
	for v, s := range l {
		if len(s) > 0 && !known[v] {
			return fmt.Errorf("coloring: label on unknown variable %s", v)
		}
		if len(s) > 0 {
			someColored = true
		}
	}
	if !someColored {
		return fmt.Errorf("coloring: no variable has a non-empty label")
	}
	for _, fd := range q.VarFDs() {
		lhs := l.UnionOver(fd.From)
		if !l.Label(fd.To).SubsetOf(lhs) {
			return fmt.Errorf("coloring: dependency %s violated: L(%s)=%v not within %v",
				fd, fd.To, l.Label(fd.To).Sorted(), lhs.Sorted())
		}
	}
	return nil
}

// Number returns the color number of coloring l for query q per
// Definition 3.2: |∪_{X∈u0} L(X)| divided by max_{j≥1} |∪_{X∈uj} L(X)|.
// It returns an error if every body atom is colorless (the ratio is then
// undefined; this cannot happen for a valid coloring since every variable
// occurs in the body).
func Number(q *cq.Query, l Coloring) (*big.Rat, error) {
	num := len(l.UnionOver(q.Head.Vars))
	den := 0
	for _, a := range q.Body {
		if n := len(l.UnionOver(a.Vars)); n > den {
			den = n
		}
	}
	if den == 0 {
		return nil, fmt.Errorf("coloring: all body atoms are colorless")
	}
	return big.NewRat(int64(num), int64(den)), nil
}
