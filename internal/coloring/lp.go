package coloring

import (
	"fmt"
	"math/big"

	"cqbound/internal/cq"
	"cqbound/internal/lp"
)

// NumberNoFDs computes the color number C(Q) of a query, ignoring any
// functional dependencies, by solving the linear program of Proposition 3.6:
//
//	maximize   Σ_{X ∈ u0} x_X
//	subject to Σ_{X ∈ uj} x_X ≤ 1  for every body atom uj,  x ≥ 0.
//
// As the proposition's discussion shows, the rational optimum p/q converts to
// an explicit valid coloring with p colors in which each variable X receives
// q·x_X colors and no body atom sees more than q of them; the returned
// coloring achieves exactly the returned color number.
func NumberNoFDs(q *cq.Query) (*big.Rat, Coloring, error) {
	vars := q.Variables()
	if len(vars) == 0 {
		return nil, nil, fmt.Errorf("coloring: query has no variables")
	}
	prob := lp.NewProblem(lp.Maximize)
	idx := make(map[cq.Variable]int, len(vars))
	for _, v := range vars {
		idx[v] = prob.AddVariable(string(v), lp.NonNegative)
	}
	for _, v := range q.HeadVars() {
		prob.SetObjective(idx[v], lp.RI(1))
	}
	for _, a := range q.Body {
		coeffs := make(map[int]*big.Rat)
		for _, v := range a.DistinctVars() {
			coeffs[idx[v]] = lp.RI(1)
		}
		prob.AddConstraint(coeffs, lp.LE, lp.RI(1))
	}
	s := prob.SolveExact()
	if s.Status != lp.Optimal {
		return nil, nil, fmt.Errorf("coloring: color number LP is %v", s.Status)
	}
	col := coloringFromRationals(vars, func(v cq.Variable) *big.Rat { return s.X[idx[v]] })
	return s.Value, col, nil
}

// coloringFromRationals converts per-variable rational color masses into an
// explicit coloring: with q the least common denominator, variable X receives
// q·x_X fresh colors, no color shared between variables.
func coloringFromRationals(vars []cq.Variable, x func(cq.Variable) *big.Rat) Coloring {
	// Least common denominator.
	lcd := big.NewInt(1)
	for _, v := range vars {
		d := x(v).Denom()
		g := new(big.Int).GCD(nil, nil, lcd, d)
		lcd.Div(new(big.Int).Mul(lcd, d), g)
	}
	col := make(Coloring)
	next := 1
	for _, v := range vars {
		val := x(v)
		// count = val * lcd (an integer by construction).
		count := new(big.Int).Mul(val.Num(), new(big.Int).Div(lcd, val.Denom()))
		n := int(count.Int64())
		if n <= 0 {
			continue
		}
		s := make(ColorSet, n)
		for i := 0; i < n; i++ {
			s[next] = true
			next++
		}
		col[v] = s
	}
	return col
}
