// Package construct materializes the paper's worst-case database
// constructions so that every "essentially tight" claim can be measured:
//
//   - ProductWitness: the Proposition 4.5 database derived from a valid
//     coloring, achieving |Q(D)| = M^{|colors(u0)|} with
//     rmax ≤ rep(Q)·M^{|colors(u0)|/C}.
//   - GridGadget: the Figure 1 relation of Proposition 5.2 whose Gaifman
//     graph has treewidth n while a single keyed self-join yields treewidth
//     at least nm.
//   - Shamir: the Proposition 6.11 secret-sharing construction exhibiting a
//     super-constant gap between the color number and the true worst-case
//     size increase.
package construct

import (
	"fmt"
	"sort"
	"strings"

	"cqbound/internal/coloring"
	"cqbound/internal/cq"
	"cqbound/internal/database"
	"cqbound/internal/gf"
	"cqbound/internal/graph"
	"cqbound/internal/relation"
)

// ProductWitness builds the Proposition 4.5 database for query q (which
// should be chased when FDs are present) and a valid coloring l of q. Each
// color is an independent M-valued coordinate: an atom whose variables carry
// colors {1..q} receives M^q tuples drawn from the product table, the value
// in a position encoding exactly the colors of its variable. Relations
// occurring in several atoms take the union of the atoms' tuple sets.
//
// The resulting database satisfies every functional dependency of q, has
// |R(D)| ≤ rep(Q)·M^(max atom colors), and evaluates to exactly
// M^|colors(u0)| output tuples.
func ProductWitness(q *cq.Query, l coloring.Coloring, M int) (*database.Database, error) {
	if M < 1 {
		return nil, fmt.Errorf("construct: M must be positive, got %d", M)
	}
	if err := coloring.Validate(q, l); err != nil {
		return nil, fmt.Errorf("construct: %v", err)
	}
	db := database.New()
	rels := make(map[string]*relation.Relation)
	for _, a := range q.Body {
		r, ok := rels[a.Relation]
		if !ok {
			attrs := make([]string, a.Arity())
			for i := range attrs {
				attrs[i] = fmt.Sprintf("a%d", i+1)
			}
			r = relation.New(a.Relation, attrs...)
			rels[a.Relation] = r
			db.MustAdd(r)
		}
		colors := l.UnionOver(a.Vars).Sorted()
		assignment := make(map[int]int, len(colors))
		var enumerate func(i int) error
		enumerate = func(i int) error {
			if i == len(colors) {
				t := make(relation.Tuple, a.Arity())
				for p, v := range a.Vars {
					t[p] = colorValue(l.Label(v), assignment)
				}
				_, err := r.Insert(t)
				return err
			}
			for h := 1; h <= M; h++ {
				assignment[colors[i]] = h
				if err := enumerate(i + 1); err != nil {
					return err
				}
			}
			return nil
		}
		if err := enumerate(0); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// colorValue encodes the value of a variable with label colors under the
// given color assignment: v(c1:h1,c2:h2,...), or vnull for the empty label.
func colorValue(label coloring.ColorSet, assignment map[int]int) relation.Value {
	if len(label) == 0 {
		return relation.V("vnull")
	}
	cs := label.Sorted()
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = fmt.Sprintf("%d:%d", c, assignment[c])
	}
	return relation.V("v(" + strings.Join(parts, ",") + ")")
}

// ProductWitnessOutputSize returns the output size the Proposition 4.5
// construction guarantees: M^|colors(u0)|.
func ProductWitnessOutputSize(q *cq.Query, l coloring.Coloring, M int) int {
	size := 1
	for range l.UnionOver(q.Head.Vars) {
		size *= M
	}
	return size
}

// GridVertexLabel names lattice vertex v_{i,k} of the Figure 1 gadget.
func GridVertexLabel(i, k int) string { return fmt.Sprintf("v%d_%d", i, k) }

// GridAlphaLabel names the extra vertex α_j of the Figure 1 gadget.
func GridAlphaLabel(j int) string { return fmt.Sprintf("alpha%d", j) }

// GridGadget builds the relation R of Proposition 5.2 for parameters n and
// m (the paper requires m ≤ n−2 for the treewidth claim): arity m+2, one
// tuple per ordered set S_{i,j} (1 ≤ i ≤ nm, 1 ≤ j ≤ n), n²m tuples in
// total. Its Gaifman graph has treewidth n; the keyed self-join
// R ⋈_{A1=A2} R has treewidth at least nm. The second attribute is a key.
func GridGadget(n, m int) *relation.Relation {
	attrs := make([]string, m+2)
	for i := range attrs {
		attrs[i] = fmt.Sprintf("A%d", i+1)
	}
	r := relation.New("R", attrs...)
	for j := 1; j <= n; j++ {
		// i = 1: (α_j, v_{1,m(j−1)+1}, ..., v_{1,mj+1}).
		t := make(relation.Tuple, 0, m+2)
		t = append(t, relation.V(GridAlphaLabel(j)))
		for k := m*(j-1) + 1; k <= m*j+1; k++ {
			t = append(t, relation.V(GridVertexLabel(1, k)))
		}
		r.MustInsert(t...)
		// i ≥ 2: (v_{i−1,m(j−1)+1}, v_{i,m(j−1)+1}, ..., v_{i,m(j−1)+m+1}).
		for i := 2; i <= n*m; i++ {
			t := make(relation.Tuple, 0, m+2)
			t = append(t, relation.V(GridVertexLabel(i-1, m*(j-1)+1)))
			for k := m*(j-1) + 1; k <= m*(j-1)+m+1; k++ {
				t = append(t, relation.V(GridVertexLabel(i, k)))
			}
			r.MustInsert(t...)
		}
	}
	return r
}

// GridGadgetEliminationOrder returns the Lemma 5.3 elimination ordering for
// the gadget's Gaifman graph g, witnessing treewidth ≤ n: first the interior
// lattice columns, then the last column and the α vertices, finally the
// remaining nm × n grid row by row.
func GridGadgetEliminationOrder(n, m int, g *graph.Graph) ([]int, error) {
	var order []int
	push := func(label string) error {
		v, ok := g.VertexByLabel(label)
		if !ok {
			return fmt.Errorf("construct: vertex %s missing from gadget graph", label)
		}
		order = append(order, v)
		return nil
	}
	// Interior columns: k not of the form 1+tm.
	for i := 1; i <= n*m; i++ {
		for k := 1; k <= n*m+1; k++ {
			if (k-1)%m == 0 {
				continue
			}
			if err := push(GridVertexLabel(i, k)); err != nil {
				return nil, err
			}
		}
	}
	// Last column (k = nm+1) and the α vertices.
	for i := 1; i <= n*m; i++ {
		if err := push(GridVertexLabel(i, n*m+1)); err != nil {
			return nil, err
		}
	}
	for j := 1; j <= n; j++ {
		if err := push(GridAlphaLabel(j)); err != nil {
			return nil, err
		}
	}
	// Remaining nm × n grid (columns 1+tm) plus the diagonals the S_{i,j}
	// cliques leave behind, eliminated row by row. Within a row, columns go
	// right to left: the diagonals run down-right, so this keeps each bag at
	// n+1 vertices, matching Lemma 5.3's width-n claim exactly.
	for i := 1; i <= n*m; i++ {
		for t := n - 1; t >= 0; t-- {
			if err := push(GridVertexLabel(i, 1+t*m)); err != nil {
				return nil, err
			}
		}
	}
	if len(order) != g.N() {
		return nil, fmt.Errorf("construct: order covers %d of %d vertices", len(order), g.N())
	}
	return order, nil
}

// GridContainedLabel gives the label function of the n × nm grid subgraph of
// the gadget's Gaifman graph: row index j ∈ [n] maps to lattice column
// 1+(j−1)m. Use with graph.ContainsGrid(nm, n, ...).
func GridContainedLabel(m int) func(i, j int) string {
	return func(i, j int) string { return GridVertexLabel(i, 1+(j-1)*m) }
}

// Shamir builds the Proposition 6.11 query and database for even k ≥ 2 and
// prime N > k. The query has k²/2 variables X_{i,j}; group j's relation R_j
// holds the N^{k/2} Shamir (k/2, k) share vectors — the evaluations of every
// degree-(k/2−1) polynomial over GF(N) at the points 0..k−1, with values
// tagged by group — and T_i is the projection of the full product onto row i.
// Functional dependencies state that any k/2 positions of R_j determine the
// rest. The output has N^(k²/4) tuples while rmax = N^(k/2) and
// C(chase(Q)) = 2.
func Shamir(k int, N int64) (*cq.Query, *database.Database, error) {
	if k < 2 || k%2 != 0 {
		return nil, nil, fmt.Errorf("construct: k must be even and >= 2, got %d", k)
	}
	if !gf.IsPrime(N) || N <= int64(k) {
		return nil, nil, fmt.Errorf("construct: N must be a prime > k, got %d", N)
	}
	field := gf.Field{P: N}
	half := k / 2

	varName := func(i, j int) cq.Variable { return cq.Variable(fmt.Sprintf("X%d_%d", i, j)) }
	q := &cq.Query{}
	q.Head = cq.Atom{Relation: "R0"}
	for i := 1; i <= k; i++ {
		for j := 1; j <= half; j++ {
			q.Head.Vars = append(q.Head.Vars, varName(i, j))
		}
	}
	// Group atoms R_j(X_{1,j},...,X_{k,j}).
	for j := 1; j <= half; j++ {
		a := cq.Atom{Relation: fmt.Sprintf("R%d", j)}
		for i := 1; i <= k; i++ {
			a.Vars = append(a.Vars, varName(i, j))
		}
		q.Body = append(q.Body, a)
	}
	// Row atoms T_i(X_{i,1},...,X_{i,k/2}).
	for i := 1; i <= k; i++ {
		a := cq.Atom{Relation: fmt.Sprintf("T%d", i)}
		for j := 1; j <= half; j++ {
			a.Vars = append(a.Vars, varName(i, j))
		}
		q.Body = append(q.Body, a)
	}
	// FDs: every k/2-subset of R_j's positions determines every other
	// position (larger left-hand sides are implied).
	subsets := kSubsets(k, half)
	for j := 1; j <= half; j++ {
		rel := fmt.Sprintf("R%d", j)
		for _, s := range subsets {
			inS := make(map[int]bool, len(s))
			for _, p := range s {
				inS[p] = true
			}
			for t := 1; t <= k; t++ {
				if inS[t] {
					continue
				}
				q.FDs = append(q.FDs, cq.FD{Relation: rel, From: append([]int(nil), s...), To: t})
			}
		}
	}
	if err := q.Validate(); err != nil {
		return nil, nil, fmt.Errorf("construct: internal: %v", err)
	}

	db := database.New()
	val := func(j int, x int64) relation.Value {
		return relation.V(fmt.Sprintf("g%d_%d", j, x))
	}
	xs := make([]int64, k)
	for i := range xs {
		xs[i] = int64(i)
	}
	polys := field.AllPolynomials(half)
	for j := 1; j <= half; j++ {
		attrs := make([]string, k)
		for i := range attrs {
			attrs[i] = fmt.Sprintf("a%d", i+1)
		}
		r := relation.New(fmt.Sprintf("R%d", j), attrs...)
		for _, p := range polys {
			shares := field.ShamirShares(p, xs)
			t := make(relation.Tuple, k)
			for i, s := range shares {
				t[i] = val(j, s)
			}
			r.MustInsert(t...)
		}
		db.MustAdd(r)
	}
	// T_i = product over groups of the N group-j values.
	for i := 1; i <= k; i++ {
		attrs := make([]string, half)
		for j := range attrs {
			attrs[j] = fmt.Sprintf("a%d", j+1)
		}
		r := relation.New(fmt.Sprintf("T%d", i), attrs...)
		row := make(relation.Tuple, half)
		var fill func(j int)
		fill = func(j int) {
			if j == half {
				r.MustInsert(row...)
				return
			}
			for x := int64(0); x < N; x++ {
				row[j] = val(j+1, x)
				fill(j + 1)
			}
		}
		fill(0)
		db.MustAdd(r)
	}
	return q, db, nil
}

// ShamirExpectedOutput returns N^(k²/4), the output size of the
// Proposition 6.11 instance (the full product of the k/2 group relations).
func ShamirExpectedOutput(k int, N int64) int64 {
	out := int64(1)
	for i := 0; i < k*k/4; i++ {
		out *= N
	}
	return out
}

// kSubsets enumerates the size-r subsets of {1..k} in lexicographic order.
func kSubsets(k, r int) [][]int {
	var out [][]int
	cur := make([]int, 0, r)
	var rec func(start int)
	rec = func(start int) {
		if len(cur) == r {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for v := start; v <= k; v++ {
			cur = append(cur, v)
			rec(v + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(1)
	sort.Slice(out, func(i, j int) bool {
		for x := range out[i] {
			if out[i][x] != out[j][x] {
				return out[i][x] < out[j][x]
			}
		}
		return false
	})
	return out
}
