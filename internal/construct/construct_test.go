package construct

import (
	"math/big"
	"testing"

	"cqbound/internal/chase"
	"cqbound/internal/coloring"
	"cqbound/internal/cq"
	"cqbound/internal/database"
	"cqbound/internal/eval"
	"cqbound/internal/relation"
	"cqbound/internal/treewidth"
)

func TestProductWitnessTriangleTightness(t *testing.T) {
	// Proposition 4.1 tightness on Example 3.3: with the optimal coloring
	// (one color per variable), M = 4 gives relations of size M² = 16 and
	// an output of exactly M³ = rmax^(3/2).
	q := cq.MustParse("S(X,Y,Z) <- R(X,Y), R(X,Z), R(Y,Z).")
	cval, col, err := coloring.NumberNoFDs(q)
	if err != nil {
		t.Fatal(err)
	}
	if cval.Cmp(big.NewRat(3, 2)) != 0 {
		t.Fatalf("C = %v", cval)
	}
	const M = 4
	db, err := ProductWitness(q, col, M)
	if err != nil {
		t.Fatal(err)
	}
	rmax, err := db.RMax(q)
	if err != nil {
		t.Fatal(err)
	}
	// R appears three times, so the union construction pays the rep(Q)
	// factor of Proposition 4.1: rmax ≤ rep(Q)·M².
	if rmax > q.Rep()*M*M {
		t.Fatalf("rmax = %d, want <= rep·M² = %d", rmax, q.Rep()*M*M)
	}
	out, _, err := eval.JoinProject(q, db)
	if err != nil {
		t.Fatal(err)
	}
	want := ProductWitnessOutputSize(q, col, M)
	if out.Size() != want || want != M*M*M {
		t.Fatalf("|Q(D)| = %d, want %d", out.Size(), want)
	}

	// With distinct relation names (rep = 1) the bound is exactly tight:
	// rmax = M² and |Q(D)| = rmax^(3/2).
	q1 := cq.MustParse("S(X,Y,Z) <- R1(X,Y), R2(X,Z), R3(Y,Z).")
	_, col1, err := coloring.NumberNoFDs(q1)
	if err != nil {
		t.Fatal(err)
	}
	db1, err := ProductWitness(q1, col1, M)
	if err != nil {
		t.Fatal(err)
	}
	rmax1, err := db1.RMax(q1)
	if err != nil {
		t.Fatal(err)
	}
	if rmax1 != M*M {
		t.Fatalf("distinct-relation rmax = %d, want %d", rmax1, M*M)
	}
	out1, _, err := eval.JoinProject(q1, db1)
	if err != nil {
		t.Fatal(err)
	}
	if out1.Size() != M*M*M {
		t.Fatalf("distinct-relation |Q(D)| = %d, want %d", out1.Size(), M*M*M)
	}
}

func TestProductWitnessWithKeysTightness(t *testing.T) {
	// Theorem 4.4 tightness: chase the keyed query, color it, build the
	// witness, and check |Q(D)| = M^|colors(u0)| while the FDs hold.
	src := "Q(X,Y,Z) <- R(X,Y), S(X,Z).\nkey R[1]."
	q := cq.MustParse(src)
	cval, col, ch, err := coloring.NumberWithSimpleFDs(q)
	if err != nil {
		t.Fatal(err)
	}
	const M = 3
	db, err := ProductWitness(ch, col, M)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CheckFDs(q); err != nil {
		t.Fatalf("witness violates declared FDs: %v", err)
	}
	out, _, err := eval.JoinProject(q, db)
	if err != nil {
		t.Fatal(err)
	}
	want := ProductWitnessOutputSize(ch, col, M)
	if out.Size() != want {
		t.Fatalf("|Q(D)| = %d, want %d", out.Size(), want)
	}
	// Sanity: the achieved exponent matches C(chase(Q)) on this instance:
	// |Q(D)| = M^{C·(max atom colors)} and rmax ≥ M^{max atom colors}.
	_ = cval
}

func TestProductWitnessExample34(t *testing.T) {
	// After chasing Example 3.4 the color number drops to 1: the witness
	// output is exactly M = rmax^1.
	q := cq.MustParse("R0(W,X,Y,Z) <- R1(W,X,Y), R1(W,W,W), R2(Y,Z).\nkey R1[1].")
	_, col, ch, err := coloring.NumberWithSimpleFDs(q)
	if err != nil {
		t.Fatal(err)
	}
	const M = 5
	db, err := ProductWitness(ch, col, M)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CheckFDs(q); err != nil {
		t.Fatalf("witness violates FDs: %v", err)
	}
	out, _, err := eval.JoinProject(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != ProductWitnessOutputSize(ch, col, M) {
		t.Fatalf("|Q(D)| = %d, want %d", out.Size(), ProductWitnessOutputSize(ch, col, M))
	}
}

func TestProductWitnessRejectsBadInput(t *testing.T) {
	q := cq.MustParse("Q(X) <- R(X).")
	if _, err := ProductWitness(q, coloring.Coloring{}, 3); err == nil {
		t.Fatal("accepted invalid (empty) coloring")
	}
	col := coloring.Coloring{"X": coloring.NewColorSet(1)}
	if _, err := ProductWitness(q, col, 0); err == nil {
		t.Fatal("accepted M = 0")
	}
}

func TestGridGadgetShape(t *testing.T) {
	const n, m = 4, 2
	r := GridGadget(n, m)
	if r.Arity() != m+2 {
		t.Fatalf("arity = %d, want %d", r.Arity(), m+2)
	}
	if r.Size() != n*n*m {
		t.Fatalf("size = %d, want n²m = %d", r.Size(), n*n*m)
	}
	if !r.CheckKey([]int{1}) {
		t.Fatal("second attribute is not a key")
	}
}

func TestGridGadgetTreewidthExactlyN(t *testing.T) {
	const n, m = 4, 2
	r := GridGadget(n, m)
	g := database.GaifmanOf(r)
	// Upper bound: the Lemma 5.3 elimination ordering has width n.
	order, err := GridGadgetEliminationOrder(n, m, g)
	if err != nil {
		t.Fatal(err)
	}
	d, err := treewidth.FromEliminationOrder(g, order)
	if err != nil {
		t.Fatal(err)
	}
	if err := treewidth.Validate(g, d); err != nil {
		t.Fatal(err)
	}
	if w := d.Width(); w != n {
		t.Fatalf("Lemma 5.3 ordering width = %d, want %d", w, n)
	}
	// Lower bound: G contains the n × nm grid (as the subgraph on the
	// block-boundary columns), so tw ≥ n by Fact 5.1.
	if !g.ContainsGrid(n*m, n, GridContainedLabel(m)) {
		t.Fatal("gadget graph does not contain the n x nm grid")
	}
}

func TestGridGadgetJoinBlowup(t *testing.T) {
	const n, m = 3, 2
	r := GridGadget(n, m)
	joined, err := relation.EquiJoin(r, r.Clone("R2"), [][2]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	gg := database.GaifmanOf(joined)
	// Proposition 5.2: the join's Gaifman graph contains the full
	// nm × (nm+1) lattice, hence treewidth ≥ nm.
	if !gg.ContainsGrid(n*m, n*m+1, func(i, j int) string { return GridVertexLabel(i, j) }) {
		t.Fatal("join result does not contain the nm x (nm+1) grid")
	}
	// And the lower-bound heuristics should already see a width above n.
	if lb := treewidth.LowerBound(gg); lb <= 2 {
		t.Fatalf("contraction lower bound %d suspiciously small", lb)
	}
}

func TestShamirSmall(t *testing.T) {
	const k = 4
	const N = 5
	q, db, err := Shamir(k, N)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	// chase(Q) = Q: every relation occurs once.
	if res := chase.Chase(q); res.Steps != 0 {
		t.Fatalf("chase performed %d steps, want 0", res.Steps)
	}
	if err := db.CheckFDs(q); err != nil {
		t.Fatalf("Shamir database violates its FDs: %v", err)
	}
	rmax, err := db.RMax(q)
	if err != nil {
		t.Fatal(err)
	}
	if rmax != 25 { // N^{k/2}
		t.Fatalf("rmax = %d, want 25", rmax)
	}
	out, _, err := eval.JoinProject(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if int64(out.Size()) != ShamirExpectedOutput(k, N) {
		t.Fatalf("|Q(D)| = %d, want %d", out.Size(), ShamirExpectedOutput(k, N))
	}
	// Size increase exponent is k/2 = 2: |Q(D)| = rmax².
	if out.Size() != rmax*rmax {
		t.Fatalf("|Q(D)| = %d, want rmax² = %d", out.Size(), rmax*rmax)
	}
}

func TestShamirParameterValidation(t *testing.T) {
	if _, _, err := Shamir(3, 5); err == nil {
		t.Fatal("accepted odd k")
	}
	if _, _, err := Shamir(4, 4); err == nil {
		t.Fatal("accepted composite N")
	}
	if _, _, err := Shamir(4, 3); err == nil {
		t.Fatal("accepted N <= k")
	}
}

func TestKSubsets(t *testing.T) {
	s := kSubsets(4, 2)
	if len(s) != 6 {
		t.Fatalf("|subsets| = %d, want 6", len(s))
	}
}

func TestTWBlowupWitness(t *testing.T) {
	// Proposition 5.9's blowup: with the 2-coloring of Example 2.1's query,
	// the product witness has a tree-like input (tw ≤ 1) while the output's
	// Gaifman graph contains K_M.
	q := cq.MustParse("R2(X,Y,Z) <- R(X,Y), R(X,Z).")
	col, ok := coloring.TwoColoringNoFDs(q)
	if !ok {
		t.Fatal("expected 2-coloring")
	}
	const M = 6
	db, err := ProductWitness(q, col, M)
	if err != nil {
		t.Fatal(err)
	}
	gin := db.GaifmanGraph()
	twIn, _, err := treewidth.Exact(gin)
	if err != nil {
		t.Fatal(err)
	}
	if twIn > 1 {
		t.Fatalf("input treewidth = %d, want <= 1", twIn)
	}
	out, _, err := eval.JoinProject(q, db)
	if err != nil {
		t.Fatal(err)
	}
	gout := database.GaifmanOf(out)
	// K_M subgraph: all pairs of the M "color 1" values are adjacent to
	// all pairs of the "color 2" values... more simply, the output graph's
	// clique on the 2M colored values shows up as high degeneracy.
	if lb := treewidth.LowerBound(gout); lb < M-1 {
		t.Fatalf("output lower bound %d, want >= %d", lb, M-1)
	}
}
