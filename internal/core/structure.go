package core

import (
	"math/big"

	"cqbound/internal/chase"
	"cqbound/internal/coloring"
	"cqbound/internal/cq"
	"cqbound/internal/entropy"
)

// This file splits Analyze into composable stages so callers — the query
// planner above all — can pay only for the facts they need. StructureOf is
// the cheap stage (chase + dependency classification, polynomial and small);
// ColorNumberStage adds the color number, optionally refusing the entropy LP
// whose cost is exponential in the variable count. Analyze composes both
// with the remaining full-report stages.

// Structure holds the cheap structural facts about a query: the chase and
// the classification of its lifted dependencies.
type Structure struct {
	// Query is a private copy of the analyzed query.
	Query *cq.Query
	// Chased is chase(Q) (Definition 2.3).
	Chased *cq.Query
	// ChaseSteps is the number of unifications the chase performed.
	ChaseSteps int
	// Rep is rep(Q), the maximal multiplicity of a relation in the body.
	Rep int
	// Class is the dependency class of chase(Q).
	Class FDClass
}

// StructureOf runs only the structural stage: validation, the chase, and
// dependency classification. It never solves a linear program.
func StructureOf(q *cq.Query) (*Structure, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	st := &Structure{Query: q.Clone(), Rep: q.Rep()}
	res := chase.Chase(q)
	st.Chased = res.Query
	st.ChaseSteps = res.Steps

	switch {
	case len(st.Chased.VarFDs()) == 0:
		st.Class = NoFDs
	case st.Chased.AllVarFDsSimple():
		st.Class = SimpleFDs
	default:
		st.Class = CompoundFDs
	}
	return st, nil
}

// ColorInfo is the result of the color-number stage.
type ColorInfo struct {
	// Number is C(chase(Q)); nil when the stage was skipped (compound
	// dependencies with the entropy LP disallowed or over its size cap).
	Number *big.Rat
	// Coloring is a valid coloring of the chase attaining Number.
	Coloring coloring.Coloring
	// Method names the algorithm used ("lp-no-fds", "fd-elimination", or
	// "entropy-lp"); empty when skipped.
	Method string
	// Tight reports whether rmax^Number is known to be essentially tight
	// (Proposition 4.1, Theorem 4.4: no or simple dependencies).
	Tight bool
}

// ColorNumberStage computes C(chase(Q)) by the cheapest method matching the
// dependency class. With compound dependencies the only known algorithm is
// the Proposition 6.10 entropy LP, exponential in |var(Q)|; callers that
// cannot afford it pass allowEntropyLP = false and receive a ColorInfo with
// a nil Number instead.
func ColorNumberStage(st *Structure, allowEntropyLP bool) (*ColorInfo, error) {
	ci := &ColorInfo{}
	switch st.Class {
	case NoFDs:
		val, col, err := coloring.NumberNoFDs(st.Chased)
		if err != nil {
			return nil, err
		}
		ci.Number, ci.Coloring, ci.Method, ci.Tight = val, col, "lp-no-fds", true
	case SimpleFDs:
		val, col, _, err := coloring.NumberWithSimpleFDs(st.Chased)
		if err != nil {
			return nil, err
		}
		ci.Number, ci.Coloring, ci.Method, ci.Tight = val, col, "fd-elimination", true
	case CompoundFDs:
		if !allowEntropyLP {
			break
		}
		val, col, _, err := entropy.ColorNumber(st.Chased)
		if err == nil {
			ci.Number, ci.Coloring, ci.Method = val, col, "entropy-lp"
		}
		// Queries beyond the LP cap keep a nil Number.
	}
	return ci, nil
}
