package core

import (
	"math"
	"math/big"
	"math/rand"
	"strings"
	"testing"

	"cqbound/internal/cq"
	"cqbound/internal/datagen"
)

func TestAnalyzeTriangle(t *testing.T) {
	a, err := Analyze(cq.MustParse("S(X,Y,Z) <- R(X,Y), R(X,Z), R(Y,Z)."))
	if err != nil {
		t.Fatal(err)
	}
	if a.Class != NoFDs {
		t.Fatalf("class = %v", a.Class)
	}
	if a.ColorNumber.Cmp(big.NewRat(3, 2)) != 0 {
		t.Fatalf("C = %v", a.ColorNumber)
	}
	if !a.SizeBoundTight || !a.SizeIncreasePossible {
		t.Fatal("triangle: bound should be tight and increase possible")
	}
	if a.RhoStar.Cmp(big.NewRat(3, 2)) != 0 || a.RhoStarHead.Cmp(big.NewRat(3, 2)) != 0 {
		t.Fatalf("rho = %v / %v", a.RhoStar, a.RhoStarHead)
	}
	if a.EntropyUpperBound.Cmp(big.NewRat(3, 2)) != 0 {
		t.Fatalf("s(Q) = %v", a.EntropyUpperBound)
	}
	if a.Treewidth != TWPreserved {
		t.Fatalf("treewidth verdict = %v", a.Treewidth)
	}
	b, err := a.SizeBound(100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b-1000) > 1e-6 {
		t.Fatalf("SizeBound(100) = %v, want 1000", b)
	}
	if !strings.Contains(a.Summary(), "3/2") {
		t.Fatalf("Summary missing C:\n%s", a.Summary())
	}
}

func TestAnalyzeExample34(t *testing.T) {
	a, err := Analyze(cq.MustParse("R0(W,X,Y,Z) <- R1(W,X,Y), R1(W,W,W), R2(Y,Z).\nkey R1[1]."))
	if err != nil {
		t.Fatal(err)
	}
	// After the chase every lifted dependency is trivial (W -> W), so the
	// effective class is NoFDs.
	if a.Class != NoFDs {
		t.Fatalf("class = %v", a.Class)
	}
	if a.ChaseSteps == 0 {
		t.Fatal("chase should fire")
	}
	if a.ColorNumber.Cmp(big.NewRat(1, 1)) != 0 {
		t.Fatalf("C(chase(Q)) = %v, want 1", a.ColorNumber)
	}
	if a.SizeIncreasePossible {
		t.Fatal("no size increase possible after chase")
	}
}

func TestAnalyzeSimpleFDClass(t *testing.T) {
	// The key survives the chase here: Y -> Z stays a live simple
	// dependency of chase(Q).
	a, err := Analyze(cq.MustParse("Q(X,Z) <- R(X,Y), S(Y,Z).\nkey S[1]."))
	if err != nil {
		t.Fatal(err)
	}
	if a.Class != SimpleFDs {
		t.Fatalf("class = %v, want simple", a.Class)
	}
	if a.ColorNumber.Cmp(big.NewRat(1, 1)) != 0 {
		t.Fatalf("C(chase(Q)) = %v, want 1", a.ColorNumber)
	}
	if a.Treewidth != TWPreserved {
		t.Fatalf("verdict = %v, want preserved", a.Treewidth)
	}
	if a.ColorNumberMethod != "fd-elimination" {
		t.Fatalf("method = %q", a.ColorNumberMethod)
	}
}

func TestAnalyzeBlowupQuery(t *testing.T) {
	a, err := Analyze(cq.MustParse("R2(X,Y,Z) <- R(X,Y), R(X,Z)."))
	if err != nil {
		t.Fatal(err)
	}
	if a.Treewidth != TWUnbounded {
		t.Fatalf("verdict = %v, want unbounded", a.Treewidth)
	}
	if a.TwoColoring == nil {
		t.Fatal("missing blowup witness coloring")
	}
}

func TestAnalyzeCompoundOpenVerdict(t *testing.T) {
	// Compound FD, single-atom head: no 2-coloring, verdict open.
	a, err := Analyze(cq.MustParse("Q(X,Y,Z) <- R(X,Y,Z).\nfd R[1],R[2] -> R[3]."))
	if err != nil {
		t.Fatal(err)
	}
	if a.Class != CompoundFDs {
		t.Fatalf("class = %v", a.Class)
	}
	if a.Treewidth != TWOpen {
		t.Fatalf("verdict = %v, want open", a.Treewidth)
	}
	if a.SizeBoundTight {
		t.Fatal("bound must not be marked tight with compound FDs")
	}
}

func TestAnalyzeInvalidQuery(t *testing.T) {
	bad := &cq.Query{Head: cq.NewAtom("Q", "X")}
	if _, err := Analyze(bad); err == nil {
		t.Fatal("accepted invalid query")
	}
}

// TestAnalyzeConsistencyRandom cross-checks the analysis invariants the
// paper proves: C ≤ s(Q); size increase ⇔ C > 1; with no FDs,
// C = head-restricted ρ*.
func TestAnalyzeConsistencyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	one := big.NewRat(1, 1)
	for trial := 0; trial < 40; trial++ {
		q := datagen.RandomQuery(rng, datagen.QueryParams{
			MaxVars: 5, MaxAtoms: 4, MaxArity: 3, HeadFraction: 0.5,
			SimpleFDProb: 0.2, CompoundFDProb: 0.2, RepeatRelationProb: 0.3,
		})
		a, err := Analyze(q)
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, q, err)
		}
		if a.ColorNumber == nil {
			continue
		}
		if a.EntropyUpperBound != nil && a.ColorNumber.Cmp(a.EntropyUpperBound) > 0 {
			t.Fatalf("trial %d: C = %v > s = %v for %s", trial, a.ColorNumber, a.EntropyUpperBound, q)
		}
		if a.SizeIncreasePossible != (a.ColorNumber.Cmp(one) > 0) {
			t.Fatalf("trial %d: increase = %v but C = %v for %s", trial, a.SizeIncreasePossible, a.ColorNumber, q)
		}
		if a.Class == NoFDs && a.ColorNumber.Cmp(a.RhoStarHead) != 0 {
			t.Fatalf("trial %d: C = %v != head rho* = %v for %s", trial, a.ColorNumber, a.RhoStarHead, q)
		}
	}
}
