package core

import (
	"math/big"
	"testing"

	"cqbound/internal/cq"
)

func TestStructureOfClassifies(t *testing.T) {
	cases := []struct {
		text string
		want FDClass
	}{
		{"Q(X,Y,Z) <- R(X,Y), R(X,Z), R(Y,Z).", NoFDs},
		{"Q(X,Z) <- R(X,Y), S(Y,Z).\nkey S[1].", SimpleFDs},
		{"Q(X,Y,Z) <- R(X,Y,Z).\nfd R[1],R[2] -> R[3].", CompoundFDs},
	}
	for _, c := range cases {
		st, err := StructureOf(cq.MustParse(c.text))
		if err != nil {
			t.Fatalf("%s: %v", c.text, err)
		}
		if st.Class != c.want {
			t.Errorf("%s: class = %v, want %v", c.text, st.Class, c.want)
		}
	}
}

func TestColorNumberStageSkipsEntropyLP(t *testing.T) {
	// Compound dependencies: the stage must refuse the entropy LP when told.
	st, err := StructureOf(cq.MustParse("Q(X,Y,Z) <- R(X,Y,Z).\nfd R[1],R[2] -> R[3]."))
	if err != nil {
		t.Fatal(err)
	}
	ci, err := ColorNumberStage(st, false)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Number != nil || ci.Method != "" || ci.Tight {
		t.Errorf("skipped stage reported %v via %q (tight=%v)", ci.Number, ci.Method, ci.Tight)
	}
	// Allowed, it computes one.
	ci, err = ColorNumberStage(st, true)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Number == nil || ci.Method != "entropy-lp" {
		t.Errorf("entropy stage: number=%v method=%q", ci.Number, ci.Method)
	}
}

func TestStagesMatchAnalyze(t *testing.T) {
	q := cq.MustParse("S(X,Y,Z) <- R(X,Y), R(X,Z), R(Y,Z).")
	st, err := StructureOf(q)
	if err != nil {
		t.Fatal(err)
	}
	ci, err := ColorNumberStage(st, true)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Number.Cmp(a.ColorNumber) != 0 || ci.Number.Cmp(big.NewRat(3, 2)) != 0 {
		t.Errorf("stage C = %v, Analyze C = %v, want 3/2", ci.Number, a.ColorNumber)
	}
	if st.Class != a.Class || st.Rep != a.Rep || st.ChaseSteps != a.ChaseSteps {
		t.Errorf("stage facts diverge from Analyze: %+v vs %+v", st, a)
	}
}
