// Package core wires the paper's results into a single analysis of a
// conjunctive query: the chase, the color number C(chase(Q)) with a witness
// coloring (Definitions 3.1–3.2, computed by the method matching the
// dependency class), the worst-case size-bound exponent (Proposition 4.1,
// Theorem 4.4, Propositions 6.9–6.10), the size-increase decision
// (Theorems 6.1 and 7.2), fractional edge covers (Section 3.1), and the
// treewidth-preservation verdict (Proposition 5.9, Theorems 5.5 and 5.10).
package core

import (
	"fmt"
	"math"
	"math/big"

	"cqbound/internal/coloring"
	"cqbound/internal/cover"
	"cqbound/internal/cq"
	"cqbound/internal/entropy"
	"cqbound/internal/hornsat"
	"cqbound/internal/sat"
)

// FDClass classifies the lifted dependencies of chase(Q).
type FDClass int

// Dependency classes.
const (
	// NoFDs: no functional dependencies at all.
	NoFDs FDClass = iota
	// SimpleFDs: every lifted dependency has a single variable on the left.
	SimpleFDs
	// CompoundFDs: some lifted dependency has a compound left-hand side.
	CompoundFDs
)

func (c FDClass) String() string {
	switch c {
	case NoFDs:
		return "none"
	case SimpleFDs:
		return "simple"
	default:
		return "compound"
	}
}

// TreewidthVerdict is the outcome of the treewidth-preservation analysis.
type TreewidthVerdict int

// Verdicts.
const (
	// TWPreserved: no 2-coloring with color number 2 exists and the
	// dependencies are simple (or absent), so tw(Q(D)) is bounded in
	// tw(D) by Proposition 5.9 / Theorem 5.10.
	TWPreserved TreewidthVerdict = iota
	// TWUnbounded: chase(Q) has a valid 2-coloring with color number 2, so
	// tw(Q(D)) is unbounded in tw(D) (for any dependency class).
	TWUnbounded
	// TWOpen: no such coloring, but some dependency is compound — the
	// paper proves no upper bound in this regime (Section 8 lists it as
	// open).
	TWOpen
)

func (v TreewidthVerdict) String() string {
	switch v {
	case TWPreserved:
		return "preserved"
	case TWUnbounded:
		return "unbounded"
	default:
		return "open (compound FDs, no blowup coloring)"
	}
}

// Analysis is the full report produced by Analyze.
type Analysis struct {
	Query  *cq.Query
	Chased *cq.Query
	// ChaseSteps is the number of unifications the chase performed.
	ChaseSteps int
	// Rep is rep(Q), the maximal multiplicity of a relation in the body.
	Rep int
	// Class is the dependency class of chase(Q).
	Class FDClass

	// ColorNumber is C(chase(Q)).
	ColorNumber *big.Rat
	// Coloring is a valid coloring of Chased attaining ColorNumber.
	Coloring coloring.Coloring
	// ColorNumberMethod names the algorithm used ("lp-no-fds",
	// "fd-elimination", or "entropy-lp").
	ColorNumberMethod string

	// SizeBoundTight reports whether rmax^ColorNumber is known to be
	// essentially tight (Proposition 4.1 and Theorem 4.4: no or simple
	// dependencies); with compound dependencies it is only a lower bound
	// on the worst case (Proposition 6.11).
	SizeBoundTight bool
	// EntropyUpperBound is s(Q) from Proposition 6.9, an upper bound on
	// the worst-case exponent for any dependency class; nil when the query
	// exceeds the LP size cap.
	EntropyUpperBound *big.Rat
	// SizeIncreasePossible is the Theorem 7.2 / 6.1 decision: does some
	// compatible database make |Q(D)| exceed rmax(D)?
	SizeIncreasePossible bool

	// RhoStar is the fractional edge cover number ρ*(Q) of the full
	// hypergraph (Definition 3.5); RhoStarHead covers only head variables
	// and equals the color number when there are no dependencies.
	RhoStar     *big.Rat
	RhoStarHead *big.Rat

	// Treewidth is the preservation verdict; TwoColoring is the blowup
	// witness when the verdict is TWUnbounded.
	Treewidth   TreewidthVerdict
	TwoColoring coloring.Coloring
}

// Analyze runs the complete pipeline on q: the structural stage, the
// color-number stage (entropy LP allowed), and the full-report extras. The
// query must validate.
func Analyze(q *cq.Query) (*Analysis, error) {
	st, err := StructureOf(q)
	if err != nil {
		return nil, err
	}
	ci, err := ColorNumberStage(st, true)
	if err != nil {
		return nil, err
	}
	a := &Analysis{
		Query:             st.Query,
		Chased:            st.Chased,
		ChaseSteps:        st.ChaseSteps,
		Rep:               st.Rep,
		Class:             st.Class,
		ColorNumber:       ci.Number,
		Coloring:          ci.Coloring,
		ColorNumberMethod: ci.Method,
		SizeBoundTight:    ci.Tight,
	}

	// Entropy upper bound (any class), subject to the LP cap.
	if s, err := entropy.SizeBoundExponent(a.Chased); err == nil {
		a.EntropyUpperBound = s
	}

	// Size-increase decision is always polynomial.
	a.SizeIncreasePossible = hornsat.DecideSizeIncrease(q).Increase

	// Fractional covers.
	if r, err := cover.FractionalEdgeCover(q); err == nil {
		a.RhoStar = r.Rho
	}
	if r, err := cover.FractionalEdgeCoverHead(q); err == nil {
		a.RhoStarHead = r.Rho
	}

	// Treewidth verdict.
	dec := sat.DecideTwoColoring(q)
	switch {
	case dec.Exists:
		a.Treewidth = TWUnbounded
		a.TwoColoring = dec.Witness
	case a.Class == CompoundFDs:
		a.Treewidth = TWOpen
	default:
		a.Treewidth = TWPreserved
	}
	return a, nil
}

// SizeBound returns rmax^C(chase(Q)) as a float64, the Theorem 4.4 bound on
// |Q(D)| (tight for simple dependencies, a worst-case lower bound with
// compound ones). It returns an error when the color number is unavailable.
func (a *Analysis) SizeBound(rmax int) (float64, error) {
	if a.ColorNumber == nil {
		return 0, fmt.Errorf("core: color number unavailable for this query")
	}
	c, _ := a.ColorNumber.Float64()
	return math.Pow(float64(rmax), c), nil
}

// EvalCostBound returns the Corollary 4.8 evaluation cost bound
// O(|var(Q)|² · |Q|² · rmax^(C+1)) for the join-project plan, valid when
// every variable appears in the head and the dependencies are simple. The
// constant-free product is returned; callers compare orders of magnitude.
func (a *Analysis) EvalCostBound(rmax int) (float64, error) {
	if a.ColorNumber == nil {
		return 0, fmt.Errorf("core: color number unavailable")
	}
	head := a.Chased.HeadVarSet()
	for _, v := range a.Chased.Variables() {
		if !head[v] {
			return 0, fmt.Errorf("core: Corollary 4.8 needs every variable in the head (missing %s)", v)
		}
	}
	if a.Class == CompoundFDs {
		return 0, fmt.Errorf("core: Corollary 4.8 needs simple dependencies")
	}
	c, _ := a.ColorNumber.Float64()
	nv := float64(len(a.Chased.Variables()))
	sz := float64(querySize(a.Chased))
	return nv * nv * sz * sz * math.Pow(float64(rmax), c+1), nil
}

// querySize is |Q|: the total length of the query (atom positions plus
// dependency positions).
func querySize(q *cq.Query) int {
	n := q.Head.Arity()
	for _, a := range q.Body {
		n += a.Arity()
	}
	for _, f := range q.FDs {
		n += len(f.From) + 1
	}
	return n
}

// Summary renders a compact human-readable report.
func (a *Analysis) Summary() string {
	out := fmt.Sprintf("query: %s\n", a.Query.Head)
	out += fmt.Sprintf("chase: %d unification(s); dependency class: %s\n", a.ChaseSteps, a.Class)
	if a.ColorNumber != nil {
		tight := "tight (Thm 4.4)"
		if !a.SizeBoundTight {
			tight = "lower bound only (Prop 6.11)"
		}
		out += fmt.Sprintf("color number C(chase(Q)) = %s [%s] — size bound rmax^%s, %s\n",
			a.ColorNumber.RatString(), a.ColorNumberMethod, a.ColorNumber.RatString(), tight)
	}
	if a.EntropyUpperBound != nil {
		out += fmt.Sprintf("entropy upper bound s(Q) = %s (Prop 6.9)\n", a.EntropyUpperBound.RatString())
	}
	out += fmt.Sprintf("size increase possible: %v (Thm 7.2)\n", a.SizeIncreasePossible)
	if a.RhoStar != nil {
		out += fmt.Sprintf("fractional edge cover rho* = %s (head-restricted %s)\n",
			a.RhoStar.RatString(), a.RhoStarHead.RatString())
	}
	out += fmt.Sprintf("treewidth: %s\n", a.Treewidth)
	return out
}
