package chase

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cqbound/internal/cq"
	"cqbound/internal/datagen"
)

func randomFDQuery(seed int64) *cq.Query {
	rng := rand.New(rand.NewSource(seed))
	return datagen.RandomQuery(rng, datagen.QueryParams{
		MaxVars: 6, MaxAtoms: 5, MaxArity: 3,
		HeadFraction: 0.5, RepeatRelationProb: 0.5,
		SimpleFDProb: 0.3, CompoundFDProb: 0.3,
	})
}

// TestQuickChaseIdempotent: chase(chase(Q)) = chase(Q).
func TestQuickChaseIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		q := randomFDQuery(seed)
		once := Chase(q)
		twice := Chase(once.Query)
		return twice.Steps == 0 && twice.Query.Equal(once.Query)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickChaseShrinks: the chase never increases the number of variables
// or atoms, and the substitution maps onto surviving variables.
func TestQuickChaseShrinks(t *testing.T) {
	f := func(seed int64) bool {
		q := randomFDQuery(seed)
		res := Chase(q)
		if len(res.Query.Variables()) > len(q.Variables()) {
			return false
		}
		if len(res.Query.Body) > len(q.Body) {
			return false
		}
		surviving := map[cq.Variable]bool{}
		for _, v := range res.Query.Variables() {
			surviving[v] = true
		}
		for _, to := range res.Subst {
			if !surviving[to] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickChaseValid: the chased query still validates and keeps the head
// relation and arity.
func TestQuickChaseValid(t *testing.T) {
	f := func(seed int64) bool {
		q := randomFDQuery(seed)
		res := Chase(q)
		if err := res.Query.Validate(); err != nil {
			return false
		}
		return res.Query.Head.Relation == q.Head.Relation &&
			res.Query.Head.Arity() == q.Head.Arity()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
