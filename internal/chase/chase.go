// Package chase implements the chase procedure of Definition 2.3: given a
// conjunctive query and a set of functional dependencies, it iteratively
// unifies variables that the dependencies force to be equal, eliminating the
// implied dependencies illustrated by Example 2.2. By Fact 2.4 the chased
// query computes the same result as the original on every database.
package chase

import (
	"cqbound/internal/cq"
)

// Result is the outcome of chasing a query.
type Result struct {
	// Query is chase(Q). Functional dependencies are carried over unchanged;
	// exact duplicate atoms produced by the unification are removed.
	Query *cq.Query
	// Subst maps every original variable to its representative in
	// chase(Q). Variables that were not merged map to themselves.
	Subst map[cq.Variable]cq.Variable
	// Steps is the number of unification steps performed.
	Steps int
}

// Chase computes chase(Q) per Definition 2.3. The replacement ordering is
// fixed as follows: dependencies are scanned in declaration order, atom pairs
// in increasing body order, and when two variables are unified the
// representative is the one occurring first in the query (the other is
// replaced everywhere, including the head). The chase result is unique up to
// variable renaming regardless of this choice (Maier et al. 1979); fixing it
// makes the function deterministic.
//
// The input query is not modified.
func Chase(q *cq.Query) Result {
	work := q.Clone()
	subst := make(map[cq.Variable]cq.Variable)
	for _, v := range q.Variables() {
		subst[v] = v
	}
	// rank orders variables by first occurrence in the original query, used
	// to pick the representative of a merged pair.
	rank := make(map[cq.Variable]int)
	for i, v := range q.Variables() {
		rank[v] = i
	}

	steps := 0
	for changed := true; changed; {
		changed = false
		for _, fd := range work.FDs {
			for j := range work.Body {
				if work.Body[j].Relation != fd.Relation {
					continue
				}
				for k := range work.Body {
					if k == j || work.Body[k].Relation != fd.Relation {
						continue
					}
					if !lhsMatch(work.Body[j], work.Body[k], fd.From) {
						continue
					}
					a := work.Body[j].Vars[fd.To-1]
					b := work.Body[k].Vars[fd.To-1]
					if a == b {
						continue
					}
					keep, drop := a, b
					if rank[b] < rank[a] {
						keep, drop = b, a
					}
					substitute(work, drop, keep)
					for v, w := range subst {
						if w == drop {
							subst[v] = keep
						}
					}
					steps++
					changed = true
				}
			}
		}
	}
	work.Body = dedupeAtoms(work.Body)
	return Result{Query: work, Subst: subst, Steps: steps}
}

// lhsMatch reports whether atoms a and b carry identical variables in every
// left-hand-side position of the dependency.
func lhsMatch(a, b cq.Atom, from []int) bool {
	for _, p := range from {
		if a.Vars[p-1] != b.Vars[p-1] {
			return false
		}
	}
	return true
}

// substitute replaces every occurrence of drop with keep, in the head and in
// every body atom.
func substitute(q *cq.Query, drop, keep cq.Variable) {
	replace := func(a *cq.Atom) {
		for i, v := range a.Vars {
			if v == drop {
				a.Vars[i] = keep
			}
		}
	}
	replace(&q.Head)
	for i := range q.Body {
		replace(&q.Body[i])
	}
}

// dedupeAtoms removes exact duplicate atoms, keeping first occurrences.
func dedupeAtoms(body []cq.Atom) []cq.Atom {
	var out []cq.Atom
	for _, a := range body {
		dup := false
		for _, b := range out {
			if a.Equal(b) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, a)
		}
	}
	return out
}

// IsChased reports whether chasing q would leave it unchanged (up to the
// deterministic ordering used by Chase).
func IsChased(q *cq.Query) bool {
	r := Chase(q)
	return r.Steps == 0 && len(r.Query.Body) == len(q.Body)
}
