package chase

import (
	"testing"

	"cqbound/internal/cq"
)

func TestChaseIntroExample(t *testing.T) {
	// Section 1: Q = R(X,Y,Z) <- S(X,Y) ∧ S(X,Z) with S[1]->S[2]
	// chases to R(X,Y,Y) <- S(X,Y).
	q := cq.MustParse("R(X,Y,Z) <- S(X,Y), S(X,Z).\nfd S[1] -> S[2].")
	r := Chase(q)
	if len(r.Query.Body) != 1 {
		t.Fatalf("chase body = %v, want single atom", r.Query.Body)
	}
	h := r.Query.Head
	if h.Vars[1] != h.Vars[2] {
		t.Fatalf("head = %v, want second and third variables merged", h)
	}
	if h.Vars[0] == h.Vars[1] {
		t.Fatalf("head = %v, X must stay distinct", h)
	}
	if r.Steps == 0 {
		t.Fatal("expected at least one unification step")
	}
}

func TestChaseExample22(t *testing.T) {
	// Example 2.2 / 3.4: R0(W,X,Y,Z) <- R1(W,X,Y) ∧ R1(W,W,W) ∧ R2(Y,Z),
	// first position of R1 a key. chase(Q) = R0(W,W,W,Z) <- R1(W,W,W) ∧ R2(W,Z).
	q := cq.MustParse("R0(W,X,Y,Z) <- R1(W,X,Y), R1(W,W,W), R2(Y,Z).\nkey R1[1].")
	r := Chase(q)
	got := r.Query
	if len(got.Body) != 2 {
		t.Fatalf("chase body = %v, want 2 atoms (duplicate R1 removed)", got.Body)
	}
	w := got.Head.Vars[0]
	for i := 0; i < 3; i++ {
		if got.Head.Vars[i] != w {
			t.Fatalf("head = %v, want first three positions equal", got.Head)
		}
	}
	if got.Head.Vars[3] == w {
		t.Fatalf("head = %v, Z must stay distinct", got.Head)
	}
	// Substitution should map X and Y to W.
	if r.Subst["X"] != "W" || r.Subst["Y"] != "W" || r.Subst["W"] != "W" || r.Subst["Z"] != "Z" {
		t.Fatalf("Subst = %v", r.Subst)
	}
}

func TestChaseCompoundFD(t *testing.T) {
	q := cq.MustParse("Q(X,Y,Z,W) <- R(X,Y,Z), R(X,Y,W).\nfd R[1],R[2] -> R[3].")
	r := Chase(q)
	if len(r.Query.Body) != 1 {
		t.Fatalf("chase body = %v, want one atom", r.Query.Body)
	}
	if r.Query.Head.Vars[2] != r.Query.Head.Vars[3] {
		t.Fatalf("head = %v, want Z and W merged", r.Query.Head)
	}
}

func TestChaseNoFDsIsIdentity(t *testing.T) {
	q := cq.MustParse("Q(X,Y,Z) <- R(X,Y), R(X,Z), R(Y,Z).")
	r := Chase(q)
	if !r.Query.Equal(q) {
		t.Fatalf("chase without FDs changed query:\n%s\nvs\n%s", q, r.Query)
	}
	if r.Steps != 0 {
		t.Fatalf("Steps = %d, want 0", r.Steps)
	}
}

func TestChaseDoesNotFireOnDifferentLHS(t *testing.T) {
	q := cq.MustParse("Q(X,Y,A,B) <- R(X,Y), R(A,B).\nfd R[1] -> R[2].")
	r := Chase(q)
	if r.Steps != 0 {
		t.Fatalf("chase merged variables with distinct keys: %s", r.Query)
	}
}

func TestChaseIdempotent(t *testing.T) {
	qs := []string{
		"R0(W,X,Y,Z) <- R1(W,X,Y), R1(W,W,W), R2(Y,Z).\nkey R1[1].",
		"Q(X,Y,Z,W) <- R(X,Y,Z), R(X,Y,W).\nfd R[1],R[2] -> R[3].",
		"Q(X,Y) <- S(X,Y), S(X,X).\nkey S[1].",
	}
	for _, src := range qs {
		q := cq.MustParse(src)
		once := Chase(q)
		twice := Chase(once.Query)
		if twice.Steps != 0 || !twice.Query.Equal(once.Query) {
			t.Errorf("chase not idempotent for %q:\nonce:  %s\ntwice: %s", src, once.Query, twice.Query)
		}
		if !IsChased(once.Query) {
			t.Errorf("IsChased(chase(Q)) = false for %q", src)
		}
	}
}

func TestChaseCascades(t *testing.T) {
	// Two keys chain: unifying via S key then via T key.
	q := cq.MustParse("Q(A,B,C,D) <- S(A,B), S(A,C), T(B,D), T(C,E).\nkey S[1].\nkey T[1].")
	r := Chase(q)
	// B and C merge; then T(B,D), T(B,E) merge D and E.
	if r.Subst["C"] != r.Subst["B"] {
		t.Fatalf("Subst = %v, want B and C merged", r.Subst)
	}
	if r.Subst["E"] != r.Subst["D"] {
		t.Fatalf("Subst = %v, want D and E merged after cascade", r.Subst)
	}
}

func TestChaseInputUnmodified(t *testing.T) {
	q := cq.MustParse("R(X,Y,Z) <- S(X,Y), S(X,Z).\nfd S[1] -> S[2].")
	before := q.String()
	Chase(q)
	if q.String() != before {
		t.Fatal("Chase modified its input")
	}
}

func TestChaseKeepsFDs(t *testing.T) {
	q := cq.MustParse("R(X,Y,Z) <- S(X,Y), S(X,Z).\nfd S[1] -> S[2].")
	r := Chase(q)
	if len(r.Query.FDs) != 1 {
		t.Fatalf("FDs = %v, want carried over", r.Query.FDs)
	}
}
