// Package pool is a bounded parallel for-loop honoring context
// cancellation: the worker pool behind the parallel Yannakakis semijoin
// passes and the Engine's batch evaluation API. It exists so every parallel
// site in the module shares one tested implementation instead of growing
// ad-hoc WaitGroup choreography.
package pool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the pool width used when callers pass workers <= 0:
// one worker per available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Run calls f(i) for every i in [0, n) on at most workers goroutines
// (workers <= 0 means DefaultWorkers). The first error stops remaining
// tasks from starting — tasks already running finish — and is returned;
// context cancellation does the same and returns ctx.Err(). f must be safe
// for concurrent invocation; Run itself may be called from inside a task
// (nested fan-out oversubscribes CPUs modestly rather than deadlocking).
func Run(ctx context.Context, workers, n int, f func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next  atomic.Int64
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
	)
	fail := func(err error) {
		mu.Lock()
		if first == nil {
			first = err
		}
		mu.Unlock()
		cancel()
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if cctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := f(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if first != nil {
		return first
	}
	return ctx.Err()
}
