package spill

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// cols builds a deterministic arity×rows column set.
func cols(arity, rows, salt int) [][]uint32 {
	out := make([][]uint32, arity)
	for c := range out {
		col := make([]uint32, rows)
		for i := range col {
			col[i] = uint32(salt + c*rows + i)
		}
		out[c] = col
	}
	return out
}

func equalCols(a, b [][]uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for c := range a {
		if len(a[c]) != len(b[c]) {
			return false
		}
		for i := range a[c] {
			if a[c][i] != b[c][i] {
				return false
			}
		}
	}
	return true
}

func TestNilGovernorIsInert(t *testing.T) {
	want := cols(2, 10, 7)
	b := Manage[uint32](nil, cols(2, 10, 7), 10)
	if !b.Resident() {
		t.Fatal("inert buffer not resident")
	}
	if !equalCols(b.Cols(), want) {
		t.Fatal("inert buffer lost data")
	}
	got := b.Pin()
	b.Unpin()
	if !equalCols(got, want) {
		t.Fatal("inert Pin lost data")
	}
	var g *Governor
	if s := g.Snapshot(); s != (Stats{}) {
		t.Fatalf("nil governor snapshot = %+v, want zeros", s)
	}
	g.ResetCounters()
	g.SetAux(nil, nil)
	if err := g.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
}

func TestEvictReloadRoundtrip(t *testing.T) {
	g := NewGovernor(100, t.TempDir()) // 100 bytes: one 2×10 buffer is 80
	defer g.Close()
	want := cols(2, 10, 3)
	b := Manage(g, cols(2, 10, 3), 10)
	if !b.Resident() {
		t.Fatal("under-budget buffer should stay resident")
	}
	// A second registration pushes residency to 160 > 100: the first (cold)
	// buffer must be parked.
	b2 := Manage(g, cols(2, 10, 900), 10)
	if b.Resident() {
		t.Fatal("cold buffer not evicted over budget")
	}
	if !b2.Resident() {
		t.Fatal("hot buffer evicted instead of cold one")
	}
	st := g.Snapshot()
	if st.Evictions != 1 || st.SpilledShards != 1 || st.BytesOnDisk != 80 {
		t.Fatalf("after evict: %+v", st)
	}
	if !equalCols(b.Cols(), want) {
		t.Fatal("reloaded columns differ")
	}
	st = g.Snapshot()
	if st.ReloadedShards != 1 || st.SpilledShards != 1 || st.PinWaits != 1 {
		// Reloading b (80 bytes) pushed residency to 160 again, so b2 was
		// parked in turn: SpilledShards stays 1.
		t.Fatalf("after reload: %+v", st)
	}
	if st.BytesOnDisk != 160 {
		t.Fatalf("segments should persist after reload: %+v", st)
	}
	if st.PeakResidentBytes != 160 {
		t.Fatalf("peak = %d, want 160", st.PeakResidentBytes)
	}
}

func TestPinBlocksEviction(t *testing.T) {
	g := NewGovernor(100, t.TempDir())
	defer g.Close()
	b := Manage(g, cols(2, 10, 1), 10)
	got := b.Pin()
	Manage(g, cols(2, 10, 2), 10) // would evict b if it were unpinned
	if !b.Resident() {
		t.Fatal("pinned buffer was evicted")
	}
	if !equalCols(got, cols(2, 10, 1)) {
		t.Fatal("pinned columns changed")
	}
	b.Unpin()
	// Next enforcement pass (triggered by another registration) can now
	// park b.
	Manage(g, cols(2, 10, 3), 10)
	if b.Resident() {
		t.Fatal("unpinned cold buffer survived enforcement")
	}
	if st := g.Snapshot(); st.ResidentBytes > 160 {
		t.Fatalf("resident %d bytes, want <= 160", st.ResidentBytes)
	}
}

func TestUnlimitedBudgetNeverEvicts(t *testing.T) {
	g := NewGovernor(0, t.TempDir())
	defer g.Close()
	bufs := make([]*Buffer[uint32], 8)
	for i := range bufs {
		bufs[i] = Manage(g, cols(3, 100, i), 100)
	}
	for i, b := range bufs {
		if !b.Resident() {
			t.Fatalf("buffer %d evicted under unlimited budget", i)
		}
	}
	st := g.Snapshot()
	if st.Evictions != 0 || st.BytesOnDisk != 0 {
		t.Fatalf("unlimited budget spilled: %+v", st)
	}
	if st.ResidentBytes != 8*3*100*4 {
		t.Fatalf("resident = %d", st.ResidentBytes)
	}
}

func TestLRUOrderEvictsColdestFirst(t *testing.T) {
	g := NewGovernor(250, t.TempDir()) // three 80-byte buffers fit (240)
	defer g.Close()
	a := Manage(g, cols(2, 10, 1), 10)
	b := Manage(g, cols(2, 10, 2), 10)
	c := Manage(g, cols(2, 10, 3), 10)
	a.Pin() // touch a: b becomes coldest
	a.Unpin()
	Manage(g, cols(2, 10, 4), 10) // 320 > 250: evict coldest (b)
	if !a.Resident() || !c.Resident() {
		t.Fatal("recently used buffers evicted before the coldest")
	}
	if b.Resident() {
		t.Fatal("coldest buffer survived")
	}
}

func TestReleaseRestoresAndDeletesSegment(t *testing.T) {
	dir := t.TempDir()
	g := NewGovernor(50, dir)
	defer g.Close()
	want := cols(2, 10, 5)
	b := Manage(g, cols(2, 10, 5), 10) // 80 > 50: parked immediately
	if b.Resident() {
		t.Fatal("over-budget buffer not parked")
	}
	b.Release()
	if !b.Resident() || !equalCols(b.Cols(), want) {
		t.Fatal("released buffer lost its columns")
	}
	st := g.Snapshot()
	if st.BytesOnDisk != 0 || st.ResidentBytes != 0 || st.SpilledShards != 0 {
		t.Fatalf("release left accounting behind: %+v", st)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "cqspill-*", "*.seg"))
	if len(segs) != 0 {
		t.Fatalf("segment files survive release: %v", segs)
	}
	b.Release() // idempotent
}

func TestCloseRestoresBuffersAndRemovesDir(t *testing.T) {
	dir := t.TempDir()
	g := NewGovernor(50, dir)
	want := cols(2, 20, 9)
	b := Manage(g, cols(2, 20, 9), 20)
	if b.Resident() {
		t.Fatal("expected parked buffer")
	}
	if err := g.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if !b.Resident() || !equalCols(b.Cols(), want) {
		t.Fatal("Close lost buffer data")
	}
	dirs, _ := filepath.Glob(filepath.Join(dir, "cqspill-*"))
	if len(dirs) != 0 {
		t.Fatalf("spill dir survives Close: %v", dirs)
	}
}

func TestStaleSpillFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	// A crashed process left garbage behind, including a stale segment
	// whose name a fresh governor could plausibly generate.
	stale := filepath.Join(dir, "cqspill-deadbeef")
	if err := os.MkdirAll(stale, 0o700); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(stale, "seg-1.seg"), []byte("garbage"), 0o600); err != nil {
		t.Fatal(err)
	}
	g := NewGovernor(50, dir)
	defer g.Close()
	want := cols(2, 10, 11)
	b := Manage(g, cols(2, 10, 11), 10) // parked into a fresh private dir
	if !equalCols(b.Cols(), want) {
		t.Fatal("fresh governor read a stale segment")
	}
	if raw, err := os.ReadFile(filepath.Join(stale, "seg-1.seg")); err != nil || string(raw) != "garbage" {
		t.Fatal("governor touched a stale directory it does not own")
	}
}

func TestAuxVictimRunsWhenBuffersPinned(t *testing.T) {
	g := NewGovernor(50, t.TempDir())
	defer g.Close()
	b := Manage(g, cols(2, 10, 1), 10)
	b.Pin()
	defer b.Unpin()
	freed := int64(0)
	restored := false
	g.SetAux(func() int64 { freed += 64; return 64 }, func() { restored = true })
	Manage(g, cols(2, 10, 2), 10).Pin() // both pinned: only aux can help
	if freed == 0 {
		t.Fatal("aux victim never ran")
	}
	if st := g.Snapshot(); st.AuxReleases == 0 {
		t.Fatalf("aux releases uncounted: %+v", st)
	}
	// Close quiesces the victim and runs the restore hook before removing
	// the spill directory.
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if !restored {
		t.Fatal("Close never ran the aux restore hook")
	}
}

func TestResetCountersKeepsGauges(t *testing.T) {
	g := NewGovernor(100, t.TempDir())
	defer g.Close()
	b := Manage(g, cols(2, 10, 1), 10)
	Manage(g, cols(2, 10, 2), 10) // evicts b
	b.Cols()                      // reload
	g.ResetCounters()
	st := g.Snapshot()
	if st.Evictions != 0 || st.ReloadedShards != 0 || st.PinWaits != 0 {
		t.Fatalf("counters survive reset: %+v", st)
	}
	if st.BytesOnDisk == 0 || st.ResidentBytes == 0 {
		t.Fatalf("gauges were reset: %+v", st)
	}
	if st.PeakResidentBytes != st.ResidentBytes {
		t.Fatalf("peak should restart at current residency: %+v", st)
	}
}

// TestConcurrentPinEvictReload hammers one governor from many goroutines:
// every reader must always see its buffer's own values regardless of how
// often enforcement parks and reloads. Run under -race in CI.
func TestConcurrentPinEvictReload(t *testing.T) {
	g := NewGovernor(400, t.TempDir()) // room for ~5 of 12 buffers
	defer g.Close()
	const bufs, rows = 12, 10
	bs := make([]*Buffer[uint32], bufs)
	for i := range bs {
		bs[i] = Manage(g, cols(2, rows, i*1000), rows)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := 0; it < 200; it++ {
				b := bs[(w+it)%bufs]
				got := b.Pin()
				if got[0][0] != uint32(((w+it)%bufs)*1000) {
					t.Errorf("worker %d: wrong data after reload", w)
					b.Unpin()
					return
				}
				b.Unpin()
			}
		}(w)
	}
	wg.Wait()
	if st := g.Snapshot(); st.Evictions == 0 || st.ReloadedShards == 0 {
		t.Fatalf("stress run never spilled: %+v", st)
	}
}

// TestGovernorUsableAfterClose pins the Close contract: a governor that
// outlives a Close keeps enforcing its budget, spilling into a fresh
// private directory instead of silently failing writes into the removed
// one.
func TestGovernorUsableAfterClose(t *testing.T) {
	dir := t.TempDir()
	g := NewGovernor(100, dir)
	Manage(g, cols(2, 10, 1), 10)
	Manage(g, cols(2, 10, 2), 10) // force a first spill
	if g.Snapshot().Evictions == 0 {
		t.Fatal("setup never spilled")
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	b := Manage(g, cols(2, 10, 3), 10)
	b2 := Manage(g, cols(2, 10, 4), 10) // over budget again post-Close
	if b.Resident() && b2.Resident() {
		t.Fatal("post-Close governor stopped enforcing its budget")
	}
	want := cols(2, 10, 3)
	if !equalCols(b.Cols(), want) {
		t.Fatal("post-Close spill lost data")
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if dirs, _ := filepath.Glob(filepath.Join(dir, "cqspill-*")); len(dirs) != 0 {
		t.Fatalf("second Close left directories: %v", dirs)
	}
}

// TestReservationAccounting covers the admission-reservation gauges: Reserve
// raises ReservedBytes and its peak, Unreserve returns the slice, the peak
// survives release, ResetCounters restarts the peak from current, and a nil
// governor is inert for all three calls.
func TestReservationAccounting(t *testing.T) {
	g := NewGovernor(1<<20, t.TempDir())
	defer g.Close()
	g.Reserve(1000)
	g.Reserve(500)
	if got := g.ReservedBytes(); got != 1500 {
		t.Fatalf("ReservedBytes = %d, want 1500", got)
	}
	g.Unreserve(1000)
	st := g.Snapshot()
	if st.ReservedBytes != 500 || st.PeakReservedBytes != 1500 {
		t.Fatalf("after release: reserved=%d peak=%d, want 500/1500", st.ReservedBytes, st.PeakReservedBytes)
	}
	g.ResetCounters()
	if st = g.Snapshot(); st.PeakReservedBytes != 500 {
		t.Fatalf("peak after ResetCounters = %d, want 500 (current)", st.PeakReservedBytes)
	}
	g.Unreserve(500)
	if got := g.ReservedBytes(); got != 0 {
		t.Fatalf("ReservedBytes after full release = %d, want 0", got)
	}

	var nilGov *Governor
	nilGov.Reserve(10)
	nilGov.Unreserve(10)
	if nilGov.ReservedBytes() != 0 {
		t.Fatal("nil governor should report zero reservations")
	}
}

// TestReservationConcurrent hammers Reserve/Unreserve from many goroutines;
// run under -race this is the data-race check, and the final gauge must
// return to zero with a peak at least one reservation high.
func TestReservationConcurrent(t *testing.T) {
	g := NewGovernor(0, t.TempDir())
	defer g.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				g.Reserve(64)
				g.Unreserve(64)
			}
		}()
	}
	wg.Wait()
	st := g.Snapshot()
	if st.ReservedBytes != 0 {
		t.Fatalf("ReservedBytes = %d after balanced traffic, want 0", st.ReservedBytes)
	}
	if st.PeakReservedBytes < 64 {
		t.Fatalf("PeakReservedBytes = %d, want >= 64", st.PeakReservedBytes)
	}
}
