// Package spill is the memory governor behind Engine.WithMemoryBudget: a
// byte budget over registered column buffers plus a disk-backed segment
// store that parks cold buffers in files and loads them back on demand.
//
// # The unit of spilling
//
// The spillable unit is one Buffer — in practice the columns of one
// partition shard (internal/shard registers every shard it builds when the
// engine has a budget). Columns are flat uint32 arrays, so a segment file
// is simply each column's values in order, fixed-width little-endian: the
// storage format is the file format, and a reload is one read plus a
// widening loop, no decoding.
//
// # The pin/unpin contract
//
// Buffer.Cols returns the resident columns, reloading the segment first if
// the buffer is parked. The returned arrays are an immutable snapshot:
// managed columns are never mutated, eviction only drops the buffer's
// reference, so arrays fetched before an eviction stay valid and correct
// for as long as the caller holds them.
//
// Buffer.Pin is Cols plus a residency hold: until the matching Unpin the
// governor will not evict the buffer. Operators pin their inputs for their
// duration (relation.Gather/GatherMulti/Index/HashJoin/SemijoinOn pin the
// relations they scan; internal/shard pins every shard of a view it fans
// out over) so a shard is never written out and read back mid-operator.
// Pins nest and are cheap (one atomic add); they are a thrash guard and an
// LRU recency signal, not a correctness requirement.
//
// # Eviction policy
//
// Registration and reloads account resident bytes; when the total exceeds
// the budget the governor walks registered buffers least-recently-used
// first (recency list reusing internal/lru) and parks every unpinned one
// until residency is back under budget. A segment file, once written,
// outlives reloads — re-evicting an unchanged buffer is a free pointer
// drop — and is deleted only when the buffer is released (its relation is
// mutated, or the governor closed). If parking every unpinned buffer is
// not enough, a last-resort auxiliary victim runs once per pass: the
// Engine registers the Dict's string table, which is only needed at the
// parse/print boundary and reloads itself lazily.
//
// The budget is a target, never a hard cap: pinned buffers stay resident
// even over budget, so enforcement cannot deadlock an operator against its
// own working set. Eviction is also best-effort — a failed segment write
// keeps the data resident rather than failing the query.
//
// # Buffer lifecycle
//
// Memoized base partitions register once and live until their relation is
// mutated (Release restores plain storage) or the governor is Closed. A
// query's intermediate shards would otherwise accumulate forever, so they
// are tracked in a per-evaluation Scope and bulk-Discarded — segment file
// deleted, accounting dropped, no reload — once the evaluation's output
// has been materialized; a long-lived engine's registry, resident bytes
// and spill directory therefore plateau at the base partitions
// (Stats.RegisteredBuffers makes this observable).
//
// Under the engine's epoch store, base partitions retire with their
// epoch: a committed batch installs extended partitions for the new
// version (untouched shards keep their registration, replaced ones get a
// fresh one), and the retirement sweep Discards every buffer reachable
// only from reclaimed epochs — including partition memos that an earlier
// design left orphaned in the registry after invalidation. Registered
// buffers and bytes on disk thus return to the live snapshot's footprint
// after each epoch drains, which the regression tests assert.
//
// # Budget reservations
//
// A serving front-end admits queries against the same budget the governor
// evicts toward: before a query runs, its planner-derived worst-case size
// estimate is Reserved out of the budget, and the admission controller
// (internal/serve) queues or rejects work whose reservation no longer
// fits. Reservations are pure accounting — Stats.ReservedBytes next to
// ResidentBytes shows committed versus actual memory — and never gate the
// governor's own eviction, so an admitted query can still run (and spill)
// past its estimate rather than wedge. Unreserve returns the slice when
// the query releases its admission ticket.
//
// # What is never spilled
//
// Only registered column buffers spill. Hash indexes, dedup maps, column
// statistics and generic-join tries (the relation memo table), in-flight
// exchange streams mid-operator, and the flat relations callers hold
// directly are never parked; a shard's derived structures are rebuilt from
// the reloaded columns if needed. Spill directories are private per
// governor (a fresh MkdirTemp under the configured dir), so stale files
// left by a crashed process are never read and a fresh Engine ignores
// them.
package spill
