package spill

// The memory governor and the disk-backed column-buffer store; package
// documentation (the pin/unpin contract, the eviction policy, what is never
// spilled) lives in doc.go.

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"cqbound/internal/lru"
)

// Stats is a point-in-time copy of a governor's counters.
type Stats struct {
	// SpilledShards is the number of registered buffers currently parked on
	// disk and not resident (a gauge).
	SpilledShards int64
	// ReloadedShards counts reloads of parked buffers back into memory
	// since the governor was built (or ResetCounters).
	ReloadedShards int64
	// BytesOnDisk is the total size of live spill files (a gauge; a file
	// persists after reload so re-evicting its buffer is a free pointer
	// drop, and is deleted only when the buffer is discarded).
	BytesOnDisk int64
	// Evictions counts buffers moved out of memory since the governor was
	// built (or ResetCounters), including re-evictions of already-written
	// segments.
	Evictions int64
	// PinWaits counts Pin and Cols calls that found their buffer parked and
	// had to wait for the segment to load (their own read, or a concurrent
	// caller's).
	PinWaits int64
	// ResidentBytes is the column bytes of registered buffers currently in
	// memory (a gauge). Pinned buffers count even when the governor is over
	// budget: the budget is a target the governor evicts toward, never a
	// hard cap that could deadlock pinned operators.
	ResidentBytes int64
	// PeakResidentBytes is the high-water mark of ResidentBytes — the
	// figure the cqbench budget sweep derives its 1/2 and 1/4 budgets from.
	PeakResidentBytes int64
	// AuxReleases counts calls to the auxiliary victim (the Dict's string
	// table) made because evicting every unpinned buffer still left the
	// governor over budget.
	AuxReleases int64
	// RegisteredBuffers is the number of buffers the governor currently
	// tracks, resident or parked (a gauge). On a long-lived engine it
	// should plateau at the memoized base partitions: per-evaluation
	// intermediates are scope-discarded when their evaluation returns.
	RegisteredBuffers int64
	// ReservedBytes is the budget currently committed to admitted work via
	// Reserve (a gauge): the admission controller of a serving front-end
	// carves a per-query slice of the budget out before the query runs, so
	// the sum of in-flight worst-case estimates stays visible next to the
	// actual residency. Reservations are bookkeeping, not enforcement —
	// the governor still evicts toward its byte budget regardless — and
	// all zeros when nothing sits in front of the engine.
	ReservedBytes int64
	// PeakReservedBytes is the high-water mark of ReservedBytes.
	PeakReservedBytes int64
}

// Governor tracks the resident bytes of every registered buffer and, when a
// byte budget is exceeded, evicts the least recently used unpinned buffers
// to file-backed segments in a private spill directory. A nil *Governor is
// inert: Manage returns an always-resident buffer, so callers thread one
// pointer instead of branching. A Governor is safe for concurrent use.
type Governor struct {
	budget int64 // <= 0 means unlimited (never evict)
	base   string

	// mu guards the recency cache, the id sequence, the lazily created
	// spill directory, and the aux fields. It is never held across file
	// IO or while taking a buffer's lock: the lock order is buffer.mu
	// before Governor.mu.
	mu  sync.Mutex
	dir string // "" until first spill; reset by Close

	// res is the recency list of RESIDENT buffers only — eviction removes
	// an entry, reload re-inserts it — so an enforcement pass scans live
	// eviction candidates, not everything ever registered. all is the full
	// registry (resident and parked) that Close and Release maintain.
	res *lru.Cache[evictable]
	all map[string]evictable
	seq int

	// auxMu serializes invocations of the aux victim and fences them
	// against Close: Close acquires it, so an in-flight aux call (which
	// may park the dictionary) completes before Close restores and
	// removes the spill directory. Lock order: auxMu before mu.
	auxMu      sync.Mutex
	aux        func() int64
	auxRestore func()
	// auxSpentGen is the activity generation at which the last aux call
	// freed nothing; while the generation is unchanged further calls are
	// skipped (the victim is exhausted and re-parking cannot help until
	// buffer traffic changes the picture). activity ticks on every
	// successful eviction and reload.
	auxSpentGen int64
	activity    atomic.Int64

	resident     atomic.Int64
	peak         atomic.Int64
	spilled      atomic.Int64
	reloaded     atomic.Int64
	onDisk       atomic.Int64
	evicted      atomic.Int64
	pinWaits     atomic.Int64
	auxRuns      atomic.Int64
	reserved     atomic.Int64
	peakReserved atomic.Int64
}

// evictable is the governor's view of a buffer: enough to push it out of
// memory without knowing its element type.
type evictable interface {
	// tryEvict parks the buffer if it is resident and unpinned, returning
	// the bytes freed (0 when it was pinned, already parked, or the write
	// failed — eviction is best-effort, failures keep data resident).
	tryEvict() int64
}

// governorCapacity bounds the recency cache. Eviction is by bytes, not
// entry count, so the capacity only needs to exceed any plausible number
// of simultaneously registered shards.
const governorCapacity = 1 << 30

// NewGovernor returns a governor enforcing the given byte budget (<= 0
// means unlimited: buffers are tracked but never evicted). Spill files go
// into a fresh private directory under dir (os.TempDir() when dir is "");
// the directory name is unique per governor, so stale files left by a
// crashed process are never read — a fresh Engine simply ignores them.
func NewGovernor(budget int64, dir string) *Governor {
	if dir == "" {
		dir = os.TempDir()
	}
	return &Governor{
		budget: budget,
		base:   dir,
		res:    lru.New[evictable](governorCapacity),
		all:    make(map[string]evictable),
		// -1: no generation has had a fruitless aux attempt yet.
		auxSpentGen: -1,
	}
}

// Budget returns the configured byte budget (<= 0 means unlimited).
func (g *Governor) Budget() int64 {
	if g == nil {
		return 0
	}
	return g.budget
}

// SetAux installs the last-resort victim: a release hook (returning bytes
// freed) called at most once per enforcement pass when evicting every
// unpinned buffer still leaves the governor over budget, plus a restore
// hook Close runs — after quiescing in-flight releases and before
// removing the spill directory — to undo whatever release parked there.
// The Engine parks the Dict's string table through the pair. Either
// function may be nil.
func (g *Governor) SetAux(release func() int64, restore func()) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.aux = release
	g.auxRestore = restore
	g.auxSpentGen = -1 // fresh victim: nothing exhausted yet
	g.mu.Unlock()
}

// Snapshot copies the governor's counters (nil-safe: all zeros).
func (g *Governor) Snapshot() Stats {
	if g == nil {
		return Stats{}
	}
	g.mu.Lock()
	registered := int64(len(g.all))
	g.mu.Unlock()
	return Stats{
		SpilledShards:     g.spilled.Load(),
		ReloadedShards:    g.reloaded.Load(),
		BytesOnDisk:       g.onDisk.Load(),
		Evictions:         g.evicted.Load(),
		PinWaits:          g.pinWaits.Load(),
		ResidentBytes:     g.resident.Load(),
		PeakResidentBytes: g.peak.Load(),
		AuxReleases:       g.auxRuns.Load(),
		RegisteredBuffers: registered,
		ReservedBytes:     g.reserved.Load(),
		PeakReservedBytes: g.peakReserved.Load(),
	}
}

// Reserve records bytes of the budget as committed to one admitted unit of
// work — the scope-reservation half of a serving front-end's admission
// control. The governor does not gate anything on reservations (the budget
// stays a soft eviction target; a query is never wedged against its own
// reservation): the caller decides, from ReservedBytes vs Budget, whether
// to admit, queue, or reject the next query. Balance every Reserve with
// exactly one Unreserve of the same size. Nil-safe.
func (g *Governor) Reserve(bytes int64) {
	if g == nil || bytes <= 0 {
		return
	}
	now := g.reserved.Add(bytes)
	for {
		p := g.peakReserved.Load()
		if now <= p || g.peakReserved.CompareAndSwap(p, now) {
			return
		}
	}
}

// Unreserve returns a Reserve's bytes to the budget. Nil-safe.
func (g *Governor) Unreserve(bytes int64) {
	if g == nil || bytes <= 0 {
		return
	}
	if g.reserved.Add(-bytes) < 0 {
		panic("spill: Unreserve without matching Reserve")
	}
}

// ReservedBytes returns the budget currently committed via Reserve
// (nil-safe: 0).
func (g *Governor) ReservedBytes() int64 {
	if g == nil {
		return 0
	}
	return g.reserved.Load()
}

// EventCounts returns the cumulative eviction and reload counters with
// two atomic loads — cheap enough for executors to diff around individual
// plan stages when annotating trace spans (nil-safe).
func (g *Governor) EventCounts() (evictions, reloads int64) {
	if g == nil {
		return 0, 0
	}
	return g.evicted.Load(), g.reloaded.Load()
}

// ResetCounters zeroes the cumulative counters (reloads, evictions, pin
// waits, aux releases) while leaving the gauges — resident bytes, bytes on
// disk, spilled shards — alone: those describe present state, not history.
// The peak-resident high-water mark restarts from the current residency.
func (g *Governor) ResetCounters() {
	if g == nil {
		return
	}
	g.reloaded.Store(0)
	g.evicted.Store(0)
	g.pinWaits.Store(0)
	g.auxRuns.Store(0)
	g.peak.Store(g.resident.Load())
	g.peakReserved.Store(g.reserved.Load())
}

// spillDir lazily creates the governor's private spill directory. Close
// resets it, so a governor that outlives a Close lazily creates a fresh
// directory on its next spill instead of writing into a removed path. A
// failed MkdirTemp is not cached: the next caller retries.
func (g *Governor) spillDir() (string, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.dir != "" {
		return g.dir, nil
	}
	dir, err := os.MkdirTemp(g.base, "cqspill-")
	if err != nil {
		return "", err
	}
	g.dir = dir
	return dir, nil
}

// SpillPath returns a path for an auxiliary spill file inside the
// governor's private directory — where the Engine parks the Dict's string
// table. The directory is created on first use.
func (g *Governor) SpillPath(name string) (string, error) {
	dir, err := g.spillDir()
	if err != nil {
		return "", err
	}
	return filepath.Join(dir, name), nil
}

// Close discards every registered buffer — reloading parked ones so their
// relations stay readable as plain resident storage — and removes the spill
// directory. The governor remains usable (a later Manage re-creates a
// directory), but Close is meant as the end-of-life hook: Engine.Close
// calls it.
func (g *Governor) Close() error {
	if g == nil {
		return nil
	}
	// Quiesce the aux victim: wait out any in-flight release, disable
	// further ones, and undo its parking before the directory goes away.
	g.auxMu.Lock()
	g.mu.Lock()
	restore := g.auxRestore
	g.aux = nil
	g.auxRestore = nil
	// Snapshot the full registry (resident and parked buffers) and retire
	// the directory in the same critical section: an eviction racing
	// Close either targets a snapshotted buffer (detached below, its
	// old-directory segment read back before removal) or spills into a
	// fresh directory.
	bufs := make([]evictable, 0, len(g.all))
	for _, b := range g.all {
		bufs = append(bufs, b)
	}
	dir := g.dir
	g.dir = "" // a later spill re-creates a fresh directory
	g.mu.Unlock()
	if restore != nil {
		restore()
	}
	g.auxMu.Unlock()
	var firstErr error
	for _, b := range bufs {
		if d, ok := b.(interface{ detach() error }); ok {
			if err := d.detach(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	if dir != "" {
		if err := os.RemoveAll(dir); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// register tracks a new buffer and enforces the budget.
func (g *Governor) register(id string, b evictable, bytes int64) {
	g.mu.Lock()
	g.res.Put(id, b)
	g.all[id] = b
	g.mu.Unlock()
	g.addResident(bytes)
	g.enforce()
}

// addResident accounts bytes coming into memory, maintaining the peak.
func (g *Governor) addResident(bytes int64) {
	now := g.resident.Add(bytes)
	for {
		p := g.peak.Load()
		if now <= p || g.peak.CompareAndSwap(p, now) {
			return
		}
	}
}

// touch marks a resident buffer recently used, re-inserting it into the
// recency list when a reload brought it back from disk.
func (g *Governor) touch(id string, b evictable) {
	g.mu.Lock()
	if _, ok := g.res.Get(id); !ok {
		g.res.Put(id, b)
	}
	g.mu.Unlock()
}

// parked drops an evicted buffer from the recency list: parked buffers are
// not eviction candidates until a reload re-inserts them.
func (g *Governor) parked(id string) {
	g.mu.Lock()
	g.res.Remove(id)
	g.mu.Unlock()
}

// forget drops a discarded buffer entirely.
func (g *Governor) forget(id string) {
	g.mu.Lock()
	g.res.Remove(id)
	delete(g.all, id)
	g.mu.Unlock()
}

// nextID allocates a buffer id (also the spill file's base name).
func (g *Governor) nextID() string {
	g.mu.Lock()
	g.seq++
	id := fmt.Sprintf("seg-%d", g.seq)
	g.mu.Unlock()
	return id
}

// enforce evicts cold unpinned buffers, oldest first, until residency is
// within budget or nothing more can move. It never blocks on pinned
// buffers — the budget is a target, not a hard cap — and calls the
// auxiliary victim at most once when buffer eviction alone is not enough.
//
// Candidates are collected in small chunks from the cold end of the
// recency list (lru.Backward), not as one full-registry scan: a governor
// sitting at its budget — the normal regime of a forced-spill run — pays
// O(evictions) per pass, not O(registered shards). Eviction itself runs
// outside Governor.mu (tryEvict takes the buffer's lock and does file
// IO), so chunks may overlap with concurrent touches; tryEvict re-checks
// pins and residency per buffer.
func (g *Governor) enforce() {
	if g == nil || g.budget <= 0 || g.resident.Load() <= g.budget {
		return
	}
	const chunk = 8
	tried := make(map[evictable]bool)
	for g.resident.Load() > g.budget {
		var cands []evictable
		g.mu.Lock()
		g.res.Backward(func(_ string, b evictable) bool {
			if !tried[b] {
				cands = append(cands, b)
			}
			return len(cands) < chunk
		})
		g.mu.Unlock()
		if len(cands) == 0 {
			break // every resident buffer already tried (all pinned)
		}
		for _, b := range cands {
			tried[b] = true
			if g.resident.Load() <= g.budget {
				return
			}
			b.tryEvict()
		}
	}
	if g.resident.Load() <= g.budget {
		return
	}
	// Last resort, serialized and fenced against Close: park the aux
	// victim (the Dict's string table) once per pass — but not when the
	// last attempt freed nothing and no buffer has moved since (the
	// victim is exhausted; hammering its global lock on every pass of a
	// pinned-over-budget run buys nothing).
	gen := g.activity.Load()
	g.auxMu.Lock()
	g.mu.Lock()
	aux := g.aux
	spent := g.auxSpentGen == gen
	g.mu.Unlock()
	if aux != nil && !spent {
		if freed := aux(); freed > 0 {
			g.auxRuns.Add(1)
		} else {
			g.mu.Lock()
			g.auxSpentGen = gen
			g.mu.Unlock()
		}
	}
	g.auxMu.Unlock()
}

// Buffer is one spillable unit — the columns of one shard — either resident
// as [][]V arrays or parked in a fixed-width little-endian segment file.
// The arrays are immutable once managed: eviction drops the buffer's
// reference and reload reads a fresh copy, so a reader that fetched the
// arrays before an eviction keeps a valid snapshot (the happens-before edge
// is the atomic data pointer). V is constrained to uint32-width values so
// the segment format is the storage format.
type Buffer[V ~uint32] struct {
	// gov is the owning governor, nil after detach/Discard. An atomic
	// pointer because readers (Pin/load) check it without the buffer
	// lock while Release/Discard — e.g. Engine.Close racing an in-flight
	// evaluation — clear it.
	gov   atomic.Pointer[Governor]
	id    string
	rows  int
	bytes int64

	data atomic.Pointer[[][]V]
	pins atomic.Int64

	// scope, when set by Scope.Track, receives this buffer's spill events
	// (evictions, reloads, pin waits) in addition to the governor's
	// engine-wide counters — the per-evaluation attribution the trace
	// layer reads.
	scope atomic.Pointer[Scope]

	// mu serializes park/load transitions and file IO. Lock order:
	// Buffer.mu before Governor.mu.
	mu     sync.Mutex
	path   string
	onDisk bool
	arity  int
}

// Manage registers cols (rows valid rows per column) with the governor and
// returns the buffer now owning them. The caller must treat the arrays as
// immutable from this point on. A nil governor returns an inert buffer that
// is always resident and never files anything.
func Manage[V ~uint32](g *Governor, cols [][]V, rows int) *Buffer[V] {
	// Trim capacity slack out of the accounting and the arrays themselves:
	// the buffer's contract is "rows × arity × 4 bytes".
	for c := range cols {
		cols[c] = cols[c][:rows:rows]
	}
	b := &Buffer[V]{rows: rows, arity: len(cols), bytes: int64(rows) * int64(len(cols)) * 4}
	b.data.Store(&cols)
	if g != nil {
		b.gov.Store(g)
		b.id = g.nextID()
		g.register(b.id, b, b.bytes)
	}
	return b
}

// Bytes returns the column bytes this buffer accounts for.
func (b *Buffer[V]) Bytes() int64 { return b.bytes }

// attachScope points the buffer's spill events at a scope's counters;
// Scope.Track calls it through an interface assertion.
func (b *Buffer[V]) attachScope(s *Scope) { b.scope.Store(s) }

// Resident reports whether the columns are currently in memory.
func (b *Buffer[V]) Resident() bool { return b.data.Load() != nil }

// Cols returns the resident columns, loading the segment back first when
// the buffer is parked. The returned arrays are an immutable snapshot: they
// stay valid (and correct) even if the buffer is evicted afterwards.
func (b *Buffer[V]) Cols() [][]V {
	if p := b.data.Load(); p != nil {
		return *p
	}
	return b.load()
}

// Pin returns the resident columns and holds them resident — the buffer
// cannot be evicted — until the matching Unpin. Pins nest.
func (b *Buffer[V]) Pin() [][]V {
	b.pins.Add(1)
	if p := b.data.Load(); p != nil {
		if g := b.gov.Load(); g != nil {
			g.touch(b.id, b)
		}
		return *p
	}
	return b.load()
}

// Unpin releases a Pin.
func (b *Buffer[V]) Unpin() {
	if b.pins.Add(-1) < 0 {
		panic("spill: Unpin without matching Pin")
	}
}

// load reads the segment back into memory (or returns the columns loaded
// by a concurrent caller), counting the reload and the wait.
func (b *Buffer[V]) load() [][]V {
	g := b.gov.Load()
	if g == nil {
		// Release/detach restores residency before clearing the governor,
		// so a reader that raced it re-checks under the lock and finds
		// the data. Parked data with no governor only exists after
		// Discard, whose contract forbids further reads.
		b.mu.Lock()
		p := b.data.Load()
		b.mu.Unlock()
		if p != nil {
			return *p
		}
		panic("spill: read of a discarded parked buffer")
	}
	g.pinWaits.Add(1)
	b.scope.Load().notePinWait()
	b.mu.Lock()
	cols := b.loadLocked(g)
	b.mu.Unlock()
	// Reloading may push the governor over budget; evict colder buffers.
	// Outside b.mu: enforcement takes other buffers' locks.
	g.enforce()
	return cols
}

// loadLocked is load's body; the caller holds b.mu and resolved the
// governor.
func (b *Buffer[V]) loadLocked(g *Governor) [][]V {
	if p := b.data.Load(); p != nil {
		return *p
	}
	raw, err := os.ReadFile(b.path)
	if err != nil || len(raw) != int(b.bytes) {
		// A missing or truncated segment is unrecoverable storage loss;
		// every caller of Cols is a read of relation storage that cannot
		// fail. This cannot happen short of outside interference with the
		// governor's private directory.
		panic(fmt.Sprintf("spill: segment %s corrupt: read %d bytes of %d (err %v)", b.path, len(raw), b.bytes, err))
	}
	cols := make([][]V, b.arity)
	off := 0
	for c := range cols {
		col := make([]V, b.rows)
		for i := range col {
			col[i] = V(binary.LittleEndian.Uint32(raw[off:]))
			off += 4
		}
		cols[c] = col
	}
	b.data.Store(&cols)
	g.spilled.Add(-1)
	g.reloaded.Add(1)
	b.scope.Load().noteReload()
	g.activity.Add(1)
	g.addResident(b.bytes)
	g.touch(b.id, b)
	return cols
}

// tryEvict implements evictable: park the columns in the segment file and
// drop the in-memory arrays, unless the buffer is pinned, already parked,
// or busy. TryLock (rather than Lock) keeps enforcement deadlock-free: a
// buffer mid-load holds its own lock while enforcing, and two concurrent
// loads must not queue on evicting each other.
func (b *Buffer[V]) tryEvict() int64 {
	if !b.mu.TryLock() {
		return 0
	}
	defer b.mu.Unlock()
	g := b.gov.Load()
	if g == nil || b.pins.Load() > 0 {
		return 0
	}
	p := b.data.Load()
	if p == nil {
		return 0
	}
	if !b.onDisk {
		if err := b.write(*p, g); err != nil {
			return 0 // best effort: keep the data resident
		}
		b.onDisk = true
		g.onDisk.Add(b.bytes)
	}
	b.data.Store(nil)
	// Re-check pins after the nil store: Pin increments before it loads
	// the data pointer, so a racing Pin either saw nil (its slow path
	// waits on b.mu and reloads) or is visible here — in which case undo,
	// honoring Pin's cannot-be-evicted contract (the segment write stays
	// valid either way).
	if b.pins.Load() > 0 {
		b.data.Store(p)
		return 0
	}
	g.resident.Add(-b.bytes)
	g.spilled.Add(1)
	g.evicted.Add(1)
	b.scope.Load().noteEvict(b.bytes)
	g.activity.Add(1)
	// Leave the recency list: a parked buffer is no candidate until a
	// reload re-inserts it, keeping enforcement scans O(resident).
	g.parked(b.id)
	return b.bytes
}

// writeBlockBytes is the scratch-buffer size of segment writes: eviction
// happens exactly when memory is tight, so serialization must not
// allocate the shard's own footprint a second time.
const writeBlockBytes = 64 << 10

// write serializes the columns into the segment file: each column in
// order, each value a fixed-width little-endian uint32, streamed through
// a fixed-size block buffer. The write goes to a temp name and is renamed
// into place so a half-written segment is never read.
func (b *Buffer[V]) write(cols [][]V, g *Governor) error {
	dir, err := g.spillDir()
	if err != nil {
		return err
	}
	if b.path == "" {
		b.path = filepath.Join(dir, b.id+".seg")
	}
	tmp := b.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	buf := make([]byte, 0, writeBlockBytes)
	for _, col := range cols {
		for _, v := range col[:b.rows] {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
			if len(buf) == cap(buf) {
				if _, err := f.Write(buf); err != nil {
					return fail(err)
				}
				buf = buf[:0]
			}
		}
	}
	if len(buf) > 0 {
		if _, err := f.Write(buf); err != nil {
			return fail(err)
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, b.path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Release detaches the buffer from its governor: the columns are made
// resident (reloading if parked), the segment file is deleted, and the
// governor stops tracking the buffer. Called when a managed relation is
// about to be mutated — the storage contract reverts to plain slices.
func (b *Buffer[V]) Release() {
	_ = b.detach()
}

// Discard drops the buffer's spill state WITHOUT restoring residency: the
// segment file is deleted, the governor's accounting and registry forget
// the buffer, and parked contents are simply gone. Only for buffers whose
// relation is garbage — one evaluation's intermediates after the
// evaluation returned (Scope batches these). Resident columns stay
// readable by stragglers; a parked discarded buffer must never be read
// again. Idempotent, and a no-op after Release.
func (b *Buffer[V]) Discard() {
	b.mu.Lock()
	g := b.gov.Load()
	if g == nil {
		b.mu.Unlock()
		return
	}
	resident := b.data.Load() != nil
	if b.onDisk {
		b.onDisk = false
		g.onDisk.Add(-b.bytes)
		_ = os.Remove(b.path)
	}
	b.gov.Store(nil)
	b.mu.Unlock()
	if resident {
		g.resident.Add(-b.bytes)
	} else {
		g.spilled.Add(-1)
	}
	g.forget(b.id)
}

// Scope batches the transient buffers of one evaluation — intermediates
// that are garbage once the evaluation returns — for bulk Discard, so a
// long-lived engine's governor does not accumulate resident bytes,
// registry entries, and segment files per query. Track is safe for
// concurrent use (operators govern outputs from pool workers); Close is
// called once, after the last read of the tracked relations.
type Scope struct {
	mu   sync.Mutex
	bufs []interface{ Discard() }

	// Per-scope event counters: governor activity on the buffers tracked
	// here, i.e. exactly this evaluation's transient intermediates. The
	// engine's trace layer reads them through Events to attribute spill
	// traffic to a single query without contamination from concurrent
	// evaluations (whose transients live in their own scopes).
	evictions    atomic.Int64
	reloads      atomic.Int64
	pinWaits     atomic.Int64
	spilledBytes atomic.Int64
}

// NewScope returns an empty scope.
func NewScope() *Scope { return &Scope{} }

// Track registers a buffer for discard at Close (nil-safe on both sides).
// Buffers that support it are also attached to the scope's event counters
// (a buffer re-tracked by a later scope reports to the latest one).
func (s *Scope) Track(b interface{ Discard() }) {
	if s == nil || b == nil {
		return
	}
	if a, ok := b.(interface{ attachScope(*Scope) }); ok {
		a.attachScope(s)
	}
	s.mu.Lock()
	s.bufs = append(s.bufs, b)
	s.mu.Unlock()
}

// Events is a point-in-time copy of a scope's spill-event counters.
type Events struct {
	// Evictions counts the scope's buffers parked to disk.
	Evictions int64
	// Reloads counts the scope's buffers faulted back from disk.
	Reloads int64
	// PinWaits counts reads of the scope's buffers that had to wait on a
	// segment load.
	PinWaits int64
	// SpilledBytes totals the bytes the evictions wrote out — the
	// per-query spill volume the engine's histograms observe.
	SpilledBytes int64
}

// Events returns the scope's counters (nil-safe). Valid after Close too:
// Close discards buffers but keeps the history.
func (s *Scope) Events() Events {
	if s == nil {
		return Events{}
	}
	return Events{
		Evictions:    s.evictions.Load(),
		Reloads:      s.reloads.Load(),
		PinWaits:     s.pinWaits.Load(),
		SpilledBytes: s.spilledBytes.Load(),
	}
}

func (s *Scope) noteEvict(bytes int64) {
	if s != nil {
		s.evictions.Add(1)
		s.spilledBytes.Add(bytes)
	}
}

func (s *Scope) noteReload() {
	if s != nil {
		s.reloads.Add(1)
	}
}

func (s *Scope) notePinWait() {
	if s != nil {
		s.pinWaits.Add(1)
	}
}

// Close discards every tracked buffer.
func (s *Scope) Close() {
	if s == nil {
		return
	}
	s.mu.Lock()
	bufs := s.bufs
	s.bufs = nil
	s.mu.Unlock()
	for _, b := range bufs {
		b.Discard()
	}
}

// detach is Release's body, named for Governor.Close.
func (b *Buffer[V]) detach() error {
	b.mu.Lock()
	g := b.gov.Load()
	if g == nil {
		b.mu.Unlock()
		return nil
	}
	if b.data.Load() == nil {
		b.loadLocked(g) // restore residency so the owner keeps readable storage
	}
	if b.onDisk {
		b.onDisk = false
		g.onDisk.Add(-b.bytes)
		_ = os.Remove(b.path)
	}
	b.gov.Store(nil)
	b.mu.Unlock()
	g.resident.Add(-b.bytes)
	g.forget(b.id)
	return nil
}
