package datagen

import (
	"math/rand"
	"testing"
)

func TestRandomQueryAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		q := RandomQuery(rng, QueryParams{
			MaxVars: 6, MaxAtoms: 5, MaxArity: 4,
			HeadFraction: 0.5, RepeatRelationProb: 0.4,
			SimpleFDProb: 0.3, CompoundFDProb: 0.3,
		})
		if err := q.Validate(); err != nil {
			t.Fatalf("iteration %d: invalid query %s: %v", i, q, err)
		}
	}
}

func TestRandomQueryDeterministic(t *testing.T) {
	p := QueryParams{MaxVars: 5, MaxAtoms: 4, MaxArity: 3, HeadFraction: 0.5, SimpleFDProb: 0.2}
	a := RandomQuery(rand.New(rand.NewSource(42)), p)
	b := RandomQuery(rand.New(rand.NewSource(42)), p)
	if !a.Equal(b) {
		t.Fatalf("same seed, different queries:\n%s\nvs\n%s", a, b)
	}
}

func TestRandomDatabaseSatisfiesFDs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		q := RandomQuery(rng, QueryParams{
			MaxVars: 5, MaxAtoms: 4, MaxArity: 4,
			HeadFraction: 0.5, SimpleFDProb: 0.5, CompoundFDProb: 0.5,
		})
		db := RandomDatabase(rng, q, DBParams{Tuples: 20, Universe: 3})
		if err := db.CheckFDs(q); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		for _, rel := range q.BodyRelations() {
			if db.Relation(rel) == nil {
				t.Fatalf("iteration %d: missing relation %s", i, rel)
			}
		}
	}
}

func TestRandomDatabaseNonEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q := RandomQuery(rng, QueryParams{MaxVars: 3, MaxAtoms: 2, MaxArity: 2, HeadFraction: 1})
	db := RandomDatabase(rng, q, DBParams{Tuples: 5, Universe: 10})
	for _, rel := range q.BodyRelations() {
		if db.Relation(rel).Size() == 0 {
			t.Fatalf("relation %s empty", rel)
		}
	}
}
