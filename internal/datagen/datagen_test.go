package datagen

import (
	"math/rand"
	"testing"

	"cqbound/internal/cq"
	"cqbound/internal/relation"
)

func TestRandomQueryAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		q := RandomQuery(rng, QueryParams{
			MaxVars: 6, MaxAtoms: 5, MaxArity: 4,
			HeadFraction: 0.5, RepeatRelationProb: 0.4,
			SimpleFDProb: 0.3, CompoundFDProb: 0.3,
		})
		if err := q.Validate(); err != nil {
			t.Fatalf("iteration %d: invalid query %s: %v", i, q, err)
		}
	}
}

func TestRandomQueryDeterministic(t *testing.T) {
	p := QueryParams{MaxVars: 5, MaxAtoms: 4, MaxArity: 3, HeadFraction: 0.5, SimpleFDProb: 0.2}
	a := RandomQuery(rand.New(rand.NewSource(42)), p)
	b := RandomQuery(rand.New(rand.NewSource(42)), p)
	if !a.Equal(b) {
		t.Fatalf("same seed, different queries:\n%s\nvs\n%s", a, b)
	}
}

func TestRandomDatabaseSatisfiesFDs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		q := RandomQuery(rng, QueryParams{
			MaxVars: 5, MaxAtoms: 4, MaxArity: 4,
			HeadFraction: 0.5, SimpleFDProb: 0.5, CompoundFDProb: 0.5,
		})
		db := RandomDatabase(rng, q, DBParams{Tuples: 20, Universe: 3})
		if err := db.CheckFDs(q); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		for _, rel := range q.BodyRelations() {
			if db.Relation(rel) == nil {
				t.Fatalf("iteration %d: missing relation %s", i, rel)
			}
		}
	}
}

func TestRandomDatabaseNonEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q := RandomQuery(rng, QueryParams{MaxVars: 3, MaxAtoms: 2, MaxArity: 2, HeadFraction: 1})
	db := RandomDatabase(rng, q, DBParams{Tuples: 5, Universe: 10})
	for _, rel := range q.BodyRelations() {
		if db.Relation(rel).Size() == 0 {
			t.Fatalf("relation %s empty", rel)
		}
	}
}

func TestZipfDatabaseIsSkewedAndFDClean(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	q := cq.MustParse("Q(X,Y) <- R1(X,Y), R2(Y,X).")
	db := RandomDatabase(rng, q, DBParams{Tuples: 200, Universe: 20, ZipfS: 1.8})
	if err := db.CheckFDs(q); err != nil {
		t.Fatal(err)
	}
	// The hottest value of R1's first column should hold well more than the
	// uniform share (200/20 = 10 rows before dedup).
	r := db.Relation("R1")
	counts := make(map[relation.Value]int)
	for _, v := range r.Column(0) {
		counts[v]++
	}
	hot := 0
	for _, c := range counts {
		if c > hot {
			hot = c
		}
	}
	if hot*4 < r.Size() {
		t.Fatalf("zipf s=1.8: hottest value has %d of %d rows — not skewed", hot, r.Size())
	}
	// Determinism: the same seed reproduces the same instance.
	db2 := RandomDatabase(rand.New(rand.NewSource(77)), cq.MustParse("Q(X,Y) <- R1(X,Y), R2(Y,X)."), DBParams{Tuples: 200, Universe: 20, ZipfS: 1.8})
	if !relation.Equal(db.Relation("R1"), db2.Relation("R1")) {
		t.Fatal("zipf generation not deterministic under a fixed seed")
	}
}

func TestZipfEdgeDBSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	db := ZipfEdgeDB(rng, []string{"E"}, 2000, 100, 1.5)
	r := db.Relation("E")
	counts := make(map[relation.Value]int)
	for _, v := range r.Column(0) {
		counts[v]++
	}
	hot := 0
	for _, c := range counts {
		if c > hot {
			hot = c
		}
	}
	if hot*10 < r.Size() {
		t.Fatalf("zipf edges: hottest node has %d of %d rows — not skewed", hot, r.Size())
	}
}
