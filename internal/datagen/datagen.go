// Package datagen produces seeded random conjunctive queries and database
// instances for tests and benchmarks. Everything is deterministic given the
// *rand.Rand passed in, so failures reproduce.
package datagen

import (
	"fmt"
	"math/rand"

	"cqbound/internal/cq"
)

// QueryParams controls RandomQuery.
type QueryParams struct {
	// MaxVars bounds the variable pool (at least 1 used).
	MaxVars int
	// MaxAtoms bounds the number of body atoms (at least 1).
	MaxAtoms int
	// MaxArity bounds relation arity (at least 1).
	MaxArity int
	// HeadFraction is the probability that each used variable appears in
	// the head; at least one always does.
	HeadFraction float64
	// RepeatRelationProb is the chance an atom reuses an earlier relation
	// name (with its arity), producing rep(Q) > 1.
	RepeatRelationProb float64
	// SimpleFDProb is the per-(relation, ordered position pair) probability
	// of declaring the simple dependency R[i] -> R[j].
	SimpleFDProb float64
	// CompoundFDProb is the per-relation probability of declaring one
	// compound dependency with a 2-position left-hand side (requires
	// arity >= 3 to be non-trivial).
	CompoundFDProb float64
}

// RandomQuery generates a valid conjunctive query. The result always passes
// (*cq.Query).Validate.
func RandomQuery(rng *rand.Rand, p QueryParams) *cq.Query {
	if p.MaxVars < 1 {
		p.MaxVars = 1
	}
	if p.MaxAtoms < 1 {
		p.MaxAtoms = 1
	}
	if p.MaxArity < 1 {
		p.MaxArity = 1
	}
	nVars := 1 + rng.Intn(p.MaxVars)
	pool := make([]cq.Variable, nVars)
	for i := range pool {
		pool[i] = cq.Variable(fmt.Sprintf("V%d", i+1))
	}
	nAtoms := 1 + rng.Intn(p.MaxAtoms)

	q := &cq.Query{}
	type relInfo struct {
		name  string
		arity int
	}
	var rels []relInfo
	for i := 0; i < nAtoms; i++ {
		var ri relInfo
		if len(rels) > 0 && rng.Float64() < p.RepeatRelationProb {
			ri = rels[rng.Intn(len(rels))]
		} else {
			ri = relInfo{name: fmt.Sprintf("R%d", len(rels)+1), arity: 1 + rng.Intn(p.MaxArity)}
			rels = append(rels, ri)
		}
		a := cq.Atom{Relation: ri.name}
		for j := 0; j < ri.arity; j++ {
			a.Vars = append(a.Vars, pool[rng.Intn(nVars)])
		}
		q.Body = append(q.Body, a)
	}

	used := q.Variables()
	var headVars []cq.Variable
	for _, v := range used {
		if rng.Float64() < p.HeadFraction {
			headVars = append(headVars, v)
		}
	}
	if len(headVars) == 0 {
		headVars = append(headVars, used[rng.Intn(len(used))])
	}
	q.Head = cq.Atom{Relation: "Q"}
	q.Head.Vars = headVars

	// Iterate relations in a deterministic order: ranging over the arity
	// map would make rng consumption — and so the generated dependencies —
	// depend on map iteration order, breaking same-seed reproducibility.
	arities := q.RelationArities()
	for _, rel := range q.BodyRelations() {
		ar := arities[rel]
		if p.SimpleFDProb > 0 && ar >= 2 {
			for i := 1; i <= ar; i++ {
				for j := 1; j <= ar; j++ {
					if i != j && rng.Float64() < p.SimpleFDProb {
						q.FDs = append(q.FDs, cq.FD{Relation: rel, From: []int{i}, To: j})
					}
				}
			}
		}
		if p.CompoundFDProb > 0 && ar >= 3 && rng.Float64() < p.CompoundFDProb {
			i := 1 + rng.Intn(ar)
			j := 1 + rng.Intn(ar)
			for j == i {
				j = 1 + rng.Intn(ar)
			}
			t := 1 + rng.Intn(ar)
			for t == i || t == j {
				t = 1 + rng.Intn(ar)
			}
			q.FDs = append(q.FDs, cq.FD{Relation: rel, From: []int{min(i, j), max(i, j)}, To: t})
		}
	}
	// Deterministic FD order regardless of map iteration: sort by string.
	sortFDs(q.FDs)
	if err := q.Validate(); err != nil {
		panic(fmt.Sprintf("datagen: generated invalid query %s: %v", q, err))
	}
	return q
}

func sortFDs(fds []cq.FD) {
	for i := 1; i < len(fds); i++ {
		for j := i; j > 0 && fds[j].String() < fds[j-1].String(); j-- {
			fds[j], fds[j-1] = fds[j-1], fds[j]
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
