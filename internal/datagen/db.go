package datagen

import (
	"fmt"
	"math/rand"

	"cqbound/internal/cq"
	"cqbound/internal/database"
	"cqbound/internal/relation"
)

// DBParams controls RandomDatabase.
type DBParams struct {
	// Tuples is the number of tuples drawn per relation (before FD repair
	// and deduplication).
	Tuples int
	// Universe is the number of distinct values drawn from.
	Universe int
	// ZipfS, when > 1, skews every drawn value Zipf-style with exponent s:
	// value u0 dominates, each later value is polynomially rarer. This is
	// the hot-key generator behind the skew-handling tests — one value
	// absorbing a large fraction of a column hashes all its rows into a
	// single shard, forcing the exchange's hot-shard splitting. 0 (or
	// anything <= 1) keeps the uniform draw.
	ZipfS float64
}

// drawer returns the value-index generator the params select: uniform over
// the universe, or Zipf-distributed when ZipfS > 1. Deterministic given
// rng, like everything in this package.
func (p DBParams) drawer(rng *rand.Rand) func() int {
	if p.ZipfS > 1 && p.Universe > 1 {
		z := rand.NewZipf(rng, p.ZipfS, 1, uint64(p.Universe-1))
		return func() int { return int(z.Uint64()) }
	}
	return func() int { return rng.Intn(p.Universe) }
}

// RandomDatabase builds a database for q's body relations whose instance
// satisfies every functional dependency declared on q. Tuples are drawn
// uniformly and then repaired: for each dependency, right-hand values are
// rewritten to the value of the first tuple sharing the left-hand key;
// repair passes repeat until a fixpoint. The result always passes
// db.CheckFDs(q).
func RandomDatabase(rng *rand.Rand, q *cq.Query, p DBParams) *database.Database {
	if p.Tuples < 1 {
		p.Tuples = 1
	}
	if p.Universe < 1 {
		p.Universe = 1
	}
	val := func(i int) relation.Value {
		return relation.V(fmt.Sprintf("u%d", i))
	}
	fdsByRel := make(map[string][]cq.FD)
	for _, f := range q.FDs {
		fdsByRel[f.Relation] = append(fdsByRel[f.Relation], f)
	}
	draw := p.drawer(rng)
	db := database.New()
	arities := relArities(q)
	// First-occurrence body order, not map order: the drawer consumes rng
	// per relation, so the pairing of draws to relations must be
	// deterministic for a seed to reproduce the same instance.
	for _, rel := range q.BodyRelations() {
		arity := arities[rel]
		rows := make([][]relation.Value, p.Tuples)
		for i := range rows {
			row := make([]relation.Value, arity)
			for j := range row {
				row[j] = val(draw())
			}
			rows[i] = row
		}
		// FD repair, phase 1 (rewrite): right-hand values are rewritten to
		// the value of the first tuple sharing the left-hand key. Rewrites
		// can interact across dependencies, so the pass count is capped.
		for pass := 0; pass < 8*(len(fdsByRel[rel])+1); pass++ {
			changed := false
			for _, fd := range fdsByRel[rel] {
				canon := make(map[string]relation.Value)
				for _, row := range rows {
					k := fdKey(row, fd.From)
					if want, ok := canon[k]; ok {
						if row[fd.To-1] != want {
							row[fd.To-1] = want
							changed = true
						}
					} else {
						canon[k] = row[fd.To-1]
					}
				}
			}
			if !changed {
				break
			}
		}
		// FD repair, phase 2 (delete): drop any tuple still conflicting with
		// an earlier one. Deletion is monotone, so this always converges.
		for {
			deleted := false
			for _, fd := range fdsByRel[rel] {
				canon := make(map[string]relation.Value)
				kept := rows[:0]
				for _, row := range rows {
					k := fdKey(row, fd.From)
					if want, ok := canon[k]; ok && row[fd.To-1] != want {
						deleted = true
						continue
					} else if !ok {
						canon[k] = row[fd.To-1]
					}
					kept = append(kept, row)
				}
				rows = kept
			}
			if !deleted {
				break
			}
		}
		r := relation.New(rel, attrNames(arity)...)
		for _, row := range rows {
			r.MustInsert(row...)
		}
		db.MustAdd(r)
	}
	if err := db.CheckFDs(q); err != nil {
		// The repair loop above converges because values only move to
		// first-seen canonical ones; reaching this indicates a bug.
		panic(fmt.Sprintf("datagen: FD repair failed: %v", err))
	}
	return db
}

func relArities(q *cq.Query) map[string]int {
	return q.RelationArities()
}

func attrNames(arity int) []string {
	out := make([]string, arity)
	for i := range out {
		out[i] = fmt.Sprintf("a%d", i+1)
	}
	return out
}

func fdKey(row []relation.Value, from []int) string {
	key := make(relation.Tuple, len(from))
	for i, p := range from {
		key[i] = row[p-1]
	}
	return key.Key()
}

// EdgeDB builds a database of random binary edge relations (each `name`
// gets `edges` draws over a universe of the given size; set semantics
// dedups collisions). It is the workload generator the benchmark CLIs
// share: graph-pattern queries (triangles, stars, paths, cycles) over it
// scale linearly in `edges` while `universe` controls the join fanout
// edges/universe.
func EdgeDB(rng *rand.Rand, names []string, edges, universe int) *database.Database {
	db := database.New()
	for _, name := range names {
		r := relation.New(name, "a", "b")
		for i := 0; i < edges; i++ {
			r.Add(fmt.Sprintf("u%d", rng.Intn(universe)), fmt.Sprintf("u%d", rng.Intn(universe)))
		}
		db.MustAdd(r)
	}
	return db
}

// ZipfEdgeDB is EdgeDB with Zipf-distributed endpoints: both columns draw
// node ids with exponent s (> 1), so a handful of hub nodes carry most of
// the edges. Joining on a hub column hashes a large fraction of each
// relation into one shard — the workload that exercises (and justifies)
// the exchange's skew splitting.
func ZipfEdgeDB(rng *rand.Rand, names []string, edges, universe int, s float64) *database.Database {
	draw := DBParams{Universe: universe, ZipfS: s}.drawer(rng)
	db := database.New()
	for _, name := range names {
		r := relation.New(name, "a", "b")
		for i := 0; i < edges; i++ {
			r.Add(fmt.Sprintf("u%d", draw()), fmt.Sprintf("u%d", draw()))
		}
		db.MustAdd(r)
	}
	return db
}
