package obs

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// goldenFamilies is a fixed family set covering every rendered shape:
// labeled and unlabeled gauges, a counter, a power-of-two histogram, a
// summary, and escaping in help text and label values.
func goldenFamilies() []Family {
	return []Family{
		{Name: "serve_requests", Help: "requests received", Type: TypeCounter,
			Samples: []Sample{{Value: 1234}}},
		{Name: "spill_resident_bytes", Help: "bytes resident under the governor", Type: TypeGauge,
			Samples: []Sample{{Value: 65536}}},
		{Name: "serve_window_request_rate", Help: `rate with "quotes" and back\slash`, Type: TypeGauge,
			Samples: []Sample{
				{Labels: []Label{{"window", "1m"}}, Value: 12.5},
				{Labels: []Label{{"window", "5m"}}, Value: 3.75},
			}},
		{Name: "query_latency_ns", Help: "per-query wall time", Type: TypeHistogram,
			Samples: []Sample{{
				Hist: Pow2Hist([]int64{2, 0, 1, 3, 0, 0, 4}, 420, 10),
			}}},
		{Name: "serve_window_latency_ns", Help: "windowed latency quantiles", Type: TypeSummary,
			Samples: []Sample{{
				Labels:    []Label{{"window", "1m"}},
				Quantiles: []Quantile{{0.5, 768}, {0.99, 1536}},
				Sum:       9000, Count: 11,
			}}},
		{Name: "calibration_bound_log2_error", Help: "bound tightness", Type: TypeHistogram,
			Samples: []Sample{{
				Labels: []Label{{"strategy", "yannakakis"}, {"shape", "atoms=3/vars=4"}},
				Hist: &HistData{
					Bounds: []float64{-1, 0, 2, 7},
					Counts: []int64{1, 4, 3, 2},
					Sum:    14.5, Count: 10,
				},
			}}},
	}
}

func TestWritePromGolden(t *testing.T) {
	var b strings.Builder
	if err := WriteProm(&b, goldenFamilies()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "prom.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if b.String() != string(want) {
		t.Fatalf("rendered exposition diverges from %s (run with -update to regenerate):\n--- got ---\n%s--- want ---\n%s",
			path, b.String(), want)
	}
}

func TestGoldenExpositionIsValid(t *testing.T) {
	var b strings.Builder
	if err := WriteProm(&b, goldenFamilies()); err != nil {
		t.Fatal(err)
	}
	CheckPromText(t, b.String())
}

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"query_latency_ns": "query_latency_ns",
		"9lives":           "_9lives",
		"a.b-c d":          "a_b_c_d",
		"":                 "_",
		"ok:colon":         "ok:colon",
	}
	for in, want := range cases {
		got := SanitizeName(in)
		if got != want {
			t.Errorf("SanitizeName(%q) = %q, want %q", in, got, want)
		}
		if !ValidName.MatchString(got) {
			t.Errorf("SanitizeName(%q) = %q fails ValidName", in, got)
		}
	}
}

func TestPow2HistBounds(t *testing.T) {
	h := Pow2Hist([]int64{5, 1, 0, 2, 0, 0}, 100, 8)
	// Trailing zero buckets trimmed: highest nonzero is bucket 3.
	wantBounds := []float64{0, 1, 3, 7}
	if len(h.Bounds) != len(wantBounds) {
		t.Fatalf("bounds = %v", h.Bounds)
	}
	for i, b := range wantBounds {
		if h.Bounds[i] != b {
			t.Fatalf("bounds = %v, want %v", h.Bounds, wantBounds)
		}
	}
	if h.Counts[0] != 5 || h.Counts[3] != 2 {
		t.Fatalf("counts = %v", h.Counts)
	}
	if h.Count != 8 || h.Sum != 100 {
		t.Fatalf("count/sum = %d/%g", h.Count, h.Sum)
	}
}
