package obs

import (
	"sort"
	"sync"
	"time"
)

// Inflight is the registry behind /debug/requests: every request in
// flight, keyed by an opaque handle, snapshottable while the handlers
// still run. A nil *Inflight ignores everything.
type Inflight struct {
	mu  sync.Mutex
	m   map[uint64]*RequestState
	seq uint64
}

// NewInflight returns an empty registry.
func NewInflight() *Inflight {
	return &Inflight{m: make(map[uint64]*RequestState)}
}

// Register adds rs and returns the handle to deregister with.
func (f *Inflight) Register(rs *RequestState) uint64 {
	if f == nil || rs == nil {
		return 0
	}
	f.mu.Lock()
	f.seq++
	h := f.seq
	f.m[h] = rs
	f.mu.Unlock()
	return h
}

// Done removes a registered request.
func (f *Inflight) Done(h uint64) {
	if f == nil || h == 0 {
		return
	}
	f.mu.Lock()
	delete(f.m, h)
	f.mu.Unlock()
}

// Len returns the number of requests currently in flight (a gauge).
func (f *Inflight) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.m)
}

// RequestView is one in-flight request as /debug/requests renders it.
type RequestView struct {
	RequestID string  `json:"request_id"`
	Method    string  `json:"method"`
	Path      string  `json:"path"`
	Query     string  `json:"query,omitempty"`
	State     string  `json:"state"`
	QueuePos  int     `json:"queue_pos,omitempty"`
	ElapsedNs int64   `json:"elapsed_ns"`
	Epoch     uint64  `json:"epoch,omitempty"`
	BoundRows float64 `json:"bound_rows,omitempty"`
	Charge    int64   `json:"charge_bytes,omitempty"`
}

// Snapshot copies every in-flight request, oldest first.
func (f *Inflight) Snapshot(now time.Time) []RequestView {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	states := make([]*RequestState, 0, len(f.m))
	for _, rs := range f.m {
		states = append(states, rs)
	}
	f.mu.Unlock()
	sort.Slice(states, func(i, j int) bool { return states[i].start.Before(states[j].start) })
	out := make([]RequestView, 0, len(states))
	for _, rs := range states {
		rs.mu.Lock()
		out = append(out, RequestView{
			RequestID: rs.id,
			Method:    rs.method,
			Path:      rs.path,
			Query:     rs.query,
			State:     rs.state,
			QueuePos:  rs.queuePos,
			ElapsedNs: now.Sub(rs.start).Nanoseconds(),
			Epoch:     rs.epoch,
			BoundRows: rs.boundRows,
			Charge:    rs.chargeBytes,
		})
		rs.mu.Unlock()
	}
	return out
}

// AccessRecord assembles the request's access-log line from its state
// plus the response's status, byte count and total latency.
func (rs *RequestState) AccessRecord(status int, bytes int64, latency time.Duration) *AccessRecord {
	if rs == nil {
		return nil
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return &AccessRecord{
		Time:      rs.start,
		RequestID: rs.id,
		Method:    rs.method,
		Path:      rs.path,
		Query:     rs.query,
		Status:    status,
		Outcome:   rs.outcome,
		Epoch:     rs.epoch,
		Cached:    rs.cached,
		Clamped:   rs.clamped,
		BoundRows: rs.boundRows,
		Charge:    rs.chargeBytes,
		QueueNs:   rs.queueNs,
		LatencyNs: latency.Nanoseconds(),
		Bytes:     bytes,
	}
}
