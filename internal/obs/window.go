package obs

import (
	"math"
	"math/bits"
	"strconv"
	"sync"
	"time"
)

// Clock supplies the current time; injectable so window tests advance
// time deterministically instead of sleeping.
type Clock func() time.Time

// Default ring geometry: 5-second buckets, enough of them to answer a
// five-minute window plus the partial bucket in progress.
const (
	defaultBucketWidth = 5 * time.Second
	defaultRingBuckets = 61
)

// Counter is a windowed event counter: a ring of fixed-width time buckets
// plus a cumulative total. Add is O(1); Sum/Rate merge the buckets that
// fall inside the asked-for window. A nil *Counter ignores writes and
// reads zero.
type Counter struct {
	mu    sync.Mutex
	clock Clock
	width time.Duration
	slots []counterSlot
	total int64
}

type counterSlot struct {
	idx int64 // absolute bucket index (unix nanos / width); stale slots are reused
	n   int64
}

// NewCounter returns a windowed counter over nslots buckets of the given
// width. The longest answerable window is (nslots-1) × width.
func NewCounter(width time.Duration, nslots int, clock Clock) *Counter {
	if clock == nil {
		clock = time.Now
	}
	return &Counter{clock: clock, width: width, slots: make([]counterSlot, nslots)}
}

// bucketIndex converts a time to an absolute bucket index.
func bucketIndex(t time.Time, width time.Duration) int64 {
	return t.UnixNano() / int64(width)
}

// Add records n events at the current time.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	idx := bucketIndex(c.clock(), c.width)
	c.mu.Lock()
	s := &c.slots[idx%int64(len(c.slots))]
	if s.idx != idx {
		s.idx, s.n = idx, 0
	}
	s.n += n
	c.total += n
	c.mu.Unlock()
}

// Total returns the cumulative count since creation or Reset.
func (c *Counter) Total() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Sum returns the events recorded within the trailing window (the current
// partial bucket included). Windows longer than the ring covers are
// silently capped at the ring's span.
func (c *Counter) Sum(window time.Duration) int64 {
	if c == nil {
		return 0
	}
	cur := bucketIndex(c.clock(), c.width)
	span := int64(window / c.width)
	if span < 1 {
		span = 1
	}
	if max := int64(len(c.slots)) - 1; span > max {
		span = max
	}
	lo := cur - span + 1
	var sum int64
	c.mu.Lock()
	for i := range c.slots {
		if s := &c.slots[i]; s.idx >= lo && s.idx <= cur {
			sum += s.n
		}
	}
	c.mu.Unlock()
	return sum
}

// Rate returns events per second over the trailing window.
func (c *Counter) Rate(window time.Duration) float64 {
	if c == nil || window <= 0 {
		return 0
	}
	if max := time.Duration(len(c.slots)-1) * c.width; window > max {
		window = max
	}
	return float64(c.Sum(window)) / window.Seconds()
}

// Reset zeroes the ring and the cumulative total.
func (c *Counter) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	for i := range c.slots {
		c.slots[i] = counterSlot{}
	}
	c.total = 0
	c.mu.Unlock()
}

// samplerBuckets is one bucket per bit length of the observed value,
// matching internal/metrics: bucket 0 holds zeros, bucket i holds values
// in [2^(i-1), 2^i).
const samplerBuckets = 65

// Sampler is a windowed value distribution: each ring bucket carries its
// own power-of-two histogram, and a read merges the buckets inside the
// window into count, sum and approximate quantiles (geometric-midpoint,
// within a factor of two — the same trade internal/metrics makes). A nil
// *Sampler ignores writes and reads zeros.
type Sampler struct {
	mu         sync.Mutex
	clock      Clock
	width      time.Duration
	slots      []samplerSlot
	totalCount int64
	totalSum   int64
}

type samplerSlot struct {
	idx     int64
	count   int64
	sum     int64
	buckets [samplerBuckets]int64
}

// NewSampler returns a windowed sampler over nslots buckets of the given
// width.
func NewSampler(width time.Duration, nslots int, clock Clock) *Sampler {
	if clock == nil {
		clock = time.Now
	}
	return &Sampler{clock: clock, width: width, slots: make([]samplerSlot, nslots)}
}

// Observe records one value (negatives clamp to zero).
func (s *Sampler) Observe(v int64) {
	if s == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	idx := bucketIndex(s.clock(), s.width)
	s.mu.Lock()
	sl := &s.slots[idx%int64(len(s.slots))]
	if sl.idx != idx {
		*sl = samplerSlot{idx: idx}
	}
	sl.count++
	sl.sum += v
	sl.buckets[bits.Len64(uint64(v))]++
	s.totalCount++
	s.totalSum += v
	s.mu.Unlock()
}

// Distribution is a merged window of a Sampler: exact count and sum,
// power-of-two-approximate quantiles.
type Distribution struct {
	Count int64
	Sum   int64
	P50   int64
	P99   int64
}

// Window merges the buckets inside the trailing window.
func (s *Sampler) Window(window time.Duration) Distribution {
	if s == nil {
		return Distribution{}
	}
	cur := bucketIndex(s.clock(), s.width)
	span := int64(window / s.width)
	if span < 1 {
		span = 1
	}
	if max := int64(len(s.slots)) - 1; span > max {
		span = max
	}
	lo := cur - span + 1
	var merged [samplerBuckets]int64
	var d Distribution
	s.mu.Lock()
	for i := range s.slots {
		sl := &s.slots[i]
		if sl.idx < lo || sl.idx > cur {
			continue
		}
		d.Count += sl.count
		d.Sum += sl.sum
		for b, n := range sl.buckets {
			merged[b] += n
		}
	}
	s.mu.Unlock()
	if d.Count == 0 {
		return d
	}
	d.P50 = bucketQuantile(&merged, d.Count, 0.50)
	d.P99 = bucketQuantile(&merged, d.Count, 0.99)
	return d
}

// TotalCount returns the cumulative observation count since creation or
// Reset.
func (s *Sampler) TotalCount() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.totalCount
}

// Reset zeroes the ring and the cumulative totals.
func (s *Sampler) Reset() {
	if s == nil {
		return
	}
	s.mu.Lock()
	for i := range s.slots {
		s.slots[i] = samplerSlot{}
	}
	s.totalCount, s.totalSum = 0, 0
	s.mu.Unlock()
}

// bucketQuantile walks cumulative bucket counts to the bucket holding
// rank q·total and returns its geometric midpoint (bucket i covers
// [2^(i-1), 2^i); bucket 0 is exactly zero).
func bucketQuantile(counts *[samplerBuckets]int64, total int64, q float64) int64 {
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen int64
	for i, c := range counts {
		seen += c
		if seen > rank {
			if i == 0 {
				return 0
			}
			lo := int64(1) << (i - 1)
			return lo + lo/2
		}
	}
	return 0
}

// Windows bundles the serving path's windowed series: request and shed
// rates, clamps, admission grants (the queue drain rate Retry-After is
// derived from), cache hits/misses, and the latency and queue-wait
// distributions. A nil *Windows ignores everything.
type Windows struct {
	Requests    *Counter
	Shed        *Counter
	Clamped     *Counter
	Grants      *Counter
	CacheHits   *Counter
	CacheMisses *Counter
	Latency     *Sampler
	QueueWait   *Sampler
}

// NewWindows builds the serving window set over the default ring
// geometry (5s × 61 buckets, answering up to 5m).
func NewWindows(clock Clock) *Windows {
	c := func() *Counter { return NewCounter(defaultBucketWidth, defaultRingBuckets, clock) }
	s := func() *Sampler { return NewSampler(defaultBucketWidth, defaultRingBuckets, clock) }
	return &Windows{
		Requests:    c(),
		Shed:        c(),
		Clamped:     c(),
		Grants:      c(),
		CacheHits:   c(),
		CacheMisses: c(),
		Latency:     s(),
		QueueWait:   s(),
	}
}

// Reset zeroes every series (the ObsStats counters restart from zero).
func (w *Windows) Reset() {
	if w == nil {
		return
	}
	w.Requests.Reset()
	w.Shed.Reset()
	w.Clamped.Reset()
	w.Grants.Reset()
	w.CacheHits.Reset()
	w.CacheMisses.Reset()
	w.Latency.Reset()
	w.QueueWait.Reset()
}

// WindowSnapshot is one trailing window's merged view of the serving
// path, served under /metrics and rendered into the Prometheus families.
type WindowSnapshot struct {
	Window         string  `json:"window"`
	Requests       int64   `json:"requests"`
	Shed           int64   `json:"shed"`
	Clamped        int64   `json:"clamped"`
	Grants         int64   `json:"grants"`
	RequestRate    float64 `json:"request_rate_per_s"`
	ShedRate       float64 `json:"shed_rate_per_s"`
	CacheHitRatio  float64 `json:"cache_hit_ratio"`
	LatencyP50Ns   int64   `json:"latency_p50_ns"`
	LatencyP99Ns   int64   `json:"latency_p99_ns"`
	QueueWaitP50Ns int64   `json:"queue_wait_p50_ns"`
	QueueWaitP99Ns int64   `json:"queue_wait_p99_ns"`
}

// Snapshot merges the trailing window d across every series. The label
// renders d compactly ("1m0s" → "1m").
func (w *Windows) Snapshot(d time.Duration) WindowSnapshot {
	if w == nil {
		return WindowSnapshot{}
	}
	snap := WindowSnapshot{
		Window:      shortWindow(d),
		Requests:    w.Requests.Sum(d),
		Shed:        w.Shed.Sum(d),
		Clamped:     w.Clamped.Sum(d),
		Grants:      w.Grants.Sum(d),
		RequestRate: w.Requests.Rate(d),
		ShedRate:    w.Shed.Rate(d),
	}
	hits, misses := w.CacheHits.Sum(d), w.CacheMisses.Sum(d)
	if hits+misses > 0 {
		snap.CacheHitRatio = float64(hits) / float64(hits+misses)
	}
	lat := w.Latency.Window(d)
	snap.LatencyP50Ns, snap.LatencyP99Ns = lat.P50, lat.P99
	qw := w.QueueWait.Window(d)
	snap.QueueWaitP50Ns, snap.QueueWaitP99Ns = qw.P50, qw.P99
	return snap
}

// shortWindow renders 60s as "1m", 300s as "5m", leaving the rest to
// time.Duration.
func shortWindow(d time.Duration) string {
	if d >= time.Minute && d%time.Minute == 0 {
		return strconv.Itoa(int(d/time.Minute)) + "m"
	}
	return d.String()
}

// RetryAfterSeconds estimates how long a shed client should wait before
// retrying: the time the current queue needs to drain at the observed
// windowed grant rate, clamped to [1, 30] seconds. A zero drain rate
// (nothing has been admitted in the window — the budget is saturated by
// long-running queries) returns the cap.
func RetryAfterSeconds(queueDepth int, drainPerSec float64) int {
	const maxRetryAfter = 30
	if queueDepth < 1 {
		queueDepth = 1
	}
	if drainPerSec <= 0 {
		return maxRetryAfter
	}
	s := int(math.Ceil(float64(queueDepth) / drainPerSec))
	if s < 1 {
		return 1
	}
	if s > maxRetryAfter {
		return maxRetryAfter
	}
	return s
}
