// Package obs is the serving-path observability layer: the pieces that
// make one HTTP request to the cqserve front-end explainable after the
// fact and the serving trajectory watchable while it happens.
//
// Correlation. Every request carries a request ID — accepted from an
// X-Request-ID header or a W3C traceparent, generated otherwise — held in
// a RequestState that travels the request's context. The same ID appears
// in the response header, the 429/error JSON bodies, the sampled access
// log, the slow-query log, the rendered trace and /debug/requests, so any
// shed, clamp, timeout or slow query is joinable to its full span tree.
// RequestState setters are mutex-guarded because the in-flight registry
// snapshots a request from other goroutines while its handler still runs.
//
// Windows. Counter and Sampler are rings of fixed-width buckets over an
// injectable clock; reads merge the buckets inside the asked-for window,
// so rates and latency quantiles are live windowed series (1m/5m), not
// cumulative counters. A bucket older than the ring's span is reused in
// place — nothing is ever allocated after construction and a reader never
// blocks an observer for more than a bucket merge.
//
// Exposition. WriteProm renders metric families in the Prometheus text
// format: gauges and counters as single samples, power-of-two histograms
// as cumulative _bucket/_sum/_count triples, windowed quantiles as
// summaries. Names and label values go through SanitizeName/ValidName so
// a scraper never sees an invalid family.
//
// Calibration. Calibration records, per (strategy, query shape), the
// log₂-ratio error of the paper's worst-case bound and of the System-R
// estimate against the actual output cardinality — the repo's first
// empirical read on how tight the Thm 4.4 / AGM bounds run in practice,
// and the estimate-error history a cost-based planner will train on.
//
// Every exported type is nil-receiver safe on its hot-path methods: a
// server built without observability keeps nil components and pays only
// the nil checks.
package obs
