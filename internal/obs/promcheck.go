package obs

// Exposition validity checking, shared between this package's golden
// tests and the root package's HTTP-level smoke test. Lives outside the
// _test files so package cqbound tests can import it; the TB interface
// keeps the testing package itself out of production binaries.

import (
	"bufio"
	"strconv"
	"strings"
)

// TB is the subset of *testing.T that CheckPromText reports through.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatal(args ...any)
	Fatalf(format string, args ...any)
}

// parsePromLine splits a sample line into name, label pairs, and value.
func parsePromLine(t TB, line string) (name string, labels map[string]string, value float64) {
	t.Helper()
	labels = map[string]string{}
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		name = line[:i]
		j := strings.LastIndexByte(line, '}')
		if j < i {
			t.Fatalf("unbalanced braces: %q", line)
		}
		for _, pair := range strings.Split(line[i+1:j], ",") {
			k, v, ok := strings.Cut(pair, "=")
			if !ok || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				t.Fatalf("bad label %q in %q", pair, line)
			}
			labels[k] = v[1 : len(v)-1]
		}
		rest = line[j+1:]
	} else {
		sp := strings.IndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("no value: %q", line)
		}
		name, rest = line[:sp], line[sp:]
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		t.Fatalf("bad value in %q: %v", line, err)
	}
	return name, labels, f
}

// CheckPromText validates a rendered exposition: every metric and label
// name matches the Prometheus grammar and every histogram's _bucket
// series is cumulative (monotonically non-decreasing, +Inf last and
// equal to _count).
func CheckPromText(t TB, body string) {
	t.Helper()
	type histState struct {
		last   float64
		lastLe float64
		sawInf bool
		infVal float64
	}
	hists := map[string]*histState{}
	counts := map[string]float64{}
	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines := 0
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		lines++
		name, labels, value := parsePromLine(t, line)
		if !ValidName.MatchString(name) {
			t.Errorf("invalid metric name %q", name)
		}
		for k := range labels {
			if !ValidName.MatchString(k) {
				t.Errorf("invalid label name %q in %q", k, line)
			}
		}
		if base, ok := strings.CutSuffix(name, "_bucket"); ok {
			le := labels["le"]
			key := base + "|" + SortedLabelKey(labelsWithout(labels, "le"))
			st := hists[key]
			if st == nil {
				st = &histState{last: -1, lastLe: -1e308}
				hists[key] = st
			}
			if le == "+Inf" {
				st.sawInf = true
				st.infVal = value
				if value < st.last {
					t.Errorf("%s: +Inf bucket %g below prior cumulative %g", key, value, st.last)
				}
				continue
			}
			b, err := strconv.ParseFloat(le, 64)
			if err != nil {
				t.Errorf("%s: bad le %q", key, le)
				continue
			}
			if b <= st.lastLe {
				t.Errorf("%s: le %g not ascending after %g", key, b, st.lastLe)
			}
			if value < st.last {
				t.Errorf("%s: bucket counts not cumulative: %g after %g", key, value, st.last)
			}
			st.lastLe, st.last = b, value
		}
		if base, ok := strings.CutSuffix(name, "_count"); ok {
			counts[base+"|"+SortedLabelKey(mapLabels(labels))] = value
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("empty exposition")
	}
	for key, st := range hists {
		if !st.sawInf {
			t.Errorf("%s: histogram without +Inf bucket", key)
			continue
		}
		base, lk, _ := strings.Cut(key, "|")
		if c, ok := counts[base+"|"+lk]; ok && c != st.infVal {
			t.Errorf("%s: +Inf bucket %g != _count %g", key, st.infVal, c)
		}
	}
}

func labelsWithout(labels map[string]string, drop string) []Label {
	out := make([]Label, 0, len(labels))
	for k, v := range labels {
		if k != drop {
			out = append(out, Label{k, v})
		}
	}
	return out
}

func mapLabels(labels map[string]string) []Label {
	out := make([]Label, 0, len(labels))
	for k, v := range labels {
		out = append(out, Label{k, v})
	}
	return out
}
