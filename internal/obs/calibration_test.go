package obs

import (
	"math"
	"strings"
	"testing"
)

func TestCalibrationRecordAndSnapshot(t *testing.T) {
	c := NewCalibration()
	// Bound overshoots by 8x (3 doublings), estimate is exact.
	for i := 0; i < 10; i++ {
		c.Record("yannakakis", "atoms=3/vars=4", 800, 100, 100)
	}
	// A second cell, estimate undershoots by 4x.
	c.Record("generic-join", "atoms=3/vars=3", 1000, 25, 100)
	snaps := c.Snapshot()
	if len(snaps) != 2 {
		t.Fatalf("cells = %d, want 2", len(snaps))
	}
	// Sorted by strategy: generic-join first.
	if snaps[0].Strategy != "generic-join" || snaps[1].Strategy != "yannakakis" {
		t.Fatalf("order = %s, %s", snaps[0].Strategy, snaps[1].Strategy)
	}
	y := snaps[1]
	if y.Count != 10 {
		t.Fatalf("count = %d", y.Count)
	}
	if got := y.Bound.MeanLog2; math.Abs(got-3) > 0.01 {
		t.Fatalf("bound mean log2 = %g, want ~3", got)
	}
	if y.Estimate.MeanLog2 != 0 {
		t.Fatalf("estimate mean log2 = %g, want 0", y.Estimate.MeanLog2)
	}
	if y.Bound.P50Log2 != 3 {
		t.Fatalf("bound p50 = %g, want 3", y.Bound.P50Log2)
	}
	if n := y.Bound.Buckets["3"]; n != 10 {
		t.Fatalf("bucket[3] = %d, want 10", n)
	}
	g := snaps[0]
	if got := g.Estimate.MeanLog2; math.Abs(got+2) > 0.01 {
		t.Fatalf("undershoot mean log2 = %g, want ~-2", got)
	}
	if c.Records() != 11 || c.Cells() != 2 {
		t.Fatalf("records/cells = %d/%d", c.Records(), c.Cells())
	}
}

func TestCalibrationEdgeCases(t *testing.T) {
	c := NewCalibration()
	c.Record("s", "q", math.Inf(1), 10, 10) // unpriceable: skipped
	c.Record("s", "q", math.NaN(), 10, 10)  // skipped
	if c.Records() != 0 {
		t.Fatalf("non-finite bounds must be skipped, records = %d", c.Records())
	}
	c.Record("s", "q", 1024, 1, 0) // empty output: actual floors at 1
	snaps := c.Snapshot()
	if snaps[0].Bound.MeanLog2 != 10 {
		t.Fatalf("empty-output bound err = %g, want 10", snaps[0].Bound.MeanLog2)
	}
	// Extreme errors clamp to the bucket range but keep the exact mean.
	c.Reset()
	c.Record("s", "q", math.Ldexp(1, 60), 1, 1)
	s := c.Snapshot()[0]
	if s.Bound.MeanLog2 != 60 {
		t.Fatalf("mean = %g, want 60", s.Bound.MeanLog2)
	}
	if n := s.Bound.Buckets["32"]; n != 1 {
		t.Fatalf("extreme error must clamp into the top bucket, got %v", s.Bound.Buckets)
	}
}

func TestCalibrationResetAndNil(t *testing.T) {
	c := NewCalibration()
	c.Record("s", "q", 10, 10, 10)
	c.Reset()
	if c.Records() != 0 || c.Cells() != 0 || len(c.Snapshot()) != 0 {
		t.Fatal("Reset must clear everything")
	}
	var nilC *Calibration
	nilC.Record("s", "q", 1, 1, 1)
	if nilC.Records() != 0 || nilC.Cells() != 0 || nilC.Snapshot() != nil {
		t.Fatal("nil Calibration must read zero")
	}
	nilC.Reset()
}

func TestCalibrationPromFamilies(t *testing.T) {
	c := NewCalibration()
	for i := 0; i < 5; i++ {
		c.Record("yannakakis", "atoms=2/vars=3", 400, 90, 100)
	}
	fams := c.PromFamilies()
	if len(fams) != 2 {
		t.Fatalf("families = %d", len(fams))
	}
	var b strings.Builder
	if err := WriteProm(&b, fams); err != nil {
		t.Fatal(err)
	}
	body := b.String()
	CheckPromText(t, body)
	for _, want := range []string{
		`calibration_bound_log2_error_bucket{strategy="yannakakis",shape="atoms=2/vars=3",le="2"} 5`,
		`calibration_bound_log2_error_count{strategy="yannakakis",shape="atoms=2/vars=3"} 5`,
		"# TYPE calibration_estimate_log2_error histogram",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
}
