package obs

import (
	"math"
	"sort"
	"strconv"
	"sync"
)

// errHalfRange bounds the log₂-ratio error buckets: errors clamp to
// [−32, +32] doublings, one bucket per integer log₂ step. 2^32 of
// over- or under-estimation is already "the bound told us nothing".
const errHalfRange = 32

// errBuckets is the bucket count of one error histogram.
const errBuckets = 2*errHalfRange + 1

// errHist is a log₂-ratio error histogram: observation log₂(pred/actual)
// lands in the bucket of its rounded integer value. Positive error means
// the prediction overshot (the usual case for a worst-case bound),
// negative means it undershot (possible for the System-R estimate).
type errHist struct {
	n       int64
	sum     float64
	min     float64
	max     float64
	buckets [errBuckets]int64
}

func (h *errHist) observe(e float64) {
	if h.n == 0 {
		h.min, h.max = e, e
	} else {
		h.min = math.Min(h.min, e)
		h.max = math.Max(h.max, e)
	}
	h.n++
	h.sum += e
	b := int(math.Round(e)) + errHalfRange
	if b < 0 {
		b = 0
	}
	if b >= errBuckets {
		b = errBuckets - 1
	}
	h.buckets[b]++
}

// quantile returns the upper log₂ bound of the bucket holding rank
// q·n — within one doubling of the true quantile.
func (h *errHist) quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	rank := int64(q * float64(h.n))
	if rank >= h.n {
		rank = h.n - 1
	}
	var seen int64
	for i, c := range h.buckets {
		seen += c
		if seen > rank {
			return float64(i - errHalfRange)
		}
	}
	return 0
}

// ErrSnapshot is one error histogram's point-in-time copy. The quantiles
// are integer log₂ steps (bucket resolution); Buckets holds only nonzero
// buckets keyed by their log₂ value.
type ErrSnapshot struct {
	Count    int64            `json:"count"`
	MeanLog2 float64          `json:"mean_log2"`
	MinLog2  float64          `json:"min_log2"`
	MaxLog2  float64          `json:"max_log2"`
	P50Log2  float64          `json:"p50_log2"`
	P99Log2  float64          `json:"p99_log2"`
	Buckets  map[string]int64 `json:"buckets,omitempty"`
}

func (h *errHist) snapshot() ErrSnapshot {
	s := ErrSnapshot{Count: h.n, MinLog2: h.min, MaxLog2: h.max}
	if h.n == 0 {
		return s
	}
	s.MeanLog2 = h.sum / float64(h.n)
	s.P50Log2 = h.quantile(0.50)
	s.P99Log2 = h.quantile(0.99)
	s.Buckets = make(map[string]int64)
	for i, c := range h.buckets {
		if c != 0 {
			s.Buckets[strconv.Itoa(i-errHalfRange)] = c
		}
	}
	return s
}

// CellKey identifies one calibration cell: the planner's strategy and a
// coarse query shape ("atoms=3/vars=3").
type CellKey struct {
	Strategy string `json:"strategy"`
	Shape    string `json:"shape"`
}

type cell struct {
	count    int64
	bound    errHist
	estimate errHist
}

// Calibration accumulates, per (strategy, shape), the log₂-ratio error
// of the paper's worst-case bound and of the System-R independence
// estimate against actual output cardinalities. Served at /calibration
// and rendered into the Prometheus calibration families; this is the
// empirical record of how tight the Thm 4.4 / AGM bounds run, and the
// estimate-error history ROADMAP 3c's cost model will calibrate on. A nil
// *Calibration ignores everything.
type Calibration struct {
	mu      sync.Mutex
	cells   map[CellKey]*cell
	records int64
}

// NewCalibration returns an empty recorder.
func NewCalibration() *Calibration {
	return &Calibration{cells: make(map[CellKey]*cell)}
}

// Record adds one evaluation's outcome. Predictions and actuals are
// floored at one row before the ratio so empty outputs stay finite (an
// actual of 0 against a bound of 1024 reads as 10 doublings of slack).
// Non-finite bounds (an unpriceable query) are skipped.
func (c *Calibration) Record(strategy, shape string, bound, estimate, actual float64) {
	if c == nil {
		return
	}
	if math.IsNaN(bound) || math.IsInf(bound, 0) {
		return
	}
	a := math.Max(actual, 1)
	be := math.Log2(math.Max(bound, 1) / a)
	ee := math.Log2(math.Max(estimate, 1) / a)
	k := CellKey{Strategy: strategy, Shape: shape}
	c.mu.Lock()
	cl := c.cells[k]
	if cl == nil {
		cl = &cell{}
		c.cells[k] = cl
	}
	cl.count++
	cl.bound.observe(be)
	cl.estimate.observe(ee)
	c.records++
	c.mu.Unlock()
}

// CellSnapshot is one (strategy, shape) cell's point-in-time copy.
type CellSnapshot struct {
	CellKey
	Count    int64       `json:"count"`
	Bound    ErrSnapshot `json:"bound_log2_error"`
	Estimate ErrSnapshot `json:"estimate_log2_error"`
}

// Snapshot copies every cell, sorted by (strategy, shape) for
// deterministic output.
func (c *Calibration) Snapshot() []CellSnapshot {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	out := make([]CellSnapshot, 0, len(c.cells))
	for k, cl := range c.cells {
		out = append(out, CellSnapshot{
			CellKey:  k,
			Count:    cl.count,
			Bound:    cl.bound.snapshot(),
			Estimate: cl.estimate.snapshot(),
		})
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Strategy != out[j].Strategy {
			return out[i].Strategy < out[j].Strategy
		}
		return out[i].Shape < out[j].Shape
	})
	return out
}

// Records returns the cumulative number of recorded evaluations.
func (c *Calibration) Records() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.records
}

// Cells returns the current number of (strategy, shape) cells (a gauge).
func (c *Calibration) Cells() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.cells)
}

// Reset drops every cell and zeroes the record counter.
func (c *Calibration) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.cells = make(map[CellKey]*cell)
	c.records = 0
	c.mu.Unlock()
}

// PromFamilies renders the calibration state as two Prometheus histogram
// families — bound and estimate log₂-ratio error — one sample per
// (strategy, shape) cell. Bucket upper bounds are the integer log₂
// errors themselves (−32…+32), so `le="0"` counts evaluations the
// prediction did not overshoot by even one doubling.
func (c *Calibration) PromFamilies() []Family {
	snaps := c.Snapshot()
	mk := func(name, help string, pick func(CellSnapshot) ErrSnapshot) Family {
		f := Family{Name: name, Help: help, Type: TypeHistogram}
		for _, s := range snaps {
			es := pick(s)
			h := &HistData{Count: es.Count, Sum: es.MeanLog2 * float64(es.Count)}
			// Rebuild ascending buckets from the sparse map.
			keys := make([]int, 0, len(es.Buckets))
			for ks := range es.Buckets {
				k, _ := strconv.Atoi(ks)
				keys = append(keys, k)
			}
			sort.Ints(keys)
			for _, k := range keys {
				h.Bounds = append(h.Bounds, float64(k))
				h.Counts = append(h.Counts, es.Buckets[strconv.Itoa(k)])
			}
			f.Samples = append(f.Samples, Sample{
				Labels: []Label{{"strategy", s.Strategy}, {"shape", s.Shape}},
				Hist:   h,
			})
		}
		return f
	}
	return []Family{
		mk("calibration_bound_log2_error",
			"log2(paper worst-case bound / actual rows) per strategy and query shape",
			func(s CellSnapshot) ErrSnapshot { return s.Bound }),
		mk("calibration_estimate_log2_error",
			"log2(System-R estimate / actual rows) per strategy and query shape",
			func(s CellSnapshot) ErrSnapshot { return s.Estimate }),
	}
}
