package obs

import (
	"testing"
	"time"
)

// fakeClock advances manually; windows read it through the Clock func.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}
func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestCounterWindowedSums(t *testing.T) {
	clk := newFakeClock()
	c := NewCounter(time.Second, 11, clk.now)
	for i := 0; i < 10; i++ {
		c.Add(2)
		clk.advance(time.Second)
	}
	// 10 buckets of 2 behind us; the current bucket is empty.
	if got := c.Total(); got != 20 {
		t.Fatalf("Total = %d, want 20", got)
	}
	if got := c.Sum(5 * time.Second); got != 8 {
		// Window covers the current (empty) bucket plus the 4 before it.
		t.Fatalf("Sum(5s) = %d, want 8", got)
	}
	if got := c.Rate(5 * time.Second); got != 8.0/5 {
		t.Fatalf("Rate(5s) = %g, want %g", got, 8.0/5)
	}
	// Windows longer than the ring cap at the ring span: 10 buckets
	// including the current empty one, so the oldest bucket falls out.
	if got := c.Sum(time.Hour); got != 18 {
		t.Fatalf("Sum(1h) = %d, want the ring-capped 18", got)
	}
	// Old buckets age out as the ring wraps.
	clk.advance(30 * time.Second)
	if got := c.Sum(5 * time.Second); got != 0 {
		t.Fatalf("Sum after idle = %d, want 0", got)
	}
	if got := c.Total(); got != 20 {
		t.Fatalf("Total after idle = %d, want 20 (cumulative)", got)
	}
	c.Reset()
	if c.Total() != 0 || c.Sum(time.Hour) != 0 {
		t.Fatal("Reset must zero total and ring")
	}
}

func TestCounterNilSafe(t *testing.T) {
	var c *Counter
	c.Add(1)
	if c.Total() != 0 || c.Sum(time.Minute) != 0 || c.Rate(time.Minute) != 0 {
		t.Fatal("nil counter must read zero")
	}
	c.Reset()
}

func TestSamplerWindowedQuantiles(t *testing.T) {
	clk := newFakeClock()
	s := NewSampler(time.Second, 61, clk.now)
	// 100 fast observations now, then a slow tail a minute earlier.
	for i := 0; i < 99; i++ {
		s.Observe(1000) // bucket [512, 1024): midpoint 768
	}
	s.Observe(1 << 20) // one outlier
	d := s.Window(10 * time.Second)
	if d.Count != 100 {
		t.Fatalf("Count = %d, want 100", d.Count)
	}
	if d.Sum != 99*1000+1<<20 {
		t.Fatalf("Sum = %d", d.Sum)
	}
	if d.P50 != 768 {
		t.Fatalf("P50 = %d, want the geometric midpoint 768", d.P50)
	}
	if d.P99 < 1<<19 {
		t.Fatalf("P99 = %d, want the outlier's bucket", d.P99)
	}
	// Observations age out of the window.
	clk.advance(30 * time.Second)
	if d := s.Window(10 * time.Second); d.Count != 0 {
		t.Fatalf("Count after idle = %d, want 0", d.Count)
	}
	if s.TotalCount() != 100 {
		t.Fatalf("TotalCount = %d, want 100", s.TotalCount())
	}
	s.Reset()
	if s.TotalCount() != 0 {
		t.Fatal("Reset must zero totals")
	}
}

func TestSamplerNilSafe(t *testing.T) {
	var s *Sampler
	s.Observe(5)
	if d := s.Window(time.Minute); d.Count != 0 {
		t.Fatal("nil sampler must read zero")
	}
	s.Reset()
}

func TestWindowsSnapshot(t *testing.T) {
	clk := newFakeClock()
	w := NewWindows(clk.now)
	for i := 0; i < 30; i++ {
		w.Requests.Add(1)
		w.Latency.Observe(1 << 20)
		clk.advance(2 * time.Second)
	}
	w.Shed.Add(3)
	w.CacheHits.Add(6)
	w.CacheMisses.Add(2)
	snap := w.Snapshot(time.Minute)
	if snap.Window != "1m" {
		t.Fatalf("Window label = %q, want 1m", snap.Window)
	}
	// The 1m window is 12 five-second buckets ending at t=60s; the three
	// adds at t=0,2,4s sit in the bucket that just aged out.
	if snap.Requests != 27 {
		t.Fatalf("Requests = %d, want 27", snap.Requests)
	}
	if snap.RequestRate < 0.4 || snap.RequestRate > 0.6 {
		t.Fatalf("RequestRate = %g, want ~0.5/s", snap.RequestRate)
	}
	if snap.Shed != 3 {
		t.Fatalf("Shed = %d", snap.Shed)
	}
	if snap.CacheHitRatio != 0.75 {
		t.Fatalf("CacheHitRatio = %g, want 0.75", snap.CacheHitRatio)
	}
	if snap.LatencyP50Ns == 0 {
		t.Fatal("LatencyP50Ns must be nonzero")
	}
	five := w.Snapshot(5 * time.Minute)
	if five.Window != "5m" || five.Requests != 30 {
		t.Fatalf("5m snapshot = %+v", five)
	}
	w.Reset()
	if w.Snapshot(time.Minute).Requests != 0 {
		t.Fatal("Reset must clear windows")
	}
	var nilW *Windows
	if nilW.Snapshot(time.Minute).Requests != 0 {
		t.Fatal("nil Windows must read zero")
	}
	nilW.Reset()
}

func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		depth int
		drain float64
		want  int
	}{
		{depth: 0, drain: 10, want: 1}, // empty queue, fast drain: retry now
		{depth: 5, drain: 10, want: 1}, // drains in half a second
		{depth: 10, drain: 2, want: 5}, // 10 waiting at 2/s
		{depth: 16, drain: 1.5, want: 11},
		{depth: 100, drain: 1, want: 30}, // deep queue clamps to the cap
		{depth: 4, drain: 0, want: 30},   // nothing draining: cap
		{depth: 4, drain: -1, want: 30},  // defensive
	}
	for _, c := range cases {
		if got := RetryAfterSeconds(c.depth, c.drain); got != c.want {
			t.Errorf("RetryAfterSeconds(%d, %g) = %d, want %d", c.depth, c.drain, got, c.want)
		}
	}
}
