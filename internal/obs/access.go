package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// AccessRecord is one JSON line of the access log. Everything a later
// join needs is here: the correlation ID ties the line to the trace, the
// slow-query record and /debug/requests; outcome and status explain what
// the serving path did with the request.
type AccessRecord struct {
	Time      time.Time `json:"time"`
	RequestID string    `json:"request_id"`
	Method    string    `json:"method"`
	Path      string    `json:"path"`
	Query     string    `json:"query,omitempty"`
	Status    int       `json:"status"`
	Outcome   string    `json:"outcome,omitempty"` // ok, cached, shed, timeout, canceled, error
	Epoch     uint64    `json:"epoch,omitempty"`
	Cached    bool      `json:"cached,omitempty"`
	Clamped   bool      `json:"clamped,omitempty"`
	BoundRows float64   `json:"bound_rows,omitempty"`
	Charge    int64     `json:"charge_bytes,omitempty"`
	QueueNs   int64     `json:"queue_ns,omitempty"`
	LatencyNs int64     `json:"latency_ns"`
	Bytes     int64     `json:"bytes"`
}

// AccessLog writes sampled JSON access lines: every non-200 and every
// clamped request is always logged (sheds, timeouts and clamps must stay
// joinable to their traces), plain 200s are sampled one-in-every. A nil
// *AccessLog drops everything.
type AccessLog struct {
	mu    sync.Mutex
	w     io.Writer
	every int64

	seq     atomic.Int64
	logged  atomic.Int64
	dropped atomic.Int64
}

// NewAccessLog logs to w, sampling successful requests one-in-every
// (every <= 1 logs all of them). Returns nil when w is nil, so callers
// can thread an unconfigured log without checks.
func NewAccessLog(w io.Writer, every int) *AccessLog {
	if w == nil {
		return nil
	}
	if every < 1 {
		every = 1
	}
	return &AccessLog{w: w, every: int64(every)}
}

// Log writes rec as one JSON line, subject to sampling.
func (l *AccessLog) Log(rec *AccessRecord) {
	if l == nil || rec == nil {
		return
	}
	noteworthy := rec.Status != 200 || rec.Clamped
	if !noteworthy && l.seq.Add(1)%l.every != 0 {
		l.dropped.Add(1)
		return
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return
	}
	l.logged.Add(1)
	l.mu.Lock()
	l.w.Write(append(line, '\n'))
	l.mu.Unlock()
}

// Logged returns how many lines were written.
func (l *AccessLog) Logged() int64 {
	if l == nil {
		return 0
	}
	return l.logged.Load()
}

// Dropped returns how many successful requests sampling skipped.
func (l *AccessLog) Dropped() int64 {
	if l == nil {
		return 0
	}
	return l.dropped.Load()
}

// Reset zeroes the written/skipped counters (sampling phase restarts).
func (l *AccessLog) Reset() {
	if l == nil {
		return
	}
	l.seq.Store(0)
	l.logged.Store(0)
	l.dropped.Store(0)
}
