package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// HeaderRequestID is the request/response header carrying the request ID.
const HeaderRequestID = "X-Request-ID"

// maxIDLen bounds accepted client-supplied request IDs; longer (or
// non-printable) values are discarded and a fresh ID generated, so a
// hostile header can never pollute logs or metrics labels.
const maxIDLen = 128

// idPrefix makes IDs unique across processes without paying a crypto/rand
// read per request: eight random hex digits at startup plus an atomic
// sequence number per ID.
var (
	idPrefix = func() string {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			return fmt.Sprintf("%08x", time.Now().UnixNano()&0xffffffff)
		}
		return hex.EncodeToString(b[:])
	}()
	idSeq atomic.Uint64
)

// NewID returns a fresh request ID: a per-process random prefix and a
// sequence number. Cheap enough for the per-request hot path.
func NewID() string {
	return fmt.Sprintf("%s-%06x", idPrefix, idSeq.Add(1))
}

// validID reports whether a client-supplied ID is safe to carry through
// logs and headers: non-empty, bounded, printable ASCII without spaces.
func validID(s string) bool {
	if len(s) == 0 || len(s) > maxIDLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] <= ' ' || s[i] > '~' {
			return false
		}
	}
	return true
}

// IDFromHeaders extracts the request ID a client supplied: X-Request-ID
// when present and valid, else the trace-id field of a W3C traceparent
// header. Empty when the client sent neither — the caller generates one.
func IDFromHeaders(h http.Header) string {
	if id := h.Get(HeaderRequestID); validID(id) {
		return id
	}
	if tid, ok := ParseTraceparent(h.Get("traceparent")); ok {
		return tid
	}
	return ""
}

// ParseTraceparent extracts the 32-hex-digit trace-id from a W3C
// traceparent header (version-traceid-parentid-flags). An all-zero
// trace-id is invalid per the spec and rejected.
func ParseTraceparent(s string) (traceID string, ok bool) {
	// 2 (version) + 1 + 32 (trace-id) + 1 + 16 (parent-id) + 1 + 2 (flags)
	if len(s) < 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return "", false
	}
	tid := s[3:35]
	zero := true
	for i := 0; i < len(tid); i++ {
		c := tid[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return "", false
		}
		if c != '0' {
			zero = false
		}
	}
	if zero {
		return "", false
	}
	return tid, true
}

// RequestState is one in-flight request's mutable observability record:
// the correlation ID plus everything /debug/requests and the access log
// report about it. Handlers annotate it as the request progresses;
// the in-flight registry snapshots it concurrently, hence the mutex. A
// nil *RequestState ignores every call, so handlers annotate
// unconditionally whether or not observability is on.
type RequestState struct {
	id     string
	method string
	path   string
	start  time.Time

	mu          sync.Mutex
	query       string
	state       string // received → queued → evaluating → done
	queuePos    int
	epoch       uint64
	boundRows   float64
	chargeBytes int64
	queueNs     int64
	outcome     string
	cached      bool
	clamped     bool
}

// NewRequestState starts the record for one request.
func NewRequestState(id, method, path string, start time.Time) *RequestState {
	return &RequestState{id: id, method: method, path: path, start: start, state: "received"}
}

// ID returns the correlation ID (immutable, safe without the lock).
func (rs *RequestState) ID() string {
	if rs == nil {
		return ""
	}
	return rs.id
}

// Start returns the request's arrival time.
func (rs *RequestState) Start() time.Time {
	if rs == nil {
		return time.Time{}
	}
	return rs.start
}

// SetQuery records the query text the request evaluates.
func (rs *RequestState) SetQuery(q string) {
	if rs == nil {
		return
	}
	rs.mu.Lock()
	rs.query = q
	rs.mu.Unlock()
}

// SetEpoch records the epoch the request pinned.
func (rs *RequestState) SetEpoch(e uint64) {
	if rs == nil {
		return
	}
	rs.mu.Lock()
	rs.epoch = e
	rs.mu.Unlock()
}

// SetAdmission records the planner's row bound, the byte charge derived
// from it, and whether the charge was clamped to the whole capacity.
func (rs *RequestState) SetAdmission(boundRows float64, chargeBytes int64, clamped bool) {
	if rs == nil {
		return
	}
	rs.mu.Lock()
	rs.boundRows, rs.chargeBytes, rs.clamped = boundRows, chargeBytes, clamped
	rs.mu.Unlock()
}

// SetState moves the request through its lifecycle (queued, evaluating,
// done); pos is the queue position when entering the queued state.
func (rs *RequestState) SetState(state string, pos int) {
	if rs == nil {
		return
	}
	rs.mu.Lock()
	rs.state, rs.queuePos = state, pos
	rs.mu.Unlock()
}

// SetQueueWait records how long admission held the request.
func (rs *RequestState) SetQueueWait(ns int64) {
	if rs == nil {
		return
	}
	rs.mu.Lock()
	rs.queueNs = ns
	rs.mu.Unlock()
}

// SetOutcome records the request's disposition for the access log:
// ok, cached, shed, timeout, canceled, error...
func (rs *RequestState) SetOutcome(o string) {
	if rs == nil {
		return
	}
	rs.mu.Lock()
	rs.outcome = o
	rs.mu.Unlock()
}

// MarkCached flags a result served from the (query, epoch) cache.
func (rs *RequestState) MarkCached() {
	if rs == nil {
		return
	}
	rs.mu.Lock()
	rs.cached = true
	rs.mu.Unlock()
}

// Clamped reports whether admission clamped the request's charge.
func (rs *RequestState) Clamped() bool {
	if rs == nil {
		return false
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.clamped
}

// Cached reports whether the result came from the result cache.
func (rs *RequestState) Cached() bool {
	if rs == nil {
		return false
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.cached
}

// ctxKey keys the RequestState in a request context.
type ctxKey struct{}

// WithRequest attaches rs to ctx.
func WithRequest(ctx context.Context, rs *RequestState) context.Context {
	return context.WithValue(ctx, ctxKey{}, rs)
}

// RequestFrom returns the RequestState attached to ctx, or nil.
func RequestFrom(ctx context.Context) *RequestState {
	rs, _ := ctx.Value(ctxKey{}).(*RequestState)
	return rs
}

// RequestID returns the correlation ID attached to ctx, or "". The engine
// reads it when opening a trace so the rendered span tree carries the
// same ID as the HTTP-side logs.
func RequestID(ctx context.Context) string {
	return RequestFrom(ctx).ID()
}
