package obs

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestNewIDUniqueAndValid(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewID()
		if !validID(id) {
			t.Fatalf("NewID() = %q fails validID", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestIDFromHeaders(t *testing.T) {
	h := http.Header{}
	if got := IDFromHeaders(h); got != "" {
		t.Fatalf("empty headers → %q, want empty", got)
	}
	h.Set(HeaderRequestID, "client-supplied-42")
	if got := IDFromHeaders(h); got != "client-supplied-42" {
		t.Fatalf("IDFromHeaders = %q", got)
	}
	// Hostile values are rejected: too long, control chars, spaces.
	h.Set(HeaderRequestID, strings.Repeat("x", maxIDLen+1))
	if got := IDFromHeaders(h); got != "" {
		t.Fatalf("overlong ID accepted: %q", got)
	}
	h.Set(HeaderRequestID, "has space")
	if got := IDFromHeaders(h); got != "" {
		t.Fatalf("ID with space accepted: %q", got)
	}
	h.Set(HeaderRequestID, "newline\nsplit")
	if got := IDFromHeaders(h); got != "" {
		t.Fatalf("ID with newline accepted: %q", got)
	}
	// traceparent is the fallback when X-Request-ID is absent/invalid.
	h.Set("traceparent", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if got := IDFromHeaders(h); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("traceparent fallback = %q", got)
	}
	h.Del("traceparent")
	h.Del(HeaderRequestID)
	h.Set("traceparent", "00-00000000000000000000000000000000-00f067aa0ba902b7-01")
	if got := IDFromHeaders(h); got != "" {
		t.Fatalf("all-zero trace-id accepted: %q", got)
	}
}

func TestParseTraceparent(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", "4bf92f3577b34da6a3ce929d0e0e4736", true},
		{"", "", false},
		{"garbage", "", false},
		{"00-xyz92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", "", false}, // non-hex
		{"00-4bf92f3577b34da6a3ce929d0e0e4736+00f067aa0ba902b7-01", "", false}, // wrong separator
	}
	for _, c := range cases {
		got, ok := ParseTraceparent(c.in)
		if got != c.want || ok != c.ok {
			t.Errorf("ParseTraceparent(%q) = (%q, %v), want (%q, %v)", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestRequestStateLifecycle(t *testing.T) {
	start := time.Unix(1_700_000_000, 0)
	rs := NewRequestState("req-1", "POST", "/query", start)
	rs.SetQuery("ans(X) :- r(X).")
	rs.SetState("queued", 3)
	rs.SetEpoch(7)
	rs.SetAdmission(1024, 8192, true)
	rs.SetQueueWait(5_000_000)
	rs.SetOutcome("ok")
	rs.MarkCached()
	if rs.ID() != "req-1" || !rs.Start().Equal(start) {
		t.Fatal("identity fields")
	}
	if !rs.Clamped() || !rs.Cached() {
		t.Fatal("clamped/cached flags")
	}
	rec := rs.AccessRecord(200, 64, 12*time.Millisecond)
	if rec.RequestID != "req-1" || rec.Epoch != 7 || rec.BoundRows != 1024 ||
		rec.Charge != 8192 || rec.QueueNs != 5_000_000 || !rec.Clamped ||
		!rec.Cached || rec.Outcome != "ok" || rec.LatencyNs != 12_000_000 || rec.Bytes != 64 {
		t.Fatalf("access record = %+v", rec)
	}
}

func TestRequestStateNilSafe(t *testing.T) {
	var rs *RequestState
	rs.SetQuery("q")
	rs.SetState("queued", 1)
	rs.SetEpoch(1)
	rs.SetAdmission(1, 1, false)
	rs.SetQueueWait(1)
	rs.SetOutcome("ok")
	rs.MarkCached()
	if rs.ID() != "" || rs.Clamped() || rs.Cached() || !rs.Start().IsZero() {
		t.Fatal("nil RequestState must read zero")
	}
	if rs.AccessRecord(200, 0, 0) != nil {
		t.Fatal("nil RequestState AccessRecord must be nil")
	}
}

func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if RequestFrom(ctx) != nil || RequestID(ctx) != "" {
		t.Fatal("empty context must yield nil/empty")
	}
	rs := NewRequestState("ctx-id", "POST", "/query", time.Now())
	ctx = WithRequest(ctx, rs)
	if RequestFrom(ctx) != rs {
		t.Fatal("RequestFrom must return the attached state")
	}
	if RequestID(ctx) != "ctx-id" {
		t.Fatalf("RequestID = %q", RequestID(ctx))
	}
}

func TestInflightRegistry(t *testing.T) {
	f := NewInflight()
	base := time.Unix(1_700_000_000, 0)
	a := NewRequestState("a", "POST", "/query", base)
	b := NewRequestState("b", "POST", "/query", base.Add(time.Second))
	hb := f.Register(b)
	ha := f.Register(a)
	if f.Len() != 2 {
		t.Fatalf("Len = %d", f.Len())
	}
	b.SetState("evaluating", 0)
	views := f.Snapshot(base.Add(3 * time.Second))
	if len(views) != 2 || views[0].RequestID != "a" || views[1].RequestID != "b" {
		t.Fatalf("snapshot order = %+v", views)
	}
	if views[0].ElapsedNs != 3*time.Second.Nanoseconds() {
		t.Fatalf("elapsed = %d", views[0].ElapsedNs)
	}
	if views[1].State != "evaluating" {
		t.Fatalf("state = %q", views[1].State)
	}
	f.Done(ha)
	f.Done(hb)
	if f.Len() != 0 {
		t.Fatalf("Len after done = %d", f.Len())
	}

	var nilF *Inflight
	if nilF.Register(a) != 0 || nilF.Len() != 0 || nilF.Snapshot(base) != nil {
		t.Fatal("nil Inflight must be inert")
	}
	nilF.Done(1)
}
