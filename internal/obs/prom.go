package obs

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// MetricType classifies a Prometheus family.
type MetricType string

// The metric types the renderer emits.
const (
	TypeGauge     MetricType = "gauge"
	TypeCounter   MetricType = "counter"
	TypeHistogram MetricType = "histogram"
	TypeSummary   MetricType = "summary"
)

// ValidName is the Prometheus metric- and label-name grammar; every name
// the renderer emits must match it (the exposition tests enforce this).
var ValidName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// SanitizeName maps an arbitrary string onto the ValidName grammar:
// invalid characters become underscores and a leading digit is prefixed.
func SanitizeName(s string) string {
	if s == "" {
		return "_"
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// Label is one name/value pair; samples carry them in a stable order.
type Label struct {
	Name  string
	Value string
}

// HistData is one histogram sample's data: per-bucket (non-cumulative)
// counts at ascending upper bounds. The renderer accumulates them into
// the cumulative _bucket series and appends the +Inf bucket.
type HistData struct {
	Bounds []float64 // upper bound (le) per bucket, ascending, +Inf excluded
	Counts []int64   // per-bucket counts, same length as Bounds
	Sum    float64
	Count  int64
}

// Quantile is one pre-computed quantile of a summary sample.
type Quantile struct {
	Q     float64
	Value float64
}

// Sample is one labeled series of a family: a scalar for gauges and
// counters, histogram data for histograms, quantiles plus Sum/Count for
// summaries.
type Sample struct {
	Labels    []Label
	Value     float64
	Hist      *HistData
	Quantiles []Quantile
	Sum       float64
	Count     int64
}

// Family is one Prometheus metric family.
type Family struct {
	Name    string
	Help    string
	Type    MetricType
	Samples []Sample
}

// WriteProm renders the families in the Prometheus text exposition format
// (version 0.0.4): # HELP / # TYPE headers, cumulative _bucket/_sum/
// _count triples for histograms, quantile-labeled samples plus _sum and
// _count for summaries. Families render in the given order, samples in
// the given sample order, so output is deterministic for golden tests.
func WriteProm(w io.Writer, fams []Family) error {
	for _, f := range fams {
		name := SanitizeName(f.Name)
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(f.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, f.Type); err != nil {
			return err
		}
		for _, s := range f.Samples {
			if err := writeSample(w, name, f.Type, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSample(w io.Writer, name string, t MetricType, s Sample) error {
	switch t {
	case TypeHistogram:
		if s.Hist == nil {
			return fmt.Errorf("obs: histogram family %s sample without data", name)
		}
		var cum int64
		for i, bound := range s.Hist.Bounds {
			cum += s.Hist.Counts[i]
			if err := writeLine(w, name+"_bucket", append(append([]Label(nil), s.Labels...),
				Label{"le", formatFloat(bound)}), float64(cum)); err != nil {
				return err
			}
		}
		if err := writeLine(w, name+"_bucket", append(append([]Label(nil), s.Labels...),
			Label{"le", "+Inf"}), float64(s.Hist.Count)); err != nil {
			return err
		}
		if err := writeLine(w, name+"_sum", s.Labels, s.Hist.Sum); err != nil {
			return err
		}
		return writeLine(w, name+"_count", s.Labels, float64(s.Hist.Count))
	case TypeSummary:
		for _, q := range s.Quantiles {
			if err := writeLine(w, name, append(append([]Label(nil), s.Labels...),
				Label{"quantile", formatFloat(q.Q)}), q.Value); err != nil {
				return err
			}
		}
		if err := writeLine(w, name+"_sum", s.Labels, s.Sum); err != nil {
			return err
		}
		return writeLine(w, name+"_count", s.Labels, float64(s.Count))
	default:
		return writeLine(w, name, s.Labels, s.Value)
	}
}

func writeLine(w io.Writer, name string, labels []Label, v float64) error {
	var b strings.Builder
	b.WriteString(name)
	if len(labels) > 0 {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(SanitizeName(l.Name))
			b.WriteString(`="`)
			b.WriteString(escapeLabel(l.Value))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// formatFloat renders a sample value: integers without an exponent where
// they fit, shortest round-trip form otherwise.
func formatFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Pow2Hist converts a power-of-two bucket array (bucket 0 holds zeros,
// bucket i holds values in [2^(i-1), 2^i), as produced by both
// internal/metrics histograms and the windowed Sampler) into HistData:
// upper bound 2^i − 1 per bucket, trailing empty buckets trimmed.
func Pow2Hist(buckets []int64, sum, count int64) *HistData {
	hi := -1
	for i, n := range buckets {
		if n != 0 {
			hi = i
		}
	}
	h := &HistData{Sum: float64(sum), Count: count}
	for i := 0; i <= hi; i++ {
		bound := float64(0)
		if i > 0 {
			// 2^i − 1: the largest integer the bucket holds. Computed with
			// math.Ldexp so i up to 64 cannot overflow integer shifts.
			bound = math.Ldexp(1, i) - 1
		}
		h.Bounds = append(h.Bounds, bound)
		h.Counts = append(h.Counts, buckets[i])
	}
	return h
}

// SortedLabelKey renders labels canonically ("a=x,b=y") for map keys in
// tests and dedup.
func SortedLabelKey(labels []Label) string {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	parts := make([]string, len(ls))
	for i, l := range ls {
		parts[i] = l.Name + "=" + l.Value
	}
	return strings.Join(parts, ",")
}
