package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestAccessLogSampling(t *testing.T) {
	var buf bytes.Buffer
	l := NewAccessLog(&buf, 10)
	for i := 0; i < 100; i++ {
		l.Log(&AccessRecord{RequestID: "ok", Status: 200, Time: time.Unix(0, 0)})
	}
	if got := l.Logged(); got != 10 {
		t.Fatalf("Logged = %d, want 10 (1-in-10 sampling)", got)
	}
	if got := l.Dropped(); got != 90 {
		t.Fatalf("Dropped = %d, want 90", got)
	}
	// Errors and clamps bypass sampling entirely.
	l.Log(&AccessRecord{RequestID: "shed", Status: 429})
	l.Log(&AccessRecord{RequestID: "clamp", Status: 200, Clamped: true})
	if got := l.Logged(); got != 12 {
		t.Fatalf("Logged after noteworthy = %d, want 12", got)
	}
	// Every line is valid JSON with the request ID intact.
	sc := bufio.NewScanner(&buf)
	lines := 0
	sawShed := false
	for sc.Scan() {
		var rec AccessRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad JSON line %q: %v", sc.Text(), err)
		}
		if rec.RequestID == "shed" {
			sawShed = true
			if rec.Status != 429 {
				t.Fatalf("shed line status = %d", rec.Status)
			}
		}
		lines++
	}
	if lines != 12 {
		t.Fatalf("lines = %d, want 12", lines)
	}
	if !sawShed {
		t.Fatal("shed line missing")
	}
	l.Reset()
	if l.Logged() != 0 || l.Dropped() != 0 {
		t.Fatal("Reset must zero counters")
	}
}

func TestAccessLogEveryOneLogsAll(t *testing.T) {
	var buf bytes.Buffer
	l := NewAccessLog(&buf, 1)
	for i := 0; i < 5; i++ {
		l.Log(&AccessRecord{Status: 200})
	}
	if l.Logged() != 5 || l.Dropped() != 0 {
		t.Fatalf("logged/dropped = %d/%d", l.Logged(), l.Dropped())
	}
	if n := strings.Count(buf.String(), "\n"); n != 5 {
		t.Fatalf("lines = %d", n)
	}
	// every < 1 normalizes to 1.
	if zl := NewAccessLog(&buf, 0); zl == nil || zl.every != 1 {
		t.Fatal("every=0 must normalize to 1")
	}
}

func TestAccessLogNilSafe(t *testing.T) {
	if NewAccessLog(nil, 10) != nil {
		t.Fatal("nil writer must yield a nil log")
	}
	var l *AccessLog
	l.Log(&AccessRecord{Status: 500})
	if l.Logged() != 0 || l.Dropped() != 0 {
		t.Fatal("nil log must read zero")
	}
	l.Reset()
}
