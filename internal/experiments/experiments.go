// Package experiments regenerates every figure, worked example, and
// quantitative theorem of the paper as a measured experiment. Each
// experiment produces a table of rows comparing the paper's claim with the
// value measured by this library; cmd/cqbench prints them and the root
// benchmarks time them. The experiment index lives in DESIGN.md; results
// are recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Row is one line of an experiment report.
type Row struct {
	// Name identifies the configuration (workload + parameters).
	Name string
	// Paper is the value or behaviour the paper predicts.
	Paper string
	// Measured is what this library computed.
	Measured string
	// OK reports whether the measurement matches the prediction.
	OK bool
}

// Report is the outcome of one experiment.
type Report struct {
	ID       string
	Artifact string // which figure/example/theorem this regenerates
	Title    string
	Rows     []Row
}

// Failed returns the rows that did not match the paper's prediction.
func (r *Report) Failed() []Row {
	var out []Row
	for _, row := range r.Rows {
		if !row.OK {
			out = append(out, row)
		}
	}
	return out
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s (%s)\n", r.ID, r.Title, r.Artifact)
	nameW, paperW, measW := len("workload"), len("paper"), len("measured")
	for _, row := range r.Rows {
		nameW = max(nameW, len(row.Name))
		paperW = max(paperW, len(row.Paper))
		measW = max(measW, len(row.Measured))
	}
	fmt.Fprintf(&b, "  %-*s  %-*s  %-*s  ok\n", nameW, "workload", paperW, "paper", measW, "measured")
	for _, row := range r.Rows {
		okStr := "yes"
		if !row.OK {
			okStr = "NO"
		}
		fmt.Fprintf(&b, "  %-*s  %-*s  %-*s  %s\n", nameW, row.Name, paperW, row.Paper, measW, row.Measured, okStr)
	}
	return b.String()
}

// runner is an experiment implementation.
type runner func() (*Report, error)

var registry = map[string]runner{
	"E1":  E1Example21,
	"E2":  E2ChaseExample,
	"E3":  E3Triangle,
	"E4":  E4SizeBoundNoFDs,
	"E5":  E5SizeBoundSimpleFDs,
	"E6":  E6JoinProjectPlan,
	"E7":  E7GridBlowup,
	"E8":  E8KeyedJoinTreewidth,
	"E9":  E9KeyedJoinChain,
	"E10": E10TWPreservationNoFDs,
	"E11": E11TWPreservationFDs,
	"E12": E12SizePreservation,
	"E13": E13InformationDiagram,
	"E14": E14ShamirGap,
	"E15": E15EntropyLP,
	"E16": E16HornSATDecision,
	"E17": E17NPHardnessReduction,
	"E18": E18PolyTimeColorNumber,
	"E19": E19KnittedComplexity,
	"E20": E20ZhangYeung,
}

// IDs returns all experiment identifiers in order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		var a, b int
		fmt.Sscanf(out[i], "E%d", &a)
		fmt.Sscanf(out[j], "E%d", &b)
		return a < b
	})
	return out
}

// Run executes the experiment with the given id.
func Run(id string) (*Report, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %s)", id, strings.Join(IDs(), ", "))
	}
	return r()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func boolRow(name, paper, measured string, ok bool) Row {
	return Row{Name: name, Paper: paper, Measured: measured, OK: ok}
}
