package experiments

import (
	"fmt"
	"math/rand"

	"cqbound/internal/coloring"
	"cqbound/internal/construct"
	"cqbound/internal/cq"
	"cqbound/internal/database"
	"cqbound/internal/eval"
	"cqbound/internal/relation"
	"cqbound/internal/sat"
	"cqbound/internal/treewidth"
)

// E7GridBlowup reproduces Proposition 5.2 and Figure 1: the gadget's
// Gaifman graph has treewidth exactly n (upper bound from the Lemma 5.3
// elimination ordering, lower bound from the contained n × nm grid), while
// the keyed self-join contains the nm × (nm+1) lattice, so its treewidth is
// at least nm.
func E7GridBlowup() (*Report, error) {
	rep := &Report{ID: "E7", Artifact: "Proposition 5.2 + Figure 1", Title: "keyed self-join treewidth blowup"}
	for _, c := range []struct{ n, m int }{{3, 1}, {4, 2}, {5, 2}, {5, 3}} {
		r := construct.GridGadget(c.n, c.m)
		g := database.GaifmanOf(r)
		order, err := construct.GridGadgetEliminationOrder(c.n, c.m, g)
		if err != nil {
			return nil, err
		}
		d, err := treewidth.FromEliminationOrder(g, order)
		if err != nil {
			return nil, err
		}
		if err := treewidth.Validate(g, d); err != nil {
			return nil, err
		}
		lower := g.ContainsGrid(c.n*c.m, c.n, construct.GridContainedLabel(c.m))
		rep.Rows = append(rep.Rows, boolRow(
			fmt.Sprintf("n=%d m=%d tw(R)", c.n, c.m),
			fmt.Sprintf("%d", c.n),
			fmt.Sprintf("<=%d (order), >=%d (grid)", d.Width(), boolToInt(lower)*c.n),
			d.Width() == c.n && lower,
		))
		joined, err := relation.EquiJoin(r, r.Clone("Rcopy"), [][2]int{{0, 1}})
		if err != nil {
			return nil, err
		}
		gg := database.GaifmanOf(joined)
		contains := gg.ContainsGrid(c.n*c.m, c.n*c.m+1, func(i, j int) string {
			return construct.GridVertexLabel(i, j)
		})
		rep.Rows = append(rep.Rows, boolRow(
			fmt.Sprintf("n=%d m=%d tw(R join R)", c.n, c.m),
			fmt.Sprintf(">= nm = %d", c.n*c.m),
			fmt.Sprintf("contains %dx%d grid: %v", c.n*c.m, c.n*c.m+1, contains),
			contains,
		))
	}
	return rep, nil
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// E8KeyedJoinTreewidth measures Theorem 5.5 on random keyed joins: the
// constructive decomposition transformer never exceeds j(ω+1) − 1 and stays
// valid for the join result.
func E8KeyedJoinTreewidth() (*Report, error) {
	rep := &Report{ID: "E8", Artifact: "Theorem 5.5", Title: "keyed join treewidth bound j(ω+1)−1"}
	rng := rand.New(rand.NewSource(101))
	for _, sArity := range []int{2, 3, 4} {
		worstRatio := 0.0
		checked := 0
		for trial := 0; trial < 12; trial++ {
			r, s := randomKeyedPair(rng, 10+rng.Intn(12), sArity, 6)
			g := database.GaifmanOf(r, s)
			if g.N() == 0 {
				continue
			}
			d, omega, err := treewidth.Heuristic(g)
			if err != nil {
				return nil, err
			}
			lifted, err := treewidth.KeyedJoinDecomposition(g, d, r, s, 1, 0)
			if err != nil {
				return nil, err
			}
			joined, err := relation.EquiJoin(r, s, [][2]int{{1, 0}})
			if err != nil {
				return nil, err
			}
			if joined.Size() == 0 {
				continue
			}
			h := database.GaifmanOf(joined)
			rel, err := lifted.RelabelTo(g, h)
			if err != nil {
				return nil, err
			}
			if err := treewidth.Validate(h, rel); err != nil {
				return nil, fmt.Errorf("E8: invalid lifted decomposition: %v", err)
			}
			bound := sArity*(omega+1) - 1
			if lifted.Width() > bound {
				rep.Rows = append(rep.Rows, boolRow(
					fmt.Sprintf("arity %d trial %d", sArity, trial),
					fmt.Sprintf("width <= %d", bound),
					fmt.Sprintf("width %d", lifted.Width()),
					false,
				))
				continue
			}
			ratio := float64(lifted.Width()) / float64(bound)
			if ratio > worstRatio {
				worstRatio = ratio
			}
			checked++
		}
		rep.Rows = append(rep.Rows, boolRow(
			fmt.Sprintf("S arity j=%d (%d joins)", sArity, checked),
			"lifted width <= j(ω+1)−1, decomposition valid",
			fmt.Sprintf("all within bound; worst fill %.0f%%", worstRatio*100),
			checked > 0,
		))
	}
	return rep, nil
}

func randomKeyedPair(rng *rand.Rand, rSize, sArity, universe int) (*relation.Relation, *relation.Relation) {
	r := relation.New("R", "ra", "rb")
	for i := 0; i < rSize; i++ {
		r.MustInsert(
			relation.V(fmt.Sprintf("u%d", rng.Intn(universe))),
			relation.V(fmt.Sprintf("k%d", rng.Intn(universe))),
		)
	}
	attrs := make([]string, sArity)
	for i := range attrs {
		attrs[i] = fmt.Sprintf("s%d", i)
	}
	s := relation.New("S", attrs...)
	for k := 0; k < universe; k++ {
		row := make(relation.Tuple, sArity)
		row[0] = relation.V(fmt.Sprintf("k%d", k))
		for i := 1; i < sArity; i++ {
			row[i] = relation.V(fmt.Sprintf("w%d", rng.Intn(universe)))
		}
		s.MustInsert(row...)
	}
	return r, s
}

// E9KeyedJoinChain measures Proposition 5.7: a chain of keyed joins
// repeatedly lifted through the Theorem 5.5 transformer stays within
// ℓ^(n−1)·(1 + max(ω, 2)) − 1.
func E9KeyedJoinChain() (*Report, error) {
	rep := &Report{ID: "E9", Artifact: "Proposition 5.7", Title: "sequences of keyed joins"}
	rng := rand.New(rand.NewSource(202))
	for _, chainLen := range []int{2, 3} {
		const arity = 3
		// Build R1 and keyed S2..Sn: Si's first column is a key matching
		// the previous result's last column.
		rels := make([]*relation.Relation, chainLen)
		r1 := relation.New("R1", "a0", "a1")
		for i := 0; i < 12; i++ {
			r1.MustInsert(
				relation.V(fmt.Sprintf("x%d", rng.Intn(6))),
				relation.V(fmt.Sprintf("k1_%d", rng.Intn(6))),
			)
		}
		rels[0] = r1
		for s := 1; s < chainLen; s++ {
			attrs := make([]string, arity)
			for i := range attrs {
				attrs[i] = fmt.Sprintf("s%d_%d", s, i)
			}
			sr := relation.New(fmt.Sprintf("S%d", s+1), attrs...)
			for k := 0; k < 6; k++ {
				sr.MustInsert(
					relation.V(fmt.Sprintf("k%d_%d", s, k)),
					relation.V(fmt.Sprintf("w%d_%d", s, rng.Intn(6))),
					relation.V(fmt.Sprintf("k%d_%d", s+1, rng.Intn(6))),
				)
			}
			rels[s] = sr
		}
		g := database.GaifmanOf(rels...)
		d, omega, err := treewidth.Heuristic(g)
		if err != nil {
			return nil, err
		}
		cur := rels[0]
		curDecomp := d
		ok := true
		for s := 1; s < chainLen; s++ {
			lifted, err := treewidth.KeyedJoinDecomposition(g, curDecomp, cur, rels[s], cur.Arity()-1, 0)
			if err != nil {
				return nil, err
			}
			cur, err = relation.EquiJoin(cur, rels[s], [][2]int{{cur.Arity() - 1, 0}})
			if err != nil {
				return nil, err
			}
			curDecomp = lifted
		}
		bound := 1
		for i := 0; i < chainLen-1; i++ {
			bound *= arity
		}
		maxTW := omega
		if maxTW < 2 {
			maxTW = 2
		}
		bound = bound*(1+maxTW) - 1
		if cur.Size() > 0 {
			h := database.GaifmanOf(cur)
			relabeled, err := curDecomp.RelabelTo(g, h)
			if err != nil {
				return nil, err
			}
			if err := treewidth.Validate(h, relabeled); err != nil {
				return nil, fmt.Errorf("E9: invalid chained decomposition: %v", err)
			}
		}
		ok = ok && curDecomp.Width() <= bound
		rep.Rows = append(rep.Rows, boolRow(
			fmt.Sprintf("chain length %d (ℓ=%d, ω=%d)", chainLen, arity, omega),
			fmt.Sprintf("width <= %d", bound),
			fmt.Sprintf("width %d", curDecomp.Width()),
			ok,
		))
	}
	return rep, nil
}

// E10TWPreservationNoFDs reproduces Proposition 5.9: the pair test decides
// preservation, and for non-preserving queries the coloring witness turns
// into a database with tree inputs and clique outputs.
func E10TWPreservationNoFDs() (*Report, error) {
	rep := &Report{ID: "E10", Artifact: "Proposition 5.9", Title: "treewidth preservation without FDs"}
	cases := []struct {
		name     string
		src      string
		preserve bool
	}{
		{"self-join pair", "R2(X,Y,Z) <- R(X,Y), R(X,Z).", false},
		{"chain projection", "Q(X,Z) <- R(X,Y), S(Y,Z).", false},
		{"triangle", "S(X,Y,Z) <- R(X,Y), R(X,Z), R(Y,Z).", true},
		{"single atom head", "Q(X,Y) <- R(X,Y), S(Y,Z).", true},
	}
	for _, c := range cases {
		q := cq.MustParse(c.src)
		col, has := coloring.TwoColoringNoFDs(q)
		rep.Rows = append(rep.Rows, boolRow(
			c.name+": preserved?",
			fmt.Sprintf("%v", c.preserve),
			fmt.Sprintf("%v", !has),
			has != c.preserve,
		))
		if !has {
			continue
		}
		const M = 6
		db, err := construct.ProductWitness(q, col, M)
		if err != nil {
			return nil, err
		}
		gin := db.GaifmanGraph()
		twIn, _, err := treewidth.Exact(gin)
		if err != nil {
			return nil, err
		}
		out, _, err := eval.JoinProject(q, db)
		if err != nil {
			return nil, err
		}
		lb := treewidth.LowerBound(database.GaifmanOf(out))
		rep.Rows = append(rep.Rows, boolRow(
			c.name+": blowup witness (M=6)",
			fmt.Sprintf("tw(in) <= 1, tw(out) >= %d", M-1),
			fmt.Sprintf("tw(in) = %d, tw(out) >= %d", twIn, lb),
			twIn <= 1 && lb >= M-1,
		))
	}
	return rep, nil
}

// E11TWPreservationFDs reproduces Theorem 5.10: keys can rescue
// preservation, and the SAT decision agrees with the Theorem 4.4 pipeline
// on simple keys.
func E11TWPreservationFDs() (*Report, error) {
	rep := &Report{ID: "E11", Artifact: "Theorem 5.10", Title: "treewidth preservation with simple keys"}
	cases := []struct {
		name     string
		src      string
		preserve bool
	}{
		{"chain, no key", "Q(X,Z) <- R(X,Y), S(Y,Z).", false},
		{"chain, key on S", "Q(X,Z) <- R(X,Y), S(Y,Z).\nkey S[1].", true},
		{"disjoint pair, key", "Q(Y,Z) <- R(X,Y), S(W,Z).\nkey R[1].", false},
		{"keyed self-join", "Q(X,Y,Z) <- R(X,Y), R(X,Z).\nkey R[1].", true},
	}
	for _, c := range cases {
		q := cq.MustParse(c.src)
		col, ch, has, err := coloring.TwoColoringSimpleFDs(q)
		if err != nil {
			return nil, err
		}
		dec := sat.DecideTwoColoring(q)
		rep.Rows = append(rep.Rows, boolRow(
			c.name+": preserved?",
			fmt.Sprintf("%v", c.preserve),
			fmt.Sprintf("%v (SAT agrees: %v)", !has, dec.Exists == has),
			has != c.preserve && dec.Exists == has,
		))
		if !has {
			continue
		}
		const M = 5
		db, err := construct.ProductWitness(ch, col, M)
		if err != nil {
			return nil, err
		}
		if err := db.CheckFDs(q); err != nil {
			return nil, err
		}
		gin := db.GaifmanGraph()
		twIn, _, err := treewidth.Exact(gin)
		if err != nil {
			return nil, err
		}
		out, _, err := eval.JoinProject(q, db)
		if err != nil {
			return nil, err
		}
		lb := treewidth.LowerBound(database.GaifmanOf(out))
		rep.Rows = append(rep.Rows, boolRow(
			c.name+": blowup witness (M=5)",
			fmt.Sprintf("tw(in) <= 1, tw(out) >= %d", M-1),
			fmt.Sprintf("tw(in) = %d, tw(out) >= %d", twIn, lb),
			twIn <= 1 && lb >= M-1,
		))
	}
	return rep, nil
}
