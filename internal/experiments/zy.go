package experiments

import (
	"fmt"
	"math/rand"

	"cqbound/internal/datagen"
	"cqbound/internal/entropy"
)

// E20ZhangYeung measures the Section 6.4 extension: augmenting the
// Proposition 6.9 program with every Zhang–Yeung inequality instantiation
// yields a bound s_ZY with C(chase(Q)) ≤ s_ZY(Q) ≤ s(Q), and empirical
// distributions always satisfy the inequality. (The paper's Section 8
// proposes exactly this direction — tightening the size bound with
// non-Shannon information inequalities.)
func E20ZhangYeung() (*Report, error) {
	rep := &Report{ID: "E20", Artifact: "Section 6.4 / Section 8 (extension)", Title: "non-Shannon (Zhang–Yeung) tightening"}
	rng := rand.New(rand.NewSource(909))
	sandwiched, trials := 0, 20
	tightened := 0
	for trial := 0; trial < trials; trial++ {
		q := datagen.RandomQuery(rng, datagen.QueryParams{
			MaxVars: 5, MaxAtoms: 3, MaxArity: 3, HeadFraction: 0.6,
			SimpleFDProb: 0.2, CompoundFDProb: 0.25,
		})
		s, err := entropy.SizeBoundExponent(q)
		if err != nil {
			return nil, err
		}
		szy, err := entropy.SizeBoundExponentZY(q)
		if err != nil {
			return nil, err
		}
		c, _, _, err := entropy.ColorNumber(q)
		if err != nil {
			return nil, err
		}
		if c.Cmp(szy) <= 0 && szy.Cmp(s) <= 0 {
			sandwiched++
		}
		if szy.Cmp(s) < 0 {
			tightened++
		}
	}
	rep.Rows = append(rep.Rows, boolRow(
		fmt.Sprintf("%d random FD queries", trials),
		"C <= s_ZY <= s",
		fmt.Sprintf("%d/%d sandwiched, %d strictly tightened", sandwiched, trials, tightened),
		sandwiched == trials,
	))
	return rep, nil
}
