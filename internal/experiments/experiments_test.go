package experiments

import "testing"

func TestAllExperiments(t *testing.T) {
	for _, id := range IDs() {
		rep, err := Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if failed := rep.Failed(); len(failed) > 0 {
			t.Errorf("%s has %d failed rows:\n%s", id, len(failed), rep)
		}
	}
}
