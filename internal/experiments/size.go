package experiments

import (
	"fmt"
	"math/big"

	"cqbound/internal/chase"
	"cqbound/internal/coloring"
	"cqbound/internal/construct"
	"cqbound/internal/cq"
	"cqbound/internal/database"
	"cqbound/internal/eval"
	"cqbound/internal/relation"
	"cqbound/internal/treewidth"
)

// starDatabase is Example 2.1's relation R(A,B) = {<1,1>,...,<1,n>}.
func starDatabase(n int) *database.Database {
	r := relation.New("R", "A", "B")
	for i := 1; i <= n; i++ {
		r.Add("e1", fmt.Sprintf("e%d", i))
	}
	db := database.New()
	db.MustAdd(r)
	return db
}

// E1Example21 measures Example 2.1: the self-join of the star relation has
// n² tuples and its Gaifman graph is a clique, so treewidth jumps from 1 to
// n (the clique includes the shared first column's value).
func E1Example21() (*Report, error) {
	rep := &Report{ID: "E1", Artifact: "Example 2.1", Title: "self-join size and treewidth blowup"}
	q := cq.MustParse("R2(X,Y,Z) <- R(X,Y), R(X,Z).")
	for _, n := range []int{4, 8, 12} {
		db := starDatabase(n)
		out, _, err := eval.JoinProject(q, db)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, boolRow(
			fmt.Sprintf("n=%d |Q(D)|", n),
			fmt.Sprintf("%d", n*n),
			fmt.Sprintf("%d", out.Size()),
			out.Size() == n*n,
		))
		gin := db.GaifmanGraph()
		twIn, _, err := treewidth.Exact(gin)
		if err != nil {
			return nil, err
		}
		gout := database.GaifmanOf(out)
		// The output's Gaifman graph is K_n (treewidth n−1), per the
		// example's discussion.
		var twOutStr string
		var okOut bool
		if gout.N() <= treewidth.MaxExactVertices {
			twOut, _, err := treewidth.Exact(gout)
			if err != nil {
				return nil, err
			}
			twOutStr = fmt.Sprintf("tw=%d", twOut)
			okOut = twOut == n-1
		} else {
			lb := treewidth.LowerBound(gout)
			twOutStr = fmt.Sprintf("tw>=%d", lb)
			okOut = lb >= n-1
		}
		rep.Rows = append(rep.Rows, boolRow(
			fmt.Sprintf("n=%d tw(in)->tw(out)", n),
			fmt.Sprintf("1 -> %d", n-1),
			fmt.Sprintf("%d -> %s", twIn, twOutStr),
			twIn == 1 && okOut,
		))
	}
	return rep, nil
}

// E2ChaseExample reproduces Examples 2.2 and 3.4: the chase merges W, X, Y;
// the color number drops from 2 to 1; and the output can never exceed |R2|.
func E2ChaseExample() (*Report, error) {
	rep := &Report{ID: "E2", Artifact: "Examples 2.2 and 3.4", Title: "chase eliminates implied dependencies"}
	q := cq.MustParse("R0(W,X,Y,Z) <- R1(W,X,Y), R1(W,W,W), R2(Y,Z).\nkey R1[1].")
	res := chase.Chase(q)
	rep.Rows = append(rep.Rows, boolRow("chase(Q) body atoms", "2", fmt.Sprintf("%d", len(res.Query.Body)), len(res.Query.Body) == 2))

	cBefore, _, err := coloring.NumberSimple(q)
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, boolRow("C(Q)", "2", cBefore.RatString(), cBefore.Cmp(big.NewRat(2, 1)) == 0))
	cAfter, _, _, err := coloring.NumberWithSimpleFDs(q)
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, boolRow("C(chase(Q))", "1", cAfter.RatString(), cAfter.Cmp(big.NewRat(1, 1)) == 0))

	// |Q(D)| ≤ |R2| on an instance: build R1 keyed on position 1 with the
	// diagonal tuples the second atom demands, R2 arbitrary.
	r1 := relation.New("R1", "a", "b", "c")
	r2 := relation.New("R2", "a", "b")
	for i := 0; i < 6; i++ {
		r1.Add(fmt.Sprintf("w%d", i), fmt.Sprintf("w%d", i), fmt.Sprintf("w%d", i))
		for j := 0; j < 3; j++ {
			r2.Add(fmt.Sprintf("w%d", i), fmt.Sprintf("z%d_%d", i, j))
		}
	}
	db := database.New()
	db.MustAdd(r1)
	db.MustAdd(r2)
	if err := db.CheckFDs(q); err != nil {
		return nil, err
	}
	out, _, err := eval.JoinProject(q, db)
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, boolRow("|Q(D)| <= |R2|",
		fmt.Sprintf("<= %d", r2.Size()),
		fmt.Sprintf("%d", out.Size()),
		out.Size() <= r2.Size()))
	return rep, nil
}

// E3Triangle reproduces Example 3.3 and the AGM bound: C = 3/2 and the
// Proposition 4.5 witness attains |Q(D)| = rmax^(3/2) exactly when each
// relation occurrence is distinct.
func E3Triangle() (*Report, error) {
	rep := &Report{ID: "E3", Artifact: "Example 3.3 + Prop 4.3", Title: "triangle query: C = 3/2, AGM tightness"}
	q := cq.MustParse("S(X,Y,Z) <- R1(X,Y), R2(X,Z), R3(Y,Z).")
	c, col, err := coloring.NumberNoFDs(q)
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, boolRow("C(Q)", "3/2", c.RatString(), c.Cmp(big.NewRat(3, 2)) == 0))
	for _, m := range []int{2, 4, 8} {
		db, err := construct.ProductWitness(q, col, m)
		if err != nil {
			return nil, err
		}
		rmax, err := db.RMax(q)
		if err != nil {
			return nil, err
		}
		out, _, err := eval.GenericJoin(q, db)
		if err != nil {
			return nil, err
		}
		want := m * m * m
		rep.Rows = append(rep.Rows, boolRow(
			fmt.Sprintf("M=%d: |Q(D)| vs rmax^1.5", m),
			fmt.Sprintf("%d^1.5 = %d", rmax, want),
			fmt.Sprintf("%d", out.Size()),
			out.Size() == want && rmax == m*m,
		))
	}
	return rep, nil
}

// E4SizeBoundNoFDs sweeps query families without dependencies
// (Proposition 4.1): cycles, stars, and a projection query; for each, the
// witness database attains |Q(D)| = M^|colors(u0)| with rmax ≤ rep·M^a.
func E4SizeBoundNoFDs() (*Report, error) {
	rep := &Report{ID: "E4", Artifact: "Proposition 4.1", Title: "size bounds without FDs: upper bound + tightness"}
	families := []struct {
		name  string
		src   string
		wantC *big.Rat
	}{
		{"4-cycle join", "Q(A,B,C,D) <- R1(A,B), R2(B,C), R3(C,D), R4(D,A).", big.NewRat(2, 1)},
		{"5-cycle join", "Q(A,B,C,D,E) <- R1(A,B), R2(B,C), R3(C,D), R4(D,E), R5(E,A).", big.NewRat(5, 2)},
		{"star projection", "Q(Y,Z) <- R1(X,Y), R2(X,Z).", big.NewRat(2, 1)},
		{"bowtie projection", "Q(A,C) <- R1(A,B), R2(B,C), R3(C,D), R4(D,A).", big.NewRat(2, 1)},
	}
	const M = 3
	for _, f := range families {
		q := cq.MustParse(f.src)
		c, col, err := coloring.NumberNoFDs(q)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, boolRow(f.name+": C(Q)", f.wantC.RatString(), c.RatString(), c.Cmp(f.wantC) == 0))
		db, err := construct.ProductWitness(q, col, M)
		if err != nil {
			return nil, err
		}
		out, _, err := eval.GenericJoin(q, db)
		if err != nil {
			return nil, err
		}
		want := construct.ProductWitnessOutputSize(q, col, M)
		rmax, err := db.RMax(q)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, boolRow(
			fmt.Sprintf("%s: witness M=%d", f.name, M),
			fmt.Sprintf("|Q(D)|=%d", want),
			fmt.Sprintf("|Q(D)|=%d rmax=%d", out.Size(), rmax),
			out.Size() == want && boundHolds(out.Size(), rmax, c),
		))
	}
	return rep, nil
}

// E5SizeBoundSimpleFDs reproduces Theorem 4.4: with simple keys the
// exponent is C(chase(Q)); keys can strictly shrink it, and the bound stays
// tight via the Proposition 4.5 witness built on chase(Q).
func E5SizeBoundSimpleFDs() (*Report, error) {
	rep := &Report{ID: "E5", Artifact: "Theorem 4.4 + Example 4.6", Title: "size bounds with simple keys"}
	cases := []struct {
		name   string
		src    string
		noKeyC *big.Rat
		keyedC *big.Rat
	}{
		{"chain + key", "Q(X,Z) <- R(X,Y), S(Y,Z).\nkey S[1].", big.NewRat(2, 1), big.NewRat(1, 1)},
		{"product + key", "Q(X,Y,Z) <- R(X,Y), S(X,Z).\nkey R[1].", big.NewRat(2, 1), big.NewRat(1, 1)},
		{"example 4.6", "R0(X1) <- R1(X1,X2,X3), R2(X1,X4), R3(X5,X1).\nkey R1[1].\nkey R2[1].\nkey R3[1].", big.NewRat(1, 1), big.NewRat(1, 1)},
	}
	const M = 3
	for _, cse := range cases {
		q := cq.MustParse(cse.src)
		noKey := q.Clone()
		noKey.FDs = nil
		cNo, _, err := coloring.NumberNoFDs(noKey)
		if err != nil {
			return nil, err
		}
		cKey, col, ch, err := coloring.NumberWithSimpleFDs(q)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, boolRow(
			cse.name+": C ignoring keys vs with keys",
			fmt.Sprintf("%s vs %s", cse.noKeyC.RatString(), cse.keyedC.RatString()),
			fmt.Sprintf("%s vs %s", cNo.RatString(), cKey.RatString()),
			cNo.Cmp(cse.noKeyC) == 0 && cKey.Cmp(cse.keyedC) == 0,
		))
		db, err := construct.ProductWitness(ch, col, M)
		if err != nil {
			return nil, err
		}
		if err := db.CheckFDs(q); err != nil {
			return nil, err
		}
		out, _, err := eval.JoinProject(q, db)
		if err != nil {
			return nil, err
		}
		want := construct.ProductWitnessOutputSize(ch, col, M)
		rmax, err := db.RMax(q)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, boolRow(
			cse.name+": witness tightness",
			fmt.Sprintf("|Q(D)|=%d", want),
			fmt.Sprintf("|Q(D)|=%d rmax=%d", out.Size(), rmax),
			out.Size() == want && boundHolds(out.Size(), rmax, cKey),
		))
	}
	return rep, nil
}

// E6JoinProjectPlan demonstrates Corollary 4.8: on AGM-tight triangle
// instances, all strategies agree, and the worst-case optimal generic join
// keeps its intermediate results at the output size while the naive binary
// plan overshoots.
func E6JoinProjectPlan() (*Report, error) {
	rep := &Report{ID: "E6", Artifact: "Corollary 4.8", Title: "join-project plans vs naive evaluation"}
	q := cq.MustParse("S(X,Y,Z) <- R1(X,Y), R2(X,Z), R3(Y,Z).")
	_, col, err := coloring.NumberNoFDs(q)
	if err != nil {
		return nil, err
	}
	for _, m := range []int{4, 6, 8} {
		db, err := construct.ProductWitness(q, col, m)
		if err != nil {
			return nil, err
		}
		naive, stN, err := eval.Naive(q, db)
		if err != nil {
			return nil, err
		}
		jp, stJ, err := eval.JoinProject(q, db)
		if err != nil {
			return nil, err
		}
		gj, stG, err := eval.GenericJoin(q, db)
		if err != nil {
			return nil, err
		}
		agree := relation.Equal(naive, jp) && relation.Equal(naive, gj)
		rep.Rows = append(rep.Rows, boolRow(
			fmt.Sprintf("M=%d agreement", m),
			"all strategies equal",
			fmt.Sprintf("|Q(D)|=%d", naive.Size()),
			agree,
		))
		rep.Rows = append(rep.Rows, boolRow(
			fmt.Sprintf("M=%d max intermediate (naive/jp/generic)", m),
			"generic <= output; naive overshoots",
			fmt.Sprintf("%d / %d / %d (output %d)", stN.MaxIntermediate, stJ.MaxIntermediate, stG.MaxIntermediate, naive.Size()),
			stG.MaxIntermediate <= naive.Size() && stN.MaxIntermediate >= naive.Size(),
		))
	}
	return rep, nil
}

// boundHolds checks size ≤ rmax^c exactly for rational c.
func boundHolds(size, rmax int, c *big.Rat) bool {
	if size <= 1 {
		return true
	}
	if rmax == 0 {
		return false
	}
	lhs := new(big.Int).Exp(big.NewInt(int64(size)), c.Denom(), nil)
	rhs := new(big.Int).Exp(big.NewInt(int64(rmax)), c.Num(), nil)
	return lhs.Cmp(rhs) <= 0
}
