package experiments

import (
	"fmt"
	"math"
	"math/big"
	"math/rand"

	"cqbound/internal/coloring"
	"cqbound/internal/construct"
	"cqbound/internal/cover"
	"cqbound/internal/datagen"
	"cqbound/internal/entropy"
	"cqbound/internal/eval"
	"cqbound/internal/hornsat"
	"cqbound/internal/relation"
)

// E12SizePreservation reproduces Theorem 6.1 on random queries with
// compound dependencies: a size increase is possible iff C(chase(Q)) > 1;
// when it is, C ≥ m/(m−1) and the Proposition 4.5 witness realizes a strict
// increase.
func E12SizePreservation() (*Report, error) {
	rep := &Report{ID: "E12", Artifact: "Theorem 6.1", Title: "characterization of size-preserving queries"}
	rng := rand.New(rand.NewSource(301))
	one := big.NewRat(1, 1)
	agreement, increases, witnesses := 0, 0, 0
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		q := datagen.RandomQuery(rng, datagen.QueryParams{
			MaxVars: 5, MaxAtoms: 4, MaxArity: 3, HeadFraction: 0.5,
			SimpleFDProb: 0.2, CompoundFDProb: 0.35, RepeatRelationProb: 0.3,
		})
		c, col, ch, err := entropy.ColorNumber(q)
		if err != nil {
			return nil, err
		}
		dec := hornsat.DecideSizeIncrease(q)
		if dec.Increase == (c.Cmp(one) > 0) {
			agreement++
		}
		if !dec.Increase {
			continue
		}
		increases++
		m := int64(len(dec.Chased.Body))
		if m >= 2 && c.Cmp(big.NewRat(m, m-1)) < 0 {
			return nil, fmt.Errorf("E12: C = %v below m/(m-1) for %s", c, q)
		}
		// Realize a strict increase: M > rep(Q) makes the witness output
		// exceed every input relation.
		M := q.Rep() + 1
		db, err := construct.ProductWitness(ch, col, M)
		if err != nil {
			return nil, err
		}
		if err := db.CheckFDs(q); err != nil {
			return nil, err
		}
		out, _, err := eval.JoinProject(q, db)
		if err != nil {
			return nil, err
		}
		rmax, err := db.RMax(q)
		if err != nil {
			return nil, err
		}
		if out.Size() > rmax {
			witnesses++
		}
	}
	rep.Rows = append(rep.Rows, boolRow(
		fmt.Sprintf("%d random compound-FD queries", trials),
		"Horn-SAT decision == (C > 1)",
		fmt.Sprintf("%d/%d agree", agreement, trials),
		agreement == trials,
	))
	rep.Rows = append(rep.Rows, boolRow(
		fmt.Sprintf("%d queries with C > 1", increases),
		"witness database with |Q(D)| > rmax",
		fmt.Sprintf("%d/%d realized", witnesses, increases),
		witnesses == increases,
	))
	return rep, nil
}

// E13InformationDiagram reproduces Figure 2: the three-variable information
// diagram identities hold for empirical distributions, including a negative
// triple mutual information (the XOR distribution).
func E13InformationDiagram() (*Report, error) {
	rep := &Report{ID: "E13", Artifact: "Figure 2", Title: "3-variable information diagrams"}
	// XOR distribution: Z = X ⊕ Y with X, Y independent fair bits. The
	// triple mutual information I(X;Y;Z) is −1 bit.
	r := relation.New("XOR", "x", "y", "z")
	for x := 0; x < 2; x++ {
		for y := 0; y < 2; y++ {
			r.MustInsert(
				relation.V(fmt.Sprint(x)),
				relation.V(fmt.Sprint(y)),
				relation.V(fmt.Sprint(x^y)),
			)
		}
	}
	v, err := entropy.Empirical(r)
	if err != nil {
		return nil, err
	}
	triple := v.Mutual(7, 0)
	rep.Rows = append(rep.Rows, boolRow(
		"XOR: I(X;Y;Z)",
		"-1 bit (atoms may be negative)",
		fmt.Sprintf("%.3f", triple),
		math.Abs(triple-(-1)) < 1e-9,
	))
	idOK := math.Abs(v.MutualPair(1, 2)-(v.Mutual(7, 0)+v.Mutual(3, 4))) < 1e-9
	rep.Rows = append(rep.Rows, boolRow(
		"XOR: I(X;Y) = I(X;Y;Z) + I(X;Y|Z)",
		"identity holds",
		fmt.Sprintf("%.3f = %.3f + %.3f", v.MutualPair(1, 2), v.Mutual(7, 0), v.Mutual(3, 4)),
		idOK,
	))
	hzSum := v.Mutual(7, 0) + v.Mutual(5, 2) + v.Mutual(6, 1) + v.Cond(4, 3)
	rep.Rows = append(rep.Rows, boolRow(
		"XOR: H(Z) via diagram regions",
		"H(Z) = I(X;Y;Z)+I(X;Z|Y)+I(Y;Z|X)+H(Z|XY)",
		fmt.Sprintf("%.3f vs %.3f", v.H[4], hzSum),
		math.Abs(v.H[4]-hzSum) < 1e-9,
	))
	return rep, nil
}

// E14ShamirGap reproduces Proposition 6.11 and Figure 3: the Shamir
// construction's exponent is k/2 while the color number stays below 2
// (paper's bound; exactly 2k/(k+2) by the tightened counting argument), and
// the group relation's information diagram matches Figure 3.
func E14ShamirGap() (*Report, error) {
	rep := &Report{ID: "E14", Artifact: "Proposition 6.11 + Figure 3", Title: "super-constant gap via secret sharing"}
	for _, N := range []int64{5, 7} {
		const k = 4
		q, db, err := construct.Shamir(k, N)
		if err != nil {
			return nil, err
		}
		if err := db.CheckFDs(q); err != nil {
			return nil, err
		}
		rmax, err := db.RMax(q)
		if err != nil {
			return nil, err
		}
		out, _, err := eval.JoinProject(q, db)
		if err != nil {
			return nil, err
		}
		exponent := math.Log(float64(out.Size())) / math.Log(float64(rmax))
		rep.Rows = append(rep.Rows, boolRow(
			fmt.Sprintf("k=4 N=%d size increase", N),
			fmt.Sprintf("|Q(D)| = rmax^%d = %d", k/2, construct.ShamirExpectedOutput(k, N)),
			fmt.Sprintf("|Q(D)| = %d = rmax^%.3f", out.Size(), exponent),
			int64(out.Size()) == construct.ShamirExpectedOutput(k, N),
		))
		c, _, _, err := entropy.ColorNumber(q)
		if err != nil {
			return nil, err
		}
		// Paper: C ≤ 2 ("= 2" stated); the tightened count (each color
		// covers k/2+1 group variables) gives exactly 2k/(k+2) = 4/3.
		rep.Rows = append(rep.Rows, boolRow(
			fmt.Sprintf("k=4 N=%d C(chase(Q))", N),
			"<= 2 (paper); tightened: 4/3",
			c.RatString(),
			c.Cmp(big.NewRat(2, 1)) <= 0 && c.Cmp(big.NewRat(4, 3)) == 0,
		))
		// Figure 3: information diagram of one group X_{1,1}..X_{4,1}.
		v, err := entropy.Empirical(db.Relation("R1"))
		if err != nil {
			return nil, err
		}
		logN := math.Log2(float64(N))
		atoms := v.Atoms()
		fourWay := atoms[15] / logN
		tripleOK := true
		for _, s := range []entropy.Set{7, 11, 13, 14} {
			if math.Abs(atoms[s]/logN-1) > 1e-6 {
				tripleOK = false
			}
		}
		pairSingleOK := true
		for s := entropy.Set(1); s < 15; s++ {
			if s.Size() <= 2 && math.Abs(atoms[s]) > 1e-6 {
				pairSingleOK = false
			}
		}
		rep.Rows = append(rep.Rows, boolRow(
			fmt.Sprintf("k=4 N=%d Figure 3 atoms (units of log N)", N),
			"4-way = -2, triples = +1, pairs/singletons = 0",
			fmt.Sprintf("4-way = %.3f, triples ok: %v, rest ok: %v", fourWay, tripleOK, pairSingleOK),
			math.Abs(fourWay-(-2)) < 1e-6 && tripleOK && pairSingleOK,
		))
	}
	// Analytic gap table: exponent k/2 grows while C < 2 for all k.
	for _, k := range []int{4, 6, 8, 10} {
		cBound := big.NewRat(int64(2*k), int64(k+2))
		rep.Rows = append(rep.Rows, boolRow(
			fmt.Sprintf("analytic k=%d", k),
			"exponent k/2 vs C <= 2",
			fmt.Sprintf("exponent %d vs C = %s", k/2, cBound.RatString()),
			k/2 >= 2 && cBound.Cmp(big.NewRat(2, 1)) < 0,
		))
	}
	return rep, nil
}

// E15EntropyLP compares Propositions 6.9 and 6.10 on random queries:
// without dependencies s(Q) = C(Q) = ρ*(head); with dependencies
// C(chase(Q)) ≤ s(Q).
func E15EntropyLP() (*Report, error) {
	rep := &Report{ID: "E15", Artifact: "Propositions 6.9 and 6.10", Title: "entropy LP bounds"}
	rng := rand.New(rand.NewSource(404))
	equalNoFDs, trialsNoFDs := 0, 25
	for trial := 0; trial < trialsNoFDs; trial++ {
		q := datagen.RandomQuery(rng, datagen.QueryParams{
			MaxVars: 5, MaxAtoms: 4, MaxArity: 3, HeadFraction: 0.6,
		})
		s, err := entropy.SizeBoundExponent(q)
		if err != nil {
			return nil, err
		}
		c, _, err := coloring.NumberNoFDs(q)
		if err != nil {
			return nil, err
		}
		rho, err := cover.FractionalEdgeCoverHead(q)
		if err != nil {
			return nil, err
		}
		if s.Cmp(c) == 0 && c.Cmp(rho.Rho) == 0 {
			equalNoFDs++
		}
	}
	rep.Rows = append(rep.Rows, boolRow(
		fmt.Sprintf("%d random FD-free queries", trialsNoFDs),
		"s(Q) = C(Q) = rho*(head)",
		fmt.Sprintf("%d/%d equal", equalNoFDs, trialsNoFDs),
		equalNoFDs == trialsNoFDs,
	))
	dominated, trialsFDs := 0, 25
	for trial := 0; trial < trialsFDs; trial++ {
		q := datagen.RandomQuery(rng, datagen.QueryParams{
			MaxVars: 4, MaxAtoms: 3, MaxArity: 3, HeadFraction: 0.6,
			SimpleFDProb: 0.3, CompoundFDProb: 0.3,
		})
		s, err := entropy.SizeBoundExponent(q)
		if err != nil {
			return nil, err
		}
		c, _, _, err := entropy.ColorNumber(q)
		if err != nil {
			return nil, err
		}
		if c.Cmp(s) <= 0 {
			dominated++
		}
	}
	rep.Rows = append(rep.Rows, boolRow(
		fmt.Sprintf("%d random FD queries", trialsFDs),
		"C(chase(Q)) <= s(Q)",
		fmt.Sprintf("%d/%d dominated", dominated, trialsFDs),
		dominated == trialsFDs,
	))
	return rep, nil
}

// E19KnittedComplexity measures Definition 8.1 on characteristic databases:
// product distributions sit at 1 (no negative interaction), the XOR and
// Shamir databases far above it.
func E19KnittedComplexity() (*Report, error) {
	rep := &Report{ID: "E19", Artifact: "Definition 8.1", Title: "knitted complexity of example databases"}

	product := relation.New("P", "x", "y")
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			product.MustInsert(relation.V(fmt.Sprint(i)), relation.V(fmt.Sprint(j)))
		}
	}
	vp, err := entropy.Empirical(product)
	if err != nil {
		return nil, err
	}
	kp, err := vp.KnittedComplexity()
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, boolRow("independent product", "1 (all atoms >= 0)",
		fmt.Sprintf("%.3f", kp), math.Abs(kp-1) < 1e-9))

	xor := relation.New("XOR", "x", "y", "z")
	for x := 0; x < 2; x++ {
		for y := 0; y < 2; y++ {
			xor.MustInsert(relation.V(fmt.Sprint(x)), relation.V(fmt.Sprint(y)), relation.V(fmt.Sprint(x^y)))
		}
	}
	vx, err := entropy.Empirical(xor)
	if err != nil {
		return nil, err
	}
	kx, err := vx.KnittedComplexity()
	if err != nil {
		return nil, err
	}
	// Atoms: pairwise-conditional +1 each (3 regions), triple -1; sum = 2,
	// |sum| = 4 -> knitted complexity 2.
	rep.Rows = append(rep.Rows, boolRow("XOR distribution", "2",
		fmt.Sprintf("%.3f", kx), math.Abs(kx-2) < 1e-9))

	_, db, err := construct.Shamir(4, 5)
	if err != nil {
		return nil, err
	}
	vs, err := entropy.Empirical(db.Relation("R1"))
	if err != nil {
		return nil, err
	}
	ks, err := vs.KnittedComplexity()
	if err != nil {
		return nil, err
	}
	// Atoms in log N units: four triples at +1, four-way at -2: sum 2,
	// absolute sum 6 -> 3.
	rep.Rows = append(rep.Rows, boolRow("Shamir group relation (k=4)", "3",
		fmt.Sprintf("%.3f", ks), math.Abs(ks-3) < 1e-6))
	return rep, nil
}
