package experiments

import (
	"fmt"
	"math/big"
	"math/rand"
	"time"

	"cqbound/internal/coloring"
	"cqbound/internal/cq"
	"cqbound/internal/datagen"
	"cqbound/internal/entropy"
	"cqbound/internal/hornsat"
	"cqbound/internal/sat"
)

// E16HornSATDecision reproduces Theorem 7.2: the dual-Horn decision agrees
// with the entropy LP and scales to query sizes where the LP is hopeless.
func E16HornSATDecision() (*Report, error) {
	rep := &Report{ID: "E16", Artifact: "Theorem 7.2", Title: "polynomial decision of C(chase(Q)) > 1"}
	rng := rand.New(rand.NewSource(505))
	one := big.NewRat(1, 1)
	agree, trials := 0, 50
	for trial := 0; trial < trials; trial++ {
		q := datagen.RandomQuery(rng, datagen.QueryParams{
			MaxVars: 5, MaxAtoms: 4, MaxArity: 3, HeadFraction: 0.5,
			SimpleFDProb: 0.25, CompoundFDProb: 0.3, RepeatRelationProb: 0.3,
		})
		c, _, _, err := entropy.ColorNumber(q)
		if err != nil {
			return nil, err
		}
		if hornsat.DecideSizeIncrease(q).Increase == (c.Cmp(one) > 0) {
			agree++
		}
	}
	rep.Rows = append(rep.Rows, boolRow(
		fmt.Sprintf("%d random queries vs entropy LP", trials),
		"decisions agree",
		fmt.Sprintf("%d/%d", agree, trials),
		agree == trials,
	))
	// Scaling: the decision stays fast as queries grow far beyond LP reach.
	for _, atoms := range []int{20, 80, 320} {
		q := datagen.RandomQuery(rng, datagen.QueryParams{
			MaxVars: atoms, MaxAtoms: atoms, MaxArity: 4, HeadFraction: 0.5,
			SimpleFDProb: 0.1, CompoundFDProb: 0.2,
		})
		start := time.Now()
		hornsat.DecideSizeIncrease(q)
		elapsed := time.Since(start)
		rep.Rows = append(rep.Rows, boolRow(
			fmt.Sprintf("<= %d atoms, <= %d vars", atoms, atoms),
			"polynomial time",
			elapsed.Round(time.Microsecond).String(),
			elapsed < 5*time.Second,
		))
	}
	return rep, nil
}

// E17NPHardnessReduction reproduces Proposition 7.3: the 3-SAT reduction
// round-trips against a direct DPLL decision on random formulas.
func E17NPHardnessReduction() (*Report, error) {
	rep := &Report{ID: "E17", Artifact: "Proposition 7.3", Title: "3-SAT reduction to 2-coloring existence"}
	rng := rand.New(rand.NewSource(606))
	agree, sats, trials := 0, 0, 30
	for trial := 0; trial < trials; trial++ {
		n := 2 + rng.Intn(4)
		m := 2 + rng.Intn(7)
		cnf := sat.CNF{NumVars: n}
		for i := 0; i < m; i++ {
			var cl sat.Clause
			for j := 0; j < 3; j++ {
				v := 1 + rng.Intn(n)
				if rng.Intn(2) == 0 {
					cl = append(cl, sat.Literal(v))
				} else {
					cl = append(cl, sat.Literal(-v))
				}
			}
			cnf.Clauses = append(cnf.Clauses, cl)
		}
		want, _ := sat.Solve(cnf)
		q, err := sat.Reduce3SAT(cnf)
		if err != nil {
			return nil, err
		}
		got := sat.DecideTwoColoring(q)
		if got.Exists == want {
			agree++
		}
		if want {
			sats++
		}
	}
	rep.Rows = append(rep.Rows, boolRow(
		fmt.Sprintf("%d random 3-CNFs (%d satisfiable)", trials, sats),
		"satisfiable iff 2-coloring exists",
		fmt.Sprintf("%d/%d round-trip", agree, trials),
		agree == trials,
	))
	return rep, nil
}

// E18PolyTimeColorNumber reproduces Proposition 7.1: C(chase(Q)) with
// simple keys is computed in polynomial time — the chase, the dependency
// elimination, and one LP — and the measured time grows tamely with the
// query.
func E18PolyTimeColorNumber() (*Report, error) {
	rep := &Report{ID: "E18", Artifact: "Proposition 7.1", Title: "polynomial-time color number with simple keys"}
	rng := rand.New(rand.NewSource(707))
	var prev time.Duration
	for _, size := range []int{4, 8, 16, 32} {
		// A chain query with keys: size atoms, size+1 variables.
		src := "Q("
		for i := 0; i <= size; i++ {
			if i > 0 {
				src += ","
			}
			src += fmt.Sprintf("V%d", i)
		}
		src += ") <- "
		for i := 0; i < size; i++ {
			if i > 0 {
				src += ", "
			}
			src += fmt.Sprintf("R%d(V%d,V%d)", i+1, i, i+1)
		}
		src += "."
		for i := 0; i < size; i += 2 {
			src += fmt.Sprintf("\nkey R%d[1].", i+1)
		}
		q := cq.MustParse(src)
		start := time.Now()
		c, _, _, err := coloring.NumberWithSimpleFDs(q)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		growth := "n/a"
		if prev > 0 {
			growth = fmt.Sprintf("x%.1f", float64(elapsed)/float64(prev))
		}
		prev = elapsed
		rep.Rows = append(rep.Rows, boolRow(
			fmt.Sprintf("keyed chain, %d atoms", size),
			"poly time, C computed",
			fmt.Sprintf("C=%s in %s (%s)", c.RatString(), elapsed.Round(time.Microsecond), growth),
			elapsed < 10*time.Second,
		))
	}
	_ = rng
	return rep, nil
}
