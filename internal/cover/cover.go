// Package cover computes (fractional) edge covers of query hypergraphs.
// Definition 3.5 defines the minimal fractional edge cover number ρ*(Q); by
// LP duality (Section 3.1) the color number of a query without functional
// dependencies equals the minimal fractional edge cover of the hypergraph
// restricted to the head variables. The AGM bound (Proposition 4.3, after
// Grohe–Marx and Atserias–Grohe–Marx) states |Q(D)| ≤ rmax(D)^ρ*(Q) for
// total join queries.
package cover

import (
	"fmt"
	"math/big"

	"cqbound/internal/cq"
	"cqbound/internal/lp"
)

// Result describes a fractional edge cover.
type Result struct {
	// Rho is the cover value Σ y_j.
	Rho *big.Rat
	// Weights has one entry per hyperedge, aligned with the input edges.
	Weights []*big.Rat
}

// Fractional solves the fractional edge cover LP of Definition 3.5 on an
// arbitrary hypergraph: minimize Σ y_e subject to Σ_{e ∋ v} y_e ≥ 1 for every
// vertex v, y ≥ 0. It returns an error when some vertex lies in no edge (the
// LP is then infeasible).
func Fractional(h cq.Hypergraph) (*Result, error) {
	p := lp.NewProblem(lp.Minimize)
	ys := make([]int, len(h.Edges))
	for j := range h.Edges {
		ys[j] = p.AddVariable(fmt.Sprintf("y%d", j), lp.NonNegative)
		p.SetObjective(ys[j], lp.RI(1))
	}
	member := make(map[cq.Variable][]int)
	for j, e := range h.Edges {
		for _, v := range e {
			member[v] = append(member[v], j)
		}
	}
	for _, v := range h.Vertices {
		edges := member[v]
		if len(edges) == 0 {
			return nil, fmt.Errorf("cover: vertex %s lies in no hyperedge", v)
		}
		coeffs := make(map[int]*big.Rat, len(edges))
		for _, j := range edges {
			coeffs[ys[j]] = lp.RI(1)
		}
		p.AddConstraint(coeffs, lp.GE, lp.RI(1))
	}
	s := p.SolveExact()
	if s.Status != lp.Optimal {
		return nil, fmt.Errorf("cover: unexpected LP status %v", s.Status)
	}
	weights := make([]*big.Rat, len(h.Edges))
	for j := range h.Edges {
		weights[j] = s.X[ys[j]]
	}
	return &Result{Rho: s.Value, Weights: weights}, nil
}

// FractionalEdgeCover returns ρ*(Q) of Definition 3.5: the fractional edge
// cover number of the query's full hypergraph (all variables must be
// covered).
func FractionalEdgeCover(q *cq.Query) (*Result, error) {
	return Fractional(q.Hypergraph())
}

// FractionalEdgeCoverHead returns the fractional edge cover number of the
// hypergraph obtained by removing non-head variables from all atoms
// (Section 3.1). For queries without functional dependencies this value
// equals the color number C(Q) by LP duality.
func FractionalEdgeCoverHead(q *cq.Query) (*Result, error) {
	return Fractional(q.HeadRestrictedHypergraph())
}

// Integral computes a minimum integral edge cover of the hypergraph by
// exhaustive search over edge subsets (suitable for the small queries this
// library targets; m ≤ 20). It returns the number of edges used and the
// selected edge indices, or an error when some vertex is uncoverable.
func Integral(h cq.Hypergraph) (int, []int, error) {
	m := len(h.Edges)
	if m > 20 {
		return 0, nil, fmt.Errorf("cover: integral cover limited to 20 edges, got %d", m)
	}
	need := make(map[cq.Variable]bool, len(h.Vertices))
	for _, v := range h.Vertices {
		need[v] = true
	}
	member := make(map[cq.Variable]bool)
	for _, e := range h.Edges {
		for _, v := range e {
			member[v] = true
		}
	}
	for v := range need {
		if !member[v] {
			return 0, nil, fmt.Errorf("cover: vertex %s lies in no hyperedge", v)
		}
	}
	bestSize := m + 1
	var best []int
	for mask := 0; mask < 1<<m; mask++ {
		size := popcount(mask)
		if size >= bestSize {
			continue
		}
		covered := make(map[cq.Variable]bool)
		for j := 0; j < m; j++ {
			if mask&(1<<j) == 0 {
				continue
			}
			for _, v := range h.Edges[j] {
				covered[v] = true
			}
		}
		ok := true
		for v := range need {
			if !covered[v] {
				ok = false
				break
			}
		}
		if ok {
			bestSize = size
			best = nil
			for j := 0; j < m; j++ {
				if mask&(1<<j) != 0 {
					best = append(best, j)
				}
			}
		}
	}
	if bestSize > m {
		return 0, nil, fmt.Errorf("cover: no integral cover found")
	}
	return bestSize, best, nil
}

func popcount(x int) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
