package cover

import (
	"math/big"
	"math/rand"
	"testing"

	"cqbound/internal/coloring"
	"cqbound/internal/cq"
	"cqbound/internal/datagen"
)

func TestTriangleRho(t *testing.T) {
	q := cq.MustParse("S(X,Y,Z) <- R(X,Y), R(X,Z), R(Y,Z).")
	r, err := FractionalEdgeCover(q)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rho.Cmp(big.NewRat(3, 2)) != 0 {
		t.Fatalf("rho* = %v, want 3/2", r.Rho)
	}
	// The symmetric optimum puts weight 1/2 on each edge; any optimum's
	// weights must sum to 3/2.
	sum := new(big.Rat)
	for _, w := range r.Weights {
		sum.Add(sum, w)
	}
	if sum.Cmp(r.Rho) != 0 {
		t.Fatalf("weights sum %v != rho %v", sum, r.Rho)
	}
}

func TestCliqueK4Rho(t *testing.T) {
	// K4 as a join of all 6 edges: rho* = 2.
	q := cq.MustParse("Q(A,B,C,D) <- R(A,B), R(A,C), R(A,D), R(B,C), R(B,D), R(C,D).")
	r, err := FractionalEdgeCover(q)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rho.Cmp(big.NewRat(2, 1)) != 0 {
		t.Fatalf("rho* = %v, want 2", r.Rho)
	}
}

func TestPathRho(t *testing.T) {
	// Path of 2 edges covering 3 vertices: rho* = 2? Edges {X,Y},{Y,Z}:
	// X needs e1, Z needs e2, so rho* = 2.
	q := cq.MustParse("Q(X,Y,Z) <- R(X,Y), S(Y,Z).")
	r, err := FractionalEdgeCover(q)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rho.Cmp(big.NewRat(2, 1)) != 0 {
		t.Fatalf("rho* = %v, want 2", r.Rho)
	}
}

func TestHeadRestrictedEqualsColorNumber(t *testing.T) {
	// Section 3.1: for FD-free queries, C(Q) equals the fractional edge
	// cover number of the head-restricted hypergraph.
	queries := []string{
		"S(X,Y,Z) <- R(X,Y), R(X,Z), R(Y,Z).",
		"Q(X,Z) <- R(X,Y), S(Y,Z).",
		"Q(X,Y) <- R(X,Y), S(Y,Z).",
		"Q(A,B,C,D) <- R(A,B), R(B,C), R(C,D), R(D,A).",
		"Q(A,C) <- R(A,B), R(B,C), R(C,D), R(D,A).",
	}
	for _, src := range queries {
		q := cq.MustParse(src)
		cval, _, err := coloring.NumberNoFDs(q)
		if err != nil {
			t.Fatal(err)
		}
		r, err := FractionalEdgeCoverHead(q)
		if err != nil {
			t.Fatal(err)
		}
		if cval.Cmp(r.Rho) != 0 {
			t.Errorf("%s: C(Q) = %v but head rho* = %v", src, cval, r.Rho)
		}
	}
}

func TestHeadRestrictedEqualsColorNumberRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		q := datagen.RandomQuery(rng, datagen.QueryParams{
			MaxVars: 6, MaxAtoms: 5, MaxArity: 3, HeadFraction: 0.6,
		})
		cval, _, err := coloring.NumberNoFDs(q)
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, q, err)
		}
		r, err := FractionalEdgeCoverHead(q)
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, q, err)
		}
		if cval.Cmp(r.Rho) != 0 {
			t.Fatalf("trial %d: duality mismatch for %s: C=%v rho=%v", trial, q, cval, r.Rho)
		}
	}
}

func TestIntegralCover(t *testing.T) {
	q := cq.MustParse("S(X,Y,Z) <- R(X,Y), R(X,Z), R(Y,Z).")
	n, edges, err := Integral(q.Hypergraph())
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || len(edges) != 2 {
		t.Fatalf("integral cover = %d %v, want 2 edges", n, edges)
	}
}

func TestIntegralAtLeastFractional(t *testing.T) {
	qs := []string{
		"S(X,Y,Z) <- R(X,Y), R(X,Z), R(Y,Z).",
		"Q(A,B,C,D) <- R(A,B), R(B,C), R(C,D), R(D,A).",
		"Q(X,Y,Z) <- R(X,Y), S(Y,Z).",
	}
	for _, src := range qs {
		q := cq.MustParse(src)
		frac, err := FractionalEdgeCover(q)
		if err != nil {
			t.Fatal(err)
		}
		n, _, err := Integral(q.Hypergraph())
		if err != nil {
			t.Fatal(err)
		}
		if big.NewRat(int64(n), 1).Cmp(frac.Rho) < 0 {
			t.Errorf("%s: integral %d < fractional %v", src, n, frac.Rho)
		}
	}
}

func TestUncoverableVertex(t *testing.T) {
	h := cq.Hypergraph{Vertices: []cq.Variable{"X", "Y"}, Edges: [][]cq.Variable{{"X"}}}
	if _, err := Fractional(h); err == nil {
		t.Fatal("Fractional accepted uncoverable vertex")
	}
	if _, _, err := Integral(h); err == nil {
		t.Fatal("Integral accepted uncoverable vertex")
	}
}
