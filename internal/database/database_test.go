package database

import (
	"testing"

	"cqbound/internal/cq"
	"cqbound/internal/relation"
)

func starRelation(n int) *relation.Relation {
	// Example 2.1: R(A,B) = {<1,1>, <1,2>, ..., <1,n>}.
	r := relation.New("R", "A", "B")
	for i := 1; i <= n; i++ {
		r.Add("c1", label(i))
	}
	return r
}

func label(i int) string {
	return string(rune('a' + i - 1))
}

func TestRMax(t *testing.T) {
	d := New()
	r := relation.New("R", "a")
	r.Add("1")
	r.Add("2")
	s := relation.New("S", "a")
	s.Add("1")
	big := relation.New("T", "a")
	for i := 0; i < 10; i++ {
		big.Add(label(i + 1))
	}
	d.MustAdd(r)
	d.MustAdd(s)
	d.MustAdd(big)

	q := cq.MustParse("Q(X) <- R(X), S(X).")
	got, err := d.RMax(q)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("RMax = %d, want 2 (T is not referenced)", got)
	}
	if d.RMaxAll() != 10 {
		t.Fatalf("RMaxAll = %d", d.RMaxAll())
	}
}

func TestRMaxErrors(t *testing.T) {
	d := New()
	r := relation.New("R", "a", "b")
	d.MustAdd(r)
	if _, err := d.RMax(cq.MustParse("Q(X) <- Missing(X).")); err == nil {
		t.Fatal("RMax accepted missing relation")
	}
	if _, err := d.RMax(cq.MustParse("Q(X) <- R(X).")); err == nil {
		t.Fatal("RMax accepted arity mismatch")
	}
}

func TestDuplicateAdd(t *testing.T) {
	d := New()
	d.MustAdd(relation.New("R", "a"))
	if err := d.Add(relation.New("R", "b")); err == nil {
		t.Fatal("Add accepted duplicate name")
	}
}

func TestGaifmanStar(t *testing.T) {
	// Example 2.1's relation: Gaifman graph is a star, treewidth 1.
	d := New()
	d.MustAdd(starRelation(5))
	g := d.GaifmanGraph()
	if g.N() != 6 { // center c1 plus 5 leaves
		t.Fatalf("N = %d", g.N())
	}
	if g.M() != 5 {
		t.Fatalf("M = %d, want star edges only", g.M())
	}
	center, ok := g.VertexByLabel("c1")
	if !ok || g.Degree(center) != 5 {
		t.Fatal("center missing or wrong degree")
	}
}

func TestGaifmanIgnoresEqualValuesInTuple(t *testing.T) {
	d := New()
	r := relation.New("R", "a", "b")
	r.Add("x", "x")
	d.MustAdd(r)
	g := d.GaifmanGraph()
	if g.N() != 1 || g.M() != 0 {
		t.Fatalf("self-pair created edge: N=%d M=%d", g.N(), g.M())
	}
}

func TestGaifmanCliquePerTuple(t *testing.T) {
	d := New()
	r := relation.New("R", "a", "b", "c")
	r.Add("1", "2", "3")
	d.MustAdd(r)
	g := d.GaifmanGraph()
	if g.M() != 3 {
		t.Fatalf("tuple of arity 3 should induce a triangle, M=%d", g.M())
	}
}

func TestUniverse(t *testing.T) {
	d := New()
	r := relation.New("R", "a", "b")
	r.Add("b", "a")
	d.MustAdd(r)
	u := d.Universe()
	if len(u) != 2 || u[0] != relation.V("a") || u[1] != relation.V("b") {
		t.Fatalf("Universe = %v", u)
	}
}

func TestCheckFDs(t *testing.T) {
	d := New()
	r := relation.New("S", "a", "b")
	r.Add("1", "x")
	r.Add("1", "y") // violates S[1] -> S[2]
	d.MustAdd(r)
	q := cq.MustParse("Q(X,Y) <- S(X,Y).\nkey S[1].")
	if err := d.CheckFDs(q); err == nil {
		t.Fatal("CheckFDs missed a violation")
	}
	d2 := New()
	r2 := relation.New("S", "a", "b")
	r2.Add("1", "x")
	r2.Add("2", "y")
	d2.MustAdd(r2)
	if err := d2.CheckFDs(q); err != nil {
		t.Fatalf("CheckFDs false positive: %v", err)
	}
}

func TestGaifmanOfMultipleRelations(t *testing.T) {
	r := relation.New("R", "a", "b")
	r.Add("1", "2")
	s := relation.New("S", "a", "b")
	s.Add("2", "3")
	g := GaifmanOf(r, s)
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
}
