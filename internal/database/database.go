// Package database groups named relations into a finite structure
// D = (U_D, R1, ..., Rn) as in Section 2, and extracts the measures the
// paper studies: rmax(D) (the largest relation a query reads) and the
// Gaifman graph G(D), whose treewidth defines tw(D).
package database

import (
	"fmt"
	"sort"

	"cqbound/internal/cq"
	"cqbound/internal/graph"
	"cqbound/internal/relation"
)

// Database is a set of uniquely named relations. A database built by New
// is mutable and resolves values through the process-wide dictionary; a
// database published by an Engine commit is an immutable epoch snapshot —
// Epoch reports which — holding frozen relations interned in the engine's
// private dictionary.
type Database struct {
	rels  map[string]*relation.Relation
	order []string

	// dict is the dictionary the stored relations intern in; nil means the
	// process-wide default. epoch is the engine-assigned snapshot number;
	// 0 marks a free-standing (non-epoch) database.
	dict  *relation.Dict
	epoch uint64
}

// New returns an empty database.
func New() *Database {
	return &Database{rels: make(map[string]*relation.Relation)}
}

// NewIn returns an empty database whose relations intern in the given
// dictionary — the constructor the Engine uses for its epoch snapshots.
func NewIn(dict *relation.Dict) *Database {
	d := New()
	d.dict = dict
	return d
}

// Epoch returns the engine-assigned snapshot number, 0 for free-standing
// databases built by New.
func (d *Database) Epoch() uint64 { return d.epoch }

// Next returns a successor snapshot at the given epoch: relations in
// replace override (or, mapped to nil, drop) the current ones by name,
// entries under names the database does not hold yet are appended in
// sorted name order, and everything else is carried over by pointer. The
// receiver is unchanged — pinned readers keep their frozen view.
func (d *Database) Next(epoch uint64, replace map[string]*relation.Relation) *Database {
	out := &Database{
		rels:  make(map[string]*relation.Relation, len(d.rels)+len(replace)),
		dict:  d.dict,
		epoch: epoch,
	}
	for _, name := range d.order {
		nr, ok := replace[name]
		if !ok {
			nr = d.rels[name]
		}
		if nr == nil {
			continue
		}
		out.rels[name] = nr
		out.order = append(out.order, name)
	}
	var added []string
	for name, nr := range replace {
		if _, existing := d.rels[name]; existing || nr == nil {
			continue
		}
		added = append(added, name)
	}
	sort.Strings(added)
	for _, name := range added {
		out.rels[name] = replace[name]
		out.order = append(out.order, name)
	}
	return out
}

// Add registers a relation; names must be unique.
func (d *Database) Add(r *relation.Relation) error {
	if _, ok := d.rels[r.Name]; ok {
		return fmt.Errorf("database: duplicate relation %s", r.Name)
	}
	d.rels[r.Name] = r
	d.order = append(d.order, r.Name)
	return nil
}

// MustAdd is Add but panics on error.
func (d *Database) MustAdd(r *relation.Relation) {
	if err := d.Add(r); err != nil {
		panic(err)
	}
}

// Relation returns the named relation, or nil.
func (d *Database) Relation(name string) *relation.Relation { return d.rels[name] }

// Names returns the relation names in insertion order.
func (d *Database) Names() []string { return append([]string(nil), d.order...) }

// RMax returns rmax(D) with respect to query q: the number of tuples in the
// largest relation among those referenced by q's body (Section 2). It
// returns an error when the body references a missing relation or the arity
// disagrees.
func (d *Database) RMax(q *cq.Query) (int, error) {
	max := 0
	seen := make(map[string]bool)
	for _, a := range q.Body {
		if seen[a.Relation] {
			continue
		}
		seen[a.Relation] = true
		r := d.rels[a.Relation]
		if r == nil {
			return 0, fmt.Errorf("database: query reads missing relation %s", a.Relation)
		}
		if r.Arity() != a.Arity() {
			return 0, fmt.Errorf("database: relation %s has arity %d, query uses %d", a.Relation, r.Arity(), a.Arity())
		}
		if r.Size() > max {
			max = r.Size()
		}
	}
	return max, nil
}

// RMaxAll returns the size of the largest relation in the database.
func (d *Database) RMaxAll() int {
	max := 0
	for _, name := range d.order {
		if s := d.rels[name].Size(); s > max {
			max = s
		}
	}
	return max
}

// Universe returns the set of values appearing in any relation, sorted by
// their interned strings.
func (d *Database) Universe() []relation.Value {
	set := make(map[relation.Value]bool)
	for _, name := range d.order {
		r := d.rels[name]
		for c := 0; c < r.Arity(); c++ {
			for _, v := range r.Column(c) {
				set[v] = true
			}
		}
	}
	out := make([]relation.Value, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	relation.SortByStringIn(d.Dict(), out)
	return out
}

// Dict returns the dictionary that interns every value stored in the
// database's relations. Relations must share one dictionary for joins
// across them to compare IDs meaningfully: free-standing databases share
// the process-wide dictionary, while epoch snapshots carry their owning
// Engine's private one.
func (d *Database) Dict() *relation.Dict {
	if d.dict != nil {
		return d.dict
	}
	return relation.DefaultDict()
}

// CheckFDs verifies that the instance satisfies every functional dependency
// declared on q, returning the first violation found.
func (d *Database) CheckFDs(q *cq.Query) error {
	for _, fd := range q.FDs {
		r := d.rels[fd.Relation]
		if r == nil {
			return fmt.Errorf("database: FD %s on missing relation", fd)
		}
		from := make([]int, len(fd.From))
		for i, p := range fd.From {
			from[i] = p - 1
		}
		if !r.CheckFD(from, fd.To-1) {
			return fmt.Errorf("database: instance violates %s", fd)
		}
	}
	return nil
}

// GaifmanGraph returns G(D): one vertex per universe element, an edge
// between two distinct elements that occur together in some tuple.
func (d *Database) GaifmanGraph() *graph.Graph {
	rels := make([]*relation.Relation, 0, len(d.order))
	for _, name := range d.order {
		rels = append(rels, d.rels[name])
	}
	return GaifmanOf(rels...)
}

// GaifmanOf returns the Gaifman graph of the listed relations, written
// G(⟨R, S⟩) in the paper.
func GaifmanOf(rels ...*relation.Relation) *graph.Graph {
	g := graph.New()
	for _, r := range rels {
		if r == nil {
			continue
		}
		dict := r.Dict()
		r.Each(func(t relation.Tuple) bool {
			for i := range t {
				g.EnsureVertex(dict.String(t[i]))
			}
			for i := 0; i < len(t); i++ {
				for j := i + 1; j < len(t); j++ {
					if t[i] != t[j] {
						g.AddEdgeLabels(dict.String(t[i]), dict.String(t[j]))
					}
				}
			}
			return true
		})
	}
	return g
}
