// Package gf implements arithmetic in prime fields GF(p), univariate
// polynomials over them, and Shamir secret sharing. Proposition 6.11 builds
// its super-constant-gap database from the full family of degree-(k/2−1)
// polynomials over GF(N) — Shamir (k/2, k) secret shares — and this package
// is that substrate.
package gf

import "fmt"

// Field is the prime field GF(P). P must be prime; IsPrime can check.
type Field struct {
	P int64
}

// NewField returns GF(p), validating primality.
func NewField(p int64) (Field, error) {
	if !IsPrime(p) {
		return Field{}, fmt.Errorf("gf: %d is not prime", p)
	}
	return Field{P: p}, nil
}

// IsPrime reports whether n is prime (trial division; fields here are tiny).
func IsPrime(n int64) bool {
	if n < 2 {
		return false
	}
	for d := int64(2); d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// Norm maps x into [0, P).
func (f Field) Norm(x int64) int64 {
	x %= f.P
	if x < 0 {
		x += f.P
	}
	return x
}

// Add returns x + y mod P.
func (f Field) Add(x, y int64) int64 { return f.Norm(f.Norm(x) + f.Norm(y)) }

// Sub returns x − y mod P.
func (f Field) Sub(x, y int64) int64 { return f.Norm(f.Norm(x) - f.Norm(y)) }

// Mul returns x·y mod P.
func (f Field) Mul(x, y int64) int64 { return f.Norm(f.Norm(x) * f.Norm(y)) }

// Pow returns x^e mod P for e ≥ 0.
func (f Field) Pow(x, e int64) int64 {
	if e < 0 {
		panic("gf: negative exponent")
	}
	result := int64(1)
	base := f.Norm(x)
	for e > 0 {
		if e&1 == 1 {
			result = f.Mul(result, base)
		}
		base = f.Mul(base, base)
		e >>= 1
	}
	return result
}

// Inv returns the multiplicative inverse of x (x ≠ 0 mod P).
func (f Field) Inv(x int64) int64 {
	x = f.Norm(x)
	if x == 0 {
		panic("gf: inverse of zero")
	}
	return f.Pow(x, f.P-2) // Fermat
}

// Poly is a polynomial over a field, coefficient i multiplying x^i.
type Poly []int64

// Eval evaluates the polynomial at x by Horner's rule.
func (f Field) Eval(p Poly, x int64) int64 {
	acc := int64(0)
	for i := len(p) - 1; i >= 0; i-- {
		acc = f.Add(f.Mul(acc, x), p[i])
	}
	return acc
}

// Interpolate returns the unique polynomial of degree < len(points) through
// the given (x, y) points (Lagrange interpolation). The x values must be
// distinct.
func (f Field) Interpolate(xs, ys []int64) (Poly, error) {
	n := len(xs)
	if len(ys) != n {
		return nil, fmt.Errorf("gf: %d xs but %d ys", n, len(ys))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if f.Norm(xs[i]) == f.Norm(xs[j]) {
				return nil, fmt.Errorf("gf: repeated x value %d", xs[i])
			}
		}
	}
	result := make(Poly, n)
	for i := 0; i < n; i++ {
		// Lagrange basis polynomial l_i scaled by ys[i].
		basis := Poly{1}
		denom := int64(1)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			// basis *= (x - xs[j])
			next := make(Poly, len(basis)+1)
			for k, c := range basis {
				next[k+1] = f.Add(next[k+1], c)
				next[k] = f.Sub(next[k], f.Mul(c, xs[j]))
			}
			basis = next
			denom = f.Mul(denom, f.Sub(xs[i], xs[j]))
		}
		scale := f.Mul(ys[i], f.Inv(denom))
		for k, c := range basis {
			result[k] = f.Add(result[k], f.Mul(c, scale))
		}
	}
	// Trim leading zeros.
	for len(result) > 1 && result[len(result)-1] == 0 {
		result = result[:len(result)-1]
	}
	return result, nil
}

// AllPolynomials enumerates every polynomial of degree < deg (i.e. with deg
// coefficients, including high zeros) over the field, in lexicographic
// coefficient order — P^deg polynomials. Used by the Proposition 6.11
// construction, which needs the complete family.
func (f Field) AllPolynomials(deg int) []Poly {
	if deg <= 0 {
		return nil
	}
	total := int64(1)
	for i := 0; i < deg; i++ {
		total *= f.P
	}
	out := make([]Poly, 0, total)
	coeffs := make(Poly, deg)
	var rec func(i int)
	rec = func(i int) {
		if i == deg {
			out = append(out, append(Poly(nil), coeffs...))
			return
		}
		for c := int64(0); c < f.P; c++ {
			coeffs[i] = c
			rec(i + 1)
		}
	}
	rec(0)
	return out
}

// ShamirShares returns the k evaluation points (p(x0), ..., p(x_{k-1})) of a
// secret polynomial — a (t, k) Shamir sharing when p has t coefficients.
func (f Field) ShamirShares(p Poly, xs []int64) []int64 {
	out := make([]int64, len(xs))
	for i, x := range xs {
		out[i] = f.Eval(p, x)
	}
	return out
}

// ShamirRecover reconstructs the secret p(at) from t shares (xs[i], ys[i])
// of a polynomial with t coefficients.
func (f Field) ShamirRecover(xs, ys []int64, at int64) (int64, error) {
	p, err := f.Interpolate(xs, ys)
	if err != nil {
		return 0, err
	}
	return f.Eval(p, at), nil
}
