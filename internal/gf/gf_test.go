package gf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIsPrime(t *testing.T) {
	primes := []int64{2, 3, 5, 7, 11, 13, 101}
	for _, p := range primes {
		if !IsPrime(p) {
			t.Errorf("IsPrime(%d) = false", p)
		}
	}
	composites := []int64{-1, 0, 1, 4, 9, 15, 100}
	for _, c := range composites {
		if IsPrime(c) {
			t.Errorf("IsPrime(%d) = true", c)
		}
	}
}

func TestNewFieldRejectsComposite(t *testing.T) {
	if _, err := NewField(6); err == nil {
		t.Fatal("NewField(6) accepted")
	}
}

func TestFieldAxiomsQuick(t *testing.T) {
	f, _ := NewField(101)
	// Additive and multiplicative commutativity/associativity plus
	// distributivity on random triples.
	err := quick.Check(func(a, b, c int64) bool {
		if f.Add(a, b) != f.Add(b, a) || f.Mul(a, b) != f.Mul(b, a) {
			return false
		}
		if f.Add(f.Add(a, b), c) != f.Add(a, f.Add(b, c)) {
			return false
		}
		if f.Mul(f.Mul(a, b), c) != f.Mul(a, f.Mul(b, c)) {
			return false
		}
		return f.Mul(a, f.Add(b, c)) == f.Add(f.Mul(a, b), f.Mul(a, c))
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestInverse(t *testing.T) {
	f, _ := NewField(13)
	for x := int64(1); x < 13; x++ {
		if f.Mul(x, f.Inv(x)) != 1 {
			t.Fatalf("x=%d: x * x^-1 != 1", x)
		}
	}
}

func TestInverseOfZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	f, _ := NewField(7)
	f.Inv(0)
}

func TestPow(t *testing.T) {
	f, _ := NewField(7)
	if f.Pow(3, 0) != 1 || f.Pow(3, 1) != 3 || f.Pow(3, 6) != 1 {
		t.Fatal("Pow wrong (Fermat check failed)")
	}
}

func TestEvalHorner(t *testing.T) {
	f, _ := NewField(11)
	p := Poly{1, 2, 3} // 1 + 2x + 3x²
	if got := f.Eval(p, 2); got != f.Norm(1+4+12) {
		t.Fatalf("Eval = %d", got)
	}
}

func TestInterpolateRoundTrip(t *testing.T) {
	f, _ := NewField(13)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		deg := 1 + rng.Intn(5)
		p := make(Poly, deg)
		for i := range p {
			p[i] = rng.Int63n(13)
		}
		xs := make([]int64, deg)
		ys := make([]int64, deg)
		for i := range xs {
			xs[i] = int64(i)
			ys[i] = f.Eval(p, xs[i])
		}
		q, err := f.Interpolate(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		for x := int64(0); x < 13; x++ {
			if f.Eval(p, x) != f.Eval(q, x) {
				t.Fatalf("trial %d: interpolation differs at %d", trial, x)
			}
		}
	}
}

func TestInterpolateRejectsRepeatedX(t *testing.T) {
	f, _ := NewField(7)
	if _, err := f.Interpolate([]int64{1, 1}, []int64{2, 3}); err == nil {
		t.Fatal("accepted repeated x")
	}
}

func TestAllPolynomials(t *testing.T) {
	f, _ := NewField(3)
	ps := f.AllPolynomials(2)
	if len(ps) != 9 {
		t.Fatalf("|polys| = %d, want 9", len(ps))
	}
	seen := make(map[[2]int64]bool)
	for _, p := range ps {
		k := [2]int64{p[0], p[1]}
		if seen[k] {
			t.Fatalf("duplicate polynomial %v", p)
		}
		seen[k] = true
	}
}

func TestShamirRecover(t *testing.T) {
	f, _ := NewField(11)
	secret := Poly{5, 3} // secret 5, threshold 2
	xs := []int64{1, 2, 3, 4}
	shares := f.ShamirShares(secret, xs)
	// Any 2 shares recover p(0) = 5.
	got, err := f.ShamirRecover([]int64{xs[1], xs[3]}, []int64{shares[1], shares[3]}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Fatalf("recovered %d, want 5", got)
	}
}

// TestShamirProjectionSizes checks the property Proposition 6.11 needs: for
// the full family of degree-(t-1) polynomials evaluated at k points, the
// projection onto any set of s coordinates has size N^min(s,t).
func TestShamirProjectionSizes(t *testing.T) {
	f, _ := NewField(5)
	const tThresh, k = 2, 4
	polys := f.AllPolynomials(tThresh)
	xs := []int64{0, 1, 2, 3}
	rows := make([][]int64, len(polys))
	for i, p := range polys {
		rows[i] = f.ShamirShares(p, xs)
	}
	for mask := 1; mask < 1<<k; mask++ {
		var cols []int
		for j := 0; j < k; j++ {
			if mask&(1<<j) != 0 {
				cols = append(cols, j)
			}
		}
		proj := make(map[string]bool)
		for _, row := range rows {
			key := ""
			for _, c := range cols {
				key += string(rune('a' + row[c]))
			}
			proj[key] = true
		}
		want := 1
		for i := 0; i < len(cols) && i < tThresh; i++ {
			want *= 5
		}
		if len(proj) != want {
			t.Fatalf("projection onto %v has %d rows, want %d", cols, len(proj), want)
		}
	}
}
