package relation

import (
	"fmt"
	"math/rand"
	"testing"
)

func tup(vals ...string) Tuple {
	t := make(Tuple, len(vals))
	for i, v := range vals {
		t[i] = V(v)
	}
	return t
}

func TestInsertDedup(t *testing.T) {
	r := New("R", "a", "b")
	ok, err := r.Insert(tup("1", "2"))
	if err != nil || !ok {
		t.Fatalf("first insert: %v %v", ok, err)
	}
	ok, err = r.Insert(tup("1", "2"))
	if err != nil || ok {
		t.Fatalf("duplicate insert: %v %v", ok, err)
	}
	if r.Size() != 1 {
		t.Fatalf("Size = %d", r.Size())
	}
}

func TestInsertArityMismatch(t *testing.T) {
	r := New("R", "a", "b")
	if _, err := r.Insert(tup("1")); err == nil {
		t.Fatal("accepted wrong arity")
	}
}

func TestTupleKeyInjective(t *testing.T) {
	// ("ab","c") and ("a","bc") must not collide.
	a := tup("ab", "c")
	b := tup("a", "bc")
	if a.Key() == b.Key() {
		t.Fatal("tuple keys collide")
	}
}

func TestProject(t *testing.T) {
	r := New("R", "a", "b")
	r.Add("1", "x")
	r.Add("2", "x")
	p, err := r.Project("b")
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 1 {
		t.Fatalf("project dedup failed: %d tuples", p.Size())
	}
	if _, err := r.Project("zzz"); err == nil {
		t.Fatal("accepted unknown attribute")
	}
}

func TestProjectRepeatedColumn(t *testing.T) {
	r := New("R", "a", "b")
	r.Add("1", "x")
	p, err := r.ProjectIdx(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Arity() != 2 || p.Attrs[0] == p.Attrs[1] {
		t.Fatalf("repeated projection attrs = %v", p.Attrs)
	}
}

func TestSelect(t *testing.T) {
	r := New("R", "a", "b")
	r.Add("1", "x")
	r.Add("2", "y")
	s := r.Select(func(t Tuple) bool { return t[1] == V("x") })
	if s.Size() != 1 || s.Tuples()[0][0] != V("1") {
		t.Fatalf("Select = %v", s)
	}
}

func TestEquiJoin(t *testing.T) {
	r := New("R", "a", "b")
	r.Add("1", "x")
	r.Add("2", "y")
	s := New("S", "c", "d")
	s.Add("x", "10")
	s.Add("x", "11")
	s.Add("z", "12")
	j, err := EquiJoin(r, s, [][2]int{{1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if j.Size() != 2 {
		t.Fatalf("join size = %d, want 2\n%s", j.Size(), j)
	}
	if j.Arity() != 4 {
		t.Fatalf("join arity = %d", j.Arity())
	}
}

func TestEquiJoinSwapSides(t *testing.T) {
	// Result must not depend on which side is hashed.
	r := New("R", "a", "b")
	s := New("S", "c", "d")
	for i := 0; i < 10; i++ {
		r.Add(fmt.Sprint(i), fmt.Sprint(i%3))
	}
	s.Add("0", "u")
	s.Add("1", "v")
	j1, err := EquiJoin(r, s, [][2]int{{1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	// Force the other hashing order by growing s beyond r.
	for i := 0; i < 20; i++ {
		s.Add(fmt.Sprintf("zz%d", i), "w")
	}
	j2, err := EquiJoin(r, s, [][2]int{{1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if j1.Size() != j2.Size() {
		t.Fatalf("join sizes differ: %d vs %d", j1.Size(), j2.Size())
	}
	for _, tu := range j1.Tuples() {
		if !j2.Has(tu) {
			t.Fatalf("tuple %v missing after side swap", tu)
		}
	}
}

func TestNaturalJoin(t *testing.T) {
	r := New("R", "a", "b")
	r.Add("1", "x")
	r.Add("2", "y")
	s := New("S", "b", "c")
	s.Add("x", "10")
	s.Add("y", "11")
	s.Add("y", "12")
	j, err := NaturalJoin(r, s)
	if err != nil {
		t.Fatal(err)
	}
	if j.Size() != 3 || j.Arity() != 3 {
		t.Fatalf("natural join = %s", j)
	}
	if j.AttrIndex("a") != 0 || j.AttrIndex("b") != 1 || j.AttrIndex("c") != 2 {
		t.Fatalf("attrs = %v", j.Attrs)
	}
}

func TestNaturalJoinNoSharedAttrsIsProduct(t *testing.T) {
	r := New("R", "a")
	r.Add("1")
	r.Add("2")
	s := New("S", "b")
	s.Add("x")
	j, err := NaturalJoin(r, s)
	if err != nil {
		t.Fatal(err)
	}
	if j.Size() != 2 || j.Arity() != 2 {
		t.Fatalf("product fallback = %s", j)
	}
}

func TestUnionAndProduct(t *testing.T) {
	r := New("R", "a")
	r.Add("1")
	s := New("S", "a")
	s.Add("1")
	s.Add("2")
	u, err := Union(r, s)
	if err != nil {
		t.Fatal(err)
	}
	if u.Size() != 2 {
		t.Fatalf("union size = %d", u.Size())
	}
	p := Product(r, s)
	if p.Size() != 2 || p.Arity() != 2 {
		t.Fatalf("product = %s", p)
	}
	if _, err := Union(r, p); err == nil {
		t.Fatal("union accepted arity mismatch")
	}
}

func TestCheckFDAndKey(t *testing.T) {
	r := New("R", "a", "b", "c")
	r.Add("1", "x", "p")
	r.Add("2", "x", "q")
	r.Add("1", "x", "p")
	if !r.CheckFD([]int{0}, 1) {
		t.Fatal("FD a->b should hold")
	}
	if r.CheckFD([]int{1}, 0) {
		t.Fatal("FD b->a should fail (x maps to 1 and 2)")
	}
	if !r.CheckKey([]int{0}) {
		t.Fatal("a should be a key")
	}
	if r.CheckKey([]int{1}) {
		t.Fatal("b should not be a key")
	}
	if !r.CheckFD([]int{1, 2}, 0) {
		t.Fatal("compound FD b,c->a should hold")
	}
}

func TestValuesSorted(t *testing.T) {
	r := New("R", "a", "b")
	r.Add("b", "a")
	r.Add("c", "a")
	vals := r.Values()
	if len(vals) != 3 || vals[0] != V("a") || vals[1] != V("b") || vals[2] != V("c") {
		t.Fatalf("Values = %v", vals)
	}
}

func TestEqual(t *testing.T) {
	r := New("R", "a")
	r.Add("1")
	s := New("S", "zz")
	s.Add("1")
	if !Equal(r, s) {
		t.Fatal("Equal ignores names and should match")
	}
	s.Add("2")
	if Equal(r, s) {
		t.Fatal("Equal should detect size difference")
	}
}

func TestRename(t *testing.T) {
	r := New("R", "a", "b")
	r.Add("1", "2")
	s, err := r.Rename("S", "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "S" || s.AttrIndex("x") != 0 {
		t.Fatalf("rename = %s", s)
	}
	if _, err := r.Rename("S", "only_one"); err == nil {
		t.Fatal("rename accepted wrong attr count")
	}
}

// TestJoinCommutes checks |R ⋈ S| = |S ⋈ R| on random instances.
func TestJoinCommutes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		r := New("R", "a", "b")
		s := New("S", "b", "c")
		for i := 0; i < rng.Intn(30); i++ {
			r.Add(fmt.Sprint(rng.Intn(5)), fmt.Sprint(rng.Intn(5)))
		}
		for i := 0; i < rng.Intn(30); i++ {
			s.Add(fmt.Sprint(rng.Intn(5)), fmt.Sprint(rng.Intn(5)))
		}
		j1, err := NaturalJoin(r, s)
		if err != nil {
			t.Fatal(err)
		}
		j2, err := NaturalJoin(s, r)
		if err != nil {
			t.Fatal(err)
		}
		if j1.Size() != j2.Size() {
			t.Fatalf("trial %d: |R⋈S| = %d but |S⋈R| = %d", trial, j1.Size(), j2.Size())
		}
	}
}

func TestProductSizeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		r := New("R", "a")
		s := New("S", "b")
		for i := 0; i < rng.Intn(10); i++ {
			r.Add(fmt.Sprint(i))
		}
		for i := 0; i < rng.Intn(10); i++ {
			s.Add(fmt.Sprint(i))
		}
		if got := Product(r, s).Size(); got != r.Size()*s.Size() {
			t.Fatalf("|R×S| = %d, want %d", got, r.Size()*s.Size())
		}
	}
}

func TestDuplicateAttrPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted duplicate attribute names")
		}
	}()
	New("R", "a", "a")
}

func TestSliceView(t *testing.T) {
	r := New("R", "a", "b")
	for i := 0; i < 10; i++ {
		r.Add(fmt.Sprintf("x%d", i), fmt.Sprintf("y%d", i))
	}
	s, err := r.Slice("blk", 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 4 {
		t.Fatalf("slice size %d, want 4", s.Size())
	}
	for i := 0; i < 4; i++ {
		if s.At(i, 0) != r.At(i+3, 0) || s.At(i, 1) != r.At(i+3, 1) {
			t.Fatalf("slice row %d differs from base row %d", i, i+3)
		}
	}
	// The view is copy-on-write: inserting into it must not touch the base.
	s.Add("new", "row")
	if r.Size() != 10 || !r.Has(Tuple{V("x3"), V("y3")}) {
		t.Fatal("insert into slice view mutated the base relation")
	}
	if s.Size() != 5 || !s.Has(Tuple{V("new"), V("row")}) {
		t.Fatal("insert into slice view lost the new row")
	}
	// Out-of-range bounds error.
	if _, err := r.Slice("bad", -1, 3); err == nil {
		t.Fatal("negative lo accepted")
	}
	if _, err := r.Slice("bad", 4, 11); err == nil {
		t.Fatal("hi past size accepted")
	}
	if _, err := r.Slice("bad", 7, 3); err == nil {
		t.Fatal("hi < lo accepted")
	}
	// Empty slice is a valid empty relation.
	e, err := r.Slice("empty", 5, 5)
	if err != nil || e.Size() != 0 {
		t.Fatalf("empty slice: %v, %d rows", err, e.Size())
	}
}

func TestSliceCoversBaseDisjointly(t *testing.T) {
	r := New("R", "a", "b")
	for i := 0; i < 57; i++ {
		r.Add(fmt.Sprintf("x%d", i), fmt.Sprintf("y%d", i%7))
	}
	var parts []*Relation
	for lo := 0; lo < r.Size(); lo += 13 {
		hi := lo + 13
		if hi > r.Size() {
			hi = r.Size()
		}
		s, err := r.Slice("blk", lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, s)
	}
	whole, err := Concat("whole", r.Attrs, parts...)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(whole, r) {
		t.Fatal("concatenated slices differ from the base relation")
	}
}

func TestNaturalJoinSchema(t *testing.T) {
	attrs, keep := NaturalJoinSchema([]string{"a", "b"}, []string{"b", "c"}, []int{0})
	wantAttrs := []string{"a", "b", "c"}
	wantKeep := []int{0, 1, 3}
	if fmt.Sprint(attrs) != fmt.Sprint(wantAttrs) || fmt.Sprint(keep) != fmt.Sprint(wantKeep) {
		t.Fatalf("schema = %v %v, want %v %v", attrs, keep, wantAttrs, wantKeep)
	}
	// All of s's columns joined: only r's survive.
	attrs, keep = NaturalJoinSchema([]string{"a", "b"}, []string{"a", "b"}, []int{0, 1})
	if len(attrs) != 2 || len(keep) != 2 {
		t.Fatalf("full-overlap schema = %v %v", attrs, keep)
	}
}
