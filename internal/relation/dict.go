package relation

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"
	"sync"
)

// Dict is a bidirectional string ↔ ID dictionary: the interning layer that
// turns every field value into a fixed-width Value (a uint32). All relational
// operators — dedup, joins, semijoins, tries — compare and hash plain
// integers; the original strings are needed only at the parser/printer
// boundary.
//
// IDs must be comparable across relations for joins to make sense, including
// joins of relations that were built standalone and never registered in the
// same Database. The package therefore keeps one process-wide default
// dictionary; database.Database exposes it via its Dict method. A Dict grows
// monotonically (interned strings are never released), which matches the
// append-only relations it serves.
//
// A Dict is safe for concurrent use.
//
// The string table is needed only at the parse/print boundary — every
// operator compares bare IDs — so under memory pressure it can be parked
// on disk (Park) and is reloaded transparently by the next Intern, Lookup
// or String call. The Engine's spill governor uses this as its last-resort
// victim.
type Dict struct {
	mu   sync.RWMutex
	strs []string
	ids  map[string]Value

	// parkPath is the file holding the serialized table while strs/ids are
	// released; "" when the table is resident. parkedLen remembers the
	// entry count so Len answers without a reload.
	parkPath  string
	parkedLen int
}

// Park serializes the dictionary's string table to path and releases the
// in-memory tables (both directions: the string slice and the id map),
// returning an estimate of the bytes freed. The next Intern, Lookup or
// String call reloads the table transparently; Len answers while parked.
// IDs are stable across park/unpark — they are positions in the serialized
// order — so every stored relation remains valid. Parking an already
// parked or empty dictionary is a no-op.
func (d *Dict) Park(path string) (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.parkPath != "" || len(d.strs) == 0 {
		return 0, nil
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return 0, err
	}
	// Stream through a buffered writer: parking fires under memory
	// pressure, so serialization must not build a second copy of the
	// table in memory.
	w := bufio.NewWriterSize(f, 1<<16)
	var freed int64
	var lenBuf []byte
	fail := func(err error) (int64, error) {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	lenBuf = binary.AppendUvarint(lenBuf[:0], uint64(len(d.strs)))
	if _, err := w.Write(lenBuf); err != nil {
		return fail(err)
	}
	for _, s := range d.strs {
		lenBuf = binary.AppendUvarint(lenBuf[:0], uint64(len(s)))
		if _, err := w.Write(lenBuf); err != nil {
			return fail(err)
		}
		if _, err := w.WriteString(s); err != nil {
			return fail(err)
		}
		// The string bytes back both the slice entry and the map key; the
		// map adds roughly a header-plus-value word per entry.
		freed += int64(len(s)) + 24
	}
	if err := w.Flush(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	d.parkPath = path
	d.parkedLen = len(d.strs)
	d.strs = nil
	d.ids = nil
	return freed, nil
}

// Unpark forces a parked table back into memory (no-op when resident).
// Engine.Close calls it before removing the spill directory that holds
// the park file.
func (d *Dict) Unpark() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.unparkLocked()
}

// unparkLocked reloads a parked table; the caller holds the write lock.
// A read failure panics: the park file lives in the governor's private
// spill directory and its loss is unrecoverable storage loss.
func (d *Dict) unparkLocked() {
	if d.parkPath == "" {
		return
	}
	raw, err := os.ReadFile(d.parkPath)
	if err != nil {
		panic(fmt.Sprintf("relation: parked dictionary %s unreadable: %v", d.parkPath, err))
	}
	n, off := binary.Uvarint(raw)
	if off <= 0 {
		panic(fmt.Sprintf("relation: parked dictionary %s corrupt", d.parkPath))
	}
	strs := make([]string, 0, n)
	ids := make(map[string]Value, n)
	for len(strs) < int(n) {
		l, w := binary.Uvarint(raw[off:])
		if w <= 0 || off+w+int(l) > len(raw) {
			panic(fmt.Sprintf("relation: parked dictionary %s corrupt", d.parkPath))
		}
		off += w
		s := string(raw[off : off+int(l)])
		off += int(l)
		ids[s] = Value(len(strs))
		strs = append(strs, s)
	}
	d.strs = strs
	d.ids = ids
	d.parkPath = ""
	d.parkedLen = 0
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{ids: make(map[string]Value)}
}

// defaultDict is the process-wide dictionary behind V, Value.String, and
// every relation in the process.
var defaultDict = NewDict()

// DefaultDict returns the process-wide dictionary.
func DefaultDict() *Dict { return defaultDict }

// Intern returns the ID for s, assigning the next free ID on first sight.
func (d *Dict) Intern(s string) Value {
	d.mu.RLock()
	id, ok := d.ids[s]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	// Unconditionally: the table may have been parked between the read
	// lock and here (a no-op when resident).
	d.unparkLocked()
	if id, ok := d.ids[s]; ok {
		return id
	}
	id = Value(len(d.strs))
	d.strs = append(d.strs, s)
	d.ids[s] = id
	return id
}

// Lookup returns the ID for s without interning it. The second result is
// false when s has never been interned — useful for probes: a constant
// missing from the dictionary cannot match any stored tuple.
func (d *Dict) Lookup(s string) (Value, bool) {
	d.mu.RLock()
	if d.parkPath == "" {
		id, ok := d.ids[s]
		d.mu.RUnlock()
		return id, ok
	}
	d.mu.RUnlock()
	d.mu.Lock()
	defer d.mu.Unlock()
	d.unparkLocked()
	id, ok := d.ids[s]
	return id, ok
}

// String resolves an ID back to its string. Unknown IDs render as "#<id>".
func (d *Dict) String(v Value) string {
	d.mu.RLock()
	if d.parkPath == "" {
		s, ok := d.resolveLocked(v)
		d.mu.RUnlock()
		if ok {
			return s
		}
		return fmt.Sprintf("#%d", uint32(v))
	}
	d.mu.RUnlock()
	d.mu.Lock()
	defer d.mu.Unlock()
	d.unparkLocked()
	if s, ok := d.resolveLocked(v); ok {
		return s
	}
	return fmt.Sprintf("#%d", uint32(v))
}

func (d *Dict) resolveLocked(v Value) (string, bool) {
	if int(v) < len(d.strs) {
		return d.strs[v], true
	}
	return "", false
}

// Len reports how many distinct strings have been interned. It answers
// from the parked file's header without reloading the table.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.strs) + d.parkedLen
}

// CompactInto builds a new dictionary holding only the strings whose IDs
// are marked in used (indexed by ID), assigning fresh dense IDs in the old
// insertion order, and returns it with the old→new ID remapping (indexed by
// old ID; entries for unused IDs are meaningless). The receiver is left
// intact — live snapshots that interned against it keep resolving — and is
// unparked first if it was parked, so a compaction never reads through a
// stale park file afterwards. Engine.Compact is the caller: it rewrites the
// live epoch's columns through the remapping and publishes them with the
// new dictionary, so a long-lived server's string table stops growing
// monotonically.
func (d *Dict) CompactInto(used []bool) (*Dict, []Value) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.unparkLocked()
	nd := NewDict()
	remap := make([]Value, len(d.strs))
	for id, s := range d.strs {
		if id < len(used) && used[id] {
			nv := Value(len(nd.strs))
			nd.strs = append(nd.strs, s)
			nd.ids[s] = nv
			remap[id] = nv
		}
	}
	return nd, remap
}

// V interns s in the default dictionary. It is the constructor for Value:
// relation code uses V("x") where it once used Value("x"). V and
// Value.String are a single-engine convenience: every Engine owns a private
// Dict (see Engine.Dict), and values interned here do not resolve there.
func V(s string) Value { return defaultDict.Intern(s) }

// String resolves the value through the default dictionary.
func (v Value) String() string { return defaultDict.String(v) }

// Less orders values by their interned strings, giving the lexicographic
// order the seed's string-valued relations had. ID order is insertion order
// and means nothing to a reader.
func (v Value) Less(w Value) bool { return v.String() < w.String() }
