package relation

import (
	"fmt"
	"sync"
)

// Dict is a bidirectional string ↔ ID dictionary: the interning layer that
// turns every field value into a fixed-width Value (a uint32). All relational
// operators — dedup, joins, semijoins, tries — compare and hash plain
// integers; the original strings are needed only at the parser/printer
// boundary.
//
// IDs must be comparable across relations for joins to make sense, including
// joins of relations that were built standalone and never registered in the
// same Database. The package therefore keeps one process-wide default
// dictionary; database.Database exposes it via its Dict method. A Dict grows
// monotonically (interned strings are never released), which matches the
// append-only relations it serves.
//
// A Dict is safe for concurrent use.
type Dict struct {
	mu   sync.RWMutex
	strs []string
	ids  map[string]Value
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{ids: make(map[string]Value)}
}

// defaultDict is the process-wide dictionary behind V, Value.String, and
// every relation in the process.
var defaultDict = NewDict()

// DefaultDict returns the process-wide dictionary.
func DefaultDict() *Dict { return defaultDict }

// Intern returns the ID for s, assigning the next free ID on first sight.
func (d *Dict) Intern(s string) Value {
	d.mu.RLock()
	id, ok := d.ids[s]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.ids[s]; ok {
		return id
	}
	id = Value(len(d.strs))
	d.strs = append(d.strs, s)
	d.ids[s] = id
	return id
}

// Lookup returns the ID for s without interning it. The second result is
// false when s has never been interned — useful for probes: a constant
// missing from the dictionary cannot match any stored tuple.
func (d *Dict) Lookup(s string) (Value, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.ids[s]
	return id, ok
}

// String resolves an ID back to its string. Unknown IDs render as "#<id>".
func (d *Dict) String(v Value) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(v) < len(d.strs) {
		return d.strs[v]
	}
	return fmt.Sprintf("#%d", uint32(v))
}

// Len reports how many distinct strings have been interned.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.strs)
}

// V interns s in the default dictionary. It is the constructor for Value:
// relation code uses V("x") where it once used Value("x").
func V(s string) Value { return defaultDict.Intern(s) }

// String resolves the value through the default dictionary.
func (v Value) String() string { return defaultDict.String(v) }

// Less orders values by their interned strings, giving the lexicographic
// order the seed's string-valued relations had. ID order is insertion order
// and means nothing to a reader.
func (v Value) Less(w Value) bool { return v.String() < w.String() }
