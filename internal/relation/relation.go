package relation

// Core storage and operators; package documentation lives in doc.go.

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"

	"cqbound/internal/spill"
)

// Value is a single field value: an ID interned in the package dictionary.
// Build one with V("text"); recover the text with Value.String.
type Value uint32

// Tuple is an ordered list of values.
type Tuple []Value

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Strings resolves every value of the tuple through the default dictionary.
func (t Tuple) Strings() []string {
	return t.StringsIn(defaultDict)
}

// StringsIn resolves every value of the tuple through the given dictionary
// (nil means the default) — the form used for relations owned by an Engine,
// whose values are interned in a per-engine Dict.
func (t Tuple) StringsIn(d *Dict) []string {
	if d == nil {
		d = defaultDict
	}
	out := make([]string, len(t))
	for i, v := range t {
		out[i] = d.String(v)
	}
	return out
}

// Key returns an injective encoding of the tuple, usable as a map key: the
// fixed-width little-endian packing of its IDs.
func (t Tuple) Key() string {
	return string(appendKey(make([]byte, 0, 4*len(t)), t...))
}

// appendKey appends the 4-byte packing of each value to buf.
func appendKey(buf []byte, vals ...Value) []byte {
	for _, v := range vals {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	return buf
}

// ColumnBuffer is the storage seam between a relation and its column data:
// the per-attribute columns are either plain resident []Value slices (the
// default — every relation built by New) or, for a relation governed by a
// spill.Governor, file-backed segments that the governor may park on disk
// between uses. Cols returns resident columns, reloading them if parked;
// Pin additionally holds them resident until Unpin (operators pin their
// inputs for their duration); Release detaches from any governor, reverting
// the relation to plain resident storage before a mutation.
// Discard drops the spill state without restoring residency — only for
// relations that are garbage (internal/spill.Scope batches one
// evaluation's intermediates through it). *spill.Buffer[Value] is the
// governed implementation.
type ColumnBuffer interface {
	Cols() [][]Value
	Pin() [][]Value
	Unpin()
	Bytes() int64
	Release()
	Discard()
}

// Relation is a named relation with set semantics and columnar storage.
type Relation struct {
	Name  string
	Attrs []string

	n    int       // number of tuples
	cols [][]Value // one column per attribute, each of length n

	// buf, when non-nil, holds the column storage instead of cols: the
	// relation was handed to a spill governor (Govern) and its columns may
	// be parked on disk between uses. Reads go through data(); the first
	// mutation copies the columns back out and, when this relation owns
	// the buffer (bufOwned — Clone/Rename views borrow their parent's
	// buffer instead, so a view never forces governed columns resident for
	// its lifetime), releases it. The fields are written only before the
	// relation is published to other goroutines (Govern at construction)
	// or under the package's single-writer rule (ensureOwned), so readers
	// need no lock.
	buf      ColumnBuffer
	bufOwned bool

	// seen maps tuple keys to row indices. It is built lazily (operators
	// whose outputs are distinct by construction skip it entirely) and may
	// reference rows past n when storage is shared — readers must bound row
	// indices by n.
	seen map[string]int32

	// shared marks storage borrowed from parent (Clone/Rename): the column
	// backing arrays and seen map belong to another relation and must be
	// copied before the first insert. parent also serves memoized statistics
	// and indexes while both relations still hold the same rows.
	shared bool
	parent *Relation

	// dict is the dictionary this relation's values are interned in; nil
	// means the process-wide default. Operators propagate it to their
	// outputs so printing and string-sorted enumeration resolve through the
	// owning Engine's dictionary.
	dict *Dict

	// frozen marks a relation published in an epoch snapshot: Insert
	// rejects mutation, and ensureStats retains per-column distinct-value
	// sets so a successor version can extend statistics incrementally.
	// extended marks a frozen relation that has already grown a successor
	// in place (Extend): a second Extend of the same base must reallocate
	// its columns rather than fork the shared spare capacity.
	frozen   bool
	extended bool

	// mu guards the memo table (statistics, hash indexes, caller memos)
	// and the in-flight build markers that make memo builds single-flight.
	mu       sync.Mutex
	memos    map[string]memoEntry
	building map[string]chan struct{}
}

// New creates an empty relation. Attribute names must be unique.
func New(name string, attrs ...string) *Relation {
	set := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		if set[a] {
			panic(fmt.Sprintf("relation: duplicate attribute %q in %s", a, name))
		}
		set[a] = true
	}
	return &Relation{
		Name:  name,
		Attrs: append([]string(nil), attrs...),
		cols:  make([][]Value, len(attrs)),
	}
}

// NewIn creates an empty relation whose values will be interned in the
// given dictionary (nil means the process-wide default): the constructor
// for relations owned by an Engine. Add interns through it, and String /
// Values resolve through it.
func NewIn(name string, d *Dict, attrs ...string) *Relation {
	r := New(name, attrs...)
	r.dict = d
	return r
}

// Dict returns the dictionary this relation's values resolve through —
// its own when set, the process-wide default otherwise.
func (r *Relation) Dict() *Dict {
	if r.dict != nil {
		return r.dict
	}
	return defaultDict
}

// AdoptDict records d as the relation's dictionary without touching the
// stored IDs: for builders that assemble columns already interned in d
// (NewFromColumns callers, compaction rewrites).
func (r *Relation) AdoptDict(d *Dict) { r.dict = d }

// Freeze marks the relation immutable: Insert returns an error from now
// on. Epoch-published relations are frozen so every reader of a snapshot
// sees exactly the rows that were committed; growth happens by Extend,
// which builds a frozen successor version instead of mutating.
func (r *Relation) Freeze() { r.frozen = true }

// Frozen reports whether Freeze was called.
func (r *Relation) Frozen() bool { return r.frozen }

// NewFromColumns wraps already-built columns as a relation without copying
// or a dedup pass: cols[c] is attribute c's column and every column must
// have equal length (nil columns mean an empty relation). The caller hands
// over ownership of the arrays and guarantees the rows are pairwise
// distinct — it is the columnar counterpart of Gather for builders that
// assemble output columns directly (the spill-aware streaming repartition
// does).
func NewFromColumns(name string, attrs []string, cols [][]Value) *Relation {
	if len(cols) != len(attrs) {
		panic(fmt.Sprintf("relation: %d columns for %d attributes in %s", len(cols), len(attrs), name))
	}
	out := New(name, attrs...)
	n := 0
	if len(cols) > 0 {
		n = len(cols[0])
	}
	for c := range cols {
		if len(cols[c]) != n {
			panic(fmt.Sprintf("relation %s: column %d has %d rows, want %d", name, c, len(cols[c]), n))
		}
		out.cols[c] = cols[c]
	}
	out.n = n
	return out
}

// Arity returns the number of attributes.
func (r *Relation) Arity() int { return len(r.Attrs) }

// Size returns the number of (distinct) tuples.
func (r *Relation) Size() int { return r.n }

// data returns the resident columns: plain storage directly, governed
// storage through the buffer (reloading a parked segment on demand). The
// returned arrays are an immutable snapshot for governed relations — valid
// even if the governor evicts the buffer afterwards — so callers may hold
// them across an operator without pinning; pinning additionally keeps the
// bytes accounted resident and stops eviction churn.
func (r *Relation) data() [][]Value {
	if r.buf != nil {
		return r.buf.Cols()
	}
	return r.cols
}

// Govern hands r's column storage to the spill governor: the columns become
// a registered ColumnBuffer the governor may park on disk when its memory
// budget is exceeded. The relation must not be shared with concurrent
// readers yet (call at construction time, before publishing) and must be
// treated as read-only afterwards — the first Insert copies the columns
// back out and releases the buffer. Empty relations and nil governors are
// no-ops, as is governing twice.
func (r *Relation) Govern(g *spill.Governor) {
	if g == nil || r.buf != nil || r.n == 0 {
		return
	}
	r.buf = spill.Manage(g, r.cols, r.n)
	r.bufOwned = true
	r.cols = nil
}

// Governed reports whether r's columns live in a spill-governed buffer.
func (r *Relation) Governed() bool { return r.buf != nil }

// Buffer returns the column buffer r OWNS (nil for plain relations and
// for views borrowing a parent's buffer) — the handle a spill scope
// tracks for end-of-evaluation discard.
func (r *Relation) Buffer() ColumnBuffer {
	if !r.bufOwned {
		return nil
	}
	return r.buf
}

// Pin makes r's columns resident and holds them so until the matching
// Unpin: the spill governor will not evict them mid-operator. Pins nest;
// both are no-ops for ungoverned relations. Operators that scan a relation
// (Gather, GatherMulti, Concat, Index builds, HashJoin, SemijoinOn) pin
// their inputs for their duration.
func (r *Relation) Pin() {
	if r.buf != nil {
		r.buf.Pin()
	}
}

// Unpin releases a Pin.
func (r *Relation) Unpin() {
	if r.buf != nil {
		r.buf.Unpin()
	}
}

// Column returns attribute c's column. The slice is the relation's storage:
// callers must treat it as read-only.
func (r *Relation) Column(c int) []Value { return r.data()[c][:r.n] }

// At returns the value at the given row and column.
func (r *Relation) At(row, col int) Value { return r.data()[col][row] }

// Row materializes row i as a fresh tuple.
func (r *Relation) Row(i int) Tuple {
	d := r.data()
	t := make(Tuple, len(d))
	for c := range d {
		t[c] = d[c][i]
	}
	return t
}

// AppendRow appends row i's values to dst and returns the extended slice.
func (r *Relation) AppendRow(dst Tuple, i int) Tuple {
	for _, col := range r.data() {
		dst = append(dst, col[i])
	}
	return dst
}

// Tuples returns a copy of the relation's tuples. The copy is the caller's
// to keep or mutate; the relation is unaffected (copy-on-read — see the
// aliasing regression test). Hot paths should prefer Each, Column, or Row.
func (r *Relation) Tuples() []Tuple {
	out := make([]Tuple, r.n)
	if r.n == 0 {
		return out
	}
	d := r.data()
	flat := make([]Value, r.n*len(d))
	for i := range out {
		t := flat[i*len(d) : (i+1)*len(d) : (i+1)*len(d)]
		for c := range d {
			t[c] = d[c][i]
		}
		out[i] = t
	}
	return out
}

// Each calls f for every tuple until f returns false. The tuple passed to f
// is a reused buffer: it is valid only during the call and must not be
// retained or modified (clone it to keep it).
func (r *Relation) Each(f func(Tuple) bool) {
	d := r.data()
	buf := make(Tuple, len(d))
	for i := 0; i < r.n; i++ {
		for c := range d {
			buf[c] = d[c][i]
		}
		if !f(buf) {
			return
		}
	}
}

// keyAt appends the packing of row i's values in the given columns to buf.
func (r *Relation) keyAt(buf []byte, i int, cols []int) []byte {
	d := r.data()
	for _, c := range cols {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(d[c][i]))
	}
	return buf
}

// rowKey appends the packing of the full row i to buf.
func (r *Relation) rowKey(buf []byte, i int) []byte {
	for _, col := range r.data() {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(col[i]))
	}
	return buf
}

// ensureOwned copies shared storage before the first mutation: column
// backing arrays are duplicated and the dedup map is cloned, scrubbing
// entries that point past this relation's rows. A governed relation
// likewise copies its columns back out of the spill buffer and releases
// it — mutation reverts the storage contract to plain resident slices.
func (r *Relation) ensureOwned() {
	if r.buf == nil && !r.shared {
		return
	}
	wasShared := r.shared
	if r.buf != nil {
		d := r.buf.Pin()
		r.cols = make([][]Value, len(d))
		for c := range d {
			r.cols[c] = append([]Value(nil), d[c][:r.n]...)
		}
		r.buf.Unpin()
		if r.bufOwned {
			r.buf.Release()
		}
		r.buf = nil
		r.bufOwned = false
	} else {
		for c := range r.cols {
			r.cols[c] = append([]Value(nil), r.cols[c][:r.n]...)
		}
	}
	// A borrowed dedup map — shared storage, or a view borrowing a
	// governed parent's buffer — may reference rows past this relation's
	// bound; an owned governed relation's map is exact and kept as is.
	if wasShared && r.seen != nil {
		m := make(map[string]int32, r.n)
		for k, row := range r.seen {
			if int(row) < r.n {
				m[k] = row
			}
		}
		r.seen = m
	}
	r.shared = false
	r.parent = nil
}

// ensureSeen builds the dedup map when an operator skipped it (outputs that
// are distinct by construction defer the cost until Has or Insert needs it)
// and returns it. The mutex makes the lazy build safe for concurrent
// readers; the returned map itself is read-only to them by the package's
// single-writer discipline.
func (r *Relation) ensureSeen() map[string]int32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seen == nil {
		m := make(map[string]int32, r.n)
		var buf []byte
		for i := 0; i < r.n; i++ {
			buf = r.rowKey(buf[:0], i)
			m[string(buf)] = int32(i)
		}
		r.seen = m
	}
	return r.seen
}

// Insert adds a tuple (copied). It reports whether the tuple was new and
// returns an error on arity mismatch.
func (r *Relation) Insert(t Tuple) (bool, error) {
	if r.frozen {
		return false, fmt.Errorf("relation %s: frozen (epoch-published); mutate through a transaction", r.Name)
	}
	if len(t) != len(r.Attrs) {
		return false, fmt.Errorf("relation %s: tuple arity %d != %d", r.Name, len(t), len(r.Attrs))
	}
	seen := r.ensureSeen()
	k := t.Key()
	if row, ok := seen[k]; ok && int(row) < r.n {
		return false, nil
	}
	r.ensureOwned() // may replace r.seen with a scrubbed private clone
	r.seen[k] = int32(r.n)
	for c := range r.cols {
		r.cols[c] = append(r.cols[c], t[c])
	}
	r.n++
	return true, nil
}

// appendRowUnchecked appends a tuple without consulting the dedup map — for
// operators whose outputs are distinct by construction (joins and filters of
// set-semantics inputs). The relation must not be shared and must not have a
// dedup map yet.
func (r *Relation) appendRowUnchecked(t Tuple) {
	for c := range r.cols {
		r.cols[c] = append(r.cols[c], t[c])
	}
	r.n++
}

// MustInsert adds the values as a tuple, panicking on arity mismatch.
// Duplicate tuples are silently ignored.
func (r *Relation) MustInsert(vals ...Value) {
	if _, err := r.Insert(Tuple(vals)); err != nil {
		panic(err)
	}
}

// Add interns the strings (in the relation's dictionary) and inserts them
// as a tuple, panicking on arity mismatch — the convenience constructor
// tests and generators use.
func (r *Relation) Add(vals ...string) {
	d := r.Dict()
	t := make(Tuple, len(vals))
	for i, s := range vals {
		t[i] = d.Intern(s)
	}
	if _, err := r.Insert(t); err != nil {
		panic(err)
	}
}

// Has reports whether the relation contains the tuple.
func (r *Relation) Has(t Tuple) bool {
	if len(t) != len(r.Attrs) {
		return false
	}
	row, ok := r.ensureSeen()[t.Key()]
	return ok && int(row) < r.n
}

// AttrIndex returns the position of the named attribute, or -1.
func (r *Relation) AttrIndex(name string) int {
	for i, a := range r.Attrs {
		if a == name {
			return i
		}
	}
	return -1
}

// share returns a relation with the given name and attributes borrowing r's
// storage copy-on-write.
func (r *Relation) share(name string, attrs []string) *Relation {
	out := New(name, attrs...)
	out.dict = r.dict
	out.n = r.n
	if r.buf != nil {
		// Borrow the governed buffer itself rather than its current arrays:
		// the view reads through the buffer, so a parked parent stays
		// parked until something actually reads, and the governor keeps
		// one accounting entry per stored row set.
		out.buf = r.buf
	} else {
		copy(out.cols, r.cols) // column headers; backing arrays stay r's
	}
	// Borrow the dedup map only if it exists: building it here would defeat
	// the lazy-dedup design for views of operator outputs. The mutex makes
	// the field read safe against a concurrent reader lazily building it.
	r.mu.Lock()
	out.seen = r.seen
	r.mu.Unlock()
	out.shared = true
	out.parent = r
	return out
}

// Clone returns a copy, optionally renamed. Storage is shared copy-on-write:
// the clone is independent for all observable purposes but costs O(arity)
// until the first insert into it.
func (r *Relation) Clone(name string) *Relation {
	if name == "" {
		name = r.Name
	}
	return r.share(name, r.Attrs)
}

// Rename returns a copy with a new name and attribute names, sharing storage
// copy-on-write.
func (r *Relation) Rename(name string, attrs ...string) (*Relation, error) {
	if len(attrs) != len(r.Attrs) {
		return nil, fmt.Errorf("relation %s: rename with %d attrs, arity %d", r.Name, len(attrs), len(r.Attrs))
	}
	return r.share(name, attrs), nil
}

// Select returns the tuples satisfying pred, as a new relation. The tuple
// passed to pred is a reused buffer (see Each).
func (r *Relation) Select(pred func(Tuple) bool) *Relation {
	out := New(r.Name+"_sel", r.Attrs...)
	out.dict = r.dict
	r.Each(func(t Tuple) bool {
		if pred(t) {
			out.appendRowUnchecked(t)
		}
		return true
	})
	return out
}

// ProjectIdx projects onto the given positions (0-based); duplicates in the
// result are eliminated. Positions may repeat, in which case attribute names
// are suffixed to stay unique.
func (r *Relation) ProjectIdx(idx ...int) (*Relation, error) {
	attrs := make([]string, len(idx))
	used := make(map[string]int)
	for i, j := range idx {
		if j < 0 || j >= len(r.Attrs) {
			return nil, fmt.Errorf("relation %s: project position %d out of range", r.Name, j)
		}
		name := r.Attrs[j]
		if n := used[name]; n > 0 {
			name = fmt.Sprintf("%s_%d", name, n)
		}
		used[r.Attrs[j]]++
		attrs[i] = name
	}
	out := New(r.Name+"_proj", attrs...)
	out.dict = r.dict
	out.seen = make(map[string]int32, r.n)
	r.Pin()
	defer r.Unpin()
	d := r.data()
	nt := make(Tuple, len(idx))
	var buf []byte
	for row := 0; row < r.n; row++ {
		for i, j := range idx {
			nt[i] = d[j][row]
		}
		buf = appendKey(buf[:0], nt...)
		if _, dup := out.seen[string(buf)]; dup {
			continue
		}
		out.seen[string(buf)] = int32(out.n)
		out.appendRowUnchecked(nt)
	}
	return out, nil
}

// Project projects onto the named attributes.
func (r *Relation) Project(attrs ...string) (*Relation, error) {
	idx := make([]int, len(attrs))
	for i, a := range attrs {
		j := r.AttrIndex(a)
		if j < 0 {
			return nil, fmt.Errorf("relation %s: unknown attribute %q", r.Name, a)
		}
		idx[i] = j
	}
	return r.ProjectIdx(idx...)
}

// Gather materializes the listed rows of r as a new relation with the given
// name (columnar copy, no dedup pass). The rows must be valid indices and,
// because r has set semantics, distinct indices yield distinct tuples — so
// the result is duplicate-free by construction. Gather is the assembly
// primitive of partition shards and semijoin outputs.
func (r *Relation) Gather(name string, rows []int32) *Relation {
	out := New(name, r.Attrs...)
	out.dict = r.dict
	out.n = len(rows)
	r.Pin()
	defer r.Unpin()
	d := r.data()
	for c := range d {
		col := make([]Value, len(rows))
		src := d[c]
		for k, i := range rows {
			col[k] = src[i]
		}
		out.cols[c] = col
	}
	return out
}

// GatherMulti materializes selected rows drawn from several equal-arity
// source relations as one owned relation: rows[i] lists the row indices
// taken from srcs[i], in order. It is Gather generalized across sources —
// the exchange repartitioning primitive: rebucketing a partitioned view
// onto a new key copies each surviving row exactly once, without first
// concatenating the old shards into a flat relation. Like Gather, the
// result carries no dedup map: callers guarantee the selected rows are
// pairwise distinct (rows of disjoint partition shards are).
func GatherMulti(name string, attrs []string, srcs []*Relation, rows [][]int32) (*Relation, error) {
	if len(srcs) != len(rows) {
		return nil, fmt.Errorf("relation: gather from %d sources with %d row lists", len(srcs), len(rows))
	}
	out := New(name, attrs...)
	total := 0
	for i, src := range srcs {
		if src.Arity() != len(attrs) {
			return nil, fmt.Errorf("relation: gather source %s has arity %d, want %d", src.Name, src.Arity(), len(attrs))
		}
		if out.dict == nil {
			out.dict = src.dict
		}
		total += len(rows[i])
	}
	// Pin every source across the whole column sweep: each source is read
	// once per output column, and an eviction between columns would force
	// arity-many reloads.
	data := make([][][]Value, len(srcs))
	for i, src := range srcs {
		src.Pin()
		defer src.Unpin()
		data[i] = src.data()
	}
	for c := range out.cols {
		col := make([]Value, 0, total)
		for i := range srcs {
			sc := data[i][c]
			for _, row := range rows[i] {
				col = append(col, sc[row])
			}
		}
		out.cols[c] = col
	}
	out.n = total
	return out, nil
}

// Concat concatenates parts of equal arity into one owned relation without a
// dedup pass: callers guarantee the parts' tuple sets are pairwise disjoint
// (partition shards are — tuples in different shards differ on the partition
// column's hash). Attribute names are the caller's: parts may carry stale
// names when they were memoized under a differently-named view.
func Concat(name string, attrs []string, parts ...*Relation) (*Relation, error) {
	out := New(name, attrs...)
	total := 0
	for _, p := range parts {
		if p.Arity() != len(attrs) {
			return nil, fmt.Errorf("relation: concat arity mismatch: part %s has %d attrs, want %d", p.Name, p.Arity(), len(attrs))
		}
		if out.dict == nil {
			out.dict = p.dict
		}
		total += p.n
	}
	data := make([][][]Value, len(parts))
	for i, p := range parts {
		p.Pin()
		defer p.Unpin()
		data[i] = p.data()
	}
	for c := range out.cols {
		col := make([]Value, 0, total)
		for i, p := range parts {
			col = append(col, data[i][c][:p.n]...)
		}
		out.cols[c] = col
	}
	out.n = total
	return out, nil
}

// ProjectView projects r onto the given distinct positions WITHOUT a dedup
// pass, as an O(arity) copy-on-write view renamed to attrs. It is only
// correct when the kept columns functionally determine the dropped ones —
// e.g. a join output whose dropped columns equal kept ones — so callers
// assert duplicate-freeness; use ProjectIdx when in doubt.
func (r *Relation) ProjectView(name string, attrs []string, idx ...int) (*Relation, error) {
	if len(attrs) != len(idx) {
		return nil, fmt.Errorf("relation %s: project view with %d attrs for %d positions", r.Name, len(attrs), len(idx))
	}
	seen := make(map[int]bool, len(idx))
	for _, j := range idx {
		if j < 0 || j >= len(r.Attrs) {
			return nil, fmt.Errorf("relation %s: project position %d out of range", r.Name, j)
		}
		if seen[j] {
			return nil, fmt.Errorf("relation %s: project view repeats position %d", r.Name, j)
		}
		seen[j] = true
	}
	out := New(name, attrs...)
	out.dict = r.dict
	out.n = r.n
	d := r.data()
	for i, j := range idx {
		out.cols[i] = d[j]
	}
	// Shared storage without a parent: first insert copies the columns, but
	// memos are r's own (r has a different schema, so delegation would serve
	// wrong column positions).
	out.shared = true
	return out, nil
}

// Slice returns rows [lo, hi) of r as an O(arity) copy-on-write view with
// the given name: column headers are re-sliced, no values are copied, and
// the first insert into the view copies its rows out. Distinct source rows
// stay distinct, so the view keeps set semantics without a dedup map. Slice
// is the skew-splitting primitive of internal/shard: a hot partition shard
// is cut into row blocks that join independently against a replicated
// (pointer-shared, read-only) co-shard.
func (r *Relation) Slice(name string, lo, hi int) (*Relation, error) {
	if lo < 0 || hi < lo || hi > r.n {
		return nil, fmt.Errorf("relation %s: slice [%d,%d) out of range for %d rows", r.Name, lo, hi, r.n)
	}
	out := New(name, r.Attrs...)
	out.dict = r.dict
	out.n = hi - lo
	d := r.data()
	for c := range d {
		out.cols[c] = d[c][lo:hi]
	}
	// Shared storage without a memo parent: row indices shifted by lo, so
	// delegating memoized indexes or statistics would serve wrong rows.
	out.shared = true
	return out, nil
}

// Union returns r ∪ s; schemas must have equal arity (attribute names are
// taken from r).
func Union(r, s *Relation) (*Relation, error) {
	if r.Arity() != s.Arity() {
		return nil, fmt.Errorf("relation: union arity mismatch %d vs %d", r.Arity(), s.Arity())
	}
	out := New(r.Name+"_u_"+s.Name, r.Attrs...)
	out.dict = r.dict
	var err error
	add := func(t Tuple) bool {
		_, err = out.Insert(t)
		return err == nil
	}
	r.Each(add)
	s.Each(add)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Product returns the cartesian product r × s. Attribute names of s are
// prefixed with its name when they clash.
func Product(r, s *Relation) *Relation {
	out := New(r.Name+"_x_"+s.Name, concatAttrs(r, s)...)
	out.dict = r.dict
	nt := make(Tuple, 0, r.Arity()+s.Arity())
	for i := 0; i < r.n; i++ {
		for j := 0; j < s.n; j++ {
			nt = r.AppendRow(nt[:0], i)
			nt = s.AppendRow(nt, j)
			out.appendRowUnchecked(nt)
		}
	}
	return out
}

// concatAttrs is the joined schema: r's attributes, then s's with clashes
// prefixed by s's name.
func concatAttrs(r, s *Relation) []string {
	attrs := append([]string(nil), r.Attrs...)
	taken := make(map[string]bool)
	for _, a := range attrs {
		taken[a] = true
	}
	for _, a := range s.Attrs {
		name := a
		for taken[name] {
			name = s.Name + "." + name
		}
		taken[name] = true
		attrs = append(attrs, name)
	}
	return attrs
}

// SharedCols lists the column pairs of r and s holding the same attribute
// name — the natural-join (and semijoin) columns. Every name-matching
// operator (NaturalJoin, Semijoin, the sharded routing layer) pairs
// columns through this one helper so they cannot desynchronize.
func SharedCols(r, s *Relation) (rCols, sCols []int) {
	return SharedColsNames(r.Attrs, s.Attrs)
}

// SharedColsNames is SharedCols over bare attribute slices — the form the
// sharded exchange router uses, since a partitioned stream knows its schema
// without materializing a flat relation.
func SharedColsNames(rAttrs, sAttrs []string) (rCols, sCols []int) {
	for j, a := range sAttrs {
		for i, b := range rAttrs {
			if a == b {
				rCols = append(rCols, i)
				sCols = append(sCols, j)
				break
			}
		}
	}
	return rCols, sCols
}

// NaturalJoin joins r and s on all attribute names they share, projecting
// away the duplicated join columns of s.
func NaturalJoin(r, s *Relation) (*Relation, error) {
	rCols, sCols := SharedCols(r, s)
	if len(rCols) == 0 {
		// Degenerates to a product.
		return Product(r, s), nil
	}
	pairs := make([][2]int, len(rCols))
	for i := range rCols {
		pairs[i] = [2]int{rCols[i], sCols[i]}
	}
	joined, err := EquiJoin(r, s, pairs)
	if err != nil {
		return nil, err
	}
	return NaturalJoinView(joined, r, s, sCols)
}

// NaturalJoinView projects a raw equi-join of r and s (all columns of r
// then all columns of s, as HashJoin produces) onto the natural-join
// schema: r's columns plus s's non-join columns (sCols are s's join
// positions), with clean attribute names. Dropping s's copy of the join
// columns cannot create duplicates — those columns equal kept columns of r
// in every output row — so the result is an O(arity) ProjectView instead
// of a dedup pass over the whole output. Exported for internal/shard,
// whose co-partitioned HashJoin concatenates per-shard raw joins of the
// same shape.
func NaturalJoinView(joined, r, s *Relation, sCols []int) (*Relation, error) {
	attrs, keep := NaturalJoinSchema(r.Attrs, s.Attrs, sCols)
	return joined.ProjectView(r.Name+"_nj_"+s.Name, attrs, keep...)
}

// NaturalJoinSchema computes the natural-join output schema from the raw
// equi-join layout (all of r's columns, then all of s's): the attribute
// names of the result — r's attributes plus s's non-join attributes — and
// the raw-join positions to keep. sCols are s's join positions. It is the
// schema-only core of NaturalJoinView, exported so internal/shard can
// project per-shard raw joins without materializing either input: partition
// shards and exchange parts know their attributes without holding a flat
// relation.
func NaturalJoinSchema(rAttrs, sAttrs []string, sCols []int) (attrs []string, keep []int) {
	dropS := make([]bool, len(sAttrs))
	for _, j := range sCols {
		dropS[j] = true
	}
	keep = make([]int, 0, len(rAttrs)+len(sAttrs)-len(sCols))
	attrs = append([]string(nil), rAttrs...)
	for i := 0; i < len(rAttrs); i++ {
		keep = append(keep, i)
	}
	for j := 0; j < len(sAttrs); j++ {
		if !dropS[j] {
			keep = append(keep, len(rAttrs)+j)
			attrs = append(attrs, sAttrs[j])
		}
	}
	return attrs, keep
}

// CheckFD reports whether the instance satisfies the functional dependency
// from (0-based positions) -> to.
func (r *Relation) CheckFD(from []int, to int) bool {
	r.Pin()
	defer r.Unpin()
	toCol := r.data()[to]
	seen := make(map[string]Value, r.n)
	var buf []byte
	for i := 0; i < r.n; i++ {
		buf = r.keyAt(buf[:0], i, from)
		v := toCol[i]
		if prev, ok := seen[string(buf)]; ok {
			if prev != v {
				return false
			}
		} else {
			seen[string(buf)] = v
		}
	}
	return true
}

// CheckKey reports whether the (0-based) positions form a key: they
// functionally determine every other position.
func (r *Relation) CheckKey(cols []int) bool {
	for p := 0; p < r.Arity(); p++ {
		inKey := false
		for _, c := range cols {
			if c == p {
				inKey = true
				break
			}
		}
		if !inKey && !r.CheckFD(cols, p) {
			return false
		}
	}
	return true
}

// Values returns the set of values appearing anywhere in the relation,
// sorted by their interned strings.
func (r *Relation) Values() []Value {
	set := make(map[Value]bool)
	for c := range r.Attrs {
		for _, v := range r.Column(c) {
			set[v] = true
		}
	}
	out := make([]Value, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	SortByStringIn(r.Dict(), out)
	return out
}

// SortByString sorts values by their strings in the default dictionary,
// resolving each string once instead of per comparison.
func SortByString(vals []Value) {
	SortByStringIn(defaultDict, vals)
}

// SortByStringIn sorts values by their interned strings in the given
// dictionary (nil means the default).
func SortByStringIn(d *Dict, vals []Value) {
	if d == nil {
		d = defaultDict
	}
	strs := make([]string, len(vals))
	for i, v := range vals {
		strs[i] = d.String(v)
	}
	sort.Sort(&byResolvedString{vals, strs})
}

type byResolvedString struct {
	vals []Value
	strs []string
}

func (s *byResolvedString) Len() int           { return len(s.vals) }
func (s *byResolvedString) Less(i, j int) bool { return s.strs[i] < s.strs[j] }
func (s *byResolvedString) Swap(i, j int) {
	s.vals[i], s.vals[j] = s.vals[j], s.vals[i]
	s.strs[i], s.strs[j] = s.strs[j], s.strs[i]
}

// Equal reports whether two relations hold the same set of tuples (attribute
// names are ignored; arity must match).
func Equal(r, s *Relation) bool {
	if r.Arity() != s.Arity() || r.Size() != s.Size() {
		return false
	}
	seen := s.ensureSeen()
	eq := true
	r.Each(func(t Tuple) bool {
		if row, ok := seen[t.Key()]; !ok || int(row) >= s.n {
			eq = false
			return false
		}
		return true
	})
	return eq
}

// String renders a small relation for debugging; larger relations are
// summarized.
func (r *Relation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%s) [%d tuples]", r.Name, strings.Join(r.Attrs, ","), r.Size())
	if r.Size() <= 16 {
		d := r.Dict()
		r.Each(func(t Tuple) bool {
			fmt.Fprintf(&b, "\n  (%s)", strings.Join(t.StringsIn(d), ","))
			return true
		})
	}
	return b.String()
}
