// Package relation is a small in-memory relational engine: named relations
// with set semantics (duplicate tuples are eliminated), selection,
// projection, renaming, unions, products, and hash-based natural and equi
// joins. It is the substrate on which queries are evaluated and the paper's
// worst-case instances are materialized and measured.
package relation

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Value is a single field value. Values are opaque strings.
type Value string

// Tuple is an ordered list of values.
type Tuple []Value

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Key returns an injective encoding of the tuple, usable as a map key even
// when values contain separator bytes (each value is length-prefixed).
func (t Tuple) Key() string {
	var b strings.Builder
	for _, v := range t {
		b.WriteString(strconv.Itoa(len(v)))
		b.WriteByte(':')
		b.WriteString(string(v))
	}
	return b.String()
}

// Relation is a named relation with set semantics.
type Relation struct {
	Name   string
	Attrs  []string
	tuples []Tuple
	seen   map[string]bool

	// Memoized column statistics (see stats.go). The mutex makes the
	// statistics accessors safe under concurrent readers.
	statsMu sync.Mutex
	stats   *stats
}

// New creates an empty relation. Attribute names must be unique.
func New(name string, attrs ...string) *Relation {
	set := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		if set[a] {
			panic(fmt.Sprintf("relation: duplicate attribute %q in %s", a, name))
		}
		set[a] = true
	}
	return &Relation{
		Name:  name,
		Attrs: append([]string(nil), attrs...),
		seen:  make(map[string]bool),
	}
}

// Arity returns the number of attributes.
func (r *Relation) Arity() int { return len(r.Attrs) }

// Size returns the number of (distinct) tuples.
func (r *Relation) Size() int { return len(r.tuples) }

// Tuples returns the relation's tuples. The slice and its tuples must not be
// modified by the caller.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// Insert adds a tuple (copied). It reports whether the tuple was new and
// returns an error on arity mismatch.
func (r *Relation) Insert(t Tuple) (bool, error) {
	if len(t) != len(r.Attrs) {
		return false, fmt.Errorf("relation %s: tuple arity %d != %d", r.Name, len(t), len(r.Attrs))
	}
	k := t.Key()
	if r.seen[k] {
		return false, nil
	}
	r.seen[k] = true
	r.tuples = append(r.tuples, t.Clone())
	return true, nil
}

// MustInsert adds the values as a tuple, panicking on arity mismatch.
// Duplicate tuples are silently ignored.
func (r *Relation) MustInsert(vals ...Value) {
	if _, err := r.Insert(Tuple(vals)); err != nil {
		panic(err)
	}
}

// Has reports whether the relation contains the tuple.
func (r *Relation) Has(t Tuple) bool { return r.seen[t.Key()] }

// AttrIndex returns the position of the named attribute, or -1.
func (r *Relation) AttrIndex(name string) int {
	for i, a := range r.Attrs {
		if a == name {
			return i
		}
	}
	return -1
}

// Clone returns a deep copy, optionally renamed.
func (r *Relation) Clone(name string) *Relation {
	if name == "" {
		name = r.Name
	}
	out := New(name, r.Attrs...)
	for _, t := range r.tuples {
		out.MustInsert(t...)
	}
	return out
}

// Rename returns a copy with a new name and attribute names.
func (r *Relation) Rename(name string, attrs ...string) (*Relation, error) {
	if len(attrs) != len(r.Attrs) {
		return nil, fmt.Errorf("relation %s: rename with %d attrs, arity %d", r.Name, len(attrs), len(r.Attrs))
	}
	out := New(name, attrs...)
	for _, t := range r.tuples {
		out.MustInsert(t...)
	}
	return out, nil
}

// Select returns the tuples satisfying pred, as a new relation.
func (r *Relation) Select(pred func(Tuple) bool) *Relation {
	out := New(r.Name+"_sel", r.Attrs...)
	for _, t := range r.tuples {
		if pred(t) {
			out.MustInsert(t...)
		}
	}
	return out
}

// ProjectIdx projects onto the given positions (0-based); duplicates in the
// result are eliminated. Positions may repeat, in which case attribute names
// are suffixed to stay unique.
func (r *Relation) ProjectIdx(idx ...int) (*Relation, error) {
	attrs := make([]string, len(idx))
	used := make(map[string]int)
	for i, j := range idx {
		if j < 0 || j >= len(r.Attrs) {
			return nil, fmt.Errorf("relation %s: project position %d out of range", r.Name, j)
		}
		name := r.Attrs[j]
		if n := used[name]; n > 0 {
			name = fmt.Sprintf("%s_%d", name, n)
		}
		used[r.Attrs[j]]++
		attrs[i] = name
	}
	out := New(r.Name+"_proj", attrs...)
	for _, t := range r.tuples {
		nt := make(Tuple, len(idx))
		for i, j := range idx {
			nt[i] = t[j]
		}
		if _, err := out.Insert(nt); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Project projects onto the named attributes.
func (r *Relation) Project(attrs ...string) (*Relation, error) {
	idx := make([]int, len(attrs))
	for i, a := range attrs {
		j := r.AttrIndex(a)
		if j < 0 {
			return nil, fmt.Errorf("relation %s: unknown attribute %q", r.Name, a)
		}
		idx[i] = j
	}
	return r.ProjectIdx(idx...)
}

// Union returns r ∪ s; schemas must have equal arity (attribute names are
// taken from r).
func Union(r, s *Relation) (*Relation, error) {
	if r.Arity() != s.Arity() {
		return nil, fmt.Errorf("relation: union arity mismatch %d vs %d", r.Arity(), s.Arity())
	}
	out := New(r.Name+"_u_"+s.Name, r.Attrs...)
	for _, t := range r.tuples {
		out.MustInsert(t...)
	}
	for _, t := range s.tuples {
		out.MustInsert(t...)
	}
	return out, nil
}

// Product returns the cartesian product r × s. Attribute names of s are
// prefixed with its name when they clash.
func Product(r, s *Relation) *Relation {
	attrs := append([]string(nil), r.Attrs...)
	taken := make(map[string]bool)
	for _, a := range attrs {
		taken[a] = true
	}
	for _, a := range s.Attrs {
		name := a
		for taken[name] {
			name = s.Name + "." + name
		}
		taken[name] = true
		attrs = append(attrs, name)
	}
	out := New(r.Name+"_x_"+s.Name, attrs...)
	for _, t := range r.tuples {
		for _, u := range s.tuples {
			nt := make(Tuple, 0, len(t)+len(u))
			nt = append(nt, t...)
			nt = append(nt, u...)
			out.MustInsert(nt...)
		}
	}
	return out
}

// EquiJoin joins r and s on the given position pairs (r position, s
// position), keeping all columns of both relations. It uses a hash join on
// the smaller side.
func EquiJoin(r, s *Relation, pairs [][2]int) (*Relation, error) {
	for _, p := range pairs {
		if p[0] < 0 || p[0] >= r.Arity() || p[1] < 0 || p[1] >= s.Arity() {
			return nil, fmt.Errorf("relation: join positions %v out of range", p)
		}
	}
	// Hash the smaller relation.
	swapped := false
	a, b := r, s
	ai, bi := 0, 1
	if s.Size() < r.Size() {
		a, b = s, r
		ai, bi = 1, 0
		swapped = true
	}
	index := make(map[string][]Tuple, a.Size())
	for _, t := range a.Tuples() {
		k := joinKey(t, pairs, ai)
		index[k] = append(index[k], t)
	}
	attrs := append([]string(nil), r.Attrs...)
	taken := make(map[string]bool)
	for _, x := range attrs {
		taken[x] = true
	}
	for _, x := range s.Attrs {
		name := x
		for taken[name] {
			name = s.Name + "." + name
		}
		taken[name] = true
		attrs = append(attrs, name)
	}
	out := New(r.Name+"_j_"+s.Name, attrs...)
	for _, u := range b.Tuples() {
		k := joinKey(u, pairs, bi)
		for _, t := range index[k] {
			rt, st := t, u
			if swapped {
				rt, st = u, t
			}
			nt := make(Tuple, 0, len(rt)+len(st))
			nt = append(nt, rt...)
			nt = append(nt, st...)
			out.MustInsert(nt...)
		}
	}
	return out, nil
}

func joinKey(t Tuple, pairs [][2]int, side int) string {
	var b strings.Builder
	for _, p := range pairs {
		v := t[p[side]]
		b.WriteString(strconv.Itoa(len(v)))
		b.WriteByte(':')
		b.WriteString(string(v))
	}
	return b.String()
}

// NaturalJoin joins r and s on all attribute names they share, projecting
// away the duplicated join columns of s.
func NaturalJoin(r, s *Relation) (*Relation, error) {
	var pairs [][2]int
	var dropS []bool
	dropS = make([]bool, s.Arity())
	for j, a := range s.Attrs {
		if i := r.AttrIndex(a); i >= 0 {
			pairs = append(pairs, [2]int{i, j})
			dropS[j] = true
		}
	}
	if len(pairs) == 0 {
		// Degenerates to a product.
		return Product(r, s), nil
	}
	joined, err := EquiJoin(r, s, pairs)
	if err != nil {
		return nil, err
	}
	var keep []int
	for i := 0; i < r.Arity(); i++ {
		keep = append(keep, i)
	}
	for j := 0; j < s.Arity(); j++ {
		if !dropS[j] {
			keep = append(keep, r.Arity()+j)
		}
	}
	out, err := joined.ProjectIdx(keep...)
	if err != nil {
		return nil, err
	}
	// Restore clean attribute names: r's attrs then s's non-join attrs.
	attrs := append([]string(nil), r.Attrs...)
	for j, a := range s.Attrs {
		if !dropS[j] {
			attrs = append(attrs, a)
		}
	}
	return out.Rename(r.Name+"_nj_"+s.Name, attrs...)
}

// CheckFD reports whether the instance satisfies the functional dependency
// from (0-based positions) -> to.
func (r *Relation) CheckFD(from []int, to int) bool {
	seen := make(map[string]Value)
	for _, t := range r.tuples {
		var b strings.Builder
		for _, p := range from {
			v := t[p]
			b.WriteString(strconv.Itoa(len(v)))
			b.WriteByte(':')
			b.WriteString(string(v))
		}
		k := b.String()
		if prev, ok := seen[k]; ok {
			if prev != t[to] {
				return false
			}
		} else {
			seen[k] = t[to]
		}
	}
	return true
}

// CheckKey reports whether the (0-based) positions form a key: they
// functionally determine every other position.
func (r *Relation) CheckKey(cols []int) bool {
	for p := 0; p < r.Arity(); p++ {
		inKey := false
		for _, c := range cols {
			if c == p {
				inKey = true
				break
			}
		}
		if !inKey && !r.CheckFD(cols, p) {
			return false
		}
	}
	return true
}

// Values returns the sorted set of values appearing anywhere in the
// relation.
func (r *Relation) Values() []Value {
	set := make(map[Value]bool)
	for _, t := range r.tuples {
		for _, v := range t {
			set[v] = true
		}
	}
	out := make([]Value, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Equal reports whether two relations hold the same set of tuples (attribute
// names are ignored; arity must match).
func Equal(r, s *Relation) bool {
	if r.Arity() != s.Arity() || r.Size() != s.Size() {
		return false
	}
	for _, t := range r.tuples {
		if !s.Has(t) {
			return false
		}
	}
	return true
}

// String renders a small relation for debugging; larger relations are
// summarized.
func (r *Relation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%s) [%d tuples]", r.Name, strings.Join(r.Attrs, ","), r.Size())
	if r.Size() <= 16 {
		for _, t := range r.tuples {
			parts := make([]string, len(t))
			for i, v := range t {
				parts[i] = string(v)
			}
			fmt.Fprintf(&b, "\n  (%s)", strings.Join(parts, ","))
		}
	}
	return b.String()
}
