package relation

// Tests for the bulk/batched primitives backing the shard subsystem:
// columnar Gather and Concat, the dedup-free ProjectView, and the batched
// index probe (MatchingRows / SemijoinOn).

import (
	"fmt"
	"math/rand"
	"testing"
)

func randRel(rng *rand.Rand, name string, attrs []string, n, universe int) *Relation {
	r := New(name, attrs...)
	for i := 0; i < n; i++ {
		vals := make([]string, len(attrs))
		for j := range vals {
			vals[j] = fmt.Sprintf("u%d", rng.Intn(universe))
		}
		r.Add(vals...)
	}
	return r
}

func TestGather(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := randRel(rng, "R", []string{"a", "b", "c"}, 200, 30)
	rows := []int32{0, 5, 17, int32(r.Size() - 1)}
	g := r.Gather("G", rows)
	if g.Size() != len(rows) {
		t.Fatalf("gather size = %d, want %d", g.Size(), len(rows))
	}
	for k, i := range rows {
		for c := 0; c < r.Arity(); c++ {
			if g.At(k, c) != r.At(int(i), c) {
				t.Fatalf("gather row %d col %d = %v, want %v", k, c, g.At(k, c), r.At(int(i), c))
			}
		}
	}
	// Gathered relation is independent: inserting must not disturb r.
	before := r.Size()
	g.Add("x", "y", "z")
	if r.Size() != before {
		t.Fatal("insert into gather output mutated the source")
	}
	// Empty gather.
	if e := r.Gather("E", nil); e.Size() != 0 || e.Arity() != r.Arity() {
		t.Fatal("empty gather has wrong shape")
	}
}

func TestConcat(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randRel(rng, "A", []string{"x", "y"}, 50, 100) // large universe: disjoint with high odds
	b := randRel(rng, "B", []string{"x", "y"}, 60, 100)
	// Make them certainly disjoint by tagging the first column.
	a2 := New("A2", "x", "y")
	a.Each(func(tp Tuple) bool { a2.Add("a_"+tp[0].String(), tp[1].String()); return true })
	b2 := New("B2", "x", "y")
	b.Each(func(tp Tuple) bool { b2.Add("b_"+tp[0].String(), tp[1].String()); return true })

	out, err := Concat("C", []string{"x", "y"}, a2, b2)
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != a2.Size()+b2.Size() {
		t.Fatalf("concat size = %d, want %d", out.Size(), a2.Size()+b2.Size())
	}
	u, err := Union(a2, b2)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(out, u) {
		t.Fatal("concat of disjoint parts differs from union")
	}
	// Arity mismatch errors.
	if _, err := Concat("C", []string{"x"}, a2); err == nil {
		t.Fatal("concat with wrong arity did not error")
	}
	// Zero parts: empty relation with the given schema.
	if e, err := Concat("E", []string{"x", "y"}); err != nil || e.Size() != 0 {
		t.Fatalf("empty concat: %v, %d rows", err, e.Size())
	}
}

func TestProjectView(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r := randRel(rng, "R", []string{"a", "b", "c"}, 100, 50)
	v, err := r.ProjectView("V", []string{"c", "a"}, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.Size() != r.Size() {
		t.Fatalf("view size = %d, want %d (no dedup)", v.Size(), r.Size())
	}
	for i := 0; i < r.Size(); i++ {
		if v.At(i, 0) != r.At(i, 2) || v.At(i, 1) != r.At(i, 0) {
			t.Fatalf("view row %d = (%v,%v), want (%v,%v)", i, v.At(i, 0), v.At(i, 1), r.At(i, 2), r.At(i, 0))
		}
	}
	// Copy-on-write: inserting into the view must not touch r.
	rSize := r.Size()
	v.Add("fresh", "fresh")
	if r.Size() != rSize {
		t.Fatal("insert into view mutated the base")
	}
	// Repeated positions are rejected (they could alias storage unsafely).
	if _, err := r.ProjectView("V", []string{"a", "a2"}, 0, 0); err == nil {
		t.Fatal("repeated position did not error")
	}
	if _, err := r.ProjectView("V", []string{"a"}, 7); err == nil {
		t.Fatal("out-of-range position did not error")
	}
}

func TestMatchingRowsAgainstRowAtATime(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	r := randRel(rng, "R", []string{"a", "b"}, 2000, 60) // > probeBlock rows
	s := randRel(rng, "S", []string{"b", "c"}, 300, 60)
	rCols, sCols := []int{1}, []int{0}
	ix := s.Index(sCols...)
	got := ix.MatchingRows(r, rCols, nil)
	var want []int32
	var buf []byte
	for i := 0; i < r.Size(); i++ {
		buf = r.keyAt(buf[:0], i, rCols)
		if ix.Has(buf) {
			want = append(want, int32(i))
		}
	}
	if len(got) != len(want) {
		t.Fatalf("MatchingRows found %d rows, row-at-a-time found %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: batched %d, want %d", i, got[i], want[i])
		}
	}
}

func TestSemijoinOn(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	r := randRel(rng, "R", []string{"a", "b"}, 800, 40)
	s := randRel(rng, "S", []string{"b", "c"}, 150, 40)
	byName, err := Semijoin(r, s)
	if err != nil {
		t.Fatal(err)
	}
	byPos, err := SemijoinOn(r, s, []int{1}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(byName, byPos) {
		t.Fatalf("SemijoinOn = %d rows, Semijoin = %d", byPos.Size(), byName.Size())
	}
	// Column count mismatch and range errors.
	if _, err := SemijoinOn(r, s, []int{1}, []int{0, 1}); err == nil {
		t.Fatal("mismatched column lists did not error")
	}
	if _, err := SemijoinOn(r, s, []int{9}, []int{0}); err == nil {
		t.Fatal("out-of-range column did not error")
	}
	// Empty column lists degrade like the no-shared-attributes case.
	out, err := SemijoinOn(r, s, nil, nil)
	if err != nil || out != r {
		t.Fatal("empty-column semijoin against nonempty s should return r itself")
	}
	empty := New("E", "x")
	out, err = SemijoinOn(r, empty, nil, nil)
	if err != nil || out.Size() != 0 {
		t.Fatal("empty-column semijoin against empty s should be empty")
	}
}
