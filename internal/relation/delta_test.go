package relation

import (
	"fmt"
	"testing"
)

func tupleOf(vals ...string) Tuple {
	t := make(Tuple, len(vals))
	for i, s := range vals {
		t[i] = V(s)
	}
	return t
}

func TestExtendAppendsWithoutMutatingBase(t *testing.T) {
	base := New("R", "A", "B")
	base.Add("a", "1")
	base.Add("b", "2")
	base.Freeze()

	next, err := base.Extend([]Tuple{tupleOf("c", "3"), tupleOf("d", "4")})
	if err != nil {
		t.Fatal(err)
	}
	if base.Size() != 2 {
		t.Fatalf("base grew to %d rows", base.Size())
	}
	if next.Size() != 4 {
		t.Fatalf("successor has %d rows, want 4", next.Size())
	}
	if !next.Frozen() {
		t.Fatal("successor not frozen")
	}
	for _, want := range []Tuple{tupleOf("a", "1"), tupleOf("c", "3"), tupleOf("d", "4")} {
		if !next.Has(want) {
			t.Fatalf("successor missing %v", want.Strings())
		}
	}
	if next.Has(tupleOf("e", "5")) {
		t.Fatal("successor has a tuple nobody inserted")
	}
}

func TestExtendTwiceFromSameBaseDoesNotFork(t *testing.T) {
	base := New("R", "A")
	base.Add("a")
	base.Freeze()

	n1, err := base.Extend([]Tuple{tupleOf("b")})
	if err != nil {
		t.Fatal(err)
	}
	// The second Extend of the SAME base must reallocate: if it appended
	// into the shared spare capacity it would overwrite n1's rows.
	n2, err := base.Extend([]Tuple{tupleOf("c")})
	if err != nil {
		t.Fatal(err)
	}
	if !n1.Has(tupleOf("b")) || n1.Has(tupleOf("c")) {
		t.Fatalf("first successor corrupted: %v", n1)
	}
	if !n2.Has(tupleOf("c")) || n2.Has(tupleOf("b")) {
		t.Fatalf("second successor corrupted: %v", n2)
	}
}

func TestExtendArityMismatch(t *testing.T) {
	base := New("R", "A", "B")
	if _, err := base.Extend([]Tuple{tupleOf("a")}); err == nil {
		t.Fatal("arity-mismatched extend succeeded")
	}
}

func TestFrozenInsertRejected(t *testing.T) {
	r := New("R", "A")
	r.Add("a")
	r.Freeze()
	if _, err := r.Insert(tupleOf("b")); err == nil {
		t.Fatal("insert into frozen relation succeeded")
	}
	if r.Size() != 1 {
		t.Fatalf("frozen relation grew to %d rows", r.Size())
	}
}

func TestExtendMemosMatchRebuild(t *testing.T) {
	base := New("R", "A", "B")
	for i := 0; i < 40; i++ {
		base.Add(fmt.Sprintf("x%d", i%7), fmt.Sprintf("y%d", i))
	}
	base.Freeze()
	// Warm the memos the extension derives from.
	baseIx := base.Index(0)
	_ = base.DistinctCount(0)
	_ = base.DistinctCount(1)

	delta := []Tuple{tupleOf("x1", "fresh1"), tupleOf("z", "fresh2")}
	next, err := base.Extend(delta)
	if err != nil {
		t.Fatal(err)
	}
	if got := base.ExtendMemos(next); got != 2 {
		t.Fatalf("extended %d memos, want 2 (stats + one index)", got)
	}

	// A from-scratch twin of next: same rows, cold memos.
	fresh := New("R", "A", "B")
	next.Each(func(tp Tuple) bool {
		fresh.MustInsert(tp.Clone()...)
		return true
	})
	fresh.Freeze()
	for c := 0; c < 2; c++ {
		if got, want := next.DistinctCount(c), fresh.DistinctCount(c); got != want {
			t.Fatalf("column %d: extended distinct %d, rebuilt %d", c, got, want)
		}
	}
	freshIx := next.Index(0) // served from the installed memo
	var buf []byte
	fresh.Each(func(tp Tuple) bool {
		buf = KeyFor(buf[:0], tp, []int{0})
		if len(freshIx.Rows(buf)) == 0 {
			t.Fatalf("extended index misses key %v", tp.Strings())
		}
		return true
	})
	// The extension must not have grown the BASE index's posting lists:
	// epoch readers of the base are still probing them.
	buf = KeyFor(buf[:0], tupleOf("x1", ""), []int{0})
	baseRows := baseIx.Rows(buf)
	for _, row := range baseRows {
		if int(row) >= base.Size() {
			t.Fatalf("base index now lists row %d past base size %d", row, base.Size())
		}
	}
}

func TestNewDedupTracksRows(t *testing.T) {
	r := New("R", "A", "B")
	r.Add("a", "1")
	r.Add("b", "2")
	m := r.NewDedup()
	if len(m) != 2 {
		t.Fatalf("dedup has %d entries, want 2", len(m))
	}
	if row, ok := m.Row(tupleOf("b", "2")); !ok || row != 1 {
		t.Fatalf("Row(b,2) = %d,%v want 1,true", row, ok)
	}
	m.Put(tupleOf("c", "3"), 2)
	if _, ok := m.Row(tupleOf("c", "3")); !ok {
		t.Fatal("Put not visible")
	}
}

func TestEachMemoReportsStaleEntries(t *testing.T) {
	r := New("R", "A")
	r.Add("a")
	r.Index(0) // memoized at size 1
	r.Add("b") // invalidates it
	sawStale := false
	r.EachMemo(func(key string, v any, valid bool) bool {
		if _, ok := v.(*Index); ok && !valid {
			sawStale = true
		}
		return true
	})
	if !sawStale {
		t.Fatal("EachMemo hid the stale index entry — the sweep would leak it")
	}
}

func TestDictPerRelation(t *testing.T) {
	d := NewDict()
	r := NewIn("R", d, "A")
	before := DefaultDict().Len()
	r.Add("only-in-private-dict-xyzzy")
	if DefaultDict().Len() != before {
		t.Fatal("Add interned into the default dictionary despite a private one")
	}
	if d.Len() != 1 {
		t.Fatalf("private dict has %d entries, want 1", d.Len())
	}
	if got := r.String(); got == "" {
		t.Fatal("String failed on private-dict relation")
	}
}

func TestCompactInto(t *testing.T) {
	d := NewDict()
	a, b, c := d.Intern("keep-a"), d.Intern("drop-b"), d.Intern("keep-c")
	used := make([]bool, d.Len())
	used[a], used[c] = true, true
	nd, remap := d.CompactInto(used)
	if nd.Len() != 2 {
		t.Fatalf("compacted dict has %d entries, want 2", nd.Len())
	}
	if got := nd.String(remap[a]); got != "keep-a" {
		t.Fatalf("remapped a resolves to %q", got)
	}
	if got := nd.String(remap[c]); got != "keep-c" {
		t.Fatalf("remapped c resolves to %q", got)
	}
	if _, ok := nd.Lookup("drop-b"); ok {
		t.Fatal("dropped string survived compaction")
	}
	// The old dictionary still resolves everything (pinned readers).
	if d.String(b) != "drop-b" {
		t.Fatal("source dictionary mutated by compaction")
	}
}
