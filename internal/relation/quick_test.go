package relation

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomRelation(rng *rand.Rand, name string, attrs []string, rows, domain int) *Relation {
	r := New(name, attrs...)
	for i := 0; i < rows; i++ {
		t := make(Tuple, len(attrs))
		for j := range t {
			t[j] = V(fmt.Sprint(rng.Intn(domain)))
		}
		r.MustInsert(t...)
	}
	return r
}

// TestQuickProjectIdempotent: projecting twice onto the same columns equals
// projecting once.
func TestQuickProjectIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRelation(rng, "R", []string{"a", "b", "c"}, rng.Intn(30), 4)
		p1, err := r.Project("a", "c")
		if err != nil {
			return false
		}
		p2, err := p1.Project("a", "c")
		if err != nil {
			return false
		}
		return Equal(p1, p2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickJoinBounds: |R ⋈ S| ≤ |R × S| and the join is contained in the
// product (as a filter).
func TestQuickJoinBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRelation(rng, "R", []string{"a", "b"}, rng.Intn(20), 3)
		s := randomRelation(rng, "S", []string{"c", "d"}, rng.Intn(20), 3)
		j, err := EquiJoin(r, s, [][2]int{{1, 0}})
		if err != nil {
			return false
		}
		if j.Size() > r.Size()*s.Size() {
			return false
		}
		for _, tup := range j.Tuples() {
			if tup[1] != tup[2] {
				return false // join condition violated
			}
			if !r.Has(Tuple{tup[0], tup[1]}) || !s.Has(Tuple{tup[2], tup[3]}) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickUnionBounds: max(|R|,|S|) ≤ |R ∪ S| ≤ |R| + |S| and union is
// idempotent.
func TestQuickUnionBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRelation(rng, "R", []string{"a", "b"}, rng.Intn(20), 3)
		s := randomRelation(rng, "S", []string{"c", "d"}, rng.Intn(20), 3)
		u, err := Union(r, s)
		if err != nil {
			return false
		}
		if u.Size() > r.Size()+s.Size() || u.Size() < r.Size() || u.Size() < s.Size() {
			return false
		}
		uu, err := Union(u, u)
		if err != nil {
			return false
		}
		return Equal(u, uu)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTupleKeyInjective: distinct tuples have distinct keys.
func TestQuickTupleKeyInjective(t *testing.T) {
	f := func(a1, a2, b1, b2 string) bool {
		t1 := Tuple{V(a1), V(a2)}
		t2 := Tuple{V(b1), V(b2)}
		if a1 == b1 && a2 == b2 {
			return t1.Key() == t2.Key()
		}
		return t1.Key() != t2.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCheckKeyMonotone: adding columns to a key set keeps it a key.
func TestQuickCheckKeyMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRelation(rng, "R", []string{"a", "b", "c"}, 1+rng.Intn(25), 3)
		if r.CheckKey([]int{0}) && !r.CheckKey([]int{0, 1}) {
			return false
		}
		if r.CheckKey([]int{1}) && !r.CheckKey([]int{1, 2}) {
			return false
		}
		// The full column set is always a key (set semantics).
		return r.CheckKey([]int{0, 1, 2})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
