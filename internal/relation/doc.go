// Package relation is a small in-memory relational engine: named relations
// with set semantics (duplicate tuples are eliminated), selection,
// projection, renaming, unions, products, and index-backed natural, equi
// and semi joins. It is the substrate on which queries are evaluated and
// the paper's worst-case instances are materialized and measured.
//
// # Storage
//
// Storage is interned and columnar: every field value is a fixed-width
// Value (an ID into a Dict, see dict.go) and each attribute is stored as a
// contiguous []Value column. Tuple keys — the currency of dedup, joins and
// semijoins — are fixed-width byte packings of IDs. Renaming and cloning
// share column storage copy-on-write, so deriving a differently-named view
// of a base relation (the hot path of query evaluation) is O(arity), not
// O(n·arity). Slice extends the same idea to row ranges: a contiguous
// block of rows is an O(arity) view, which is how the sharding layer cuts
// a hot shard into blocks without copying.
//
// # The memo table
//
// Every derived structure a relation serves — per-column distinct counts
// (stats.go), hash indexes (index.go), the generic join's tries, and
// internal/shard's partitions — lives in one mutex-guarded, size-keyed
// memo table (Relation.Memo):
//
//   - Entries record the relation size they were built at, so an insert
//     invalidates implicitly: the next reader rebuilds.
//   - Clone/Rename views delegate memo calls to the relation whose storage
//     they share (until they diverge by insertion), so one stored row set
//     has one set of memos no matter how many named views serve it. This
//     is why internal/shard memoizes partitions per (key, P) "on the
//     relation memo table" and every binding view of a base relation sees
//     them.
//   - Builders run outside the lock but are single-flight per key:
//     concurrent readers of a missing entry share one build. (Partition
//     builds register spill-governed shards, so a duplicate build would
//     leak governor registrations — duplicates are prevented, not
//     tolerated.)
//
// Views produced by ProjectView and Slice share storage without a memo
// parent — their column positions or row indices differ from the base, so
// delegation would serve wrong answers; they build their own memos.
//
// # Versions: frozen relations and delta extension
//
// The transactional layer (the root package's epoch store) needs relation
// versions that never change under a reader. Freeze marks a relation
// immutable — Insert fails, mutation must go through a transaction — and
// Extend builds the next version from a frozen base plus a delta of new
// rows (delta.go). The successor reuses the base's backing arrays when it
// is the first extension of that base and appends in place (old readers
// are bounded by their own row counts); a second extension of the same
// base, or one whose base shares or governs its storage, clips to fresh
// arrays so sibling versions never fork each other's spare capacity.
//
// Memoized structures move across versions incrementally: ExtendMemos
// derives the successor's hash indexes (cloned posting maps, touched keys
// clipped so the base's lists never grow under a reader) and per-column
// distinct statistics (set union with the delta) from the base's instead
// of rebuilding, InstallMemo lets internal/shard install incrementally
// extended partitions, and EachMemo exposes every entry — stale ones
// included — so the epoch sweep can reclaim governed buffers that
// invalidation orphaned. NewDedup/Dedup is the writer-owned tuple→row map
// that keeps set semantics O(delta) per committed batch.
//
// Every relation can also carry a private Dict (NewIn, AdoptDict, Dict):
// engines intern transactional ingest in their own dictionary, and the
// process-wide default is only the convenience for free-standing use —
// Dict.CompactInto supports rewriting a live epoch against a fresh table.
//
// # The column-buffer seam
//
// Column storage sits behind ColumnBuffer: plain relations hold resident
// []Value slices, while a relation handed to a spill governor (Govern)
// holds a spill.Buffer whose columns may be parked in a file-backed
// segment between uses. All reads flow through one internal accessor that
// reloads parked columns on demand; Pin/Unpin hold them resident across
// an operator (Gather, GatherMulti, Concat, index builds, HashJoin and
// semijoin probes pin their inputs). Clone/Rename views borrow the buffer
// itself rather than its arrays, so views never force a parked parent
// resident; the first mutation copies the columns out and releases the
// buffer — governed relations are read-only by contract until then.
//
// # Concurrency
//
// A Relation is safe for concurrent readers (statistics, indexes and memos
// are mutex-guarded), and a single writer may insert while no reader is
// using the relation. Mutating a relation concurrently with readers of it
// — or of views sharing its storage — is a data race. Operators whose
// outputs are distinct by construction (joins of set-semantics inputs,
// Gather/GatherMulti/Concat of disjoint parts) skip the dedup map
// entirely and build it lazily only if Insert or Has later needs it.
package relation
