package relation

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSortMergeMatchesHashJoin(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRelation(rng, "R", []string{"a", "b"}, rng.Intn(30), 4)
		s := randomRelation(rng, "S", []string{"c", "d"}, rng.Intn(30), 4)
		pairs := [][2]int{{1, 0}}
		h, err := EquiJoin(r, s, pairs)
		if err != nil {
			return false
		}
		m, err := EquiJoinSortMerge(r, s, pairs)
		if err != nil {
			return false
		}
		return Equal(h, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSortMergeMultiColumn(t *testing.T) {
	r := New("R", "a", "b")
	r.Add("1", "2")
	r.Add("1", "3")
	s := New("S", "c", "d")
	s.Add("1", "2")
	s.Add("1", "9")
	j, err := EquiJoinSortMerge(r, s, [][2]int{{0, 0}, {1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if j.Size() != 1 {
		t.Fatalf("size = %d, want 1 (only (1,2) matches both columns)", j.Size())
	}
}

func TestSortMergeRangeError(t *testing.T) {
	r := New("R", "a")
	s := New("S", "b")
	if _, err := EquiJoinSortMerge(r, s, [][2]int{{3, 0}}); err == nil {
		t.Fatal("accepted out-of-range position")
	}
}

func TestSortMergeEmptyInputs(t *testing.T) {
	r := New("R", "a")
	s := New("S", "b")
	s.Add("x")
	j, err := EquiJoinSortMerge(r, s, [][2]int{{0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if j.Size() != 0 {
		t.Fatalf("size = %d", j.Size())
	}
}
