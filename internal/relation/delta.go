package relation

// Delta-segment growth for epoch-published relations. A committed batch
// does not mutate the published version — readers of a pinned epoch keep
// scanning it — it builds a frozen successor with Extend, whose columns
// reuse the base's backing arrays and append the delta rows after them.
// Old readers are bounded by their own row count, the commit path is
// serialized by the Engine, and a base that has already grown a successor
// reallocates instead of forking the shared spare capacity, so the chain
// of versions stays linear and race-free.
//
// The same file holds the incremental memo maintenance: ExtendMemos
// derives the successor's hash indexes and column statistics from the
// base's memoized ones plus the delta rows, and InstallMemo / EachMemo are
// the seams the Engine and internal/shard use to pre-install derived
// entries at commit time and to enumerate memoized partitions during the
// epoch-retirement sweep.

import (
	"fmt"
	"maps"
	"slices"
)

// Extend returns a frozen successor of r holding r's rows followed by the
// delta tuples, without copying the base rows when the backing arrays can
// grow in place. The caller guarantees the delta tuples are distinct from
// each other and from r's rows (the Engine's writer-owned Dedup does); r
// itself is unchanged and is marked so that a second Extend of the same
// base reallocates. Safe against concurrent readers of r and of every
// earlier version in the chain: they bound their scans by their own row
// counts and never see the appended cells.
func (r *Relation) Extend(delta []Tuple) (*Relation, error) {
	for _, t := range delta {
		if len(t) != len(r.Attrs) {
			return nil, fmt.Errorf("relation %s: extend tuple arity %d != %d", r.Name, len(t), len(r.Attrs))
		}
	}
	out := New(r.Name, r.Attrs...)
	out.dict = r.dict
	out.frozen = true
	r.Pin()
	defer r.Unpin()
	d := r.data()
	// In-place growth is sound only when r exclusively owns plain resident
	// arrays and no successor has claimed the spare capacity yet; shared
	// views and governed buffers always reallocate (slices.Clip forces the
	// first append to copy).
	canGrow := !r.extended && !r.shared && r.buf == nil
	for c := range d {
		base := d[c][:r.n]
		if !canGrow {
			base = slices.Clip(base)
		}
		col := base
		for _, t := range delta {
			col = append(col, t[c])
		}
		out.cols[c] = col
	}
	r.extended = true
	out.n = r.n + len(delta)
	return out, nil
}

// Dedup is a writer-owned tuple-key → row-index map over a chain of
// Extend-published relation versions. The published relations themselves
// carry no dedup map (readers rebuild one lazily if they need it); the
// Engine keeps one Dedup per relation chain and updates it in place under
// its commit lock, so append-only commits stay O(delta) instead of paying
// an O(n) rebuild per batch.
type Dedup map[string]int32

// NewDedup builds the map from r's current rows — the O(n) cost paid once
// per relation chain (and again after a retraction rebuilds the chain).
func (r *Relation) NewDedup() Dedup {
	r.Pin()
	defer r.Unpin()
	m := make(Dedup, r.n)
	var buf []byte
	for i := 0; i < r.n; i++ {
		buf = r.rowKey(buf[:0], i)
		m[string(buf)] = int32(i)
	}
	return m
}

// Row returns the row index holding t, if present.
func (d Dedup) Row(t Tuple) (int32, bool) {
	row, ok := d[t.Key()]
	return row, ok
}

// Put records t at the given row index.
func (d Dedup) Put(t Tuple, row int32) { d[t.Key()] = row }

// InstallMemo stores v under key as if it had been built against r's
// current size: the seam for incrementally derived entries — the Engine's
// commit path extends a base version's indexes, statistics and partitions
// and installs the results on the successor, so the first reader of the
// new epoch finds them warm instead of rebuilding from scratch.
func (r *Relation) InstallMemo(key string, v any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.memos == nil {
		r.memos = make(map[string]memoEntry)
	}
	r.memos[key] = memoEntry{v: v, size: r.n}
}

// EachMemo calls f for every memoized entry of r — including STALE ones,
// whose build size no longer matches the relation (valid reports which).
// Stale entries are exactly what the epoch-retirement sweep must see: a
// partition memoized before an insert used to be orphaned invisibly,
// keeping its governed shards registered (and their spill segments on
// disk) until Engine.Close. Iteration stops when f returns false; the
// entries are snapshotted first, so f may call back into r.
func (r *Relation) EachMemo(f func(key string, v any, valid bool) bool) {
	type entry struct {
		key   string
		v     any
		valid bool
	}
	r.mu.Lock()
	snap := make([]entry, 0, len(r.memos))
	for k, e := range r.memos {
		snap = append(snap, entry{k, e.v, e.size == r.n})
	}
	r.mu.Unlock()
	for _, e := range snap {
		if !f(e.key, e.v, e.valid) {
			return
		}
	}
}

// ExtendMemos derives next's memoized hash indexes and column statistics
// from r's valid ones plus next's delta rows (rows r.Size()..next.Size())
// and installs them on next, returning how many entries were derived
// incrementally. Statistics extend only when r retained its per-column
// value sets (frozen relations do); partition memos are extended by
// internal/shard.ExtendPartitions, which owns their governor registration.
func (r *Relation) ExtendMemos(next *Relation) int {
	count := 0
	r.EachMemo(func(key string, v any, valid bool) bool {
		if !valid {
			return true
		}
		switch val := v.(type) {
		case *stats:
			if val.sets == nil || len(val.sets) != next.Arity() {
				return true
			}
			next.InstallMemo(key, extendStats(val, next, r.n))
			count++
		case *Index:
			next.InstallMemo(key, extendIndex(val, next, r.n))
			count++
		}
		return true
	})
	return count
}

// extendIndex clones ix's posting map and appends the delta rows' indices.
// Posting lists touched by the delta are re-clipped before the first
// append so the clone never grows into the base index's backing arrays —
// readers of the retired epoch may still be probing them.
func extendIndex(ix *Index, next *Relation, oldN int) *Index {
	rows := maps.Clone(ix.rows)
	if rows == nil {
		rows = make(map[string][]int32)
	}
	next.Pin()
	defer next.Unpin()
	touched := make(map[string]bool)
	var buf []byte
	for i := oldN; i < next.n; i++ {
		buf = next.keyAt(buf[:0], i, ix.cols)
		k := string(buf)
		if !touched[k] {
			touched[k] = true
			rows[k] = slices.Clip(rows[k])
		}
		rows[k] = append(rows[k], int32(i))
	}
	return &Index{cols: ix.cols, rows: rows}
}

// extendStats unions the delta rows' values into clones of the base's
// per-column value sets. next is frozen, so the successor keeps its sets
// too and the chain extends in O(delta) per batch indefinitely.
func extendStats(s *stats, next *Relation, oldN int) *stats {
	next.Pin()
	defer next.Unpin()
	ns := &stats{
		distinct: make([]int, next.Arity()),
		sets:     make([]map[Value]struct{}, next.Arity()),
	}
	for c := 0; c < next.Arity(); c++ {
		set := maps.Clone(s.sets[c])
		if set == nil {
			set = make(map[Value]struct{})
		}
		for _, v := range next.Column(c)[oldN:] {
			set[v] = struct{}{}
		}
		ns.sets[c] = set
		ns.distinct[c] = len(set)
	}
	return ns
}
