package relation

import (
	"fmt"
	"sync"
	"testing"
)

// --- Dict ---

func TestDictRoundTrip(t *testing.T) {
	d := NewDict()
	a := d.Intern("alpha")
	b := d.Intern("beta")
	if a == b {
		t.Fatal("distinct strings interned to the same ID")
	}
	if d.Intern("alpha") != a {
		t.Fatal("re-interning is not idempotent")
	}
	if d.String(a) != "alpha" || d.String(b) != "beta" {
		t.Fatalf("round trip failed: %q %q", d.String(a), d.String(b))
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
	if _, ok := d.Lookup("gamma"); ok {
		t.Fatal("Lookup invented an ID")
	}
	if id, ok := d.Lookup("beta"); !ok || id != b {
		t.Fatalf("Lookup(beta) = %v %v", id, ok)
	}
}

func TestDictConcurrentIntern(t *testing.T) {
	d := NewDict()
	var wg sync.WaitGroup
	const workers, n = 8, 200
	ids := make([][]Value, workers)
	for w := 0; w < workers; w++ {
		ids[w] = make([]Value, n)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				ids[w][i] = d.Intern(fmt.Sprintf("s%d", i))
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := 0; i < n; i++ {
			if ids[w][i] != ids[0][i] {
				t.Fatalf("worker %d interned s%d to %d, worker 0 to %d", w, i, ids[w][i], ids[0][i])
			}
		}
	}
	if d.Len() != n {
		t.Fatalf("Len = %d, want %d", d.Len(), n)
	}
}

func TestValueStringDefaultDict(t *testing.T) {
	v := V("hello-interning")
	if v.String() != "hello-interning" {
		t.Fatalf("String = %q", v.String())
	}
}

// --- Tuples() aliasing (the seed's hazard: callers could mutate the slice
// returned by Tuples() behind the dedup map) ---

func TestTuplesCopyOnRead(t *testing.T) {
	r := New("R", "a", "b")
	r.Add("1", "2")
	r.Add("3", "4")
	ts := r.Tuples()
	// Mutate everything the caller received.
	for i := range ts {
		for j := range ts[i] {
			ts[i][j] = V("clobbered")
		}
	}
	// The relation must be unaffected: dedup, membership and stored values.
	if !r.Has(Tuple{V("1"), V("2")}) || !r.Has(Tuple{V("3"), V("4")}) {
		t.Fatal("mutating Tuples() output corrupted the relation")
	}
	if r.Has(Tuple{V("clobbered"), V("clobbered")}) {
		t.Fatal("mutation leaked into storage")
	}
	if ok, _ := r.Insert(Tuple{V("1"), V("2")}); ok {
		t.Fatal("dedup map corrupted: duplicate accepted after caller mutation")
	}
	if got := r.Tuples(); got[0][0] != V("1") || got[1][1] != V("4") {
		t.Fatalf("stored values changed: %v", got)
	}
}

func TestEachBufferIsReused(t *testing.T) {
	r := New("R", "a")
	r.Add("1")
	r.Add("2")
	var first Tuple
	count := 0
	r.Each(func(t Tuple) bool {
		if count == 0 {
			first = t // retained against the contract, to observe reuse
		}
		count++
		return true
	})
	if count != 2 {
		t.Fatalf("Each visited %d tuples", count)
	}
	// The buffer is reused, so the retained slice now holds the last row —
	// this documents why the contract forbids retaining it.
	if first[0] != V("2") {
		t.Fatalf("expected reused buffer to show last row, got %v", first[0])
	}
}

// --- Copy-on-write renames and clones ---

func TestRenameIsCopyOnWrite(t *testing.T) {
	r := New("R", "a", "b")
	r.Add("1", "2")
	s, err := r.Rename("S", "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	// Insert into the rename: the original must not see the new tuple.
	s.Add("9", "9")
	if r.Size() != 1 || s.Size() != 2 {
		t.Fatalf("sizes after insert into rename: r=%d s=%d", r.Size(), s.Size())
	}
	if r.Has(Tuple{V("9"), V("9")}) {
		t.Fatal("insert into rename leaked into original")
	}
	// Insert into the original: the rename must not see it either.
	r.Add("7", "7")
	if s.Has(Tuple{V("7"), V("7")}) {
		t.Fatal("insert into original leaked into rename")
	}
}

func TestCloneDivergence(t *testing.T) {
	r := New("R", "a")
	r.Add("1")
	c := r.Clone("C")
	r.Add("2")
	c.Add("3")
	if r.Size() != 2 || c.Size() != 2 {
		t.Fatalf("sizes: r=%d c=%d", r.Size(), c.Size())
	}
	if r.Has(Tuple{V("3")}) || c.Has(Tuple{V("2")}) {
		t.Fatal("clone and original share mutations")
	}
	// Dedup still correct on both after divergence.
	if ok, _ := r.Insert(Tuple{V("2")}); ok {
		t.Fatal("r dedup broken")
	}
	if ok, _ := c.Insert(Tuple{V("3")}); ok {
		t.Fatal("c dedup broken")
	}
}

// --- Hash indexes ---

func TestIndexLookup(t *testing.T) {
	r := New("R", "a", "b")
	r.Add("x", "1")
	r.Add("x", "2")
	r.Add("y", "1")
	ix := r.Index(0)
	if ix.Len() != 2 {
		t.Fatalf("index keys = %d, want 2", ix.Len())
	}
	key := KeyFor(nil, Tuple{V("x")}, []int{0})
	if got := len(ix.Rows(key)); got != 2 {
		t.Fatalf("rows under x = %d, want 2", got)
	}
	if ix.Has(KeyFor(nil, Tuple{V("z")}, []int{0})) {
		t.Fatal("index matched absent key")
	}
}

func TestIndexMemoizedAndInvalidated(t *testing.T) {
	r := New("R", "a", "b")
	r.Add("x", "1")
	ix1 := r.Index(0)
	if ix2 := r.Index(0); ix2 != ix1 {
		t.Fatal("index not memoized across calls")
	}
	r.Add("y", "2")
	ix3 := r.Index(0)
	if ix3 == ix1 {
		t.Fatal("index not rebuilt after insert")
	}
	if !ix3.Has(KeyFor(nil, Tuple{V("y")}, []int{0})) {
		t.Fatal("rebuilt index missing new row")
	}
}

func TestIndexSharedWithRename(t *testing.T) {
	r := New("R", "a", "b")
	r.Add("x", "1")
	r.Add("y", "2")
	s, err := r.Rename("S", "c", "d")
	if err != nil {
		t.Fatal(err)
	}
	if r.Index(1) != s.Index(1) {
		t.Fatal("rename does not share the parent's memoized index")
	}
	// After divergence the rename builds its own.
	s.Add("z", "3")
	if r.Index(1) == s.Index(1) {
		t.Fatal("diverged rename still shares the parent's index")
	}
}

// --- Semijoin ---

func TestSemijoin(t *testing.T) {
	r := New("R", "a", "b")
	r.Add("1", "x")
	r.Add("2", "y")
	r.Add("3", "z")
	s := New("S", "b", "c")
	s.Add("x", "q")
	s.Add("y", "q")
	out, err := Semijoin(r, s)
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 2 || out.Arity() != 2 {
		t.Fatalf("semijoin = %s", out)
	}
	if !out.Has(Tuple{V("1"), V("x")}) || !out.Has(Tuple{V("2"), V("y")}) || out.Has(Tuple{V("3"), V("z")}) {
		t.Fatalf("semijoin contents wrong: %s", out)
	}
}

func TestSemijoinNoSharedAttrs(t *testing.T) {
	r := New("R", "a")
	r.Add("1")
	s := New("S", "b")
	out, err := Semijoin(r, s) // s empty: nothing joins
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 0 {
		t.Fatalf("semijoin with empty s = %d tuples", out.Size())
	}
	s.Add("x")
	out, err = Semijoin(r, s) // s non-empty: everything joins
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 1 {
		t.Fatalf("semijoin with non-empty s = %d tuples", out.Size())
	}
}

// TestHashJoinMatchesSortMerge cross-checks the two equi-join
// implementations on a skewed instance.
func TestHashJoinMatchesSortMerge(t *testing.T) {
	r := New("R", "a", "b")
	s := New("S", "c", "d")
	for i := 0; i < 200; i++ {
		r.Add(fmt.Sprintf("r%d", i), fmt.Sprintf("k%d", i%7))
		s.Add(fmt.Sprintf("k%d", i%11), fmt.Sprintf("s%d", i))
	}
	pairs := [][2]int{{1, 0}}
	h, err := HashJoin(r, s, pairs)
	if err != nil {
		t.Fatal(err)
	}
	m, err := EquiJoinSortMerge(r, s, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(h, m) {
		t.Fatalf("hash join (%d tuples) != sort-merge join (%d tuples)", h.Size(), m.Size())
	}
}

// TestConcurrentReaders exercises the lazily built structures (dedup map,
// stats, indexes, memoized tries-by-proxy) under concurrent readers — run
// with -race.
func TestConcurrentReaders(t *testing.T) {
	r := New("R", "a", "b")
	for i := 0; i < 500; i++ {
		r.Add(fmt.Sprintf("u%d", i%50), fmt.Sprintf("v%d", i))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			switch w % 4 {
			case 0:
				_ = r.Index(0)
			case 1:
				_ = r.DistinctCount(1)
			case 2:
				_ = r.Has(Tuple{V("u1"), V("v1")})
			case 3:
				s, err := r.Rename("S", "x", "y")
				if err != nil {
					t.Error(err)
					return
				}
				_ = s.Index(1)
			}
		}(w)
	}
	wg.Wait()
}
