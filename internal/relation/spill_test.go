package relation

import (
	"fmt"
	"path/filepath"
	"testing"

	"cqbound/internal/spill"
)

// governedPair builds two governed relations under a budget that only fits
// one, so the first is parked as soon as the second registers.
func governedPair(t *testing.T, rows int) (cold, hot *Relation, g *spill.Governor) {
	t.Helper()
	g = spill.NewGovernor(int64(rows)*2*4+8, t.TempDir())
	t.Cleanup(func() { g.Close() })
	cold = New("cold", "a", "b")
	hot = New("hot", "a", "b")
	for i := 0; i < rows; i++ {
		cold.Add(fmt.Sprintf("c%d", i), fmt.Sprintf("d%d", i))
		hot.Add(fmt.Sprintf("x%d", i), fmt.Sprintf("y%d", i))
	}
	cold.Govern(g)
	hot.Govern(g)
	return cold, hot, g
}

func TestGovernEvictReadBack(t *testing.T) {
	cold, hot, g := governedPair(t, 50)
	if cold.Governed() != true || hot.Governed() != true {
		t.Fatal("Govern did not take")
	}
	st := g.Snapshot()
	if st.Evictions == 0 {
		t.Fatalf("no eviction under a one-relation budget: %+v", st)
	}
	// Every read API must still serve the parked relation's exact rows.
	if cold.Size() != 50 || cold.At(7, 0) != V("c7") {
		t.Fatal("At through a parked buffer is wrong")
	}
	if got := cold.Row(3); got[0] != V("c3") || got[1] != V("d3") {
		t.Fatalf("Row(3) = %v", got.Strings())
	}
	if !cold.Has(Tuple{V("c49"), V("d49")}) {
		t.Fatal("Has lost a tuple")
	}
	n := 0
	cold.Each(func(tp Tuple) bool { n++; return true })
	if n != 50 {
		t.Fatalf("Each saw %d rows, want 50", n)
	}
	if g.Snapshot().ReloadedShards == 0 {
		t.Fatal("reads of a parked relation never reloaded")
	}
}

func TestGovernedOperatorsMatchPlain(t *testing.T) {
	cold, hot, _ := governedPair(t, 40)
	plainCold := New("pc", "a", "b")
	plainHot := New("ph", "b", "c")
	for i := 0; i < 40; i++ {
		plainCold.Add(fmt.Sprintf("c%d", i), fmt.Sprintf("d%d", i))
		plainHot.Add(fmt.Sprintf("x%d", i), fmt.Sprintf("y%d", i))
	}
	// Rename the governed relations to join on a shared attribute.
	rc, err := cold.Rename("cold", "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	rh, err := hot.Rename("hot", "b", "c")
	if err != nil {
		t.Fatal(err)
	}
	// d* values of cold never match x* of hot; force matches via a bridge.
	bridge := New("bridge", "b", "c")
	for i := 0; i < 40; i++ {
		bridge.Add(fmt.Sprintf("d%d", i), fmt.Sprintf("z%d", i%5))
	}
	gJoin, err := NaturalJoin(rc, bridge)
	if err != nil {
		t.Fatal(err)
	}
	pJoin, err := NaturalJoin(plainCold, bridge)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(gJoin, pJoin) {
		t.Fatal("join through governed storage differs from plain")
	}
	sj, err := Semijoin(rc, bridge)
	if err != nil {
		t.Fatal(err)
	}
	if sj.Size() != 40 {
		t.Fatalf("semijoin kept %d rows, want 40", sj.Size())
	}
	proj, err := rh.Project("b")
	if err != nil {
		t.Fatal(err)
	}
	if proj.Size() != 40 {
		t.Fatalf("projection of governed relation: %d rows, want 40", proj.Size())
	}
	gath := cold.Gather("g", []int32{0, 5, 9})
	if gath.Size() != 3 || gath.At(1, 0) != V("c5") {
		t.Fatal("Gather through governed storage is wrong")
	}
}

func TestInsertReleasesGovernedBuffer(t *testing.T) {
	cold, _, g := governedPair(t, 30)
	before := g.Snapshot()
	cold.Add("new", "row")
	if cold.Governed() {
		t.Fatal("mutated relation still governed")
	}
	if cold.Size() != 31 || !cold.Has(Tuple{V("new"), V("row")}) {
		t.Fatal("insert after release lost data")
	}
	if !cold.Has(Tuple{V("c0"), V("d0")}) {
		t.Fatal("release lost pre-spill rows")
	}
	after := g.Snapshot()
	if after.ResidentBytes >= before.ResidentBytes+240 {
		t.Fatalf("released bytes still accounted: %d -> %d", before.ResidentBytes, after.ResidentBytes)
	}
}

func TestGovernedSliceAndViews(t *testing.T) {
	cold, _, _ := governedPair(t, 20)
	blk, err := cold.Slice("blk", 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if blk.Size() != 5 || blk.At(0, 0) != V("c5") {
		t.Fatal("Slice of governed relation is wrong")
	}
	cl := cold.Clone("copy")
	if cl.Size() != 20 || !cl.Has(Tuple{V("c19"), V("d19")}) {
		t.Fatal("Clone of governed relation is wrong")
	}
	pv, err := cold.ProjectView("pv", []string{"b"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pv.Size() != 20 || pv.At(4, 0) != V("d4") {
		t.Fatal("ProjectView of governed relation is wrong")
	}
}

func TestGovernedPinBlocksEviction(t *testing.T) {
	g := spill.NewGovernor(100, t.TempDir())
	defer g.Close()
	r := New("r", "a")
	for i := 0; i < 100; i++ {
		r.Add(fmt.Sprintf("v%d", i))
	}
	r.Govern(g)
	r.Pin()
	defer r.Unpin()
	s := New("s", "a")
	for i := 0; i < 100; i++ {
		s.Add(fmt.Sprintf("w%d", i))
	}
	s.Govern(g) // would evict r if unpinned
	if g.Snapshot().SpilledShards != 1 {
		t.Fatalf("expected exactly the unpinned relation parked: %+v", g.Snapshot())
	}
	if r.At(0, 0) != V("v0") {
		t.Fatal("pinned relation unreadable")
	}
}

func TestDictParkRoundtrip(t *testing.T) {
	d := NewDict()
	ids := make([]Value, 100)
	for i := range ids {
		ids[i] = d.Intern(fmt.Sprintf("word-%d", i))
	}
	path := filepath.Join(t.TempDir(), "dict.park")
	freed, err := d.Park(path)
	if err != nil {
		t.Fatal(err)
	}
	if freed == 0 {
		t.Fatal("Park freed nothing")
	}
	if d.Len() != 100 {
		t.Fatalf("parked Len = %d, want 100", d.Len())
	}
	// String on a parked dict reloads transparently.
	if got := d.String(ids[42]); got != "word-42" {
		t.Fatalf("String after park = %q", got)
	}
	// IDs must be stable across the roundtrip.
	for i, id := range ids {
		if got, ok := d.Lookup(fmt.Sprintf("word-%d", i)); !ok || got != id {
			t.Fatalf("id of word-%d changed: %d -> %d", i, id, got)
		}
	}
	if d.Intern("word-7") != ids[7] {
		t.Fatal("Intern after unpark re-assigned an ID")
	}
	if d.Intern("fresh") != Value(100) {
		t.Fatal("next free ID wrong after roundtrip")
	}
	// Parking again after unpark works.
	if _, err := d.Park(path); err != nil {
		t.Fatal(err)
	}
	if got, ok := d.Lookup("fresh"); !ok || got != Value(100) {
		t.Fatalf("Lookup on re-parked dict = %d, %v", got, ok)
	}
}
