package relation

import (
	"sort"
)

// EquiJoinSortMerge computes the same result as EquiJoin with a sort-merge
// strategy: both inputs are sorted on their join key and merged block by
// block. It is the classical alternative to hash joins; the ablation
// benchmark at the repository root compares the two.
func EquiJoinSortMerge(r, s *Relation, pairs [][2]int) (*Relation, error) {
	for _, p := range pairs {
		if p[0] < 0 || p[0] >= r.Arity() || p[1] < 0 || p[1] >= s.Arity() {
			return nil, errJoinRange(p)
		}
	}
	type keyed struct {
		key string
		t   Tuple
	}
	left := make([]keyed, 0, r.Size())
	for _, t := range r.Tuples() {
		left = append(left, keyed{joinKey(t, pairs, 0), t})
	}
	right := make([]keyed, 0, s.Size())
	for _, t := range s.Tuples() {
		right = append(right, keyed{joinKey(t, pairs, 1), t})
	}
	sort.Slice(left, func(i, j int) bool { return left[i].key < left[j].key })
	sort.Slice(right, func(i, j int) bool { return right[i].key < right[j].key })

	attrs := append([]string(nil), r.Attrs...)
	taken := make(map[string]bool)
	for _, a := range attrs {
		taken[a] = true
	}
	for _, a := range s.Attrs {
		name := a
		for taken[name] {
			name = s.Name + "." + name
		}
		taken[name] = true
		attrs = append(attrs, name)
	}
	out := New(r.Name+"_smj_"+s.Name, attrs...)

	i, j := 0, 0
	for i < len(left) && j < len(right) {
		switch {
		case left[i].key < right[j].key:
			i++
		case left[i].key > right[j].key:
			j++
		default:
			// Equal-key blocks.
			iEnd := i
			for iEnd < len(left) && left[iEnd].key == left[i].key {
				iEnd++
			}
			jEnd := j
			for jEnd < len(right) && right[jEnd].key == right[j].key {
				jEnd++
			}
			for a := i; a < iEnd; a++ {
				for b := j; b < jEnd; b++ {
					nt := make(Tuple, 0, r.Arity()+s.Arity())
					nt = append(nt, left[a].t...)
					nt = append(nt, right[b].t...)
					out.MustInsert(nt...)
				}
			}
			i, j = iEnd, jEnd
		}
	}
	return out, nil
}

func errJoinRange(p [2]int) error {
	return &joinRangeError{p}
}

type joinRangeError struct{ p [2]int }

func (e *joinRangeError) Error() string {
	return "relation: join positions out of range"
}
