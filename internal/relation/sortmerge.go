package relation

import (
	"sort"
)

// EquiJoinSortMerge computes the same result as HashJoin with a sort-merge
// strategy: both inputs are sorted on their (fixed-width packed) join key
// and merged block by block. It is the classical alternative to hash joins;
// the ablation benchmark at the repository root compares the two.
func EquiJoinSortMerge(r, s *Relation, pairs [][2]int) (*Relation, error) {
	for _, p := range pairs {
		if p[0] < 0 || p[0] >= r.Arity() || p[1] < 0 || p[1] >= s.Arity() {
			return nil, errJoinRange(p)
		}
	}
	rCols := make([]int, len(pairs))
	sCols := make([]int, len(pairs))
	for i, p := range pairs {
		rCols[i] = p[0]
		sCols[i] = p[1]
	}
	type keyed struct {
		key string
		row int32
	}
	var buf []byte
	left := make([]keyed, r.Size())
	for i := range left {
		buf = r.keyAt(buf[:0], i, rCols)
		left[i] = keyed{string(buf), int32(i)}
	}
	right := make([]keyed, s.Size())
	for j := range right {
		buf = s.keyAt(buf[:0], j, sCols)
		right[j] = keyed{string(buf), int32(j)}
	}
	sort.Slice(left, func(i, j int) bool { return left[i].key < left[j].key })
	sort.Slice(right, func(i, j int) bool { return right[i].key < right[j].key })

	out := New(r.Name+"_smj_"+s.Name, concatAttrs(r, s)...)
	nt := make(Tuple, 0, r.Arity()+s.Arity())
	i, j := 0, 0
	for i < len(left) && j < len(right) {
		switch {
		case left[i].key < right[j].key:
			i++
		case left[i].key > right[j].key:
			j++
		default:
			// Equal-key blocks.
			iEnd := i
			for iEnd < len(left) && left[iEnd].key == left[i].key {
				iEnd++
			}
			jEnd := j
			for jEnd < len(right) && right[jEnd].key == right[j].key {
				jEnd++
			}
			for a := i; a < iEnd; a++ {
				for b := j; b < jEnd; b++ {
					nt = r.AppendRow(nt[:0], int(left[a].row))
					nt = s.AppendRow(nt, int(right[b].row))
					out.appendRowUnchecked(nt)
				}
			}
			i, j = iEnd, jEnd
		}
	}
	return out, nil
}

func errJoinRange(p [2]int) error {
	return &joinRangeError{p}
}

type joinRangeError struct{ p [2]int }

func (e *joinRangeError) Error() string {
	return "relation: join positions out of range"
}
