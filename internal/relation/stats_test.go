package relation

import (
	"math"
	"strconv"
	"testing"
)

func TestDistinctCountAndSelectivity(t *testing.T) {
	r := New("R", "a", "b")
	r.Add("1", "x")
	r.Add("2", "x")
	r.Add("3", "y")
	if got := r.DistinctCount(0); got != 3 {
		t.Errorf("DistinctCount(0) = %d, want 3", got)
	}
	if got := r.DistinctCount(1); got != 2 {
		t.Errorf("DistinctCount(1) = %d, want 2", got)
	}
	if got := r.DistinctCountAttr("b"); got != 2 {
		t.Errorf("DistinctCountAttr(b) = %d, want 2", got)
	}
	if got := r.DistinctCountAttr("nope"); got != 0 {
		t.Errorf("DistinctCountAttr(nope) = %d, want 0", got)
	}
	if got := r.Selectivity(0); got != 1 {
		t.Errorf("Selectivity(0) = %v, want 1", got)
	}
	if got := r.Selectivity(1); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("Selectivity(1) = %v, want 2/3", got)
	}
	// Stats must refresh after inserts.
	r.Add("4", "z")
	if got := r.DistinctCount(1); got != 3 {
		t.Errorf("after insert: DistinctCount(1) = %d, want 3", got)
	}
}

func TestEstimateJoinSize(t *testing.T) {
	r := New("R", "a", "b")
	s := New("S", "b", "c")
	for _, v := range []string{"1", "2", "3", "4"} {
		r.Add(v, "k"+v)
		s.Add("k"+v, v)
	}
	// b is a key on both sides: estimate |R|·|S|/max(V) = 4·4/4 = 4, which
	// is also the true join size.
	if got := EstimateJoinSize(r, s); math.Abs(got-4) > 1e-12 {
		t.Errorf("EstimateJoinSize = %v, want 4", got)
	}
	// No shared attributes: cross product estimate.
	u := New("U", "d")
	u.Add("q")
	u.Add("w")
	if got := EstimateJoinSize(r, u); math.Abs(got-8) > 1e-12 {
		t.Errorf("cross product estimate = %v, want 8", got)
	}
	// Empty side: zero.
	e := New("E", "a")
	if got := EstimateJoinSize(r, e); got != 0 {
		t.Errorf("empty side estimate = %v, want 0", got)
	}
}

func TestDistinctEstimate(t *testing.T) {
	// Small relation: exact, via the same stats memo DistinctCount builds.
	small := New("S", "a")
	for i := 0; i < 100; i++ {
		small.Add(strconv.Itoa(i % 7))
	}
	if got := small.DistinctEstimate(0); got != 7 {
		t.Errorf("small DistinctEstimate = %d, want exact 7", got)
	}
	if got := small.DistinctEstimate(-1); got != 0 {
		t.Errorf("out-of-range DistinctEstimate = %d, want 0", got)
	}

	// Large relation with the stats memo already built: exact, for free.
	memoized := New("M", "a")
	for i := 0; i < 3*statsSampleCap; i++ {
		memoized.Add(strconv.Itoa(i % 100))
	}
	if got := memoized.DistinctCount(0); got != 100 {
		t.Fatalf("DistinctCount = %d, want 100", got)
	}
	if got := memoized.DistinctEstimate(0); got != 100 {
		t.Errorf("memoized DistinctEstimate = %d, want exact 100", got)
	}

	// Large unmemoized relation: sampled, within a factor of two at both
	// cardinality extremes and clamped to [sample distinct, size].
	for name, tc := range map[string]struct{ mod, want int }{
		"low-cardinality":  {50, 50},
		"high-cardinality": {0, 3 * statsSampleCap}, // mod 0 = all distinct
	} {
		r := New("L", "a")
		n := 3 * statsSampleCap
		for i := 0; i < n; i++ {
			v := i
			if tc.mod > 0 {
				v = i % tc.mod
			}
			r.Add(strconv.Itoa(v))
		}
		got := r.DistinctEstimate(0)
		if got < tc.want/2 || got > 2*tc.want {
			t.Errorf("%s: DistinctEstimate = %d, want within 2x of %d", name, got, tc.want)
		}
		if got > n {
			t.Errorf("%s: estimate %d exceeds relation size %d", name, got, n)
		}
		// The estimate itself memoizes: a second call must agree.
		if again := r.DistinctEstimate(0); again != got {
			t.Errorf("%s: repeated estimate %d != %d", name, again, got)
		}
	}
}
