package relation

import (
	"math"
	"testing"
)

func TestDistinctCountAndSelectivity(t *testing.T) {
	r := New("R", "a", "b")
	r.Add("1", "x")
	r.Add("2", "x")
	r.Add("3", "y")
	if got := r.DistinctCount(0); got != 3 {
		t.Errorf("DistinctCount(0) = %d, want 3", got)
	}
	if got := r.DistinctCount(1); got != 2 {
		t.Errorf("DistinctCount(1) = %d, want 2", got)
	}
	if got := r.DistinctCountAttr("b"); got != 2 {
		t.Errorf("DistinctCountAttr(b) = %d, want 2", got)
	}
	if got := r.DistinctCountAttr("nope"); got != 0 {
		t.Errorf("DistinctCountAttr(nope) = %d, want 0", got)
	}
	if got := r.Selectivity(0); got != 1 {
		t.Errorf("Selectivity(0) = %v, want 1", got)
	}
	if got := r.Selectivity(1); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("Selectivity(1) = %v, want 2/3", got)
	}
	// Stats must refresh after inserts.
	r.Add("4", "z")
	if got := r.DistinctCount(1); got != 3 {
		t.Errorf("after insert: DistinctCount(1) = %d, want 3", got)
	}
}

func TestEstimateJoinSize(t *testing.T) {
	r := New("R", "a", "b")
	s := New("S", "b", "c")
	for _, v := range []string{"1", "2", "3", "4"} {
		r.Add(v, "k"+v)
		s.Add("k"+v, v)
	}
	// b is a key on both sides: estimate |R|·|S|/max(V) = 4·4/4 = 4, which
	// is also the true join size.
	if got := EstimateJoinSize(r, s); math.Abs(got-4) > 1e-12 {
		t.Errorf("EstimateJoinSize = %v, want 4", got)
	}
	// No shared attributes: cross product estimate.
	u := New("U", "d")
	u.Add("q")
	u.Add("w")
	if got := EstimateJoinSize(r, u); math.Abs(got-8) > 1e-12 {
		t.Errorf("cross product estimate = %v, want 8", got)
	}
	// Empty side: zero.
	e := New("E", "a")
	if got := EstimateJoinSize(r, e); got != 0 {
		t.Errorf("empty side estimate = %v, want 0", got)
	}
}
